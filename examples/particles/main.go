// Particles: checkpointing an irregularly distributed particle set with
// indexed datatypes — the unstructured counterpart to tiledmatrix.
//
// A global array of Particle records (id, position, velocity; 56 bytes)
// lives in one checkpoint file.  Ownership is irregular: particles are
// assigned to processes by a hash of their id, so each process's records
// are scattered through the file.  Each process builds an *indexed*
// fileview over its own particles and checkpoints them with a single
// collective write; restore re-reads and verifies through the same view.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

const (
	nParticles = 4096
	P          = 4
	recBytes   = 56 // id (8) + pos (3×8) + vel (3×8)
)

func owner(id int) int { return (id*2654435761 + 40503) % P }

// particleView builds the indexed fileview over the records owned by
// rank: blocklens[i]=1 record at displacement id (in record etypes),
// with runs of consecutively owned ids coalescing into longer blocks.
func particleView(rank int) (*datatype.Type, []int, error) {
	rec, err := datatype.Contiguous(recBytes, datatype.Byte)
	if err != nil {
		return nil, nil, err
	}
	var ids []int
	var blocklens, displs []int64
	for id := 0; id < nParticles; id++ {
		if owner(id) != rank {
			continue
		}
		ids = append(ids, id)
		if n := len(displs); n > 0 && displs[n-1]+blocklens[n-1] == int64(id) {
			blocklens[n-1]++ // extend the previous block
			continue
		}
		blocklens = append(blocklens, 1)
		displs = append(displs, int64(id))
	}
	ft, err := datatype.Indexed(blocklens, displs, rec)
	if err != nil {
		return nil, nil, err
	}
	// Pin the extent to the whole checkpoint so snapshots could tile.
	ft, err = datatype.Resized(ft, 0, int64(nParticles)*recBytes)
	return ft, ids, err
}

func fillRecord(buf []byte, id int, generation float64) {
	binary.LittleEndian.PutUint64(buf, uint64(id))
	for c := 0; c < 6; c++ {
		v := generation + float64(id) + 0.1*float64(c)
		binary.LittleEndian.PutUint64(buf[8+8*c:], math.Float64bits(v))
	}
}

func main() {
	backend := storage.NewMem()
	shared := core.NewShared(backend)

	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := core.Open(p, shared, core.Options{Engine: core.Listless})
		if err != nil {
			panic(err)
		}
		defer f.Close()

		rec, err := datatype.Contiguous(recBytes, datatype.Byte)
		if err != nil {
			panic(err)
		}
		ft, ids, err := particleView(p.Rank())
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, rec, ft); err != nil {
			panic(err)
		}

		// Checkpoint: pack the local particles densely and write them
		// through the scattered view in one collective call.
		local := make([]byte, len(ids)*recBytes)
		for i, id := range ids {
			fillRecord(local[i*recBytes:], id, 1.0)
		}
		if _, err := f.WriteAtAll(0, int64(len(local)), datatype.Byte, local); err != nil {
			panic(err)
		}

		// Restore into a fresh buffer and verify every field.
		got := make([]byte, len(local))
		if _, err := f.ReadAtAll(0, int64(len(got)), datatype.Byte, got); err != nil {
			panic(err)
		}
		for i, id := range ids {
			r := got[i*recBytes:]
			if gid := binary.LittleEndian.Uint64(r); gid != uint64(id) {
				panic(fmt.Sprintf("rank %d: record %d has id %d, want %d", p.Rank(), i, gid, id))
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every record must sit at offset id*recBytes with its own id.
	raw := backend.Bytes()
	if len(raw) != nParticles*recBytes {
		log.Fatalf("checkpoint is %d bytes, want %d", len(raw), nParticles*recBytes)
	}
	counts := make([]int, P)
	for id := 0; id < nParticles; id++ {
		if got := binary.LittleEndian.Uint64(raw[id*recBytes:]); got != uint64(id) {
			log.Fatalf("record %d holds id %d", id, got)
		}
		counts[owner(id)]++
	}
	fmt.Printf("particles: %d records checkpointed through indexed views (ownership %v): OK\n",
		nParticles, counts)
}
