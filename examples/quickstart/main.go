// Quickstart: four processes partition one file with interleaved
// non-contiguous fileviews, write it with a single collective call each,
// and read their parts back — the minimal end-to-end tour of the
// library's MPI-IO API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/noncontig"
	"repro/internal/storage"
)

func main() {
	const (
		P          = 4
		blockCount = 8
		blockLen   = 16 // bytes per block
	)

	backend := storage.NewMem()
	shared := core.NewShared(backend)

	_, err := mpi.Run(P, func(p *mpi.Proc) {
		// Open the shared file with the listless (flattening-on-the-fly)
		// engine — the paper's technique.
		f, err := core.Open(p, shared, core.Options{Engine: core.Listless})
		if err != nil {
			panic(err)
		}
		defer f.Close()

		// Each rank sees every P-th block of the file: rank r's view is
		// blocks r, r+P, r+2P, ...  (the paper's Figure-4 datatype).
		ft, err := noncontig.Filetype(p.Rank(), P, blockCount, blockLen)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}

		// Through the view the file looks contiguous: write our blocks
		// with one collective call.
		mine := bytes.Repeat([]byte{byte('A' + p.Rank())}, blockCount*blockLen)
		if _, err := f.WriteAtAll(0, int64(len(mine)), datatype.Byte, mine); err != nil {
			panic(err)
		}

		// Read it back through the same view and check.
		got := make([]byte, len(mine))
		if _, err := f.ReadAtAll(0, int64(len(got)), datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, mine) {
			panic(fmt.Sprintf("rank %d: read-back mismatch", p.Rank()))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// The physical file interleaves the ranks' blocks: AABB...CCDD...
	raw := backend.Bytes()
	fmt.Printf("file is %d bytes; first two interleaved stripes:\n", len(raw))
	for s := 0; s < 2; s++ {
		stripe := raw[s*P*blockLen : (s+1)*P*blockLen]
		fmt.Printf("  stripe %d: %s\n", s, stripe)
	}
	fmt.Println("quickstart: OK")
}
