// Btiomini: a class-S BTIO run under both datatype engines, printing the
// timing comparison and the per-engine work counters — a miniature of
// the paper's Table 3 that finishes in well under a second.
package main

import (
	"fmt"
	"log"

	"repro/internal/btio"
	"repro/internal/core"
)

func main() {
	class, err := btio.ClassByName("S")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("btiomini: class S (12^3 grid), P=4, 5 steps, ghosted cells")
	var results []btio.Result
	for _, engine := range []core.Engine{core.ListBased, core.Listless} {
		cfg := btio.Config{
			Class:        class,
			P:            4,
			Engine:       engine,
			Steps:        5,
			Ghost:        2,
			ComputeIters: 2,
			Verify:       true,
		}
		nb, _ := cfg.NBlock()
		sb, _ := cfg.SBlock()
		res, err := btio.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("\n  engine %s (N_block=%d, S_block=%dB per step):\n", engine, nb, sb)
		fmt.Printf("    t_compute=%v  dt_io=%v  B_io=%.0f MB/s  wrote %.1f MB, verified\n",
			res.TCompute, res.TIO, res.Bandwidth, float64(res.BytesWritten)/1e6)
		fmt.Printf("    work: list tuples=%d, list bytes sent=%d, view bytes sent=%d, pre-reads skipped=%d\n",
			res.Stats.ListTuples, res.Stats.ListBytesSent,
			res.Stats.ViewBytesSent, res.Stats.PreReadsSkipped)
	}

	if results[1].TIO > 0 {
		fmt.Printf("\n  r_io = %.2f (list-based I/O time / listless I/O time)\n",
			float64(results[0].TIO)/float64(results[1].TIO))
	}
}
