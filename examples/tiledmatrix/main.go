// Tiledmatrix: a 2D block decomposition of a matrix file — the classic
// dense-linear-algebra I/O pattern the paper's introduction motivates.
//
// A global R×C float64 matrix (row-major) is stored in one file.  The
// P = pr×pc processes each own one tile and access it through a subarray
// fileview, so a single collective call per process reads or writes the
// whole matrix.  The example writes a matrix whose entry (i,j) is
// 1000·i + j, reads it back through transposed-tile views, and verifies.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

const (
	rows, cols = 48, 64
	pr, pc     = 2, 2 // process grid
	P          = pr * pc
)

func entry(i, j int) float64 { return float64(1000*i + j) }

// tileView builds the subarray fileview of process (ti, tj).
func tileView(ti, tj int) (*datatype.Type, error) {
	tr, tc := rows/pr, cols/pc
	return datatype.Subarray(
		[]int64{rows, cols},
		[]int64{int64(tr), int64(tc)},
		[]int64{int64(ti * tr), int64(tj * tc)},
		datatype.OrderC,
		datatype.Double,
	)
}

func main() {
	backend := storage.NewMem()
	shared := core.NewShared(backend)

	_, err := mpi.Run(P, func(p *mpi.Proc) {
		ti, tj := p.Rank()/pc, p.Rank()%pc
		tr, tc := rows/pr, cols/pc

		f, err := core.Open(p, shared, core.Options{Engine: core.Listless})
		if err != nil {
			panic(err)
		}
		defer f.Close()

		ft, err := tileView(ti, tj)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Double, ft); err != nil {
			panic(err)
		}

		// Fill the local tile with the global values and write it with
		// one collective call.
		tile := make([]byte, tr*tc*8)
		for i := 0; i < tr; i++ {
			for j := 0; j < tc; j++ {
				v := entry(ti*tr+i, tj*tc+j)
				binary.LittleEndian.PutUint64(tile[(i*tc+j)*8:], math.Float64bits(v))
			}
		}
		if _, err := f.WriteAtAll(0, int64(len(tile)), datatype.Byte, tile); err != nil {
			panic(err)
		}

		// Re-read through the *transposed* tile assignment: process
		// (ti,tj) now reads tile (tj,ti) — a view change, no data
		// reshuffling in user code.
		ft2, err := tileView(tj%pr, ti%pc)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Double, ft2); err != nil {
			panic(err)
		}
		got := make([]byte, tr*tc*8)
		if _, err := f.ReadAtAll(0, int64(len(got)), datatype.Byte, got); err != nil {
			panic(err)
		}
		ti2, tj2 := tj%pr, ti%pc
		for i := 0; i < tr; i++ {
			for j := 0; j < tc; j++ {
				want := entry(ti2*tr+i, tj2*tc+j)
				v := math.Float64frombits(binary.LittleEndian.Uint64(got[(i*tc+j)*8:]))
				if v != want {
					panic(fmt.Sprintf("rank %d: (%d,%d) = %v, want %v", p.Rank(), i, j, v, want))
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Spot-check the file itself: entry (i,j) at offset 8*(i*cols+j).
	raw := backend.Bytes()
	for _, pt := range [][2]int{{0, 0}, {13, 7}, {47, 63}} {
		off := 8 * (pt[0]*cols + pt[1])
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
		if v != entry(pt[0], pt[1]) {
			log.Fatalf("file entry (%d,%d) = %v", pt[0], pt[1], v)
		}
	}
	fmt.Printf("tiledmatrix: %dx%d matrix (%d KiB) written and re-read through %d tile views: OK\n",
		rows, cols, len(raw)/1024, P)
}
