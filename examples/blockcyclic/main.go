// Blockcyclic: ScaLAPACK-style block-cyclic matrix I/O with distributed-
// array (darray) fileviews.
//
// A global 64×64 float64 matrix is distributed over a 2×2 process grid
// block-cyclically with 8×8 blocks — the distribution dense linear
// algebra libraries use for load balance.  Each process's portion is
// scattered through the file in dozens of non-contiguous pieces; the
// darray fileview makes writing it a single collective call, and the
// listless engine handles the scattered pattern without ever
// materializing an ol-list.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

const (
	n      = 64 // global matrix is n×n doubles, row-major
	nb     = 8  // block-cyclic block size
	pr, pc = 2, 2
	P      = pr * pc
)

func entry(i, j int) float64 { return float64(i)*1e4 + float64(j) }

// ownerOf returns the grid coordinates owning global element (i, j).
func ownerOf(i, j int) (int, int) { return (i / nb) % pr, (j / nb) % pc }

func main() {
	backend := storage.NewMem()
	shared := core.NewShared(backend)

	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := core.Open(p, shared, core.Options{Engine: core.Listless})
		if err != nil {
			panic(err)
		}
		defer f.Close()

		ft, err := datatype.Darray(datatype.DarraySpec{
			Size: P, Rank: p.Rank(),
			Sizes:    []int64{n, n},
			Distribs: []datatype.Distribution{datatype.DistCyclic, datatype.DistCyclic},
			DistArgs: []int64{nb, nb},
			ProcDims: []int64{pr, pc},
			Order:    datatype.OrderC,
			Elem:     datatype.Double,
		})
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Double, ft); err != nil {
			panic(err)
		}

		// Fill the local (packed) portion in view order: the view
		// linearizes this process's elements in file order, so walking
		// global coordinates in row-major order and keeping ours gives
		// exactly the packed buffer layout.
		myRow := p.Rank() / pc
		myCol := p.Rank() % pc
		local := make([]byte, ft.Size())
		k := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r, c := ownerOf(i, j); r == myRow && c == myCol {
					binary.LittleEndian.PutUint64(local[k*8:], math.Float64bits(entry(i, j)))
					k++
				}
			}
		}
		if k*8 != len(local) {
			panic(fmt.Sprintf("rank %d: filled %d of %d elements", p.Rank(), k, len(local)/8))
		}

		if _, err := f.WriteAtAll(0, int64(len(local)), datatype.Byte, local); err != nil {
			panic(err)
		}

		// Restore through the same view and verify byte-for-byte.
		got := make([]byte, len(local))
		if _, err := f.ReadAtAll(0, int64(len(got)), datatype.Byte, got); err != nil {
			panic(err)
		}
		for x := range got {
			if got[x] != local[x] {
				panic(fmt.Sprintf("rank %d: restore mismatch at byte %d", p.Rank(), x))
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// The file must hold the full matrix in row-major order.
	raw := backend.Bytes()
	if len(raw) != n*n*8 {
		log.Fatalf("file is %d bytes, want %d", len(raw), n*n*8)
	}
	for _, pt := range [][2]int{{0, 0}, {7, 8}, {8, 7}, {33, 52}, {63, 63}} {
		off := (pt[0]*n + pt[1]) * 8
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
		if v != entry(pt[0], pt[1]) {
			log.Fatalf("entry (%d,%d) = %v, want %v", pt[0], pt[1], v, entry(pt[0], pt[1]))
		}
	}
	fmt.Printf("blockcyclic: %dx%d matrix, %dx%d blocks over a %dx%d grid, written+verified: OK\n",
		n, n, nb, nb, pr, pc)
}
