package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/ioserver"
	"repro/internal/mpi"
	"repro/internal/noncontig"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/storage"
)

// jobsFlags carries the -jobs mode's parameters.
type jobsFlags struct {
	jobs, ranks     int
	nblock, sblock  int64
	reps            int
	workers, queue  int
	fifo            bool
	noCache         bool
	servers         int
	stripe          int64
	conns           int
	readBW, writeBW int64
	latency         time.Duration
	verify          bool
	engine          core.Engine
	sieveBuf        int
	collBuf         int
	metricsAddr     string
	noMetrics       bool
	stall           time.Duration
}

// jobPattern fills a session- and rank-distinct deterministic payload.
func jobPattern(sess, rank int, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((sess*53 + rank*131 + i*7 + 13) % 251)
	}
	return b
}

// runJobs is the -jobs N driver mode: N concurrent sessions, each a
// world of -p ranks over its own disjoint region of one shared store,
// submit their collectives through the shared session service.  With
// -servers the store is an in-process striped I/O-server tier mounted
// through a per-server connection pool (-conns); otherwise it is memory,
// optionally throttled.  Each session runs -reps interleaved
// write+read-back rounds of the nc-nc pattern; the report shows the
// aggregate bandwidth and each session's queue-wait and cache behaviour.
func runJobs(jf jobsFlags) {
	if jf.reps <= 0 {
		jf.reps = autoReps(jf.nblock * jf.sblock)
	}
	fileSize := int64(jf.ranks) * jf.nblock * jf.sblock
	d := jf.nblock * jf.sblock // bytes per rank per access

	var reg *obs.Registry
	if !jf.noMetrics {
		reg = obs.NewRegistry()
	}
	serveMetrics(reg, jf.metricsAddr, 0, "jobs")

	// The shared store all sessions carve their regions from.
	var (
		store   storage.Backend
		agg     *ioserver.Striped
		servers []*ioserver.Server
	)
	if jf.servers > 0 {
		geom := storage.StripeGeom{Unit: jf.stripe, Count: jf.servers}
		addrs := make([]string, jf.servers)
		for i := 0; i < jf.servers; i++ {
			srv, err := ioserver.New(ioserver.Config{Backend: storage.NewMem(), Geom: geom, Index: i})
			if err != nil {
				log.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			addrs[i] = ln.Addr().String()
			servers = append(servers, srv)
			go srv.Serve(ln)
		}
		a, err := ioserver.NewStriped(jf.stripe, addrs, ioserver.ClientOptions{Conns: jf.conns, Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		agg = a
		store = storage.NewResilient(a, storage.ResilientConfig{})
	} else {
		store = storage.NewMem()
		if jf.readBW > 0 || jf.writeBW > 0 || jf.latency > 0 {
			store = storage.NewThrottled(store, jf.readBW, jf.writeBW, jf.latency)
		}
	}
	if err := store.Truncate(fileSize * int64(jf.jobs)); err != nil {
		log.Fatal(err)
	}

	sv := session.NewService(session.Options{
		Workers:  jf.workers,
		MaxQueue: jf.queue,
		FIFO:     jf.fifo,
		Metrics:  reg,
	})
	sessions := make([]*session.Session, jf.jobs)
	for i := range sessions {
		slice, err := storage.NewRegion(store, int64(i)*fileSize, fileSize)
		if err != nil {
			log.Fatal(err)
		}
		so := session.SessionOptions{
			Ranks: jf.ranks,
			Core: core.Options{
				Engine:       jf.engine,
				SieveBufSize: jf.sieveBuf,
				CollBufSize:  jf.collBuf,
			},
			StallTimeout: jf.stall,
		}
		if !jf.noCache {
			so.Cache = &session.CacheOptions{}
		}
		s, err2 := sv.Open(fmt.Sprintf("job%d", i), slice, so)
		if err2 != nil {
			log.Fatal(err2)
		}
		sessions[i] = s
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, jf.jobs)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *session.Session) {
			defer wg.Done()
			errs[i] = runOneJob(i, s, jf, d)
		}(i, s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			log.Fatalf("session %d: %v", i, err)
		}
	}

	// Per-session report before teardown, then aggregate.
	cacheMode := "write-behind+read-ahead"
	if jf.noCache {
		cacheMode = "off"
	}
	fmt.Printf("noncontig jobs=%d ranks/session=%d %s  N_block=%d  S_block=%dB  reps=%d  cache=%s\n",
		jf.jobs, jf.ranks, jf.engine, jf.nblock, jf.sblock, jf.reps, cacheMode)
	totalBytes := int64(jf.jobs) * int64(jf.ranks) * d * 2 * int64(jf.reps)
	fmt.Printf("  aggregate: %s moved in %v  (%.2f MB/s)\n",
		humanBytes(totalBytes), elapsed.Round(time.Microsecond),
		float64(totalBytes)/1e6/elapsed.Seconds())
	for i, s := range sessions {
		st := s.Stats()
		line := fmt.Sprintf("  job%d: %d collectives, %d rejected, queue wait p50/p99 %v/%v",
			i, st.Jobs, st.Rejected,
			time.Duration(st.QueueWait.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(st.QueueWait.Quantile(0.99)).Round(time.Microsecond))
		if !jf.noCache {
			c := st.Cache
			line += fmt.Sprintf("; cache %d hit / %d miss, %s absorbed, %d flushes (%s), %s prefetched",
				c.Hits, c.Misses, humanBytes(c.AbsorbedBytes), c.Flushes,
				humanBytes(c.FlushedBytes), humanBytes(c.PrefetchedBytes))
		}
		fmt.Println(line)
	}
	if err := sv.Close(); err != nil {
		log.Fatal(err)
	}
	if agg != nil {
		fmt.Printf("  storage tier: %d servers, stripe %s, %d connections, %d round-trips\n",
			jf.servers, humanBytes(jf.stripe), len(agg.AllClients()), agg.Rounds())
		if st, err := agg.ServerStats(); err == nil {
			fmt.Printf("    server totals: %s\n", st)
		}
		agg.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}
	if jf.verify {
		fmt.Println("  verification: OK")
	}
}

// runOneJob is one session's workload: set the interleaved view, then
// reps rounds of collective write + collective read-back.  A round
// rejected by admission control backs off and retries — the rejection
// stays visible in the session stats.
func runOneJob(i int, s *session.Session, jf jobsFlags, d int64) error {
	if err := s.Run(func(p *mpi.Proc, f *core.File) error {
		ft, err := noncontig.Filetype(p.Rank(), jf.ranks, jf.nblock, jf.sblock)
		if err != nil {
			return err
		}
		return f.SetView(0, datatype.Byte, ft)
	}); err != nil {
		return err
	}
	if c := s.Cache(); c != nil {
		c.Invalidate()
	}
	bufs := make([][]byte, jf.ranks)
	for r := range bufs {
		bufs[r] = make([]byte, d)
	}
	retry := func(op func() error) error {
		for {
			err := op()
			if !errors.Is(err, core.ErrRejected) {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	}
	for rep := 0; rep < jf.reps; rep++ {
		if err := retry(func() error {
			return s.WriteAtAll(0, d, datatype.Byte, func(rank int) []byte {
				return jobPattern(i, rank, d)
			})
		}); err != nil {
			return err
		}
		if err := retry(func() error {
			return s.ReadAtAll(0, d, datatype.Byte, func(rank int) []byte {
				return bufs[rank]
			})
		}); err != nil {
			return err
		}
		if jf.verify {
			for r := range bufs {
				if !bytes.Equal(bufs[r], jobPattern(i, r, d)) {
					return fmt.Errorf("rep %d rank %d: read-back mismatch", rep, r)
				}
			}
		}
	}
	if err := s.Sync(); err != nil {
		return err
	}
	return s.Close()
}
