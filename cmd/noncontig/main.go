// Command noncontig runs the paper's synthetic benchmark (§4.1) for one
// parameter combination and prints the measured per-process bandwidth
// and the engine work counters.
//
// Example:
//
//	noncontig -p 8 -nblock 4096 -sblock 8 -pattern nc-nc -collective -engine listless
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/noncontig"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noncontig: ")

	var (
		p          = flag.Int("p", 2, "number of processes")
		nblock     = flag.Int64("nblock", 1024, "N_block: blocks per process")
		sblock     = flag.Int64("sblock", 8, "S_block: bytes per block")
		pattern    = flag.String("pattern", "nc-nc", "access pattern: c-c, nc-c, c-nc, nc-nc")
		collective = flag.Bool("collective", false, "use collective access")
		engine     = flag.String("engine", "listless", "datatype engine: listless or list-based")
		reps       = flag.Int("reps", 0, "write+read repetitions (0 = auto)")
		verify     = flag.Bool("verify", true, "verify read-back data")
		tiles      = flag.Int64("tiles", 1, "filetype instances per access (scales the file size)")
		sieveBuf   = flag.Int("sievebuf", 0, "data-sieving buffer bytes (0 = default)")
		collBuf    = flag.Int("collbuf", 0, "collective buffer bytes (0 = default)")
		ioNodes    = flag.Int("ionodes", 0, "number of I/O processes (0 = all)")
		noPipe     = flag.Bool("no-pipeline", false, "disable the pipelined collective window loop")
		file       = flag.String("file", "", "back the run with this file instead of memory")
		readBW     = flag.Int64("read-bw", 0, "throttle: backend read bandwidth in bytes/s")
		writeBW    = flag.Int64("write-bw", 0, "throttle: backend write bandwidth in bytes/s")
		latency    = flag.Duration("latency", 0, "throttle: per-operation backend latency")
		chaosSeed  = flag.Int64("chaos-seed", 0, "inject seeded transient storage faults, ridden out by retries (0 = off)")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto)")
		traceSumm  = flag.Bool("trace-summary", false, "print the per-phase imbalance summary of the traced run")
	)
	flag.Parse()

	pat, err := noncontig.ParsePattern(*pattern)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}

	var backend storage.Backend = storage.NewMem()
	if *file != "" {
		fb, err := storage.OpenFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer fb.Close()
		defer os.Remove(*file)
		backend = fb
	}
	if *readBW > 0 || *writeBW > 0 || *latency > 0 {
		backend = storage.NewThrottled(backend, *readBW, *writeBW, *latency)
	}
	var collector *trace.Collector
	if *tracePath != "" || *traceSumm {
		collector = trace.NewCollector(trace.DefaultBufSize)
	}

	// Chaos goes outermost on the storage side so every injected fault
	// passes through the Resilient retry policy before the I/O layer
	// sees it; recoverable-only injection keeps the run correct.
	var chaos *storage.Chaos
	var resilient *storage.Resilient
	if *chaosSeed != 0 {
		chaos = storage.NewChaos(*chaosSeed, backend, storage.TransientOnly())
		chaos.SetTracer(collector.Storage())
		resilient = storage.NewResilient(chaos, storage.ResilientConfig{Seed: *chaosSeed + 1})
		resilient.SetTracer(collector.Storage())
		backend = resilient
	}
	if collector != nil {
		// Outermost wrapper: spans cover the whole retry loop of each
		// operation, on the shared storage-backend track.
		backend = storage.NewTraced(backend, collector.Storage())
	}

	cfg := noncontig.Config{
		P:          *p,
		Blockcount: *nblock,
		Blocklen:   *sblock,
		Pattern:    pat,
		Collective: *collective,
		Engine:     eng,
		Reps:       *reps,
		Verify:     *verify,
		Tiles:      *tiles,
		Backend:    backend,
		Options: core.Options{
			SieveBufSize:        *sieveBuf,
			CollBufSize:         *collBuf,
			IONodes:             *ioNodes,
			DisableCollPipeline: *noPipe,
		},
		Trace: collector,
	}
	if cfg.Reps == 0 {
		cfg.Reps = autoReps(cfg.DataPerProc())
	}
	if *chaosSeed != 0 {
		// Fault injection can expose hangs; bound them with a diagnostic.
		cfg.StallTimeout = 30 * time.Second
	}

	res, err := noncontig.Run(cfg)
	if err != nil {
		if collector != nil {
			fmt.Fprintf(os.Stderr, "trace forensics (last events per rank):\n%s", collector.Forensics(8))
		}
		log.Fatal(err)
	}

	mode := "independent"
	if *collective {
		mode = "collective"
	}
	fmt.Printf("noncontig %s %s %s  P=%d  N_block=%d  S_block=%dB  data/proc=%s  reps=%d\n",
		mode, pat, eng, cfg.P, cfg.Blockcount, cfg.Blocklen,
		humanBytes(cfg.DataPerProc()), cfg.Reps)
	fmt.Printf("  write: %10.2f MB/s per process   (%v total)\n", res.WriteBpp, res.WriteTime.Round(time.Microsecond))
	fmt.Printf("  read:  %10.2f MB/s per process   (%v total)\n", res.ReadBpp, res.ReadTime.Round(time.Microsecond))
	fmt.Println("  rank-0 stats:")
	for _, line := range strings.Split(strings.TrimRight(res.Stats.String(), "\n"), "\n") {
		fmt.Printf("    %s\n", line)
	}
	fmt.Printf("  world comm: %d messages, %s payload, %v recv wait\n",
		res.Comm.Messages, humanBytes(res.Comm.Bytes), time.Duration(res.Comm.RecvWaitNs).Round(time.Microsecond))
	if chaos != nil {
		st := chaos.Stats()
		retries, exhausted := resilient.RetryStats()
		fmt.Printf("  chaos(seed=%d): %d transients, %d short reads, %d torn writes, %d spikes; %d retries, %d exhausted\n",
			*chaosSeed, st.Transients, st.ShortReads, st.TornWrites, st.LatencySpikes, retries, exhausted)
	}
	if *verify {
		fmt.Println("  verification: OK")
	}
	if *traceSumm {
		fmt.Print(collector.Summary())
	}
	if *tracePath != "" {
		out, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := collector.WriteChrome(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  trace: %s (%d events, %d dropped; load in chrome://tracing or Perfetto)\n",
			*tracePath, len(collector.Events()), collector.Dropped())
	}
}

func parseEngine(s string) (core.Engine, error) {
	switch s {
	case "listless":
		return core.Listless, nil
	case "list-based", "listbased":
		return core.ListBased, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want listless or list-based)", s)
}

func autoReps(dataPerProc int64) int {
	r := int((8 << 20) / dataPerProc)
	if r < 1 {
		return 1
	}
	if r > 200 {
		return 200
	}
	return r
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
