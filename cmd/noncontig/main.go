// Command noncontig runs the paper's synthetic benchmark (§4.1) for one
// parameter combination and prints the measured per-process bandwidth
// and the engine work counters.
//
// Example:
//
//	noncontig -p 8 -nblock 4096 -sblock 8 -pattern nc-nc -collective -engine listless
//
// By default the ranks are goroutines in this process.  With -net the
// ranks become separate OS processes exchanging over TCP:
//
//	noncontig -net launch -p 4 -nblock 1024 -sblock 64 -pattern nc-nc -collective
//
// forks one rank process per rank (re-executing this binary with
// -net rank), hands rank 0 the pre-bound rendezvous socket, and
// supervises the run; every rank opens the shared file itself under a
// shared advisory lock.  -net requires -collective: collective I/O
// partitions the file into disjoint domains, which is what makes
// cross-process access safe without a shared lock table.
//
// With -servers the file moves behind a tier of I/O-server processes,
// each owning one stripe of the file and evaluating registered fileview
// patterns server-side:
//
//	noncontig -net launch -p 4 -servers 2 -stripe 65536 -nblock 1024 -sblock 64 -pattern nc-nc -collective
//
// launches the servers first (each adopting a pre-bound listener), then
// the ranks with -server-addrs pointing at them; the ranks mount the
// striped remote backend instead of a shared local file.  When every
// rank has exited the launcher interrupts the servers, which sync their
// stripes, print their request stats, and flush their traces.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ioserver"
	"repro/internal/noncontig"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("noncontig: ")

	var (
		p          = flag.Int("p", 2, "number of processes")
		nblock     = flag.Int64("nblock", 1024, "N_block: blocks per process")
		sblock     = flag.Int64("sblock", 8, "S_block: bytes per block")
		pattern    = flag.String("pattern", "nc-nc", "access pattern: c-c, nc-c, c-nc, nc-nc")
		collective = flag.Bool("collective", false, "use collective access")
		engine     = flag.String("engine", "listless", "datatype engine: listless or list-based")
		reps       = flag.Int("reps", 0, "write+read repetitions (0 = auto)")
		verify     = flag.Bool("verify", true, "verify read-back data")
		tiles      = flag.Int64("tiles", 1, "filetype instances per access (scales the file size)")
		sieveBuf   = flag.Int("sievebuf", 0, "data-sieving buffer bytes (0 = default)")
		collBuf    = flag.Int("collbuf", 0, "collective buffer bytes (0 = default)")
		ioNodes    = flag.Int("ionodes", 0, "number of I/O processes (0 = all)")
		noPipe     = flag.Bool("no-pipeline", false, "disable the pipelined collective window loop")
		noPool     = flag.Bool("no-pool", false, "disable buffer pooling: allocate every hot-path buffer fresh")
		noVectored = flag.Bool("no-vectored", false, "disable vectored storage I/O on the sparse direct path")
		noProgram  = flag.Bool("no-program", false, "disable compiled datatype copy programs: pack and position through the recursive walk on every window (the ablation baseline)")
		file       = flag.String("file", "", "back the run with this file instead of memory")
		readBW     = flag.Int64("read-bw", 0, "throttle: backend read bandwidth in bytes/s")
		writeBW    = flag.Int64("write-bw", 0, "throttle: backend write bandwidth in bytes/s")
		latency    = flag.Duration("latency", 0, "throttle: per-operation backend latency")
		chaosSeed  = flag.Int64("chaos-seed", 0, "inject seeded transient storage faults, ridden out by retries (0 = off)")
		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto)")
		traceSumm  = flag.Bool("trace-summary", false, "print the per-phase imbalance summary of the traced run")
		stall      = flag.Duration("stall", 0, "stall watchdog timeout (0 = default: off in-process, 30s with -net)")

		netMode       = flag.String("net", "", `process model: "" (goroutine ranks), "launch" (fork one OS process per rank over TCP), "rank" (run as one such rank; set by launch), "server" (run as one I/O server; set by launch)`)
		netRank       = flag.Int("net-rank", -1, "this process's rank (with -net rank)")
		netRendezvous = flag.String("net-rendezvous", "", "rank 0's rendezvous address (with -net rank, ranks > 0)")
		netFD         = flag.Int("net-fd", 0, "inherited rendezvous listener fd (with -net rank, rank 0)")
		netTimeout    = flag.Duration("net-timeout", 5*time.Minute, "kill the whole -net launch run after this long")

		servers     = flag.Int("servers", 0, "with -net launch: number of I/O-server processes to stripe the file across")
		stripeUnit  = flag.Int64("stripe", 64<<10, "stripe unit bytes of the I/O-server tier")
		serverAddrs = flag.String("server-addrs", "", "comma-separated I/O-server addresses to mount as the backend (with -net rank; set by launch)")
		netIndex    = flag.Int("net-index", -1, "this server's stripe index (with -net server; set by launch)")
		noViews     = flag.Bool("no-views", false, "disable server-side view evaluation: ship raw offset lists to the I/O servers instead")

		noEpochs       = flag.Bool("no-epochs", false, "disable the epoch commit protocol on epoch-capable backends (writes apply in place, crash atomicity off)")
		serverRestarts = flag.Int("server-restarts", 0, "with -net launch -servers: restart a crashed I/O server up to this many times on its inherited listener")
		killServer     = flag.Duration("kill-server", 0, "with -net launch -servers: SIGKILL server 0 after this long, to demonstrate supervised recovery (0 = off)")
		wireChaosSeed  = flag.Int64("wire-chaos-seed", 0, "inject seeded wire faults (drops, dups, header corruption, resets, partitions) on this rank's server connections (0 = off)")

		jobs        = flag.Int("jobs", 0, "run N concurrent I/O sessions through the shared session service (in-process; each session is a world of -p ranks over its own file region; 0 = off)")
		workers     = flag.Int("workers", 0, "with -jobs: shared worker-pool slots bounding collectives in flight (0 = default 4)")
		queueCap    = flag.Int("queue", 0, "with -jobs: admission queue depth; arrivals beyond it are rejected (0 = default 64)")
		fifoSched   = flag.Bool("fifo", false, "with -jobs: admit in arrival order instead of weighted-fair")
		noSessCache = flag.Bool("no-session-cache", false, "with -jobs: disable the per-session write-behind/read-ahead cache")
		conns       = flag.Int("conns", 0, "with -jobs -servers: client connections per I/O server (0 = 1)")

		metricsAddr = flag.String("metrics-addr", "", "serve a Prometheus /metrics endpoint on this address (e.g. 127.0.0.1:0; the bound address is printed as \"metrics <proc> <addr>\")")
		metricsFD   = flag.Int("metrics-fd", 0, "inherited metrics listener fd (set by launch)")
		metricsPush = flag.String("metrics-push", "", "push the final metrics snapshot to this launcher collector address on clean exit (set by launch)")
		noMetrics   = flag.Bool("no-metrics", false, "disable the metrics registry entirely (the overhead-measurement baseline)")
		traceSplit  = flag.Bool("trace-split", false, "with -net launch -trace: keep the per-process trace files next to the merged one")
		flight      = flag.String("flight", "", "flight recorder: periodically persist recent spans and metrics to this path, dumped on SIGQUIT, collective fault, or watchdog stall and surviving SIGKILL (with -net launch: a directory, one dump per process)")
	)
	flag.Parse()

	pat, err := noncontig.ParsePattern(*pattern)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}

	if *netMode != "" && *netMode != "server" {
		if !*collective {
			log.Fatal("-net requires -collective: independent data sieving read-modify-writes the shared file under a per-process lock table, which cannot exclude other rank processes")
		}
		if *chaosSeed != 0 {
			log.Fatal("-net does not support -chaos-seed (per-process injection would desynchronize the ranks)")
		}
	}
	stallTimeout := *stall
	if *netMode != "" && stallTimeout == 0 {
		stallTimeout = 30 * time.Second
	}

	if *stripeUnit <= 0 {
		log.Fatal("-stripe must be positive")
	}
	if *jobs > 0 {
		if *netMode != "" {
			log.Fatal("-jobs runs in-process; combine it with -servers for an in-process server tier, not with -net")
		}
		runJobs(jobsFlags{
			jobs: *jobs, ranks: *p,
			nblock: *nblock, sblock: *sblock, reps: *reps,
			workers: *workers, queue: *queueCap, fifo: *fifoSched,
			noCache: *noSessCache,
			servers: *servers, stripe: *stripeUnit, conns: *conns,
			readBW: *readBW, writeBW: *writeBW, latency: *latency,
			verify: *verify, engine: eng,
			sieveBuf: *sieveBuf, collBuf: *collBuf,
			metricsAddr: *metricsAddr, noMetrics: *noMetrics,
			stall: stallTimeout,
		})
		return
	}
	switch *netMode {
	case "":
		// fall through to the in-process run below
	case "launch":
		netLaunch(*p, pat, eng, launchFlags{
			nblock: *nblock, sblock: *sblock, reps: *reps, verify: *verify, tiles: *tiles,
			sieveBuf: *sieveBuf, collBuf: *collBuf, ioNodes: *ioNodes, noPipe: *noPipe,
			noPool: *noPool, noVectored: *noVectored, noViews: *noViews,
			noProgram: *noProgram,
			servers:   *servers, stripe: *stripeUnit,
			noEpochs: *noEpochs, serverRestarts: *serverRestarts,
			killServer: *killServer, wireChaosSeed: *wireChaosSeed,
			file: *file, readBW: *readBW, writeBW: *writeBW, latency: *latency,
			tracePath: *tracePath, stall: stallTimeout, timeout: *netTimeout,
			traceSplit: *traceSplit, flight: *flight, noMetrics: *noMetrics,
		})
		return
	case "server":
		runServer(serverConfig{
			index: *netIndex, count: *servers, stripe: *stripeUnit,
			file: *file, tracePath: *tracePath,
			metricsAddr: *metricsAddr, metricsFD: *metricsFD,
			metricsPush: *metricsPush,
			noMetrics:   *noMetrics, flight: *flight,
		})
		return
	case "rank":
		// handled below: same config assembly, different backend + runner
	default:
		log.Fatalf("unknown -net mode %q (want launch, rank, or server)", *netMode)
	}

	isRank := *netMode == "rank"
	proc := "local"
	if isRank {
		proc = fmt.Sprintf("rank%d", *netRank)
	}
	var reg *obs.Registry
	if !*noMetrics {
		reg = obs.NewRegistry()
	}
	var backend storage.Backend
	var agg *ioserver.Striped
	if isRank {
		if *netRank < 0 || *netRank >= *p {
			log.Fatalf("-net rank requires -net-rank in [0, %d)", *p)
		}
		if *serverAddrs != "" {
			copts := ioserver.ClientOptions{Metrics: reg}
			if *wireChaosSeed != 0 {
				copts.Timeout = 500 * time.Millisecond // a dropped frame costs one deadline, not 30s
				copts.WireChaos = &transport.WireChaosConfig{
					Seed:       *wireChaosSeed,
					PSpike:     0.02,
					PDrop:      0.01,
					PDup:       0.01,
					PCorrupt:   0.01,
					PReset:     0.005,
					PPartition: 0.002,
				}
			}
			a, err := ioserver.NewStriped(*stripeUnit, strings.Split(*serverAddrs, ","), copts)
			if err != nil {
				log.Fatal(err)
			}
			defer a.Close()
			agg = a
			// The remote tier rides behind the retry policy: a server
			// bounce or an injected wire fault surfaces as a transient,
			// and the client's reconnect + stage-log replay heals it.
			backend = storage.NewResilient(a, storage.ResilientConfig{
				MaxRetries:  30,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  200 * time.Millisecond,
			})
		} else {
			if *file == "" {
				log.Fatal("-net rank requires -file (the shared data file) or -server-addrs")
			}
			fb, err := storage.OpenFileShared(*file)
			if err != nil {
				log.Fatal(err)
			}
			defer fb.Close()
			backend = fb
		}
	} else {
		backend = storage.NewMem()
		if *file != "" {
			fb, err := storage.OpenFile(*file)
			if err != nil {
				log.Fatal(err)
			}
			defer fb.Close()
			defer os.Remove(*file)
			backend = fb
		}
	}
	if *readBW > 0 || *writeBW > 0 || *latency > 0 {
		backend = storage.NewThrottled(backend, *readBW, *writeBW, *latency)
	}
	var collector *trace.Collector
	if *tracePath != "" || *traceSumm {
		collector = trace.NewCollector(trace.DefaultBufSize)
	} else if *flight != "" {
		// Flight-only runs keep a small always-on ring: enough recent
		// spans for a post-mortem without full-trace memory.
		collector = trace.NewCollector(obs.RecorderBufSize)
	}
	serveMetrics(reg, *metricsAddr, *metricsFD, proc)
	// A clean exit pushes the final snapshot to the launcher, so a rank
	// that finishes between two scrape ticks still lands in the merged
	// run report (a crashed rank is covered by its last-good scrape).
	defer obs.Push(*metricsPush, proc, reg)
	var rec *obs.Recorder
	if *flight != "" {
		rec = obs.NewRecorder(*flight, proc, reg, collector)
		rec.Start(0)
		defer rec.Stop()
		defer rec.Dump("clean exit")
	}

	// Chaos goes outermost on the storage side so every injected fault
	// passes through the Resilient retry policy before the I/O layer
	// sees it; recoverable-only injection keeps the run correct.
	var chaos *storage.Chaos
	var resilient *storage.Resilient
	if *chaosSeed != 0 {
		chaos = storage.NewChaos(*chaosSeed, backend, storage.TransientOnly())
		chaos.SetTracer(collector.Storage())
		resilient = storage.NewResilient(chaos, storage.ResilientConfig{Seed: *chaosSeed + 1})
		resilient.SetTracer(collector.Storage())
		backend = resilient
	}
	if collector != nil {
		// Outermost wrapper: spans cover the whole retry loop of each
		// operation, on the shared storage-backend track.
		backend = storage.NewTraced(backend, collector.Storage())
	}

	cfg := noncontig.Config{
		P:          *p,
		Blockcount: *nblock,
		Blocklen:   *sblock,
		Pattern:    pat,
		Collective: *collective,
		Engine:     eng,
		Reps:       *reps,
		Verify:     *verify,
		Tiles:      *tiles,
		Backend:    backend,
		Options: core.Options{
			SieveBufSize:        *sieveBuf,
			CollBufSize:         *collBuf,
			IONodes:             *ioNodes,
			DisableCollPipeline: *noPipe,
			DisablePool:         *noPool,
			DisableVectored:     *noVectored,
			DisableProgram:      *noProgram,
			DisableViewPath:     *noViews,
			DisableEpochs:       *noEpochs,
		},
		Trace:        collector,
		Metrics:      reg,
		StallTimeout: stallTimeout,
		OnStall:      func(diag string) { rec.Dump("watchdog stall: " + diag) },
	}
	if cfg.Reps == 0 {
		cfg.Reps = autoReps(cfg.DataPerProc())
	}
	if *chaosSeed != 0 && cfg.StallTimeout == 0 {
		// Fault injection can expose hangs; bound them with a diagnostic.
		cfg.StallTimeout = 30 * time.Second
	}

	var res noncontig.Result
	if isRank {
		cfgT := transport.TCPConfig{
			Rank: *netRank, Size: *p,
			Rendezvous: *netRendezvous,
			Trace:      collector,
		}
		if *netFD > 0 {
			l, err := transport.ListenerFromFD(*netFD)
			if err != nil {
				log.Fatal(err)
			}
			cfgT.Listener = l
		} else if *netRank == 0 && *netRendezvous != "" {
			cfgT.Rendezvous = *netRendezvous // rank 0 binds it itself
		} else if *netRank > 0 && *netRendezvous == "" {
			log.Fatal("-net rank needs -net-rendezvous (or -net-fd for rank 0)")
		}
		res, err = noncontig.RunRank(cfg, transport.NewTCP(cfgT))
	} else {
		res, err = noncontig.Run(cfg)
	}
	if err != nil {
		rec.Dump("collective fault: " + err.Error())
		if collector != nil {
			fmt.Fprintf(os.Stderr, "trace forensics (last events per rank):\n%s", collector.Forensics(8))
		}
		log.Fatal(err)
	}

	if isRank && *netRank != 0 {
		// Only rank 0 prints the report; the others confirm and exit.
		fmt.Printf("rank %d ok: %s moved, wire %s out / %s in\n",
			*netRank, humanBytes(cfg.DataPerProc()*int64(cfg.Reps)*2),
			humanBytes(res.Comm.WireBytesSent), humanBytes(res.Comm.WireBytesRecv))
		if agg != nil {
			fmt.Printf("rank %d storage: %d server round-trips\n", *netRank, agg.Rounds())
		}
		writeTrace(*tracePath, collector)
		return
	}

	mode := "independent"
	if *collective {
		mode = "collective"
	}
	if isRank {
		mode += "/tcp"
	}
	fmt.Printf("noncontig %s %s %s  P=%d  N_block=%d  S_block=%dB  data/proc=%s  reps=%d\n",
		mode, pat, eng, cfg.P, cfg.Blockcount, cfg.Blocklen,
		humanBytes(cfg.DataPerProc()), cfg.Reps)
	fmt.Printf("  write: %10.2f MB/s per process   (%v total)\n", res.WriteBpp, res.WriteTime.Round(time.Microsecond))
	fmt.Printf("  read:  %10.2f MB/s per process   (%v total)\n", res.ReadBpp, res.ReadTime.Round(time.Microsecond))
	fmt.Println("  rank-0 stats:")
	for _, line := range strings.Split(strings.TrimRight(res.Stats.String(), "\n"), "\n") {
		fmt.Printf("    %s\n", line)
	}
	fmt.Printf("  world comm: %d messages, %s payload, %v recv wait\n",
		res.Comm.Messages, humanBytes(res.Comm.Bytes), time.Duration(res.Comm.RecvWaitNs).Round(time.Microsecond))
	if res.Comm.WireBytesSent > 0 || res.Comm.WireBytesRecv > 0 {
		fmt.Printf("  wire: %s sent, %s received (frame headers included)\n",
			humanBytes(res.Comm.WireBytesSent), humanBytes(res.Comm.WireBytesRecv))
	}
	if agg != nil {
		fmt.Printf("  storage tier: %d servers, stripe %s, %d round-trips from this rank\n",
			len(agg.Clients()), humanBytes(*stripeUnit), agg.Rounds())
		if st, err := agg.ServerStats(); err == nil {
			fmt.Printf("    server totals: %s\n", st)
		}
	}
	if chaos != nil {
		st := chaos.Stats()
		retries, exhausted := resilient.RetryStats()
		fmt.Printf("  chaos(seed=%d): %d transients, %d short reads, %d torn writes, %d spikes; %d retries, %d exhausted\n",
			*chaosSeed, st.Transients, st.ShortReads, st.TornWrites, st.LatencySpikes, retries, exhausted)
	}
	if *verify {
		fmt.Println("  verification: OK")
	}
	if *traceSumm {
		fmt.Print(collector.Summary())
	}
	writeTrace(*tracePath, collector)
}

// launchFlags carries the benchmark parameters the launcher forwards to
// every rank process.
type launchFlags struct {
	nblock, sblock    int64
	reps              int
	verify            bool
	tiles             int64
	sieveBuf, collBuf int
	ioNodes           int
	noPipe            bool
	noPool            bool
	noVectored        bool
	noProgram         bool
	noViews           bool
	servers           int
	stripe            int64
	noEpochs          bool
	serverRestarts    int
	killServer        time.Duration
	wireChaosSeed     int64
	file              string
	readBW, writeBW   int64
	latency           time.Duration
	tracePath         string
	stall             time.Duration
	timeout           time.Duration
	traceSplit        bool
	flight            string
	noMetrics         bool
}

// netLaunch forks one rank process per rank against a shared file and
// supervises them.
func netLaunch(p int, pat noncontig.Pattern, eng core.Engine, lf launchFlags) {
	reps := lf.reps
	if reps == 0 {
		t := lf.tiles
		if t <= 0 {
			t = 1
		}
		reps = autoReps(t * lf.nblock * lf.sblock)
	}
	if lf.servers == 0 && (lf.serverRestarts > 0 || lf.killServer > 0 || lf.wireChaosSeed != 0) {
		log.Fatal("-server-restarts, -kill-server, and -wire-chaos-seed require -servers")
	}
	if lf.killServer > 0 && lf.serverRestarts == 0 {
		log.Fatal("-kill-server needs -server-restarts > 0, or the killed server stays dead and the run fails")
	}
	// With an I/O-server tier the ranks mount the servers instead of a
	// shared local file; -file then names optional per-server stripe
	// persistence, not rank-shared state.
	path := lf.file
	if lf.servers == 0 {
		if path == "" {
			tmp, err := os.CreateTemp("", "noncontig-net-*.dat")
			if err != nil {
				log.Fatal(err)
			}
			path = tmp.Name()
			tmp.Close()
		}
		defer os.Remove(path)
	}
	if lf.flight != "" {
		if err := os.MkdirAll(lf.flight, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	args := func(rank int, rendezvous string, serverAddrs []string) []string {
		a := []string{
			"-net", "rank",
			"-net-rank", fmt.Sprint(rank),
			"-p", fmt.Sprint(p),
			"-nblock", fmt.Sprint(lf.nblock),
			"-sblock", fmt.Sprint(lf.sblock),
			"-pattern", pat.String(),
			"-engine", eng.String(),
			"-reps", fmt.Sprint(reps),
			"-tiles", fmt.Sprint(lf.tiles),
			"-collective",
			fmt.Sprintf("-verify=%t", lf.verify),
			"-stall", lf.stall.String(),
		}
		if lf.servers > 0 {
			a = append(a,
				"-server-addrs", strings.Join(serverAddrs, ","),
				"-stripe", fmt.Sprint(lf.stripe))
			if lf.wireChaosSeed != 0 {
				// Distinct per-rank seeds: identical fault schedules on
				// every rank would synchronize the injected faults.
				a = append(a, "-wire-chaos-seed", fmt.Sprint(lf.wireChaosSeed+int64(rank)))
			}
		} else {
			a = append(a, "-file", path)
		}
		if lf.noEpochs {
			a = append(a, "-no-epochs")
		}
		if lf.sieveBuf > 0 {
			a = append(a, "-sievebuf", fmt.Sprint(lf.sieveBuf))
		}
		if lf.collBuf > 0 {
			a = append(a, "-collbuf", fmt.Sprint(lf.collBuf))
		}
		if lf.ioNodes > 0 {
			a = append(a, "-ionodes", fmt.Sprint(lf.ioNodes))
		}
		if lf.noPipe {
			a = append(a, "-no-pipeline")
		}
		if lf.noPool {
			a = append(a, "-no-pool")
		}
		if lf.noVectored {
			a = append(a, "-no-vectored")
		}
		if lf.noProgram {
			a = append(a, "-no-program")
		}
		if lf.noViews {
			a = append(a, "-no-views")
		}
		if lf.readBW > 0 {
			a = append(a, "-read-bw", fmt.Sprint(lf.readBW))
		}
		if lf.writeBW > 0 {
			a = append(a, "-write-bw", fmt.Sprint(lf.writeBW))
		}
		if lf.latency > 0 {
			a = append(a, "-latency", lf.latency.String())
		}
		if lf.tracePath != "" {
			a = append(a, "-trace", fmt.Sprintf("%s.rank%d", lf.tracePath, rank))
		}
		if lf.noMetrics {
			a = append(a, "-no-metrics")
		}
		if lf.flight != "" {
			a = append(a, "-flight", filepath.Join(lf.flight, fmt.Sprintf("rank%d.flight", rank)))
		}
		if rank == 0 {
			a = append(a, "-net-fd", fmt.Sprint(transport.RendezvousFD))
		} else {
			a = append(a, "-net-rendezvous", rendezvous)
		}
		return a
	}
	serverArgs := func(idx int) []string {
		a := []string{
			"-net", "server",
			"-net-index", fmt.Sprint(idx),
			"-servers", fmt.Sprint(lf.servers),
			"-stripe", fmt.Sprint(lf.stripe),
		}
		if lf.file != "" {
			a = append(a, "-file", fmt.Sprintf("%s.srv%d", lf.file, idx))
		}
		if lf.tracePath != "" {
			a = append(a, "-trace", fmt.Sprintf("%s.srv%d", lf.tracePath, idx))
		}
		if lf.noMetrics {
			a = append(a, "-no-metrics")
		}
		if lf.flight != "" {
			a = append(a, "-flight", filepath.Join(lf.flight, fmt.Sprintf("srv%d.flight", idx)))
		}
		return a
	}
	lo := transport.LaunchOptions{
		Size: p, Exe: exe, Args: args, Timeout: lf.timeout,
		Servers: lf.servers, ServerArgs: serverArgs,
		ServerRestarts:  lf.serverRestarts,
		KillServerAfter: lf.killServer,
	}
	if !lf.noMetrics {
		// The launcher hands every child a pre-bound metrics listener,
		// announces the addresses ("metrics <proc> <addr>" — CI curls
		// them mid-run), scrapes everyone, and prints the merged run
		// report on exit.
		lo.Metrics = &transport.MetricsOptions{Announce: os.Stdout, Report: os.Stdout}
	}
	if lf.flight != "" {
		// Preserve a crashed server's dying breath: the supervised
		// restart would let the replacement overwrite its flight dump.
		lo.OnServerRestart = func(idx, attempt int) {
			dump := filepath.Join(lf.flight, fmt.Sprintf("srv%d.flight", idx))
			os.Rename(dump, fmt.Sprintf("%s.crash%d", dump, attempt))
		}
	}
	err = transport.Launch(lo)
	if lf.tracePath != "" {
		// Merge the per-process traces into one file spanning every rank
		// and server (best effort on a failed run: the survivors still
		// merge; a crashed process may have no trace to contribute).
		mergeTraces(lf.tracePath, p, lf.servers, lf.traceSplit)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// mergeTraces folds the launcher's per-process Chrome traces
// (<path>.rankN, <path>.srvK) into one file at path with one track per
// process; -trace-split keeps the parts.
func mergeTraces(path string, ranks, servers int, split bool) {
	var ins []trace.MergeInput
	for r := 0; r < ranks; r++ {
		ins = append(ins, trace.MergeInput{Path: fmt.Sprintf("%s.rank%d", path, r), Proc: fmt.Sprintf("rank %d", r)})
	}
	for s := 0; s < servers; s++ {
		ins = append(ins, trace.MergeInput{Path: fmt.Sprintf("%s.srv%d", path, s), Proc: fmt.Sprintf("srv %d", s)})
	}
	n, err := trace.MergeChromeFiles(path, ins)
	if err != nil {
		log.Printf("trace merge: %v", err)
		return
	}
	fmt.Printf("  trace: %s (%d of %d process traces merged; load in chrome://tracing or Perfetto)\n", path, n, len(ins))
	if !split {
		for _, in := range ins {
			os.Remove(in.Path)
		}
	}
}

// serveMetrics exposes reg's /metrics and /metrics.bin endpoints on the
// launcher-inherited listener (fd) or a locally bound one (addr),
// announcing the bound address in the greppable "metrics <proc> <addr>"
// form.  No listener or no registry: no server.
func serveMetrics(reg *obs.Registry, addr string, fd int, proc string) {
	if reg == nil || (addr == "" && fd <= 0) {
		return
	}
	var ln net.Listener
	var err error
	if fd > 0 {
		ln, err = transport.ListenerFromFD(fd)
	} else {
		ln, err = net.Listen("tcp", addr)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics %s %s\n", proc, ln.Addr())
	obs.Serve(ln, reg, proc)
}

// serverConfig carries the -net server role's flags.
type serverConfig struct {
	index, count int
	stripe       int64
	file         string
	tracePath    string
	metricsAddr  string
	metricsFD    int
	metricsPush  string
	noMetrics    bool
	flight       string
}

// runServer is the -net server role: adopt the pre-bound listener the
// launcher passed at fd 3, serve this stripe until interrupted, then
// sync, report, and flush the trace.  A file-backed stripe keeps its
// intent journal at <file>.journal: recovery replays committed epochs
// and discards uncommitted ones before serving, so a supervised restart
// after a crash (or SIGKILL) resumes from the last commit point.
func runServer(sc serverConfig) {
	if sc.count <= 0 || sc.index < 0 || sc.index >= sc.count {
		log.Fatalf("-net server requires -net-index in [0, %d)", sc.count)
	}
	proc := fmt.Sprintf("srv%d", sc.index)
	var reg *obs.Registry
	if !sc.noMetrics {
		reg = obs.NewRegistry()
	}
	var backend storage.Backend = storage.NewMem()
	var journal *ioserver.Journal
	var recov ioserver.RecoveryInfo
	if sc.file != "" {
		fb, err := storage.OpenFile(sc.file)
		if err != nil {
			log.Fatal(err)
		}
		defer fb.Close()
		jb, err := storage.OpenFile(sc.file + ".journal")
		if err != nil {
			log.Fatal(err)
		}
		defer jb.Close()
		j, info, err := ioserver.RecoverJournal(jb, fb)
		if err != nil {
			log.Fatal(err)
		}
		if info.AppliedEpochs > 0 || info.DiscardedEpochs > 0 || info.TornTail {
			fmt.Printf("server %d recovery: %s\n", sc.index, info)
		}
		journal = j
		recov = info
		backend = fb
	}
	var collector *trace.Collector
	if sc.tracePath != "" {
		collector = trace.NewCollector(trace.DefaultBufSize)
	} else if sc.flight != "" {
		collector = trace.NewCollector(obs.RecorderBufSize)
	}
	if collector != nil {
		backend = storage.NewTraced(backend, collector.Storage())
	}
	serveMetrics(reg, sc.metricsAddr, sc.metricsFD, proc)
	var rec *obs.Recorder
	if sc.flight != "" {
		rec = obs.NewRecorder(sc.flight, proc, reg, collector)
		rec.Start(0)
	}

	srv, err := ioserver.New(ioserver.Config{
		Backend:  backend,
		Geom:     storage.StripeGeom{Unit: sc.stripe, Count: sc.count},
		Index:    sc.index,
		Journal:  journal,
		Tracer:   collector.Storage(),
		Metrics:  reg,
		Proc:     proc,
		Recovery: recov,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := transport.ListenerFromFD(transport.RendezvousFD)
	if err != nil {
		log.Fatal(err)
	}

	// SIGINT and SIGTERM both mean graceful shutdown (seal the journal,
	// sync the stripe, drop connections); Close is idempotent, so repeat
	// signals are harmless.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		for range sig {
			srv.Close()
		}
	}()

	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
	if err := backend.Sync(); err != nil {
		log.Fatal(err)
	}
	rec.Dump("shutdown")
	rec.Stop()
	obs.Push(sc.metricsPush, proc, reg)
	fmt.Printf("server %d/%d (stripe %s): %s\n", sc.index, sc.count, humanBytes(sc.stripe), srv.Stats())
	writeTrace(sc.tracePath, collector)
}

func writeTrace(path string, collector *trace.Collector) {
	if path == "" {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := collector.WriteChrome(out); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trace: %s (%d events, %d dropped; load in chrome://tracing or Perfetto)\n",
		path, len(collector.Events()), collector.Dropped())
}

func parseEngine(s string) (core.Engine, error) {
	switch s {
	case "listless":
		return core.Listless, nil
	case "list-based", "listbased":
		return core.ListBased, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want listless or list-based)", s)
}

func autoReps(dataPerProc int64) int {
	r := int((8 << 20) / dataPerProc)
	if r < 1 {
		return 1
	}
	if r > 200 {
		return 200
	}
	return r
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
