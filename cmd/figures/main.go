// Command figures regenerates the tables and figures of the paper's
// evaluation section.
//
//	figures -all                  # everything, full scale
//	figures -fig 5 -fig 6         # selected figures
//	figures -table 3 -steps 10    # Table 3 with reduced step count
//	figures -scale quick          # CI-sized sweeps
//	figures -csv out/             # additionally dump CSV per figure
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var figs, tables multiFlag
	flag.Var(&figs, "fig", "figure to regenerate (5, 6, 7, 8); repeatable")
	flag.Var(&tables, "table", "table to regenerate (1, 2, 3); repeatable")
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		pipeline = flag.String("pipeline", "", "run the sequential-vs-pipelined collective ablation and write its JSON to this path (e.g. BENCH_pipeline.json)")
		transp   = flag.String("transport", "", "run the in-process-vs-TCP exchange comparison and write its JSON to this path (e.g. BENCH_transport.json)")
		alloc    = flag.String("alloc", "", "run the pooled-vs-unpooled allocation comparison and write its JSON to this path (e.g. BENCH_alloc.json)")
		server   = flag.String("server", "", "run the I/O-server tier comparison (local vs striped servers; views vs offset lists) and write its JSON to this path (e.g. BENCH_server.json)")
		sessionF = flag.String("session", "", "run the I/O session-service comparison (concurrent cached sessions vs serialized uncached runs) and write its JSON to this path (e.g. BENCH_session.json)")
		obsF     = flag.String("obs", "", "run the metrics-instrumentation overhead comparison (registry on vs -no-metrics) and write its JSON to this path (e.g. BENCH_obs.json)")
		dtypeF   = flag.String("datatype", "", "run the per-shape datatype comparison (compiled copy program vs recursive walk vs memcpy) and write its JSON to this path (e.g. BENCH_datatype.json)")
		phases   = flag.Bool("phases", false, "run one traced collective per engine and print the per-phase imbalance breakdown")
		scaleS   = flag.String("scale", "full", "experiment scale: full or quick")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files")
		steps    = flag.Int("steps", 10, "BTIO steps for Table 3 (paper default is 40)")
		classes  = flag.String("classes", "B,C", "comma-separated BTIO classes for Table 3")
		psFlag   = flag.String("procs", "4,9,16,25", "comma-separated process counts for Table 3")
		iters    = flag.Int("iters", 1, "BTIO compute sweeps per step")
	)
	flag.Parse()

	scale := bench.Full
	if *scaleS == "quick" {
		scale = bench.Quick
	} else if *scaleS != "full" {
		log.Fatalf("unknown scale %q", *scaleS)
	}

	if *all {
		figs = multiFlag{"5", "6", "7", "8"}
		tables = multiFlag{"1", "2", "3"}
	}
	if len(figs) == 0 && len(tables) == 0 && *pipeline == "" && *transp == "" && *alloc == "" && *server == "" && *sessionF == "" && *obsF == "" && *dtypeF == "" && !*phases {
		flag.Usage()
		os.Exit(2)
	}

	if *phases {
		t0 := time.Now()
		rs, err := bench.PhaseBreakdown(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatPhaseBreakdown(scale, rs))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
	}

	if *pipeline != "" {
		t0 := time.Now()
		pc, err := bench.Pipeline(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatPipeline(pc))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		data, err := bench.PipelineJSON(pc)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*pipeline, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *pipeline)
	}

	if *transp != "" {
		t0 := time.Now()
		tc, err := bench.Transport(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatTransport(tc))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		data, err := bench.TransportJSON(tc)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*transp, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *transp)
	}

	if *alloc != "" {
		t0 := time.Now()
		ac, err := bench.Alloc(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatAlloc(ac))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		data, err := bench.AllocJSON(ac)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*alloc, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *alloc)
	}

	if *server != "" {
		t0 := time.Now()
		sc, err := bench.Server(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatServer(sc))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		data, err := bench.ServerJSON(sc)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*server, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *server)
	}

	if *sessionF != "" {
		t0 := time.Now()
		sc, err := bench.Session(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatSession(sc))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		data, err := bench.SessionJSON(sc)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*sessionF, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *sessionF)
	}

	if *obsF != "" {
		t0 := time.Now()
		oc, err := bench.Obs(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatObs(oc))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		data, err := bench.ObsJSON(oc)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*obsF, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *obsF)
	}

	if *dtypeF != "" {
		t0 := time.Now()
		dc, err := bench.Datatype(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(bench.FormatDatatype(dc))
		fmt.Printf("(measured at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		data, err := bench.DatatypeJSON(dc)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*dtypeF, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *dtypeF)
	}

	figRunners := map[string]func(bench.Scale) (bench.Figure, error){
		"5": bench.Fig5, "6": bench.Fig6, "7": bench.Fig7, "8": bench.Fig8,
	}
	for _, id := range figs {
		run, ok := figRunners[id]
		if !ok {
			log.Fatalf("unknown figure %q", id)
		}
		t0 := time.Now()
		fig, err := run(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatFigure(fig))
		fmt.Printf("(regenerated at scale %s in %v)\n\n", scale, time.Since(t0).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("fig%s.csv", id))
			if err := os.WriteFile(path, []byte(bench.FigureCSV(fig)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}

	for _, id := range tables {
		switch id {
		case "1":
			rows, err := bench.Table1(splitList(*classes))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(bench.FormatTable1(rows))
		case "2":
			rows, err := bench.Table2(splitList(*classes), parseInts(*psFlag))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(bench.FormatTable2(rows))
		case "3":
			cfg := bench.Table3Config{
				Classes:      splitList(*classes),
				Ps:           parseInts(*psFlag),
				Steps:        *steps,
				ComputeIters: *iters,
				Ghost:        1,
				Verify:       true,
			}
			if scale == bench.Quick {
				cfg.Classes = []string{"S", "W"}
				cfg.Ps = []int{4, 9}
				cfg.Steps = 3
			}
			t0 := time.Now()
			rows, err := bench.Table3(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(bench.FormatTable3(rows))
			fmt.Printf("(steps=%d per run, paper uses 40; regenerated in %v)\n\n",
				cfg.Steps, time.Since(t0).Round(time.Millisecond))
		default:
			log.Fatalf("unknown table %q", id)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
			log.Fatalf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out
}
