// Command typeinspect builds a derived datatype from command-line
// parameters and prints its derived properties, the head of its
// flattened ol-list, the size of its compact encoding, and a
// flattening-on-the-fly navigation trace — making the paper's
// representation-size argument (§2.1) tangible.
//
// Subcommands:
//
//	typeinspect vector -count 1000 -blocklen 1 -stride 2 -elem double
//	typeinspect subarray -sizes 10,10 -subsizes 4,4 -starts 2,2 -order C
//	typeinspect noncontig -rank 1 -np 4 -nblock 16 -sblock 8
//	typeinspect btio -class S -np 4 -rank 0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/btio"
	"repro/internal/datatype"
	"repro/internal/flatten"
	"repro/internal/fotf"
	"repro/internal/noncontig"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("typeinspect: ")
	if len(os.Args) < 2 {
		usage()
	}
	var dt *datatype.Type
	var err error
	switch os.Args[1] {
	case "vector":
		dt, err = buildVector(os.Args[2:])
	case "subarray":
		dt, err = buildSubarray(os.Args[2:])
	case "noncontig":
		dt, err = buildNoncontig(os.Args[2:])
	case "btio":
		dt, err = buildBTIO(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
	inspect(dt)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: typeinspect {vector|subarray|noncontig|btio} [flags]")
	os.Exit(2)
}

func elemByName(name string) (*datatype.Type, error) {
	for _, t := range []*datatype.Type{datatype.Byte, datatype.Int16, datatype.Int32,
		datatype.Int64, datatype.Float32, datatype.Float64, datatype.Complex128} {
		if t.Name() == name || (name == "double" && t == datatype.Double) {
			return t, nil
		}
	}
	return nil, fmt.Errorf("unknown element type %q", name)
}

func buildVector(args []string) (*datatype.Type, error) {
	fs := flag.NewFlagSet("vector", flag.ExitOnError)
	count := fs.Int64("count", 1000, "block count")
	blocklen := fs.Int64("blocklen", 1, "elements per block")
	stride := fs.Int64("stride", 2, "stride in elements")
	elem := fs.String("elem", "double", "element type")
	fs.Parse(args)
	e, err := elemByName(*elem)
	if err != nil {
		return nil, err
	}
	return datatype.Vector(*count, *blocklen, *stride, e)
}

func buildSubarray(args []string) (*datatype.Type, error) {
	fs := flag.NewFlagSet("subarray", flag.ExitOnError)
	sizes := fs.String("sizes", "10,10", "array dimensions")
	subsizes := fs.String("subsizes", "4,4", "selected region dimensions")
	starts := fs.String("starts", "2,2", "region start coordinates")
	order := fs.String("order", "C", "storage order: C or F")
	elem := fs.String("elem", "double", "element type")
	fs.Parse(args)
	e, err := elemByName(*elem)
	if err != nil {
		return nil, err
	}
	o := datatype.OrderC
	if strings.EqualFold(*order, "F") {
		o = datatype.OrderFortran
	}
	return datatype.Subarray(ints(*sizes), ints(*subsizes), ints(*starts), o, e)
}

func buildNoncontig(args []string) (*datatype.Type, error) {
	fs := flag.NewFlagSet("noncontig", flag.ExitOnError)
	rank := fs.Int("rank", 0, "process rank")
	np := fs.Int("np", 4, "number of processes")
	nblock := fs.Int64("nblock", 16, "N_block")
	sblock := fs.Int64("sblock", 8, "S_block bytes")
	fs.Parse(args)
	return noncontig.Filetype(*rank, *np, *nblock, *sblock)
}

func buildBTIO(args []string) (*datatype.Type, error) {
	fs := flag.NewFlagSet("btio", flag.ExitOnError)
	class := fs.String("class", "S", "NAS class")
	np := fs.Int("np", 4, "number of processes (square)")
	rank := fs.Int("rank", 0, "process rank")
	fs.Parse(args)
	return btioFiletype(*class, *np, *rank)
}

func ints(s string) []int64 {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		var v int64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			log.Fatalf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out
}

func inspect(dt *datatype.Type) {
	fmt.Println(dt.Summary())

	l := flatten.Flatten(dt)
	fmt.Printf("\nol-list (explicit flattening): %d tuples, %d bytes",
		len(l), l.Footprint())
	if dt.Size() > 0 {
		fmt.Printf(" (%.1f%% of the data it describes)", 100*float64(l.Footprint())/float64(dt.Size()))
	}
	fmt.Println()
	for i, seg := range l {
		if i == 8 {
			fmt.Printf("  ... %d more tuples\n", len(l)-8)
			break
		}
		fmt.Printf("  ⟨off=%d, len=%d⟩\n", seg.Off, seg.Len)
	}

	enc := datatype.EncodedSize(dt)
	fmt.Printf("\ncompact encoding (fileview caching): %d bytes", enc)
	if f := l.Footprint(); f > 0 {
		fmt.Printf(" — %.0fx smaller than the ol-list", float64(f)/float64(enc))
	}
	fmt.Println()

	fmt.Println("\nflattening-on-the-fly navigation (O(depth) per call):")
	size := dt.Size()
	for _, frac := range []int64{0, 4, 2} {
		d := int64(0)
		if frac > 0 {
			d = size / frac
		}
		fmt.Printf("  StartPos(data %10d) = buffer offset %12d\n", d, fotf.StartPos(dt, d))
	}
	fmt.Printf("  TypeExtent(skip=0, size=%d) = %d\n", size, fotf.TypeExtent(dt, 0, size))
	fmt.Printf("  TypeSize(skip=0, extent=%d) = %d\n", dt.Extent(), fotf.TypeSize(dt, 0, dt.Extent()))
}

func btioFiletype(class string, np, rank int) (*datatype.Type, error) {
	cl, err := btio.ClassByName(class)
	if err != nil {
		return nil, err
	}
	return btio.Filetype(cl, np, rank)
}
