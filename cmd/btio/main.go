// Command btio runs the BTIO application-kernel benchmark (paper §4.2):
// BT-like compute steps, each followed by one collective write of the
// full 5×N³ solution array through subarray fileviews.
//
// Examples:
//
//	btio -class S -p 4 -engine listless
//	btio -class B -p 16 -steps 5 -compare
//	btio -class C -p 25 -info
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/btio"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("btio: ")

	var (
		class   = flag.String("class", "S", "NAS problem class: S, W, A, B, C")
		p       = flag.Int("p", 4, "number of processes (must be a square)")
		engine  = flag.String("engine", "listless", "datatype engine: listless or list-based")
		steps   = flag.Int("steps", 0, "time steps (0 = BTIO default, 40)")
		ghost   = flag.Int("ghost", 1, "halo width of local cell arrays (0 = contiguous memtype)")
		iters   = flag.Int("iters", 1, "compute sweeps per step (0 disables compute)")
		verify  = flag.Bool("verify", true, "read back and verify the last snapshot")
		info    = flag.Bool("info", false, "print the Table 1/2 characterization and exit")
		compare = flag.Bool("compare", false, "run both engines and report the ratio r_io")
	)
	flag.Parse()

	cl, err := btio.ClassByName(*class)
	if err != nil {
		log.Fatal(err)
	}
	cfg := btio.Config{
		Class: cl, P: *p, Steps: *steps, Ghost: *ghost,
		ComputeIters: *iters, Verify: *verify,
	}

	if *info {
		nb, err := cfg.NBlock()
		if err != nil {
			log.Fatal(err)
		}
		sb, _ := cfg.SBlock()
		fmt.Printf("class %s: grid %d^3, P=%d\n", cl.Name, cl.Grid, *p)
		fmt.Printf("  D_step  = %.1f MB   D_run = %.2f GB (%d steps)\n",
			float64(cfg.DStep())/1e6, float64(cfg.DRun())/1e9, cfgSteps(cfg))
		fmt.Printf("  N_block = %d   S_block = %d bytes (per process, per step)\n", nb, sb)
		return
	}

	if *compare {
		var res [2]btio.Result
		for i, eng := range []core.Engine{core.ListBased, core.Listless} {
			c := cfg
			c.Engine = eng
			r, err := btio.Run(c)
			if err != nil {
				log.Fatal(err)
			}
			res[i] = r
			report(r)
		}
		if res[1].TIO > 0 {
			fmt.Printf("r_io = %.2f (list-based / listless I/O time)\n",
				float64(res[0].TIO)/float64(res[1].TIO))
		}
		return
	}

	eng, err := parseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Engine = eng
	r, err := btio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	report(r)
}

func report(r btio.Result) {
	fmt.Printf("btio class %s P=%d steps=%d engine=%s ghost=%d\n",
		r.Config.Class.Name, r.Config.P, r.Steps, r.Config.Engine, r.Config.Ghost)
	fmt.Printf("  t_compute = %8.3f s   dt_io = %8.3f s   B_io = %8.0f MB/s   wrote %.2f GB\n",
		r.TCompute.Seconds(), r.TIO.Seconds(), r.Bandwidth, float64(r.BytesWritten)/1e9)
	if r.Config.Verify {
		fmt.Println("  verification: OK")
	}
}

func cfgSteps(c btio.Config) int {
	if c.Steps > 0 {
		return c.Steps
	}
	return btio.DefaultSteps
}

func parseEngine(s string) (core.Engine, error) {
	switch s {
	case "listless":
		return core.Listless, nil
	case "list-based", "listbased":
		return core.ListBased, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}
