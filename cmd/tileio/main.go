// Command tileio runs the mpi-tile-io–style 2D tile benchmark: a dense
// dataset written as disjoint per-process tiles and read back through
// optionally overlapping (ghosted) tile views.
//
// Example:
//
//	tileio -grid 2x2 -tile 512x512 -elem 8 -overlap 4 -collective -engine listless
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/tileio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tileio: ")

	var (
		grid       = flag.String("grid", "2x2", "process grid (XxY)")
		tile       = flag.String("tile", "256x256", "tile size in elements (XxY)")
		elem       = flag.Int64("elem", 8, "element size in bytes")
		overlap    = flag.Int64("overlap", 0, "ghost ring width in elements (read phase)")
		collective = flag.Bool("collective", true, "use collective access")
		engine     = flag.String("engine", "listless", "datatype engine: listless or list-based")
		reps       = flag.Int("reps", 4, "write+read repetitions")
		verify     = flag.Bool("verify", true, "verify ghosted read-back")
	)
	flag.Parse()

	var cfg tileio.Config
	if _, err := fmt.Sscanf(*grid, "%dx%d", &cfg.TilesX, &cfg.TilesY); err != nil {
		log.Fatalf("bad -grid %q", *grid)
	}
	if _, err := fmt.Sscanf(*tile, "%dx%d", &cfg.TileX, &cfg.TileY); err != nil {
		log.Fatalf("bad -tile %q", *tile)
	}
	cfg.ElemSize = *elem
	cfg.Overlap = *overlap
	cfg.Collective = *collective
	cfg.Reps = *reps
	cfg.Verify = *verify
	switch *engine {
	case "listless":
		cfg.Engine = core.Listless
	case "list-based", "listbased":
		cfg.Engine = core.ListBased
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	res, err := tileio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gx, gy := cfg.DatasetElems()
	fmt.Printf("tileio %s  grid=%dx%d  tile=%dx%d  elem=%dB  dataset=%dx%d (%.1f MB)  overlap=%d\n",
		cfg.Engine, cfg.TilesX, cfg.TilesY, cfg.TileX, cfg.TileY, cfg.ElemSize,
		gx, gy, float64(cfg.DatasetBytes())/1e6, cfg.Overlap)
	fmt.Printf("  write: %10.2f MB/s per process  (%v total)\n", res.WriteBpp, res.WriteTime.Round(time.Microsecond))
	fmt.Printf("  read:  %10.2f MB/s per process  (%v total)\n", res.ReadBpp, res.ReadTime.Round(time.Microsecond))
	fmt.Printf("  rank-0 stats: list tuples=%d  list bytes sent=%d  view bytes sent=%d  pre-reads skipped=%d\n",
		res.Stats.ListTuples, res.Stats.ListBytesSent, res.Stats.ViewBytesSent, res.Stats.PreReadsSkipped)
	if cfg.Verify {
		fmt.Println("  verification: OK")
	}
}
