package mpi

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/transport"
)

func localTCPWorld(t *testing.T, n int) []transport.Transport {
	t.Helper()
	eps, err := transport.NewLocalTCPWorld(n, transport.TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return eps
}

// TestRunOverTCPCollectives runs the full collective vocabulary over
// real sockets and checks the results and the accounting balance.
func TestRunOverTCPCollectives(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	const n = 4
	stats, err := RunOver(localTCPWorld(t, n), RunOptions{StallTimeout: 10 * time.Second}, func(p *Proc) {
		r := p.Rank()

		got := p.Bcast(0, []byte("broadcast payload"))
		if string(got) != "broadcast payload" {
			panic(fmt.Sprintf("rank %d: Bcast got %q", r, got))
		}

		parts := p.Allgather([]byte(fmt.Sprintf("rank-%d", r)))
		for i, part := range parts {
			if string(part) != fmt.Sprintf("rank-%d", i) {
				panic(fmt.Sprintf("rank %d: Allgather[%d] = %q", r, i, part))
			}
		}

		out := make([][]byte, n)
		for i := range out {
			out[i] = []byte{byte(r), byte(i)}
		}
		recv := p.Alltoall(out)
		for i, part := range recv {
			if part[0] != byte(i) || part[1] != byte(r) {
				panic(fmt.Sprintf("rank %d: Alltoall[%d] = %v", r, i, part))
			}
		}

		if sum := p.AllreduceInt64(int64(r+1), OpSum); sum != n*(n+1)/2 {
			panic(fmt.Sprintf("rank %d: sum = %d", r, sum))
		}

		p.Barrier()

		// Point-to-point ring with per-pair FIFO.
		next, prev := (r+1)%n, (r+n-1)%n
		for i := 0; i < 10; i++ {
			p.Send(next, 7, []byte{byte(i)})
		}
		for i := 0; i < 10; i++ {
			data, src, _ := p.Recv(prev, 7)
			if src != prev || data[0] != byte(i) {
				panic(fmt.Sprintf("rank %d: ring got %v from %d at step %d", r, data, src, i))
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != stats.Received || stats.Bytes != stats.BytesReceived {
		t.Fatalf("unbalanced world: %+v", stats)
	}
	if stats.WireBytesSent == 0 || stats.WireBytesSent != stats.WireBytesRecv {
		t.Fatalf("wire bytes sent/recv = %d/%d", stats.WireBytesSent, stats.WireBytesRecv)
	}
}

// TestRunOverLoopback confirms the seam runs the plain in-process world
// too (RunOver ∘ NewLoopback == Run).
func TestRunOverLoopback(t *testing.T) {
	stats, err := RunOver(transport.NewLoopback(3), RunOptions{}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("abc"))
		}
		if p.Rank() == 1 {
			p.Recv(0, 1)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 || stats.WireBytesSent != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestRunOverTCPStall: the watchdog must catch a deadlock over the wire
// with the same diagnostic text as in-process.
func TestRunOverTCPStall(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	_, err := RunOver(localTCPWorld(t, 2), RunOptions{StallTimeout: 300 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 5) // never sent
		}
	})
	if err == nil {
		t.Fatal("expected ErrStalled")
	}
	for _, want := range []string{"mpi: world stalled", "rank 0 blocked in Recv(src=1, tag=5)", "rank 1 exited"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("diagnostic %q missing %q", err, want)
		}
	}
}

// TestRunRankInProcess drives the one-rank-per-process entry point with
// each "process" as a goroutine: the rendezvous handshake, collectives,
// and the finalize protocol all run exactly as they would across real
// process boundaries.
func TestRunRankInProcess(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	const n = 4
	eps := localTCPWorld(t, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	statss := make([]Stats, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			statss[r], errs[r] = RunRank(eps[r], RunOptions{StallTimeout: 10 * time.Second}, func(p *Proc) {
				if p.Size() != n || p.Rank() != r {
					panic("bad world shape")
				}
				vals := p.AllgatherInt64(int64(r * r))
				for i, v := range vals {
					if v != int64(i*i) {
						panic(fmt.Sprintf("AllgatherInt64[%d] = %d", i, v))
					}
				}
				p.Barrier()
				if r == 0 {
					for i := 1; i < n; i++ {
						p.Send(i, 3, []byte("final payload"))
					}
				} else {
					data, _, _ := p.Recv(0, 3)
					if string(data) != "final payload" {
						panic("bad payload")
					}
				}
				// No closing barrier: the finalize protocol must keep rank
				// 0's in-flight sends safe while ranks exit at skew.
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < n; r++ {
		if statss[r].WireBytesRecv == 0 {
			t.Fatalf("rank %d reports no wire bytes", r)
		}
	}
}

// TestRunRankSplitPanics: Split needs in-process peers.
func TestRunRankSplitPanics(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	eps := localTCPWorld(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = RunRank(eps[r], RunOptions{StallTimeout: 5 * time.Second}, func(p *Proc) {
				p.Split(0, 0)
			})
		}(r)
	}
	wg.Wait()
	var found bool
	for _, err := range errs {
		if err != nil && strings.Contains(err.Error(), "Split is not supported") {
			found = true
		}
	}
	if !found {
		t.Fatalf("errs = %v, want a Split panic", errs)
	}
}
