package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRunBasics(t *testing.T) {
	seen := make([]bool, 5)
	_, err := Run(5, func(p *Proc) {
		if p.Size() != 5 {
			t.Errorf("size = %d", p.Size())
		}
		seen[p.Rank()] = true // distinct indices per rank: no race
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", r)
		}
	}
	if _, err := Run(0, func(*Proc) {}); err == nil {
		t.Fatal("size-0 world must fail")
	}
}

func TestSendRecvOrdering(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		const n = 100
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, 7, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				got, src, tag := p.Recv(0, 7)
				if src != 0 || tag != 7 || got[0] != byte(i) {
					t.Errorf("message %d: got %d from %d tag %d", i, got[0], src, tag)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagSelection(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("a"))
			p.Send(1, 2, []byte("b"))
		} else {
			// Receive tag 2 first even though tag 1 arrived first.
			got, _, _ := p.Recv(0, 2)
			if string(got) != "b" {
				t.Errorf("tag 2 payload = %q", got)
			}
			got, _, _ = p.Recv(0, 1)
			if string(got) != "a" {
				t.Errorf("tag 1 payload = %q", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		if p.Rank() == 0 {
			got := map[int]bool{}
			for i := 0; i < 3; i++ {
				data, src, tag := p.Recv(AnySource, AnyTag)
				if tag != src*10 || string(data) != fmt.Sprint(src) {
					t.Errorf("bad message from %d: %q tag %d", src, data, tag)
				}
				got[src] = true
			}
			if len(got) != 3 {
				t.Errorf("received from %d distinct sources", len(got))
			}
		} else {
			p.Send(0, p.Rank()*10, []byte(fmt.Sprint(p.Rank())))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			buf := []byte("hello")
			p.Send(1, 0, buf)
			copy(buf, "XXXXX") // must not affect the receiver
		} else {
			got, _, _ := p.Recv(0, 0)
			if string(got) != "hello" {
				t.Errorf("payload = %q, corrupted by sender reuse", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	// All ranks increment before the barrier; after it everyone must see
	// the full count.  Repeat to exercise generations.
	const P = 8
	counts := make([]int32, 3)
	_, err := Run(P, func(p *Proc) {
		for round := 0; round < 3; round++ {
			// Distinct slot per rank per round avoids atomics: each rank
			// adds to a rank-private cell, then we sum after the barrier.
			p.Barrier()
			if round == 0 && p.Rank() == 0 {
				counts[0] = P
			}
			p.Barrier()
			if counts[0] != P {
				t.Errorf("rank %d round %d: count %d", p.Rank(), round, counts[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(6, func(p *Proc) {
		var data []byte
		if p.Rank() == 2 {
			data = []byte("payload")
		}
		got := p.Bcast(2, data)
		if string(got) != "payload" {
			t.Errorf("rank %d: bcast = %q", p.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAllgather(t *testing.T) {
	_, err := Run(5, func(p *Proc) {
		mine := []byte(strings.Repeat("x", p.Rank()+1))
		parts := p.Gather(3, mine)
		if p.Rank() == 3 {
			for r, part := range parts {
				if len(part) != r+1 {
					t.Errorf("gather[%d] len = %d", r, len(part))
				}
			}
		} else if parts != nil {
			t.Errorf("rank %d: non-root gather result", p.Rank())
		}
		all := p.Allgather(mine)
		for r, part := range all {
			if len(part) != r+1 {
				t.Errorf("rank %d: allgather[%d] len = %d", p.Rank(), r, len(part))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherEmptyParts(t *testing.T) {
	_, err := Run(3, func(p *Proc) {
		var mine []byte
		if p.Rank() == 1 {
			mine = []byte("z")
		}
		all := p.Allgather(mine)
		if len(all[0]) != 0 || string(all[1]) != "z" || len(all[2]) != 0 {
			t.Errorf("rank %d: allgather = %q", p.Rank(), all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const P = 4
	stats, err := Run(P, func(p *Proc) {
		parts := make([][]byte, P)
		for r := 0; r < P; r++ {
			parts[r] = []byte{byte(p.Rank()), byte(r)}
		}
		got := p.Alltoall(parts)
		for r := 0; r < P; r++ {
			want := []byte{byte(r), byte(p.Rank())}
			if !bytes.Equal(got[r], want) {
				t.Errorf("rank %d: from %d = %v, want %v", p.Rank(), r, got[r], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every message sent inside the world is received inside it, so the
	// world totals must balance exactly.
	if stats.Messages != stats.Received || stats.Bytes != stats.BytesReceived {
		t.Fatalf("world accounting unbalanced: sent %d msgs/%d B, received %d msgs/%d B",
			stats.Messages, stats.Bytes, stats.Received, stats.BytesReceived)
	}
	if stats.Received == 0 {
		t.Fatal("alltoall received no messages")
	}
}

func TestAllreduceAndAllgatherInt64(t *testing.T) {
	const P = 7
	_, err := Run(P, func(p *Proc) {
		v := int64(p.Rank() + 1)
		if got := p.AllreduceInt64(v, OpSum); got != P*(P+1)/2 {
			t.Errorf("sum = %d", got)
		}
		if got := p.AllreduceInt64(v, OpMax); got != P {
			t.Errorf("max = %d", got)
		}
		if got := p.AllreduceInt64(v, OpMin); got != 1 {
			t.Errorf("min = %d", got)
		}
		vec := p.AllgatherInt64(v)
		for r, x := range vec {
			if x != int64(r+1) {
				t.Errorf("allgather[%d] = %d", r, x)
			}
		}
		vs := p.AllgatherInt64s([]int64{v, -v})
		for r, x := range vs {
			if x[0] != int64(r+1) || x[1] != -int64(r+1) {
				t.Errorf("allgatherInt64s[%d] = %v", r, x)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveCollectivesDoNotCrossTalk(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		for i := 0; i < 50; i++ {
			if got := p.AllreduceInt64(int64(i), OpMax); got != int64(i) {
				t.Errorf("iteration %d: max = %d", i, got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicAbortsWorld(t *testing.T) {
	_, err := Run(3, func(p *Proc) {
		if p.Rank() == 1 {
			panic("deliberate")
		}
		// Others block forever without the abort.
		p.Recv(1, 99)
	})
	if err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("err = %v, want the deliberate panic", err)
	}
}

func TestPanicAbortsBarrier(t *testing.T) {
	_, err := Run(3, func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		p.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	stats, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]byte, 100))
			p.SendNoCopy(1, 0, make([]byte, 50))
			s := p.SentStats()
			if s.Messages != 2 || s.Bytes != 150 {
				t.Errorf("proc stats = %+v", s)
			}
		} else {
			p.Recv(0, 0)
			p.Recv(0, 0)
			s := p.SentStats()
			if s.Received != 2 || s.BytesReceived != 150 {
				t.Errorf("receive-side proc stats = %+v", s)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 2 || stats.Bytes != 150 {
		t.Fatalf("world stats = %+v", stats)
	}
	if stats.Received != 2 || stats.BytesReceived != 150 {
		t.Fatalf("world receive stats = %+v", stats)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	_, err := Run(1, func(p *Proc) {
		p.Send(5, 0, nil)
	})
	if err == nil {
		t.Fatal("send to invalid rank must abort")
	}
}

func TestSplitFormsGroups(t *testing.T) {
	const P = 6
	_, err := Run(P, func(p *Proc) {
		color := p.Rank() % 2
		sub := p.Split(color, p.Rank())
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size = %d", p.Rank(), sub.Size())
			return
		}
		if want := p.Rank() / 2; sub.Rank() != want {
			t.Errorf("rank %d: sub rank = %d, want %d", p.Rank(), sub.Rank(), want)
			return
		}
		// The sub-world is fully functional: collectives stay inside it.
		sum := sub.AllreduceInt64(int64(p.Rank()), OpSum)
		want := int64(0 + 2 + 4)
		if color == 1 {
			want = 1 + 3 + 5
		}
		if sum != want {
			t.Errorf("rank %d: group sum = %d, want %d", p.Rank(), sum, want)
		}
		sub.Barrier()
		// Parent world still works after the split.
		if got := p.AllreduceInt64(1, OpSum); got != P {
			t.Errorf("rank %d: parent sum = %d", p.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	const P = 4
	_, err := Run(P, func(p *Proc) {
		// Reverse the ordering via descending keys.
		sub := p.Split(0, P-p.Rank())
		if want := P - 1 - p.Rank(); sub.Rank() != want {
			t.Errorf("rank %d: sub rank = %d, want %d", p.Rank(), sub.Rank(), want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitRepeatedCalls(t *testing.T) {
	_, err := Run(4, func(p *Proc) {
		for i := 0; i < 3; i++ {
			sub := p.Split(p.Rank()/2, 0)
			if sub.Size() != 2 {
				t.Errorf("iteration %d: size %d", i, sub.Size())
				return
			}
			if got := sub.AllreduceInt64(1, OpSum); got != 2 {
				t.Errorf("iteration %d: sum %d", i, got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
