// Package mpi provides the message-passing process model that the MPI-IO
// layer (internal/core) is built on: a fixed group of ranks, point-to-point
// messages with source/tag matching, and the collective operations
// two-phase I/O needs.
//
// This is the substitution for the NEC SX's MPI/SX runtime (see
// DESIGN.md).  Ranks run over a pluggable byte fabric
// (internal/transport): the default in-process loopback gives the seed's
// shared-memory world — goroutine ranks, one-function-call delivery —
// while the TCP transport runs the identical communication structure
// between separate OS processes (Run one rank per process with RunRank,
// or drive a socket fabric single-process with RunOver).  Messages are
// real byte-slice transfers with per-pair FIFO ordering, so the ol-list
// exchange of list-based collective I/O carries its true cost in copied
// bytes and message counts, both of which are instrumented.
package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reserved internal tag space for collectives; user tags must be below.
const collTagBase = 1 << 24

// Stats aggregates the communication volume of a world or a process.
// In a quiescent world (every sent message consumed by a Recv or a
// DrainTag) the send and receive sides balance: Messages == Received
// and Bytes == BytesReceived.
type Stats struct {
	Messages      int64 // point-to-point messages sent
	Bytes         int64 // payload bytes sent
	Received      int64 // messages consumed (Recv and DrainTag)
	BytesReceived int64 // payload bytes consumed
	RecvWaitNs    int64 // total time spent blocked in Recv

	// WireBytesSent / WireBytesRecv are the volumes that actually
	// crossed a network transport, frame headers included.  Zero for the
	// in-process loopback; in a distributed world they cover only the
	// local process's endpoint.
	WireBytesSent int64
	WireBytesRecv int64
}

type errAborted struct{}

func (errAborted) Error() string { return "mpi: world aborted" }

// world is the shared state of one run: the transport endpoints plus
// the accounting, barrier, split, and watchdog machinery.
type world struct {
	size int
	// wired marks a non-loopback fabric: barriers go over messages and
	// shutdown runs the flush/quiesce protocol.
	wired bool
	// dist marks one-rank-per-OS-process operation: only ranks[0] is
	// local, Split is unavailable, and the rank finalizes its endpoint.
	dist bool
	// eps holds the endpoints by rank; in dist mode only the local
	// rank's entry is non-nil.
	eps []transport.Transport
	// ranks lists the locally running ranks (blocked index → rank).
	ranks []int

	barrierMu  sync.Mutex
	barrierGen int
	barrierCnt int
	barrierC   *sync.Cond

	msgs      atomic.Int64
	bytes     atomic.Int64
	recvMsgs  atomic.Int64
	recvBytes atomic.Int64
	recvWait  atomic.Int64

	// traceC, when set, supplies per-rank tracers: Recv and Barrier
	// record wait spans, sends record instants, and the stall watchdog
	// includes each rank's last span begun in its diagnostic.
	traceC *trace.Collector

	splitMu  sync.Mutex
	splitGen []int // per-rank Split-call counter
	splits   map[string]*splitEntry

	// onStall, when set, fires with the diagnostic before a watchdog
	// abort (RunOptions.OnStall).
	onStall func(string)

	// Stall-watchdog state (RunOptions.StallTimeout): per-local-rank
	// wait states and a progress counter bumped on every delivery,
	// receive, and barrier passage.  Only maintained when watch is set.
	watch    bool
	blocked  []atomic.Uint64
	progress atomic.Int64

	abortOnce sync.Once
}

func newWorld(eps []transport.Transport, wired bool, traceC *trace.Collector) *world {
	n := len(eps)
	w := &world{
		size: n, wired: wired, eps: eps,
		ranks:    make([]int, n),
		traceC:   traceC,
		splitGen: make([]int, n),
		splits:   make(map[string]*splitEntry),
	}
	for i := range w.ranks {
		w.ranks[i] = i
	}
	w.barrierC = sync.NewCond(&w.barrierMu)
	return w
}

func (w *world) abort() {
	w.abortOnce.Do(func() {
		// Quiesce before closing so the teardown's own link drops don't
		// overwrite the first failure; ranks blocked in Recv observe
		// ErrClosed and die silently as errAborted.
		for _, ep := range w.eps {
			if ep != nil {
				ep.Quiesce()
			}
		}
		for _, ep := range w.eps {
			if ep != nil {
				ep.Close()
			}
		}
		w.barrierMu.Lock()
		w.barrierGen = -1 << 30
		w.barrierMu.Unlock()
		w.barrierC.Broadcast()
	})
}

// Proc is one rank's handle on the world.  A Proc is owned by a single
// goroutine and must not be shared.
type Proc struct {
	rank int
	widx int // index into w.blocked / w.ranks
	w    *world
	ep   transport.Transport
	tr   *trace.Tracer

	sentMsgs   int64
	sentBytes  int64
	recvMsgs   int64
	recvBytes  int64
	recvWaitNs int64
}

// Rank reports this process's rank in [0, Size()).
func (p *Proc) Rank() int { return p.rank }

// Size reports the number of processes in the world.
func (p *Proc) Size() int { return p.w.size }

// SentStats reports this process's cumulative communication volume
// (both sides; the name predates the receive-side counters).
func (p *Proc) SentStats() Stats {
	ws := p.ep.Stats()
	return Stats{
		Messages: p.sentMsgs, Bytes: p.sentBytes,
		Received: p.recvMsgs, BytesReceived: p.recvBytes,
		RecvWaitNs:    p.recvWaitNs,
		WireBytesSent: ws.BytesSent, WireBytesRecv: ws.BytesRecv,
	}
}

// WireStats reports this rank's endpoint-level wire counters (frames,
// bytes, flushes).  All zeros on the in-process loopback.
func (p *Proc) WireStats() transport.WireStats { return p.ep.Stats() }

// RunOptions configure a world beyond its size.
type RunOptions struct {
	// StallTimeout, when positive, arms a watchdog that aborts the world
	// once every rank has been blocked (in Recv or Barrier, or exited)
	// with no message or barrier progress for the whole duration, and
	// makes Run return ErrStalled with a per-rank diagnostic — which
	// ranks are blocked, and on which Recv source/tag — instead of
	// hanging forever.  The watchdog observes only this world: a rank
	// blocked inside a Split sub-world appears as running.  Over a
	// network transport the timeout also becomes the endpoint's write
	// and handshake deadline, and bytes crossing the wire count as
	// progress so a slow large transfer is not mistaken for a stall.
	StallTimeout time.Duration
	// Trace, when non-nil, attaches each rank's tracer: Recv and
	// Barrier record wait spans, Send records message instants, and
	// ErrStalled diagnostics include each rank's last span begun.
	Trace *trace.Collector
	// Metrics, when non-nil, exposes the world's communication totals
	// (messages, bytes, receive-wait time, wire volumes) on the
	// registry as gauge functions reading the existing atomics — the
	// send/recv hot paths are untouched.
	Metrics *obs.Registry
	// OnStall, when non-nil, is invoked with the watchdog's stall
	// diagnostic just before the world is aborted — the hook the
	// flight recorder uses to dump every rank's in-flight span while
	// the evidence is still warm.
	OnStall func(diagnostic string)
}

// ErrStalled is wrapped by the error Run returns when the stall watchdog
// aborts a deadlocked world.
var ErrStalled = errors.New("mpi: world stalled")

// Run executes fn on n ranks and waits for all of them.  It returns the
// aggregate communication statistics and the first panic (as an error),
// if any; a panic in one rank aborts the whole world.
func Run(n int, fn func(p *Proc)) (Stats, error) {
	return RunWithOptions(n, RunOptions{}, fn)
}

// RunWithOptions is Run with a stall watchdog and future knobs.
func RunWithOptions(n int, opts RunOptions, fn func(p *Proc)) (Stats, error) {
	if n <= 0 {
		return Stats{}, fmt.Errorf("mpi: world size %d", n)
	}
	return newWorld(transport.NewLoopback(n), false, opts.Trace).run(opts, fn)
}

// RunOver executes fn on len(eps) ranks within this process, one
// goroutine per endpoint.  With transport.NewLoopback endpoints it is
// Run; with transport.NewLocalTCPWorld endpoints the same world runs
// over real sockets — the transport-matrix tests and benchmarks drive
// both fabrics through this seam.
func RunOver(eps []transport.Transport, opts RunOptions, fn func(p *Proc)) (Stats, error) {
	if len(eps) == 0 {
		return Stats{}, errors.New("mpi: empty endpoint set")
	}
	_, loop := eps[0].(*transport.Loopback)
	w := newWorld(eps, !loop, opts.Trace)
	if w.wired && opts.StallTimeout > 0 {
		for _, ep := range eps {
			setTransportDeadline(ep, opts.StallTimeout)
		}
	}
	return w.run(opts, fn)
}

// RunRank executes fn as one rank of a distributed world: ep is this
// process's endpoint of a multi-process fabric (typically
// transport.NewTCP, launched by transport.Launch).  RunRank dials the
// fabric, runs fn, and finalizes the endpoint with the shutdown
// protocol (flush → quiesce → finalize barrier → flush → close) so
// every peer's in-flight bytes land before the links drop.  Split is
// not available in this mode.
func RunRank(ep transport.Transport, opts RunOptions, fn func(p *Proc)) (Stats, error) {
	rank, size := ep.Rank(), ep.Size()
	if size <= 0 || rank < 0 || rank >= size {
		return Stats{}, fmt.Errorf("mpi: rank %d of world size %d", rank, size)
	}
	eps := make([]transport.Transport, size)
	eps[rank] = ep
	w := &world{
		size: size, wired: true, dist: true, eps: eps,
		ranks:  []int{rank},
		traceC: opts.Trace,
	}
	w.barrierC = sync.NewCond(&w.barrierMu)
	if opts.StallTimeout > 0 {
		setTransportDeadline(ep, opts.StallTimeout)
	}
	return w.run(opts, fn)
}

// registerMetrics exposes the world's communication totals on an obs
// registry as gauge functions over the existing atomics, plus the
// endpoints' wire-level volumes (frame headers included, zero on the
// in-process loopback).  No hot-path change: the counters were already
// atomic, the registry just reads them at scrape time.
func (w *world) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("mpi_messages_sent_total", "Messages sent by local ranks.", w.msgs.Load)
	r.GaugeFunc("mpi_sent_bytes_total", "Payload bytes sent by local ranks.", w.bytes.Load)
	r.GaugeFunc("mpi_messages_received_total", "Messages received by local ranks.", w.recvMsgs.Load)
	r.GaugeFunc("mpi_received_bytes_total", "Payload bytes received by local ranks.", w.recvBytes.Load)
	r.GaugeFunc("mpi_recv_wait_ns_total", "Nanoseconds local ranks spent blocked in Recv.", w.recvWait.Load)
	wire := func(pick func(transport.WireStats) int64) func() int64 {
		return func() int64 {
			var total int64
			for _, ep := range w.eps {
				if ep == nil {
					continue // distributed mode: only the local rank's slot is filled
				}
				total += pick(ep.Stats())
			}
			return total
		}
	}
	r.GaugeFunc("mpi_wire_sent_bytes_total", "On-the-wire bytes sent, frame headers included.",
		wire(func(s transport.WireStats) int64 { return s.BytesSent }))
	r.GaugeFunc("mpi_wire_received_bytes_total", "On-the-wire bytes received, frame headers included.",
		wire(func(s transport.WireStats) int64 { return s.BytesRecv }))
	r.GaugeFunc("mpi_wire_frames_sent_total", "Frames sent on the wire.",
		wire(func(s transport.WireStats) int64 { return s.FramesSent }))
	r.GaugeFunc("mpi_wire_flushes_total", "Writer flushes (frames/flushes > 1 means coalescing).",
		wire(func(s transport.WireStats) int64 { return s.Flushes }))
}

// setTransportDeadline wires the watchdog timeout into endpoints that
// take a write/handshake deadline (the TCP transport).
func setTransportDeadline(ep transport.Transport, d time.Duration) {
	if t, ok := ep.(interface{ SetDeadline(time.Duration) }); ok {
		t.SetDeadline(d)
	}
}

// run starts one goroutine per local rank, supervises them, and tears
// the fabric down.
func (w *world) run(opts RunOptions, fn func(p *Proc)) (Stats, error) {
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		runErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	w.onStall = opts.OnStall
	w.registerMetrics(opts.Metrics)
	var watchStop, watchDone chan struct{}
	if opts.StallTimeout > 0 {
		w.watch = true
		w.blocked = make([]atomic.Uint64, len(w.ranks))
		watchStop, watchDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(watchDone)
			w.watchdog(opts.StallTimeout, watchStop, setErr)
		}()
	}
	for i, r := range w.ranks {
		wg.Add(1)
		go func(idx, rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					if _, ok := e.(errAborted); !ok {
						setErr(fmt.Errorf("mpi: rank %d panicked: %v", rank, e))
					}
					w.abort()
				}
			}()
			if w.watch {
				// A rank that returned can never unblock a peer; the
				// watchdog counts it as permanently waiting.
				defer w.blocked[idx].Store(blockExited)
			}
			p := &Proc{rank: rank, widx: idx, w: w, ep: w.eps[rank], tr: opts.Trace.Tracer(rank)}
			if w.wired {
				if err := p.ep.Listen(); err != nil {
					panic(err)
				}
				if err := p.ep.Dial(); err != nil {
					panic(err)
				}
			}
			fn(p)
			if w.dist {
				p.finalizeWired()
			}
		}(i, r)
	}
	wg.Wait()
	if w.watch {
		close(watchStop)
		<-watchDone // runErr must not be written after we return it
	}
	var wireSent, wireRecv int64
	if w.wired {
		// Idempotent teardown: a clean run still has live reader/writer
		// goroutines and sockets to release (abort already did this).
		for _, ep := range w.eps {
			if ep != nil {
				ep.Quiesce()
			}
		}
		for _, ep := range w.eps {
			if ep != nil {
				s := ep.Stats()
				wireSent += s.BytesSent
				wireRecv += s.BytesRecv
				ep.Close()
			}
		}
	}
	return Stats{
		Messages: w.msgs.Load(), Bytes: w.bytes.Load(),
		Received: w.recvMsgs.Load(), BytesReceived: w.recvBytes.Load(),
		RecvWaitNs:    w.recvWait.Load(),
		WireBytesSent: wireSent, WireBytesRecv: wireRecv,
	}, runErr
}

// finalizeWired runs the distributed shutdown protocol after fn returns
// cleanly: push queued frames, stop treating link drops as failures,
// rendezvous with every peer one last time so their in-flight traffic
// has landed, push the barrier's own release, then let run close the
// endpoint.  Flush errors are ignored — if a link is truly dead the
// finalize barrier reports it (or the watchdog does).
func (p *Proc) finalizeWired() {
	p.ep.Flush()
	p.ep.Quiesce()
	p.msgBarrier(tagFinalize)
	p.ep.Flush()
}

// Per-rank wait states for the watchdog, packed into one uint64:
// kind<<62 | (src+2)<<32 | (tag+2).  Wildcards (-1) encode as 1.
const (
	blockNone    uint64 = 0
	blockRecv    uint64 = 1 << 62
	blockBarrier uint64 = 2 << 62
	blockExited  uint64 = 3 << 62
)

func blockState(kind uint64, src, tag int) uint64 {
	return kind | uint64(src+2)<<32 | uint64(uint32(tag+2))
}

// wireProgress totals the bytes the local endpoints have moved over
// their links; the watchdog counts it as progress so a large frame
// streaming slowly through a socket is not mistaken for a stall.
func (w *world) wireProgress() int64 {
	if !w.wired {
		return 0
	}
	var total int64
	for _, ep := range w.eps {
		if ep != nil {
			s := ep.Stats()
			total += s.BytesSent + s.BytesRecv
		}
	}
	return total
}

// watchdog polls the world's wait states and aborts it when every
// local rank stays blocked with zero progress for a full timeout
// window.
func (w *world) watchdog(timeout time.Duration, stop <-chan struct{}, fail func(error)) {
	poll := timeout / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	last := int64(-1)
	var stalledFor time.Duration
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		prog := w.progress.Load() + w.wireProgress()
		all := true
		for i := range w.blocked {
			if w.blocked[i].Load() == blockNone {
				all = false
				break
			}
		}
		if !all || prog != last {
			last = prog
			stalledFor = 0
			continue
		}
		if stalledFor += poll; stalledFor < timeout {
			continue
		}
		diag := w.stallDiagnostic()
		if w.onStall != nil {
			w.onStall(diag.Error())
		}
		fail(diag)
		w.abort()
		return
	}
}

// stallDiagnostic formats where every local rank is stuck: the packed
// wait state, plus (when tracing) the last span each rank began — which
// collective phase and file window the rank was inside when it stopped
// making progress.
func (w *world) stallDiagnostic() error {
	var b strings.Builder
	for i := range w.blocked {
		if i > 0 {
			b.WriteString("; ")
		}
		r := w.ranks[i]
		v := w.blocked[i].Load()
		src := int(v>>32&0x3fffffff) - 2
		tag := int(uint32(v)) - 2
		fmt.Fprintf(&b, "rank %d ", r)
		switch v & (3 << 62) {
		case blockRecv:
			b.WriteString("blocked in Recv(src=")
			if src == AnySource {
				b.WriteString("any")
			} else {
				fmt.Fprintf(&b, "%d", src)
			}
			if tag == AnyTag {
				b.WriteString(", tag=any)")
			} else {
				fmt.Fprintf(&b, ", tag=%d)", tag)
			}
		case blockBarrier:
			b.WriteString("blocked in Barrier")
		case blockExited:
			b.WriteString("exited")
		default:
			b.WriteString("running")
		}
		if ev, ok := w.traceC.Tracer(r).Current(); ok {
			fmt.Fprintf(&b, " [last span: %s", ev.Phase)
			if ev.Window != trace.NoWindow {
				fmt.Fprintf(&b, " @%d", ev.Window)
			}
			if ev.Dur < 0 {
				b.WriteString(", unfinished")
			}
			b.WriteString("]")
		}
	}
	return fmt.Errorf("%w: no progress for the stall timeout: %s", ErrStalled, b.String())
}

// transportFail translates an endpoint error into the rank's fate: a
// plain closure means the world aborted (die silently), anything else
// is a transport failure that aborts the world and surfaces as this
// rank's error.
func (p *Proc) transportFail(err error) {
	if errors.Is(err, transport.ErrClosed) {
		panic(errAborted{})
	}
	p.w.abort()
	panic(err)
}

// Send delivers a copy of data to dst with the given tag.  Send is
// buffered: it never blocks on the receiver.
func (p *Proc) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	p.sentMsgs++
	p.sentBytes += int64(len(data))
	p.w.msgs.Add(1)
	p.w.bytes.Add(int64(len(data)))
	if p.w.watch {
		p.w.progress.Add(1)
	}
	p.tr.Instant(trace.PhaseMPISend, trace.NoWindow, int64(len(data)), "")
	if err := p.ep.Send(dst, tag, data); err != nil {
		p.transportFail(err)
	}
}

// SendNoCopy delivers data without copying, transferring ownership of
// the payload to the transport (and onward to the receiver, who may
// recycle it into a buffer pool): the caller must not touch data — or
// any alias of it — afterwards.  Used for large one-shot payloads.
func (p *Proc) SendNoCopy(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	p.sentMsgs++
	p.sentBytes += int64(len(data))
	p.w.msgs.Add(1)
	p.w.bytes.Add(int64(len(data)))
	if p.w.watch {
		p.w.progress.Add(1)
	}
	p.tr.Instant(trace.PhaseMPISend, trace.NoWindow, int64(len(data)), "")
	if err := p.ep.SendNoCopy(dst, tag, data); err != nil {
		p.transportFail(err)
	}
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload and envelope.  src may be AnySource and tag may be AnyTag.
// Matching messages from the same source with the same tag are received
// in the order they were sent.
func (p *Proc) Recv(src, tag int) (data []byte, fromSrc, fromTag int) {
	t0 := time.Now()
	sp := p.tr.Begin(trace.PhaseMPIRecv, trace.NoWindow, 0)
	if p.w.watch {
		p.w.blocked[p.widx].Store(blockState(blockRecv, src, tag))
	}
	m, err := p.ep.Recv(src, tag)
	if err != nil {
		p.transportFail(err)
	}
	if p.w.watch {
		p.w.blocked[p.widx].Store(blockNone)
		p.w.progress.Add(1)
	}
	sp.EndBytes(int64(len(m.Data)))
	ns := time.Since(t0).Nanoseconds()
	p.recvWaitNs += ns
	p.w.recvWait.Add(ns)
	p.recvMsgs++
	p.recvBytes += int64(len(m.Data))
	p.w.recvMsgs.Add(1)
	p.w.recvBytes.Add(int64(len(m.Data)))
	return m.Data, m.Src, m.Tag
}

// DrainTag removes every queued message with the given tag (from any
// source) from this rank's inbox without blocking, returning the
// number of messages discarded.  Collective error recovery uses it to
// clear the in-flight traffic of an abandoned collective so the next
// one starts with clean inboxes.  Drained messages count as received
// so the world's send/receive accounting still balances after error
// recovery.
func (p *Proc) DrainTag(tag int) int {
	dropped, droppedBytes := p.ep.DrainTag(tag)
	p.recvMsgs += int64(dropped)
	p.recvBytes += droppedBytes
	p.w.recvMsgs.Add(int64(dropped))
	p.w.recvBytes.Add(droppedBytes)
	return dropped
}

// Barrier blocks until all ranks have entered it.
func (p *Proc) Barrier() {
	w := p.w
	sp := p.tr.Begin(trace.PhaseMPIBarrier, trace.NoWindow, 0)
	defer sp.End()
	if w.watch {
		w.blocked[p.widx].Store(blockState(blockBarrier, -2, -2))
		defer func() {
			w.blocked[p.widx].Store(blockNone)
			w.progress.Add(1)
		}()
	}
	if w.wired {
		p.msgBarrier(tagBarrier)
		return
	}
	w.barrierMu.Lock()
	gen := w.barrierGen
	if gen < 0 {
		w.barrierMu.Unlock()
		panic(errAborted{})
	}
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierMu.Unlock()
		w.barrierC.Broadcast()
		return
	}
	for w.barrierGen == gen {
		w.barrierC.Wait()
	}
	aborted := w.barrierGen < 0
	w.barrierMu.Unlock()
	if aborted {
		panic(errAborted{})
	}
}

// msgBarrier is the linear message barrier a wired world uses: every
// rank reports to rank 0, which releases everyone.  Per-pair FIFO makes
// consecutive barriers safe without generation numbers.  It speaks the
// endpoint directly — no stat counting, no nested Recv wait state — so
// a barrier looks identical to the in-process one from the outside.
func (p *Proc) msgBarrier(tag int) {
	if p.rank == 0 {
		for i := 1; i < p.w.size; i++ {
			if _, err := p.ep.Recv(AnySource, tag); err != nil {
				p.transportFail(err)
			}
		}
		for r := 1; r < p.w.size; r++ {
			if err := p.ep.SendNoCopy(r, tag, nil); err != nil {
				p.transportFail(err)
			}
		}
		return
	}
	if err := p.ep.SendNoCopy(0, tag, nil); err != nil {
		p.transportFail(err)
	}
	if _, err := p.ep.Recv(0, tag); err != nil {
		p.transportFail(err)
	}
}

// splitWorlds registers the sub-worlds of Split calls so that all
// members of a color share one world object.
type splitEntry struct {
	w     *world
	taken int
}

// Split partitions the world collectively (like MPI_Comm_split): every
// rank passes a color and a key; ranks with equal color form a new
// world, ranked by (key, old rank).  The returned Proc addresses only
// the new world; the original Proc stays valid for the old one.  Every
// rank of the world must call Split the same number of times.
//
// Sub-worlds always communicate in-process (their members are
// goroutines of this process), so Split is unavailable in distributed
// mode, where the world's other ranks live in other OS processes.
func (p *Proc) Split(color, key int) *Proc {
	if p.w.dist {
		panic("mpi: Split is not supported in distributed (one rank per process) mode")
	}
	// Gather (color, key) from everyone via the parent world.
	pairs := p.AllgatherInt64s([]int64{int64(color), int64(key)})

	// Compute my rank within my color group: order by (key, old rank).
	var size, newRank int
	for r, kv := range pairs {
		if int(kv[0]) != color {
			continue
		}
		size++
		if kv[1] < int64(key) || (kv[1] == int64(key) && r < p.rank) {
			newRank++
		}
	}

	// Get or create the shared sub-world for this (generation, color).
	w := p.w
	w.splitMu.Lock()
	gen := w.splitGen[p.rank]
	w.splitGen[p.rank]++
	keyStr := fmt.Sprintf("%d/%d", gen, color)
	ent := w.splits[keyStr]
	if ent == nil {
		ent = &splitEntry{w: newWorld(transport.NewLoopback(size), false, nil)}
		w.splits[keyStr] = ent
	}
	ent.taken++
	if ent.taken == size {
		delete(w.splits, keyStr) // all members joined; free the slot
	}
	sub := ent.w
	w.splitMu.Unlock()

	return &Proc{rank: newRank, widx: newRank, w: sub, ep: sub.eps[newRank]}
}
