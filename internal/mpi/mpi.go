// Package mpi provides the message-passing process model that the MPI-IO
// layer (internal/core) is built on: a fixed group of ranks running as
// goroutines, point-to-point messages with source/tag matching, and the
// collective operations two-phase I/O needs.
//
// This is the substitution for the NEC SX's MPI/SX runtime (see
// DESIGN.md): a shared-memory rank model that exercises the identical
// communication structure.  Messages are real byte-slice transfers with
// per-pair FIFO ordering, so the ol-list exchange of list-based
// collective I/O carries its true cost in copied bytes and message
// counts, both of which are instrumented.
package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reserved internal tag space for collectives; user tags must be below.
const collTagBase = 1 << 24

// Stats aggregates the communication volume of a world or a process.
// In a quiescent world (every sent message consumed by a Recv or a
// DrainTag) the send and receive sides balance: Messages == Received
// and Bytes == BytesReceived.
type Stats struct {
	Messages      int64 // point-to-point messages sent
	Bytes         int64 // payload bytes sent
	Received      int64 // messages consumed (Recv and DrainTag)
	BytesReceived int64 // payload bytes consumed
	RecvWaitNs    int64 // total time spent blocked in Recv
}

type message struct {
	src, tag int
	data     []byte
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take removes and returns the earliest message matching (src, tag),
// blocking until one arrives.  It panics with errAborted if the world
// aborts while waiting.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.closed {
			panic(errAborted{})
		}
		for i, m := range mb.queue {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

type errAborted struct{}

func (errAborted) Error() string { return "mpi: world aborted" }

type world struct {
	size      int
	mailboxes []*mailbox

	barrierMu  sync.Mutex
	barrierGen int
	barrierCnt int
	barrierC   *sync.Cond

	msgs      atomic.Int64
	bytes     atomic.Int64
	recvMsgs  atomic.Int64
	recvBytes atomic.Int64
	recvWait  atomic.Int64

	// traceC, when set, supplies per-rank tracers: Recv and Barrier
	// record wait spans, sends record instants, and the stall watchdog
	// includes each rank's last span begun in its diagnostic.
	traceC *trace.Collector

	splitMu  sync.Mutex
	splitGen []int // per-rank Split-call counter
	splits   map[string]*splitEntry

	// Stall-watchdog state (RunOptions.StallTimeout): per-rank wait
	// states and a progress counter bumped on every delivery, receive,
	// and barrier passage.  Only maintained when watch is set.
	watch    bool
	blocked  []atomic.Uint64
	progress atomic.Int64

	abortOnce sync.Once
}

func (w *world) abort() {
	w.abortOnce.Do(func() {
		for _, mb := range w.mailboxes {
			mb.close()
		}
		w.barrierMu.Lock()
		w.barrierGen = -1 << 30
		w.barrierMu.Unlock()
		w.barrierC.Broadcast()
	})
}

// Proc is one rank's handle on the world.  A Proc is owned by a single
// goroutine and must not be shared.
type Proc struct {
	rank int
	w    *world
	tr   *trace.Tracer

	sentMsgs   int64
	sentBytes  int64
	recvMsgs   int64
	recvBytes  int64
	recvWaitNs int64
}

// Rank reports this process's rank in [0, Size()).
func (p *Proc) Rank() int { return p.rank }

// Size reports the number of processes in the world.
func (p *Proc) Size() int { return p.w.size }

// SentStats reports this process's cumulative communication volume
// (both sides; the name predates the receive-side counters).
func (p *Proc) SentStats() Stats {
	return Stats{
		Messages: p.sentMsgs, Bytes: p.sentBytes,
		Received: p.recvMsgs, BytesReceived: p.recvBytes,
		RecvWaitNs: p.recvWaitNs,
	}
}

// RunOptions configure a world beyond its size.
type RunOptions struct {
	// StallTimeout, when positive, arms a watchdog that aborts the world
	// once every rank has been blocked (in Recv or Barrier, or exited)
	// with no message or barrier progress for the whole duration, and
	// makes Run return ErrStalled with a per-rank diagnostic — which
	// ranks are blocked, and on which Recv source/tag — instead of
	// hanging forever.  The watchdog observes only this world: a rank
	// blocked inside a Split sub-world appears as running.
	StallTimeout time.Duration
	// Trace, when non-nil, attaches each rank's tracer: Recv and
	// Barrier record wait spans, Send records message instants, and
	// ErrStalled diagnostics include each rank's last span begun.
	Trace *trace.Collector
}

// ErrStalled is wrapped by the error Run returns when the stall watchdog
// aborts a deadlocked world.
var ErrStalled = errors.New("mpi: world stalled")

// Run executes fn on n ranks and waits for all of them.  It returns the
// aggregate communication statistics and the first panic (as an error),
// if any; a panic in one rank aborts the whole world.
func Run(n int, fn func(p *Proc)) (Stats, error) {
	return RunWithOptions(n, RunOptions{}, fn)
}

// RunWithOptions is Run with a stall watchdog and future knobs.
func RunWithOptions(n int, opts RunOptions, fn func(p *Proc)) (Stats, error) {
	if n <= 0 {
		return Stats{}, fmt.Errorf("mpi: world size %d", n)
	}
	w := &world{size: n, mailboxes: make([]*mailbox, n), traceC: opts.Trace}
	w.barrierC = sync.NewCond(&w.barrierMu)
	w.splitGen = make([]int, n)
	w.splits = make(map[string]*splitEntry)
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		runErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}
	var watchStop, watchDone chan struct{}
	if opts.StallTimeout > 0 {
		w.watch = true
		w.blocked = make([]atomic.Uint64, n)
		watchStop, watchDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(watchDone)
			w.watchdog(opts.StallTimeout, watchStop, setErr)
		}()
	}
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					if _, ok := e.(errAborted); !ok {
						setErr(fmt.Errorf("mpi: rank %d panicked: %v", rank, e))
					}
					w.abort()
				}
			}()
			if w.watch {
				// A rank that returned can never unblock a peer; the
				// watchdog counts it as permanently waiting.
				defer w.blocked[rank].Store(blockExited)
			}
			fn(&Proc{rank: rank, w: w, tr: opts.Trace.Tracer(rank)})
		}(r)
	}
	wg.Wait()
	if w.watch {
		close(watchStop)
		<-watchDone // runErr must not be written after we return it
	}
	return Stats{
		Messages: w.msgs.Load(), Bytes: w.bytes.Load(),
		Received: w.recvMsgs.Load(), BytesReceived: w.recvBytes.Load(),
		RecvWaitNs: w.recvWait.Load(),
	}, runErr
}

// Per-rank wait states for the watchdog, packed into one uint64:
// kind<<62 | (src+2)<<32 | (tag+2).  Wildcards (-1) encode as 1.
const (
	blockNone    uint64 = 0
	blockRecv    uint64 = 1 << 62
	blockBarrier uint64 = 2 << 62
	blockExited  uint64 = 3 << 62
)

func blockState(kind uint64, src, tag int) uint64 {
	return kind | uint64(src+2)<<32 | uint64(uint32(tag+2))
}

// watchdog polls the world's wait states and aborts it when every rank
// stays blocked with zero progress for a full timeout window.
func (w *world) watchdog(timeout time.Duration, stop <-chan struct{}, fail func(error)) {
	poll := timeout / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	last := int64(-1)
	var stalledFor time.Duration
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		prog := w.progress.Load()
		all := true
		for i := range w.blocked {
			if w.blocked[i].Load() == blockNone {
				all = false
				break
			}
		}
		if !all || prog != last {
			last = prog
			stalledFor = 0
			continue
		}
		if stalledFor += poll; stalledFor < timeout {
			continue
		}
		fail(w.stallDiagnostic())
		w.abort()
		return
	}
}

// stallDiagnostic formats where every rank is stuck: the packed wait
// state, plus (when tracing) the last span each rank began — which
// collective phase and file window the rank was inside when it stopped
// making progress.
func (w *world) stallDiagnostic() error {
	var b strings.Builder
	for r := range w.blocked {
		if r > 0 {
			b.WriteString("; ")
		}
		v := w.blocked[r].Load()
		src := int(v>>32&0x3fffffff) - 2
		tag := int(uint32(v)) - 2
		fmt.Fprintf(&b, "rank %d ", r)
		switch v & (3 << 62) {
		case blockRecv:
			b.WriteString("blocked in Recv(src=")
			if src == AnySource {
				b.WriteString("any")
			} else {
				fmt.Fprintf(&b, "%d", src)
			}
			if tag == AnyTag {
				b.WriteString(", tag=any)")
			} else {
				fmt.Fprintf(&b, ", tag=%d)", tag)
			}
		case blockBarrier:
			b.WriteString("blocked in Barrier")
		case blockExited:
			b.WriteString("exited")
		default:
			b.WriteString("running")
		}
		if ev, ok := w.traceC.Tracer(r).Current(); ok {
			fmt.Fprintf(&b, " [last span: %s", ev.Phase)
			if ev.Window != trace.NoWindow {
				fmt.Fprintf(&b, " @%d", ev.Window)
			}
			if ev.Dur < 0 {
				b.WriteString(", unfinished")
			}
			b.WriteString("]")
		}
	}
	return fmt.Errorf("%w: no progress for the stall timeout: %s", ErrStalled, b.String())
}

// Send delivers a copy of data to dst with the given tag.  Send is
// buffered: it never blocks on the receiver.
func (p *Proc) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	p.sentMsgs++
	p.sentBytes += int64(len(data))
	p.w.msgs.Add(1)
	p.w.bytes.Add(int64(len(data)))
	if p.w.watch {
		p.w.progress.Add(1)
	}
	p.tr.Instant(trace.PhaseMPISend, trace.NoWindow, int64(len(data)), "")
	p.w.mailboxes[dst].put(message{src: p.rank, tag: tag, data: buf})
}

// SendNoCopy delivers data without copying; the caller must not modify
// data afterwards.  Used for large one-shot payloads.
func (p *Proc) SendNoCopy(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	p.sentMsgs++
	p.sentBytes += int64(len(data))
	p.w.msgs.Add(1)
	p.w.bytes.Add(int64(len(data)))
	if p.w.watch {
		p.w.progress.Add(1)
	}
	p.tr.Instant(trace.PhaseMPISend, trace.NoWindow, int64(len(data)), "")
	p.w.mailboxes[dst].put(message{src: p.rank, tag: tag, data: data})
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload and envelope.  src may be AnySource and tag may be AnyTag.
// Matching messages from the same source with the same tag are received
// in the order they were sent.
func (p *Proc) Recv(src, tag int) (data []byte, fromSrc, fromTag int) {
	t0 := time.Now()
	sp := p.tr.Begin(trace.PhaseMPIRecv, trace.NoWindow, 0)
	if p.w.watch {
		p.w.blocked[p.rank].Store(blockState(blockRecv, src, tag))
	}
	m := p.w.mailboxes[p.rank].take(src, tag)
	if p.w.watch {
		p.w.blocked[p.rank].Store(blockNone)
		p.w.progress.Add(1)
	}
	sp.EndBytes(int64(len(m.data)))
	ns := time.Since(t0).Nanoseconds()
	p.recvWaitNs += ns
	p.w.recvWait.Add(ns)
	p.recvMsgs++
	p.recvBytes += int64(len(m.data))
	p.w.recvMsgs.Add(1)
	p.w.recvBytes.Add(int64(len(m.data)))
	return m.data, m.src, m.tag
}

// DrainTag removes every queued message with the given tag (from any
// source) from this rank's mailbox without blocking, returning the
// number of messages discarded.  Collective error recovery uses it to
// clear the in-flight traffic of an abandoned collective so the next
// one starts with clean mailboxes.  Drained messages count as received
// so the world's send/receive accounting still balances after error
// recovery.
func (p *Proc) DrainTag(tag int) int {
	mb := p.w.mailboxes[p.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	kept := mb.queue[:0]
	var droppedBytes int64
	for _, m := range mb.queue {
		if m.tag != tag {
			kept = append(kept, m)
		} else {
			droppedBytes += int64(len(m.data))
		}
	}
	dropped := len(mb.queue) - len(kept)
	for i := len(kept); i < len(mb.queue); i++ {
		mb.queue[i] = message{} // release dropped payloads
	}
	mb.queue = kept
	p.recvMsgs += int64(dropped)
	p.recvBytes += droppedBytes
	p.w.recvMsgs.Add(int64(dropped))
	p.w.recvBytes.Add(droppedBytes)
	return dropped
}

// Barrier blocks until all ranks have entered it.
func (p *Proc) Barrier() {
	w := p.w
	sp := p.tr.Begin(trace.PhaseMPIBarrier, trace.NoWindow, 0)
	defer sp.End()
	if w.watch {
		w.blocked[p.rank].Store(blockState(blockBarrier, -2, -2))
		defer func() {
			w.blocked[p.rank].Store(blockNone)
			w.progress.Add(1)
		}()
	}
	w.barrierMu.Lock()
	gen := w.barrierGen
	if gen < 0 {
		w.barrierMu.Unlock()
		panic(errAborted{})
	}
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierMu.Unlock()
		w.barrierC.Broadcast()
		return
	}
	for w.barrierGen == gen {
		w.barrierC.Wait()
	}
	aborted := w.barrierGen < 0
	w.barrierMu.Unlock()
	if aborted {
		panic(errAborted{})
	}
}

// splitWorlds registers the sub-worlds of Split calls so that all
// members of a color share one world object.
type splitEntry struct {
	w     *world
	taken int
}

// Split partitions the world collectively (like MPI_Comm_split): every
// rank passes a color and a key; ranks with equal color form a new
// world, ranked by (key, old rank).  The returned Proc addresses only
// the new world; the original Proc stays valid for the old one.  Every
// rank of the world must call Split the same number of times.
func (p *Proc) Split(color, key int) *Proc {
	// Gather (color, key) from everyone via the parent world.
	pairs := p.AllgatherInt64s([]int64{int64(color), int64(key)})

	// Compute my rank within my color group: order by (key, old rank).
	var size, newRank int
	for r, kv := range pairs {
		if int(kv[0]) != color {
			continue
		}
		size++
		if kv[1] < int64(key) || (kv[1] == int64(key) && r < p.rank) {
			newRank++
		}
	}

	// Get or create the shared sub-world for this (generation, color).
	w := p.w
	w.splitMu.Lock()
	gen := w.splitGen[p.rank]
	w.splitGen[p.rank]++
	keyStr := fmt.Sprintf("%d/%d", gen, color)
	ent := w.splits[keyStr]
	if ent == nil {
		sub := &world{size: size, mailboxes: make([]*mailbox, size)}
		sub.barrierC = sync.NewCond(&sub.barrierMu)
		sub.splitGen = make([]int, size)
		sub.splits = make(map[string]*splitEntry)
		for i := range sub.mailboxes {
			sub.mailboxes[i] = newMailbox()
		}
		ent = &splitEntry{w: sub}
		w.splits[keyStr] = ent
	}
	ent.taken++
	if ent.taken == size {
		delete(w.splits, keyStr) // all members joined; free the slot
	}
	sub := ent.w
	w.splitMu.Unlock()

	return &Proc{rank: newRank, w: sub}
}
