// Package mpi provides the message-passing process model that the MPI-IO
// layer (internal/core) is built on: a fixed group of ranks running as
// goroutines, point-to-point messages with source/tag matching, and the
// collective operations two-phase I/O needs.
//
// This is the substitution for the NEC SX's MPI/SX runtime (see
// DESIGN.md): a shared-memory rank model that exercises the identical
// communication structure.  Messages are real byte-slice transfers with
// per-pair FIFO ordering, so the ol-list exchange of list-based
// collective I/O carries its true cost in copied bytes and message
// counts, both of which are instrumented.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Reserved internal tag space for collectives; user tags must be below.
const collTagBase = 1 << 24

// Stats aggregates the communication volume of a world or a process.
type Stats struct {
	Messages   int64 // point-to-point messages sent
	Bytes      int64 // payload bytes sent
	RecvWaitNs int64 // total time spent blocked in Recv
}

type message struct {
	src, tag int
	data     []byte
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take removes and returns the earliest message matching (src, tag),
// blocking until one arrives.  It panics with errAborted if the world
// aborts while waiting.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.closed {
			panic(errAborted{})
		}
		for i, m := range mb.queue {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

type errAborted struct{}

func (errAborted) Error() string { return "mpi: world aborted" }

type world struct {
	size      int
	mailboxes []*mailbox

	barrierMu  sync.Mutex
	barrierGen int
	barrierCnt int
	barrierC   *sync.Cond

	msgs     atomic.Int64
	bytes    atomic.Int64
	recvWait atomic.Int64

	splitMu  sync.Mutex
	splitGen []int // per-rank Split-call counter
	splits   map[string]*splitEntry

	abortOnce sync.Once
}

func (w *world) abort() {
	w.abortOnce.Do(func() {
		for _, mb := range w.mailboxes {
			mb.close()
		}
		w.barrierMu.Lock()
		w.barrierGen = -1 << 30
		w.barrierMu.Unlock()
		w.barrierC.Broadcast()
	})
}

// Proc is one rank's handle on the world.  A Proc is owned by a single
// goroutine and must not be shared.
type Proc struct {
	rank int
	w    *world

	sentMsgs   int64
	sentBytes  int64
	recvWaitNs int64
}

// Rank reports this process's rank in [0, Size()).
func (p *Proc) Rank() int { return p.rank }

// Size reports the number of processes in the world.
func (p *Proc) Size() int { return p.w.size }

// SentStats reports this process's cumulative send volume.
func (p *Proc) SentStats() Stats {
	return Stats{Messages: p.sentMsgs, Bytes: p.sentBytes, RecvWaitNs: p.recvWaitNs}
}

// Run executes fn on n ranks and waits for all of them.  It returns the
// aggregate communication statistics and the first panic (as an error),
// if any; a panic in one rank aborts the whole world.
func Run(n int, fn func(p *Proc)) (Stats, error) {
	if n <= 0 {
		return Stats{}, fmt.Errorf("mpi: world size %d", n)
	}
	w := &world{size: n, mailboxes: make([]*mailbox, n)}
	w.barrierC = sync.NewCond(&w.barrierMu)
	w.splitGen = make([]int, n)
	w.splits = make(map[string]*splitEntry)
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		runErr error
	)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					if _, ok := e.(errAborted); !ok {
						errMu.Lock()
						if runErr == nil {
							runErr = fmt.Errorf("mpi: rank %d panicked: %v", rank, e)
						}
						errMu.Unlock()
					}
					w.abort()
				}
			}()
			fn(&Proc{rank: rank, w: w})
		}(r)
	}
	wg.Wait()
	return Stats{Messages: w.msgs.Load(), Bytes: w.bytes.Load(), RecvWaitNs: w.recvWait.Load()}, runErr
}

// Send delivers a copy of data to dst with the given tag.  Send is
// buffered: it never blocks on the receiver.
func (p *Proc) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	p.sentMsgs++
	p.sentBytes += int64(len(data))
	p.w.msgs.Add(1)
	p.w.bytes.Add(int64(len(data)))
	p.w.mailboxes[dst].put(message{src: p.rank, tag: tag, data: buf})
}

// SendNoCopy delivers data without copying; the caller must not modify
// data afterwards.  Used for large one-shot payloads.
func (p *Proc) SendNoCopy(dst, tag int, data []byte) {
	if dst < 0 || dst >= p.w.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	p.sentMsgs++
	p.sentBytes += int64(len(data))
	p.w.msgs.Add(1)
	p.w.bytes.Add(int64(len(data)))
	p.w.mailboxes[dst].put(message{src: p.rank, tag: tag, data: data})
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload and envelope.  src may be AnySource and tag may be AnyTag.
// Matching messages from the same source with the same tag are received
// in the order they were sent.
func (p *Proc) Recv(src, tag int) (data []byte, fromSrc, fromTag int) {
	t0 := time.Now()
	m := p.w.mailboxes[p.rank].take(src, tag)
	ns := time.Since(t0).Nanoseconds()
	p.recvWaitNs += ns
	p.w.recvWait.Add(ns)
	return m.data, m.src, m.tag
}

// Barrier blocks until all ranks have entered it.
func (p *Proc) Barrier() {
	w := p.w
	w.barrierMu.Lock()
	gen := w.barrierGen
	if gen < 0 {
		w.barrierMu.Unlock()
		panic(errAborted{})
	}
	w.barrierCnt++
	if w.barrierCnt == w.size {
		w.barrierCnt = 0
		w.barrierGen++
		w.barrierMu.Unlock()
		w.barrierC.Broadcast()
		return
	}
	for w.barrierGen == gen {
		w.barrierC.Wait()
	}
	aborted := w.barrierGen < 0
	w.barrierMu.Unlock()
	if aborted {
		panic(errAborted{})
	}
}

// splitWorlds registers the sub-worlds of Split calls so that all
// members of a color share one world object.
type splitEntry struct {
	w     *world
	taken int
}

// Split partitions the world collectively (like MPI_Comm_split): every
// rank passes a color and a key; ranks with equal color form a new
// world, ranked by (key, old rank).  The returned Proc addresses only
// the new world; the original Proc stays valid for the old one.  Every
// rank of the world must call Split the same number of times.
func (p *Proc) Split(color, key int) *Proc {
	// Gather (color, key) from everyone via the parent world.
	pairs := p.AllgatherInt64s([]int64{int64(color), int64(key)})

	// Compute my rank within my color group: order by (key, old rank).
	var size, newRank int
	for r, kv := range pairs {
		if int(kv[0]) != color {
			continue
		}
		size++
		if kv[1] < int64(key) || (kv[1] == int64(key) && r < p.rank) {
			newRank++
		}
	}

	// Get or create the shared sub-world for this (generation, color).
	w := p.w
	w.splitMu.Lock()
	gen := w.splitGen[p.rank]
	w.splitGen[p.rank]++
	keyStr := fmt.Sprintf("%d/%d", gen, color)
	ent := w.splits[keyStr]
	if ent == nil {
		sub := &world{size: size, mailboxes: make([]*mailbox, size)}
		sub.barrierC = sync.NewCond(&sub.barrierMu)
		sub.splitGen = make([]int, size)
		sub.splits = make(map[string]*splitEntry)
		for i := range sub.mailboxes {
			sub.mailboxes[i] = newMailbox()
		}
		ent = &splitEntry{w: sub}
		w.splits[keyStr] = ent
	}
	ent.taken++
	if ent.taken == size {
		delete(w.splits, keyStr) // all members joined; free the slot
	}
	sub := ent.w
	w.splitMu.Unlock()

	return &Proc{rank: newRank, w: sub}
}
