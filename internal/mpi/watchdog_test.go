package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestWatchdogDetectsDeadlock arms the stall watchdog over a world
// whose ranks wait on messages nobody sends; Run must return ErrStalled
// with a per-rank diagnostic instead of hanging.
func TestWatchdogDetectsDeadlock(t *testing.T) {
	_, err := RunWithOptions(2, RunOptions{StallTimeout: 50 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 5)
		} else {
			p.Recv(0, 6)
		}
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	msg := err.Error()
	for _, want := range []string{"rank 0", "rank 1", "Recv(src=1, tag=5)", "Recv(src=0, tag=6)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}

// TestWatchdogForensicsIncludesTrace: when a trace collector is wired
// into the world, the stall diagnostic must name the last span each
// rank began, not just the packed wait state — that is what tells the
// operator which collective phase the world died in.
func TestWatchdogForensicsIncludesTrace(t *testing.T) {
	c := trace.NewCollector(64)
	_, err := RunWithOptions(2, RunOptions{StallTimeout: 50 * time.Millisecond, Trace: c}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 5)
		} else {
			p.Recv(0, 6)
		}
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	msg := err.Error()
	for _, want := range []string{"last span: mpi.recv", "unfinished"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}

// TestWatchdogExitedRank: a rank that returned can never unblock its
// peers; the watchdog must treat it as permanently waiting and still
// detect the stall.
func TestWatchdogExitedRank(t *testing.T) {
	_, err := RunWithOptions(2, RunOptions{StallTimeout: 50 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(1, 7) // rank 1 exits without sending
		}
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "rank 1 exited") {
		t.Errorf("diagnostic %q missing exited rank", msg)
	}
}

// TestWatchdogBarrierStall: one rank in Barrier, the other in a Recv
// that can never complete — the diagnostic must name both wait kinds.
func TestWatchdogBarrierStall(t *testing.T) {
	_, err := RunWithOptions(2, RunOptions{StallTimeout: 50 * time.Millisecond}, func(p *Proc) {
		if p.Rank() == 0 {
			p.Barrier()
		} else {
			p.Recv(0, 9)
		}
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "blocked in Barrier") || !strings.Contains(msg, "Recv(src=0, tag=9)") {
		t.Errorf("diagnostic %q missing wait kinds", msg)
	}
}

// TestWatchdogNoFalsePositive runs a healthy but slow ping-pong world
// for several multiples of the stall timeout: steady progress must keep
// the watchdog quiet even though each rank spends most of its time
// blocked in Recv.
func TestWatchdogNoFalsePositive(t *testing.T) {
	const timeout = 20 * time.Millisecond
	deadline := time.Now().Add(5 * timeout)
	_, err := RunWithOptions(2, RunOptions{StallTimeout: timeout}, func(p *Proc) {
		peer := 1 - p.Rank()
		if p.Rank() == 0 {
			for time.Now().Before(deadline) {
				p.Send(peer, 1, []byte{1})
				p.Recv(peer, 1)
			}
			p.Send(peer, 2, nil) // stop
			return
		}
		for {
			_, _, tag := p.Recv(peer, AnyTag)
			if tag == 2 {
				return
			}
			time.Sleep(timeout / 3) // slow, but progressing
			p.Send(peer, 1, []byte{1})
		}
	})
	if err != nil {
		t.Fatalf("healthy world reported %v", err)
	}
}

// TestWatchdogDisabled: without a StallTimeout no watchdog state is
// maintained and a normal world runs as before.
func TestWatchdogDisabled(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("x"))
		} else {
			p.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDrainTag: only matching-tag messages are discarded, and order of
// the rest is preserved.
func TestDrainTag(t *testing.T) {
	_, err := Run(2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("a"))
			p.Send(1, 2, []byte("b"))
			p.Send(1, 1, []byte("c"))
			p.Send(1, 3, []byte("d"))
			p.Barrier()
			return
		}
		p.Barrier() // all four messages delivered (buffered sends + barrier)
		if n := p.DrainTag(1); n != 2 {
			t.Errorf("drained %d messages with tag 1, want 2", n)
		}
		if n := p.DrainTag(1); n != 0 {
			t.Errorf("second drain removed %d, want 0", n)
		}
		if data, _, _ := p.Recv(0, 2); string(data) != "b" {
			t.Errorf("tag 2 payload = %q, want b", data)
		}
		if data, _, _ := p.Recv(0, 3); string(data) != "d" {
			t.Errorf("tag 3 payload = %q, want d", data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
