package mpi

import "encoding/binary"

// Collective operations.  All of them must be called by every rank of the
// world.  They are built on point-to-point messages with reserved tags;
// pairwise FIFO ordering makes consecutive collectives on the same world
// well-ordered without sequence numbers.

const (
	tagBcast = collTagBase + iota
	tagGather
	tagAllgatherUp
	tagAllgatherDown
	tagAlltoall
	tagReduceUp
	tagReduceDown
	tagScatter
	tagBarrier  // wired-world linear barrier (report to 0, release)
	tagFinalize // distributed shutdown barrier before links drop
)

// Bcast distributes root's data to all ranks and returns it (the root
// returns data unchanged).
func (p *Proc) Bcast(root int, data []byte) []byte {
	if p.rank == root {
		for r := 0; r < p.w.size; r++ {
			if r != root {
				p.Send(r, tagBcast, data)
			}
		}
		return data
	}
	got, _, _ := p.Recv(root, tagBcast)
	return got
}

// Gather collects every rank's data at root.  At root the result has one
// entry per rank (root's own entry aliases data); other ranks get nil.
func (p *Proc) Gather(root int, data []byte) [][]byte {
	if p.rank != root {
		p.Send(root, tagGather, data)
		return nil
	}
	out := make([][]byte, p.w.size)
	out[root] = data
	for i := 1; i < p.w.size; i++ {
		got, src, _ := p.Recv(AnySource, tagGather)
		out[src] = got
	}
	return out
}

// Allgather collects every rank's data at every rank.
func (p *Proc) Allgather(data []byte) [][]byte {
	const root = 0
	parts := p.Gather(root, data)
	if p.rank == root {
		// Flatten with a length header and broadcast once.
		var total int
		for _, part := range parts {
			total += 8 + len(part)
		}
		flat := make([]byte, 0, total)
		for _, part := range parts {
			flat = binary.AppendVarint(flat, int64(len(part)))
			flat = append(flat, part...)
		}
		for r := 0; r < p.w.size; r++ {
			if r != root {
				p.Send(r, tagAllgatherDown, flat)
			}
		}
		return parts
	}
	flat, _, _ := p.Recv(root, tagAllgatherDown)
	out := make([][]byte, p.w.size)
	for i := range out {
		n, k := binary.Varint(flat)
		flat = flat[k:]
		out[i] = flat[:n:n]
		flat = flat[n:]
	}
	return out
}

// Alltoall delivers parts[i] to rank i and returns the parts received,
// indexed by source rank.  parts[p.Rank()] is passed through directly.
func (p *Proc) Alltoall(parts [][]byte) [][]byte {
	if len(parts) != p.w.size {
		panic("mpi: Alltoall needs one part per rank")
	}
	for r := 0; r < p.w.size; r++ {
		if r != p.rank {
			p.Send(r, tagAlltoall, parts[r])
		}
	}
	out := make([][]byte, p.w.size)
	out[p.rank] = parts[p.rank]
	for i := 0; i < p.w.size-1; i++ {
		got, src, _ := p.Recv(AnySource, tagAlltoall)
		out[src] = got
	}
	return out
}

// Op is a reduction operator for the int64 reductions.
type Op uint8

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (op Op) apply(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic("mpi: unknown op")
}

// AllreduceInt64 reduces v across all ranks with op and returns the
// result on every rank.
func (p *Proc) AllreduceInt64(v int64, op Op) int64 {
	res := p.AllgatherInt64(v)
	acc := res[0]
	for _, x := range res[1:] {
		acc = op.apply(acc, x)
	}
	return acc
}

// AllgatherInt64 collects one int64 from every rank, indexed by rank.
func (p *Proc) AllgatherInt64(v int64) []int64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	parts := p.Allgather(buf[:])
	out := make([]int64, p.w.size)
	for i, part := range parts {
		out[i] = int64(binary.LittleEndian.Uint64(part))
	}
	return out
}

// AllgatherInt64s collects a fixed-length vector of int64 from every
// rank; all ranks must pass the same length.
func (p *Proc) AllgatherInt64s(vs []int64) [][]int64 {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	parts := p.Allgather(buf)
	out := make([][]int64, p.w.size)
	for i, part := range parts {
		vec := make([]int64, len(part)/8)
		for j := range vec {
			vec[j] = int64(binary.LittleEndian.Uint64(part[j*8:]))
		}
		out[i] = vec
	}
	return out
}
