// Package testutil holds resource-leak helpers shared by the
// transport, mpi, and core test suites: goroutine-leak detection for
// background pumps that must exit on Close, and file-descriptor
// counting for socket and file cleanup assertions.
package testutil

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the goroutine count; the returned func fails the
// test if the count has not returned to the baseline shortly after,
// dumping all goroutine stacks.  Call it before starting the work under
// test, then invoke the check where the leak would be visible
// (`check := testutil.LeakCheck(t); ...; check()`), or register it for
// test end with `t.Cleanup(testutil.LeakCheck(t))` / `defer
// testutil.LeakCheck(t)()`.
func LeakCheck(t testing.TB) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if n > base {
			buf := make([]byte, 1<<16)
			t.Errorf("goroutine leak: %d before, %d after\n%s", base, n, buf[:runtime.Stack(buf, true)])
		}
	}
}

// FDCount reports the process's open file descriptors (Linux); -1
// where /proc is unavailable, which callers treat as "skip the fd-leak
// assertion".
func FDCount(t testing.TB) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
