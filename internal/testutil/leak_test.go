package testutil

import (
	"testing"
	"time"
)

// TestLeakCheckClean: a goroutine that exits before the check passes.
func TestLeakCheckClean(t *testing.T) {
	check := LeakCheck(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check()
}

// TestLeakCheckWaits: the check polls, so a goroutine that exits
// shortly after the work finishes does not false-positive.
func TestLeakCheckWaits(t *testing.T) {
	check := LeakCheck(t)
	go time.Sleep(50 * time.Millisecond)
	check()
}

func TestFDCount(t *testing.T) {
	n := FDCount(t)
	if n == 0 {
		t.Fatalf("FDCount = 0; a live process has open descriptors")
	}
	if n < 0 {
		t.Skip("/proc unavailable")
	}
}
