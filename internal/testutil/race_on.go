//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions skip under it: the detector's
// instrumentation allocates on its own.
const RaceEnabled = true
