// Package ioserver provides dedicated I/O-server processes for the
// storage tier: each server owns one stripe of a file (the round-robin
// layout of storage.StripeGeom, generalized from the in-process Striped
// backend to a network of processes), and ranks access the file through
// a client-side storage.Backend that speaks a request/response protocol
// over the TCP transport's frame codec.
//
// The protocol has two faces.  The raw face is plain passthrough —
// ReadAt/WriteAt and offset-list (vectored) batches against a server's
// local stripe, with the client doing all the stripe math.  The view
// face is the paper's idea pushed across the wire: the client registers
// a fileview (displacement + datatype.Encode'd filetype tree) once,
// gets back a handle, and from then on each noncontiguous access is a
// constant-size (handle, d0, d1) request; the server walks the pattern
// with fotf against its own stripe and moves exactly the owned bytes,
// packed in data order.  An offset list naming n runs costs
// ceil(n/MaxListRuns) round-trips; the same access through a registered
// view costs one.
package ioserver

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage"
	"repro/internal/transport"
)

// Protocol operations, carried in the frame tag (within the transport's
// reserved server-tag range).  The frame src field carries a
// client-chosen sequence number echoed by the response; a response's
// tag is the request's op on success, or opErr.
const (
	opRead      = transport.TagServerFirst - iota // off, n → eof, data
	opWrite                                       // off, data → —
	opReadv                                       // k, k×(off,n) → data
	opWritev                                      // k, k×(off,n), data → —
	opSize                                        // — → size
	opTruncate                                    // n → —
	opSync                                        // — → —
	opRegister                                    // disp, encoded filetype → handle
	opViewRead                                    // handle, d0, d1 → data (own-stripe bytes, data order)
	opViewWrite                                   // handle, d0, d1, data → —
	opStats                                       // — → counters
	opErr                                         // response only: class, message

	// Epoch commit protocol (crash-consistent collective writes): writes
	// staged under an epoch id are journaled, invisible to reads, and
	// applied atomically by opEpochCommit; a server restart discards
	// anything unsealed by a commit record.
	opStageWrite     // epoch, off, data → — (staged opWrite)
	opStageWritev    // epoch, k, k×(off,n), data → — (staged opWritev)
	opStageViewWrite // epoch, handle, d0, d1, data → — (staged opViewWrite)
	opEpochSeal      // epoch → incarnation, staged count, staged bytes (this connection)
	opEpochCommit    // epoch, incarnation → — (journal commit + apply + sync)
	opEpochAbort     // epoch → — (discard staged state)

	// opMetrics fetches the server's obs.Registry snapshot (binary
	// encoding, internal/obs) so the launcher and ranks can pull live
	// metrics in-band without an HTTP round-trip.  Appended last: op
	// values descend from TagServerFirst, so new ops must not shift the
	// existing assignments.
	opMetrics // — → obs snapshot bytes
)

// MaxListRuns bounds the (offset, length) entries of one opReadv /
// opWritev request; the client chops larger batches.  Keeping the list
// short is what makes the per-request cost of raw offset-list access
// proportional to the run count — the overhead registered views remove.
const MaxListRuns = 256

// DefaultViewCache is the per-connection registered-view LRU capacity.
const DefaultViewCache = 64

// Error classes carried by opErr frames.  The client maps the first two
// back onto the storage sentinels, so errors.Is(err, ErrTransient) and
// IsPermanent give the same answers on both sides of the wire and a
// client-side storage.Resilient retries exactly what it would have
// retried locally.
const (
	classTransient  = 1 // retryable: maps to storage.ErrTransient
	classPermanent  = 2 // not retryable: maps to storage.ErrPermanent
	classStale      = 3 // view handle unknown or evicted: re-register
	classBad        = 4 // malformed request: permanent, names the defect
	classEpochRetry = 5 // commit raced a server restart: maps to storage.ErrEpochRetry
)

// errStale is the client-side sentinel for classStale; view operations
// catch it internally and re-register, so callers never observe it.
var errStale = errors.New("ioserver: stale view handle")

// ServerStats are one server's request counters, fetched with opStats
// and also reported locally by Server.Stats.
type ServerStats struct {
	Requests   int64 // requests handled, all ops
	RawReads   int64 // opRead + opReadv
	RawWrites  int64 // opWrite + opWritev
	ViewReads  int64 // opViewRead
	ViewWrites int64 // opViewWrite
	// ViewRegistrations counts opRegister requests that decoded a new
	// view; ViewCacheHits counts those answered from the LRU without
	// decoding; StaleHandles counts view requests naming an evicted or
	// unknown handle.
	ViewRegistrations int64
	ViewCacheHits     int64
	StaleHandles      int64
	// BytesRead / BytesWritten are data bytes moved to/from clients.
	BytesRead    int64
	BytesWritten int64
	// StagedWrites counts epoch-staged write requests (all three staged
	// ops); EpochsCommitted counts applied commits.
	StagedWrites    int64
	EpochsCommitted int64
	// Crash-consistency activity: seals and aborts observed live,
	// commits journaled to disk (JournalFsyncs counts the fsync calls
	// that made them durable), and what restart recovery found —
	// epochs replayed, epochs discarded as uncommitted, and torn
	// journal tails truncated.
	EpochsSealed    int64
	EpochsAborted   int64
	JournalFsyncs   int64
	EpochsRecovered int64
	EpochsDiscarded int64
	TornTails       int64
}

func (st ServerStats) String() string {
	return fmt.Sprintf("requests %d: raw %dr/%dw, view %dr/%dw (reg %d, cache hits %d, stale %d), %d staged/%d epochs (sealed %d, aborted %d, fsyncs %d, recovered %d, discarded %d, torn %d), %dB out, %dB in",
		st.Requests, st.RawReads, st.RawWrites, st.ViewReads, st.ViewWrites,
		st.ViewRegistrations, st.ViewCacheHits, st.StaleHandles,
		st.StagedWrites, st.EpochsCommitted,
		st.EpochsSealed, st.EpochsAborted, st.JournalFsyncs,
		st.EpochsRecovered, st.EpochsDiscarded, st.TornTails,
		st.BytesRead, st.BytesWritten)
}

// add accumulates other into st, for aggregating across servers.
func (st *ServerStats) add(other ServerStats) {
	st.Requests += other.Requests
	st.RawReads += other.RawReads
	st.RawWrites += other.RawWrites
	st.ViewReads += other.ViewReads
	st.ViewWrites += other.ViewWrites
	st.ViewRegistrations += other.ViewRegistrations
	st.ViewCacheHits += other.ViewCacheHits
	st.StaleHandles += other.StaleHandles
	st.BytesRead += other.BytesRead
	st.BytesWritten += other.BytesWritten
	st.StagedWrites += other.StagedWrites
	st.EpochsCommitted += other.EpochsCommitted
	st.EpochsSealed += other.EpochsSealed
	st.EpochsAborted += other.EpochsAborted
	st.JournalFsyncs += other.JournalFsyncs
	st.EpochsRecovered += other.EpochsRecovered
	st.EpochsDiscarded += other.EpochsDiscarded
	st.TornTails += other.TornTails
}

func (st ServerStats) encode(buf []byte) []byte {
	for _, v := range []int64{st.Requests, st.RawReads, st.RawWrites, st.ViewReads, st.ViewWrites,
		st.ViewRegistrations, st.ViewCacheHits, st.StaleHandles, st.BytesRead, st.BytesWritten,
		st.StagedWrites, st.EpochsCommitted,
		st.EpochsSealed, st.EpochsAborted, st.JournalFsyncs,
		st.EpochsRecovered, st.EpochsDiscarded, st.TornTails} {
		buf = putV(buf, v)
	}
	return buf
}

func decodeStats(buf []byte) (ServerStats, error) {
	var st ServerStats
	var err error
	for _, p := range []*int64{&st.Requests, &st.RawReads, &st.RawWrites, &st.ViewReads, &st.ViewWrites,
		&st.ViewRegistrations, &st.ViewCacheHits, &st.StaleHandles, &st.BytesRead, &st.BytesWritten,
		&st.StagedWrites, &st.EpochsCommitted,
		&st.EpochsSealed, &st.EpochsAborted, &st.JournalFsyncs,
		&st.EpochsRecovered, &st.EpochsDiscarded, &st.TornTails} {
		if *p, buf, err = getV(buf); err != nil {
			return ServerStats{}, err
		}
	}
	return st, nil
}

// errTruncated classifies a payload that ends mid-field.
var errTruncated = errors.New("ioserver: truncated request payload")

func putV(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

func getV(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, buf[n:], nil
}

// wireError turns a local handler failure into (class, message) for an
// opErr frame, preserving the storage taxonomy.
func wireError(err error) (int64, string) {
	switch {
	case storage.IsEpochRetry(err):
		return classEpochRetry, err.Error()
	case storage.IsTransient(err):
		return classTransient, err.Error()
	default:
		return classPermanent, err.Error()
	}
}

// unwireError is the client-side inverse: rebuild an error in the same
// class, wrapping the matching sentinel so errors.Is round-trips.
func unwireError(addr string, class int64, msg string) error {
	switch class {
	case classTransient:
		return fmt.Errorf("ioserver %s: %s: %w", addr, msg, storage.ErrTransient)
	case classStale:
		return fmt.Errorf("ioserver %s: %s: %w", addr, msg, errStale)
	case classEpochRetry:
		return fmt.Errorf("ioserver %s: %s: %w", addr, msg, storage.ErrEpochRetry)
	case classBad, classPermanent:
		return fmt.Errorf("ioserver %s: %s: %w", addr, msg, storage.ErrPermanent)
	}
	return fmt.Errorf("ioserver %s: error class %d: %s: %w", addr, class, msg, storage.ErrPermanent)
}
