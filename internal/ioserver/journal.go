package ioserver

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// The per-server intent journal: an append-only record stream living
// next to the stripe (for file-backed servers, `<stripe>.journal`) that
// makes epoch commits atomic with respect to crashes.  Staged writes are
// journaled before they are acknowledged; a commit appends a commit
// record and syncs the journal *before* touching the stripe, so a crash
// at any instant recovers to a well-defined state:
//
//	crash before the commit record  → the epoch never happened
//	crash after it (mid-apply or
//	before the truncate)            → recovery re-applies the epoch
//	                                  (idempotent: same offsets, same bytes)
//
// Record wire form (CRC-guarded, garbage-tolerant on recovery):
//
//	[type byte] [type-specific varint fields + data] [crc32c LE of the preceding bytes]
//
//	recStage:  epoch, off, n, n data bytes
//	recCommit: epoch
//	recSeal:   — (clean-shutdown marker appended by Server.Close)
//
// Recovery scans from the start, stops at the first record that fails
// validation (a torn tail from a crash mid-append, or garbage), applies
// every epoch whose commit record made it in, discards the rest, and
// truncates the journal.

const (
	recStage  = byte(1)
	recCommit = byte(2)
	recSeal   = byte(3)
)

var crcTab = crc32.MakeTable(crc32.Castagnoli)

// Journal is one server's intent journal over a storage.Backend.
// Obtain one with NewJournal (fresh/volatile) or RecoverJournal (replays
// and truncates existing contents first).  Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	b      storage.Backend
	end    int64
	buf    []byte       // record staging, reused
	fsyncs atomic.Int64 // journal syncs performed (commit/seal/reset points)
}

// NewJournal wraps an empty (or expendable) backend as a journal.  Any
// existing contents are truncated away — use RecoverJournal to honor
// them.
func NewJournal(b storage.Backend) *Journal {
	b.Truncate(0)
	return &Journal{b: b}
}

// appendRec seals buf[start:] with its CRC and appends it to the store.
func (j *Journal) appendRec(rec []byte) error {
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(rec, crcTab))
	if _, err := j.b.WriteAt(rec, j.end); err != nil {
		return err
	}
	j.end += int64(len(rec))
	return nil
}

// AppendStage journals one staged write of epoch id.
func (j *Journal) AppendStage(epoch uint64, off int64, data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = append(j.buf[:0], recStage)
	j.buf = binary.AppendUvarint(j.buf, epoch)
	j.buf = binary.AppendVarint(j.buf, off)
	j.buf = binary.AppendVarint(j.buf, int64(len(data)))
	j.buf = append(j.buf, data...)
	return j.appendRec(j.buf)
}

// AppendCommit journals the commit decision for epoch id and syncs the
// journal — the commit point.  Once this returns, recovery will apply
// the epoch; before it, recovery will discard it.
func (j *Journal) AppendCommit(epoch uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = append(j.buf[:0], recCommit)
	j.buf = binary.AppendUvarint(j.buf, epoch)
	if err := j.appendRec(j.buf); err != nil {
		return err
	}
	return j.sync()
}

// AppendSeal journals a clean-shutdown marker and syncs.
func (j *Journal) AppendSeal() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = append(j.buf[:0], recSeal)
	if err := j.appendRec(j.buf); err != nil {
		return err
	}
	return j.sync()
}

// sync flushes the journal store and counts the durability point.
func (j *Journal) sync() error {
	if err := j.b.Sync(); err != nil {
		return err
	}
	j.fsyncs.Add(1)
	return nil
}

// Fsyncs reports the journal syncs performed so far.
func (j *Journal) Fsyncs() int64 { return j.fsyncs.Load() }

// Reset empties the journal after a committed epoch has been applied and
// the stripe synced: everything in it is now redundant.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.end = 0
	if err := j.b.Truncate(0); err != nil {
		return err
	}
	return j.sync()
}

// Len reports the journal's current byte length, for tests.
func (j *Journal) Len() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.end
}

// journalRec is one decoded record.
type journalRec struct {
	typ   byte
	epoch uint64
	off   int64
	data  []byte
}

// scanJournal decodes records until the stream ends or fails validation.
// It never fails: arbitrary bytes decode to a (possibly empty) valid
// prefix plus a torn-tail flag.  Returned records alias buf.
func scanJournal(buf []byte) (recs []journalRec, torn bool) {
	for len(buf) > 0 {
		rec, rest, ok := scanOne(buf)
		if !ok {
			return recs, true
		}
		recs = append(recs, rec)
		buf = rest
	}
	return recs, false
}

func scanOne(buf []byte) (journalRec, []byte, bool) {
	body := buf // full record bytes, CRC-checked at the end
	if len(buf) < 1 {
		return journalRec{}, nil, false
	}
	rec := journalRec{typ: buf[0]}
	buf = buf[1:]
	switch rec.typ {
	case recStage:
		var n int
		if rec.epoch, n = binary.Uvarint(buf); n <= 0 {
			return journalRec{}, nil, false
		}
		buf = buf[n:]
		var off, dlen int64
		if off, n = binary.Varint(buf); n <= 0 || off < 0 {
			return journalRec{}, nil, false
		}
		buf = buf[n:]
		if dlen, n = binary.Varint(buf); n <= 0 || dlen < 0 || dlen > int64(len(buf)-n) {
			return journalRec{}, nil, false
		}
		buf = buf[n:]
		rec.off = off
		rec.data = buf[:dlen]
		buf = buf[dlen:]
	case recCommit:
		var n int
		if rec.epoch, n = binary.Uvarint(buf); n <= 0 {
			return journalRec{}, nil, false
		}
		buf = buf[n:]
	case recSeal:
		// no fields
	default:
		return journalRec{}, nil, false
	}
	if len(buf) < 4 {
		return journalRec{}, nil, false
	}
	bodyLen := len(body) - len(buf)
	if crc32.Checksum(body[:bodyLen], crcTab) != binary.LittleEndian.Uint32(buf) {
		return journalRec{}, nil, false
	}
	return rec, buf[4:], true
}

// RecoveryInfo summarizes one journal recovery.
type RecoveryInfo struct {
	// LastCommitted is the highest epoch id whose commit record was
	// found and applied (0 when none).
	LastCommitted uint64
	// AppliedEpochs / AppliedBytes count the committed epochs re-applied
	// to the stripe and the staged bytes they carried.
	AppliedEpochs int
	AppliedBytes  int64
	// DiscardedEpochs counts staged-but-uncommitted epochs thrown away.
	DiscardedEpochs int
	// TornTail reports that the scan stopped at a corrupt or truncated
	// record (everything after it was discarded).
	TornTail bool
	// Sealed reports a clean-shutdown seal marker at the journal's tail.
	Sealed bool
}

func (ri RecoveryInfo) String() string {
	return fmt.Sprintf("recovery: last committed epoch %d, %d applied (%dB), %d discarded, torn=%t, sealed=%t",
		ri.LastCommitted, ri.AppliedEpochs, ri.AppliedBytes, ri.DiscardedEpochs, ri.TornTail, ri.Sealed)
}

// RecoverJournal replays the journal in jb against the stripe backend:
// committed epochs are re-applied in journal order (idempotent — a crash
// mid-apply followed by a second recovery lands the same bytes),
// uncommitted staged state is discarded, and the journal is truncated.
// Only stripe or journal I/O can fail; arbitrary journal *contents*
// cannot.
func RecoverJournal(jb, stripe storage.Backend) (*Journal, RecoveryInfo, error) {
	var info RecoveryInfo
	size := jb.Size()
	buf := make([]byte, size)
	if size > 0 {
		if err := storage.ReadFull(jb, buf, 0); err != nil {
			return nil, info, fmt.Errorf("ioserver: reading journal: %w", err)
		}
	}
	recs, torn := scanJournal(buf)
	info.TornTail = torn
	info.Sealed = !torn && len(recs) > 0 && recs[len(recs)-1].typ == recSeal

	staged := make(map[uint64][]storage.Segment)
	order := []uint64{} // first-stage order, for counting discards deterministically
	applied := false
	for _, rec := range recs {
		switch rec.typ {
		case recStage:
			if _, ok := staged[rec.epoch]; !ok {
				order = append(order, rec.epoch)
			}
			staged[rec.epoch] = append(staged[rec.epoch], storage.Segment{Off: rec.off, Buf: rec.data})
		case recCommit:
			segs := staged[rec.epoch]
			if len(segs) > 0 {
				if err := storage.WriteAtv(stripe, segs); err != nil {
					return nil, info, fmt.Errorf("ioserver: re-applying epoch %d: %w", rec.epoch, err)
				}
				for _, s := range segs {
					info.AppliedBytes += int64(len(s.Buf))
				}
			}
			delete(staged, rec.epoch)
			info.AppliedEpochs++
			if rec.epoch > info.LastCommitted {
				info.LastCommitted = rec.epoch
			}
			applied = true
		}
	}
	for _, e := range order {
		if _, ok := staged[e]; ok {
			info.DiscardedEpochs++
		}
	}
	if applied {
		if err := stripe.Sync(); err != nil {
			return nil, info, fmt.Errorf("ioserver: syncing stripe after recovery: %w", err)
		}
	}
	j := &Journal{b: jb}
	if size > 0 {
		if err := j.Reset(); err != nil {
			return nil, info, fmt.Errorf("ioserver: truncating recovered journal: %w", err)
		}
	}
	return j, info, nil
}
