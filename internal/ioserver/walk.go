package ioserver

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/fotf"
	"repro/internal/storage"
)

// The partition walk both sides of the view protocol share.  The client
// and each server run the identical enumeration of the registered
// pattern's contiguous runs (fotf.Runs over the encoded filetype)
// intersected with the identical stripe layout (storage.StripeGeom), so
// the per-server byte streams line up without any per-run metadata on
// the wire: piece k of server s's stream is the k-th piece the walk
// assigns to stripe s, on both ends.

// walkView enumerates the stripe-partitioned contiguous pieces of data
// range [d0, d1) of the view (t tiled at displacement disp) in data
// order.  fn receives the owning stripe, the piece's offset within that
// stripe's local store, the piece's absolute data offset, and its
// length.  The walk stops at the first error.
func walkView(t *datatype.Type, disp int64, g storage.StripeGeom, d0, d1 int64, fn func(stripe int, localOff, dataOff, n int64) error) error {
	var err error
	fotf.Runs(t, d0, d1, func(bufOff, dataOff, runLen, stride, n int64) {
		if err != nil {
			return
		}
		for i := int64(0); i < n; i++ {
			abs := disp + bufOff + i*stride
			if abs < 0 {
				err = fmt.Errorf("ioserver: view places data at negative file offset %d: %w", abs, storage.ErrPermanent)
				return
			}
			dOff := dataOff + i*runLen
			if e := g.Each(abs, runLen, func(stripe int, localOff, lo, hi int64) error {
				return fn(stripe, localOff, dOff+lo, hi-lo)
			}); e != nil {
				err = e
				return
			}
		}
	})
	return err
}

// stripeLens sums, per stripe, the bytes of data range [d0, d1) each
// stripe owns under the view — the allocation pass both sides run
// before moving any data.
func stripeLens(t *datatype.Type, disp int64, g storage.StripeGeom, d0, d1 int64) ([]int64, error) {
	lens := make([]int64, g.Count)
	err := walkView(t, disp, g, d0, d1, func(stripe int, _, _, n int64) error {
		lens[stripe] += n
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lens, nil
}
