package ioserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datatype"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config describes one I/O server: the backend holding its stripe's
// bytes, and its place in the global layout.
type Config struct {
	// Backend stores this server's stripe (local offsets).
	Backend storage.Backend
	// Geom is the global stripe layout; Index is this server's stripe.
	// Every server of a deployment must be configured with the same
	// Geom, and the clients with the matching layout — the shared
	// StripeGeom arithmetic is what keeps them agreeing on ownership.
	Geom  storage.StripeGeom
	Index int
	// MaxFrame bounds request and response payloads (<= 0 selects
	// transport.DefaultMaxFrame).  Header lengths are validated against
	// it before any allocation.
	MaxFrame int
	// ViewCache is the per-connection registered-view LRU capacity
	// (<= 0 selects DefaultViewCache).  Evicted handles answer
	// subsequent view requests with a stale-handle error, which clients
	// repair by re-registering.
	ViewCache int
	// Tracer, when non-nil, records request spans and view-cache
	// events.
	Tracer *trace.Tracer
	// Journal is the intent journal backing the epoch commit protocol.
	// File-backed deployments recover one with RecoverJournal (replaying
	// committed epochs into Backend first) and pass it here; when nil,
	// New builds a volatile in-memory journal, which still gives staged
	// writes commit atomicity against everything but a server crash.
	Journal *Journal
	// Recovery, when the journal came from RecoverJournal, carries what
	// recovery found; its counts fold into Stats so op=stats and the
	// metrics plane reflect crash-consistency activity across restarts.
	Recovery RecoveryInfo
	// Metrics, when non-nil, registers the server's request counters and
	// per-op latency histograms; opMetrics serves its snapshot in-band.
	Metrics *obs.Registry
	// Proc names this process in metrics snapshots (default
	// "srv<Index>").
	Proc string
}

// Server serves one stripe of a file to any number of client
// connections.
type Server struct {
	cfg         Config
	journal     *Journal
	incarnation int64 // instance id, fresh per process start
	stats       struct {
		requests, rawReads, rawWrites    atomic.Int64
		viewReads, viewWrites            atomic.Int64
		viewRegs, viewHits, staleHandles atomic.Int64
		bytesRead, bytesWritten          atomic.Int64
		stagedWrites, epochsCommitted    atomic.Int64
		epochsSealed, epochsAborted      atomic.Int64
	}
	opNs map[int]*obs.Hist // per-op handling latency, when Metrics is set

	// Epoch commit state: staged holds each in-flight epoch's parked
	// segments (applied to Backend only at commit), lastCommitted the
	// highest epoch this instance has applied.
	epochMu       sync.Mutex
	staged        map[uint64][]storage.Segment
	lastCommitted uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{} // closed when Serve returns
}

// New validates cfg and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("ioserver: nil backend")
	}
	if err := cfg.Geom.Validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Geom.Count {
		return nil, fmt.Errorf("ioserver: stripe index %d out of range [0,%d)", cfg.Index, cfg.Geom.Count)
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = transport.DefaultMaxFrame
	}
	if cfg.ViewCache <= 0 {
		cfg.ViewCache = DefaultViewCache
	}
	j := cfg.Journal
	if j == nil {
		j = NewJournal(storage.NewMem())
	}
	if cfg.Proc == "" {
		cfg.Proc = fmt.Sprintf("srv%d", cfg.Index)
	}
	s := &Server{
		cfg:         cfg,
		journal:     j,
		incarnation: time.Now().UnixNano(),
		staged:      make(map[uint64][]storage.Segment),
		conns:       make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
	}
	s.registerMetrics(cfg.Metrics)
	return s, nil
}

// registerMetrics joins the server's counters to the metrics plane: the
// op tallies as zero-hot-path-cost gauge callbacks over the existing
// atomics, plus one latency histogram per protocol op.
func (s *Server) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("ioserver_requests_total", "Requests handled, all ops.", s.stats.requests.Load)
	r.GaugeFunc("ioserver_raw_reads_total", "opRead and opReadv requests served.", s.stats.rawReads.Load)
	r.GaugeFunc("ioserver_raw_writes_total", "opWrite and opWritev requests served.", s.stats.rawWrites.Load)
	r.GaugeFunc("ioserver_view_reads_total", "opViewRead requests served.", s.stats.viewReads.Load)
	r.GaugeFunc("ioserver_view_writes_total", "opViewWrite requests served.", s.stats.viewWrites.Load)
	r.GaugeFunc("ioserver_view_registrations_total", "opRegister requests that decoded a new view.", s.stats.viewRegs.Load)
	r.GaugeFunc("ioserver_view_cache_hits_total", "opRegister requests answered from the view LRU.", s.stats.viewHits.Load)
	r.GaugeFunc("ioserver_view_stale_handles_total", "View requests naming an evicted or unknown handle.", s.stats.staleHandles.Load)
	r.GaugeFunc("ioserver_read_bytes_total", "Data bytes sent to clients.", s.stats.bytesRead.Load)
	r.GaugeFunc("ioserver_written_bytes_total", "Data bytes received from clients.", s.stats.bytesWritten.Load)
	r.GaugeFunc("ioserver_staged_writes_total", "Epoch-staged write requests.", s.stats.stagedWrites.Load)
	r.GaugeFunc("ioserver_epochs_committed_total", "Epoch commits applied.", s.stats.epochsCommitted.Load)
	r.GaugeFunc("ioserver_epochs_sealed_total", "Epoch seal requests answered.", s.stats.epochsSealed.Load)
	r.GaugeFunc("ioserver_epochs_aborted_total", "Epochs whose staged state was discarded by abort.", s.stats.epochsAborted.Load)
	r.GaugeFunc("ioserver_journal_fsyncs_total", "Journal syncs (commit, seal, and reset durability points).", s.journal.Fsyncs)
	r.GaugeFunc("ioserver_epochs_recovered_total", "Committed epochs re-applied by journal recovery at start.",
		func() int64 { return int64(s.cfg.Recovery.AppliedEpochs) })
	r.GaugeFunc("ioserver_epochs_discarded_total", "Staged-but-uncommitted epochs discarded by recovery.",
		func() int64 { return int64(s.cfg.Recovery.DiscardedEpochs) })
	r.GaugeFunc("ioserver_journal_torn_tails_total", "Torn journal tails truncated by recovery.",
		func() int64 {
			if s.cfg.Recovery.TornTail {
				return 1
			}
			return 0
		})
	s.opNs = make(map[int]*obs.Hist)
	for _, tag := range []int{opRead, opWrite, opReadv, opWritev, opSize, opTruncate, opSync,
		opRegister, opViewRead, opViewWrite, opStats,
		opStageWrite, opStageWritev, opStageViewWrite,
		opEpochSeal, opEpochCommit, opEpochAbort, opMetrics} {
		s.opNs[tag] = r.Hist("ioserver_op_ns", "Server-side request handling latency by op.",
			obs.Label{Key: "op", Value: opName(tag)})
	}
}

// opName labels a protocol op for metrics.
func opName(tag int) string {
	switch tag {
	case opRead:
		return "read"
	case opWrite:
		return "write"
	case opReadv:
		return "readv"
	case opWritev:
		return "writev"
	case opSize:
		return "size"
	case opTruncate:
		return "truncate"
	case opSync:
		return "sync"
	case opRegister:
		return "register"
	case opViewRead:
		return "view_read"
	case opViewWrite:
		return "view_write"
	case opStats:
		return "stats"
	case opStageWrite:
		return "stage_write"
	case opStageWritev:
		return "stage_writev"
	case opStageViewWrite:
		return "stage_view_write"
	case opEpochSeal:
		return "epoch_seal"
	case opEpochCommit:
		return "epoch_commit"
	case opEpochAbort:
		return "epoch_abort"
	case opMetrics:
		return "metrics"
	}
	return "unknown"
}

// Serve accepts connections on ln until Close, handling each on its own
// goroutine.  It returns nil after a Close-initiated shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("ioserver: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	defer close(s.done)

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, seals the journal and syncs the stripe (so a
// graceful shutdown is distinguishable from a crash on recovery), closes
// every live connection, and waits for the handlers and Serve to return.
// Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()

	// Graceful-shutdown seal: fsync the stripe and mark the journal
	// before dropping connections.  Failures are reported but do not
	// abort the shutdown.
	s.epochMu.Lock()
	err := s.journal.AppendSeal()
	if serr := s.cfg.Backend.Sync(); err == nil {
		err = serr
	}
	s.epochMu.Unlock()

	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln == nil {
		return err
	}
	ln.Close()
	<-s.done
	return err
}

// Stats snapshots the request counters.  The recovery numbers come from
// the journal recovery that produced cfg.Journal (zero for fresh
// starts), so a restarted server's stats carry its crash history.
func (s *Server) Stats() ServerStats {
	torn := int64(0)
	if s.cfg.Recovery.TornTail {
		torn = 1
	}
	return ServerStats{
		Requests:          s.stats.requests.Load(),
		RawReads:          s.stats.rawReads.Load(),
		RawWrites:         s.stats.rawWrites.Load(),
		ViewReads:         s.stats.viewReads.Load(),
		ViewWrites:        s.stats.viewWrites.Load(),
		ViewRegistrations: s.stats.viewRegs.Load(),
		ViewCacheHits:     s.stats.viewHits.Load(),
		StaleHandles:      s.stats.staleHandles.Load(),
		BytesRead:         s.stats.bytesRead.Load(),
		BytesWritten:      s.stats.bytesWritten.Load(),
		StagedWrites:      s.stats.stagedWrites.Load(),
		EpochsCommitted:   s.stats.epochsCommitted.Load(),
		EpochsSealed:      s.stats.epochsSealed.Load(),
		EpochsAborted:     s.stats.epochsAborted.Load(),
		JournalFsyncs:     s.journal.Fsyncs(),
		EpochsRecovered:   int64(s.cfg.Recovery.AppliedEpochs),
		EpochsDiscarded:   int64(s.cfg.Recovery.DiscardedEpochs),
		TornTails:         torn,
	}
}

// serverView is one decoded registration in a connection's cache.
type serverView struct {
	key    string // the raw opRegister payload, the cache key
	handle uint64
	disp   int64
	t      *datatype.Type
}

// connState is the per-connection handler state: the registered-view
// LRU plus reusable scratch buffers.  It is confined to the
// connection's goroutine.
type connState struct {
	srv *Server
	fc  *transport.FrameConn

	views  map[uint64]*serverView // live handles
	byKey  map[string]*serverView // cache index
	lru    []*serverView          // least recent first
	nextID uint64

	resp []byte            // response staging buffer, reused
	segs []storage.Segment // vectored-call staging, reused

	// Staging tally for the connection's in-flight epoch, echoed by
	// opEpochSeal so the client can verify nothing staged was lost to a
	// silent restart.
	tallyEpoch             uint64
	tallyCount, tallyBytes int64
}

// handleConn serves one connection to completion.  Malformed framing
// tears the connection down (the stream cannot be resynchronized);
// malformed requests inside a valid frame answer with an opErr frame
// and keep the connection.
func (s *Server) handleConn(conn net.Conn) {
	st := &connState{
		srv:   s,
		fc:    transport.NewFrameConn(conn, s.cfg.MaxFrame),
		views: make(map[uint64]*serverView),
		byKey: make(map[string]*serverView),
	}
	defer st.fc.Close()
	for {
		seq, tag, payload, err := st.fc.ReadFrame()
		if err != nil {
			// EOF is the client hanging up; anything else is a framing
			// failure — either way the stream is over.
			return
		}
		s.stats.requests.Add(1)
		if err := st.handle(seq, tag, payload); err != nil {
			return // response write failed: connection is gone
		}
	}
}

// handle dispatches one request and writes its response.  The returned
// error reports only response-write failures.
func (st *connState) handle(seq, tag int, payload []byte) error {
	var t0 time.Time
	if st.srv.opNs != nil {
		t0 = time.Now()
	}
	resp, err := st.dispatch(tag, payload)
	if st.srv.opNs != nil {
		st.srv.opNs[tag].ObserveSince(t0) // nil map entry (unknown op) no-ops
	}
	if err != nil {
		class, msg := wireError(err)
		if errors.Is(err, errStale) {
			class = classStale
		} else if errors.Is(err, errTruncated) || errors.Is(err, errBadRequest) {
			class = classBad
		}
		st.resp = putV(st.resp[:0], class)
		st.resp = append(st.resp, msg...)
		return st.fc.WriteFrame(seq, opErr, st.resp)
	}
	return st.fc.WriteFrame(seq, tag, resp)
}

// errBadRequest classifies a structurally valid but unserviceable
// request (bad lengths, unknown op, oversized response).
var errBadRequest = errors.New("ioserver: bad request")

func (st *connState) dispatch(tag int, payload []byte) ([]byte, error) {
	switch tag {
	case opRead:
		return st.opRead(payload)
	case opWrite:
		return st.opWrite(payload)
	case opReadv:
		return st.opReadv(payload)
	case opWritev:
		return st.opWritev(payload)
	case opSize:
		return putV(st.resp[:0], st.srv.cfg.Backend.Size()), nil
	case opTruncate:
		n, _, err := getV(payload)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("%w: negative truncate %d", errBadRequest, n)
		}
		return nil, st.srv.cfg.Backend.Truncate(n)
	case opSync:
		return nil, st.srv.cfg.Backend.Sync()
	case opRegister:
		return st.opRegister(payload)
	case opViewRead:
		return st.opView(payload, false)
	case opViewWrite:
		return st.opView(payload, true)
	case opStats:
		return st.srv.Stats().encode(st.resp[:0]), nil
	case opMetrics:
		// An empty registry still answers with a valid (empty) snapshot,
		// so pullers need not know whether the server was instrumented.
		snap := st.srv.cfg.Metrics.Snapshot(st.srv.cfg.Proc)
		st.resp = append(st.resp[:0], snap.Encode()...)
		return st.resp, nil
	case opStageWrite:
		return st.opStageWrite(payload)
	case opStageWritev:
		return st.opStageWritev(payload)
	case opStageViewWrite:
		return st.opStageViewWrite(payload)
	case opEpochSeal:
		return st.opEpochSeal(payload)
	case opEpochCommit:
		return st.opEpochCommit(payload)
	case opEpochAbort:
		return st.opEpochAbort(payload)
	}
	return nil, fmt.Errorf("%w: unknown op %d", errBadRequest, tag)
}

// opRead: off, n → eof flag, data.  Plain ReadAt relay, preserving the
// short-read-plus-EOF shape of the Backend contract.
func (st *connState) opRead(payload []byte) ([]byte, error) {
	off, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	n, _, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || n > int64(st.srv.cfg.MaxFrame)-1 {
		return nil, fmt.Errorf("%w: read off %d len %d", errBadRequest, off, n)
	}
	sp := st.srv.cfg.Tracer.BeginIO(trace.PhaseServerRead, off, n)
	defer sp.End()
	st.resp = grow(st.resp[:0], 1+n)
	st.resp[0] = 0
	m, err := st.srv.cfg.Backend.ReadAt(st.resp[1:1+n], off)
	if err == io.EOF {
		st.resp[0] = 1
	} else if err != nil {
		return nil, err
	}
	st.srv.stats.rawReads.Add(1)
	st.srv.stats.bytesRead.Add(int64(m))
	return st.resp[:1+m], nil
}

// opWrite: off, data → —.
func (st *connState) opWrite(payload []byte) ([]byte, error) {
	off, data, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if off < 0 {
		return nil, fmt.Errorf("%w: write off %d", errBadRequest, off)
	}
	sp := st.srv.cfg.Tracer.BeginIO(trace.PhaseServerWrite, off, int64(len(data)))
	defer sp.End()
	if _, err := st.srv.cfg.Backend.WriteAt(data, off); err != nil {
		return nil, err
	}
	st.srv.stats.rawWrites.Add(1)
	st.srv.stats.bytesWritten.Add(int64(len(data)))
	return nil, nil
}

// opReadv: k, k×(off,n) → concatenated data (ReadFull semantics per
// entry: bytes past the stripe's EOF read as zeros).
func (st *connState) opReadv(payload []byte) ([]byte, error) {
	k, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if k < 0 || k > MaxListRuns {
		return nil, fmt.Errorf("%w: list of %d runs (limit %d)", errBadRequest, k, MaxListRuns)
	}
	type ent struct{ off, n int64 }
	ents := make([]ent, 0, k)
	var total int64
	for i := int64(0); i < k; i++ {
		var off, n int64
		if off, payload, err = getV(payload); err != nil {
			return nil, err
		}
		if n, payload, err = getV(payload); err != nil {
			return nil, err
		}
		if off < 0 || n < 0 || total+n > int64(st.srv.cfg.MaxFrame) {
			return nil, fmt.Errorf("%w: list entry off %d len %d", errBadRequest, off, n)
		}
		ents = append(ents, ent{off, n})
		total += n
	}
	sp := st.srv.cfg.Tracer.BeginIO(trace.PhaseServerRead, 0, total)
	defer sp.End()
	st.resp = grow(st.resp[:0], total)
	st.segs = st.segs[:0]
	var pos int64
	for _, e := range ents {
		st.segs = append(st.segs, storage.Segment{Off: e.off, Buf: st.resp[pos : pos+e.n]})
		pos += e.n
	}
	if err := storage.ReadAtv(st.srv.cfg.Backend, st.segs); err != nil {
		return nil, err
	}
	st.srv.stats.rawReads.Add(1)
	st.srv.stats.bytesRead.Add(total)
	return st.resp, nil
}

// opWritev: k, k×(off,n), concatenated data → —.
func (st *connState) opWritev(payload []byte) ([]byte, error) {
	k, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if k < 0 || k > MaxListRuns {
		return nil, fmt.Errorf("%w: list of %d runs (limit %d)", errBadRequest, k, MaxListRuns)
	}
	st.segs = st.segs[:0]
	var total int64
	offs := make([][2]int64, 0, k)
	for i := int64(0); i < k; i++ {
		var off, n int64
		if off, payload, err = getV(payload); err != nil {
			return nil, err
		}
		if n, payload, err = getV(payload); err != nil {
			return nil, err
		}
		if off < 0 || n < 0 || total+n > int64(st.srv.cfg.MaxFrame) {
			return nil, fmt.Errorf("%w: list entry off %d len %d", errBadRequest, off, n)
		}
		offs = append(offs, [2]int64{off, n})
		total += n
	}
	if int64(len(payload)) != total {
		return nil, fmt.Errorf("%w: write list names %d bytes, payload carries %d", errBadRequest, total, len(payload))
	}
	sp := st.srv.cfg.Tracer.BeginIO(trace.PhaseServerWrite, 0, total)
	defer sp.End()
	var pos int64
	for _, e := range offs {
		st.segs = append(st.segs, storage.Segment{Off: e[0], Buf: payload[pos : pos+e[1]]})
		pos += e[1]
	}
	if err := storage.WriteAtv(st.srv.cfg.Backend, st.segs); err != nil {
		return nil, err
	}
	st.srv.stats.rawWrites.Add(1)
	st.srv.stats.bytesWritten.Add(total)
	return nil, nil
}

// opRegister: disp, encoded filetype → handle.  The whole payload is
// the cache key, so a repeat registration of the same view — every rank
// re-opening the same fileview, or a client re-registering after
// reconnect — is a cache hit that skips the decode.
func (st *connState) opRegister(payload []byte) ([]byte, error) {
	if v, ok := st.byKey[string(payload)]; ok {
		st.srv.stats.viewHits.Add(1)
		st.srv.cfg.Tracer.Instant(trace.PhaseServerViewHit, int64(v.handle), 0, "")
		st.touch(v)
		return putV(st.resp[:0], int64(v.handle)), nil
	}
	disp, enc, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if disp < 0 {
		return nil, fmt.Errorf("%w: negative displacement %d", errBadRequest, disp)
	}
	t, err := datatype.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	st.nextID++
	v := &serverView{key: string(payload), handle: st.nextID, disp: disp, t: t}
	st.views[v.handle] = v
	st.byKey[v.key] = v
	st.lru = append(st.lru, v)
	if len(st.lru) > st.srv.cfg.ViewCache {
		old := st.lru[0]
		st.lru = st.lru[1:]
		delete(st.views, old.handle)
		delete(st.byKey, old.key)
	}
	st.srv.stats.viewRegs.Add(1)
	st.srv.cfg.Tracer.Instant(trace.PhaseServerViewReg, int64(v.handle), int64(len(enc)), "")
	return putV(st.resp[:0], int64(v.handle)), nil
}

// touch marks v most recently used.
func (st *connState) touch(v *serverView) {
	for i, u := range st.lru {
		if u == v {
			copy(st.lru[i:], st.lru[i+1:])
			st.lru[len(st.lru)-1] = v
			return
		}
	}
}

// opView serves opViewRead / opViewWrite: handle, d0, d1 [, data].  The
// server walks the registered pattern over [d0, d1), keeps the pieces
// its stripe owns, and moves them against its local backend in data
// order — one vectored call per request in the common case, flushed in
// bounded batches so a hostile many-tiny-runs view cannot force an
// oversized segment list.
func (st *connState) opView(payload []byte, write bool) ([]byte, error) {
	h, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	d0, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	d1, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if d0 < 0 || d1 < d0 || d1-d0 > int64(st.srv.cfg.MaxFrame) {
		return nil, fmt.Errorf("%w: view range [%d,%d)", errBadRequest, d0, d1)
	}
	v, ok := st.views[uint64(h)]
	if !ok {
		st.srv.stats.staleHandles.Add(1)
		st.srv.cfg.Tracer.Instant(trace.PhaseServerViewStale, h, 0, "")
		return nil, fmt.Errorf("view handle %d: %w", h, errStale)
	}
	cfg := &st.srv.cfg

	// Allocation pass: this stripe's share of the range.
	var total int64
	err = walkView(v.t, v.disp, cfg.Geom, d0, d1, func(stripe int, _, _, n int64) error {
		if stripe == cfg.Index {
			total += n
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var data []byte
	ph := trace.PhaseServerViewRead
	if write {
		if int64(len(payload)) != total {
			return nil, fmt.Errorf("%w: view write carries %d bytes, stripe owns %d of [%d,%d)", errBadRequest, len(payload), total, d0, d1)
		}
		data = payload
		ph = trace.PhaseServerViewWrite
	} else {
		st.resp = grow(st.resp[:0], total)
		data = st.resp
	}
	sp := cfg.Tracer.BeginIO(ph, d0, total)
	defer sp.End()

	// Transfer pass: gather the owned pieces into bounded vectored
	// batches against the local store.
	const flushAt = 1024
	st.segs = st.segs[:0]
	var pos int64
	flush := func() error {
		if len(st.segs) == 0 {
			return nil
		}
		var err error
		if write {
			err = storage.WriteAtv(cfg.Backend, st.segs)
		} else {
			err = storage.ReadAtv(cfg.Backend, st.segs)
		}
		st.segs = st.segs[:0]
		return err
	}
	err = walkView(v.t, v.disp, cfg.Geom, d0, d1, func(stripe int, localOff, _, n int64) error {
		if stripe != cfg.Index {
			return nil
		}
		st.segs = append(st.segs, storage.Segment{Off: localOff, Buf: data[pos : pos+n]})
		pos += n
		if len(st.segs) >= flushAt {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		return nil, err
	}
	if write {
		st.srv.stats.viewWrites.Add(1)
		st.srv.stats.bytesWritten.Add(total)
		return nil, nil
	}
	st.srv.stats.viewReads.Add(1)
	st.srv.stats.bytesRead.Add(total)
	return st.resp, nil
}

// grow returns buf extended to n bytes, reallocating only when the
// capacity is short.
func grow(buf []byte, n int64) []byte {
	if int64(cap(buf)) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}
