package ioserver

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/datatype"
	"repro/internal/fotf"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// startServers launches n in-process servers over Mem stripes of one
// geometry and returns the aggregate client plus the servers.  Cleanup
// closes everything and checks for goroutine leaks.
func startServers(t *testing.T, unit int64, n int, tweak func(*Config)) (*Striped, []*Server) {
	t.Helper()
	check := testutil.LeakCheck(t)
	geom := storage.StripeGeom{Unit: unit, Count: n}
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := Config{Backend: storage.NewMem(), Geom: geom, Index: i}
		if tweak != nil {
			tweak(&cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		servers[i] = srv
		go srv.Serve(ln)
	}
	agg, err := NewStriped(unit, addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agg.Close()
		for _, srv := range servers {
			srv.Close()
		}
		check()
	})
	return agg, servers
}

// TestRemoteBackendOracle drives the remote aggregate and a flat Mem
// with the same random operation stream and requires identical results.
func TestRemoteBackendOracle(t *testing.T) {
	for _, n := range []int{1, 3} {
		t.Run(fmt.Sprintf("servers=%d", n), func(t *testing.T) {
			agg, _ := startServers(t, 16, n, nil)
			ref := storage.NewMem()
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 200; i++ {
				off := rng.Int63n(2000)
				ln := rng.Int63n(300)
				buf := make([]byte, ln)
				switch rng.Intn(4) {
				case 0:
					rng.Read(buf)
					if _, err := agg.WriteAt(buf, off); err != nil {
						t.Fatal(err)
					}
					if _, err := ref.WriteAt(buf, off); err != nil {
						t.Fatal(err)
					}
				case 1:
					got, want := make([]byte, ln), make([]byte, ln)
					gn, gerr := agg.ReadAt(got, off)
					wn, werr := ref.ReadAt(want, off)
					if gn != wn || (gerr == nil) != (werr == nil) {
						t.Fatalf("op %d: ReadAt(%d, %d) = (%d, %v), want (%d, %v)", i, off, ln, gn, gerr, wn, werr)
					}
					if !bytes.Equal(got[:gn], want[:wn]) {
						t.Fatalf("op %d: ReadAt(%d, %d) data mismatch", i, off, ln)
					}
				case 2:
					// Vectored write+read of a few scattered pieces.
					var wsegs, rsegs, refw, refr []storage.Segment
					var rgot, rwant []byte
					for j := 0; j < 1+rng.Intn(5); j++ {
						o := rng.Int63n(2000)
						l := rng.Int63n(60)
						b := make([]byte, l)
						rng.Read(b)
						wsegs = append(wsegs, storage.Segment{Off: o, Buf: b})
						refw = append(refw, storage.Segment{Off: o, Buf: b})
						g, w := make([]byte, l), make([]byte, l)
						rsegs = append(rsegs, storage.Segment{Off: o, Buf: g})
						refr = append(refr, storage.Segment{Off: o, Buf: w})
						rgot, rwant = append(rgot, g...), append(rwant, w...)
					}
					if err := agg.WriteAtv(wsegs); err != nil {
						t.Fatal(err)
					}
					if err := ref.WriteAtv(refw); err != nil {
						t.Fatal(err)
					}
					if err := agg.ReadAtv(rsegs); err != nil {
						t.Fatal(err)
					}
					if err := ref.ReadAtv(refr); err != nil {
						t.Fatal(err)
					}
					for j := range rsegs {
						if !bytes.Equal(rsegs[j].Buf, refr[j].Buf) {
							t.Fatalf("op %d: vectored read piece %d mismatch", i, j)
						}
					}
				case 3:
					if agg.Size() != ref.Size() {
						t.Fatalf("op %d: size %d, want %d", i, agg.Size(), ref.Size())
					}
				}
			}
			if err := agg.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := agg.Truncate(100); err != nil {
				t.Fatal(err)
			}
			if err := ref.Truncate(100); err != nil {
				t.Fatal(err)
			}
			if agg.Size() != ref.Size() {
				t.Fatalf("post-truncate size %d, want %d", agg.Size(), ref.Size())
			}
		})
	}
}

// viewType builds the nc test pattern: pick bytes of every vector
// block.
func viewType(t *testing.T, blocklen, stride, count int64) *datatype.Type {
	t.Helper()
	v, err := datatype.Vector(count, blocklen, stride, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestViewRoundTrip writes and reads through registered views on 3
// servers and checks every byte against a flat oracle built with fotf.
func TestViewRoundTrip(t *testing.T) {
	agg, servers := startServers(t, 8, 3, nil)
	ft := viewType(t, 3, 7, 5) // 15 data bytes per 35-byte instance
	const disp = 5

	h, err := agg.RegisterView(disp, ft)
	if err != nil {
		t.Fatal(err)
	}

	// Write data range [d0, d1) with a recognizable pattern.
	const d0, d1 = 4, 160
	data := make([]byte, d1-d0)
	for i := range data {
		data[i] = byte(i*13 + 1)
	}
	if err := agg.ViewWrite(h, data, d0); err != nil {
		t.Fatal(err)
	}

	// Oracle: unpack the same data into a flat file image via fotf.
	flat := make([]byte, 1024)
	fotf.Runs(ft, d0, d1, func(bufOff, dataOff, runLen, stride, n int64) {
		for i := int64(0); i < n; i++ {
			copy(flat[disp+bufOff+i*stride:], data[dataOff+i*runLen-d0:dataOff+(i+1)*runLen-d0])
		}
	})
	got := make([]byte, len(flat))
	if _, err := agg.ReadAt(got[:agg.Size()], 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, flat) {
		t.Fatal("flat image after view write differs from fotf oracle")
	}

	// Read back through the view.
	back := make([]byte, d1-d0)
	if err := agg.ViewRead(h, back, d0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("view read-back differs from written data")
	}

	// A sub-range, not aligned to the write.
	sub := make([]byte, 31)
	if err := agg.ViewRead(h, sub, d0+9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sub, data[9:9+31]) {
		t.Fatal("view sub-range read differs")
	}

	st, err := agg.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ViewRegistrations == 0 || st.ViewReads == 0 || st.ViewWrites == 0 {
		t.Fatalf("missing view activity in server stats: %+v", st)
	}
	_ = servers
}

// TestViewCacheHitAndStale exercises the per-connection LRU: a capacity
// of one makes alternating views evict each other, so the client must
// transparently re-register; registering an identical view again is a
// cache hit.
func TestViewCacheHitAndStale(t *testing.T) {
	agg, servers := startServers(t, 8, 1, func(cfg *Config) { cfg.ViewCache = 1 })
	ftA := viewType(t, 2, 6, 4)
	ftB := viewType(t, 3, 5, 4)

	hA, err := agg.RegisterView(0, ftA)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := agg.RegisterView(0, ftB) // evicts A server-side
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i + 1)
	}
	// A's handle is stale now; the client re-registers under the hood
	// (evicting B in turn).
	if err := agg.ViewWrite(hA, data, 0); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 16)
	if err := agg.ViewRead(hA, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("read-back through re-registered view differs")
	}
	// B is stale now; a read through it must also self-repair (the
	// bytes it sees are whatever A's write left, only the mechanics are
	// under test).
	if err := agg.ViewRead(hB, make([]byte, 12), 0); err != nil {
		t.Fatal(err)
	}

	st := servers[0].Stats()
	if st.StaleHandles == 0 {
		t.Fatalf("expected stale-handle repairs, got stats %+v", st)
	}

	// Re-registering the same encoding on the same connection — what a
	// rank does when it sets the same fileview again — is a cache hit:
	// ftB is resident after its stale repair, and a fresh RegisterView
	// builds a new encoding of the identical tree.
	if _, err := agg.RegisterView(0, ftB); err != nil {
		t.Fatal(err)
	}
	if st := servers[0].Stats(); st.ViewCacheHits == 0 {
		t.Fatalf("expected a view-cache hit, got stats %+v", st)
	}
}

// flaky fails every operation with a transient error until armed
// count runs out, then behaves like its inner Mem.
type flaky struct {
	*storage.Mem
	mu   sync.Mutex
	fail int
}

func (f *flaky) trip() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail > 0 {
		f.fail--
		return fmt.Errorf("flaky: injected: %w", storage.ErrTransient)
	}
	return nil
}

func (f *flaky) ReadAt(p []byte, off int64) (int, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Mem.ReadAt(p, off)
}

func (f *flaky) WriteAt(p []byte, off int64) (int, error) {
	if err := f.trip(); err != nil {
		return 0, err
	}
	return f.Mem.WriteAt(p, off)
}

// permBackend fails every write permanently.
type permBackend struct{ *storage.Mem }

func (p *permBackend) WriteAt(b []byte, off int64) (int, error) {
	return 0, fmt.Errorf("perm: media gone: %w", storage.ErrPermanent)
}

// TestErrorTaxonomyAcrossWire checks that the storage sentinels survive
// the protocol: a server-side transient is transient client-side (and a
// client-side Resilient rides it out), a permanent is permanent, and
// errors.Is answers identically on both sides.
func TestErrorTaxonomyAcrossWire(t *testing.T) {
	fl := &flaky{Mem: storage.NewMem(), fail: 1}
	agg, _ := startServers(t, 8, 1, func(cfg *Config) { cfg.Backend = fl })

	// Bare client: the first write surfaces the transient as-is.
	_, err := agg.WriteAt([]byte("abc"), 0)
	if err == nil {
		t.Fatal("expected injected transient")
	}
	if !errors.Is(err, storage.ErrTransient) || !storage.IsTransient(err) || storage.IsPermanent(err) {
		t.Fatalf("transient did not survive the wire: %v", err)
	}

	// Resilient over the remote aggregate: the retry rides it out.
	fl.mu.Lock()
	fl.fail = 2
	fl.mu.Unlock()
	res := storage.NewResilient(agg, storage.ResilientConfig{})
	if _, err := res.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatalf("resilient did not ride out remote transients: %v", err)
	}
	got := make([]byte, 3)
	if err := storage.ReadFull(res, got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("read back %q", got)
	}

	// Permanent failures stay permanent (and are not retried).
	aggP, _ := startServers(t, 8, 1, func(cfg *Config) { cfg.Backend = &permBackend{storage.NewMem()} })
	resP := storage.NewResilient(aggP, storage.ResilientConfig{})
	_, err = resP.WriteAt([]byte("abc"), 0)
	if err == nil {
		t.Fatal("expected permanent error")
	}
	if !errors.Is(err, storage.ErrPermanent) || storage.IsTransient(err) || !storage.IsPermanent(err) {
		t.Fatalf("permanent did not survive the wire: %v", err)
	}
}

// TestClientReconnect kills the connection under the client and checks
// that the failed operation is transient and the next one heals,
// including re-registration of views.
func TestClientReconnect(t *testing.T) {
	agg, _ := startServers(t, 8, 1, nil)
	h, err := agg.RegisterView(0, viewType(t, 2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := agg.ViewWrite(h, data, 0); err != nil {
		t.Fatal(err)
	}

	// Sever the connection from the client side; the next op redials.
	agg.Clients()[0].Close()
	back := make([]byte, len(data))
	if err := agg.ViewRead(h, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("read-back after reconnect differs")
	}
}

// TestListChunking checks that a long offset list costs
// ceil(n/MaxListRuns) round-trips while the same access through a view
// costs a constant number.
func TestListChunking(t *testing.T) {
	agg, _ := startServers(t, 1<<20, 1, nil) // one stripe: all runs on one server
	const runs = 3 * MaxListRuns
	segs := make([]storage.Segment, runs)
	for i := range segs {
		segs[i] = storage.Segment{Off: int64(i * 8), Buf: []byte{byte(i), byte(i >> 8)}}
	}
	before := agg.Rounds()
	if err := agg.WriteAtv(segs); err != nil {
		t.Fatal(err)
	}
	listRounds := agg.Rounds() - before
	if want := int64(3); listRounds != want {
		t.Fatalf("offset-list write cost %d round-trips, want %d", listRounds, want)
	}

	ft := viewType(t, 2, 8, runs)
	h, err := agg.RegisterView(0, ft)
	if err != nil {
		t.Fatal(err)
	}
	before = agg.Rounds()
	data := make([]byte, 2*runs)
	if err := agg.ViewRead(h, data, 0); err != nil {
		t.Fatal(err)
	}
	if viewRounds := agg.Rounds() - before; viewRounds != 1 {
		t.Fatalf("view read cost %d round-trips, want 1", viewRounds)
	}
	for i := 0; i < runs; i++ {
		if data[2*i] != byte(i) || data[2*i+1] != byte(i>>8) {
			t.Fatalf("run %d read back %v", i, data[2*i:2*i+2])
		}
	}
}
