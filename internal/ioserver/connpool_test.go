package ioserver

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/testutil"
)

// poolTier starts n in-process servers and mounts them with the given
// per-server connection pool size.
func poolTier(t *testing.T, unit int64, n, conns int) (*Striped, func()) {
	t.Helper()
	geom := storage.StripeGeom{Unit: unit, Count: n}
	addrs := make([]string, n)
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		srv, err := New(Config{Backend: storage.NewMem(), Geom: geom, Index: i})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		servers[i] = srv
		go srv.Serve(ln)
	}
	agg, err := NewStriped(unit, addrs, ClientOptions{Conns: conns})
	if err != nil {
		t.Fatal(err)
	}
	return agg, func() {
		agg.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}
}

// TestConnPoolSpreadsRounds is the convoy fix: with Conns > 1,
// concurrent round-trips to one server are dealt across independent
// connections instead of serializing on one client mutex.
func TestConnPoolSpreadsRounds(t *testing.T) {
	defer testutil.LeakCheck(t)()
	agg, stop := poolTier(t, 4096, 1, 3)
	defer stop()

	if got, want := len(agg.Clients()), 1; got != want {
		t.Fatalf("Clients() = %d per-server primaries, want %d", got, want)
	}
	if got, want := len(agg.AllClients()), 3; got != want {
		t.Fatalf("AllClients() = %d pooled connections, want %d", got, want)
	}

	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if _, err := agg.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 1024)
			for i := 0; i < 16; i++ {
				off := int64(((g*16 + i) * 1024) % len(data))
				if _, err := agg.ReadAt(buf, off); err != nil && err != io.EOF {
					t.Errorf("read at %d: %v", off, err)
					return
				}
				if !bytes.Equal(buf, data[off:off+1024]) {
					t.Errorf("read at %d: bytes differ", off)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for i, c := range agg.AllClients() {
		if c.Rounds() == 0 {
			t.Fatalf("pool member %d carried no round-trips; round-robin dealing broken", i)
		}
	}
}

// TestConnPoolByteIdentical: the pooled aggregate must be
// indistinguishable from the single-connection one.
func TestConnPoolByteIdentical(t *testing.T) {
	defer testutil.LeakCheck(t)()
	run := func(conns int) []byte {
		agg, stop := poolTier(t, 64, 2, conns)
		defer stop()
		var segs []storage.Segment
		for i := 0; i < 64; i++ {
			seg := storage.Segment{Off: int64(i * 96), Buf: bytes.Repeat([]byte{byte(i + 1)}, 48)}
			segs = append(segs, seg)
		}
		if err := agg.WriteAtv(segs); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, agg.Size())
		if err := storage.ReadAtv(agg, []storage.Segment{{Off: 0, Buf: out}}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(run(1), run(3)) {
		t.Fatal("pooled tier bytes differ from single-connection tier")
	}
}

// TestConnPoolEpochCommit: staged writes land on whichever member the
// round-robin picked; seal fans out to every member (zero tallies
// included) and the primary's commit applies them all.
func TestConnPoolEpochCommit(t *testing.T) {
	defer testutil.LeakCheck(t)()
	agg, stop := poolTier(t, 4096, 1, 2)
	defer stop()

	base := bytes.Repeat([]byte{0xAA}, 8192)
	if _, err := agg.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}

	agg.EpochBegin(11)
	want := append([]byte(nil), base...)
	for i := 0; i < 8; i++ {
		chunk := bytes.Repeat([]byte{byte(0xB0 + i)}, 512)
		off := int64(i * 1024)
		copy(want[off:], chunk)
		if _, err := agg.WriteAt(chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	// Staged writes spread across both members.
	staged := 0
	for _, c := range agg.AllClients() {
		if c.Rounds() > 0 {
			staged++
		}
	}
	if staged < 2 {
		t.Fatalf("staging used %d pool members, want both", staged)
	}
	// Invisible before commit.
	got := make([]byte, len(base))
	if _, err := agg.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("staged writes visible before commit")
	}
	if err := agg.EpochSeal(11); err != nil {
		t.Fatal(err)
	}
	if err := agg.EpochCommit(11); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("committed bytes differ: multi-connection staging lost data")
	}
}

// TestConnPoolDefaultSingle: Conns <= 0 keeps the old one-connection
// behaviour.
func TestConnPoolDefaultSingle(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for _, conns := range []int{0, -1, 1} {
		agg, stop := poolTier(t, 64, 2, conns)
		if got := len(agg.AllClients()); got != 2 {
			stop()
			t.Fatalf("Conns=%d: %d connections, want 2 (one per server)", conns, got)
		}
		stop()
	}
}
