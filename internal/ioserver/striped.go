package ioserver

import (
	"fmt"
	"sync"

	"repro/internal/datatype"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Striped aggregates one Client per I/O server into the storage.Backend
// the ranks mount: the network-tier generalization of storage.Striped.
// Scalar and metadata operations reuse the in-process Striped logic
// over the clients; vectored batches fan out concurrently (one offset
// list per server); registered views go through storage.ViewBackend, so
// core's sparse direct path sends constant-size requests instead of
// offset lists and the servers evaluate the noncontiguous pattern
// against their own stripes.
// Each server is reached through a clientPool of ClientOptions.Conns
// connections (connpool.go); stateless operations are dealt round-robin
// so concurrent sessions sharing this backend do not convoy on one
// serialized dial.
type Striped struct {
	pools []*clientPool
	geom  storage.StripeGeom
	local *storage.Striped // scalar/metadata ops over the pools

	mu     sync.Mutex
	views  map[storage.ViewHandle]*aggView
	nextID storage.ViewHandle
}

// aggView is one registered view: the shared wire form plus the decoded
// tree for the client-side partition walk.
type aggView struct {
	v *View
	t *datatype.Type
}

// NewStriped mounts the servers at addrs as one striped backend with
// the given stripe unit.  Server i must be configured with
// {Geom: {unit, len(addrs)}, Index: i} — the layouts have to agree.
func NewStriped(unit int64, addrs []string, opts ClientOptions) (*Striped, error) {
	g := storage.StripeGeom{Unit: unit, Count: len(addrs)}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	pools := make([]*clientPool, len(addrs))
	backends := make([]storage.Backend, len(addrs))
	for i, a := range addrs {
		pools[i] = newClientPool(a, opts.Conns, opts)
		backends[i] = pools[i]
	}
	local, err := storage.NewStriped(unit, backends...)
	if err != nil {
		return nil, err
	}
	return &Striped{
		pools: pools,
		geom:  g,
		local: local,
		views: make(map[storage.ViewHandle]*aggView),
	}, nil
}

// Geom reports the striping layout.
func (s *Striped) Geom() storage.StripeGeom { return s.geom }

// Clients exposes one client per server (each pool's primary), for
// stats and tests.
func (s *Striped) Clients() []*Client {
	out := make([]*Client, len(s.pools))
	for i, p := range s.pools {
		out[i] = p.primary()
	}
	return out
}

// AllClients exposes every pooled connection of every server.
func (s *Striped) AllClients() []*Client {
	var out []*Client
	for _, p := range s.pools {
		out = append(out, p.members...)
	}
	return out
}

// Rounds sums the request round-trips of every pooled connection.
func (s *Striped) Rounds() int64 {
	var n int64
	for _, p := range s.pools {
		n += p.rounds()
	}
	return n
}

// ServerStats aggregates the request counters of every server (the
// counters are server-global, so one connection per server is asked).
func (s *Striped) ServerStats() (ServerStats, error) {
	var total ServerStats
	for _, p := range s.pools {
		st, err := p.primary().ServerStats()
		if err != nil {
			return total, err
		}
		total.add(st)
	}
	return total, nil
}

// Metrics fetches every server's metrics snapshot in-band and merges
// them into one.  Unreachable servers are skipped (a crashed server's
// numbers live on in the launcher's last-good scrape, not here); an
// error is reported only when no server answered.
func (s *Striped) Metrics() (*obs.Snapshot, error) {
	snaps := make([]*obs.Snapshot, len(s.pools))
	var firstErr error
	var mu sync.Mutex
	s.fanOut(len(s.pools),
		func(int) bool { return false },
		func(i int) error {
			snap, err := s.pools[i].primary().Metrics()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return nil // partial aggregation: keep the others
			}
			snaps[i] = snap
			return nil
		})
	merged := obs.Merge(snaps...)
	if merged.Procs == 0 && firstErr != nil {
		return nil, firstErr
	}
	return merged, nil
}

// Close tears down every pooled connection.
func (s *Striped) Close() error {
	var first error
	for _, p := range s.pools {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Scalar Backend operations delegate to the in-process Striped over the
// clients: correct, and cheap enough for the metadata path.

func (s *Striped) ReadAt(p []byte, off int64) (int, error)  { return s.local.ReadAt(p, off) }
func (s *Striped) WriteAt(p []byte, off int64) (int, error) { return s.local.WriteAt(p, off) }
func (s *Striped) Size() int64                              { return s.local.Size() }
func (s *Striped) Truncate(n int64) error                   { return s.local.Truncate(n) }
func (s *Striped) Sync() error                              { return s.local.Sync() }

// fanOut runs fn for every server with a non-empty argument,
// concurrently, and reports the first failure.
func (s *Striped) fanOut(n int, skip func(i int) bool, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if skip(i) {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadAtv implements storage.Vectored: the global batch is regrouped
// per server with the shared stripe math and the per-server offset
// lists are issued concurrently.
func (s *Striped) ReadAtv(segs []storage.Segment) error {
	bySrv, err := storage.SplitSegs(s.geom, segs)
	if err != nil {
		return err
	}
	return s.fanOut(len(s.pools),
		func(i int) bool { return len(bySrv[i]) == 0 },
		func(i int) error { return s.pools[i].ReadAtv(bySrv[i]) })
}

// WriteAtv implements storage.Vectored, fanned out like ReadAtv.
func (s *Striped) WriteAtv(segs []storage.Segment) error {
	bySrv, err := storage.SplitSegs(s.geom, segs)
	if err != nil {
		return err
	}
	return s.fanOut(len(s.pools),
		func(i int) bool { return len(bySrv[i]) == 0 },
		func(i int) error { return s.pools[i].WriteAtv(bySrv[i]) })
}

// SupportsViews implements storage.ViewBackend.
func (s *Striped) SupportsViews() bool { return true }

// RegisterView implements storage.ViewBackend: the filetype is encoded
// once and registered eagerly with every server, so a bad view fails
// SetView rather than the first access, and the servers' caches are
// primed before the access stream starts.
func (s *Striped) RegisterView(disp int64, ftype *datatype.Type) (storage.ViewHandle, error) {
	if disp < 0 {
		return 0, fmt.Errorf("ioserver: negative displacement %d: %w", disp, storage.ErrPermanent)
	}
	av := &aggView{v: &View{Disp: disp, Enc: datatype.Encode(ftype)}, t: ftype}
	err := s.fanOut(len(s.pools),
		func(int) bool { return false },
		func(i int) error {
			// Prime every pooled connection: any member may later carry
			// a view request for this handle.
			for _, c := range s.pools[i].members {
				if err := c.RegisterEager(av.v); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.views[s.nextID] = av
	return s.nextID, nil
}

// lookup resolves an aggregate view handle.
func (s *Striped) lookup(h storage.ViewHandle) (*aggView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	av, ok := s.views[h]
	if !ok {
		return nil, fmt.Errorf("ioserver: unknown view handle %d: %w", h, storage.ErrPermanent)
	}
	return av, nil
}

// ViewRead implements storage.ViewBackend: one constant-size request
// per owning server, issued concurrently; the responses are per-server
// byte streams in data order, scattered into p by re-running the same
// partition walk the servers ran.
func (s *Striped) ViewRead(h storage.ViewHandle, p []byte, d0 int64) error {
	av, err := s.lookup(h)
	if err != nil {
		return err
	}
	d1 := d0 + int64(len(p))
	lens, err := stripeLens(av.t, av.v.Disp, s.geom, d0, d1)
	if err != nil {
		return err
	}
	resps := make([][]byte, len(s.pools))
	err = s.fanOut(len(s.pools),
		func(i int) bool { return lens[i] == 0 },
		func(i int) error {
			c := s.pools[i].pick()
			resp, err := c.ViewReadRange(av.v, d0, d1)
			if err != nil {
				return err
			}
			if int64(len(resp)) != lens[i] {
				return fmt.Errorf("ioserver %s: view read returned %d bytes, stripe owns %d: %w",
					c.Addr(), len(resp), lens[i], storage.ErrPermanent)
			}
			resps[i] = resp
			return nil
		})
	if err != nil {
		return err
	}
	pos := make([]int64, len(s.pools))
	return walkView(av.t, av.v.Disp, s.geom, d0, d1, func(stripe int, _, dataOff, n int64) error {
		copy(p[dataOff-d0:dataOff-d0+n], resps[stripe][pos[stripe]:])
		pos[stripe] += n
		return nil
	})
}

// ViewWrite implements storage.ViewBackend: p is gathered into one
// data-order byte stream per owning server, shipped concurrently.
func (s *Striped) ViewWrite(h storage.ViewHandle, p []byte, d0 int64) error {
	av, err := s.lookup(h)
	if err != nil {
		return err
	}
	d1 := d0 + int64(len(p))
	lens, err := stripeLens(av.t, av.v.Disp, s.geom, d0, d1)
	if err != nil {
		return err
	}
	outs := make([][]byte, len(s.pools))
	for i, n := range lens {
		if n > 0 {
			outs[i] = make([]byte, 0, n)
		}
	}
	err = walkView(av.t, av.v.Disp, s.geom, d0, d1, func(stripe int, _, dataOff, n int64) error {
		outs[stripe] = append(outs[stripe], p[dataOff-d0:dataOff-d0+n]...)
		return nil
	})
	if err != nil {
		return err
	}
	return s.fanOut(len(s.pools),
		func(i int) bool { return lens[i] == 0 },
		func(i int) error { return s.pools[i].pick().ViewWriteRange(av.v, d0, d1, outs[i]) })
}

// Epoch commit protocol: the aggregate implements storage.EpochBackend
// by fanning out to every server's client.  Begin/End are local
// bookkeeping (idempotent, every rank of a shared world calls them);
// Seal is every rank's pre-commit liveness check; Commit — issued by
// exactly one rank — applies the epoch on every server, and a commit
// against a restarted server surfaces storage.ErrEpochRetry for the
// driver's re-seal loop.

// SupportsEpochs implements storage.EpochBackend.
func (s *Striped) SupportsEpochs() bool { return true }

// EpochBegin implements storage.EpochBackend.  Every pooled connection
// enters staging mode: round-robin dealing may stage any write on any
// member.
func (s *Striped) EpochBegin(id uint64) {
	for _, p := range s.pools {
		for _, c := range p.members {
			c.BeginEpoch(id)
		}
	}
}

// EpochSeal implements storage.EpochBackend: every pooled connection
// must confirm the server holds exactly what that connection staged
// (the server tallies per connection, so a member that staged nothing
// seals a zero tally).
func (s *Striped) EpochSeal(id uint64) error {
	return s.fanOut(len(s.pools),
		func(int) bool { return false },
		func(i int) error {
			for _, c := range s.pools[i].members {
				if err := c.SealEpoch(id); err != nil {
					return err
				}
			}
			return nil
		})
}

// EpochCommit implements storage.EpochBackend.  One member per server —
// the primary — issues the commit, which applies the segments staged by
// every connection; the other members just leave staging mode.  Commit
// is idempotent per server, so a partial fan-out failure retried by the
// driver converges: already-committed servers acknowledge, the rest
// apply.
func (s *Striped) EpochCommit(id uint64) error {
	return s.fanOut(len(s.pools),
		func(int) bool { return false },
		func(i int) error {
			if err := s.pools[i].primary().CommitEpoch(id); err != nil {
				return err
			}
			for _, c := range s.pools[i].members[1:] {
				c.EndEpoch(id)
			}
			return nil
		})
}

// EpochAbort implements storage.EpochBackend: the primary discards the
// server-side staged state, the other members drop their stage logs
// locally.
func (s *Striped) EpochAbort(id uint64) error {
	return s.fanOut(len(s.pools),
		func(int) bool { return false },
		func(i int) error {
			err := s.pools[i].primary().AbortEpoch(id)
			for _, c := range s.pools[i].members[1:] {
				c.EndEpoch(id)
			}
			return err
		})
}

// EpochEnd implements storage.EpochBackend.
func (s *Striped) EpochEnd(id uint64) {
	for _, p := range s.pools {
		for _, c := range p.members {
			c.EndEpoch(id)
		}
	}
}
