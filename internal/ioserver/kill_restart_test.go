package ioserver

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Kill-and-restart acceptance harness: SIGKILL a server mid collective
// write storm, let supervision restart it on the inherited listener,
// and require every round to still commit; then restart the whole
// server tier over the persisted stripes and journals and byte-verify
// the file against a local oracle that ran the identical storm.  The
// servers are real processes (this test binary re-execed, see
// TestMain), so the kill exercises true crash recovery: flock release,
// journal scan, uncommitted-epoch discard, client reconnect and
// stage-log replay, seal/commit retry.

// TestMain dispatches the re-exec server role of the kill-restart
// harness before the normal test run.
func TestMain(m *testing.M) {
	if os.Getenv("IOSERVER_HELPER_ROLE") == "server" {
		serverHelperMain()
		return
	}
	os.Exit(m.Run())
}

// helperEnvInt reads one integer config knob of the server role.
func helperEnvInt(key string) int {
	n, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: bad %s: %v\n", key, err)
		os.Exit(1)
	}
	return n
}

// serverHelperMain is one I/O-server process of the harness: recover
// the journal next to the stripe file, serve on the inherited listener,
// seal and exit on SIGINT/SIGTERM.
func serverHelperMain() {
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	unit := int64(helperEnvInt("IOSERVER_HELPER_UNIT"))
	count := helperEnvInt("IOSERVER_HELPER_COUNT")
	index := helperEnvInt("IOSERVER_HELPER_INDEX")
	path := os.Getenv("IOSERVER_HELPER_FILE")

	stripe, err := storage.OpenFile(path)
	if err != nil {
		fatal(err)
	}
	jb, err := storage.OpenFile(path + ".journal")
	if err != nil {
		fatal(err)
	}
	j, info, err := RecoverJournal(jb, stripe)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("server %d up: %s\n", index, info)
	srv, err := New(Config{
		Backend: stripe,
		Geom:    storage.StripeGeom{Unit: unit, Count: count},
		Index:   index,
		Journal: j,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := transport.ListenerFromFD(transport.RendezvousFD)
	if err != nil {
		fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	os.Exit(0)
}

func TestKillRestartCrashConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills server processes")
	}
	for _, nSrv := range []int{1, 3} {
		for _, eng := range []core.Engine{core.ListBased, core.Listless} {
			t.Run(fmt.Sprintf("%dsrv-%s", nSrv, eng), func(t *testing.T) {
				killRestartRun(t, nSrv, eng)
			})
		}
	}
}

const (
	krRanks      = 4
	krUnit       = 256
	krBlockcount = 16
	krBlocklen   = 8
	krRounds     = 24
	krData       = int64(krBlockcount * krBlocklen)
)

// krKillRounds are the storm rounds after which a server is killed.
var krKillRounds = map[int]bool{8: true, 16: true}

// roundPattern is rank r's payload for storm round n — every (rank,
// round) pair distinct, so a stale committed epoch cannot masquerade as
// the final one.
func roundPattern(rank, round int, n int64) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(rank*31 + round*7 + i + 1)
	}
	return p
}

// interleavedFiletype is rank p's view: blockcount blocks of blocklen
// bytes at stride P*blocklen, displaced by p*blocklen; the union over
// ranks covers the file contiguously.
func interleavedFiletype(p, P int, blockcount, blocklen int64) (*datatype.Type, error) {
	vec, err := datatype.Hvector(blockcount, blocklen, int64(P)*blocklen, datatype.Byte)
	if err != nil {
		return nil, err
	}
	return datatype.Struct(
		[]int64{1, 1, 1},
		[]int64{0, int64(p) * blocklen, blockcount * int64(P) * blocklen},
		[]*datatype.Type{datatype.LBMarker, vec, datatype.UBMarker},
	)
}

// runStorm drives krRounds collective writes of the interleaved
// noncontiguous pattern over be from an in-process world.  roundCh, if
// non-nil, receives each completed round number (from rank 0's view).
func runStorm(t *testing.T, eng core.Engine, be storage.Backend, roundCh chan<- int) {
	t.Helper()
	sh := core.NewShared(be)
	var committed int64
	_, err := mpi.RunWithOptions(krRanks, mpi.RunOptions{StallTimeout: 60 * time.Second}, func(p *mpi.Proc) {
		f, err := core.Open(p, sh, core.Options{Engine: eng, CollBufSize: 128})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ft, err := interleavedFiletype(p.Rank(), krRanks, krBlockcount, krBlocklen)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		for r := 0; r < krRounds; r++ {
			if _, err := f.WriteAtAll(0, krData, datatype.Byte, roundPattern(p.Rank(), r, krData)); err != nil {
				panic(fmt.Sprintf("rank %d round %d: %v", p.Rank(), r, err))
			}
			if p.Rank() == 0 && roundCh != nil {
				roundCh <- r
			}
		}
		if p.Rank() == 0 {
			committed = f.Stats.EpochsCommitted
		}
	})
	if roundCh != nil {
		close(roundCh)
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := storage.AsEpochBackend(be); ok && committed != krRounds {
		t.Fatalf("epoch protocol inactive: %d epochs committed, want %d", committed, krRounds)
	}
}

// startHelperPool binds nothing itself — the listeners are the caller's
// — and supervises one re-execed server helper per listener.
func startHelperPool(t *testing.T, dir string, nSrv int, lfs []*os.File) *transport.ServerPool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := transport.StartServerPool(transport.ServerPoolOptions{
		Listeners:      lfs,
		MaxRestarts:    5,
		RestartBackoff: 20 * time.Millisecond,
		StartProc: func(idx int, listener *os.File) (*exec.Cmd, error) {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				"IOSERVER_HELPER_ROLE=server",
				fmt.Sprintf("IOSERVER_HELPER_UNIT=%d", krUnit),
				fmt.Sprintf("IOSERVER_HELPER_COUNT=%d", nSrv),
				fmt.Sprintf("IOSERVER_HELPER_INDEX=%d", idx),
				"IOSERVER_HELPER_FILE="+filepath.Join(dir, fmt.Sprintf("stripe%d", idx)),
			)
			cmd.ExtraFiles = []*os.File{listener}
			cmd.Stderr = os.Stderr
			return cmd, cmd.Start()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// mountResilient mounts the servers with a retry budget generous enough
// to ride out a restart (pool backoff 20ms, doubling, vs ~2s of total
// retry window here).
func mountResilient(t *testing.T, addrs []string) (*Striped, storage.Backend) {
	t.Helper()
	agg, err := NewStriped(krUnit, addrs, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := storage.NewResilient(agg, storage.ResilientConfig{
		MaxRetries:  20,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  200 * time.Millisecond,
	})
	return agg, res
}

func flattenRemote(t *testing.T, b storage.Backend) []byte {
	t.Helper()
	buf := make([]byte, b.Size())
	if len(buf) == 0 {
		return buf
	}
	if err := storage.ReadAtv(b, []storage.Segment{{Off: 0, Buf: buf}}); err != nil {
		t.Fatal(err)
	}
	return buf
}

func killRestartRun(t *testing.T, nSrv int, eng core.Engine) {
	dir := t.TempDir()
	addrs := make([]string, nSrv)
	lfs := make([]*os.File, nSrv)
	for i := range lfs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		f, err := ln.(*net.TCPListener).File()
		ln.Close()
		if err != nil {
			t.Fatal(err)
		}
		lfs[i] = f
		defer f.Close()
	}

	// The storm against the supervised server tier, with kills injected
	// at fixed round boundaries (round-robin across servers).
	pool := startHelperPool(t, dir, nSrv, lfs)
	agg, be := mountResilient(t, addrs)
	// Unbuffered: rank 0 blocks until the killer consumed the round
	// marker, so a kill lands before the next round's staging — genuinely
	// mid-storm, never after it.
	roundCh := make(chan int)
	kills := 0
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for r := range roundCh {
			if krKillRounds[r] {
				if err := pool.Kill(kills % nSrv); err != nil {
					t.Errorf("kill after round %d: %v", r, err)
				}
				kills++
			}
		}
	}()
	runStorm(t, eng, be, roundCh)
	<-killerDone
	if err := agg.Close(); err != nil {
		t.Errorf("closing clients: %v", err)
	}
	pool.Stop(true)
	pool.Wait()
	select {
	case err := <-pool.Failures():
		t.Fatalf("server pool failed: %v", err)
	default:
	}
	restarted := 0
	for _, n := range pool.Restarts() {
		restarted += n
	}
	if restarted < kills {
		t.Fatalf("killed %d servers but supervision restarted only %d", kills, restarted)
	}

	// The identical storm against a local Mem backend is the oracle.
	oracle := storage.NewMem()
	runStorm(t, eng, oracle, nil)

	// Restart the world over the persisted stripes and journals and
	// byte-verify every committed epoch survived both the kills and the
	// final shutdown.
	pool2 := startHelperPool(t, dir, nSrv, lfs)
	agg2, be2 := mountResilient(t, addrs)
	got := flattenRemote(t, be2)
	want := oracle.Bytes()
	if !bytes.Equal(got, want) {
		t.Errorf("restarted tier differs from oracle: got %d bytes, want %d", len(got), len(want))
		for i := range want {
			if i < len(got) && got[i] != want[i] {
				t.Fatalf("first difference at offset %d: got %#x want %#x", i, got[i], want[i])
			}
		}
		t.FailNow()
	}
	if err := agg2.Close(); err != nil {
		t.Errorf("closing verification clients: %v", err)
	}
	pool2.Stop(true)
	pool2.Wait()
	select {
	case err := <-pool2.Failures():
		t.Fatalf("verification pool failed: %v", err)
	default:
	}
}
