package ioserver

import (
	"sync/atomic"

	"repro/internal/storage"
)

// Per-server connection pool.  A single Client serializes its
// round-trips behind one mutex — correct, but sessions sharing a
// striped backend convoy on that dial: while one session's window
// read is on the wire, every other session's request to the same
// server waits for the mutex, not the server.  A clientPool keeps
// ClientOptions.Conns independent connections per server and deals
// stateless operations round-robin across them, so concurrent sessions
// overlap their round-trips.
//
// Epoch staging stays correct across members because the server stages
// globally per epoch id while tallying per connection: Begin/Seal/End
// fan out to every member (a member that staged nothing seals a zero
// tally against the server's zero count for that connection), and
// exactly one member — the primary — issues the commit, which applies
// every connection's staged segments at once.
type clientPool struct {
	members []*Client
	next    atomic.Uint64
}

func newClientPool(addr string, conns int, opts ClientOptions) *clientPool {
	if conns <= 0 {
		conns = 1
	}
	p := &clientPool{members: make([]*Client, conns)}
	for i := range p.members {
		p.members[i] = NewClient(addr, opts)
	}
	return p
}

// pick deals the next stateless operation round-robin.
func (p *clientPool) pick() *Client {
	if len(p.members) == 1 {
		return p.members[0]
	}
	return p.members[p.next.Add(1)%uint64(len(p.members))]
}

// primary is the member that owns single-shooter operations (commit,
// server stats).
func (p *clientPool) primary() *Client { return p.members[0] }

func (p *clientPool) rounds() int64 {
	var n int64
	for _, c := range p.members {
		n += c.Rounds()
	}
	return n
}

func (p *clientPool) close() error {
	var first error
	for _, c := range p.members {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// storage.Backend + storage.Vectored over the pool: every operation is
// stateless against the server, so any member serves it.

func (p *clientPool) ReadAt(b []byte, off int64) (int, error)  { return p.pick().ReadAt(b, off) }
func (p *clientPool) WriteAt(b []byte, off int64) (int, error) { return p.pick().WriteAt(b, off) }
func (p *clientPool) Size() int64                              { return p.pick().Size() }
func (p *clientPool) Truncate(n int64) error                   { return p.pick().Truncate(n) }
func (p *clientPool) Sync() error                              { return p.pick().Sync() }
func (p *clientPool) ReadAtv(segs []storage.Segment) error     { return p.pick().ReadAtv(segs) }
func (p *clientPool) WriteAtv(segs []storage.Segment) error    { return p.pick().WriteAtv(segs) }
