package ioserver

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

// memBytes reads a Mem backend's full contents.
func memBytes(t *testing.T, m *storage.Mem) []byte {
	t.Helper()
	return m.Bytes()
}

// TestJournalCrashPoints simulates a server crash at every interesting
// instant of the stage→commit→apply sequence by constructing the
// on-disk journal state that crash would leave, then requires recovery
// to land the stripe in the one correct state: committed epochs
// applied, uncommitted epochs gone, prior contents untouched.
func TestJournalCrashPoints(t *testing.T) {
	prior := []byte("................") // 16 bytes of pre-epoch stripe state
	stageA := []storage.Segment{
		{Off: 0, Buf: []byte("AAAA")},
		{Off: 8, Buf: []byte("BBBB")},
	}
	withA := []byte("AAAA....BBBB....")

	cases := []struct {
		name    string
		journal func(t *testing.T, j *Journal)
		stripe  []byte // stripe contents at crash time
		want    []byte
		applied int
		discard int
		torn    bool
		sealed  bool
	}{
		{
			name:    "crash before any staging",
			journal: func(t *testing.T, j *Journal) {},
			stripe:  prior,
			want:    prior,
		},
		{
			name: "crash between stage and commit",
			journal: func(t *testing.T, j *Journal) {
				for _, s := range stageA {
					if err := j.AppendStage(7, s.Off, s.Buf); err != nil {
						t.Fatal(err)
					}
				}
			},
			stripe:  prior,
			want:    prior, // the epoch never happened
			discard: 1,
		},
		{
			name: "crash after commit record, before apply",
			journal: func(t *testing.T, j *Journal) {
				for _, s := range stageA {
					if err := j.AppendStage(7, s.Off, s.Buf); err != nil {
						t.Fatal(err)
					}
				}
				if err := j.AppendCommit(7); err != nil {
					t.Fatal(err)
				}
			},
			stripe:  prior,
			want:    withA,
			applied: 1,
		},
		{
			name: "crash mid-apply (first segment landed)",
			journal: func(t *testing.T, j *Journal) {
				for _, s := range stageA {
					if err := j.AppendStage(7, s.Off, s.Buf); err != nil {
						t.Fatal(err)
					}
				}
				if err := j.AppendCommit(7); err != nil {
					t.Fatal(err)
				}
			},
			stripe:  []byte("AAAA............"), // partial apply is idempotent to redo
			want:    withA,
			applied: 1,
		},
		{
			name: "committed epoch followed by uncommitted epoch",
			journal: func(t *testing.T, j *Journal) {
				for _, s := range stageA {
					if err := j.AppendStage(7, s.Off, s.Buf); err != nil {
						t.Fatal(err)
					}
				}
				if err := j.AppendCommit(7); err != nil {
					t.Fatal(err)
				}
				if err := j.AppendStage(8, 4, []byte("XXXX")); err != nil {
					t.Fatal(err)
				}
			},
			stripe:  prior,
			want:    withA, // epoch 8 discarded
			applied: 1,
			discard: 1,
		},
		{
			name: "torn tail mid-record",
			journal: func(t *testing.T, j *Journal) {
				for _, s := range stageA {
					if err := j.AppendStage(7, s.Off, s.Buf); err != nil {
						t.Fatal(err)
					}
				}
				if err := j.AppendCommit(7); err != nil {
					t.Fatal(err)
				}
				// A crash mid-append leaves a truncated record: write a
				// valid header with no CRC behind the good records.
				if _, err := j.b.WriteAt([]byte{recStage, 0x09}, j.Len()); err != nil {
					t.Fatal(err)
				}
			},
			stripe:  prior,
			want:    withA,
			applied: 1,
			torn:    true,
		},
		{
			name: "clean shutdown seal",
			journal: func(t *testing.T, j *Journal) {
				if err := j.AppendSeal(); err != nil {
					t.Fatal(err)
				}
			},
			stripe: prior,
			want:   prior,
			sealed: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jb := storage.NewMem()
			tc.journal(t, NewJournal(jb))
			stripe := storage.NewMem()
			if _, err := stripe.WriteAt(tc.stripe, 0); err != nil {
				t.Fatal(err)
			}

			j, info, err := RecoverJournal(jb, stripe)
			if err != nil {
				t.Fatal(err)
			}
			if got := memBytes(t, stripe); !bytes.Equal(got, tc.want) {
				t.Errorf("stripe after recovery = %q, want %q", got, tc.want)
			}
			if info.AppliedEpochs != tc.applied || info.DiscardedEpochs != tc.discard ||
				info.TornTail != tc.torn || info.Sealed != tc.sealed {
				t.Errorf("info = %+v, want applied=%d discarded=%d torn=%t sealed=%t",
					info, tc.applied, tc.discard, tc.torn, tc.sealed)
			}
			if j.Len() != 0 || jb.Size() != 0 {
				t.Errorf("journal not truncated after recovery: len=%d size=%d", j.Len(), jb.Size())
			}

			// A second recovery (crash during the first) is a no-op.
			before := memBytes(t, stripe)
			_, info2, err := RecoverJournal(jb, stripe)
			if err != nil {
				t.Fatal(err)
			}
			if info2.AppliedEpochs != 0 || info2.DiscardedEpochs != 0 {
				t.Errorf("second recovery applied work: %+v", info2)
			}
			if got := memBytes(t, stripe); !bytes.Equal(got, before) {
				t.Error("second recovery changed the stripe")
			}
		})
	}
}

// FuzzJournalRecover feeds arbitrary bytes as journal contents: recovery
// must never panic or error (journal contents can be any garbage after
// a crash), must truncate the journal, and must only ever *extend or
// overwrite* the stripe via committed records — never fail.
func FuzzJournalRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{recSeal, 0, 0, 0, 0})
	f.Add([]byte{recStage, 1, 2, 3, 0xff})
	// A well-formed stage+commit pair, as a valid-prefix seed.
	{
		jb := storage.NewMem()
		j := NewJournal(jb)
		j.AppendStage(3, 0, []byte("data"))
		j.AppendCommit(3)
		f.Add(jb.Bytes())
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		jb := storage.NewMem()
		if _, err := jb.WriteAt(raw, 0); err != nil {
			t.Fatal(err)
		}
		stripe := storage.NewMem()
		j, _, err := RecoverJournal(jb, stripe)
		if err != nil {
			t.Fatalf("recovery failed on arbitrary journal bytes: %v", err)
		}
		if j.Len() != 0 || jb.Size() != 0 {
			t.Fatal("journal not truncated")
		}
		// The recovered journal must be immediately usable.
		if err := j.AppendStage(1, 0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendCommit(1); err != nil {
			t.Fatal(err)
		}
		if _, info, err := RecoverJournal(jb, stripe); err != nil || info.AppliedEpochs != 1 {
			t.Fatalf("post-recovery journal unusable: %v %+v", err, info)
		}
	})
}
