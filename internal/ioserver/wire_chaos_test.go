package ioserver

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Wire-chaos soak: the full collective stack — both engines, epochs on —
// over in-process servers whose client connections suffer seeded frame
// drops, duplicates, header corruption, resets, partitions, and latency
// spikes.  Every fault must surface as a transient (deadline, framing
// error, desync, or seal mismatch), heal through reconnect + stage-log
// replay, and leave the file byte-identical to a fault-free local run.
// WIRE_CHAOS_SOAK extends the default round budget for a longer soak in
// the chaos CI job.

// soakWireChaos returns the seeded injection profile of the soak.  The
// client Timeout below is short so that a dropped request frame costs
// one deadline expiry, not the default 30s.
func soakWireChaos(seed int64) *transport.WireChaosConfig {
	return &transport.WireChaosConfig{
		Seed:         seed,
		PSpike:       0.02,
		SpikeMin:     50 * time.Microsecond,
		SpikeMax:     500 * time.Microsecond,
		PDrop:        0.01,
		PDup:         0.01,
		PCorrupt:     0.01,
		PReset:       0.005,
		PPartition:   0.002,
		PartitionFor: 30 * time.Millisecond,
	}
}

func TestWireChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault-injection soak")
	}
	rounds := 20
	if os.Getenv("WIRE_CHAOS_SOAK") != "" {
		rounds = 200
	}

	const (
		P          = 4
		unit       = 256
		nSrv       = 3
		blockcount = 16
		blocklen   = 8
	)
	d := int64(blockcount * blocklen)

	storm := func(t *testing.T, eng core.Engine, be storage.Backend, rounds int) {
		t.Helper()
		sh := core.NewShared(be)
		_, err := mpi.RunWithOptions(P, mpi.RunOptions{StallTimeout: 120 * time.Second}, func(p *mpi.Proc) {
			f, err := core.Open(p, sh, core.Options{Engine: eng, CollBufSize: 128})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			ft, err := interleavedFiletype(p.Rank(), P, blockcount, blocklen)
			if err != nil {
				panic(err)
			}
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			for r := 0; r < rounds; r++ {
				data := roundPattern(p.Rank(), r, d)
				if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
					panic(fmt.Sprintf("rank %d round %d: %v", p.Rank(), r, err))
				}
				got := make([]byte, d)
				if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
					panic(fmt.Sprintf("rank %d round %d read-back: %v", p.Rank(), r, err))
				}
				if !bytes.Equal(got, data) {
					panic(fmt.Sprintf("rank %d round %d: read-back mismatch", p.Rank(), r))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, eng := range []core.Engine{core.ListBased, core.Listless} {
		t.Run(eng.String(), func(t *testing.T) {
			// Servers over Mem stripes, in-process; chaos lives on the
			// client side of every connection.
			geom := storage.StripeGeom{Unit: unit, Count: nSrv}
			addrs := make([]string, nSrv)
			servers := make([]*Server, nSrv)
			for i := range servers {
				srv, err := New(Config{Backend: storage.NewMem(), Geom: geom, Index: i})
				if err != nil {
					t.Fatal(err)
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				addrs[i] = ln.Addr().String()
				servers[i] = srv
				go srv.Serve(ln)
			}
			defer func() {
				for _, srv := range servers {
					srv.Close()
				}
			}()

			stats := &transport.WireChaosStats{}
			cfg := soakWireChaos(int64(31 + len(addrs)))
			cfg.Stats = stats
			agg, err := NewStriped(unit, addrs, ClientOptions{
				Timeout:   150 * time.Millisecond,
				WireChaos: cfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer agg.Close()
			be := storage.NewResilient(agg, storage.ResilientConfig{
				MaxRetries:  30,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
			})

			storm(t, eng, be, rounds)

			// The same storm against a fault-free local backend is the
			// byte oracle.
			oracle := storage.NewMem()
			storm(t, eng, oracle, rounds)

			got := make([]byte, be.Size())
			if err := storage.ReadAtv(be, []storage.Segment{{Off: 0, Buf: got}}); err != nil {
				t.Fatal(err)
			}
			if want := oracle.Bytes(); !bytes.Equal(got, want) {
				t.Fatalf("chaos run differs from oracle (%d vs %d bytes)", len(got), len(want))
			}
			t.Logf("wire faults injected: %d spikes, %d drops, %d dups, %d corrupts, %d resets, %d partitions",
				stats.Spikes.Load(), stats.Drops.Load(), stats.Dups.Load(),
				stats.Corrupts.Load(), stats.Resets.Load(), stats.Partitions.Load())
			if stats.Total() == 0 {
				t.Error("soak injected no destructive wire faults; raise rounds or probabilities")
			}
		})
	}
}
