package ioserver

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/trace"
)

// Server side of the epoch commit protocol.  Staged writes are journaled
// and parked in memory, invisible to reads; opEpochCommit journals the
// commit decision (the durability point), applies the staged segments to
// the stripe, syncs, and clears.  The protocol tolerates every crash
// instant (journal recovery re-applies or discards) and every duplicate
// (re-staging and re-committing an epoch writes the same bytes to the
// same offsets).
//
// Seal is the liveness check: it echoes the server's incarnation plus
// this connection's staging tally, so a client can detect that a server
// bounced mid-epoch (empty tally where its stage log says otherwise) and
// that the incarnation it sealed against is the one the commit reaches.

// stageEpoch parks segs under epoch, journaling each segment first.  The
// data is copied: request payloads are reused per frame.
func (s *Server) stageEpoch(epoch uint64, segs []storage.Segment) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	var total int
	for _, sg := range segs {
		total += len(sg.Buf)
	}
	buf := make([]byte, 0, total)
	for _, sg := range segs {
		if err := s.journal.AppendStage(epoch, sg.Off, sg.Buf); err != nil {
			return err
		}
		start := len(buf)
		buf = append(buf, sg.Buf...)
		s.staged[epoch] = append(s.staged[epoch], storage.Segment{Off: sg.Off, Buf: buf[start:]})
	}
	s.stats.stagedWrites.Add(1)
	s.stats.bytesWritten.Add(int64(total))
	return nil
}

// commitEpoch makes epoch durable: commit record → journal sync → apply
// → stripe sync → clear.  Exactly one epoch is in flight at a time, so a
// commit also discards any abandoned staged state from earlier epochs,
// which is what lets the journal reset to empty.
func (s *Server) commitEpoch(epoch uint64, incarnation int64) error {
	if incarnation != s.incarnation {
		return fmt.Errorf("ioserver: commit for incarnation %d, server restarted as %d: %w",
			incarnation, s.incarnation, storage.ErrEpochRetry)
	}
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	segs := s.staged[epoch]
	if len(segs) == 0 && epoch == s.lastCommitted {
		return nil // duplicate commit retry: already applied
	}
	var total int64
	for _, sg := range segs {
		total += int64(len(sg.Buf))
	}
	sp := s.cfg.Tracer.BeginIO(trace.PhaseServerCommit, int64(epoch), total)
	defer sp.End()
	if err := s.journal.AppendCommit(epoch); err != nil {
		return err
	}
	if len(segs) > 0 {
		if err := storage.WriteAtv(s.cfg.Backend, segs); err != nil {
			return err
		}
	}
	if err := s.cfg.Backend.Sync(); err != nil {
		return err
	}
	if epoch > s.lastCommitted {
		s.lastCommitted = epoch
	}
	s.staged = make(map[uint64][]storage.Segment)
	s.stats.epochsCommitted.Add(1)
	return s.journal.Reset()
}

// abortEpoch discards epoch's staged state.
func (s *Server) abortEpoch(epoch uint64) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if _, ok := s.staged[epoch]; ok {
		s.stats.epochsAborted.Add(1)
	}
	delete(s.staged, epoch)
	if len(s.staged) == 0 {
		return s.journal.Reset()
	}
	return nil
}

// Incarnation reports the server instance id (changes on restart).
func (s *Server) Incarnation() int64 { return s.incarnation }

// LastCommitted reports the highest epoch committed by this instance.
func (s *Server) LastCommitted() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.lastCommitted
}

// tally records one staged request on this connection.  One epoch is in
// flight per connection at a time, so a new epoch resets the counters.
func (st *connState) tally(epoch uint64, bytes int64) {
	if st.tallyEpoch != epoch {
		st.tallyEpoch, st.tallyCount, st.tallyBytes = epoch, 0, 0
	}
	st.tallyCount++
	st.tallyBytes += bytes
}

// getEpoch decodes and validates a leading epoch id.
func getEpoch(payload []byte) (uint64, []byte, error) {
	e, rest, err := getV(payload)
	if err != nil {
		return 0, nil, err
	}
	if e <= 0 {
		return 0, nil, fmt.Errorf("%w: epoch id %d", errBadRequest, e)
	}
	return uint64(e), rest, nil
}

// opStageWrite: epoch, off, data → — (the staged twin of opWrite).
func (st *connState) opStageWrite(payload []byte) ([]byte, error) {
	epoch, payload, err := getEpoch(payload)
	if err != nil {
		return nil, err
	}
	off, data, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if off < 0 {
		return nil, fmt.Errorf("%w: stage off %d", errBadRequest, off)
	}
	sp := st.srv.cfg.Tracer.BeginIO(trace.PhaseServerStage, off, int64(len(data)))
	defer sp.End()
	if err := st.srv.stageEpoch(epoch, []storage.Segment{{Off: off, Buf: data}}); err != nil {
		return nil, err
	}
	st.tally(epoch, int64(len(data)))
	return nil, nil
}

// opStageWritev: epoch, k, k×(off,n), data → — (staged opWritev).
func (st *connState) opStageWritev(payload []byte) ([]byte, error) {
	epoch, payload, err := getEpoch(payload)
	if err != nil {
		return nil, err
	}
	k, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if k < 0 || k > MaxListRuns {
		return nil, fmt.Errorf("%w: list of %d runs (limit %d)", errBadRequest, k, MaxListRuns)
	}
	st.segs = st.segs[:0]
	var total int64
	offs := make([][2]int64, 0, k)
	for i := int64(0); i < k; i++ {
		var off, n int64
		if off, payload, err = getV(payload); err != nil {
			return nil, err
		}
		if n, payload, err = getV(payload); err != nil {
			return nil, err
		}
		if off < 0 || n < 0 || total+n > int64(st.srv.cfg.MaxFrame) {
			return nil, fmt.Errorf("%w: list entry off %d len %d", errBadRequest, off, n)
		}
		offs = append(offs, [2]int64{off, n})
		total += n
	}
	if int64(len(payload)) != total {
		return nil, fmt.Errorf("%w: stage list names %d bytes, payload carries %d", errBadRequest, total, len(payload))
	}
	sp := st.srv.cfg.Tracer.BeginIO(trace.PhaseServerStage, 0, total)
	defer sp.End()
	var pos int64
	for _, e := range offs {
		st.segs = append(st.segs, storage.Segment{Off: e[0], Buf: payload[pos : pos+e[1]]})
		pos += e[1]
	}
	if err := st.srv.stageEpoch(epoch, st.segs); err != nil {
		return nil, err
	}
	st.tally(epoch, total)
	return nil, nil
}

// opStageViewWrite: epoch, handle, d0, d1, data → — (staged
// opViewWrite): the server walks the registered pattern like opView but
// stages the owned pieces instead of writing them.
func (st *connState) opStageViewWrite(payload []byte) ([]byte, error) {
	epoch, payload, err := getEpoch(payload)
	if err != nil {
		return nil, err
	}
	h, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	d0, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	d1, payload, err := getV(payload)
	if err != nil {
		return nil, err
	}
	if d0 < 0 || d1 < d0 || d1-d0 > int64(st.srv.cfg.MaxFrame) {
		return nil, fmt.Errorf("%w: view range [%d,%d)", errBadRequest, d0, d1)
	}
	v, ok := st.views[uint64(h)]
	if !ok {
		st.srv.stats.staleHandles.Add(1)
		st.srv.cfg.Tracer.Instant(trace.PhaseServerViewStale, h, 0, "")
		return nil, fmt.Errorf("view handle %d: %w", h, errStale)
	}
	cfg := &st.srv.cfg

	var total int64
	err = walkView(v.t, v.disp, cfg.Geom, d0, d1, func(stripe int, _, _, n int64) error {
		if stripe == cfg.Index {
			total += n
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if int64(len(payload)) != total {
		return nil, fmt.Errorf("%w: staged view write carries %d bytes, stripe owns %d of [%d,%d)",
			errBadRequest, len(payload), total, d0, d1)
	}
	sp := cfg.Tracer.BeginIO(trace.PhaseServerStage, d0, total)
	defer sp.End()
	st.segs = st.segs[:0]
	var pos int64
	err = walkView(v.t, v.disp, cfg.Geom, d0, d1, func(stripe int, localOff, _, n int64) error {
		if stripe != cfg.Index {
			return nil
		}
		st.segs = append(st.segs, storage.Segment{Off: localOff, Buf: payload[pos : pos+n]})
		pos += n
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := st.srv.stageEpoch(epoch, st.segs); err != nil {
		return nil, err
	}
	st.tally(epoch, total)
	return nil, nil
}

// opEpochSeal: epoch → incarnation, staged count, staged bytes (this
// connection's tally).
func (st *connState) opEpochSeal(payload []byte) ([]byte, error) {
	epoch, _, err := getEpoch(payload)
	if err != nil {
		return nil, err
	}
	st.srv.stats.epochsSealed.Add(1)
	var count, bytes int64
	if st.tallyEpoch == epoch {
		count, bytes = st.tallyCount, st.tallyBytes
	}
	resp := putV(st.resp[:0], st.srv.incarnation)
	resp = putV(resp, count)
	resp = putV(resp, bytes)
	st.resp = resp
	return resp, nil
}

// opEpochCommit: epoch, incarnation → —.
func (st *connState) opEpochCommit(payload []byte) ([]byte, error) {
	epoch, payload, err := getEpoch(payload)
	if err != nil {
		return nil, err
	}
	inc, _, err := getV(payload)
	if err != nil {
		return nil, err
	}
	return nil, st.srv.commitEpoch(epoch, inc)
}

// opEpochAbort: epoch → —.
func (st *connState) opEpochAbort(payload []byte) ([]byte, error) {
	epoch, _, err := getEpoch(payload)
	if err != nil {
		return nil, err
	}
	return nil, st.srv.abortEpoch(epoch)
}
