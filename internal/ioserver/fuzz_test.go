package ioserver

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/datatype"
	"repro/internal/storage"
	"repro/internal/transport"
)

// FuzzServerRequest throws hostile byte streams at a live server — both
// correctly framed requests with fuzzed payloads (truncated varint
// fields, oversized lists, unknown ops, stale handles, garbage datatype
// trees) and raw unframed garbage.  The server must never panic, never
// allocate beyond its MaxFrame bound (enforced structurally: the run
// uses a 4 KiB frame limit, so an over-allocation shows up as an
// obvious hang/OOM under the fuzzer), answer every well-framed bad
// request with a typed opErr frame, and stay serviceable afterwards.

const fuzzMaxFrame = 4096

// fuzzOps is the tag alphabet the structured phase draws from: every
// real op, both ends of the reserved range, and tags outside it.
var fuzzOps = []int{
	opRead, opWrite, opReadv, opWritev, opSize, opTruncate, opSync,
	opRegister, opViewRead, opViewWrite, opStats, opErr,
	transport.TagServerFirst, transport.TagServerLast, 0, 1, -1, -1000,
}

var fuzzSrv struct {
	once sync.Once
	addr string
}

// fuzzServer starts the shared fuzz target once per process: stripe 0
// of a 2-way layout over a pre-seeded Mem, tiny frame limit, tiny view
// cache (so eviction/stale paths are reachable with few requests).
func fuzzServer(f *testing.F) string {
	f.Helper()
	fuzzSrv.once.Do(func() {
		be := storage.NewMem()
		if _, err := be.WriteAt(make([]byte, 1<<16), 0); err != nil {
			f.Fatal(err)
		}
		srv, err := New(Config{
			Backend:   be,
			Geom:      storage.StripeGeom{Unit: 64, Count: 2},
			Index:     0,
			MaxFrame:  fuzzMaxFrame,
			ViewCache: 2,
		})
		if err != nil {
			f.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv.addr = ln.Addr().String()
		go srv.Serve(ln)
		// The server lives for the whole fuzz process; worker processes
		// each start their own.
	})
	return fuzzSrv.addr
}

// seedReq encodes one op for the structured phase: op selector byte,
// payload length byte, payload.
func seedReq(opIdx byte, payload []byte) []byte {
	return append([]byte{opIdx, byte(len(payload))}, payload...)
}

func vs(vals ...int64) []byte {
	var b []byte
	for _, v := range vals {
		b = putV(b, v)
	}
	return b
}

func FuzzServerRequest(f *testing.F) {
	ft, err := datatype.Vector(4, 2, 8, datatype.Byte)
	if err != nil {
		f.Fatal(err)
	}
	reg := append(putV(nil, 0), datatype.Encode(ft)...)

	// One seed per interesting shape; indexes into fuzzOps.
	f.Add(seedReq(0, vs(0, 16)))                                // valid read
	f.Add(seedReq(0, vs(-5, 16)))                               // negative offset
	f.Add(seedReq(0, vs(0)))                                    // truncated: missing length field
	f.Add(seedReq(0, vs(0, fuzzMaxFrame*2)))                    // response would exceed frame
	f.Add(seedReq(1, append(vs(8), []byte("hello")...)))        // valid write
	f.Add(seedReq(2, vs(2, 0, 8, 64, 8)))                       // valid 2-run readv
	f.Add(seedReq(2, vs(300, 0, 8)))                            // list over MaxListRuns
	f.Add(seedReq(2, vs(1, 0)))                                 // truncated list entry
	f.Add(seedReq(3, append(vs(1, 0, 4), 'a', 'b')))            // writev length mismatch
	f.Add(seedReq(4, nil))                                      // size
	f.Add(seedReq(5, vs(-1)))                                   // negative truncate
	f.Add(seedReq(7, reg))                                      // valid view registration
	f.Add(seedReq(7, append(vs(3), 0xff, 0xfe, 0x17)))          // garbage datatype tree
	f.Add(seedReq(8, vs(99, 0, 64)))                            // stale handle
	f.Add(seedReq(9, vs(99, 0, 64)))                            // stale handle, write
	f.Add(seedReq(8, vs(1, -4, 64)))                            // negative view range
	f.Add(seedReq(8, vs(1, 0, int64(fuzzMaxFrame)*4)))          // oversized view range
	f.Add(seedReq(14, vs(0)))                                   // unknown op (tag 0)
	f.Add(append(seedReq(7, reg), seedReq(8, vs(1, 0, 16))...)) // register then use
	// Raw-phase shapes: a hostile length header (payload length field
	// far beyond MaxFrame) and assorted garbage.
	hostile := make([]byte, 12)
	binary.LittleEndian.PutUint32(hostile[0:4], 0xfffffff0)
	f.Add(hostile)
	f.Add([]byte("\x00\x01\x02\x03garbage that is not a frame at all"))

	addr := fuzzServer(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		deadline := time.Now().Add(5 * time.Second)

		// Phase 1: well-framed requests with fuzzed payloads.  Every
		// request must draw exactly one response frame, tagged either
		// with the echoed op or opErr — and opErr payloads must carry a
		// known class.
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial:", err)
		}
		conn.SetDeadline(deadline)
		fc := transport.NewFrameConn(conn, fuzzMaxFrame)
		rest := data
		for seq := 0; len(rest) > 0 && seq < 8; seq++ {
			op := fuzzOps[int(rest[0])%len(fuzzOps)]
			rest = rest[1:]
			n := 0
			if len(rest) > 0 {
				n = int(rest[0])
				rest = rest[1:]
			}
			if n > len(rest) {
				n = len(rest)
			}
			payload := rest[:n]
			rest = rest[n:]
			if err := fc.WriteFrame(seq, op, payload); err != nil {
				break
			}
			rseq, rtag, rpayload, err := fc.ReadFrame()
			if err != nil {
				// The server only drops the connection on framing
				// failures, which phase 1 never produces.
				t.Fatalf("no response to framed op %d: %v", op, err)
			}
			if rseq != seq {
				t.Fatalf("response seq %d for request %d", rseq, seq)
			}
			if rtag != op && rtag != opErr {
				t.Fatalf("response tag %d to op %d", rtag, op)
			}
			if rtag == opErr {
				class, _, err := getV(rpayload)
				if err != nil {
					t.Fatalf("opErr payload undecodable: %v", err)
				}
				switch class {
				case classTransient, classPermanent, classStale, classBad:
				default:
					t.Fatalf("opErr carries unknown class %d", class)
				}
			}
		}
		fc.Close()

		// Phase 2: the same bytes as a raw unframed stream.  The server
		// may answer or hang up, but must not crash; drain until EOF or
		// deadline.
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial:", err)
		}
		raw.SetDeadline(deadline)
		raw.Write(data)
		if tc, ok := raw.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		drain := make([]byte, 4096)
		for {
			if _, err := raw.Read(drain); err != nil {
				break
			}
		}
		raw.Close()

		// Phase 3: the server must still answer a valid request.
		hc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal("server unreachable after fuzz input:", err)
		}
		hc.SetDeadline(deadline)
		hfc := transport.NewFrameConn(hc, fuzzMaxFrame)
		if err := hfc.WriteFrame(7, opSize, nil); err != nil {
			t.Fatal("health-check write:", err)
		}
		rseq, rtag, rpayload, err := hfc.ReadFrame()
		if err != nil || rseq != 7 || rtag != opSize {
			t.Fatalf("health check failed: seq=%d tag=%d err=%v", rseq, rtag, err)
		}
		// (A fuzzed opTruncate may legitimately have shrunk the backing
		// store, so only decodability and non-negativity are asserted.)
		if size, _, err := getV(rpayload); err != nil || size < 0 {
			t.Fatalf("health-check size %d err=%v", size, err)
		}
		hfc.Close()
	})
}
