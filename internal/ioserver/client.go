package ioserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
)

// View is the client-side record of one registrable fileview: the
// displacement plus the datatype.Encode'd filetype tree.  One View is
// shared across all servers of an aggregate; each Client lazily
// registers it on its own connection and caches the returned handle.
type View struct {
	Disp int64
	Enc  []byte
}

// Client is one rank's connection to one I/O server, presented as a
// storage.Backend over that server's local stripe (offsets are local;
// the Striped aggregate does the global math).  A broken connection is
// redialed on the next operation — the failed operation itself reports
// a transient error, so a storage.Resilient wrapper above rides it out.
// Safe for concurrent use; round-trips serialize on one mutex.
type Client struct {
	addr      string
	maxFrame  int
	timeout   time.Duration
	wireChaos *transport.WireChaosConfig
	redials   *obs.Counter // dials after the first: the connection was lost
	dialed    bool         // guarded by mu

	mu       sync.Mutex
	fc       *transport.FrameConn
	seq      int
	views    map[*View]uint64 // handle per registered view, this connection
	rounds   atomic.Int64     // request round-trips issued
	lastSize atomic.Int64     // last size observed from the server, Size's fault fallback

	// Epoch staging state.  While epoch != 0, writes go out as staged
	// ops and are logged in stage; a reconnect replays the log before
	// the next request, so a server that bounced mid-epoch (discarding
	// its uncommitted staged state on recovery) is transparently
	// re-staged.  The tally mirrors the server's per-connection count so
	// SealEpoch can detect a bounce that the replay machinery missed.
	epoch                  uint64
	stage                  []stagedReq
	tallyCount, tallyBytes int64
	sealedInc              int64  // server incarnation observed at last seal
	lastCommit             uint64 // most recently committed epoch id
	fresh                  bool   // connection newly dialed: replay before next op
	replaying              bool
}

// stagedReq is one acknowledged staged write, kept for replay.
type stagedReq struct {
	op      int    // opStageWrite / opStageWritev: payload replayed verbatim
	payload []byte // includes the epoch prefix
	v       *View  // opStageViewWrite: payload rebuilt per replay (fresh handle)
	d0, d1  int64
	data    []byte
}

// ClientOptions tune a client; the zero value is ready to use.
type ClientOptions struct {
	// MaxFrame bounds frame payloads (<= 0 selects the transport
	// default); it must be at least the server's to read large
	// responses.
	MaxFrame int
	// Timeout bounds each dial and each round-trip (default 30s).
	Timeout time.Duration
	// WireChaos, when enabled, wraps every dialed connection in a
	// fault-injecting transport.ChaosConn — the client side of the wire
	// only, so server responses stay canonical while requests suffer
	// drops, duplicates, header corruption, resets, and partitions.
	WireChaos *transport.WireChaosConfig
	// Metrics, when non-nil, registers a per-server redial counter —
	// each dial after the first means a connection was lost to a fault
	// or a server bounce.
	Metrics *obs.Registry
	// Conns is the per-server connection pool size used by Striped
	// (<= 0 means 1).  A single connection serializes round-trips
	// behind the client mutex; concurrent sessions sharing a striped
	// backend want several so their requests overlap on the wire.
	Conns int
}

// NewClient builds a client for the server at addr.  The connection is
// established lazily on first use.
func NewClient(addr string, opts ClientOptions) *Client {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = transport.DefaultMaxFrame
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	return &Client{
		addr:      addr,
		maxFrame:  opts.MaxFrame,
		timeout:   opts.Timeout,
		wireChaos: opts.WireChaos,
		redials: opts.Metrics.Counter("ioserver_client_redials_total",
			"Reconnections to an I/O server after a lost connection.",
			obs.Label{Key: "server", Value: addr}),
		views: make(map[*View]uint64),
	}
}

// Addr reports the server address this client targets.
func (c *Client) Addr() string { return c.addr }

// Rounds reports the request round-trips issued so far — the wire-cost
// metric the registered-view protocol exists to shrink.
func (c *Client) Rounds() int64 { return c.rounds.Load() }

// Close tears down the connection; a later operation would redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fc == nil {
		return nil
	}
	err := c.fc.Close()
	c.dropLocked()
	return err
}

// dropLocked discards the connection state.  View handles are
// per-connection server state, so they go too; view operations
// re-register lazily.
func (c *Client) dropLocked() {
	if c.fc != nil {
		c.fc.Close()
		c.fc = nil
	}
	c.views = make(map[*View]uint64)
}

// connectLocked ensures a live connection.  A fresh dial arms the
// stage-log replay: the server behind this address may be a restarted
// instance whose recovery discarded our uncommitted epoch.
func (c *Client) connectLocked() error {
	if c.fc != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("ioserver %s: dial: %v: %w", c.addr, err, storage.ErrTransient)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var wc net.Conn = conn
	if c.wireChaos.Enabled() {
		wc = transport.NewChaosConn(conn, c.wireChaos, "client-"+c.addr)
	}
	c.fc = transport.NewFrameConn(wc, c.maxFrame)
	c.fresh = true
	if c.dialed {
		c.redials.Inc()
	}
	c.dialed = true
	return nil
}

// roundTripLocked performs one request/response exchange.  Network and
// framing failures drop the connection and report transient errors
// (reconnect-and-reissue heals them); opErr responses are decoded into
// their class without touching the connection.
func (c *Client) roundTripLocked(op int, payload []byte) ([]byte, error) {
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	if c.fresh && !c.replaying {
		c.fresh = false
		if len(c.stage) > 0 {
			c.replaying = true
			err := c.replayLocked()
			c.replaying = false
			if err != nil {
				return nil, err
			}
		}
	}
	c.seq++
	seq := c.seq
	c.rounds.Add(1)
	c.fc.SetDeadline(time.Now().Add(c.timeout))
	if err := c.fc.WriteFrame(seq, op, payload); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("ioserver %s: send: %v: %w", c.addr, err, storage.ErrTransient)
	}
	rseq, tag, resp, err := c.fc.ReadFrame()
	if err != nil {
		c.dropLocked()
		if err == io.EOF {
			err = errors.New("connection closed by server")
		}
		return nil, fmt.Errorf("ioserver %s: receive: %v: %w", c.addr, err, storage.ErrTransient)
	}
	if rseq != seq || (tag != op && tag != opErr) {
		// Desynchronized stream: no way to re-associate responses.
		c.dropLocked()
		return nil, fmt.Errorf("ioserver %s: response desync (seq %d/%d, tag %d/%d): %w",
			c.addr, rseq, seq, tag, op, storage.ErrTransient)
	}
	if tag == opErr {
		class, msg, err := decodeErr(resp)
		if err != nil {
			c.dropLocked()
			return nil, fmt.Errorf("ioserver %s: malformed error frame: %w", c.addr, storage.ErrTransient)
		}
		return nil, unwireError(c.addr, class, msg)
	}
	return resp, nil
}

func decodeErr(payload []byte) (class int64, msg string, err error) {
	class, rest, err := getV(payload)
	if err != nil {
		return 0, "", err
	}
	return class, string(rest), nil
}

func (c *Client) roundTrip(op int, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(op, payload)
}

// ReadAt implements io.ReaderAt against the server's stripe.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	req := putV(nil, off)
	req = putV(req, int64(len(p)))
	resp, err := c.roundTrip(opRead, req)
	if err != nil {
		return 0, err
	}
	if len(resp) < 1 || len(resp)-1 > len(p) {
		return 0, fmt.Errorf("ioserver %s: read response length %d for %d-byte read: %w",
			c.addr, len(resp), len(p), storage.ErrPermanent)
	}
	n := copy(p, resp[1:])
	if resp[0] != 0 {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt against the server's stripe.  Inside
// an epoch the write is staged (journaled server-side, invisible to
// reads until commit) and logged for replay.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != 0 {
		req := putV(make([]byte, 0, len(p)+24), int64(c.epoch))
		req = putV(req, off)
		req = append(req, p...)
		if _, err := c.roundTripLocked(opStageWrite, req); err != nil {
			return 0, err
		}
		c.logStagedLocked(stagedReq{op: opStageWrite, payload: req}, int64(len(p)))
		return len(p), nil
	}
	req := putV(make([]byte, 0, len(p)+16), off)
	req = append(req, p...)
	if _, err := c.roundTripLocked(opWrite, req); err != nil {
		return 0, err
	}
	return len(p), nil
}

// logStagedLocked records one acknowledged staged request for replay
// and advances the tally mirrored by the server's per-connection count.
func (c *Client) logStagedLocked(r stagedReq, bytes int64) {
	c.stage = append(c.stage, r)
	c.tallyCount++
	c.tallyBytes += bytes
}

// ReadAtv implements storage.Vectored: the batch is shipped as offset
// lists of at most MaxListRuns entries each, so n runs cost
// ceil(n/MaxListRuns) round-trips.
func (c *Client) ReadAtv(segs []storage.Segment) error {
	for len(segs) > 0 {
		chunk := c.clipList(segs)
		req := putV(nil, int64(len(chunk)))
		for _, s := range chunk {
			req = putV(req, s.Off)
			req = putV(req, int64(len(s.Buf)))
		}
		resp, err := c.roundTrip(opReadv, req)
		if err != nil {
			return err
		}
		var pos int
		for _, s := range chunk {
			pos += copy(s.Buf, resp[pos:])
		}
		if pos != len(resp) || pos != totalLen(chunk) {
			return fmt.Errorf("ioserver %s: vectored read returned %d of %d bytes: %w",
				c.addr, len(resp), totalLen(chunk), storage.ErrPermanent)
		}
		segs = segs[len(chunk):]
	}
	return nil
}

// WriteAtv implements storage.Vectored, chunked like ReadAtv; inside an
// epoch each chunk is staged and logged for replay.
func (c *Client) WriteAtv(segs []storage.Segment) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(segs) > 0 {
		chunk := c.clipList(segs)
		staged := c.epoch != 0
		op := opWritev
		req := make([]byte, 0, 24+16*len(chunk)+totalLen(chunk))
		if staged {
			op = opStageWritev
			req = putV(req, int64(c.epoch))
		}
		req = putV(req, int64(len(chunk)))
		for _, s := range chunk {
			req = putV(req, s.Off)
			req = putV(req, int64(len(s.Buf)))
		}
		for _, s := range chunk {
			req = append(req, s.Buf...)
		}
		if _, err := c.roundTripLocked(op, req); err != nil {
			return err
		}
		if staged {
			c.logStagedLocked(stagedReq{op: op, payload: req}, int64(totalLen(chunk)))
		}
		segs = segs[len(chunk):]
	}
	return nil
}

// clipList takes the longest prefix of segs that fits one request: at
// most MaxListRuns entries and under the frame payload limit.
func (c *Client) clipList(segs []storage.Segment) []storage.Segment {
	n := min(len(segs), MaxListRuns)
	var bytes int
	for i := 0; i < n; i++ {
		bytes += len(segs[i].Buf)
		if i > 0 && bytes+16*(i+1) > c.maxFrame {
			return segs[:i]
		}
	}
	return segs[:n]
}

func totalLen(segs []storage.Segment) int {
	var n int
	for _, s := range segs {
		n += len(s.Buf)
	}
	return n
}

// Size reports the server stripe's local size.
// sizeAttempts bounds Size's internal retry loop.  Backend.Size cannot
// report an error, and callers clamp reads against it — so a transient
// wire fault must not masquerade as a zero-length stripe, or every read
// of the file silently truncates to zeros.  Transients are retried
// here; if the budget runs out, the last successfully observed size is
// returned (stale beats absurd).
const sizeAttempts = 8

func (c *Client) Size() int64 {
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTrip(opSize, nil)
		if err != nil {
			if attempt+1 < sizeAttempts && storage.IsTransient(err) {
				time.Sleep(time.Duration(attempt+1) * time.Millisecond)
				continue
			}
			return c.lastSize.Load()
		}
		n, _, err := getV(resp)
		if err != nil || n < 0 {
			return c.lastSize.Load()
		}
		c.lastSize.Store(n)
		return n
	}
}

// Truncate sizes the server's stripe.
func (c *Client) Truncate(n int64) error {
	_, err := c.roundTrip(opTruncate, putV(nil, n))
	if err == nil {
		c.lastSize.Store(n)
	}
	return err
}

// Sync flushes the server's stripe to its stable store.
func (c *Client) Sync() error {
	_, err := c.roundTrip(opSync, nil)
	return err
}

// ServerStats fetches the server's request counters.
func (c *Client) ServerStats() (ServerStats, error) {
	resp, err := c.roundTrip(opStats, nil)
	if err != nil {
		return ServerStats{}, err
	}
	return decodeStats(resp)
}

// Metrics fetches the server's metrics snapshot in-band (op=metrics).
// A server built without a registry answers with a valid empty
// snapshot.
func (c *Client) Metrics() (*obs.Snapshot, error) {
	resp, err := c.roundTrip(opMetrics, nil)
	if err != nil {
		return nil, err
	}
	return obs.DecodeSnapshot(resp)
}

// handleLocked returns the server's handle for v, registering it on
// this connection if needed.
func (c *Client) handleLocked(v *View) (uint64, error) {
	if h, ok := c.views[v]; ok {
		return h, nil
	}
	req := putV(make([]byte, 0, 16+len(v.Enc)), v.Disp)
	req = append(req, v.Enc...)
	resp, err := c.roundTripLocked(opRegister, req)
	if err != nil {
		return 0, err
	}
	h, _, err := getV(resp)
	if err != nil || h < 0 {
		return 0, fmt.Errorf("ioserver %s: malformed register response: %w", c.addr, storage.ErrPermanent)
	}
	c.views[v] = uint64(h)
	return uint64(h), nil
}

// viewOpLocked runs one view-addressed round-trip, transparently
// (re-)registering the view: on a stale-handle response — the server
// evicted it from the per-connection LRU — the handle is dropped and
// the operation reissued once with a fresh registration.  For the
// staged op the request carries the epoch prefix.
func (c *Client) viewOpLocked(op int, v *View, d0, d1 int64, data []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		h, err := c.handleLocked(v)
		if err != nil {
			return nil, err
		}
		req := make([]byte, 0, 40+len(data))
		if op == opStageViewWrite {
			req = putV(req, int64(c.epoch))
		}
		req = putV(req, int64(h))
		req = putV(req, d0)
		req = putV(req, d1)
		req = append(req, data...)
		resp, err := c.roundTripLocked(op, req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, errStale) {
			return nil, err
		}
		delete(c.views, v)
		lastErr = err
	}
	return nil, fmt.Errorf("ioserver %s: view handle stale after re-registration: %v: %w",
		c.addr, lastErr, storage.ErrPermanent)
}

// ViewReadRange fetches this server's bytes of data range [d0, d1) of
// the view, packed in data order.
func (c *Client) ViewReadRange(v *View, d0, d1 int64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewOpLocked(opViewRead, v, d0, d1, nil)
}

// ViewWriteRange stores data as this server's bytes of data range
// [d0, d1) of the view, packed in data order.  Inside an epoch the
// write is staged; the replay log keeps the view reference (the handle
// is re-registered on replay) and aliases data, whose buffer the
// Striped caller allocates per call and does not reuse.
func (c *Client) ViewWriteRange(v *View, d0, d1 int64, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != 0 {
		if _, err := c.viewOpLocked(opStageViewWrite, v, d0, d1, data); err != nil {
			return err
		}
		c.logStagedLocked(stagedReq{v: v, d0: d0, d1: d1, data: data}, int64(len(data)))
		return nil
	}
	_, err := c.viewOpLocked(opViewWrite, v, d0, d1, data)
	return err
}

// replayLocked re-stages the epoch's logged writes on a fresh
// connection — the healing path after a server bounce (recovery threw
// the uncommitted epoch away) or a dropped connection (the server kept
// it; re-staging is idempotent: same offsets, same bytes, and the fresh
// connection's tally restarts with the replay).
func (c *Client) replayLocked() error {
	for i := range c.stage {
		r := &c.stage[i]
		if r.v == nil {
			if _, err := c.roundTripLocked(r.op, r.payload); err != nil {
				return err
			}
			continue
		}
		for attempt := 0; ; attempt++ {
			h, err := c.handleLocked(r.v)
			if err != nil {
				return err
			}
			req := putV(make([]byte, 0, 40+len(r.data)), int64(c.epoch))
			req = putV(req, int64(h))
			req = putV(req, r.d0)
			req = putV(req, r.d1)
			req = append(req, r.data...)
			if _, err = c.roundTripLocked(opStageViewWrite, req); err == nil {
				break
			} else if !errors.Is(err, errStale) || attempt > 0 {
				return err
			}
			delete(c.views, r.v)
		}
	}
	return nil
}

// BeginEpoch enters staging mode for epoch id.  Local bookkeeping only
// (nothing crosses the wire until the first staged write), idempotent
// for the active id so every rank of an in-process world sharing this
// client may call it.
func (c *Client) BeginEpoch(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch == id {
		return
	}
	c.epoch = id
	c.stage = c.stage[:0]
	c.tallyCount, c.tallyBytes = 0, 0
	c.sealedInc = 0
}

// SealEpoch verifies that everything this client staged under id is
// present on the server: the server echoes its incarnation and this
// connection's staging tally, which must match the local log.  A
// mismatch means staged state was silently lost (typically a server
// bounce whose redial replayed into a different tally than the log, or
// a wire fault that double-staged) — the connection is dropped and the
// error is transient, so a retry reconnects and replays the log, after
// which the tally matches.
func (c *Client) SealEpoch(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.roundTripLocked(opEpochSeal, putV(nil, int64(id)))
	if err != nil {
		return err
	}
	inc, rest, err := getV(resp)
	if err != nil {
		return fmt.Errorf("ioserver %s: malformed seal response: %w", c.addr, storage.ErrPermanent)
	}
	count, rest, err := getV(rest)
	if err != nil {
		return fmt.Errorf("ioserver %s: malformed seal response: %w", c.addr, storage.ErrPermanent)
	}
	bytes, _, err := getV(rest)
	if err != nil {
		return fmt.Errorf("ioserver %s: malformed seal response: %w", c.addr, storage.ErrPermanent)
	}
	if count != c.tallyCount || bytes != c.tallyBytes {
		c.dropLocked()
		return fmt.Errorf("ioserver %s: seal tally mismatch for epoch %d (server holds %d reqs/%dB, log says %d/%dB): %w",
			c.addr, id, count, bytes, c.tallyCount, c.tallyBytes, storage.ErrTransient)
	}
	c.sealedInc = inc
	return nil
}

// CommitEpoch asks the server to apply epoch id, naming the incarnation
// observed at seal time: a server that restarted in between answers
// storage.ErrEpochRetry (its recovery discarded the staged state), and
// the caller must re-seal before re-committing.
//
// Idempotent for the last committed id: a striped commit fans out over
// several clients, and when one of them fails transiently the driver
// retries the whole fan-out — clients that already committed must
// acknowledge the repeat rather than reject it as an unsealed commit.
func (c *Client) CommitEpoch(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sealedInc == 0 {
		if id == c.lastCommit && id != 0 {
			return nil // duplicate commit after success (retried fan-out)
		}
		return fmt.Errorf("ioserver %s: commit of epoch %d without a seal: %w", c.addr, id, storage.ErrPermanent)
	}
	req := putV(nil, int64(id))
	req = putV(req, c.sealedInc)
	if _, err := c.roundTripLocked(opEpochCommit, req); err != nil {
		return err
	}
	c.lastCommit = id
	c.endEpochLocked()
	return nil
}

// AbortEpoch discards epoch id's staged state, server-side (best
// effort) and local.
func (c *Client) AbortEpoch(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Don't let the replay machinery re-stage the epoch we're discarding.
	c.stage = c.stage[:0]
	_, err := c.roundTripLocked(opEpochAbort, putV(nil, int64(id)))
	c.endEpochLocked()
	return err
}

// EndEpoch leaves staging mode without touching staged state — the
// non-committing participants' counterpart of CommitEpoch.  Idempotent.
func (c *Client) EndEpoch(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch == id {
		c.endEpochLocked()
	}
}

func (c *Client) endEpochLocked() {
	c.epoch = 0
	c.stage = nil
	c.tallyCount, c.tallyBytes = 0, 0
	c.sealedInc = 0
}

// RegisterEager registers v now (priming the server's cache and
// validating the encoding server-side) instead of on first use.
func (c *Client) RegisterEager(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.handleLocked(v)
	return err
}
