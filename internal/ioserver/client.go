package ioserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/transport"
)

// View is the client-side record of one registrable fileview: the
// displacement plus the datatype.Encode'd filetype tree.  One View is
// shared across all servers of an aggregate; each Client lazily
// registers it on its own connection and caches the returned handle.
type View struct {
	Disp int64
	Enc  []byte
}

// Client is one rank's connection to one I/O server, presented as a
// storage.Backend over that server's local stripe (offsets are local;
// the Striped aggregate does the global math).  A broken connection is
// redialed on the next operation — the failed operation itself reports
// a transient error, so a storage.Resilient wrapper above rides it out.
// Safe for concurrent use; round-trips serialize on one mutex.
type Client struct {
	addr     string
	maxFrame int
	timeout  time.Duration

	mu     sync.Mutex
	fc     *transport.FrameConn
	seq    int
	views  map[*View]uint64 // handle per registered view, this connection
	rounds atomic.Int64     // request round-trips issued
}

// ClientOptions tune a client; the zero value is ready to use.
type ClientOptions struct {
	// MaxFrame bounds frame payloads (<= 0 selects the transport
	// default); it must be at least the server's to read large
	// responses.
	MaxFrame int
	// Timeout bounds each dial and each round-trip (default 30s).
	Timeout time.Duration
}

// NewClient builds a client for the server at addr.  The connection is
// established lazily on first use.
func NewClient(addr string, opts ClientOptions) *Client {
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = transport.DefaultMaxFrame
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	return &Client{
		addr:     addr,
		maxFrame: opts.MaxFrame,
		timeout:  opts.Timeout,
		views:    make(map[*View]uint64),
	}
}

// Addr reports the server address this client targets.
func (c *Client) Addr() string { return c.addr }

// Rounds reports the request round-trips issued so far — the wire-cost
// metric the registered-view protocol exists to shrink.
func (c *Client) Rounds() int64 { return c.rounds.Load() }

// Close tears down the connection; a later operation would redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fc == nil {
		return nil
	}
	err := c.fc.Close()
	c.dropLocked()
	return err
}

// dropLocked discards the connection state.  View handles are
// per-connection server state, so they go too; view operations
// re-register lazily.
func (c *Client) dropLocked() {
	if c.fc != nil {
		c.fc.Close()
		c.fc = nil
	}
	c.views = make(map[*View]uint64)
}

// connectLocked ensures a live connection.
func (c *Client) connectLocked() error {
	if c.fc != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("ioserver %s: dial: %v: %w", c.addr, err, storage.ErrTransient)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.fc = transport.NewFrameConn(conn, c.maxFrame)
	return nil
}

// roundTripLocked performs one request/response exchange.  Network and
// framing failures drop the connection and report transient errors
// (reconnect-and-reissue heals them); opErr responses are decoded into
// their class without touching the connection.
func (c *Client) roundTripLocked(op int, payload []byte) ([]byte, error) {
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	c.seq++
	seq := c.seq
	c.rounds.Add(1)
	c.fc.SetDeadline(time.Now().Add(c.timeout))
	if err := c.fc.WriteFrame(seq, op, payload); err != nil {
		c.dropLocked()
		return nil, fmt.Errorf("ioserver %s: send: %v: %w", c.addr, err, storage.ErrTransient)
	}
	rseq, tag, resp, err := c.fc.ReadFrame()
	if err != nil {
		c.dropLocked()
		if err == io.EOF {
			err = errors.New("connection closed by server")
		}
		return nil, fmt.Errorf("ioserver %s: receive: %v: %w", c.addr, err, storage.ErrTransient)
	}
	if rseq != seq || (tag != op && tag != opErr) {
		// Desynchronized stream: no way to re-associate responses.
		c.dropLocked()
		return nil, fmt.Errorf("ioserver %s: response desync (seq %d/%d, tag %d/%d): %w",
			c.addr, rseq, seq, tag, op, storage.ErrTransient)
	}
	if tag == opErr {
		class, msg, err := decodeErr(resp)
		if err != nil {
			c.dropLocked()
			return nil, fmt.Errorf("ioserver %s: malformed error frame: %w", c.addr, storage.ErrTransient)
		}
		return nil, unwireError(c.addr, class, msg)
	}
	return resp, nil
}

func decodeErr(payload []byte) (class int64, msg string, err error) {
	class, rest, err := getV(payload)
	if err != nil {
		return 0, "", err
	}
	return class, string(rest), nil
}

func (c *Client) roundTrip(op int, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTripLocked(op, payload)
}

// ReadAt implements io.ReaderAt against the server's stripe.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	req := putV(nil, off)
	req = putV(req, int64(len(p)))
	resp, err := c.roundTrip(opRead, req)
	if err != nil {
		return 0, err
	}
	if len(resp) < 1 || len(resp)-1 > len(p) {
		return 0, fmt.Errorf("ioserver %s: read response length %d for %d-byte read: %w",
			c.addr, len(resp), len(p), storage.ErrPermanent)
	}
	n := copy(p, resp[1:])
	if resp[0] != 0 {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt against the server's stripe.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	req := putV(make([]byte, 0, len(p)+16), off)
	req = append(req, p...)
	if _, err := c.roundTrip(opWrite, req); err != nil {
		return 0, err
	}
	return len(p), nil
}

// ReadAtv implements storage.Vectored: the batch is shipped as offset
// lists of at most MaxListRuns entries each, so n runs cost
// ceil(n/MaxListRuns) round-trips.
func (c *Client) ReadAtv(segs []storage.Segment) error {
	for len(segs) > 0 {
		chunk := c.clipList(segs)
		req := putV(nil, int64(len(chunk)))
		for _, s := range chunk {
			req = putV(req, s.Off)
			req = putV(req, int64(len(s.Buf)))
		}
		resp, err := c.roundTrip(opReadv, req)
		if err != nil {
			return err
		}
		var pos int
		for _, s := range chunk {
			pos += copy(s.Buf, resp[pos:])
		}
		if pos != len(resp) || pos != totalLen(chunk) {
			return fmt.Errorf("ioserver %s: vectored read returned %d of %d bytes: %w",
				c.addr, len(resp), totalLen(chunk), storage.ErrPermanent)
		}
		segs = segs[len(chunk):]
	}
	return nil
}

// WriteAtv implements storage.Vectored, chunked like ReadAtv.
func (c *Client) WriteAtv(segs []storage.Segment) error {
	for len(segs) > 0 {
		chunk := c.clipList(segs)
		req := putV(make([]byte, 0, 16+16*len(chunk)+totalLen(chunk)), int64(len(chunk)))
		for _, s := range chunk {
			req = putV(req, s.Off)
			req = putV(req, int64(len(s.Buf)))
		}
		for _, s := range chunk {
			req = append(req, s.Buf...)
		}
		if _, err := c.roundTrip(opWritev, req); err != nil {
			return err
		}
		segs = segs[len(chunk):]
	}
	return nil
}

// clipList takes the longest prefix of segs that fits one request: at
// most MaxListRuns entries and under the frame payload limit.
func (c *Client) clipList(segs []storage.Segment) []storage.Segment {
	n := min(len(segs), MaxListRuns)
	var bytes int
	for i := 0; i < n; i++ {
		bytes += len(segs[i].Buf)
		if i > 0 && bytes+16*(i+1) > c.maxFrame {
			return segs[:i]
		}
	}
	return segs[:n]
}

func totalLen(segs []storage.Segment) int {
	var n int
	for _, s := range segs {
		n += len(s.Buf)
	}
	return n
}

// Size reports the server stripe's local size.
func (c *Client) Size() int64 {
	resp, err := c.roundTrip(opSize, nil)
	if err != nil {
		return 0
	}
	n, _, err := getV(resp)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Truncate sizes the server's stripe.
func (c *Client) Truncate(n int64) error {
	_, err := c.roundTrip(opTruncate, putV(nil, n))
	return err
}

// Sync flushes the server's stripe to its stable store.
func (c *Client) Sync() error {
	_, err := c.roundTrip(opSync, nil)
	return err
}

// ServerStats fetches the server's request counters.
func (c *Client) ServerStats() (ServerStats, error) {
	resp, err := c.roundTrip(opStats, nil)
	if err != nil {
		return ServerStats{}, err
	}
	return decodeStats(resp)
}

// handleLocked returns the server's handle for v, registering it on
// this connection if needed.
func (c *Client) handleLocked(v *View) (uint64, error) {
	if h, ok := c.views[v]; ok {
		return h, nil
	}
	req := putV(make([]byte, 0, 16+len(v.Enc)), v.Disp)
	req = append(req, v.Enc...)
	resp, err := c.roundTripLocked(opRegister, req)
	if err != nil {
		return 0, err
	}
	h, _, err := getV(resp)
	if err != nil || h < 0 {
		return 0, fmt.Errorf("ioserver %s: malformed register response: %w", c.addr, storage.ErrPermanent)
	}
	c.views[v] = uint64(h)
	return uint64(h), nil
}

// viewOp runs one view-addressed round-trip, transparently
// (re-)registering the view: on a stale-handle response — the server
// evicted it from the per-connection LRU — the handle is dropped and
// the operation reissued once with a fresh registration.
func (c *Client) viewOp(op int, v *View, d0, d1 int64, data []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		h, err := c.handleLocked(v)
		if err != nil {
			return nil, err
		}
		req := putV(make([]byte, 0, 32+len(data)), int64(h))
		req = putV(req, d0)
		req = putV(req, d1)
		req = append(req, data...)
		resp, err := c.roundTripLocked(op, req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, errStale) {
			return nil, err
		}
		delete(c.views, v)
		lastErr = err
	}
	return nil, fmt.Errorf("ioserver %s: view handle stale after re-registration: %v: %w",
		c.addr, lastErr, storage.ErrPermanent)
}

// ViewReadRange fetches this server's bytes of data range [d0, d1) of
// the view, packed in data order.
func (c *Client) ViewReadRange(v *View, d0, d1 int64) ([]byte, error) {
	return c.viewOp(opViewRead, v, d0, d1, nil)
}

// ViewWriteRange stores data as this server's bytes of data range
// [d0, d1) of the view, packed in data order.
func (c *Client) ViewWriteRange(v *View, d0, d1 int64, data []byte) error {
	_, err := c.viewOp(opViewWrite, v, d0, d1, data)
	return err
}

// RegisterEager registers v now (priming the server's cache and
// validating the encoding server-side) instead of on first use.
func (c *Client) RegisterEager(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.handleLocked(v)
	return err
}
