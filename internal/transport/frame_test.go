package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xab}, 1000)}
	for i, p := range payloads {
		buf = appendFrame(buf, i, 100+i, p)
	}
	rest := buf
	for i, p := range payloads {
		src, tag, payload, r, err := DecodeFrame(rest, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if src != i || tag != 100+i || !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: got (src=%d tag=%d len=%d)", i, src, tag, len(payload))
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	full := appendFrame(nil, 1, 2, []byte("payload"))
	cases := []struct {
		name string
		b    []byte
		max  int
	}{
		{"empty", nil, 0},
		{"truncated header", full[:FrameHeaderSize-1], 0},
		{"truncated payload", full[:len(full)-3], 0},
		{"oversized", appendFrame(nil, 0, 0, make([]byte, 64)), 16},
		{"garbage length", []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0}, 1 << 20},
	}
	for _, tc := range cases {
		if _, _, _, _, err := DecodeFrame(tc.b, tc.max); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", tc.name, err)
		}
	}
}

func TestReadFrame(t *testing.T) {
	full := appendFrame(nil, 3, 7, []byte("wire payload"))
	src, tag, payload, err := readFrame(bytes.NewReader(full), 0)
	if err != nil || src != 3 || tag != 7 || string(payload) != "wire payload" {
		t.Fatalf("got (%d, %d, %q, %v)", src, tag, payload, err)
	}

	// EOF at a frame boundary is a link event, not a frame error.
	if _, _, _, err := readFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
	// A payload cut short is a frame error.
	if _, _, _, err := readFrame(bytes.NewReader(full[:len(full)-1]), 0); !errors.Is(err, ErrFrame) {
		t.Fatalf("truncated stream: err = %v, want ErrFrame", err)
	}
	// An oversized length errors before allocating.
	huge := appendFrame(nil, 0, 0, nil)
	huge[3] = 0x7f // claim ~2 GiB payload
	if _, _, _, err := readFrame(bytes.NewReader(huge), 1<<20); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized claim: err = %v, want ErrFrame", err)
	}
}

func TestFrameHeaderHalves(t *testing.T) {
	var hdr [FrameHeaderSize]byte
	putFrameHeader(hdr[:], 5, 1<<20+2, 999)
	src, tag, n, err := parseFrameHeader(hdr[:], DefaultMaxFrame)
	if err != nil || src != 5 || tag != 1<<20+2 || n != 999 {
		t.Fatalf("got (%d, %d, %d, %v)", src, tag, n, err)
	}
	if _, _, _, err := parseFrameHeader(hdr[:], 100); !errors.Is(err, ErrFrame) {
		t.Fatalf("limit: err = %v, want ErrFrame", err)
	}
}

func TestBookRoundTrip(t *testing.T) {
	addrs := []string{"127.0.0.1:9000", "127.0.0.1:9001", "", "[::1]:80"}
	got, err := decodeBook(encodeBook(addrs), len(addrs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("entry %d: %q != %q", i, got[i], addrs[i])
		}
	}
	if _, err := decodeBook(encodeBook(addrs), 2); !errors.Is(err, ErrFrame) {
		t.Fatalf("size mismatch: err = %v, want ErrFrame", err)
	}
	if _, err := decodeBook([]byte{4, 0xff}, 4); !errors.Is(err, ErrFrame) {
		t.Fatalf("garbage: err = %v, want ErrFrame", err)
	}
}

// FuzzFrameDecode drives the two frame decoders with arbitrary bytes:
// truncated, oversized, or garbage input must error (wrapping ErrFrame
// where a frame exists) — never panic and never allocate beyond the
// frame limit.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFrame(nil, 0, 0, nil))
	f.Add(appendFrame(nil, 3, 1<<20+1, []byte("seed payload")))
	f.Add(appendFrame(nil, -1, -1, bytes.Repeat([]byte{7}, 100)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(encodeBook([]string{"127.0.0.1:1", "127.0.0.1:2"}))
	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, b []byte) {
		src, tag, payload, rest, err := DecodeFrame(b, maxFrame)
		if err == nil {
			if len(payload) > maxFrame {
				t.Fatalf("payload %d exceeds limit", len(payload))
			}
			if len(payload)+len(rest)+FrameHeaderSize != len(b) {
				t.Fatalf("frame accounting: %d + %d + %d != %d", len(payload), len(rest), FrameHeaderSize, len(b))
			}
			// The streaming decoder must agree with the in-place one.
			s2, t2, p2, err2 := readFrame(bytes.NewReader(b), maxFrame)
			if err2 != nil || s2 != src || t2 != tag || !bytes.Equal(p2, payload) {
				t.Fatalf("readFrame disagrees: (%d %d %d %v) vs (%d %d %d)", s2, t2, len(p2), err2, src, tag, len(payload))
			}
		} else if !errors.Is(err, ErrFrame) {
			t.Fatalf("DecodeFrame error does not wrap ErrFrame: %v", err)
		}
		if _, err := decodeBook(b, 4); err != nil && !errors.Is(err, ErrFrame) {
			t.Fatalf("decodeBook error does not wrap ErrFrame: %v", err)
		}
	})
}
