package transport

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Request/response framing for protocols layered on the frame codec —
// the I/O-server tier's wire substrate.  Unlike the rank fabric's
// tagged mailboxes, a FrameConn is a plain sequential stream: one side
// writes a request frame and reads the response frame, the other reads
// requests and writes responses.  The frame envelope is reused with a
// different meaning: tag carries the protocol operation (drawn from the
// reserved server-tag range below), src carries a caller-chosen
// sequence number echoed in the response, so a desynchronized peer is
// detected instead of silently answering the wrong request.
//
// FrameConn is not safe for concurrent use; callers serialize
// request/response round-trips (internal/ioserver holds one mutex per
// connection).

// Server-protocol tag space: negative tags in [TagServerLast,
// TagServerFirst] are reserved for request/response protocols.  They
// sit below the rendezvous handshake tags (tagHello, tagBook), so a
// stray server frame on a rank link is rejected as a negative tag, and
// a stray rank frame on a server connection falls outside the op range.
const (
	TagServerFirst = -16
	TagServerLast  = -63
)

// ServerTag reports whether tag lies in the reserved server-protocol
// range.
func ServerTag(tag int) bool { return tag <= TagServerFirst && tag >= TagServerLast }

// FrameConn frames request/response messages over one net.Conn.
type FrameConn struct {
	conn     net.Conn
	br       *bufio.Reader
	maxFrame int
	wbuf     []byte // reused write staging buffer
}

// NewFrameConn wraps conn.  maxFrame bounds accepted payload lengths
// (<= 0 selects DefaultMaxFrame); the length is validated before any
// allocation, so a garbage or hostile header cannot over-allocate.
func NewFrameConn(conn net.Conn, maxFrame int) *FrameConn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameConn{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, readBufSize),
		maxFrame: maxFrame,
	}
}

// WriteFrame sends one frame: seq is echoed by the peer's response, tag
// the protocol operation.
func (fc *FrameConn) WriteFrame(seq, tag int, payload []byte) error {
	if len(payload) > fc.maxFrame {
		return fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, len(payload), fc.maxFrame)
	}
	fc.wbuf = appendFrame(fc.wbuf[:0], seq, tag, payload)
	_, err := fc.conn.Write(fc.wbuf)
	return err
}

// ReadFrame reads one frame.  The payload is freshly allocated (at most
// maxFrame bytes, validated before allocation); a truncated or garbage
// header returns an error wrapping ErrFrame.
func (fc *FrameConn) ReadFrame() (seq, tag int, payload []byte, err error) {
	return readFrame(fc.br, fc.maxFrame)
}

// SetDeadline bounds the next read and write on the underlying
// connection; the zero time clears it.
func (fc *FrameConn) SetDeadline(t time.Time) error { return fc.conn.SetDeadline(t) }

// RemoteAddr reports the peer's address, for diagnostics.
func (fc *FrameConn) RemoteAddr() net.Addr { return fc.conn.RemoteAddr() }

// Close closes the underlying connection.
func (fc *FrameConn) Close() error { return fc.conn.Close() }
