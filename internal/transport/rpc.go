package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"
)

// Request/response framing for protocols layered on the frame codec —
// the I/O-server tier's wire substrate.  Unlike the rank fabric's
// tagged mailboxes, a FrameConn is a plain sequential stream: one side
// writes a request frame and reads the response frame, the other reads
// requests and writes responses.  The frame envelope is reused with a
// different meaning: tag carries the protocol operation (drawn from the
// reserved server-tag range below), src carries a caller-chosen
// sequence number echoed in the response, so a desynchronized peer is
// detected instead of silently answering the wrong request.
//
// Unlike the rank fabric's raw frames, FrameConn headers carry a
// trailing CRC32-C over the (length, seq, tag) fields.  The header is
// the protocol's only self-describing region: a flipped bit in the tag
// executes the wrong operation, and a flipped bit in the length can
// swallow the following frame while still producing a response whose
// seq and tag match — silent corruption the seq echo cannot catch.
// With the checksum, any header damage is a framing error that kills
// the connection; the client reconnects, replays its stage log, and
// reissues, so corruption costs a transient instead of wrong bytes.
//
// FrameConn is not safe for concurrent use; callers serialize
// request/response round-trips (internal/ioserver holds one mutex per
// connection).

// Server-protocol tag space: negative tags in [TagServerLast,
// TagServerFirst] are reserved for request/response protocols.  They
// sit below the rendezvous handshake tags (tagHello, tagBook), so a
// stray server frame on a rank link is rejected as a negative tag, and
// a stray rank frame on a server connection falls outside the op range.
const (
	TagServerFirst = -16
	TagServerLast  = -63
)

// ServerTag reports whether tag lies in the reserved server-protocol
// range.
func ServerTag(tag int) bool { return tag <= TagServerFirst && tag >= TagServerLast }

// rpcHeaderSize is FrameConn's extended header: the frame header plus
// the CRC32-C of its bytes.
const rpcHeaderSize = FrameHeaderSize + 4

var rpcCRCTable = crc32.MakeTable(crc32.Castagnoli)

// FrameConn frames request/response messages over one net.Conn.
type FrameConn struct {
	conn     net.Conn
	br       *bufio.Reader
	maxFrame int
	wbuf     []byte // reused write staging buffer
}

// NewFrameConn wraps conn.  maxFrame bounds accepted payload lengths
// (<= 0 selects DefaultMaxFrame); the length is validated before any
// allocation, so a garbage or hostile header cannot over-allocate.
func NewFrameConn(conn net.Conn, maxFrame int) *FrameConn {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &FrameConn{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, readBufSize),
		maxFrame: maxFrame,
	}
}

// WriteFrame sends one frame: seq is echoed by the peer's response, tag
// the protocol operation.
func (fc *FrameConn) WriteFrame(seq, tag int, payload []byte) error {
	if len(payload) > fc.maxFrame {
		return fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, len(payload), fc.maxFrame)
	}
	var hdr [rpcHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(int32(seq)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(hdr[:FrameHeaderSize], rpcCRCTable))
	fc.wbuf = append(fc.wbuf[:0], hdr[:]...)
	fc.wbuf = append(fc.wbuf, payload...)
	_, err := fc.conn.Write(fc.wbuf)
	return err
}

// ReadFrame reads one frame.  The payload is freshly allocated (at most
// maxFrame bytes, validated before allocation); a truncated header, a
// header checksum mismatch, or an oversized length returns an error
// wrapping ErrFrame.
func (fc *FrameConn) ReadFrame() (seq, tag int, payload []byte, err error) {
	var hdr [rpcHeaderSize]byte
	if _, err := io.ReadFull(fc.br, hdr[:]); err != nil {
		return 0, 0, nil, err // EOF between frames is a link event, not a frame error
	}
	if got, want := crc32.Checksum(hdr[:FrameHeaderSize], rpcCRCTable), binary.LittleEndian.Uint32(hdr[12:16]); got != want {
		return 0, 0, nil, fmt.Errorf("%w: header checksum mismatch (%#x vs %#x)", ErrFrame, got, want)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > uint32(fc.maxFrame) {
		return 0, 0, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, n, fc.maxFrame)
	}
	seq = int(int32(binary.LittleEndian.Uint32(hdr[4:8])))
	tag = int(int32(binary.LittleEndian.Uint32(hdr[8:12])))
	payload = make([]byte, n)
	if _, err := io.ReadFull(fc.br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
	}
	return seq, tag, payload, nil
}

// SetDeadline bounds the next read and write on the underlying
// connection; the zero time clears it.
func (fc *FrameConn) SetDeadline(t time.Time) error { return fc.conn.SetDeadline(t) }

// RemoteAddr reports the peer's address, for diagnostics.
func (fc *FrameConn) RemoteAddr() net.Addr { return fc.conn.RemoteAddr() }

// Close closes the underlying connection.
func (fc *FrameConn) Close() error { return fc.conn.Close() }
