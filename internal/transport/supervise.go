package transport

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Server supervision.  Each I/O server of a launch runs under its own
// restart loop: a server that dies prematurely is restarted on its
// inherited listener — same address, bounded attempts, exponential
// backoff — so the ranks' resilient clients reconnect and heal a
// mid-collective crash instead of the whole run failing.  A server that
// exhausts its restart budget fails the pool.

// ServerPoolOptions configure one supervised server pool.
type ServerPoolOptions struct {
	// Exe and Args build each server's command, as in LaunchOptions.
	// Ignored when StartProc is set.
	Exe  string
	Args func(idx int) []string
	// Listeners are the pre-bound service listeners, one per server,
	// inherited at fd RendezvousFD across every (re)start.  The pool
	// never closes them — the caller owns their lifetime, and they must
	// stay open as long as restarts are possible.
	Listeners []*os.File
	// MaxRestarts bounds automatic restarts per server; 0 means no
	// supervision — any premature death fails the pool immediately.
	MaxRestarts int
	// RestartBackoff delays the first restart of a server, doubling per
	// consecutive restart (default 50ms).
	RestartBackoff time.Duration
	// Env, when non-nil, replaces each server's environment.  Ignored
	// when StartProc is set.
	Env []string
	// StartProc, when set, overrides process creation (the launcher
	// injects its line-prefixing output writers through it).  It must
	// Start the command before returning.
	StartProc func(idx int, listener *os.File) (*exec.Cmd, error)
	// OnRestart, when set, is invoked after the backoff and just before
	// a crashed server's replacement starts (attempt counts from 1).
	// The flight-recorder machinery uses it to move the dead instance's
	// dump aside before the replacement overwrites it.
	OnRestart func(idx, attempt int)
}

// ServerPool runs and supervises one process per server listener.
type ServerPool struct {
	opts ServerPoolOptions

	mu       sync.Mutex
	cmds     []*exec.Cmd
	restarts []int
	stopping bool
	graceful bool

	stopCh   chan struct{}
	failures chan error
	wg       sync.WaitGroup
}

// StartServerPool starts every server and its supervision loop.  On a
// start failure the already-started servers are killed and reaped.
func StartServerPool(opts ServerPoolOptions) (*ServerPool, error) {
	n := len(opts.Listeners)
	if n == 0 {
		return nil, fmt.Errorf("transport: server pool needs listeners")
	}
	if opts.StartProc == nil {
		if opts.Exe == "" || opts.Args == nil {
			return nil, fmt.Errorf("transport: server pool needs Exe and Args (or StartProc)")
		}
		opts.StartProc = func(idx int, listener *os.File) (*exec.Cmd, error) {
			cmd := exec.Command(opts.Exe, opts.Args(idx)...)
			if opts.Env != nil {
				cmd.Env = opts.Env
			}
			cmd.ExtraFiles = []*os.File{listener}
			cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			return cmd, cmd.Start()
		}
	}
	if opts.RestartBackoff <= 0 {
		opts.RestartBackoff = 50 * time.Millisecond
	}
	p := &ServerPool{
		opts:     opts,
		cmds:     make([]*exec.Cmd, n),
		restarts: make([]int, n),
		stopCh:   make(chan struct{}),
		failures: make(chan error, n),
	}
	for idx := 0; idx < n; idx++ {
		cmd, err := opts.StartProc(idx, opts.Listeners[idx])
		if err != nil {
			for _, c := range p.cmds[:idx] {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("transport: starting server %d: %w", idx, err)
		}
		p.cmds[idx] = cmd
	}
	for idx := 0; idx < n; idx++ {
		p.wg.Add(1)
		go p.run(idx, p.cmds[idx])
	}
	return p, nil
}

// run is server idx's supervision loop: wait, classify, restart.
func (p *ServerPool) run(idx int, cmd *exec.Cmd) {
	defer p.wg.Done()
	backoff := p.opts.RestartBackoff
	for {
		err := cmd.Wait()
		p.mu.Lock()
		stopping, graceful := p.stopping, p.graceful
		p.mu.Unlock()
		if stopping {
			// Dying to the stop (or the escalation kill) is the expected
			// mechanism; only a real failure during graceful shutdown —
			// a journal seal that could not be written, say — counts.
			if graceful {
				if e := serverExitError(idx, err, true); e != nil {
					p.fail(e)
				}
			}
			return
		}
		p.mu.Lock()
		p.restarts[idx]++
		attempt := p.restarts[idx]
		p.mu.Unlock()
		if attempt > p.opts.MaxRestarts {
			p.fail(fmt.Errorf("transport: server %d died (%v) with restart budget exhausted (%d)",
				idx, exitCause(err), p.opts.MaxRestarts))
			return
		}
		select {
		case <-p.stopCh:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if p.opts.OnRestart != nil {
			p.opts.OnRestart(idx, attempt)
		}
		next, startErr := p.opts.StartProc(idx, p.opts.Listeners[idx])
		if startErr != nil {
			p.fail(fmt.Errorf("transport: restarting server %d (attempt %d): %w", idx, attempt, startErr))
			return
		}
		p.mu.Lock()
		if p.stopping {
			// A stop raced the restart and already signalled the old
			// process; take the replacement down with it.
			p.mu.Unlock()
			next.Process.Kill()
			next.Wait()
			return
		}
		p.cmds[idx] = next
		p.mu.Unlock()
		cmd = next
	}
}

// exitCause renders a Wait error ("exit status 1", "signal: killed") or
// a clean premature exit.
func exitCause(err error) string {
	if err == nil {
		return "exited cleanly"
	}
	return err.Error()
}

// fail records a pool failure; only the first per slot matters and the
// channel is sized for all of them, so the send cannot block.
func (p *ServerPool) fail(err error) {
	select {
	case p.failures <- err:
	default:
	}
}

// Failures delivers fatal pool errors: a server past its restart
// budget, a failed restart, or a real error during graceful shutdown.
func (p *ServerPool) Failures() <-chan error { return p.failures }

// Kill SIGKILLs server idx's current process — the fault-injection
// entry point of the kill-and-restart harness.  Supervision restarts
// the server if the budget allows.
func (p *ServerPool) Kill(idx int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx < 0 || idx >= len(p.cmds) {
		return fmt.Errorf("transport: kill: no server %d", idx)
	}
	c := p.cmds[idx]
	if c == nil || c.Process == nil {
		return fmt.Errorf("transport: kill: server %d not running", idx)
	}
	return c.Process.Kill()
}

// Stop ends supervision and takes the servers down: gracefully with an
// interrupt (so they flush, sync, and seal their journals) or
// immediately with a kill.  Stop(false) after Stop(true) escalates; any
// further Stop is a no-op.  Servers stopped mid-backoff simply never
// restart.
func (p *ServerPool) Stop(graceful bool) {
	p.mu.Lock()
	first := !p.stopping
	p.stopping = true
	if first {
		p.graceful = graceful
		close(p.stopCh)
	}
	cmds := append([]*exec.Cmd(nil), p.cmds...)
	p.mu.Unlock()
	if !first && graceful {
		return // already stopping at least this hard
	}
	for _, c := range cmds {
		if c == nil || c.Process == nil {
			continue
		}
		if graceful {
			if err := c.Process.Signal(os.Interrupt); err != nil {
				c.Process.Kill()
			}
		} else {
			c.Process.Kill()
		}
	}
}

// Wait blocks until every supervision loop has exited — i.e. until
// every server is down for good, after a Stop or a fatal failure plus
// Stop.
func (p *ServerPool) Wait() { p.wg.Wait() }

// Restarts reports how many times each server has been restarted.
func (p *ServerPool) Restarts() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.restarts...)
}
