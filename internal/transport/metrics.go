package transport

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Launcher-side metrics aggregation.  With LaunchOptions.Metrics set,
// the launcher binds one extra 127.0.0.1 listener per child, hands it
// down through ExtraFiles (the child serves obs.Serve on it), appends
// the fd-number flag to the child's argument list itself, and scrapes
// every child's /metrics.bin endpoint on an interval.  The last good
// snapshot per process survives that process's death — including a
// SIGKILLed server — and on exit the launcher merges all of them into
// one unified run report.

// DefaultScrapeInterval is the default launcher scrape period.
const DefaultScrapeInterval = 500 * time.Millisecond

// MetricsOptions configure launcher-side metrics aggregation.
type MetricsOptions struct {
	// Interval between scrapes (default DefaultScrapeInterval).
	Interval time.Duration
	// FlagName is the flag the launcher appends to every child's
	// argument list, followed by the inherited listener's fd number
	// (default "-metrics-fd").  Args/ServerArgs callbacks never see it.
	FlagName string
	// PushFlagName is the flag carrying the launcher's collector
	// address, to which children obs.Push their final snapshot on clean
	// exit (default "-metrics-push").
	PushFlagName string
	// Announce, when non-nil, receives one "metrics <proc> <addr>" line
	// per child as its listener is bound, so harnesses (CI) can curl a
	// live /metrics endpoint mid-run.
	Announce io.Writer
	// Report, when non-nil, receives the merged run report on exit
	// (default the launch's Stdout).
	Report io.Writer
}

// metricsProc is one scrape target.
type metricsProc struct {
	name string // "rank0", "srv1", ...
	addr string
}

// metricsScraper polls every child's /metrics.bin and keeps the last
// snapshot that decoded, per process.
type metricsScraper struct {
	interval time.Duration
	client   *http.Client

	mu    sync.Mutex
	procs []metricsProc
	last  map[string]*obs.Snapshot

	pushLn  net.Listener
	pushSrv *http.Server

	stop chan struct{}
	done chan struct{}
}

func newMetricsScraper(interval time.Duration) *metricsScraper {
	return &metricsScraper{
		interval: interval,
		client:   &http.Client{Timeout: 2 * time.Second},
		last:     make(map[string]*obs.Snapshot),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// listenPush binds the launcher's collector endpoint and returns its
// address.  Children POST their final snapshot to /push on clean exit
// (obs.Push), closing the window where a process dies between two
// scrape ticks and drops out of the merged report.  A pushed snapshot
// simply replaces the proc's last-good scrape.
func (s *metricsScraper) listenPush() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/push", func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(io.LimitReader(req.Body, 16<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := obs.DecodeSnapshot(body)
		if err != nil || snap.Proc == "" {
			http.Error(w, "bad snapshot", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.last[snap.Proc] = snap
		s.mu.Unlock()
	})
	s.pushLn = ln
	s.pushSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.pushSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// add registers one scrape target and announces its address.
func (s *metricsScraper) add(name, addr string, announce io.Writer) {
	s.mu.Lock()
	s.procs = append(s.procs, metricsProc{name, addr})
	s.mu.Unlock()
	if announce != nil {
		fmt.Fprintf(announce, "metrics %s %s\n", name, addr)
	}
}

// start runs the periodic scrape loop until close.
func (s *metricsScraper) start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.scrapeAll()
			case <-s.stop:
				return
			}
		}
	}()
}

// scrapeAll polls every target once, concurrently; failures (a child
// not yet serving, or already dead) leave its last-good snapshot in
// place.
func (s *metricsScraper) scrapeAll() {
	s.mu.Lock()
	procs := append([]metricsProc(nil), s.procs...)
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p metricsProc) {
			defer wg.Done()
			snap, err := s.scrapeOne(p.addr)
			if err != nil {
				return
			}
			s.mu.Lock()
			s.last[p.name] = snap
			s.mu.Unlock()
		}(p)
	}
	wg.Wait()
}

func (s *metricsScraper) scrapeOne(addr string) (*obs.Snapshot, error) {
	resp, err := s.client.Get("http://" + addr + "/metrics.bin")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: metrics scrape of %s: %s", addr, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	return obs.DecodeSnapshot(body)
}

// close stops the loop and takes one final synchronous scrape, catching
// anything that changed since the last tick on still-live children.
func (s *metricsScraper) close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
	s.scrapeAll()
	if s.pushSrv != nil {
		s.pushSrv.Close()
	}
}

// merged folds every process's last-good snapshot into one, in target
// registration order (ranks first, then servers).
func (s *metricsScraper) merged() *obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snaps := make([]*obs.Snapshot, 0, len(s.procs))
	for _, p := range s.procs {
		if snap, ok := s.last[p.name]; ok {
			snaps = append(snaps, snap)
		}
	}
	return obs.Merge(snaps...)
}
