package transport

import "sync"

// inbox is the per-rank message queue with source/tag matching — the
// queue machinery of internal/mpi's original mailbox, moved here so
// every transport shares identical matching, ordering, and drain
// semantics regardless of how bytes arrive.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	cause  error // what take reports once closed
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// put appends a message.  Messages delivered after close are dropped:
// the endpoint is dead and nothing will take them.
func (ib *inbox) put(m Message) {
	ib.mu.Lock()
	if !ib.closed {
		ib.queue = append(ib.queue, m)
	}
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// take removes and returns the earliest message matching (src, tag),
// blocking until one arrives or the inbox closes.
func (ib *inbox) take(src, tag int) (Message, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if ib.closed {
			return Message{}, ib.cause
		}
		for i, m := range ib.queue {
			if (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag) {
				ib.queue = append(ib.queue[:i], ib.queue[i+1:]...)
				return m, nil
			}
		}
		ib.cond.Wait()
	}
}

// drain removes every queued message with the given tag (any source),
// preserving the order of the rest, and reports what it discarded.
func (ib *inbox) drain(tag int) (int, int64) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	kept := ib.queue[:0]
	var droppedBytes int64
	for _, m := range ib.queue {
		if m.Tag != tag {
			kept = append(kept, m)
		} else {
			droppedBytes += int64(len(m.Data))
		}
	}
	dropped := len(ib.queue) - len(kept)
	for i := len(kept); i < len(ib.queue); i++ {
		ib.queue[i] = Message{} // release dropped payloads
	}
	ib.queue = kept
	return dropped, droppedBytes
}

// close marks the inbox dead with the given cause (nil means a plain
// Close and reports ErrClosed).  The first cause wins.
func (ib *inbox) close(cause error) {
	if cause == nil {
		cause = ErrClosed
	}
	ib.mu.Lock()
	if !ib.closed {
		ib.closed = true
		ib.cause = cause
	}
	ib.mu.Unlock()
	ib.cond.Broadcast()
}
