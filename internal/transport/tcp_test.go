package transport

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// dialWorld brings up every endpoint of a fabric concurrently.
func dialWorld(t *testing.T, eps []Transport) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(eps))
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep Transport) {
			defer wg.Done()
			if err := ep.Listen(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = ep.Dial()
		}(i, ep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func closeWorld(eps []Transport) {
	for _, ep := range eps {
		ep.Quiesce()
	}
	for _, ep := range eps {
		ep.Close()
	}
}

func TestTCPExchange(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	const n = 4
	eps, err := NewLocalTCPWorld(n, TCPConfig{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dialWorld(t, eps)
	defer closeWorld(eps)

	// Every rank sends one tagged message to every rank (self included).
	var wg sync.WaitGroup
	fail := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := eps[r]
			for dst := 0; dst < n; dst++ {
				if err := ep.Send(dst, 5, []byte(fmt.Sprintf("from %d to %d", r, dst))); err != nil {
					fail <- err
					return
				}
			}
			got := make(map[int]string)
			for i := 0; i < n; i++ {
				m, err := ep.Recv(AnySource, 5)
				if err != nil {
					fail <- err
					return
				}
				got[m.Src] = string(m.Data)
			}
			for src := 0; src < n; src++ {
				want := fmt.Sprintf("from %d to %d", src, r)
				if got[src] != want {
					fail <- fmt.Errorf("rank %d from %d: %q != %q", r, src, got[src], want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// Wire accounting: everything except the self-sends crossed sockets.
	var s WireStats
	for _, ep := range eps {
		st := ep.Stats()
		s.FramesSent += st.FramesSent
		s.FramesRecv += st.FramesRecv
		s.BytesSent += st.BytesSent
		s.BytesRecv += st.BytesRecv
	}
	wantFrames := int64(n * (n - 1))
	if s.FramesSent != wantFrames || s.FramesRecv != wantFrames {
		t.Fatalf("frames sent/recv = %d/%d, want %d", s.FramesSent, s.FramesRecv, wantFrames)
	}
	if s.BytesSent == 0 || s.BytesSent != s.BytesRecv {
		t.Fatalf("wire bytes sent/recv = %d/%d", s.BytesSent, s.BytesRecv)
	}
}

func TestTCPPairFIFOAndWildcards(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	eps, err := NewLocalTCPWorld(2, TCPConfig{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dialWorld(t, eps)
	defer closeWorld(eps)

	const k = 100
	for i := 0; i < k; i++ {
		tag := 1 + i%3
		if err := eps[0].Send(1, tag, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Per (src, tag) streams arrive in send order.
	seen := map[int]int{1: -1, 2: -1, 3: -1}
	for i := 0; i < k; i++ {
		m, err := eps[1].Recv(0, AnyTag)
		if err != nil {
			t.Fatal(err)
		}
		if int(m.Data[0]) <= seen[m.Tag] {
			t.Fatalf("tag %d: %d after %d", m.Tag, m.Data[0], seen[m.Tag])
		}
		seen[m.Tag] = int(m.Data[0])
	}
}

func TestTCPDrainTag(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	eps, err := NewLocalTCPWorld(2, TCPConfig{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dialWorld(t, eps)
	defer closeWorld(eps)

	for i := 0; i < 5; i++ {
		if err := eps[0].Send(1, 9, make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eps[0].Send(1, 8, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// The drain races delivery; take the keeper first so everything has
	// landed (FIFO per pair), then drain.
	if _, err := eps[1].Recv(0, 8); err != nil {
		t.Fatal(err)
	}
	n, bytes := eps[1].DrainTag(9)
	if n != 5 || bytes != 50 {
		t.Fatalf("drained %d msgs / %d bytes, want 5 / 50", n, bytes)
	}
}

func TestTCPLinkLossFailsEndpoint(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	eps, err := NewLocalTCPWorld(2, TCPConfig{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dialWorld(t, eps)
	defer closeWorld(eps)

	// Rank 1 dies without quiescing: rank 0 must see a link failure, not
	// a clean close and not a hang.
	eps[1].Close()
	_, err = eps[0].Recv(1, 1)
	if err == nil || !strings.Contains(err.Error(), "link to rank 1 lost") {
		t.Fatalf("err = %v, want link-loss cause", err)
	}
	// And the failure is sticky for sends too.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if err := eps[0].Send(1, 1, []byte("x")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Send kept succeeding after link loss")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTCPQuiescedShutdownIsClean(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	eps, err := NewLocalTCPWorld(3, TCPConfig{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dialWorld(t, eps)

	// Everyone quiesces, then closes at different times; no endpoint may
	// report a link failure.
	for _, ep := range eps {
		if err := ep.Flush(); err != nil {
			t.Fatal(err)
		}
		ep.Quiesce()
	}
	for _, ep := range eps {
		ep.Close()
		time.Sleep(20 * time.Millisecond) // let peers observe the EOF while others still live
	}
	for r, ep := range eps {
		if _, err := ep.Recv(AnySource, AnyTag); err != ErrClosed {
			t.Fatalf("rank %d: err = %v, want ErrClosed", r, err)
		}
	}
}

func TestTCPCoalescing(t *testing.T) {
	t.Cleanup(testutil.LeakCheck(t))
	eps, err := NewLocalTCPWorld(2, TCPConfig{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dialWorld(t, eps)
	defer closeWorld(eps)

	const k = 200
	for i := 0; i < k; i++ {
		if err := eps[0].Send(1, 1, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		if _, err := eps[1].Recv(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := eps[0].Stats()
	if st.FramesSent != k {
		t.Fatalf("FramesSent = %d, want %d", st.FramesSent, k)
	}
	if st.Flushes == 0 || st.Flushes > st.FramesSent {
		t.Fatalf("Flushes = %d (frames %d)", st.Flushes, st.FramesSent)
	}
	t.Logf("coalescing: %d frames in %d flushes", st.FramesSent, st.Flushes)
}
