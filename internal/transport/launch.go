package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"
)

// Launcher: fork one OS process per rank — and, optionally, one per
// I/O server — and supervise them.  The parent binds every listening
// socket itself and passes each to its child (ExtraFiles → fd 3), so
// ports are chosen by the kernel yet never raced: rank 0 inherits the
// rendezvous listener, each I/O server inherits its service listener,
// and every rank gets the final rendezvous and server addresses on its
// command line before any child starts.

// LaunchOptions configures one multi-process run.
type LaunchOptions struct {
	// Size is the number of ranks (one process each).
	Size int
	// Exe is the binary every rank and server runs.
	Exe string
	// Args builds rank r's argument list.  rendezvous is the bound
	// rank-0 address; rank 0 should be told to adopt inherited fd
	// RendezvousFD instead of binding it.  serverAddrs lists the bound
	// I/O-server addresses, in server order (empty when Servers is 0).
	Args func(rank int, rendezvous string, serverAddrs []string) []string
	// Servers is the number of I/O-server processes launched alongside
	// the ranks.  Each server adopts its pre-bound service listener at
	// fd RendezvousFD.  Servers outlive the ranks: when every rank has
	// exited cleanly the launcher stops them with an interrupt signal
	// (so they can flush traces and sync their stripes) and escalates
	// to a kill after ServerStopTimeout.  A server that dies while
	// ranks are still running is restarted on its inherited listener
	// when ServerRestarts allows, and fails the whole run otherwise.
	Servers int
	// ServerArgs builds server s's argument list (required when
	// Servers > 0).
	ServerArgs func(idx int) []string
	// ServerRestarts bounds automatic restarts per crashed server (0 =
	// no supervision: any premature server death fails the run).
	ServerRestarts int
	// ServerRestartBackoff delays the first restart of a server,
	// doubling per consecutive restart (default 50ms).
	ServerRestartBackoff time.Duration
	// KillServerAfter, when positive, SIGKILLs server KillServerIdx
	// that long after launch — the fault-injection hook of the
	// kill-and-restart harness.
	KillServerAfter time.Duration
	KillServerIdx   int
	// ServerStopTimeout bounds the graceful server shutdown after the
	// ranks finish (default 10s).
	ServerStopTimeout time.Duration
	// Stdout / Stderr receive the children's output, each line prefixed
	// "[rank N] " or "[srv N] ".  Defaults: os.Stdout / os.Stderr.
	Stdout, Stderr io.Writer
	// Timeout kills every rank if the run outlives it (0 = no limit).
	Timeout time.Duration
	// Env, when non-nil, replaces the children's environment.
	Env []string
	// Metrics, when non-nil, enables launcher-side metrics aggregation:
	// every child inherits a pre-bound metrics listener (the launcher
	// appends the fd flag itself), the launcher scrapes all of them
	// periodically, and the merged run report lands on Metrics.Report
	// when the run ends.  See MetricsOptions.
	Metrics *MetricsOptions
	// OnServerRestart is invoked just before a crashed server is
	// restarted (attempt counts from 1) — the hook the flight-recorder
	// machinery uses to preserve the dead instance's dump before the
	// replacement overwrites it.
	OnServerRestart func(idx, attempt int)
}

// RendezvousFD is the file descriptor number at which rank 0's child
// process inherits the pre-bound rendezvous listener, and each
// I/O-server child its pre-bound service listener (the first
// ExtraFiles slot).
const RendezvousFD = 3

// ListenerFromFD adopts an inherited listening socket, e.g. the
// rendezvous listener the launcher passes rank 0 at RendezvousFD.
func ListenerFromFD(fd int) (net.Listener, error) {
	f := os.NewFile(uintptr(fd), "rendezvous")
	if f == nil {
		return nil, fmt.Errorf("transport: invalid inherited fd %d", fd)
	}
	defer f.Close()
	ln, err := net.FileListener(f)
	if err != nil {
		return nil, fmt.Errorf("transport: adopting inherited fd %d: %w", fd, err)
	}
	return ln, nil
}

// bindInherited binds an ephemeral 127.0.0.1 listener and returns its
// address plus the dup'd file that keeps the socket alive for a child.
func bindInherited() (addr string, lf *os.File, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	addr = ln.Addr().String()
	lf, err = ln.(*net.TCPListener).File()
	ln.Close() // the dup in lf keeps the listening socket alive
	if err != nil {
		return "", nil, err
	}
	return addr, lf, nil
}

// Launch runs Size rank processes (plus Servers I/O-server processes)
// to completion.  The first rank or premature server to fail (or an
// overall timeout) kills the rest; the returned error names that first
// failure.
func Launch(opts LaunchOptions) error {
	if opts.Size <= 0 {
		return errors.New("transport: launch needs at least one rank")
	}
	if opts.Exe == "" || opts.Args == nil {
		return errors.New("transport: launch needs Exe and Args")
	}
	if opts.Servers > 0 && opts.ServerArgs == nil {
		return errors.New("transport: launch with Servers needs ServerArgs")
	}
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	if opts.ServerStopTimeout <= 0 {
		opts.ServerStopTimeout = 10 * time.Second
	}

	mOpts := opts.Metrics
	var scraper *metricsScraper
	if mOpts != nil {
		if mOpts.Interval <= 0 {
			mOpts.Interval = DefaultScrapeInterval
		}
		if mOpts.FlagName == "" {
			mOpts.FlagName = "-metrics-fd"
		}
		if mOpts.PushFlagName == "" {
			mOpts.PushFlagName = "-metrics-push"
		}
		if mOpts.Report == nil {
			mOpts.Report = opts.Stdout
		}
		scraper = newMetricsScraper(mOpts.Interval)
	}
	var pushAddr string
	if scraper != nil {
		addr, err := scraper.listenPush()
		if err != nil {
			return fmt.Errorf("transport: binding metrics collector: %w", err)
		}
		pushAddr = addr
	}

	rendezvous, lf, err := bindInherited()
	if err != nil {
		return fmt.Errorf("transport: binding rendezvous: %w", err)
	}
	defer lf.Close()

	serverAddrs := make([]string, opts.Servers)
	serverLfs := make([]*os.File, opts.Servers)
	serverMetricsLfs := make([]*os.File, opts.Servers)
	for s := range serverLfs {
		addr, slf, err := bindInherited()
		if err != nil {
			return fmt.Errorf("transport: binding server %d listener: %w", s, err)
		}
		serverAddrs[s] = addr
		serverLfs[s] = slf
		defer slf.Close()
		if scraper != nil {
			// The metrics listener is pool-owned like the service
			// listener: it survives restarts, so a restarted server
			// serves metrics at the same address.
			maddr, mlf, err := bindInherited()
			if err != nil {
				return fmt.Errorf("transport: binding server %d metrics listener: %w", s, err)
			}
			serverMetricsLfs[s] = mlf
			defer mlf.Close()
			scraper.add(fmt.Sprintf("srv%d", s), maddr, mOpts.Announce)
		}
	}

	var outMu sync.Mutex
	rankCmds := make([]*exec.Cmd, opts.Size)
	var wMu sync.Mutex // server restarts append from supervision goroutines
	writers := make([]*prefixWriter, 0, 2*(opts.Size+opts.Servers))

	start := func(prefix string, args []string, extras ...*os.File) (*exec.Cmd, error) {
		cmd := exec.Command(opts.Exe, args...)
		if opts.Env != nil {
			cmd.Env = opts.Env
		}
		if len(extras) > 0 {
			cmd.ExtraFiles = extras
		}
		ow := &prefixWriter{mu: &outMu, w: opts.Stdout, prefix: []byte(prefix)}
		ew := &prefixWriter{mu: &outMu, w: opts.Stderr, prefix: []byte(prefix)}
		cmd.Stdout, cmd.Stderr = ow, ew
		wMu.Lock()
		writers = append(writers, ow, ew)
		wMu.Unlock()
		return cmd, cmd.Start()
	}

	// The servers run under a supervised pool: premature deaths restart
	// (within ServerRestarts) on the inherited listeners, so a crashed
	// server comes back at the same address mid-run.
	var pool *ServerPool
	if opts.Servers > 0 {
		pool, err = StartServerPool(ServerPoolOptions{
			Listeners:      serverLfs,
			MaxRestarts:    opts.ServerRestarts,
			RestartBackoff: opts.ServerRestartBackoff,
			OnRestart:      opts.OnServerRestart,
			StartProc: func(idx int, listener *os.File) (*exec.Cmd, error) {
				args := opts.ServerArgs(idx)
				extras := []*os.File{listener}
				if scraper != nil {
					args = append(args, mOpts.FlagName, strconv.Itoa(RendezvousFD+len(extras)),
						mOpts.PushFlagName, pushAddr)
					extras = append(extras, serverMetricsLfs[idx])
				}
				return start(fmt.Sprintf("[srv %d] ", idx), args, extras...)
			},
		})
		if err != nil {
			return err
		}
	}
	var killOnce sync.Once
	killAll := func() {
		killOnce.Do(func() {
			for _, c := range rankCmds {
				if c != nil && c.Process != nil {
					c.Process.Kill()
				}
			}
			if pool != nil {
				pool.Stop(false)
			}
		})
	}

	type childExit struct {
		idx int
		err error
	}
	exits := make(chan childExit, opts.Size)
	var firstErr error
	ranksRunning := 0
	for r := 0; r < opts.Size && firstErr == nil; r++ {
		var extras []*os.File
		if r == 0 {
			extras = append(extras, lf)
		}
		args := opts.Args(r, rendezvous, serverAddrs)
		if scraper != nil {
			maddr, mlf, err := bindInherited()
			if err != nil {
				firstErr = fmt.Errorf("transport: binding rank %d metrics listener: %w", r, err)
				killAll()
				break
			}
			defer mlf.Close()
			args = append(args, mOpts.FlagName, strconv.Itoa(RendezvousFD+len(extras)),
				mOpts.PushFlagName, pushAddr)
			extras = append(extras, mlf)
			scraper.add(fmt.Sprintf("rank%d", r), maddr, mOpts.Announce)
		}
		cmd, err := start(fmt.Sprintf("[rank %d] ", r), args, extras...)
		if err != nil {
			firstErr = fmt.Errorf("transport: starting rank %d: %w", r, err)
			killAll()
			break
		}
		rankCmds[r] = cmd
		ranksRunning++
		go func(r int, c *exec.Cmd) { exits <- childExit{r, c.Wait()} }(r, cmd)
	}
	if scraper != nil {
		scraper.start()
	}

	var timer <-chan time.Time
	if opts.Timeout > 0 {
		timer = time.After(opts.Timeout)
	}
	var poolFailures <-chan error
	var chaosTimer <-chan time.Time
	poolDone := make(chan struct{})
	if pool != nil {
		poolFailures = pool.Failures()
		go func() { pool.Wait(); close(poolDone) }()
		if opts.KillServerAfter > 0 {
			chaosTimer = time.After(opts.KillServerAfter)
		}
	} else {
		close(poolDone)
	}
	stopping := false // graceful server shutdown initiated
	srvDone := pool == nil
	var stopTimer <-chan time.Time
	for ranksRunning > 0 || !srvDone {
		if ranksRunning == 0 && !stopping {
			// Every rank is done: take a final scrape of the servers
			// while they are still up, then ask them to finish.
			stopping = true
			if firstErr != nil {
				killAll()
			} else if pool != nil {
				if scraper != nil {
					scraper.scrapeAll()
				}
				pool.Stop(true)
				stopTimer = time.After(opts.ServerStopTimeout)
			}
		}
		select {
		case e := <-exits:
			ranksRunning--
			if e.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("transport: rank %d: %w", e.idx, e.err)
				}
				killAll()
			}
		case err := <-poolFailures:
			if firstErr == nil {
				firstErr = err
			}
			killAll()
		case <-poolDone:
			srvDone = true
			poolDone = nil // a nil channel never fires again
		case <-chaosTimer:
			pool.Kill(opts.KillServerIdx)
			chaosTimer = nil
		case <-timer:
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: launch timed out after %v", opts.Timeout)
			}
			killAll()
			timer = nil
		case <-stopTimer:
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: servers did not stop within %v", opts.ServerStopTimeout)
			}
			killAll()
			stopTimer = nil
		}
	}
	// Drain any shutdown-phase pool failure that raced the loop exit.
	if poolFailures != nil && firstErr == nil {
		select {
		case err := <-poolFailures:
			firstErr = err
		default:
		}
	}
	for _, w := range writers {
		w.flushTail()
	}
	if scraper != nil {
		scraper.close()
		if merged := scraper.merged(); mOpts.Report != nil && merged.Procs > 0 {
			fmt.Fprintf(mOpts.Report, "=== merged run metrics ===\n%s", merged.Table())
		}
	}
	return firstErr
}

// serverExitError classifies one server's exit.  Before the graceful
// shutdown any exit is premature death; during it only a real non-zero
// exit counts (dying to the stop signal or the escalation kill is the
// expected mechanism, not a failure).
func serverExitError(idx int, err error, stopping bool) error {
	if err == nil {
		if !stopping {
			return fmt.Errorf("transport: server %d exited before the ranks finished", idx)
		}
		return nil
	}
	if stopping {
		var xe *exec.ExitError
		if errors.As(err, &xe) && xe.ExitCode() == -1 {
			return nil // signal-terminated during shutdown
		}
	}
	return fmt.Errorf("transport: server %d: %w", idx, err)
}

// prefixWriter prefixes each complete line of one child stream; the
// shared mutex keeps ranks' lines from interleaving mid-line.  exec
// writes each stream from a single copier goroutine, so buf needs no
// lock of its own.
type prefixWriter struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix []byte
	buf    []byte
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.buf = append(p.buf, b...)
	for {
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			return len(b), nil
		}
		p.mu.Lock()
		p.w.Write(p.prefix)
		p.w.Write(p.buf[:i+1])
		p.mu.Unlock()
		p.buf = p.buf[i+1:]
	}
}

// flushTail emits any unterminated final line after the child exits.
func (p *prefixWriter) flushTail() {
	if len(p.buf) == 0 {
		return
	}
	p.mu.Lock()
	p.w.Write(p.prefix)
	p.w.Write(p.buf)
	p.w.Write([]byte("\n"))
	p.mu.Unlock()
	p.buf = nil
}
