package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Launcher: fork one OS process per rank and supervise them.  The
// parent binds the rendezvous socket itself and passes the listening
// fd to rank 0 (ExtraFiles → fd 3), so the port is chosen by the
// kernel yet never raced: every other rank gets the final address on
// its command line before any child starts.

// LaunchOptions configures one multi-process run.
type LaunchOptions struct {
	// Size is the number of ranks (one process each).
	Size int
	// Exe is the binary every rank runs.
	Exe string
	// Args builds rank r's argument list.  rendezvous is the bound
	// rank-0 address; rank 0 should be told to adopt inherited fd
	// RendezvousFD instead of binding it.
	Args func(rank int, rendezvous string) []string
	// Stdout / Stderr receive the children's output, each line prefixed
	// "[rank N] ".  Defaults: os.Stdout / os.Stderr.
	Stdout, Stderr io.Writer
	// Timeout kills every rank if the run outlives it (0 = no limit).
	Timeout time.Duration
	// Env, when non-nil, replaces the children's environment.
	Env []string
}

// RendezvousFD is the file descriptor number at which rank 0's child
// process inherits the pre-bound rendezvous listener (the first
// ExtraFiles slot).
const RendezvousFD = 3

// ListenerFromFD adopts an inherited listening socket, e.g. the
// rendezvous listener the launcher passes rank 0 at RendezvousFD.
func ListenerFromFD(fd int) (net.Listener, error) {
	f := os.NewFile(uintptr(fd), "rendezvous")
	if f == nil {
		return nil, fmt.Errorf("transport: invalid inherited fd %d", fd)
	}
	defer f.Close()
	ln, err := net.FileListener(f)
	if err != nil {
		return nil, fmt.Errorf("transport: adopting inherited fd %d: %w", fd, err)
	}
	return ln, nil
}

// Launch runs Size rank processes to completion.  The first rank to
// fail (or an overall timeout) kills the rest; the returned error names
// that first failure.
func Launch(opts LaunchOptions) error {
	if opts.Size <= 0 {
		return errors.New("transport: launch needs at least one rank")
	}
	if opts.Exe == "" || opts.Args == nil {
		return errors.New("transport: launch needs Exe and Args")
	}
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("transport: binding rendezvous: %w", err)
	}
	rendezvous := ln.Addr().String()
	lf, err := ln.(*net.TCPListener).File()
	ln.Close() // the dup in lf keeps the listening socket alive
	if err != nil {
		return fmt.Errorf("transport: dup rendezvous fd: %w", err)
	}
	defer lf.Close()

	var outMu sync.Mutex
	cmds := make([]*exec.Cmd, opts.Size)
	writers := make([]*prefixWriter, 0, 2*opts.Size)
	var killOnce sync.Once
	killAll := func() {
		killOnce.Do(func() {
			for _, c := range cmds {
				if c != nil && c.Process != nil {
					c.Process.Kill()
				}
			}
		})
	}

	type rankExit struct {
		rank int
		err  error
	}
	exits := make(chan rankExit, opts.Size)
	started := 0
	var firstErr error
	for r := 0; r < opts.Size; r++ {
		cmd := exec.Command(opts.Exe, opts.Args(r, rendezvous)...)
		if opts.Env != nil {
			cmd.Env = opts.Env
		}
		if r == 0 {
			cmd.ExtraFiles = []*os.File{lf}
		}
		ow := &prefixWriter{mu: &outMu, w: opts.Stdout, prefix: []byte(fmt.Sprintf("[rank %d] ", r))}
		ew := &prefixWriter{mu: &outMu, w: opts.Stderr, prefix: []byte(fmt.Sprintf("[rank %d] ", r))}
		cmd.Stdout, cmd.Stderr = ow, ew
		writers = append(writers, ow, ew)
		if err := cmd.Start(); err != nil {
			firstErr = fmt.Errorf("transport: starting rank %d: %w", r, err)
			killAll()
			break
		}
		cmds[r] = cmd
		started++
		go func(r int, c *exec.Cmd) { exits <- rankExit{r, c.Wait()} }(r, cmd)
	}

	var timer <-chan time.Time
	if opts.Timeout > 0 {
		timer = time.After(opts.Timeout)
	}
	for remaining := started; remaining > 0; {
		select {
		case e := <-exits:
			remaining--
			if e.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("transport: rank %d: %w", e.rank, e.err)
				}
				killAll()
			}
		case <-timer:
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: launch timed out after %v", opts.Timeout)
			}
			killAll()
			timer = nil
		}
	}
	for _, w := range writers {
		w.flushTail()
	}
	return firstErr
}

// prefixWriter prefixes each complete line of one child stream; the
// shared mutex keeps ranks' lines from interleaving mid-line.  exec
// writes each stream from a single copier goroutine, so buf needs no
// lock of its own.
type prefixWriter struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix []byte
	buf    []byte
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.buf = append(p.buf, b...)
	for {
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			return len(b), nil
		}
		p.mu.Lock()
		p.w.Write(p.prefix)
		p.w.Write(p.buf[:i+1])
		p.mu.Unlock()
		p.buf = p.buf[i+1:]
	}
}

// flushTail emits any unterminated final line after the child exits.
func (p *prefixWriter) flushTail() {
	if len(p.buf) == 0 {
		return
	}
	p.mu.Lock()
	p.w.Write(p.prefix)
	p.w.Write(p.buf)
	p.w.Write([]byte("\n"))
	p.mu.Unlock()
	p.buf = nil
}
