package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire framing: every message crosses a link as one length-prefixed
// frame.  The header is fixed-size little-endian —
//
//	[0:4)  uint32  payload length
//	[4:8)  int32   source rank
//	[8:12) int32   tag
//
// followed by the payload bytes.  Per-pair ordering is the TCP stream's
// own; no sequence numbers are needed.  Negative tags are reserved for
// the transport's control frames (rendezvous hello and address book);
// internal/mpi never sends them.
const (
	// FrameHeaderSize is the fixed frame-header length in bytes.
	FrameHeaderSize = 12

	// DefaultMaxFrame bounds the payload length a decoder accepts.  A
	// garbage or hostile header must never make the reader allocate an
	// absurd buffer; anything larger than this is a frame error.
	DefaultMaxFrame = 1 << 30
)

// Control tags of the rendezvous handshake.
const (
	tagHello = -2 // payload: the sender's listen address (may be empty on pair links)
	tagBook  = -3 // payload: the encoded rank→address book
)

// ErrFrame is wrapped by every frame-decoding error.
var ErrFrame = errors.New("transport: bad frame")

// appendFrame appends the encoded frame to dst and returns it.
func appendFrame(dst []byte, src, tag int, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(int32(src)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(int32(tag)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the front of b, returning the
// envelope, the payload (aliasing b), and the remaining bytes.  A
// truncated, oversized, or garbage header returns an error wrapping
// ErrFrame; DecodeFrame never panics and never allocates.
func DecodeFrame(b []byte, maxFrame int) (src, tag int, payload, rest []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(b) < FrameHeaderSize {
		return 0, 0, nil, nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrFrame, len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > uint32(maxFrame) {
		return 0, 0, nil, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, n, maxFrame)
	}
	src = int(int32(binary.LittleEndian.Uint32(b[4:8])))
	tag = int(int32(binary.LittleEndian.Uint32(b[8:12])))
	if uint32(len(b)-FrameHeaderSize) < n {
		return 0, 0, nil, nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrFrame, len(b)-FrameHeaderSize, n)
	}
	end := FrameHeaderSize + int(n)
	return src, tag, b[FrameHeaderSize:end:end], b[end:], nil
}

// readFrame reads one frame from r.  The payload buffer is freshly
// allocated, at most maxFrame bytes — the length is validated before
// any allocation, so a garbage header cannot over-allocate.
func readFrame(r io.Reader, maxFrame int) (src, tag int, payload []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err // EOF between frames is a link event, not a frame error
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > uint32(maxFrame) {
		return 0, 0, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, n, maxFrame)
	}
	src = int(int32(binary.LittleEndian.Uint32(hdr[4:8])))
	tag = int(int32(binary.LittleEndian.Uint32(hdr[8:12])))
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrFrame, err)
	}
	return src, tag, payload, nil
}

// Address-book wire form: count, then count length-prefixed strings,
// all as uvarints.  Decoding tolerates garbage (the payload crossed the
// wire) by erroring, never panicking.

func encodeBook(addrs []string) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func decodeBook(b []byte, wantSize int) ([]string, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n != uint64(wantSize) {
		return nil, fmt.Errorf("%w: address book for %d ranks, want %d", ErrFrame, n, wantSize)
	}
	b = b[k:]
	addrs := make([]string, wantSize)
	for i := range addrs {
		ln, k := binary.Uvarint(b)
		if k <= 0 || ln > uint64(len(b)-k) {
			return nil, fmt.Errorf("%w: truncated address book entry %d", ErrFrame, i)
		}
		b = b[k:]
		addrs[i] = string(b[:ln])
		b = b[ln:]
	}
	return addrs, nil
}
