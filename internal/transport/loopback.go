package transport

import (
	"errors"
	"fmt"
)

// ErrClosed is the cause Recv and Send report after a plain Close.
// Transport failures (a lost TCP link, a deadline) report their own
// causes, which do not wrap ErrClosed.
var ErrClosed = errors.New("transport: endpoint closed")

// loopbackFabric is the shared state of one in-process world: every
// endpoint can reach every inbox directly.
type loopbackFabric struct {
	inboxes []*inbox
}

// Loopback is the in-process transport: Send is one function call that
// appends to the destination rank's inbox, exactly the seed's
// shared-memory mailbox delivery.  Zero goroutines, zero wire bytes.
type Loopback struct {
	fab  *loopbackFabric
	rank int
}

// NewLoopback creates the endpoints of an n-rank in-process fabric.
func NewLoopback(n int) []Transport {
	fab := &loopbackFabric{inboxes: make([]*inbox, n)}
	for i := range fab.inboxes {
		fab.inboxes[i] = newInbox()
	}
	eps := make([]Transport, n)
	for r := range eps {
		eps[r] = &Loopback{fab: fab, rank: r}
	}
	return eps
}

// Rank implements Transport.
func (l *Loopback) Rank() int { return l.rank }

// Size implements Transport.
func (l *Loopback) Size() int { return len(l.fab.inboxes) }

// Listen implements Transport (nothing to bind in-process).
func (l *Loopback) Listen() error { return nil }

// Dial implements Transport (every peer is already reachable).
func (l *Loopback) Dial() error { return nil }

// Send implements Transport: copy, then deliver directly.
func (l *Loopback) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= len(l.fab.inboxes) {
		return fmt.Errorf("transport: send to invalid rank %d", dst)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	l.fab.inboxes[dst].put(Message{Src: l.rank, Tag: tag, Data: buf})
	return nil
}

// SendNoCopy implements Transport: deliver directly without copying.
// The same slice travels from sender to receiver — the zero-copy
// loopback mailbox — so ownership passes end-to-end: the receiver may
// recycle the payload into a buffer pool.
func (l *Loopback) SendNoCopy(dst, tag int, data []byte) error {
	if dst < 0 || dst >= len(l.fab.inboxes) {
		return fmt.Errorf("transport: send to invalid rank %d", dst)
	}
	l.fab.inboxes[dst].put(Message{Src: l.rank, Tag: tag, Data: data})
	return nil
}

// Recv implements Transport.
func (l *Loopback) Recv(src, tag int) (Message, error) {
	return l.fab.inboxes[l.rank].take(src, tag)
}

// DrainTag implements Transport.
func (l *Loopback) DrainTag(tag int) (int, int64) {
	return l.fab.inboxes[l.rank].drain(tag)
}

// Flush implements Transport (deliveries are synchronous).
func (l *Loopback) Flush() error { return nil }

// Quiesce implements Transport (there are no links to lose).
func (l *Loopback) Quiesce() {}

// Close implements Transport: only this rank's inbox closes, mirroring
// the original per-mailbox close during a world abort.
func (l *Loopback) Close() error {
	l.fab.inboxes[l.rank].close(nil)
	return nil
}

// Stats implements Transport: nothing crosses a wire in-process.
func (l *Loopback) Stats() WireStats { return WireStats{} }
