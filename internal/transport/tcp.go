package transport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
	"repro/internal/trace"
)

// TCP transport: one stream per rank pair, framed messages, a rank-0
// rendezvous that distributes the address book.
//
// Connection topology: every rank binds a listener.  Rank 0's listener
// is the rendezvous — every other rank dials it, sends a hello frame
// carrying its own listen address, and receives the completed address
// book back; that rendezvous connection then serves as the 0↔r pair
// link.  For the remaining pairs, the higher rank dials the lower
// rank's listed address (so each pair has exactly one stream), sends a
// hello to identify itself, and both sides attach reader/writer
// goroutines.  Once every link exists the listeners close.
//
// Each link has a writer goroutine with an outbound frame queue: Send
// enqueues and returns (buffered semantics, like the in-process
// world), and the writer drains the whole queue into one buffered
// flush — write coalescing: n queued frames cost one syscall batch,
// visible as FramesSent/Flushes in WireStats.  Write and handshake
// deadlines come from Config.Deadline or, when unset, from the stall
// watchdog via SetDeadline; a peer that stops draining its socket
// fails the endpoint instead of wedging it forever.

// TCPConfig parameterizes one rank's TCP endpoint.
type TCPConfig struct {
	Rank, Size int
	// Rendezvous is rank 0's well-known address (host:port).  Rank 0
	// binds it (unless Listener is set); other ranks dial it.
	Rendezvous string
	// Listener, when non-nil, is a pre-bound listening socket to use
	// instead of binding Rendezvous or ListenAddr — the launcher passes
	// rank 0 its rendezvous socket this way (no bind race), and tests
	// inject pre-bound ephemeral listeners.
	Listener net.Listener
	// ListenAddr is the address non-zero ranks bind for inbound pair
	// links (default "127.0.0.1:0").
	ListenAddr string
	// Deadline bounds every link write (per flush) and the whole
	// rendezvous handshake.  Zero means no write deadline and a default
	// handshake timeout; internal/mpi's stall watchdog installs its
	// timeout here via SetDeadline when the flag is zero.
	Deadline time.Duration
	// MaxFrame bounds accepted payload lengths (default DefaultMaxFrame).
	MaxFrame int
	// WriteBuf is the target size of one coalesced vectored write
	// (default 256 KiB); a drained queue larger than this is split into
	// WriteBuf-sized writev batches.
	WriteBuf int
	// Trace, when non-nil, records wire.send / wire.recv spans on this
	// rank's wire track.
	Trace *trace.Collector
	// Pool supplies inbound payload buffers and receives outbound
	// payloads back after they hit the socket (SendNoCopy transfers
	// ownership of the payload to the transport; the reader's delivered
	// payloads are owned by the receiver, which may Put them to any
	// pool).  Nil selects pool.Global; DisablePool turns pooling off.
	Pool *pool.Pool
	// DisablePool makes the endpoint allocate every payload and drop
	// every sent one — the unpooled ablation.
	DisablePool bool
	// WireChaos, when enabled, wraps every pair link (after the
	// handshake) in a fault-injecting ChaosConn.  The mailbox links
	// assume reliable delivery, so anything beyond latency spikes
	// (WireChaosConfig.SpikeOnly) will eventually fail the endpoint —
	// which is itself a legitimate thing for a test to watch.
	WireChaos *WireChaosConfig
}

const (
	defaultHandshakeTimeout = 30 * time.Second
	defaultWriteBuf         = 256 << 10
	readBufSize             = 64 << 10
	maxCtrlFrame            = 64 << 10
)

// TCP is one rank's endpoint of a TCP fabric.
type TCP struct {
	cfg TCPConfig
	tr  *trace.Tracer
	ib  *inbox

	ln    net.Listener
	links []*link // by peer rank; nil for self

	mu       sync.Mutex
	closed   bool
	quiesced atomic.Bool
	deadline atomic.Int64 // write/handshake deadline, ns

	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
	flushes                atomic.Int64
}

// NewTCP creates an unconnected endpoint; Listen then Dial bring it up.
func NewTCP(cfg TCPConfig) *TCP {
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.WriteBuf <= 0 {
		cfg.WriteBuf = defaultWriteBuf
	}
	if cfg.DisablePool {
		cfg.Pool = nil // nil *Pool: Get allocates, Put drops
	} else if cfg.Pool == nil {
		cfg.Pool = pool.Global
	}
	t := &TCP{
		cfg:   cfg,
		tr:    cfg.Trace.Tracer(cfg.Rank),
		ib:    newInbox(),
		links: make([]*link, cfg.Size),
	}
	t.deadline.Store(int64(cfg.Deadline))
	return t
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.cfg.Rank }

// Size implements Transport.
func (t *TCP) Size() int { return t.cfg.Size }

// SetDeadline installs the write/handshake deadline if the config left
// it zero — the seam internal/mpi uses to wire the stall watchdog's
// timeout to the wire.
func (t *TCP) SetDeadline(d time.Duration) {
	if t.cfg.Deadline == 0 && d > 0 {
		t.deadline.Store(int64(d))
	}
}

func (t *TCP) deadlineDur() time.Duration { return time.Duration(t.deadline.Load()) }

func (t *TCP) handshakeDeadline() time.Time {
	d := t.deadlineDur()
	if d <= 0 {
		d = defaultHandshakeTimeout
	}
	return time.Now().Add(d)
}

// Listen implements Transport: bind this rank's listening socket.
func (t *TCP) Listen() error {
	if t.cfg.Size < 1 || t.cfg.Rank < 0 || t.cfg.Rank >= t.cfg.Size {
		return fmt.Errorf("transport: rank %d of world size %d", t.cfg.Rank, t.cfg.Size)
	}
	if t.cfg.Listener != nil {
		t.ln = t.cfg.Listener
		return nil
	}
	addr := t.cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if t.cfg.Rank == 0 && t.cfg.Rendezvous != "" {
		addr = t.cfg.Rendezvous
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.ln = ln
	return nil
}

// Dial implements Transport: the rendezvous handshake plus the pairwise
// links.  On return every peer is reachable and the listener is closed.
func (t *TCP) Dial() error {
	if t.ln == nil {
		if err := t.Listen(); err != nil {
			return err
		}
	}
	defer func() {
		if t.ln != nil {
			t.ln.Close()
			t.ln = nil
		}
	}()
	hs := t.handshakeDeadline()
	var err error
	if t.cfg.Rank == 0 {
		err = t.dialAsRoot(hs)
	} else {
		err = t.dialAsPeer(hs)
	}
	if err != nil {
		t.closeWith(fmt.Errorf("transport: rendezvous failed on rank %d: %w", t.cfg.Rank, err))
		return err
	}
	for _, l := range t.links {
		if l != nil {
			l.start()
		}
	}
	return nil
}

// dialAsRoot runs rank 0's side: collect hellos, distribute the book.
func (t *TCP) dialAsRoot(hs time.Time) error {
	addrs := make([]string, t.cfg.Size)
	addrs[0] = t.ln.Addr().String()
	conns := make([]net.Conn, t.cfg.Size)
	if tl, ok := t.ln.(*net.TCPListener); ok {
		tl.SetDeadline(hs)
	}
	for got := 1; got < t.cfg.Size; {
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("waiting for %d more ranks: %w", t.cfg.Size-got, err)
		}
		conn.SetDeadline(hs)
		src, tag, addr, err := readFrame(conn, maxCtrlFrame)
		if err != nil || tag != tagHello || src < 1 || src >= t.cfg.Size || conns[src] != nil {
			conn.Close() // stray or duplicate connection; the real rank will retry or fail itself
			continue
		}
		conns[src] = conn
		addrs[src] = string(addr)
		got++
	}
	book := encodeBook(addrs)
	for r := 1; r < t.cfg.Size; r++ {
		if _, err := conns[r].Write(appendFrame(nil, 0, tagBook, book)); err != nil {
			return fmt.Errorf("sending address book to rank %d: %w", r, err)
		}
		conns[r].SetDeadline(time.Time{})
		t.links[r] = newLink(t, r, conns[r])
	}
	return nil
}

// dialAsPeer runs every other rank's side: register at the rendezvous,
// receive the book, dial lower ranks, accept higher ranks.
func (t *TCP) dialAsPeer(hs time.Time) error {
	conn, err := dialRetry(t.cfg.Rendezvous, hs)
	if err != nil {
		return fmt.Errorf("dialing rendezvous %s: %w", t.cfg.Rendezvous, err)
	}
	conn.SetDeadline(hs)
	if _, err := conn.Write(appendFrame(nil, t.cfg.Rank, tagHello, []byte(t.ln.Addr().String()))); err != nil {
		return fmt.Errorf("hello to rendezvous: %w", err)
	}
	src, tag, payload, err := readFrame(conn, maxCtrlFrame)
	if err != nil || src != 0 || tag != tagBook {
		return fmt.Errorf("reading address book (src=%d tag=%d): %w", src, tag, err)
	}
	book, err := decodeBook(payload, t.cfg.Size)
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Time{})
	t.links[0] = newLink(t, 0, conn)

	// Dial every lower rank (the higher rank of a pair dials).
	for j := 1; j < t.cfg.Rank; j++ {
		c, err := dialRetry(book[j], hs)
		if err != nil {
			return fmt.Errorf("dialing rank %d at %s: %w", j, book[j], err)
		}
		c.SetDeadline(hs)
		if _, err := c.Write(appendFrame(nil, t.cfg.Rank, tagHello, nil)); err != nil {
			return fmt.Errorf("hello to rank %d: %w", j, err)
		}
		c.SetDeadline(time.Time{})
		t.links[j] = newLink(t, j, c)
	}

	// Accept every higher rank.
	if tl, ok := t.ln.(*net.TCPListener); ok {
		tl.SetDeadline(hs)
	}
	for need := t.cfg.Size - t.cfg.Rank - 1; need > 0; {
		c, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("waiting for %d higher ranks: %w", need, err)
		}
		c.SetDeadline(hs)
		src, tag, _, err := readFrame(c, maxCtrlFrame)
		if err != nil || tag != tagHello || src <= t.cfg.Rank || src >= t.cfg.Size || t.links[src] != nil {
			c.Close()
			continue
		}
		c.SetDeadline(time.Time{})
		t.links[src] = newLink(t, src, c)
		need--
	}
	return nil
}

// dialRetry dials addr until it succeeds or the handshake deadline
// passes; peers race the rendezvous bind, so early refusals retry.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	for {
		timeout := time.Until(deadline)
		if timeout <= 0 {
			return nil, fmt.Errorf("handshake deadline exceeded dialing %s", addr)
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if time.Until(deadline) < 10*time.Millisecond {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Send implements Transport.  The staging copy comes from the endpoint
// pool and is recycled after it hits the socket.
func (t *TCP) Send(dst, tag int, data []byte) error {
	buf := t.cfg.Pool.Get(len(data))
	copy(buf, data)
	return t.SendNoCopy(dst, tag, buf)
}

// SendNoCopy implements Transport.
func (t *TCP) SendNoCopy(dst, tag int, data []byte) error {
	if dst < 0 || dst >= t.cfg.Size {
		return fmt.Errorf("transport: send to invalid rank %d", dst)
	}
	if tag < 0 {
		return fmt.Errorf("transport: tag %d is reserved", tag)
	}
	if dst == t.cfg.Rank {
		// Self-sends never touch the wire (an IOP that is also an AP).
		t.ib.put(Message{Src: t.cfg.Rank, Tag: tag, Data: data})
		return nil
	}
	l := t.links[dst]
	if l == nil {
		return fmt.Errorf("transport: no link to rank %d (endpoint not dialed)", dst)
	}
	return l.enqueue(tag, data)
}

// Recv implements Transport.
func (t *TCP) Recv(src, tag int) (Message, error) {
	return t.ib.take(src, tag)
}

// DrainTag implements Transport.
func (t *TCP) DrainTag(tag int) (int, int64) {
	return t.ib.drain(tag)
}

// Flush implements Transport: wait for every link's queue to hit the
// socket.
func (t *TCP) Flush() error {
	for _, l := range t.links {
		if l == nil {
			continue
		}
		if err := l.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Quiesce implements Transport.
func (t *TCP) Quiesce() { t.quiesced.Store(true) }

// Close implements Transport.
func (t *TCP) Close() error { return t.closeWith(nil) }

// closeWith tears the endpoint down; the first cause wins and is what
// blocked Recvs report (nil means a plain Close → ErrClosed).
func (t *TCP) closeWith(cause error) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.ib.close(cause)
	if t.ln != nil {
		t.ln.Close()
	}
	for _, l := range t.links {
		if l != nil {
			l.close()
		}
	}
	return nil
}

func (t *TCP) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// linkFailed handles a reader/writer error on one link: fatal for the
// whole endpoint unless it is quiescing (peers closing at shutdown) or
// already closed.
func (t *TCP) linkFailed(l *link, err error) {
	if t.quiesced.Load() || t.isClosed() {
		l.close()
		return
	}
	t.closeWith(fmt.Errorf("transport: link to rank %d lost: %v", l.peer, err))
}

// Stats implements Transport.
func (t *TCP) Stats() WireStats {
	return WireStats{
		FramesSent: t.framesSent.Load(),
		FramesRecv: t.framesRecv.Load(),
		BytesSent:  t.bytesSent.Load(),
		BytesRecv:  t.bytesRecv.Load(),
		Flushes:    t.flushes.Load(),
	}
}

// wireProgress reports total bytes moved, counted as they cross the
// sockets — the stall watchdog folds this in so a slow-but-flowing
// large frame is progress, not a stall.
func (t *TCP) wireProgress() int64 { return t.bytesSent.Load() + t.bytesRecv.Load() }

// outFrame is one queued outbound message.
type outFrame struct {
	tag  int
	data []byte
}

// link is one pair connection with its writer queue.
type link struct {
	t    *TCP
	peer int
	conn net.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	out     []outFrame
	writing bool
	closed  bool
	err     error
}

func newLink(t *TCP, peer int, conn net.Conn) *link {
	if t.cfg.WireChaos.Enabled() {
		conn = NewChaosConn(conn, t.cfg.WireChaos, fmt.Sprintf("rank%d-rank%d", t.cfg.Rank, peer))
	}
	l := &link{t: t, peer: peer, conn: conn}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *link) start() {
	go l.writer()
	go l.reader()
}

func (l *link) enqueue(tag int, data []byte) error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	l.out = append(l.out, outFrame{tag: tag, data: data})
	l.mu.Unlock()
	l.cond.Signal()
	return nil
}

// flush blocks until the queue is drained and flushed to the socket.
func (l *link) flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for (len(l.out) > 0 || l.writing) && !l.closed {
		l.cond.Wait()
	}
	return l.err
}

func (l *link) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		if l.err == nil {
			l.err = ErrClosed
		}
	}
	l.mu.Unlock()
	l.cond.Broadcast()
	l.conn.Close()
}

// failWith records err as the link's failure and escalates it.
func (l *link) failWith(err error) {
	l.mu.Lock()
	if !l.closed && l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	l.cond.Broadcast()
	l.t.linkFailed(l, err)
}

// writer drains the outbound queue: every wake-up takes the whole
// queue and writes it in WriteBuf-sized vectored batches — each batch
// is one net.Buffers.WriteTo, which on a *net.TCPConn is writev: n
// queued frames (headers and payloads alike) cost one syscall, with no
// copy into an intermediate coalescing buffer.  The queue arrays
// double-buffer (the drained array is handed back to enqueue once its
// payloads are recycled) and the header slab and iovec scratch persist
// across wake-ups, so the steady-state writer allocates nothing.
func (l *link) writer() {
	var (
		bufs  net.Buffers // iovec scratch: hdr, payload, hdr, payload, ...
		hdrs  []byte      // slab backing the batch's frame headers
		spare []outFrame  // drained queue array, handed back to enqueue
	)
	for {
		l.mu.Lock()
		for len(l.out) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.out) == 0 {
			l.mu.Unlock()
			return // closed and drained
		}
		batch := l.out
		if spare != nil {
			l.out = spare
			spare = nil
		} else {
			l.out = nil
		}
		l.writing = true
		l.mu.Unlock()

		if d := l.t.deadlineDur(); d > 0 {
			l.conn.SetWriteDeadline(time.Now().Add(d))
		}
		if need := len(batch) * FrameHeaderSize; cap(hdrs) < need {
			hdrs = make([]byte, need)
		}
		var werr error
		var total int64
		sp := l.t.tr.BeginWire(trace.PhaseWireSend, 0)
		for done := 0; done < len(batch) && werr == nil; {
			bufs = bufs[:0]
			var group int64
			for ; done < len(batch); done++ {
				fr := batch[done]
				if len(bufs) > 0 && group+FrameHeaderSize+int64(len(fr.data)) > int64(l.t.cfg.WriteBuf) {
					break
				}
				h := hdrs[done*FrameHeaderSize : (done+1)*FrameHeaderSize]
				putFrameHeader(h, l.t.cfg.Rank, fr.tag, len(fr.data))
				bufs = append(bufs, h)
				if len(fr.data) > 0 {
					bufs = append(bufs, fr.data)
				}
				group += FrameHeaderSize + int64(len(fr.data))
				l.t.framesSent.Add(1)
			}
			// WriteTo consumes a shifting view; keep bufs' own header
			// intact and clear the payload refs afterwards.
			view := bufs
			n, err := view.WriteTo(l.conn)
			l.t.bytesSent.Add(n)
			total += n
			werr = err
			for i := range bufs {
				bufs[i] = nil
			}
		}
		sp.EndBytes(total)
		l.t.flushes.Add(1)

		if werr == nil {
			// The payloads hit the socket and this endpoint owned them
			// (SendNoCopy is an ownership transfer): recycle them.
			for i := range batch {
				l.t.cfg.Pool.Put(batch[i].data)
				batch[i] = outFrame{}
			}
			spare = batch[:0]
		}

		l.mu.Lock()
		l.writing = false
		l.mu.Unlock()
		l.cond.Broadcast()
		if werr != nil {
			l.failWith(werr)
			return
		}
	}
}

// reader parses inbound frames and delivers them to the inbox.  The
// span covers the payload transfer (header → full frame), not the idle
// wait between frames.
func (l *link) reader() {
	cr := &countingReader{r: l.conn, n: &l.t.bytesRecv}
	br := bufio.NewReaderSize(cr, readBufSize)
	var hdr [FrameHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			l.failWith(err)
			return
		}
		src, tag, n, err := parseFrameHeader(hdr[:], l.t.cfg.MaxFrame)
		if err != nil {
			l.failWith(err)
			return
		}
		if src != l.peer || tag < 0 {
			l.failWith(fmt.Errorf("%w: envelope src=%d tag=%d on link to rank %d", ErrFrame, src, tag, l.peer))
			return
		}
		sp := l.t.tr.BeginWire(trace.PhaseWireRecv, 0)
		// Ownership of the payload passes to whoever Recvs the message;
		// core returns exchange chunks to its pool after unpacking.
		payload := l.t.cfg.Pool.Get(n)
		if _, err := io.ReadFull(br, payload); err != nil {
			l.failWith(fmt.Errorf("%w: truncated payload: %v", ErrFrame, err))
			return
		}
		sp.EndBytes(FrameHeaderSize + int64(n))
		l.t.framesRecv.Add(1)
		l.t.ib.put(Message{Src: src, Tag: tag, Data: payload})
	}
}

// countingReader counts bytes as they cross the socket, feeding both
// WireStats and the watchdog's progress signal.  (The writer counts
// from writev return values directly.)
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// NewLocalTCPWorld binds a fresh 127.0.0.1 rendezvous and returns size
// configured endpoints for a single-process TCP world — the transport
// matrix tests and benchmarks run real sockets without forking.  Each
// endpoint still needs Listen+Dial (internal/mpi's runners do both).
func NewLocalTCPWorld(size int, base TCPConfig) ([]Transport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	eps := make([]Transport, size)
	for r := range eps {
		cfg := base
		cfg.Rank, cfg.Size, cfg.Rendezvous = r, size, ln.Addr().String()
		if r == 0 {
			cfg.Listener = ln
		}
		eps[r] = NewTCP(cfg)
	}
	return eps, nil
}

// putFrameHeader / parseFrameHeader are the header halves of the frame
// codec, used by the streaming reader/writer paths.
func putFrameHeader(hdr []byte, src, tag, payloadLen int) {
	_ = hdr[FrameHeaderSize-1]
	hdr[0] = byte(payloadLen)
	hdr[1] = byte(payloadLen >> 8)
	hdr[2] = byte(payloadLen >> 16)
	hdr[3] = byte(payloadLen >> 24)
	putInt32LE(hdr[4:8], int32(src))
	putInt32LE(hdr[8:12], int32(tag))
}

func parseFrameHeader(hdr []byte, maxFrame int) (src, tag, payloadLen int, err error) {
	n := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	if n > uint32(maxFrame) {
		return 0, 0, 0, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrFrame, n, maxFrame)
	}
	src = int(int32(uint32(hdr[4]) | uint32(hdr[5])<<8 | uint32(hdr[6])<<16 | uint32(hdr[7])<<24))
	tag = int(int32(uint32(hdr[8]) | uint32(hdr[9])<<8 | uint32(hdr[10])<<16 | uint32(hdr[11])<<24))
	return src, tag, int(n), nil
}

func putInt32LE(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
