package transport

import (
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/testutil"
)

// Allocation regression for the exchange hot path: a warm SendNoCopy →
// Recv → Put round-trip must not allocate on loopback, and must stay
// under a small constant over TCP (frame headers, deadline timers, and
// pool bookkeeping are allowed; per-message payload copies are not).

// allocRoundTrips runs r pool-sourced round-trips from eps[0] to
// eps[1] and back, returning payloads to the pool.
func allocRoundTrips(t *testing.T, eps []Transport, r int, size int) float64 {
	t.Helper()
	return testing.AllocsPerRun(r, func() {
		for step := 0; step < 2; step++ {
			src, dst := step, 1-step
			buf := pool.Global.Get(size)
			if err := eps[src].SendNoCopy(dst, 7, buf); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			m, err := eps[dst].Recv(src, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			pool.Global.Put(m.Data)
		}
	})
}

// TestLoopbackRoundTripZeroAlloc: over loopback the pooled payload is
// the only moving part, and it travels by reference.
func TestLoopbackRoundTripZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	eps := NewLoopback(2)
	defer closeWorld(eps)

	// Warm-up grows the inbox queues and fills the pool class.
	allocRoundTrips(t, eps, 8, 4096)
	if a := allocRoundTrips(t, eps, 20, 4096); a > 0 {
		t.Errorf("loopback round-trip allocates %.2f per iteration, want 0", a)
	}
}

// TestTCPRoundTripAllocBound: over sockets each message costs a frame
// header read, a pooled payload, and channel hand-offs; the bound
// catches any reintroduced per-message copy or per-flush buffer.
func TestTCPRoundTripAllocBound(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	eps, err := NewLocalTCPWorld(2, TCPConfig{Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	dialWorld(t, eps)
	defer closeWorld(eps)

	allocRoundTrips(t, eps, 8, 4096)
	const maxAllocs = 16 // per iteration = two messages; copies would add O(1) each but large B/op
	if a := allocRoundTrips(t, eps, 20, 4096); a > maxAllocs {
		t.Errorf("TCP round-trip allocates %.2f per iteration, want <= %d", a, maxAllocs)
	}
}
