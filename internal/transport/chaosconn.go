package transport

import (
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Wire-level fault injection.  A ChaosConn wraps one net.Conn and
// perturbs the byte stream the way a misbehaving network would: latency
// spikes, silently swallowed writes, duplicated frames, corrupted frame
// headers, mid-stream resets, and timed one-directional partitions.  The
// draws come from a rand.Rand seeded with Seed ⊕ fnv64(pair), so a given
// seed reproduces the same fault sequence per connection pair across
// runs (modulo goroutine scheduling of concurrent connections).
//
// Scope notes, honest ones:
//
//   - Corruption targets the frame *header* (the first FrameHeaderSize
//     bytes of a written chunk).  Payload integrity on a real network is
//     the TCP checksum's job; what an application protocol must survive
//     is framing-metadata damage — a wild length, tag, or sequence
//     number — which deterministically desynchronizes the stream and
//     must end in teardown-and-redial, never in silently misdirected
//     data.  That is the recovery path this fault exercises.
//
//   - Every destructive fault (drop, dup, corrupt, reset, partition) is
//     survivable on request/response connections (ioserver clients
//     detect desync by sequence echo and heal by reconnect + stage-log
//     replay) but NOT on the rank fabric, whose mailbox links assume
//     reliable delivery — fabric chaos should stay spike-only (see
//     SpikeOnly) unless the test wants to watch the watchdog kill the
//     world.

// WireChaosConfig parameterizes a ChaosConn.  Probabilities are per
// written chunk (one frame, for FrameConn callers); zero disables that
// fault.  The zero value injects nothing.
type WireChaosConfig struct {
	// Seed selects the deterministic fault sequence (with the pair name
	// mixed in, so connections draw independent streams).
	Seed int64
	// PSpike delays a write (and, independently, a read) by a uniform
	// duration in [SpikeMin, SpikeMax] (defaults 200µs and 2ms).
	PSpike             float64
	SpikeMin, SpikeMax time.Duration
	// PDrop silently swallows a written chunk (reported as sent).
	PDrop float64
	// PDup writes a chunk twice.
	PDup float64
	// PCorrupt flips one bit in the chunk's frame header before sending.
	PCorrupt float64
	// PReset closes the connection instead of writing.
	PReset float64
	// PPartition opens a one-directional outbound blackhole: this chunk
	// and everything written for PartitionFor (default 20ms) is swallowed.
	PPartition   float64
	PartitionFor time.Duration
	// Tracer, when non-nil, records an instant per injected fault.
	Tracer *trace.Tracer
	// Stats, when non-nil, counts injected faults.
	Stats *WireChaosStats
}

// Enabled reports whether the config injects anything (nil-safe).
func (c *WireChaosConfig) Enabled() bool {
	if c == nil {
		return false
	}
	return c.PSpike > 0 || c.PDrop > 0 || c.PDup > 0 || c.PCorrupt > 0 ||
		c.PReset > 0 || c.PPartition > 0
}

// SpikeOnly returns a copy with every destructive fault disabled —
// the only sound configuration for rank-fabric links, whose messaging
// semantics assume reliable delivery.
func (c WireChaosConfig) SpikeOnly() WireChaosConfig {
	c.PDrop, c.PDup, c.PCorrupt, c.PReset, c.PPartition = 0, 0, 0, 0, 0
	return c
}

// WireChaosStats counts injected faults across all connections sharing
// the config.  Safe for concurrent use.
type WireChaosStats struct {
	Spikes, Drops, Dups, Corrupts, Resets, Partitions atomic.Int64
}

// Total reports the number of destructive faults injected (excluding
// spikes, which perturb timing but not delivery).
func (s *WireChaosStats) Total() int64 {
	return s.Drops.Load() + s.Dups.Load() + s.Corrupts.Load() +
		s.Resets.Load() + s.Partitions.Load()
}

// ChaosConn is a net.Conn injecting the configured faults on writes
// (and latency spikes on reads).  The inbound direction is otherwise
// untouched: wrapping one side of a connection perturbs that side's
// requests while keeping the peer's responses canonical, which is the
// useful asymmetry for request/response protocols.
type ChaosConn struct {
	net.Conn
	cfg  *WireChaosConfig
	pair string

	mu        sync.Mutex
	rng       *rand.Rand
	partUntil time.Time // outbound partition window end
}

// chaosConnNonce distinguishes successive connections of the same pair:
// a redial must draw a fresh fault stream, or a fault that kills the
// connection at a fixed point in the reconnect sequence (say, the
// stage-log replay's first frame) recurs identically on every retry and
// a recoverable fault becomes a deterministic livelock.
var chaosConnNonce atomic.Int64

// NewChaosConn wraps conn.  pair names the connection for the seed mix
// and trace instants (e.g. "client→127.0.0.1:7001").
func NewChaosConn(conn net.Conn, cfg *WireChaosConfig, pair string) *ChaosConn {
	h := fnv.New64a()
	h.Write([]byte(pair))
	seed := cfg.Seed ^ int64(h.Sum64()) ^ chaosConnNonce.Add(1)<<32
	return &ChaosConn{
		Conn: conn,
		cfg:  cfg,
		pair: pair,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// fault is one write's drawn verdict.
type fault int

const (
	faultNone fault = iota
	faultDrop
	faultDup
	faultCorrupt
	faultReset
	faultPartition
)

// draw rolls this write's fate under the rng lock.  At most one
// destructive fault fires per write (first match wins, rarest first),
// plus an independent spike.
func (cc *ChaosConn) draw() (f fault, spike time.Duration) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.cfg.PSpike > 0 && cc.rng.Float64() < cc.cfg.PSpike {
		lo, hi := cc.cfg.SpikeMin, cc.cfg.SpikeMax
		if lo <= 0 {
			lo = 200 * time.Microsecond
		}
		if hi <= lo {
			hi = lo + 2*time.Millisecond
		}
		spike = lo + time.Duration(cc.rng.Int63n(int64(hi-lo)))
	}
	if !cc.partUntil.IsZero() {
		if time.Now().Before(cc.partUntil) {
			return faultPartition, spike
		}
		cc.partUntil = time.Time{} // window over
	}
	switch r := cc.rng.Float64(); {
	case r < cc.cfg.PReset:
		return faultReset, spike
	case r < cc.cfg.PReset+cc.cfg.PPartition:
		d := cc.cfg.PartitionFor
		if d <= 0 {
			d = 20 * time.Millisecond
		}
		cc.partUntil = time.Now().Add(d)
		return faultPartition, spike
	case r < cc.cfg.PReset+cc.cfg.PPartition+cc.cfg.PDrop:
		return faultDrop, spike
	case r < cc.cfg.PReset+cc.cfg.PPartition+cc.cfg.PDrop+cc.cfg.PDup:
		return faultDup, spike
	case r < cc.cfg.PReset+cc.cfg.PPartition+cc.cfg.PDrop+cc.cfg.PDup+cc.cfg.PCorrupt:
		return faultCorrupt, spike
	}
	return faultNone, spike
}

// faultMeta maps a fault to its trace phase and stats counter.
func (s *WireChaosStats) counter(ph trace.Phase) *atomic.Int64 {
	if s == nil {
		return &statDiscard
	}
	switch ph {
	case trace.PhaseWireChaosSpike:
		return &s.Spikes
	case trace.PhaseWireChaosDrop:
		return &s.Drops
	case trace.PhaseWireChaosDup:
		return &s.Dups
	case trace.PhaseWireChaosCorrupt:
		return &s.Corrupts
	case trace.PhaseWireChaosReset:
		return &s.Resets
	case trace.PhaseWireChaosPartition:
		return &s.Partitions
	}
	return &statDiscard
}

var statDiscard atomic.Int64

// note records one injected fault.
func (cc *ChaosConn) note(ph trace.Phase, n int) {
	cc.cfg.Stats.counter(ph).Add(1)
	cc.cfg.Tracer.Instant(ph, 0, int64(n), cc.pair)
}

func (cc *ChaosConn) Write(p []byte) (int, error) {
	f, spike := cc.draw()
	if spike > 0 {
		cc.note(trace.PhaseWireChaosSpike, len(p))
		time.Sleep(spike)
	}
	switch f {
	case faultPartition:
		cc.note(trace.PhaseWireChaosPartition, len(p))
		return len(p), nil // blackholed: the sender believes it sent
	case faultDrop:
		cc.note(trace.PhaseWireChaosDrop, len(p))
		return len(p), nil
	case faultReset:
		cc.note(trace.PhaseWireChaosReset, len(p))
		cc.Conn.Close()
		return 0, net.ErrClosed
	case faultDup:
		cc.note(trace.PhaseWireChaosDup, len(p))
		if n, err := cc.Conn.Write(p); err != nil {
			return n, err
		}
		return cc.Conn.Write(p)
	case faultCorrupt:
		cc.note(trace.PhaseWireChaosCorrupt, len(p))
		bad := make([]byte, len(p))
		copy(bad, p)
		span := len(bad)
		if span > FrameHeaderSize {
			span = FrameHeaderSize
		}
		if span > 0 {
			cc.mu.Lock()
			i := cc.rng.Intn(span)
			bit := byte(1) << cc.rng.Intn(8)
			cc.mu.Unlock()
			bad[i] ^= bit
		}
		return cc.Conn.Write(bad)
	}
	return cc.Conn.Write(p)
}

func (cc *ChaosConn) Read(p []byte) (int, error) {
	cc.mu.Lock()
	var spike time.Duration
	if cc.cfg.PSpike > 0 && cc.rng.Float64() < cc.cfg.PSpike {
		lo := cc.cfg.SpikeMin
		if lo <= 0 {
			lo = 200 * time.Microsecond
		}
		spike = lo
	}
	cc.mu.Unlock()
	if spike > 0 {
		cc.note(trace.PhaseWireChaosSpike, len(p))
		time.Sleep(spike)
	}
	return cc.Conn.Read(p)
}
