// Package transport is the pluggable rank-to-rank byte fabric under
// internal/mpi: every rank of a world holds one Transport endpoint and
// moves tagged byte payloads through it.  The message-matching layer
// (source/tag wildcards, per-pair FIFO, collective ordering) lives in
// the endpoint's inbox — extracted verbatim from internal/mpi's
// original queue machinery — so the two implementations differ only in
// how bytes travel between endpoints:
//
//   - Loopback: the seed's in-process world.  Send delivers straight
//     into the destination rank's inbox with one function call; no
//     goroutines, no framing, no wire bytes.  Zero behavior change
//     from the original shared-memory mailboxes.
//
//   - TCP: ranks as separate OS processes (or goroutines, for tests)
//     connected by one TCP stream per rank pair, carrying
//     length-prefixed (length, src, tag, payload) frames.  A rank-0
//     rendezvous distributes the address book, per-link writer
//     goroutines coalesce queued frames into single flushes, and
//     write/handshake deadlines bound a wedged peer.
//
// Lifecycle: Listen (bind the endpoint) → Dial (connect the fabric) →
// Send/Recv/DrainTag → Flush/Quiesce (graceful shutdown) → Close.
package transport

// Wildcards for Recv matching, shared with internal/mpi.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message is one delivered payload with its envelope.
type Message struct {
	Src, Tag int
	Data     []byte
}

// WireStats counts the bytes and frames an endpoint actually moved over
// its links.  The loopback transport reports all zeros: nothing crosses
// a wire.
type WireStats struct {
	FramesSent, FramesRecv int64
	// BytesSent / BytesRecv are on-the-wire volumes including frame
	// headers, counted as they cross the socket.
	BytesSent, BytesRecv int64
	// Flushes counts writer flushes; FramesSent/Flushes > 1 means the
	// writer coalesced queued frames into shared syscalls.
	Flushes int64
}

// Transport is one rank's endpoint on a world fabric.
//
// Send is buffered: it returns once the payload is queued and never
// blocks on the receiver, matching the original in-process semantics.
// Recv blocks for the earliest inbound message matching (src, tag),
// honouring AnySource/AnyTag wildcards, with messages of one (source,
// tag) pair delivered in the order they were sent.
type Transport interface {
	// Rank reports this endpoint's rank in [0, Size()).
	Rank() int
	// Size reports the number of endpoints in the fabric.
	Size() int
	// Listen binds the endpoint's inbound side (TCP: the listening
	// socket higher-ranked peers and the rendezvous dial into).
	Listen() error
	// Dial connects the endpoint to every peer (TCP: the rank-0
	// rendezvous handshake and the pairwise links); it returns when the
	// fabric is ready for Send/Recv.
	Dial() error
	// Send enqueues a copy of data for dst.
	Send(dst, tag int, data []byte) error
	// SendNoCopy enqueues data without copying, transferring ownership
	// of the payload to the transport: the caller must not read, write,
	// or pool.Put data (or any alias of it) afterwards.  The delivered
	// Message's Data is in turn owned by the receiver, which may return
	// it to a buffer pool.  Transports that put the payload on a wire
	// recycle it themselves once it has been written.
	SendNoCopy(dst, tag int, data []byte) error
	// Recv blocks until a message matching (src, tag) is available and
	// removes it.  It returns ErrClosed after Close, or the transport
	// failure that tore the endpoint down.
	Recv(src, tag int) (Message, error)
	// DrainTag removes every queued message with the given tag (any
	// source) without blocking, returning the count and payload bytes
	// discarded.
	DrainTag(tag int) (int, int64)
	// Flush blocks until every queued outbound payload has left the
	// endpoint (TCP: written to the sockets).  A no-op for loopback.
	Flush() error
	// Quiesce marks the endpoint as shutting down: subsequent link
	// failures are expected (peers closing) and no longer fail the
	// endpoint.  Recv keeps working for the shutdown barrier.
	Quiesce()
	// Close tears the endpoint down: blocked Recvs return ErrClosed and
	// links are dropped.  Close is idempotent.
	Close() error
	// Stats reports the endpoint's wire-level counters.
	Stats() WireStats
}
