// Package tileio implements an mpi-tile-io–style benchmark: a dense 2D
// dataset accessed as a grid of per-process tiles through subarray
// fileviews.  It is the "multi-dimensional arrays accessed in different
// manners" workload the paper's outlook (§5) calls for, complementary to
// noncontig (1D strided) and btio (3D cell-decomposed):
//
//   - each process owns one sx×sy tile of a (ntx·sx)×(nty·sy) element
//     dataset (row-major), optionally *overlapping* its neighbours by a
//     ghost ring — overlapping tiles make collective reads deliver the
//     same file bytes to several processes, a case two-phase I/O must
//     handle that neither noncontig nor btio exercises;
//   - writes use disjoint tiles (MPI-IO forbids overlapping collective
//     writes);
//   - element size, tile geometry, collectivity and engine are all
//     configurable.
package tileio

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Config parameterizes one tile-I/O run.
type Config struct {
	TilesX, TilesY int   // process grid (P = TilesX·TilesY)
	TileX, TileY   int64 // interior tile size, in elements
	ElemSize       int64 // bytes per element
	// Overlap is the ghost ring width in elements: each process's *read*
	// tile is grown by Overlap on every side (clipped at the dataset
	// boundary).  Writes always use the interior tile.
	Overlap    int64
	Collective bool
	Engine     core.Engine
	Reps       int
	Verify     bool

	Options core.Options
	Backend storage.Backend
}

// P reports the number of processes.
func (c Config) P() int { return c.TilesX * c.TilesY }

// DatasetElems reports the global dataset dimensions in elements.
func (c Config) DatasetElems() (gx, gy int64) {
	return int64(c.TilesX) * c.TileX, int64(c.TilesY) * c.TileY
}

// DatasetBytes reports the file size.
func (c Config) DatasetBytes() int64 {
	gx, gy := c.DatasetElems()
	return gx * gy * c.ElemSize
}

// Result carries the measured bandwidths.
type Result struct {
	Config    Config
	WriteTime time.Duration // max across ranks, total over reps
	ReadTime  time.Duration
	WriteBpp  float64 // MB/s per process (written interior bytes)
	ReadBpp   float64 // MB/s per process (read ghosted bytes)
	Stats     core.Stats
	Verified  bool
}

// tileRegion returns rank's tile (optionally ghosted) as element ranges.
func (c Config) tileRegion(rank int, ghost bool) (x0, y0, nx, ny int64) {
	ti := int64(rank % c.TilesX)
	tj := int64(rank / c.TilesX)
	x0, y0 = ti*c.TileX, tj*c.TileY
	nx, ny = c.TileX, c.TileY
	if ghost && c.Overlap > 0 {
		gx, gy := c.DatasetElems()
		x1, y1 := x0+nx+c.Overlap, y0+ny+c.Overlap
		x0 -= c.Overlap
		y0 -= c.Overlap
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > gx {
			x1 = gx
		}
		if y1 > gy {
			y1 = gy
		}
		nx, ny = x1-x0, y1-y0
	}
	return
}

// view builds the subarray fileview for rank's region.  The dataset is
// row-major with x varying fastest.
func (c Config) view(rank int, ghost bool) (*datatype.Type, int64, error) {
	gx, gy := c.DatasetElems()
	x0, y0, nx, ny := c.tileRegion(rank, ghost)
	elem, err := datatype.Contiguous(c.ElemSize, datatype.Byte)
	if err != nil {
		return nil, 0, err
	}
	ft, err := datatype.Subarray(
		[]int64{gy, gx}, []int64{ny, nx}, []int64{y0, x0},
		datatype.OrderC, elem)
	if err != nil {
		return nil, 0, err
	}
	return ft, nx * ny * c.ElemSize, nil
}

func (c Config) validate() error {
	if c.TilesX <= 0 || c.TilesY <= 0 || c.TileX <= 0 || c.TileY <= 0 || c.ElemSize <= 0 {
		return fmt.Errorf("tileio: invalid geometry %+v", c)
	}
	if c.Overlap < 0 {
		return fmt.Errorf("tileio: negative overlap %d", c.Overlap)
	}
	return nil
}

// elemValue is the deterministic dataset content at element (x, y).
func elemValue(x, y, k, esize int64) byte {
	return byte((x*31 + y*17 + k) % 251)
}

// Run writes the dataset through the disjoint interior views, then reads
// it back through the (possibly overlapping) ghosted views, measuring
// both phases.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	be := cfg.Backend
	if be == nil {
		be = storage.NewMem()
	}
	if be.Size() < cfg.DatasetBytes() {
		if err := be.Truncate(cfg.DatasetBytes()); err != nil {
			return Result{}, err
		}
	}
	sh := core.NewShared(be)
	opts := cfg.Options
	opts.Engine = cfg.Engine

	var writeNs, readNs int64
	var rank0Stats core.Stats
	verified := true

	_, err := mpi.Run(cfg.P(), func(p *mpi.Proc) {
		f, err := core.Open(p, sh, opts)
		if err != nil {
			panic(err)
		}
		defer f.Close()

		// Interior write phase.
		wview, wbytes, err := cfg.view(p.Rank(), false)
		if err != nil {
			panic(err)
		}
		x0, y0, nx, ny := cfg.tileRegion(p.Rank(), false)
		wbuf := make([]byte, wbytes)
		fill := func(buf []byte, x0, y0, nx, ny int64) {
			i := 0
			for y := y0; y < y0+ny; y++ {
				for x := x0; x < x0+nx; x++ {
					for k := int64(0); k < cfg.ElemSize; k++ {
						buf[i] = elemValue(x, y, k, cfg.ElemSize)
						i++
					}
				}
			}
		}
		fill(wbuf, x0, y0, nx, ny)

		// Ghosted read phase.
		rview, rbytes, err := cfg.view(p.Rank(), true)
		if err != nil {
			panic(err)
		}
		gx0, gy0, gnx, gny := cfg.tileRegion(p.Rank(), true)
		rbuf := make([]byte, rbytes)
		want := make([]byte, rbytes)
		fill(want, gx0, gy0, gnx, gny)

		var wNs, rNs int64
		for rep := 0; rep < cfg.Reps; rep++ {
			if err := f.SetView(0, datatype.Byte, wview); err != nil {
				panic(err)
			}
			p.Barrier()
			t0 := time.Now()
			var werr error
			if cfg.Collective {
				_, werr = f.WriteAtAll(0, wbytes, datatype.Byte, wbuf)
			} else {
				_, werr = f.WriteAt(0, wbytes, datatype.Byte, wbuf)
			}
			if werr != nil {
				panic(werr)
			}
			p.Barrier()
			wNs += time.Since(t0).Nanoseconds()

			if err := f.SetView(0, datatype.Byte, rview); err != nil {
				panic(err)
			}
			t1 := time.Now()
			var rerr error
			if cfg.Collective {
				_, rerr = f.ReadAtAll(0, rbytes, datatype.Byte, rbuf)
			} else {
				_, rerr = f.ReadAt(0, rbytes, datatype.Byte, rbuf)
			}
			if rerr != nil {
				panic(rerr)
			}
			p.Barrier()
			rNs += time.Since(t1).Nanoseconds()

			if rep == 0 && cfg.Verify && !bytes.Equal(rbuf, want) {
				verified = false
			}
		}
		wMax := p.AllreduceInt64(wNs, mpi.OpMax)
		rMax := p.AllreduceInt64(rNs, mpi.OpMax)
		if p.Rank() == 0 {
			writeNs, readNs = wMax, rMax
			rank0Stats = f.Stats
		}
	})
	if err != nil {
		return Result{}, err
	}
	if cfg.Verify && !verified {
		return Result{}, fmt.Errorf("tileio: ghosted read verification failed (%+v)", cfg)
	}

	res := Result{Config: cfg, Verified: verified, Stats: rank0Stats}
	res.WriteTime = time.Duration(writeNs)
	res.ReadTime = time.Duration(readNs)
	interior := float64(cfg.TileX * cfg.TileY * cfg.ElemSize * int64(cfg.Reps))
	if writeNs > 0 {
		res.WriteBpp = interior / (float64(writeNs) / 1e9) / 1e6
	}
	// Read volume varies per rank; report rank 0's ghosted volume.
	_, _, gnx, gny := cfg.tileRegion(0, true)
	ghosted := float64(gnx * gny * cfg.ElemSize * int64(cfg.Reps))
	if readNs > 0 {
		res.ReadBpp = ghosted / (float64(readNs) / 1e9) / 1e6
	}
	return res, nil
}
