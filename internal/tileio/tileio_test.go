package tileio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func base() Config {
	return Config{
		TilesX: 2, TilesY: 2,
		TileX: 16, TileY: 12,
		ElemSize: 8,
		Verify:   true,
	}
}

func TestGeometry(t *testing.T) {
	c := base()
	if c.P() != 4 {
		t.Fatalf("P = %d", c.P())
	}
	gx, gy := c.DatasetElems()
	if gx != 32 || gy != 24 {
		t.Fatalf("dataset = %dx%d", gx, gy)
	}
	if c.DatasetBytes() != 32*24*8 {
		t.Fatalf("bytes = %d", c.DatasetBytes())
	}
}

func TestTileRegionGhostClipping(t *testing.T) {
	c := base()
	c.Overlap = 4
	// Rank 0 (corner): ghost clips at the low edges.
	x0, y0, nx, ny := c.tileRegion(0, true)
	if x0 != 0 || y0 != 0 || nx != 16+4 || ny != 12+4 {
		t.Fatalf("rank 0 ghost region = (%d,%d,%d,%d)", x0, y0, nx, ny)
	}
	// Rank 3 (opposite corner): ghost clips at the high edges.
	x0, y0, nx, ny = c.tileRegion(3, true)
	if x0 != 16-4 || y0 != 12-4 || nx != 16+4 || ny != 12+4 {
		t.Fatalf("rank 3 ghost region = (%d,%d,%d,%d)", x0, y0, nx, ny)
	}
}

func TestRunModes(t *testing.T) {
	for _, coll := range []bool{false, true} {
		for _, eng := range []core.Engine{core.Listless, core.ListBased} {
			for _, overlap := range []int64{0, 3} {
				c := base()
				c.Collective = coll
				c.Engine = eng
				c.Overlap = overlap
				res, err := Run(c)
				if err != nil {
					t.Fatalf("coll=%v %v overlap=%d: %v", coll, eng, overlap, err)
				}
				if !res.Verified {
					t.Fatalf("coll=%v %v overlap=%d: verification failed", coll, eng, overlap)
				}
				if res.WriteBpp <= 0 || res.ReadBpp <= 0 {
					t.Fatalf("coll=%v %v overlap=%d: zero bandwidth", coll, eng, overlap)
				}
			}
		}
	}
}

func TestEnginesProduceIdenticalDatasets(t *testing.T) {
	var files [2][]byte
	for i, eng := range []core.Engine{core.Listless, core.ListBased} {
		be := storage.NewMem()
		c := base()
		c.Engine = eng
		c.Collective = true
		c.Overlap = 2
		c.Backend = be
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		files[i] = be.Bytes()
	}
	if string(files[0]) != string(files[1]) {
		t.Fatal("engines produced different datasets")
	}
}

func TestOverlappingCollectiveReadDeliversSharedBytes(t *testing.T) {
	// The distinguishing case: with overlap, neighbouring ranks read the
	// same file bytes in one collective call.  Verification inside Run
	// checks every rank got its full ghosted region.
	c := base()
	c.Collective = true
	c.Overlap = 6
	c.Engine = core.Listless
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	c := base()
	c.TilesX = 0
	if _, err := Run(c); err == nil {
		t.Error("zero grid accepted")
	}
	c = base()
	c.Overlap = -1
	if _, err := Run(c); err == nil {
		t.Error("negative overlap accepted")
	}
}

func TestRepsAccumulate(t *testing.T) {
	c := base()
	c.Reps = 3
	c.Engine = core.Listless
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteTime <= 0 || res.ReadTime <= 0 {
		t.Fatal("reps not accumulated")
	}
}
