package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export (the JSON format read by chrome://tracing
// and Perfetto): every rank becomes a pair of named tracks (main
// goroutine + background I/O), the shared storage backend a track of
// its own; spans export as complete ("X") events and instants as
// instant ("i") events, all with window offset and byte counts in args.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// track identifies one exported thread lane.
type track struct {
	rank, track int
}

func (tr track) name() string {
	if tr.rank == RankStorage {
		return "storage backend"
	}
	if tr.track == TrackIO {
		return fmt.Sprintf("rank %d bg-io", tr.rank)
	}
	if tr.track == TrackWire {
		return fmt.Sprintf("rank %d wire", tr.rank)
	}
	return fmt.Sprintf("rank %d", tr.rank)
}

// WriteChrome writes the merged trace as Chrome trace-event JSON.
func (c *Collector) WriteChrome(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("trace: nil collector")
	}
	events := c.Events()

	// Assign stable tids: ranks ascending, main before bg-io, storage
	// last.
	seen := make(map[track]bool)
	var tracks []track
	for _, ev := range events {
		tr := track{rank: ev.Rank, track: ev.Track}
		if !seen[tr] {
			seen[tr] = true
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		a, b := tracks[i], tracks[j]
		if (a.rank == RankStorage) != (b.rank == RankStorage) {
			return b.rank == RankStorage
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.track < b.track
	})
	tids := make(map[track]int, len(tracks))
	for i, tr := range tracks {
		tids[tr] = i
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 0, Args: map[string]any{"name": "listless-io"}},
	}}
	for i, tr := range tracks {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "thread_name", Ph: "M", PID: 0, TID: tids[tr],
				Args: map[string]any{"name": tr.name()}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", PID: 0, TID: tids[tr],
				Args: map[string]any{"sort_index": i}})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: string(ev.Phase),
			Cat:  category(ev.Phase),
			TS:   float64(ev.Start) / 1e3,
			PID:  0,
			TID:  tids[track{rank: ev.Rank, track: ev.Track}],
			Args: map[string]any{"rank": ev.Rank},
		}
		if ev.Window != NoWindow {
			ce.Args["window_off"] = ev.Window
		}
		if ev.Bytes > 0 {
			ce.Args["bytes"] = ev.Bytes
		}
		if ev.Detail != "" {
			ce.Args["detail"] = ev.Detail
		}
		if ev.Kind == KindInstant {
			ce.Ph = "i"
			ce.S = "t"
		} else {
			ce.Ph = "X"
			dur := float64(ev.Dur) / 1e3
			ce.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// category groups phases for trace-viewer filtering.
func category(ph Phase) string {
	for i := 0; i < len(ph); i++ {
		if ph[i] == '.' {
			return string(ph[:i])
		}
	}
	return string(ph)
}
