package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildDeterministicTrace records a fixed event sequence with a fixed
// clock: two ranks with nested collective spans and background I/O,
// plus storage-track instants — one of everything the exporter emits.
func buildDeterministicTrace() *Collector {
	c := testCollector(64, 0)
	var now int64
	c.clock = func() int64 { return now }
	at := func(ts int64) { now = ts }

	r0, r1, st := c.Tracer(0), c.Tracer(1), c.Storage()

	at(0)
	w0 := r0.Begin(PhaseCollWrite, NoWindow, 4096)
	at(100)
	w1 := r1.Begin(PhaseCollWrite, NoWindow, 4096)

	at(200)
	pl := r0.Begin(PhaseCollPlan, NoWindow, 0)
	at(700)
	pl.End()

	at(800)
	pr := r0.BeginIO(PhasePreRead, 0, 2048)
	ex := r0.Begin(PhaseExchange, 0, 1024)
	at(1500)
	ex.End()
	at(1600)
	pr.End()

	at(1700)
	rv := r1.Begin(PhaseMPIRecv, NoWindow, 0)
	at(2400)
	rv.EndBytes(1024)
	r1.Instant(PhaseMPISend, NoWindow, 1024, "")

	at(2500)
	st.Instant(PhaseChaosTransient, 2048, 0, "chaos read fault at offset 2048")
	st.Instant(PhaseRetry, 2048, 0, "attempt 1")

	at(3000)
	w1.End()
	at(3100)
	w0.End()
	return c
}

// TestChromeExportGolden locks the exported Chrome trace-event JSON
// against a golden file (regenerate with `go test -run Chrome -update`).
func TestChromeExportGolden(t *testing.T) {
	c := buildDeterministicTrace()
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export drifted from golden file; run `go test ./internal/trace -run Chrome -update` if intentional\ngot:\n%s", buf.String())
	}
}

// TestChromeExportWellFormed validates the structural invariants any
// trace viewer needs: parseable JSON, named per-rank tracks, complete
// events with durations, instants with scope.
func TestChromeExportWellFormed(t *testing.T) {
	c := buildDeterministicTrace()
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	var spans, instants, threadNames int
	for _, ev := range parsed.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event without dur: %v", ev)
			}
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Errorf("instant without thread scope: %v", ev)
			}
		case "M":
			if ev["name"] == "thread_name" {
				threadNames++
				names[ev["args"].(map[string]any)["name"].(string)] = true
			}
		}
	}
	for _, want := range []string{"rank 0", "rank 0 bg-io", "rank 1", "storage backend"} {
		if !names[want] {
			t.Errorf("missing track %q (have %v)", want, names)
		}
	}
	if spans == 0 || instants == 0 {
		t.Errorf("spans=%d instants=%d, want both nonzero", spans, instants)
	}
}
