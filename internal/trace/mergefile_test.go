package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMergeChromeFiles: two per-process traces merge into one file with
// distinct pids, per-process process_name metadata, and all events
// preserved; unreadable inputs are skipped.
func TestMergeChromeFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rank int) string {
		c := NewCollector(16)
		tr := c.Tracer(rank)
		tr.Begin(PhaseCollWrite, 0, 64).End()
		tr.Instant(PhaseMPISend, NoWindow, 32, "x")
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WriteChrome(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	a := write("a.json", 0)
	b := write("b.json", 0)

	out := filepath.Join(dir, "merged.json")
	n, err := MergeChromeFiles(out, []MergeInput{
		{Path: a, Proc: "rank 0"},
		{Path: filepath.Join(dir, "missing.json"), Proc: "ghost"},
		{Path: b, Proc: "server 0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("merged %d inputs, want 2", n)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := make(map[int]bool)
	names := make(map[string]int)
	spans := 0
	for _, ev := range tr.TraceEvents {
		pids[ev.PID] = true
		if ev.Name == "process_name" {
			names[ev.Args["name"].(string)] = ev.PID
		}
		if ev.Ph == "X" {
			spans++
		}
	}
	if len(pids) != 2 {
		t.Fatalf("merged trace has %d pids, want 2", len(pids))
	}
	if len(names) != 2 || names["rank 0"] == names["server 0"] {
		t.Fatalf("process names not distinct per pid: %v", names)
	}
	if spans != 2 {
		t.Fatalf("merged trace has %d spans, want 2", spans)
	}

	if _, err := MergeChromeFiles(out, []MergeInput{{Path: "/nonexistent", Proc: "x"}}); err == nil {
		t.Fatal("merge with no readable inputs succeeded")
	}
}
