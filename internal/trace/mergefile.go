package trace

import (
	"encoding/json"
	"fmt"
	"os"
)

// Cross-process trace merging.  Every process of a multi-process run
// (ranks, I/O servers) writes its own Chrome trace with WriteChrome,
// all under pid 0 — correct in isolation, colliding when viewed
// together.  MergeChromeFiles lifts each file onto its own pid, names
// the process, and emits one trace.json spanning the whole cluster.
// Wall-clock timestamps are comparable across the inputs because every
// collector's epoch is process start and the launcher forks all
// processes within milliseconds; the per-process offset is visible as
// a small skew, not an ordering error.

// MergeInput names one per-process trace file and the process label it
// should carry in the merged view (e.g. "rank 2", "server 0").
type MergeInput struct {
	Path string
	Proc string
}

// MergeChromeFiles merges per-process Chrome trace files into out, one
// pid per input.  Missing or unparsable inputs are skipped (a crashed
// server may never have written its trace); the count of merged inputs
// is returned so callers can report partial merges.
func MergeChromeFiles(out string, ins []MergeInput) (int, error) {
	merged := chromeTrace{DisplayTimeUnit: "ms"}
	n := 0
	for _, in := range ins {
		b, err := os.ReadFile(in.Path)
		if err != nil {
			continue
		}
		var tr chromeTrace
		if err := json.Unmarshal(b, &tr); err != nil {
			continue
		}
		pid := n
		n++
		merged.TraceEvents = append(merged.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": in.Proc},
		}, chromeEvent{
			Name: "process_sort_index", Ph: "M", PID: pid,
			Args: map[string]any{"sort_index": pid},
		})
		for _, ev := range tr.TraceEvents {
			if ev.Name == "process_name" || ev.Name == "process_sort_index" {
				continue // superseded by the per-input metadata above
			}
			ev.PID = pid
			merged.TraceEvents = append(merged.TraceEvents, ev)
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("trace: no readable inputs to merge into %s", out)
	}
	f, err := os.Create(out)
	if err != nil {
		return n, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(merged); err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}
