package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Histogram is a log-bucketed latency histogram: bucket i counts values
// v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).  Buckets are
// fixed, so histograms from different ranks merge by plain addition —
// the property the world-level collector relies on.  Safe for
// concurrent use.
type Histogram struct {
	mu       sync.Mutex
	counts   [65]int64
	count    int64
	sum      int64
	min, max int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketHi is the largest value of bucket i.
func bucketHi(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return 1<<62 - 1 + 1<<62 // MaxInt64
	}
	return 1<<i - 1
}

// Add observes one value (negative values count as 0).
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	o.mu.Lock()
	counts, count, sum, mn, mx := o.counts, o.count, o.sum, o.min, o.max
	o.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.count == 0 || mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min and Max report the observed extremes (0 when empty).
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean reports the average observation (0 when empty).
func (h *Histogram) Mean() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the
// top of the bucket holding the q·count-th observation, clamped to the
// observed maximum.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			hi := bucketHi(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// BucketHi is the largest value of log bucket i — the bucket upper
// bounds exported for histogram serialization (the obs snapshot and the
// Prometheus exposition).
func BucketHi(i int) int64 { return bucketHi(i) }

// HistData is the raw content of a Histogram: the fixed log buckets and
// the summary fields.  It is the exchange form used by cross-process
// metric snapshots — two HistDatas merge by plain bucket addition,
// exactly like the live histograms they came from.
type HistData struct {
	Counts   [65]int64
	Count    int64
	Sum      int64
	Min, Max int64
}

// Data returns a copy of the histogram's buckets and summary fields.
func (h *Histogram) Data() HistData {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistData{Counts: h.counts, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
}

// MergeData folds raw bucket data into h, with the same semantics as
// Merge on a live histogram.
func (h *Histogram) MergeData(d HistData) {
	if d.Count == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range d.Counts {
		h.counts[i] += c
	}
	if h.count == 0 || d.Min < h.min {
		h.min = d.Min
	}
	if d.Max > h.max {
		h.max = d.Max
	}
	h.count += d.Count
	h.sum += d.Sum
	h.mu.Unlock()
}

// Merge folds o into d by plain addition, the HistData analogue of
// Histogram.Merge for aggregators that never observe values themselves.
func (d *HistData) Merge(o HistData) {
	if o.Count == 0 {
		return
	}
	for i, c := range o.Counts {
		d.Counts[i] += c
	}
	if d.Count == 0 || o.Min < d.Min {
		d.Min = o.Min
	}
	if o.Max > d.Max {
		d.Max = o.Max
	}
	d.Count += o.Count
	d.Sum += o.Sum
}

// Mean reports the average of the summarized observations (0 when empty).
func (d HistData) Mean() int64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / d.Count
}

// Quantile returns an upper bound on the q-quantile of the summarized
// observations, as Histogram.Quantile does for a live histogram.
func (d HistData) Quantile(q float64) int64 {
	if d.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(d.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range d.Counts {
		cum += c
		if cum >= target {
			hi := bucketHi(i)
			if hi > d.Max {
				hi = d.Max
			}
			return hi
		}
	}
	return d.Max
}

// Metrics is a set of per-phase histograms.  Safe for concurrent use.
type Metrics struct {
	mu    sync.Mutex
	hists map[Phase]*Histogram
}

// NewMetrics returns an empty metric set.
func NewMetrics() *Metrics { return &Metrics{hists: make(map[Phase]*Histogram)} }

// Observe records one span duration for a phase.
func (m *Metrics) Observe(ph Phase, ns int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[ph]
	if h == nil {
		h = &Histogram{}
		m.hists[ph] = h
	}
	m.mu.Unlock()
	h.Add(ns)
}

// Hist returns the histogram of a phase, or nil when nothing was
// observed for it.
func (m *Metrics) Hist(ph Phase) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hists[ph]
}

// Merge folds o's histograms into m.
func (m *Metrics) Merge(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	o.mu.Lock()
	phases := make([]Phase, 0, len(o.hists))
	for ph := range o.hists {
		phases = append(phases, ph)
	}
	o.mu.Unlock()
	for _, ph := range phases {
		oh := o.Hist(ph)
		m.mu.Lock()
		h := m.hists[ph]
		if h == nil {
			h = &Histogram{}
			m.hists[ph] = h
		}
		m.mu.Unlock()
		h.Merge(oh)
	}
}

// Phases lists the observed phases in stable (sorted) order.
func (m *Metrics) Phases() []Phase {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Phase, 0, len(m.hists))
	for ph := range m.hists {
		out = append(out, ph)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the metric set as one line per phase, in stable order.
func (m *Metrics) String() string {
	var b []byte
	for _, ph := range m.Phases() {
		h := m.Hist(ph)
		b = append(b, fmt.Sprintf("%-22s count=%-7d total=%-10v mean=%-9v p50=%-9v p99=%-9v max=%v\n",
			ph, h.Count(),
			time.Duration(h.Sum()).Round(time.Microsecond),
			time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(h.Max()).Round(time.Microsecond))...)
	}
	return string(b)
}
