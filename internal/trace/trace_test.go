package trace

import (
	"strings"
	"sync"
	"testing"
)

// fakeClock returns a deterministic clock advancing step ns per call.
func fakeClock(step int64) func() int64 {
	var t int64
	return func() int64 { t += step; return t }
}

// testCollector builds a collector with a deterministic clock.
func testCollector(bufSize int, step int64) *Collector {
	c := NewCollector(bufSize)
	c.clock = fakeClock(step)
	return c
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin(PhaseExchange, 0, 10)
	sp.End()
	tr.BeginIO(PhasePreRead, 0, 0).EndBytes(5)
	tr.Instant(PhaseFault, NoWindow, 0, "x")
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer recorded %v", evs)
	}
	if _, ok := tr.Current(); ok {
		t.Fatal("nil tracer has a current span")
	}
	if tr.Dropped() != 0 || tr.Metrics() != nil {
		t.Fatal("nil tracer has state")
	}

	var c *Collector
	if c.Tracer(3) != nil || c.Storage() != nil {
		t.Fatal("nil collector hands out tracers")
	}
	if c.Events() != nil || c.Summary() != "" || c.Forensics(4) != "" {
		t.Fatal("nil collector produces output")
	}
}

func TestSpanRecordingAndOrder(t *testing.T) {
	c := testCollector(16, 100)
	tr := c.Tracer(0)

	sp := tr.Begin(PhaseExchange, 4096, 64)
	sp.End()
	tr.Instant(PhaseMPISend, NoWindow, 32, "")
	sp = tr.BeginIO(PhasePreRead, 8192, 128)
	sp.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	e0 := evs[0]
	if e0.Phase != PhaseExchange || e0.Kind != KindSpan || e0.Window != 4096 ||
		e0.Bytes != 64 || e0.Dur != 100 || e0.Track != TrackMain || e0.Rank != 0 {
		t.Errorf("event 0 = %+v", e0)
	}
	if evs[1].Kind != KindInstant || evs[1].Phase != PhaseMPISend || evs[1].Dur != 0 {
		t.Errorf("event 1 = %+v", evs[1])
	}
	if evs[2].Track != TrackIO {
		t.Errorf("event 2 track = %d, want TrackIO", evs[2].Track)
	}
	if evs[0].Start >= evs[1].Start || evs[1].Start >= evs[2].Start {
		t.Errorf("events out of order: %+v", evs)
	}
}

func TestEndBytesOverridesBytes(t *testing.T) {
	c := testCollector(4, 1)
	tr := c.Tracer(1)
	tr.Begin(PhaseMPIRecv, NoWindow, 0).EndBytes(777)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Bytes != 777 {
		t.Fatalf("events = %+v, want one with Bytes=777", evs)
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	c := testCollector(4, 1)
	tr := c.Tracer(0)
	for i := 0; i < 10; i++ {
		tr.Begin(PhaseCopy, int64(i), 0).End()
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("buffered = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Window != want {
			t.Errorf("event %d window = %d, want %d", i, ev.Window, want)
		}
	}
	// Recent returns a suffix, oldest first.
	last2 := tr.Recent(2)
	if len(last2) != 2 || last2[0].Window != 8 || last2[1].Window != 9 {
		t.Fatalf("Recent(2) = %+v", last2)
	}
	// Totals survive the wrap.
	totals, counts := tr.phaseTotals()
	if counts[PhaseCopy] != 10 || totals[PhaseCopy] != 10 {
		t.Fatalf("totals = %v counts = %v", totals, counts)
	}
}

func TestCurrentTracksInFlightSpan(t *testing.T) {
	c := testCollector(8, 1)
	tr := c.Tracer(2)
	if _, ok := tr.Current(); ok {
		t.Fatal("fresh tracer has a current span")
	}
	sp := tr.Begin(PhaseMPIRecv, NoWindow, 0)
	cur, ok := tr.Current()
	if !ok || cur.Phase != PhaseMPIRecv || cur.Dur >= 0 {
		t.Fatalf("in-flight current = %+v ok=%v", cur, ok)
	}
	sp.End()
	cur, ok = tr.Current()
	if !ok || cur.Dur < 0 {
		t.Fatalf("finished current = %+v ok=%v", cur, ok)
	}
}

// TestConcurrentRecording exercises the tracer from several goroutines
// (the pipelined window loop records background I/O spans concurrently
// with main-goroutine exchange spans); run under -race.
func TestConcurrentRecording(t *testing.T) {
	c := NewCollector(64)
	tr := c.Tracer(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					tr.BeginIO(PhasePreRead, int64(i), 1).End()
				} else {
					tr.Begin(PhaseExchange, int64(i), 1).End()
					tr.Instant(PhaseMPISend, NoWindow, 1, "")
				}
			}
		}(g)
	}
	wg.Wait()
	_, counts := tr.phaseTotals()
	if counts[PhasePreRead] != 400 || counts[PhaseExchange] != 400 || counts[PhaseMPISend] != 400 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestForensicsFormat(t *testing.T) {
	c := testCollector(8, 1000)
	c.Tracer(0).Begin(PhaseWindow, 65536, 128).End()
	c.Tracer(1).Begin(PhaseMPIRecv, NoWindow, 0) // left in flight
	c.Storage().Instant(PhaseChaosTransient, 512, 0, "read fault")

	got := c.Forensics(4)
	for _, want := range []string{
		"rank 0:", "coll.window @65536 128B",
		"rank 1:", "in-flight: mpi.recv",
		"storage backend:", "chaos.transient", "(read fault)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("forensics missing %q:\n%s", want, got)
		}
	}
}

func TestSummaryImbalance(t *testing.T) {
	c := testCollector(8, 0) // manual durations via clock steps? use explicit spans
	// Use a controllable clock: rank 0 spends 3x rank 1's time in the
	// exchange phase.
	var now int64
	c.clock = func() int64 { return now }
	sp := c.Tracer(0).Begin(PhaseExchange, NoWindow, 0)
	now = 3000
	sp.End()
	sp = c.Tracer(1).Begin(PhaseExchange, NoWindow, 0)
	now = 4000
	sp.End()

	got := c.Summary()
	if !strings.Contains(got, "coll.exchange") {
		t.Fatalf("summary missing phase:\n%s", got)
	}
	if !strings.Contains(got, "rank 0 (75%)") {
		t.Errorf("summary missing imbalance share (want rank 0 at 75%%):\n%s", got)
	}
	if !strings.Contains(got, "2 ranks") {
		t.Errorf("summary missing rank count:\n%s", got)
	}
}
