// Package trace is the per-rank observability layer of the repository:
// structured spans and instant events recorded into fixed-size per-rank
// ring buffers, log-bucketed latency histograms mergeable across ranks,
// and a world-level Collector that exports a Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto) plus a per-rank imbalance
// summary.
//
// The paper's argument is a cost breakdown — where list-based I/O loses
// time (ol-list build, exchange, traversal) versus where listless I/O
// spends it (pack/copy, storage) — and flat end-of-run counters cannot
// attribute that cost to individual windows, phases, or ranks.  This
// package provides the attribution substrate: internal/core wraps its
// collective phases and sieving windows in spans, internal/mpi wraps
// its blocking waits, and internal/storage marks backend operations,
// injected faults, and retries.
//
// Cost model: a disabled tracer is a nil pointer, so every
// instrumentation site costs one nil check and nothing else.  An
// enabled span costs two monotonic clock reads, one short mutex
// critical section, and one ring-slot store — no allocation.  Memory is
// bounded by the ring (BufSize events per rank); when the ring wraps,
// the oldest events are dropped and counted.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Phase names one kind of span or instant event.  The taxonomy is
// central so that exports, summaries, and forensics agree on names
// (see DESIGN.md §6 for the full catalogue).
type Phase string

// Span phases.
const (
	// Whole-operation spans (one per access per rank).
	PhaseCollWrite Phase = "coll.write"
	PhaseCollRead  Phase = "coll.read"
	PhaseIndWrite  Phase = "ind.write"
	PhaseIndRead   Phase = "ind.read"

	// Collective sub-phases.
	PhaseCollPlan     Phase = "coll.plan"          // allgather + domain partition
	PhaseAPSetup      Phase = "coll.ap-setup"      // AP phase 1 (ol-list build+send / view exchange)
	PhaseIOPSetup     Phase = "coll.iop-setup"     // IOP engine setup (list receive+decode)
	PhaseWindow       Phase = "coll.window"        // one IOP window's main-goroutine processing
	PhasePipelineWait Phase = "coll.pipeline-wait" // main goroutine waiting on a background pre-read
	PhaseExchange     Phase = "coll.exchange"      // one AP↔IOP data chunk send/recv
	PhaseCopy         Phase = "coll.copy"          // pack/unpack and window merge copies

	// Storage sub-phases of the window loops and data sieving.
	PhasePreRead    Phase = "storage.pre-read"   // collective window pre-read
	PhaseWriteBack  Phase = "storage.write-back" // collective window write-back
	PhaseSieveRead  Phase = "sieve.read"         // independent sieving window read
	PhaseSieveWrite Phase = "sieve.write"        // independent sieving window RMW

	// Blocking MPI waits.
	PhaseMPIRecv    Phase = "mpi.recv"
	PhaseMPIBarrier Phase = "mpi.barrier"

	// Wire-level transport activity (the TCP transport's per-link
	// reader and writer goroutines; the in-process loopback emits none).
	PhaseWireSend Phase = "wire.send" // one coalesced flush of queued frames
	PhaseWireRecv Phase = "wire.recv" // one frame's payload transfer

	// Backend operations (the storage.Traced wrapper).
	PhaseStorageRead     Phase = "storage.read"
	PhaseStorageWrite    Phase = "storage.write"
	PhaseStorageSync     Phase = "storage.sync"
	PhaseStorageTruncate Phase = "storage.truncate"

	// Registered-view operations against a ViewBackend (the remote
	// I/O-server tier): one span per view-addressed data transfer.
	PhaseStorageViewRead  Phase = "storage.view-read"
	PhaseStorageViewWrite Phase = "storage.view-write"

	// I/O-server request handling (the ioserver.Server side): one span
	// per request that moves data.
	PhaseServerRead      Phase = "server.read"       // raw offset-list read
	PhaseServerWrite     Phase = "server.write"      // raw offset-list write
	PhaseServerViewRead  Phase = "server.view-read"  // server-side view evaluation, read
	PhaseServerViewWrite Phase = "server.view-write" // server-side view evaluation, write

	// Epoch commit protocol (crash-consistent collective writes).
	PhaseEpochSeal    Phase = "epoch.seal"    // per-rank seal round before commit
	PhaseEpochCommit  Phase = "epoch.commit"  // rank 0's commit broadcast to the servers
	PhaseServerStage  Phase = "server.stage"  // one staged (journaled) write request
	PhaseServerCommit Phase = "server.commit" // one server applying a committed epoch
)

// Instant phases.
const (
	PhaseMPISend        Phase = "mpi.send"      // message posted
	PhasePoolAlloc      Phase = "pool.alloc"    // buffer-pool miss: a fresh class buffer was allocated
	PhasePoolOversize   Phase = "pool.oversize" // buffer-pool bypass: request above the largest class
	PhaseFault          Phase = "coll.fault"    // agreed collective error
	PhaseRetry          Phase = "storage.retry" // Resilient reissued an op
	PhaseRetryExhausted Phase = "storage.retry-exhausted"
	PhaseChaosTransient Phase = "chaos.transient"
	PhaseChaosPermanent Phase = "chaos.permanent"
	PhaseChaosShortRead Phase = "chaos.short-read"
	PhaseChaosTornWrite Phase = "chaos.torn-write"
	PhaseChaosSpike     Phase = "chaos.spike"

	// I/O-server view-cache events.
	PhaseServerViewReg   Phase = "server.view-register" // view decoded and cached
	PhaseServerViewHit   Phase = "server.view-hit"      // registration served from the LRU cache
	PhaseServerViewStale Phase = "server.view-stale"    // request named an evicted handle

	// Epoch commit protocol events.
	PhaseEpochRetry    Phase = "epoch.retry"    // seal/commit round retried after a server bounce
	PhaseServerRecover Phase = "server.recover" // journal recovery at server start
	PhaseChaosViewOp   Phase = "chaos.view-op"  // injected fault on a registered-view operation

	// Wire-level fault injection (transport.ChaosConn).
	PhaseWireChaosSpike     Phase = "wire.chaos-spike"     // injected latency
	PhaseWireChaosDrop      Phase = "wire.chaos-drop"      // frame silently dropped
	PhaseWireChaosDup       Phase = "wire.chaos-duplicate" // frame sent twice
	PhaseWireChaosCorrupt   Phase = "wire.chaos-corrupt"   // byte flipped in flight
	PhaseWireChaosReset     Phase = "wire.chaos-reset"     // mid-message connection reset
	PhaseWireChaosPartition Phase = "wire.chaos-partition" // one-directional stall

	// I/O session service (internal/session): job lifecycle and the
	// per-session client cache.
	PhaseSessionJob      Phase = "session.job"      // one job's execution on the shared pool
	PhaseSessionQueue    Phase = "session.queue"    // time a job aged in the admission queue
	PhaseCacheFlush      Phase = "cache.flush"      // write-behind dirty set pushed to the backend
	PhaseCachePrefetch   Phase = "cache.prefetch"   // read-ahead issued for a detected stride
	PhaseCacheHit        Phase = "cache.hit"        // read served from the read-ahead cache
	PhaseCacheInvalidate Phase = "cache.invalidate" // read-ahead dropped (view change / overlap)
	PhaseSessionReject   Phase = "session.reject"   // job refused by admission control
)

// Kind distinguishes completed spans from instant events.
type Kind uint8

// The two event kinds.
const (
	KindSpan Kind = iota
	KindInstant
)

// Tracks separate a rank's concurrent activities so exported spans nest
// properly: the pipelined window loop's background storage I/O overlaps
// the main goroutine's exchange spans by design.
const (
	TrackMain = 0 // the rank's main goroutine
	TrackIO   = 1 // the pipelined loop's background storage I/O
	TrackWire = 2 // the network transport's reader/writer goroutines
)

// RankStorage is the pseudo-rank of the shared storage backend's track
// (the backend is world-level state, not owned by any rank).
const RankStorage = -1

// NoWindow marks spans not tied to a file window.
const NoWindow = int64(-1)

// Event is one recorded span or instant.
type Event struct {
	Rank  int
	Track int
	Kind  Kind
	Phase Phase
	// Window is the absolute file offset of the window or operation the
	// event covers, or NoWindow.
	Window int64
	// Bytes is the payload volume of the event (0 when not applicable).
	Bytes int64
	// Start is nanoseconds since the collector's epoch; Dur is the span
	// duration (0 for instants).
	Start, Dur int64
	// Detail carries free-form context for instants (fault messages).
	Detail string
}

// String renders one event for forensics output.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[+%v] %s", time.Duration(e.Start).Round(time.Microsecond), e.Phase)
	if e.Window != NoWindow {
		fmt.Fprintf(&b, " @%d", e.Window)
	}
	if e.Bytes > 0 {
		fmt.Fprintf(&b, " %dB", e.Bytes)
	}
	if e.Kind == KindSpan {
		fmt.Fprintf(&b, " dur=%v", time.Duration(e.Dur).Round(time.Nanosecond))
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	return b.String()
}

// Tracer records one rank's events.  All methods are safe on a nil
// receiver (the disabled state) and safe for concurrent use — the
// pipelined window loop records background I/O spans from its prep and
// write-back goroutines.
type Tracer struct {
	rank    int
	clock   func() int64
	metrics *Metrics

	mu     sync.Mutex
	buf    []Event
	n      uint64 // events ever recorded
	cur    Event  // last span begun (possibly unfinished)
	curSet bool
	totals map[Phase]int64 // per-phase span ns (for imbalance)
	counts map[Phase]int64 // per-phase span/instant counts
}

func newTracer(rank, bufSize int, clock func() int64) *Tracer {
	return &Tracer{
		rank:    rank,
		clock:   clock,
		metrics: NewMetrics(),
		buf:     make([]Event, bufSize),
		totals:  make(map[Phase]int64),
		counts:  make(map[Phase]int64),
	}
}

// Enabled reports whether the tracer records anything.  Use it to guard
// work done only to build event details.
func (t *Tracer) Enabled() bool { return t != nil }

// Rank reports the rank the tracer records for.
func (t *Tracer) Rank() int {
	if t == nil {
		return -1
	}
	return t.rank
}

// Span is one in-flight span.  The zero Span (from a disabled tracer)
// is inert.
type Span struct {
	t      *Tracer
	phase  Phase
	track  int
	window int64
	bytes  int64
	start  int64
}

// Begin starts a span on the rank's main track.  window is the absolute
// file offset the span covers (NoWindow when not applicable); bytes the
// payload volume (0 when unknown — see Span.EndBytes).
func (t *Tracer) Begin(ph Phase, window, bytes int64) Span {
	return t.begin(TrackMain, ph, window, bytes)
}

// BeginIO starts a span on the rank's background-I/O track, for storage
// operations the pipelined window loop runs concurrently with the main
// goroutine's exchange.
func (t *Tracer) BeginIO(ph Phase, window, bytes int64) Span {
	return t.begin(TrackIO, ph, window, bytes)
}

// BeginWire starts a span on the rank's wire track, for the transport's
// reader/writer goroutines, which overlap the main goroutine by design.
func (t *Tracer) BeginWire(ph Phase, bytes int64) Span {
	return t.begin(TrackWire, ph, NoWindow, bytes)
}

func (t *Tracer) begin(track int, ph Phase, window, bytes int64) Span {
	if t == nil {
		return Span{}
	}
	start := t.clock()
	t.mu.Lock()
	t.cur = Event{Rank: t.rank, Track: track, Kind: KindSpan, Phase: ph,
		Window: window, Bytes: bytes, Start: start, Dur: -1}
	t.curSet = true
	t.mu.Unlock()
	return Span{t: t, phase: ph, track: track, window: window, bytes: bytes, start: start}
}

// End completes the span, recording it into the ring and observing its
// duration in the phase histogram.
func (s Span) End() { s.EndBytes(s.bytes) }

// EndBytes is End with the payload volume learned during the span (a
// Recv's message size).
func (s Span) EndBytes(bytes int64) {
	t := s.t
	if t == nil {
		return
	}
	dur := t.clock() - s.start
	t.mu.Lock()
	t.record(Event{Rank: t.rank, Track: s.track, Kind: KindSpan, Phase: s.phase,
		Window: s.window, Bytes: bytes, Start: s.start, Dur: dur})
	t.totals[s.phase] += dur
	t.counts[s.phase]++
	if t.curSet && t.cur.Start == s.start && t.cur.Phase == s.phase && t.cur.Track == s.track {
		t.cur.Dur = dur // the in-flight marker is now finished
	}
	t.mu.Unlock()
	t.metrics.Observe(s.phase, dur)
}

// Instant records a point event (a posted message, an injected fault, a
// retry).
func (t *Tracer) Instant(ph Phase, window, bytes int64, detail string) {
	if t == nil {
		return
	}
	ts := t.clock()
	t.mu.Lock()
	t.record(Event{Rank: t.rank, Track: TrackMain, Kind: KindInstant, Phase: ph,
		Window: window, Bytes: bytes, Start: ts, Detail: detail})
	t.counts[ph]++
	t.mu.Unlock()
}

// record stores ev in the ring; the caller holds t.mu.
func (t *Tracer) record(ev Event) {
	t.buf[t.n%uint64(len(t.buf))] = ev
	t.n++
}

// Current returns the last span begun on this rank, finished or not —
// an unfinished one is exactly what a stalled rank is blocked inside.
func (t *Tracer) Current() (Event, bool) {
	if t == nil {
		return Event{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur, t.curSet
}

// Recent returns up to n of the most recently recorded events, oldest
// first.
func (t *Tracer) Recent(n int) []Event {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.n
	if have > uint64(len(t.buf)) {
		have = uint64(len(t.buf))
	}
	if have > uint64(n) {
		have = uint64(n)
	}
	out := make([]Event, have)
	for i := uint64(0); i < have; i++ {
		out[i] = t.buf[(t.n-have+i)%uint64(len(t.buf))]
	}
	return out
}

// Events returns every buffered event, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.Recent(len(t.buf))
}

// Dropped reports how many events the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return int64(t.n - uint64(len(t.buf)))
}

// Metrics returns the tracer's phase histograms.
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// phaseTotals copies the per-phase span-duration and count maps.
func (t *Tracer) phaseTotals() (totals, counts map[Phase]int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	totals = make(map[Phase]int64, len(t.totals))
	for ph, ns := range t.totals {
		totals[ph] = ns
	}
	counts = make(map[Phase]int64, len(t.counts))
	for ph, c := range t.counts {
		counts[ph] = c
	}
	return totals, counts
}
