package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultBufSize is the per-rank ring capacity when none is given.
const DefaultBufSize = 4096

// Collector is the world-level trace state: it hands out per-rank
// Tracers sharing one epoch clock, and after a run merges their rings
// and histograms into a Chrome trace export, a per-rank imbalance
// summary, and stall/fault forensics.  All methods are safe on a nil
// receiver, so a nil *Collector is the disabled state that flows
// through configuration structs.
type Collector struct {
	epoch   time.Time
	clock   func() int64
	bufSize int

	mu      sync.Mutex
	tracers map[int]*Tracer
}

// NewCollector creates a collector whose tracers hold bufSize events
// each (0 selects DefaultBufSize).
func NewCollector(bufSize int) *Collector {
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	c := &Collector{epoch: time.Now(), bufSize: bufSize, tracers: make(map[int]*Tracer)}
	c.clock = func() int64 { return time.Since(c.epoch).Nanoseconds() }
	return c
}

// Tracer returns the tracer of one rank, creating it on first use.
// Safe to call concurrently from every rank goroutine.
func (c *Collector) Tracer(rank int) *Tracer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tracers[rank]
	if t == nil {
		t = newTracer(rank, c.bufSize, c.clock)
		c.tracers[rank] = t
	}
	return t
}

// Storage returns the shared storage backend's tracer (pseudo-rank
// RankStorage, rendered as its own track).
func (c *Collector) Storage() *Tracer { return c.Tracer(RankStorage) }

// ranks lists the tracked ranks in ascending order (storage last).
func (c *Collector) ranks() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.tracers))
	for r := range c.tracers {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a == RankStorage) != (b == RankStorage) {
			return b == RankStorage // real ranks first
		}
		return a < b
	})
	return out
}

// Events merges every rank's buffered events, sorted by start time.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	var out []Event
	for _, r := range c.ranks() {
		out = append(out, c.Tracer(r).Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped sums the ring overwrites across all ranks.
func (c *Collector) Dropped() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for _, r := range c.ranks() {
		n += c.Tracer(r).Dropped()
	}
	return n
}

// MergedMetrics folds every rank's histograms into one metric set.
func (c *Collector) MergedMetrics() *Metrics {
	if c == nil {
		return nil
	}
	m := NewMetrics()
	for _, r := range c.ranks() {
		m.Merge(c.Tracer(r).Metrics())
	}
	return m
}

// Summary renders the per-phase breakdown: world totals and counts,
// latency quantiles from the merged histograms, and the per-rank
// imbalance — which rank spent the most time in the phase and what
// share of the world total that is (1/nranks is perfect balance, 1.0
// is one rank doing all the work).
func (c *Collector) Summary() string {
	if c == nil {
		return ""
	}
	type rankTotals struct {
		rank   int
		totals map[Phase]int64
		counts map[Phase]int64
	}
	var rts []rankTotals
	var nRanks int
	for _, r := range c.ranks() {
		if r == RankStorage {
			continue
		}
		nRanks++
		totals, counts := c.Tracer(r).phaseTotals()
		rts = append(rts, rankTotals{rank: r, totals: totals, counts: counts})
	}
	merged := c.MergedMetrics()

	// World totals per phase, from the per-rank totals (ring-proof:
	// totals accumulate even after the ring wraps).
	worldNs := make(map[Phase]int64)
	worldCount := make(map[Phase]int64)
	maxNs := make(map[Phase]int64)
	maxRank := make(map[Phase]int)
	for _, rt := range rts {
		for ph, ns := range rt.totals {
			worldNs[ph] += ns
			if ns > maxNs[ph] {
				maxNs[ph] = ns
				maxRank[ph] = rt.rank
			}
		}
		for ph, n := range rt.counts {
			worldCount[ph] += n
		}
	}
	phases := make([]Phase, 0, len(worldNs))
	for ph := range worldNs {
		phases = append(phases, ph)
	}
	sort.Slice(phases, func(i, j int) bool { return worldNs[phases[i]] > worldNs[phases[j]] })

	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d ranks, %d events buffered (%d dropped)\n",
		nRanks, len(c.Events()), c.Dropped())
	fmt.Fprintf(&b, "  %-22s %10s %8s %9s %9s %9s   %s\n",
		"phase", "total", "count", "mean", "p50", "p99", "slowest rank (share)")
	us := func(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }
	for _, ph := range phases {
		var mean, p50, p99 int64
		if h := merged.Hist(ph); h != nil {
			mean, p50, p99 = h.Mean(), h.Quantile(0.5), h.Quantile(0.99)
		}
		share := 0.0
		if worldNs[ph] > 0 {
			share = float64(maxNs[ph]) / float64(worldNs[ph])
		}
		fmt.Fprintf(&b, "  %-22s %10s %8d %9s %9s %9s   rank %d (%2.0f%%)\n",
			ph, us(worldNs[ph]), worldCount[ph], us(mean), us(p50), us(p99),
			maxRank[ph], share*100)
	}
	return b.String()
}

// Forensics renders the last perRank events of every rank, plus its
// in-flight span — the post-mortem attached to stalls and collective
// faults.
func (c *Collector) Forensics(perRank int) string {
	if c == nil {
		return ""
	}
	var b strings.Builder
	for _, r := range c.ranks() {
		t := c.Tracer(r)
		if r == RankStorage {
			fmt.Fprintf(&b, "storage backend:\n")
		} else {
			fmt.Fprintf(&b, "rank %d:\n", r)
		}
		evs := t.Recent(perRank)
		if len(evs) == 0 {
			b.WriteString("  (no events)\n")
		}
		for _, ev := range evs {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
		if cur, ok := t.Current(); ok && cur.Dur < 0 {
			fmt.Fprintf(&b, "  in-flight: %s begun +%v",
				cur.Phase, time.Duration(cur.Start).Round(time.Microsecond))
			if cur.Window != NoWindow {
				fmt.Fprintf(&b, " @%d", cur.Window)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
