package trace

import (
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketOf(max64(c.v, 0)); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Bucket upper bounds: bucket i covers [2^(i-1), 2^i).
	if bucketHi(0) != 0 || bucketHi(1) != 1 || bucketHi(3) != 7 || bucketHi(11) != 2047 {
		t.Errorf("bucketHi = %d %d %d %d", bucketHi(0), bucketHi(1), bucketHi(3), bucketHi(11))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 200, 300, 400, 1000} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Sum() != 2000 || h.Min() != 100 || h.Max() != 1000 || h.Mean() != 400 {
		t.Fatalf("count=%d sum=%d min=%d max=%d mean=%d",
			h.Count(), h.Sum(), h.Min(), h.Max(), h.Mean())
	}
	// Quantiles are bucket upper bounds clamped to the observed max.
	if q := h.Quantile(0.5); q < 100 || q > 511 {
		t.Errorf("p50 = %d, want within [100,511]", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want clamped to max 1000", q)
	}
	if q := h.Quantile(0); q < 100 || q > 127 {
		t.Errorf("p0 = %d, want first bucket bound", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.9) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestHistogramMerge: merging two histograms must equal observing the
// union of their samples.
func TestHistogramMerge(t *testing.T) {
	var a, b, want Histogram
	as := []int64{1, 5, 9, 1 << 20}
	bs := []int64{0, 2, 700, 1 << 30}
	for _, v := range as {
		a.Add(v)
		want.Add(v)
	}
	for _, v := range bs {
		b.Add(v)
		want.Add(v)
	}
	a.Merge(&b)
	if a.Count() != want.Count() || a.Sum() != want.Sum() ||
		a.Min() != want.Min() || a.Max() != want.Max() {
		t.Fatalf("merged: count=%d sum=%d min=%d max=%d; want count=%d sum=%d min=%d max=%d",
			a.Count(), a.Sum(), a.Min(), a.Max(),
			want.Count(), want.Sum(), want.Min(), want.Max())
	}
	if a.counts != want.counts {
		t.Fatalf("merged buckets = %v, want %v", a.counts, want.counts)
	}
	// Merging an empty or nil histogram is a no-op.
	before := a.counts
	a.Merge(&Histogram{})
	a.Merge(nil)
	if a.counts != before {
		t.Fatal("merging empty histogram changed buckets")
	}
}

func TestMetricsObserveAndMerge(t *testing.T) {
	m1, m2 := NewMetrics(), NewMetrics()
	m1.Observe(PhaseExchange, 100)
	m1.Observe(PhaseExchange, 200)
	m1.Observe(PhaseCopy, 50)
	m2.Observe(PhaseExchange, 300)
	m2.Observe(PhasePreRead, 75)

	m1.Merge(m2)
	if got := m1.Hist(PhaseExchange).Count(); got != 3 {
		t.Errorf("exchange count = %d, want 3", got)
	}
	if got := m1.Hist(PhasePreRead).Sum(); got != 75 {
		t.Errorf("pre-read sum = %d, want 75", got)
	}
	phases := m1.Phases()
	if len(phases) != 3 {
		t.Fatalf("phases = %v, want 3", phases)
	}
	for i := 1; i < len(phases); i++ {
		if phases[i-1] >= phases[i] {
			t.Fatalf("phases not sorted: %v", phases)
		}
	}
	if m1.Hist(PhaseFault) != nil {
		t.Error("unobserved phase has a histogram")
	}
	s := m1.String()
	for _, ph := range phases {
		if !strings.Contains(s, string(ph)) {
			t.Errorf("String() missing %s:\n%s", ph, s)
		}
	}

	// nil metrics are inert.
	var nm *Metrics
	nm.Observe(PhaseCopy, 1)
	nm.Merge(m1)
	if nm.Hist(PhaseCopy) != nil || nm.Phases() != nil {
		t.Error("nil metrics has state")
	}
}
