// Package datatype implements an MPI-style derived-datatype engine.
//
// A Type describes the layout of typed data in a buffer as a tree built
// from named (basic) types and the MPI type constructors: contiguous,
// vector, hvector, indexed, hindexed, struct, subarray and resized.  The
// tree is the succinct representation whose absence in ROMIO-style
// implementations ("ol-lists" of ⟨offset,length⟩ tuples) is the bottleneck
// analyzed by Worringen, Träff and Ritzdorf, "Fast Parallel Non-Contiguous
// File Access" (SC'03).
//
// Types are immutable after construction and safe for concurrent use.
// All offsets, sizes and extents are in bytes unless stated otherwise.
package datatype

import (
	"errors"
	"fmt"
)

// Kind identifies the constructor that produced a Type node.
type Kind uint8

// The type-constructor kinds.
const (
	KindNamed      Kind = iota // basic type (byte, int32, double, ...) or LB/UB marker
	KindContiguous             // count consecutive children
	KindVector                 // count blocks of blocklen children, regular stride
	KindIndexed                // blocks of children at per-block displacements
	KindStruct                 // blocks of heterogeneous children at displacements
	KindResized                // child with overridden lower bound and extent
)

func (k Kind) String() string {
	switch k {
	case KindNamed:
		return "named"
	case KindContiguous:
		return "contiguous"
	case KindVector:
		return "vector"
	case KindIndexed:
		return "indexed"
	case KindStruct:
		return "struct"
	case KindResized:
		return "resized"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Type is an immutable node in a derived-datatype tree.
//
// The zero Type is not valid; use the named types (Byte, Double, ...) and
// the constructors (Contiguous, Vector, ...) to build values.
type Type struct {
	kind Kind
	name string // non-empty for named types

	// Derived properties, computed at construction.
	size     int64 // bytes of actual data in one instance
	lb, ub   int64 // lower/upper bound; extent = ub-lb
	trueLB   int64 // lowest byte of actual data
	trueUB   int64 // one past the highest byte of actual data
	depth    int   // tree depth; a named type has depth 1
	blocks   int64 // contiguous leaf blocks per instance (uncoalesced)
	dense    bool  // data of one instance forms a single contiguous run
	tileable bool  // repeated instances remain one run (dense && size==extent && trueLB==lb)
	hasLB    bool  // an explicit MPI_LB marker fixes lb
	hasUB    bool  // an explicit MPI_UB marker fixes ub

	// Constructor arguments (normalized: strides/displacements in bytes).
	count     int64 // contiguous, vector: repetition count
	blocklen  int64 // vector: children per block
	stride    int64 // vector: byte distance between block starts
	blocklens []int64
	displs    []int64 // byte displacements (indexed, struct)
	child     *Type   // contiguous, vector, indexed, resized
	children  []*Type // struct
}

// Kind reports the constructor kind of t.
func (t *Type) Kind() Kind { return t.kind }

// Name reports the name of a named type and "" for derived types.
func (t *Type) Name() string { return t.name }

// Size reports the number of bytes of actual data in one instance of t.
func (t *Type) Size() int64 { return t.size }

// Extent reports ub-lb, the stride at which consecutive instances of t
// are laid out.
func (t *Type) Extent() int64 { return t.ub - t.lb }

// LB reports the lower bound of t.
func (t *Type) LB() int64 { return t.lb }

// UB reports the upper bound of t.
func (t *Type) UB() int64 { return t.ub }

// TrueLB reports the lowest byte offset occupied by data of one instance.
func (t *Type) TrueLB() int64 { return t.trueLB }

// TrueUB reports one past the highest byte offset occupied by data.
func (t *Type) TrueUB() int64 { return t.trueUB }

// TrueExtent reports TrueUB-TrueLB, the span of actual data.
func (t *Type) TrueExtent() int64 { return t.trueUB - t.trueLB }

// Depth reports the depth of the datatype tree.  Navigation and
// pack/unpack setup in the listless engine cost O(Depth), in contrast to
// the O(Blocks) costs of ol-list handling.
func (t *Type) Depth() int { return t.depth }

// Blocks reports the number of (uncoalesced) contiguous leaf blocks in one
// instance of t.  This is the length a flattened ol-list of t would have
// before coalescing, i.e. the N_block of the paper.
func (t *Type) Blocks() int64 { return t.blocks }

// Dense reports whether the data of a single instance forms one
// contiguous run of bytes.
func (t *Type) Dense() bool { return t.dense }

// ContiguousTiled reports whether count consecutive instances of t form a
// single contiguous run for every count, i.e. the type behaves like a
// plain byte range under repetition.
func (t *Type) ContiguousTiled() bool { return t.tileable }

// Count reports the repetition count of contiguous and vector types.
func (t *Type) Count() int64 { return t.count }

// Blocklen reports the per-block child count of vector types.
func (t *Type) Blocklen() int64 { return t.blocklen }

// StrideBytes reports the byte distance between block starts of vector
// types.
func (t *Type) StrideBytes() int64 { return t.stride }

// Blocklens reports the per-block child counts of indexed and struct
// types.  The caller must not modify the returned slice.
func (t *Type) Blocklens() []int64 { return t.blocklens }

// Displs reports the byte displacements of indexed and struct types.  The
// caller must not modify the returned slice.
func (t *Type) Displs() []int64 { return t.displs }

// Child reports the element type of contiguous, vector, indexed and
// resized types, and nil for named and struct types.
func (t *Type) Child() *Type { return t.child }

// Children reports the member types of a struct type.  The caller must
// not modify the returned slice.
func (t *Type) Children() []*Type { return t.children }

// Walk calls emit for every contiguous leaf block of one instance of t,
// in type-map order.  Offsets are byte displacements from the instance
// origin (they may be negative when lb < 0).  Zero-length blocks (from
// markers and empty members) are not emitted.  Walk is the reference
// traversal used to build ol-lists; its cost is O(Blocks()).
func (t *Type) Walk(emit func(off, length int64)) {
	t.walk(0, emit)
}

func (t *Type) walk(base int64, emit func(off, length int64)) {
	if t.size == 0 {
		return
	}
	switch t.kind {
	case KindNamed:
		emit(base, t.size)
	case KindContiguous:
		ext := t.child.Extent()
		if t.child.dense && t.child.size == ext {
			// Whole region is one run.
			emit(base+t.child.trueLB, t.count*t.child.size)
			return
		}
		for i := int64(0); i < t.count; i++ {
			t.child.walk(base+i*ext, emit)
		}
	case KindVector:
		ext := t.child.Extent()
		blockDense := t.child.dense && (t.child.size == ext || t.blocklen == 1)
		for i := int64(0); i < t.count; i++ {
			bb := base + i*t.stride
			if blockDense {
				emit(bb+t.child.trueLB, t.blocklen*t.child.size)
				continue
			}
			for j := int64(0); j < t.blocklen; j++ {
				t.child.walk(bb+j*ext, emit)
			}
		}
	case KindIndexed:
		ext := t.child.Extent()
		blockDense := t.child.dense && t.child.size == ext
		for i, bl := range t.blocklens {
			bb := base + t.displs[i]
			if bl == 0 {
				continue
			}
			if blockDense || (bl == 1 && t.child.dense) {
				emit(bb+t.child.trueLB, bl*t.child.size)
				continue
			}
			for j := int64(0); j < bl; j++ {
				t.child.walk(bb+j*ext, emit)
			}
		}
	case KindStruct:
		for i, c := range t.children {
			bl := t.blocklens[i]
			if bl == 0 || c.size == 0 {
				continue
			}
			bb := base + t.displs[i]
			ext := c.Extent()
			if c.dense && c.size == ext {
				emit(bb+c.trueLB, bl*c.size)
				continue
			}
			for j := int64(0); j < bl; j++ {
				c.walk(bb+j*ext, emit)
			}
		}
	case KindResized:
		t.child.walk(base, emit)
	}
}

// Named basic types.  LBMarker and UBMarker are the MPI_LB / MPI_UB
// pseudo-types: zero-size markers that pin the bounds of an enclosing
// struct type.
var (
	Byte       = named("byte", 1)
	Char       = named("char", 1)
	Int8       = named("int8", 1)
	Int16      = named("int16", 2)
	Int32      = named("int32", 4)
	Int64      = named("int64", 8)
	Uint64     = named("uint64", 8)
	Float32    = named("float32", 4)
	Float64    = named("float64", 8)
	Double     = Float64
	Complex128 = named("complex128", 16)

	LBMarker = &Type{kind: KindNamed, name: "lb", depth: 1, hasLB: true, dense: true, tileable: true}
	UBMarker = &Type{kind: KindNamed, name: "ub", depth: 1, hasUB: true, dense: true, tileable: true}
)

func named(name string, size int64) *Type {
	return &Type{
		kind:     KindNamed,
		name:     name,
		size:     size,
		ub:       size,
		trueUB:   size,
		depth:    1,
		blocks:   1,
		dense:    true,
		tileable: true,
	}
}

// namedBySize returns a plausible named type of the given size, for
// decoding.  Unknown sizes decode as anonymous named types.
func namedBySize(name string, size int64) *Type {
	for _, t := range []*Type{Byte, Char, Int8, Int16, Int32, Int64, Uint64, Float32, Float64, Complex128} {
		if t.name == name && t.size == size {
			return t
		}
	}
	if name == "lb" {
		return LBMarker
	}
	if name == "ub" {
		return UBMarker
	}
	return named(name, size)
}

// errors shared by the constructors.
var (
	errNilChild    = errors.New("datatype: nil child type")
	errNegCount    = errors.New("datatype: negative count")
	errNegBlock    = errors.New("datatype: negative block length")
	errLenMismatch = errors.New("datatype: blocklens and displs length mismatch")
	errTooLarge    = errors.New("datatype: type size or extent exceeds the supported maximum")
)

// maxTypeBytes bounds every size, extent and displacement magnitude a
// constructor accepts, so that derived-property arithmetic cannot
// overflow int64 (important when decoding untrusted encodings).
const maxTypeBytes = 1 << 56

// checkMagnitude verifies |v| stays within maxTypeBytes.
func checkMagnitude(vs ...int64) error {
	for _, v := range vs {
		if v > maxTypeBytes || v < -maxTypeBytes {
			return errTooLarge
		}
	}
	return nil
}

// mulCheck multiplies non-negative a and b, reporting overflow of the
// maxTypeBytes budget.
func mulCheck(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	if a > maxTypeBytes/b {
		return 0, errTooLarge
	}
	return a * b, nil
}

// Contiguous returns a type of count consecutive instances of child.
func Contiguous(count int64, child *Type) (*Type, error) {
	if child == nil {
		return nil, errNilChild
	}
	if count < 0 {
		return nil, errNegCount
	}
	if _, err := mulCheck(count, max64(child.size, abs64(child.Extent()))); err != nil {
		return nil, err
	}
	t := &Type{
		kind:  KindContiguous,
		count: count,
		child: child,
	}
	t.finishHomogeneous(vectorShape{count: 1, blocklen: count, stride: 0})
	return t, nil
}

// Vector returns a type of count blocks, each of blocklen consecutive
// instances of child, with consecutive block starts stride child-extents
// apart (like MPI_Type_vector).
func Vector(count, blocklen, stride int64, child *Type) (*Type, error) {
	if child == nil {
		return nil, errNilChild
	}
	return Hvector(count, blocklen, stride*child.Extent(), child)
}

// Hvector is Vector with the stride given in bytes
// (like MPI_Type_create_hvector).
func Hvector(count, blocklen, strideBytes int64, child *Type) (*Type, error) {
	if child == nil {
		return nil, errNilChild
	}
	if count < 0 {
		return nil, errNegCount
	}
	if blocklen < 0 {
		return nil, errNegBlock
	}
	n, err := mulCheck(count, blocklen)
	if err != nil {
		return nil, err
	}
	if _, err := mulCheck(n, max64(child.size, abs64(child.Extent()))); err != nil {
		return nil, err
	}
	if _, err := mulCheck(count, abs64(strideBytes)); err != nil {
		return nil, err
	}
	t := &Type{
		kind:     KindVector,
		count:    count,
		blocklen: blocklen,
		stride:   strideBytes,
		child:    child,
	}
	t.finishHomogeneous(vectorShape{count: count, blocklen: blocklen, stride: strideBytes})
	return t, nil
}

// Indexed returns a type with len(blocklens) blocks; block i has
// blocklens[i] consecutive instances of child and starts displs[i]
// child-extents from the origin (like MPI_Type_indexed).
func Indexed(blocklens, displs []int64, child *Type) (*Type, error) {
	if child == nil {
		return nil, errNilChild
	}
	b := make([]int64, len(displs))
	for i, d := range displs {
		b[i] = d * child.Extent()
	}
	return Hindexed(blocklens, b, child)
}

// Hindexed is Indexed with displacements given in bytes
// (like MPI_Type_create_hindexed).
func Hindexed(blocklens, displsBytes []int64, child *Type) (*Type, error) {
	if child == nil {
		return nil, errNilChild
	}
	if len(blocklens) != len(displsBytes) {
		return nil, errLenMismatch
	}
	var total int64
	for i, bl := range blocklens {
		if bl < 0 {
			return nil, errNegBlock
		}
		n, err := mulCheck(bl, max64(child.size, abs64(child.Extent())))
		if err != nil {
			return nil, err
		}
		if total += n; total > maxTypeBytes {
			return nil, errTooLarge
		}
		if err := checkMagnitude(displsBytes[i]); err != nil {
			return nil, err
		}
	}
	t := &Type{
		kind:      KindIndexed,
		blocklens: append([]int64(nil), blocklens...),
		displs:    append([]int64(nil), displsBytes...),
		child:     child,
	}
	t.finishIndexed()
	return t, nil
}

// Struct returns a type with len(children) blocks; block i has
// blocklens[i] consecutive instances of children[i] and starts at byte
// displacement displs[i] (like MPI_Type_create_struct).  LBMarker and
// UBMarker members pin the bounds explicitly.
func Struct(blocklens, displs []int64, children []*Type) (*Type, error) {
	if len(blocklens) != len(displs) || len(blocklens) != len(children) {
		return nil, errLenMismatch
	}
	var total int64
	for i, c := range children {
		if c == nil {
			return nil, errNilChild
		}
		if blocklens[i] < 0 {
			return nil, errNegBlock
		}
		n, err := mulCheck(blocklens[i], max64(c.size, abs64(c.Extent())))
		if err != nil {
			return nil, err
		}
		if total += n; total > maxTypeBytes {
			return nil, errTooLarge
		}
		if err := checkMagnitude(displs[i]); err != nil {
			return nil, err
		}
	}
	t := &Type{
		kind:      KindStruct,
		blocklens: append([]int64(nil), blocklens...),
		displs:    append([]int64(nil), displs...),
		children:  append([]*Type(nil), children...),
	}
	t.finishStruct()
	return t, nil
}

// Resized returns child with its lower bound and extent overridden
// (like MPI_Type_create_resized).
func Resized(child *Type, lb, extent int64) (*Type, error) {
	if child == nil {
		return nil, errNilChild
	}
	if err := checkMagnitude(lb, extent, lb+extent); err != nil {
		return nil, err
	}
	t := &Type{
		kind:   KindResized,
		child:  child,
		size:   child.size,
		lb:     lb,
		ub:     lb + extent,
		trueLB: child.trueLB,
		trueUB: child.trueUB,
		depth:  child.depth + 1,
		blocks: child.blocks,
		dense:  child.dense,
		hasLB:  true,
		hasUB:  true,
	}
	t.tileable = t.dense && t.size == t.Extent() && t.trueLB == t.lb
	return t, nil
}

// Order selects the array storage order for Subarray.
type Order uint8

// Array storage orders.
const (
	OrderC       Order = iota // row-major: last dimension varies fastest
	OrderFortran              // column-major: first dimension varies fastest
)

// Subarray returns the type selecting the subsizes[...] region starting
// at starts[...] out of a sizes[...] array of child elements (like
// MPI_Type_create_subarray).  The resulting extent is the full array, so
// the type tiles correctly when used as a filetype.
func Subarray(sizes, subsizes, starts []int64, order Order, child *Type) (*Type, error) {
	if child == nil {
		return nil, errNilChild
	}
	n := len(sizes)
	if n == 0 || len(subsizes) != n || len(starts) != n {
		return nil, errors.New("datatype: subarray dimension mismatch")
	}
	for d := 0; d < n; d++ {
		if sizes[d] <= 0 || subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			return nil, fmt.Errorf("datatype: invalid subarray dim %d: size=%d subsize=%d start=%d",
				d, sizes[d], subsizes[d], starts[d])
		}
	}
	// Normalize to C order (last dim fastest) for the recursion below.
	if order == OrderFortran {
		sizes = reverse64(sizes)
		subsizes = reverse64(subsizes)
		starts = reverse64(starts)
	} else {
		sizes = append([]int64(nil), sizes...)
		subsizes = append([]int64(nil), subsizes...)
		starts = append([]int64(nil), starts...)
	}
	// Build innermost-out: a run of subsizes[n-1] children, then vectors.
	cur, err := Contiguous(subsizes[n-1], child)
	if err != nil {
		return nil, err
	}
	rowBytes := child.Extent() // bytes per element along the fastest dim
	dimBytes := rowBytes * sizes[n-1]
	offset := starts[n-1] * rowBytes
	for d := n - 2; d >= 0; d-- {
		cur, err = Hvector(subsizes[d], 1, dimBytes, cur)
		if err != nil {
			return nil, err
		}
		offset += starts[d] * dimBytes
		dimBytes *= sizes[d]
	}
	// Place at the start offset and pin the extent to the whole array.
	placed, err := Struct([]int64{1}, []int64{offset}, []*Type{cur})
	if err != nil {
		return nil, err
	}
	return Resized(placed, 0, dimBytes)
}

func reverse64(s []int64) []int64 {
	out := make([]int64, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// vectorShape captures the homogeneous-layout parameters shared by
// contiguous and (h)vector for derived-property computation.
type vectorShape struct {
	count, blocklen int64
	stride          int64 // bytes between block starts
}

func (t *Type) finishHomogeneous(sh vectorShape) {
	c := t.child
	cext := c.Extent()
	t.size = sh.count * sh.blocklen * c.size
	t.depth = c.depth + 1
	t.blocks = sh.count * sh.blocklen * c.blocks
	if c.dense && (c.size == cext || sh.blocklen <= 1) {
		// Each block is one run.
		t.blocks = sh.count
		if sh.blocklen == 0 || c.size == 0 {
			t.blocks = 0
		}
	}

	// Bounds.  Empty types have lb=ub=0 unless markers apply.
	if sh.count == 0 || sh.blocklen == 0 {
		t.hasLB, t.hasUB = c.hasLB, c.hasUB
		t.dense = true
		t.tileable = true
		return
	}
	blockSpan := (sh.blocklen - 1) * cext // start of last child in a block
	lastBlock := (sh.count - 1) * sh.stride
	lo, hi := int64(0), lastBlock
	if sh.stride < 0 {
		lo, hi = lastBlock, 0
	}
	t.lb = lo + c.lb
	t.ub = hi + blockSpan + c.ub
	if blockSpan < 0 { // negative child extent
		t.lb = lo + blockSpan + c.lb
		t.ub = hi + c.ub
	}
	t.hasLB, t.hasUB = c.hasLB, c.hasUB
	if c.size > 0 {
		t.trueLB = lo + min64(0, blockSpan) + c.trueLB
		t.trueUB = hi + max64(0, blockSpan) + c.trueUB
	}
	t.computeDensity()
	// A single fully-dense block is one run.
	if t.dense {
		if sh.count == 1 || (c.dense && c.size == cext && sh.blocklen*cext == sh.stride) || sh.blocklen*c.size == 0 {
			t.blocks = 1
		}
	}
	if t.size == 0 {
		t.blocks = 0
	}
}

func (t *Type) finishIndexed() {
	c := t.child
	cext := c.Extent()
	first := true
	firstTrue := true
	for i, bl := range t.blocklens {
		t.size += bl * c.size
		t.blocks += bl * c.blocks
		if c.dense && c.size == cext && bl > 0 {
			t.blocks -= bl*c.blocks - 1 // whole block is one run
		}
		d := t.displs[i]
		span := int64(0)
		if bl > 0 {
			span = (bl - 1) * cext
		}
		blo := d + min64(0, span) + c.lb
		bhi := d + max64(0, span) + c.ub
		if first {
			t.lb, t.ub = blo, bhi
			first = false
		} else {
			t.lb = min64(t.lb, blo)
			t.ub = max64(t.ub, bhi)
		}
		if bl > 0 && c.size > 0 {
			tlo := d + min64(0, span) + c.trueLB
			thi := d + max64(0, span) + c.trueUB
			if firstTrue {
				t.trueLB, t.trueUB = tlo, thi
				firstTrue = false
			} else {
				t.trueLB = min64(t.trueLB, tlo)
				t.trueUB = max64(t.trueUB, thi)
			}
		}
	}
	if first { // no blocks at all
		t.dense, t.tileable = true, true
	}
	t.hasLB, t.hasUB = c.hasLB, c.hasUB
	t.depth = c.depth + 1
	t.computeDensity()
	if t.size == 0 {
		t.blocks = 0
	}
}

func (t *Type) finishStruct() {
	first := true
	firstTrue := true
	var lbCands, ubCands []int64 // explicit marker candidates
	for i, c := range t.children {
		bl := t.blocklens[i]
		d := t.displs[i]
		cext := c.Extent()
		t.size += bl * c.size
		if bl > 0 {
			t.blocks += bl * c.blocks
			if c.dense && c.size == cext {
				t.blocks -= bl*c.blocks - 1
			}
		}
		if bl == 0 {
			// A zero-length member replicates its typemap zero times and
			// so contributes nothing — not even explicit bound markers
			// (MPI typemap semantics).
			if c.depth+1 > t.depth {
				t.depth = c.depth + 1
			}
			continue
		}
		span := (bl - 1) * cext
		if c.hasLB {
			lbCands = append(lbCands, d+min64(0, span)+c.lb)
		}
		if c.hasUB {
			ubCands = append(ubCands, d+max64(0, span)+c.ub)
		}
		blo := d + min64(0, span) + c.lb
		bhi := d + max64(0, span) + c.ub
		if first {
			t.lb, t.ub = blo, bhi
			first = false
		} else {
			t.lb = min64(t.lb, blo)
			t.ub = max64(t.ub, bhi)
		}
		if bl > 0 && c.size > 0 {
			tlo := d + min64(0, span) + c.trueLB
			thi := d + max64(0, span) + c.trueUB
			if firstTrue {
				t.trueLB, t.trueUB = tlo, thi
				firstTrue = false
			} else {
				t.trueLB = min64(t.trueLB, tlo)
				t.trueUB = max64(t.trueUB, thi)
			}
		}
		if c.depth+1 > t.depth {
			t.depth = c.depth + 1
		}
	}
	if t.depth == 0 {
		t.depth = 1
	}
	if len(lbCands) > 0 {
		t.hasLB = true
		t.lb = lbCands[0]
		for _, v := range lbCands[1:] {
			t.lb = min64(t.lb, v)
		}
	}
	if len(ubCands) > 0 {
		t.hasUB = true
		t.ub = ubCands[0]
		for _, v := range ubCands[1:] {
			t.ub = max64(t.ub, v)
		}
	}
	if first && len(lbCands) == 0 && len(ubCands) == 0 {
		t.dense, t.tileable = true, true
	}
	t.computeDensity()
	if t.size == 0 {
		t.blocks = 0
	}
}

// computeDensity sets dense and tileable.  Density of a derived type is
// determined exactly when cheap structural rules apply; otherwise it falls
// back to a Walk-based check, which costs O(Blocks) once at construction.
func (t *Type) computeDensity() {
	if t.size == 0 {
		t.dense = true
		t.tileable = t.Extent() == 0
		return
	}
	if t.size != t.trueUB-t.trueLB {
		t.dense = false
		t.tileable = false
		return
	}
	if t.blocks > 1<<22 {
		// Verifying density walks every block; beyond this bound assume
		// non-dense, which is always safe (fast paths are just skipped).
		t.dense = false
		t.tileable = false
		return
	}
	// Same span as size: still need no overlaps / no reordering gaps.
	// Verify with a single coalescing walk.
	runs := int64(0)
	last := int64(0)
	ok := true
	t.Walk(func(off, length int64) {
		if runs == 0 {
			runs = 1
			last = off + length
			return
		}
		if off == last {
			last += length
			return
		}
		ok = false
		runs++
		last = off + length
	})
	t.dense = ok && runs == 1
	if t.dense {
		t.blocks = 1
	}
	t.tileable = t.dense && t.size == t.Extent() && t.trueLB == t.lb
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}
