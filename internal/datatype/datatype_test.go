package datatype

import (
	"testing"
)

func mustContig(t *testing.T, count int64, child *Type) *Type {
	t.Helper()
	dt, err := Contiguous(count, child)
	if err != nil {
		t.Fatalf("Contiguous(%d): %v", count, err)
	}
	return dt
}

func mustVector(t *testing.T, count, blocklen, stride int64, child *Type) *Type {
	t.Helper()
	dt, err := Vector(count, blocklen, stride, child)
	if err != nil {
		t.Fatalf("Vector(%d,%d,%d): %v", count, blocklen, stride, err)
	}
	return dt
}

// collect returns the (uncoalesced) walk segments of one instance.
func collect(dt *Type) (offs, lens []int64) {
	dt.Walk(func(off, length int64) {
		offs = append(offs, off)
		lens = append(lens, length)
	})
	return
}

func sumLens(lens []int64) int64 {
	var s int64
	for _, l := range lens {
		s += l
	}
	return s
}

func TestNamedTypes(t *testing.T) {
	cases := []struct {
		dt   *Type
		size int64
	}{
		{Byte, 1}, {Char, 1}, {Int8, 1}, {Int16, 2}, {Int32, 4},
		{Int64, 8}, {Uint64, 8}, {Float32, 4}, {Float64, 8}, {Complex128, 16},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size {
			t.Errorf("%s: size = %d, want %d", c.dt.Name(), c.dt.Size(), c.size)
		}
		if c.dt.Extent() != c.size {
			t.Errorf("%s: extent = %d, want %d", c.dt.Name(), c.dt.Extent(), c.size)
		}
		if !c.dt.Dense() || !c.dt.ContiguousTiled() {
			t.Errorf("%s: should be dense and tileable", c.dt.Name())
		}
		if c.dt.Depth() != 1 || c.dt.Blocks() != 1 {
			t.Errorf("%s: depth=%d blocks=%d, want 1/1", c.dt.Name(), c.dt.Depth(), c.dt.Blocks())
		}
	}
}

func TestMarkers(t *testing.T) {
	if LBMarker.Size() != 0 || UBMarker.Size() != 0 {
		t.Fatal("markers must have zero size")
	}
	if LBMarker.Extent() != 0 || UBMarker.Extent() != 0 {
		t.Fatal("markers must have zero extent")
	}
}

func TestContiguous(t *testing.T) {
	dt := mustContig(t, 10, Double)
	if dt.Size() != 80 || dt.Extent() != 80 {
		t.Fatalf("size/extent = %d/%d, want 80/80", dt.Size(), dt.Extent())
	}
	if !dt.Dense() || !dt.ContiguousTiled() {
		t.Fatal("contig of double should be dense and tileable")
	}
	if dt.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", dt.Blocks())
	}
	offs, lens := collect(dt)
	if len(offs) != 1 || offs[0] != 0 || lens[0] != 80 {
		t.Fatalf("walk = %v/%v, want [0]/[80]", offs, lens)
	}
}

func TestContiguousEmpty(t *testing.T) {
	dt := mustContig(t, 0, Double)
	if dt.Size() != 0 || dt.Blocks() != 0 {
		t.Fatalf("empty contig: size=%d blocks=%d", dt.Size(), dt.Blocks())
	}
	offs, _ := collect(dt)
	if len(offs) != 0 {
		t.Fatalf("empty contig walked %d blocks", len(offs))
	}
}

func TestVectorBasic(t *testing.T) {
	// 3 blocks of 2 doubles, stride 4 doubles: |XX..|XX..|XX
	dt := mustVector(t, 3, 2, 4, Double)
	if dt.Size() != 48 {
		t.Fatalf("size = %d, want 48", dt.Size())
	}
	// extent: lb=0, ub = (3-1)*32 + (2-1)*8 + 8 = 64+16 = 80
	if dt.Extent() != 80 {
		t.Fatalf("extent = %d, want 80", dt.Extent())
	}
	if dt.Dense() {
		t.Fatal("strided vector must not be dense")
	}
	if dt.Blocks() != 3 {
		t.Fatalf("blocks = %d, want 3", dt.Blocks())
	}
	offs, lens := collect(dt)
	wantOffs := []int64{0, 32, 64}
	for i := range wantOffs {
		if offs[i] != wantOffs[i] || lens[i] != 16 {
			t.Fatalf("walk[%d] = (%d,%d), want (%d,16)", i, offs[i], lens[i], wantOffs[i])
		}
	}
}

func TestVectorDegenerate(t *testing.T) {
	// stride == blocklen: actually contiguous.
	dt := mustVector(t, 4, 3, 3, Double)
	if !dt.Dense() {
		t.Fatal("stride==blocklen vector should be dense")
	}
	if dt.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", dt.Blocks())
	}
	if dt.Size() != 96 || dt.Extent() != 96 {
		t.Fatalf("size/extent = %d/%d, want 96/96", dt.Size(), dt.Extent())
	}
}

func TestHvectorByteStride(t *testing.T) {
	dt, err := Hvector(2, 1, 10, Int32)
	if err != nil {
		t.Fatal(err)
	}
	offs, lens := collect(dt)
	if len(offs) != 2 || offs[0] != 0 || offs[1] != 10 || lens[0] != 4 {
		t.Fatalf("walk = %v/%v", offs, lens)
	}
	if dt.Extent() != 14 {
		t.Fatalf("extent = %d, want 14", dt.Extent())
	}
}

func TestIndexed(t *testing.T) {
	dt, err := Indexed([]int64{2, 1, 3}, []int64{0, 4, 8}, Double)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Size() != 48 {
		t.Fatalf("size = %d, want 48", dt.Size())
	}
	if dt.Blocks() != 3 {
		t.Fatalf("blocks = %d, want 3", dt.Blocks())
	}
	offs, lens := collect(dt)
	wantOffs := []int64{0, 32, 64}
	wantLens := []int64{16, 8, 24}
	for i := range wantOffs {
		if offs[i] != wantOffs[i] || lens[i] != wantLens[i] {
			t.Fatalf("walk[%d] = (%d,%d), want (%d,%d)", i, offs[i], lens[i], wantOffs[i], wantLens[i])
		}
	}
	if dt.Extent() != 88 {
		t.Fatalf("extent = %d, want 88", dt.Extent())
	}
}

func TestIndexedAdjacentBlocksStayDense(t *testing.T) {
	dt, err := Indexed([]int64{2, 2}, []int64{0, 2}, Double)
	if err != nil {
		t.Fatal(err)
	}
	if !dt.Dense() {
		t.Fatal("adjacent indexed blocks should be dense")
	}
	if dt.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1 after density detection", dt.Blocks())
	}
}

func TestIndexedOutOfOrderNotDense(t *testing.T) {
	dt, err := Indexed([]int64{1, 1}, []int64{1, 0}, Double)
	if err != nil {
		t.Fatal(err)
	}
	// Data covers [0,16) but the type map is out of order: pack order
	// differs from memory order, so this must not be treated as dense.
	if dt.Dense() {
		t.Fatal("out-of-order indexed must not be dense")
	}
}

func TestStructWithMarkers(t *testing.T) {
	// The Figure-4 noncontig type: LB at 0, vector at disp, UB at extent.
	vec := mustVector(t, 4, 1, 3, Double) // 4 blocks of 1 double, stride 3
	disp := int64(8)
	extent := int64(4 * 3 * 8) // blockcount * stride(elems) * elemsize
	dt, err := Struct(
		[]int64{1, 1, 1},
		[]int64{0, disp, extent},
		[]*Type{LBMarker, vec, UBMarker},
	)
	if err != nil {
		t.Fatal(err)
	}
	if dt.LB() != 0 {
		t.Fatalf("lb = %d, want 0", dt.LB())
	}
	if dt.UB() != extent {
		t.Fatalf("ub = %d, want %d", dt.UB(), extent)
	}
	if dt.Size() != 32 {
		t.Fatalf("size = %d, want 32", dt.Size())
	}
	offs, _ := collect(dt)
	if offs[0] != disp {
		t.Fatalf("first block at %d, want %d", offs[0], disp)
	}
}

func TestResized(t *testing.T) {
	dt, err := Resized(Double, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Size() != 8 || dt.Extent() != 24 {
		t.Fatalf("size/extent = %d/%d, want 8/24", dt.Size(), dt.Extent())
	}
	if dt.ContiguousTiled() {
		t.Fatal("resized with padding must not be tileable")
	}
	// Vector of resized children has holes.
	v := mustContig(t, 3, dt)
	offs, lens := collect(v)
	want := []int64{0, 24, 48}
	for i := range want {
		if offs[i] != want[i] || lens[i] != 8 {
			t.Fatalf("walk[%d] = (%d,%d), want (%d,8)", i, offs[i], lens[i], want[i])
		}
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of doubles, select 2x3 starting at (1,2), C order.
	dt, err := Subarray([]int64{4, 6}, []int64{2, 3}, []int64{1, 2}, OrderC, Double)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Size() != 2*3*8 {
		t.Fatalf("size = %d, want 48", dt.Size())
	}
	if dt.Extent() != 4*6*8 {
		t.Fatalf("extent = %d, want %d", dt.Extent(), 4*6*8)
	}
	offs, lens := collect(dt)
	// Rows 1 and 2, cols 2..4: offsets (1*6+2)*8=64 and (2*6+2)*8=112.
	want := []int64{64, 112}
	if len(offs) != 2 {
		t.Fatalf("walk blocks = %d, want 2 (%v)", len(offs), offs)
	}
	for i := range want {
		if offs[i] != want[i] || lens[i] != 24 {
			t.Fatalf("walk[%d] = (%d,%d), want (%d,24)", i, offs[i], lens[i], want[i])
		}
	}
}

func TestSubarrayFortranOrder(t *testing.T) {
	// Same region in Fortran order: first dim fastest.
	// 4x6 array (dims d0=4, d1=6), select (2,3) at (1,2).
	dt, err := Subarray([]int64{4, 6}, []int64{2, 3}, []int64{1, 2}, OrderFortran, Double)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Size() != 48 || dt.Extent() != 192 {
		t.Fatalf("size/extent = %d/%d, want 48/192", dt.Size(), dt.Extent())
	}
	offs, lens := collect(dt)
	// Columns j=2,3,4; each contributes rows 1..2 → offset (j*4+1)*8, len 16.
	want := []int64{72, 104, 136}
	if len(offs) != 3 {
		t.Fatalf("walk blocks = %d, want 3 (%v)", len(offs), offs)
	}
	for i := range want {
		if offs[i] != want[i] || lens[i] != 16 {
			t.Fatalf("walk[%d] = (%d,%d), want (%d,16)", i, offs[i], lens[i], want[i])
		}
	}
}

func TestSubarray3DWholeIsContiguous(t *testing.T) {
	dt, err := Subarray([]int64{3, 4, 5}, []int64{3, 4, 5}, []int64{0, 0, 0}, OrderC, Double)
	if err != nil {
		t.Fatal(err)
	}
	if !dt.Dense() {
		t.Fatal("whole-array subarray should be dense")
	}
	if dt.Size() != 3*4*5*8 {
		t.Fatalf("size = %d", dt.Size())
	}
}

func TestSubarrayValidation(t *testing.T) {
	if _, err := Subarray([]int64{4}, []int64{5}, []int64{0}, OrderC, Double); err == nil {
		t.Fatal("oversized subsize must fail")
	}
	if _, err := Subarray([]int64{4}, []int64{2}, []int64{3}, OrderC, Double); err == nil {
		t.Fatal("start+subsize beyond size must fail")
	}
	if _, err := Subarray([]int64{4, 4}, []int64{2}, []int64{0}, OrderC, Double); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestNestedVectorOfVector(t *testing.T) {
	inner := mustVector(t, 2, 1, 2, Double) // X.X, extent 24
	// Vector stride is in child extents: 40 B stride via Hvector.
	outer, err := Hvector(3, 1, 40, inner)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Size() != 48 {
		t.Fatalf("size = %d, want 48", outer.Size())
	}
	if outer.Blocks() != 6 {
		t.Fatalf("blocks = %d, want 6", outer.Blocks())
	}
	offs, _ := collect(outer)
	want := []int64{0, 16, 40, 56, 80, 96}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("walk offsets = %v, want %v", offs, want)
		}
	}
	if outer.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", outer.Depth())
	}
}

func TestWalkTotalSizeMatches(t *testing.T) {
	types := []*Type{
		mustVector(t, 7, 3, 5, Int32),
		mustContig(t, 4, mustVector(t, 2, 1, 3, Double)),
	}
	sub, err := Subarray([]int64{5, 5}, []int64{2, 2}, []int64{1, 1}, OrderC, Int64)
	if err != nil {
		t.Fatal(err)
	}
	types = append(types, sub)
	for _, dt := range types {
		_, lens := collect(dt)
		if got := sumLens(lens); got != dt.Size() {
			t.Errorf("%s: walk total %d != size %d", dt, got, dt.Size())
		}
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := Contiguous(-1, Double); err == nil {
		t.Error("negative count must fail")
	}
	if _, err := Contiguous(3, nil); err == nil {
		t.Error("nil child must fail")
	}
	if _, err := Vector(2, -1, 3, Double); err == nil {
		t.Error("negative blocklen must fail")
	}
	if _, err := Hindexed([]int64{1, 2}, []int64{0}, Double); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := Struct([]int64{1}, []int64{0, 8}, []*Type{Double}); err == nil {
		t.Error("struct length mismatch must fail")
	}
	if _, err := Struct([]int64{1}, []int64{0}, []*Type{nil}); err == nil {
		t.Error("struct nil child must fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sub, err := Subarray([]int64{10, 10, 10}, []int64{4, 5, 6}, []int64{1, 2, 3}, OrderFortran, Double)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Indexed([]int64{1, 2, 3}, []int64{0, 5, 11}, Int32)
	if err != nil {
		t.Fatal(err)
	}
	str, err := Struct([]int64{1, 2, 1}, []int64{0, 16, 100}, []*Type{Int64, idx, UBMarker})
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []*Type{Byte, Double, mustVector(t, 9, 2, 7, Double), sub, idx, str} {
		enc := Encode(dt)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode(%s): %v", dt, err)
		}
		if got.Size() != dt.Size() || got.Extent() != dt.Extent() ||
			got.LB() != dt.LB() || got.Blocks() != dt.Blocks() {
			t.Fatalf("round trip mismatch: %s -> %s", dt.Summary(), got.Summary())
		}
		o1, l1 := collect(dt)
		o2, l2 := collect(got)
		if len(o1) != len(o2) {
			t.Fatalf("walk length mismatch after round trip: %d vs %d", len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] || l1[i] != l2[i] {
				t.Fatalf("walk mismatch at %d after round trip", i)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty decode must fail")
	}
	if _, err := Decode([]byte{255}); err == nil {
		t.Error("unknown kind must fail")
	}
	enc := Encode(Double)
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated decode must fail")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestEncodedSizeIsTreeProportional(t *testing.T) {
	// The point of the compact representation: a 1M-block vector encodes
	// in a few bytes, while its ol-list would be 16 MB.
	dt := mustVector(t, 1<<20, 1, 2, Double)
	if n := EncodedSize(dt); n > 64 {
		t.Fatalf("encoded size %d for 1M-block vector; want tree-proportional (<= 64)", n)
	}
}

func TestValidateFiletype(t *testing.T) {
	vec := mustVector(t, 4, 2, 3, Double)
	if err := ValidateFiletype(Double, vec); err != nil {
		t.Fatalf("legal filetype rejected: %v", err)
	}
	// Negative displacement via struct.
	neg, err := Struct([]int64{1}, []int64{-8}, []*Type{Double})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFiletype(Double, neg); err == nil {
		t.Fatal("negative displacement must be rejected")
	}
	// Non-monotone.
	ooo, err := Hindexed([]int64{1, 1}, []int64{8, 0}, Double)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFiletype(Double, ooo); err == nil {
		t.Fatal("non-monotone filetype must be rejected")
	}
	// Size not a multiple of etype.
	if err := ValidateFiletype(Int32, mustVector(t, 1, 1, 1, Byte)); err == nil {
		t.Fatal("non-multiple filetype must be rejected")
	}
	// Overlapping tiling: extent smaller than data end.
	overlap, err := Resized(mustContig(t, 2, Double), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFiletype(Double, overlap); err == nil {
		t.Fatal("tiling overlap must be rejected")
	}
	if err := ValidateEtype(nil); err == nil {
		t.Fatal("nil etype must be rejected")
	}
	if err := ValidateEtype(LBMarker); err == nil {
		t.Fatal("zero-size etype must be rejected")
	}
}

func TestStringAndSummary(t *testing.T) {
	dt := mustVector(t, 3, 2, 4, Double)
	if s := dt.String(); s == "" {
		t.Fatal("empty String()")
	}
	if s := dt.Summary(); s == "" {
		t.Fatal("empty Summary()")
	}
	sub, _ := Subarray([]int64{4, 4}, []int64{2, 2}, []int64{0, 0}, OrderC, Double)
	idx, _ := Indexed([]int64{1}, []int64{0}, Double)
	str, _ := Struct([]int64{1}, []int64{0}, []*Type{Double})
	for _, x := range []*Type{Byte, sub, idx, str} {
		if x.String() == "" {
			t.Errorf("empty String for %v", x.Kind())
		}
	}
}
