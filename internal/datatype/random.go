package datatype

import "math/rand"

// randomType builds a random datatype tree of bounded depth and block
// count, usable as a filetype (non-negative monotone displacements).
func randomType(r *rand.Rand, depth int) *Type {
	if depth <= 0 || r.Intn(3) == 0 {
		leaves := []*Type{Byte, Int16, Int32, Int64, Double}
		return leaves[r.Intn(len(leaves))]
	}
	child := randomType(r, depth-1)
	switch r.Intn(5) {
	case 0:
		dt, _ := Contiguous(int64(1+r.Intn(4)), child)
		return dt
	case 1:
		count := int64(1 + r.Intn(5))
		blocklen := int64(r.Intn(4))              // 0 is legal: empty blocks
		stride := blocklen + 1 + int64(r.Intn(3)) // > blocklen keeps it monotone and holey
		dt, _ := Vector(count, blocklen, stride, child)
		return dt
	case 2:
		n := 1 + r.Intn(4)
		blocklens := make([]int64, n)
		displs := make([]int64, n)
		pos := int64(0)
		for i := 0; i < n; i++ {
			pos += int64(r.Intn(3))
			blocklens[i] = int64(r.Intn(4)) // 0 is legal: empty blocks
			displs[i] = pos
			pos += blocklens[i]
		}
		dt, _ := Indexed(blocklens, displs, child)
		return dt
	case 3:
		ext := child.Extent()
		dt, _ := Resized(child, 0, ext+int64(r.Intn(9)))
		return dt
	default:
		n := 1 + r.Intn(3)
		blocklens := make([]int64, n)
		displs := make([]int64, n)
		children := make([]*Type, n)
		pos := int64(0)
		for i := 0; i < n; i++ {
			c := randomType(r, depth-1)
			pos += int64(r.Intn(5))
			blocklens[i] = int64(r.Intn(3)) // 0 is legal: empty members
			displs[i] = pos
			children[i] = c
			pos += blocklens[i] * c.Extent()
		}
		dt, _ := Struct(blocklens, displs, children)
		return dt
	}
}

// RandomFiletype returns a random filetype-legal datatype of at most
// maxDepth constructor levels with non-zero size.  It exists for the
// property-based tests of this package and of the packages built on it
// (fotf, flatten, core); it is deterministic in r.
func RandomFiletype(r *rand.Rand, maxDepth int) *Type {
	for {
		dt := randomType(r, maxDepth)
		if dt.Size() > 0 && ValidateFiletype(Byte, dt) == nil {
			return dt
		}
	}
}

// RandomMemtype returns a random datatype suitable as a memory datatype:
// like RandomFiletype but without the monotonicity requirement being
// essential (we still generate monotone maps so reference copies are
// order-independent).
func RandomMemtype(r *rand.Rand, maxDepth int) *Type {
	return RandomFiletype(r, maxDepth)
}
