package datatype

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encode serializes t into a compact binary form whose length is
// proportional to the size of the datatype *tree*, not to the number of
// contiguous blocks.  This is the "compact representation" that the
// listless engine exchanges once per fileview (fileview caching), in
// place of the per-access ol-list exchange of list-based I/O.
func Encode(t *Type) []byte {
	var buf []byte
	return appendType(buf, t)
}

// EncodedSize reports len(Encode(t)) without allocating the encoding.
func EncodedSize(t *Type) int {
	return len(Encode(t))
}

func appendType(buf []byte, t *Type) []byte {
	buf = append(buf, byte(t.kind))
	switch t.kind {
	case KindNamed:
		buf = appendVarint(buf, t.size)
		buf = appendString(buf, t.name)
	case KindContiguous:
		buf = appendVarint(buf, t.count)
		buf = appendType(buf, t.child)
	case KindVector:
		buf = appendVarint(buf, t.count)
		buf = appendVarint(buf, t.blocklen)
		buf = appendVarint(buf, t.stride)
		buf = appendType(buf, t.child)
	case KindIndexed:
		buf = appendVarint(buf, int64(len(t.blocklens)))
		for i := range t.blocklens {
			buf = appendVarint(buf, t.blocklens[i])
			buf = appendVarint(buf, t.displs[i])
		}
		buf = appendType(buf, t.child)
	case KindStruct:
		buf = appendVarint(buf, int64(len(t.children)))
		for i := range t.children {
			buf = appendVarint(buf, t.blocklens[i])
			buf = appendVarint(buf, t.displs[i])
			buf = appendType(buf, t.children[i])
		}
	case KindResized:
		buf = appendVarint(buf, t.lb)
		buf = appendVarint(buf, t.Extent())
		buf = appendType(buf, t.child)
	}
	return buf
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendVarint(buf, int64(len(s)))
	return append(buf, s...)
}

// Decode reconstructs a Type from its Encode form.
func Decode(buf []byte) (*Type, error) {
	t, rest, err := decodeType(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("datatype: %d trailing bytes after decode", len(rest))
	}
	return t, nil
}

var errTruncated = errors.New("datatype: truncated encoding")

func decodeType(buf []byte) (*Type, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, errTruncated
	}
	kind := Kind(buf[0])
	buf = buf[1:]
	var err error
	switch kind {
	case KindNamed:
		var size int64
		var name string
		if size, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		if size < 0 {
			return nil, nil, fmt.Errorf("datatype: named type with negative size %d in encoding", size)
		}
		if name, buf, err = readString(buf); err != nil {
			return nil, nil, err
		}
		return namedBySize(name, size), buf, nil
	case KindContiguous:
		var count int64
		if count, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		child, rest, err := decodeType(buf)
		if err != nil {
			return nil, nil, err
		}
		t, err := Contiguous(count, child)
		return t, rest, err
	case KindVector:
		var count, blocklen, stride int64
		if count, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		if blocklen, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		if stride, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		child, rest, err := decodeType(buf)
		if err != nil {
			return nil, nil, err
		}
		t, err := Hvector(count, blocklen, stride, child)
		return t, rest, err
	case KindIndexed:
		var n int64
		if n, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		if n < 0 || n > int64(len(buf)) {
			return nil, nil, errTruncated
		}
		blocklens := make([]int64, n)
		displs := make([]int64, n)
		for i := int64(0); i < n; i++ {
			if blocklens[i], buf, err = readVarint(buf); err != nil {
				return nil, nil, err
			}
			if displs[i], buf, err = readVarint(buf); err != nil {
				return nil, nil, err
			}
		}
		child, rest, err := decodeType(buf)
		if err != nil {
			return nil, nil, err
		}
		t, err := Hindexed(blocklens, displs, child)
		return t, rest, err
	case KindStruct:
		var n int64
		if n, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		if n < 0 || n > int64(len(buf)) {
			return nil, nil, errTruncated
		}
		blocklens := make([]int64, n)
		displs := make([]int64, n)
		children := make([]*Type, n)
		for i := int64(0); i < n; i++ {
			if blocklens[i], buf, err = readVarint(buf); err != nil {
				return nil, nil, err
			}
			if displs[i], buf, err = readVarint(buf); err != nil {
				return nil, nil, err
			}
			if children[i], buf, err = decodeType(buf); err != nil {
				return nil, nil, err
			}
		}
		t, err := Struct(blocklens, displs, children)
		return t, buf, err
	case KindResized:
		var lb, extent int64
		if lb, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		if extent, buf, err = readVarint(buf); err != nil {
			return nil, nil, err
		}
		child, rest, err := decodeType(buf)
		if err != nil {
			return nil, nil, err
		}
		t, err := Resized(child, lb, extent)
		return t, rest, err
	}
	return nil, nil, fmt.Errorf("datatype: unknown kind %d in encoding", kind)
}

func readVarint(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return v, buf[n:], nil
}

func readString(buf []byte) (string, []byte, error) {
	n, buf, err := readVarint(buf)
	if err != nil {
		return "", nil, err
	}
	if n < 0 || n > int64(len(buf)) {
		return "", nil, errTruncated
	}
	return string(buf[:n]), buf[n:], nil
}
