package datatype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickWalkInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dt := RandomFiletype(rr, 3)
		var total int64
		prevEnd := int64(-1)
		lo, hi := int64(1<<62), int64(-1)
		ok := true
		dt.Walk(func(off, length int64) {
			if length <= 0 || off < 0 {
				ok = false
			}
			if off < prevEnd {
				ok = false
			}
			prevEnd = off + length
			total += length
			if off < lo {
				lo = off
			}
			if off+length > hi {
				hi = off + length
			}
		})
		if !ok {
			t.Logf("bad walk for %s", dt)
			return false
		}
		if total != dt.Size() {
			t.Logf("size mismatch for %s: walk=%d size=%d", dt, total, dt.Size())
			return false
		}
		if lo != dt.TrueLB() || hi != dt.TrueUB() {
			t.Logf("true bounds mismatch for %s: walk=[%d,%d) true=[%d,%d)",
				dt, lo, hi, dt.TrueLB(), dt.TrueUB())
			return false
		}
		if hi > dt.UB() || lo < dt.LB() {
			t.Logf("data outside [lb,ub) for %s", dt)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dt := RandomFiletype(rr, 3)
		got, err := Decode(Encode(dt))
		if err != nil {
			t.Logf("decode(%s): %v", dt, err)
			return false
		}
		if got.Size() != dt.Size() || got.Extent() != dt.Extent() || got.Blocks() != dt.Blocks() {
			return false
		}
		var a, b []int64
		dt.Walk(func(off, length int64) { a = append(a, off, length) })
		got.Walk(func(off, length int64) { b = append(b, off, length) })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDensityMatchesWalk(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		dt := RandomFiletype(rr, 3)
		// Reference density: coalesce the walk; dense iff one run.
		runs := 0
		last := int64(-1)
		dt.Walk(func(off, length int64) {
			if runs > 0 && off == last {
				last += length
				return
			}
			runs++
			last = off + length
		})
		wantDense := runs <= 1
		if dt.Dense() != wantDense {
			t.Logf("density mismatch for %s: dense=%v runs=%d", dt, dt.Dense(), runs)
			return false
		}
		if wantDense && dt.Blocks() > 1 {
			t.Logf("dense type %s reports %d blocks", dt, dt.Blocks())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
