package datatype_test

import (
	"fmt"

	"repro/internal/datatype"
)

// A strided vector — the paper's canonical non-contiguous layout: 1000
// doubles, one every second slot.
func ExampleVector() {
	dt, err := datatype.Vector(1000, 1, 2, datatype.Double)
	if err != nil {
		panic(err)
	}
	fmt.Println("size:  ", dt.Size())
	fmt.Println("extent:", dt.Extent())
	fmt.Println("blocks:", dt.Blocks())
	// Output:
	// size:   8000
	// extent: 15992
	// blocks: 1000
}

// A subarray fileview: one 2×3 tile of a 4×6 matrix.  The extent spans
// the whole matrix, so the type tiles correctly as a filetype.
func ExampleSubarray() {
	dt, err := datatype.Subarray(
		[]int64{4, 6}, // matrix dimensions
		[]int64{2, 3}, // tile dimensions
		[]int64{1, 2}, // tile origin
		datatype.OrderC,
		datatype.Double,
	)
	if err != nil {
		panic(err)
	}
	dt.Walk(func(off, length int64) {
		fmt.Printf("row at byte %d, %d bytes\n", off, length)
	})
	// Output:
	// row at byte 64, 24 bytes
	// row at byte 112, 24 bytes
}

// The compact encoding is proportional to the datatype tree, not to the
// number of blocks — the property fileview caching relies on.
func ExampleEncode() {
	dt, err := datatype.Vector(1<<20, 1, 2, datatype.Double)
	if err != nil {
		panic(err)
	}
	enc := datatype.Encode(dt)
	fmt.Println("blocks:       ", dt.Blocks())
	fmt.Println("encoded bytes:", len(enc))
	back, err := datatype.Decode(enc)
	if err != nil {
		panic(err)
	}
	fmt.Println("round-trip ok:", back.Size() == dt.Size())
	// Output:
	// blocks:        1048576
	// encoded bytes: 17
	// round-trip ok: true
}

// A block-cyclic distributed array: rank 1's share of 12 elements dealt
// in chunks of 3 over 2 processes.
func ExampleDarray() {
	dt, err := datatype.Darray(datatype.DarraySpec{
		Size: 2, Rank: 1,
		Sizes:    []int64{12},
		Distribs: []datatype.Distribution{datatype.DistCyclic},
		DistArgs: []int64{3},
		ProcDims: []int64{2},
		Order:    datatype.OrderC,
		Elem:     datatype.Byte,
	})
	if err != nil {
		panic(err)
	}
	dt.Walk(func(off, length int64) {
		fmt.Printf("[%d,%d) ", off, off+length)
	})
	fmt.Println()
	// Output:
	// [3,6) [9,12)
}
