package datatype

import (
	"testing"
)

func darray(t *testing.T, spec DarraySpec) *Type {
	t.Helper()
	dt, err := Darray(spec)
	if err != nil {
		t.Fatalf("Darray(%+v): %v", spec, err)
	}
	return dt
}

// collectAbs gathers the element indices selected by dt (element size
// must divide all offsets).
func selectedElems(t *testing.T, dt *Type, elemSize int64) []int64 {
	t.Helper()
	var out []int64
	dt.Walk(func(off, ln int64) {
		if off%elemSize != 0 || ln%elemSize != 0 {
			t.Fatalf("non-element-aligned block (%d,%d)", off, ln)
		}
		for k := int64(0); k < ln/elemSize; k++ {
			out = append(out, off/elemSize+k)
		}
	})
	return out
}

func TestDarrayBlock1D(t *testing.T) {
	// 10 doubles over 3 procs, block: ceil(10/3)=4 → [0,4), [4,8), [8,10).
	want := [][]int64{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	for rank := 0; rank < 3; rank++ {
		dt := darray(t, DarraySpec{
			Size: 3, Rank: rank,
			Sizes:    []int64{10},
			Distribs: []Distribution{DistBlock},
			DistArgs: []int64{DefaultDistArg},
			ProcDims: []int64{3},
			Order:    OrderC,
			Elem:     Double,
		})
		if dt.Extent() != 80 {
			t.Fatalf("rank %d: extent = %d, want 80", rank, dt.Extent())
		}
		got := selectedElems(t, dt, 8)
		if len(got) != len(want[rank]) {
			t.Fatalf("rank %d: elems %v, want %v", rank, got, want[rank])
		}
		for i := range got {
			if got[i] != want[rank][i] {
				t.Fatalf("rank %d: elems %v, want %v", rank, got, want[rank])
			}
		}
	}
}

func TestDarrayCyclic1D(t *testing.T) {
	// 10 elements over 2 procs, cyclic(1): evens and odds.
	for rank := 0; rank < 2; rank++ {
		dt := darray(t, DarraySpec{
			Size: 2, Rank: rank,
			Sizes:    []int64{10},
			Distribs: []Distribution{DistCyclic},
			DistArgs: []int64{DefaultDistArg},
			ProcDims: []int64{2},
			Order:    OrderC,
			Elem:     Int32,
		})
		got := selectedElems(t, dt, 4)
		if len(got) != 5 {
			t.Fatalf("rank %d: %d elems", rank, len(got))
		}
		for i, e := range got {
			if e != int64(2*i+rank) {
				t.Fatalf("rank %d: elems %v", rank, got)
			}
		}
	}
}

func TestDarrayBlockCyclic1D(t *testing.T) {
	// 12 elements over 2 procs, cyclic(3): rank0 gets [0..3)+[6..9),
	// rank1 gets [3..6)+[9..12).
	dt := darray(t, DarraySpec{
		Size: 2, Rank: 1,
		Sizes:    []int64{12},
		Distribs: []Distribution{DistCyclic},
		DistArgs: []int64{3},
		ProcDims: []int64{2},
		Order:    OrderC,
		Elem:     Byte,
	})
	got := selectedElems(t, dt, 1)
	want := []int64{3, 4, 5, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("elems %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("elems %v, want %v", got, want)
		}
	}
}

func TestDarray2DBlockBlock(t *testing.T) {
	// 4x6 array over a 2x2 grid, block-block, C order.  C-order rank
	// decomposition: rank = c0*2 + c1.
	dt := darray(t, DarraySpec{
		Size: 4, Rank: 3, // coords (1,1): rows 2..3, cols 3..5
		Sizes:    []int64{4, 6},
		Distribs: []Distribution{DistBlock, DistBlock},
		DistArgs: []int64{DefaultDistArg, DefaultDistArg},
		ProcDims: []int64{2, 2},
		Order:    OrderC,
		Elem:     Double,
	})
	got := selectedElems(t, dt, 8)
	want := []int64{2*6 + 3, 2*6 + 4, 2*6 + 5, 3*6 + 3, 3*6 + 4, 3*6 + 5}
	if len(got) != len(want) {
		t.Fatalf("elems %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elems %v, want %v", got, want)
		}
	}
	if dt.Extent() != 4*6*8 {
		t.Fatalf("extent = %d", dt.Extent())
	}
}

func TestDarrayMatchesSubarrayForBlock(t *testing.T) {
	// A block-block darray must describe the same bytes as the
	// equivalent subarray.
	for rank := 0; rank < 4; rank++ {
		da := darray(t, DarraySpec{
			Size: 4, Rank: rank,
			Sizes:    []int64{8, 8},
			Distribs: []Distribution{DistBlock, DistBlock},
			DistArgs: []int64{DefaultDistArg, DefaultDistArg},
			ProcDims: []int64{2, 2},
			Order:    OrderC,
			Elem:     Double,
		})
		r0, r1 := int64(rank/2), int64(rank%2)
		sa, err := Subarray(
			[]int64{8, 8}, []int64{4, 4}, []int64{r0 * 4, r1 * 4},
			OrderC, Double)
		if err != nil {
			t.Fatal(err)
		}
		a := selectedElems(t, da, 8)
		b := selectedElems(t, sa, 8)
		if len(a) != len(b) {
			t.Fatalf("rank %d: %d vs %d elems", rank, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d: darray %v != subarray %v", rank, a, b)
			}
		}
	}
}

func TestDarrayFortranOrder(t *testing.T) {
	// Fortran order: first dimension fastest, ranks vary fastest in the
	// first grid dimension.
	dt := darray(t, DarraySpec{
		Size: 2, Rank: 1,
		Sizes:    []int64{4, 3},
		Distribs: []Distribution{DistBlock, DistNone},
		DistArgs: []int64{DefaultDistArg, DefaultDistArg},
		ProcDims: []int64{2, 1},
		Order:    OrderFortran,
		Elem:     Double,
	})
	// Rank 1 owns rows (first dim) 2..3 of every column; element index
	// in Fortran order is i0 + 4*i1.
	got := selectedElems(t, dt, 8)
	want := []int64{2, 3, 6, 7, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("elems %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elems %v, want %v", got, want)
		}
	}
}

func TestDarrayPartitionCoversArrayOnce(t *testing.T) {
	// Union over all ranks covers every element exactly once, for a mix
	// of distributions.
	specs := []DarraySpec{
		{
			Size: 6, Sizes: []int64{7, 10},
			Distribs: []Distribution{DistBlock, DistCyclic},
			DistArgs: []int64{DefaultDistArg, 2},
			ProcDims: []int64{2, 3},
			Order:    OrderC, Elem: Byte,
		},
		{
			Size: 4, Sizes: []int64{5, 3, 4},
			Distribs: []Distribution{DistCyclic, DistNone, DistBlock},
			DistArgs: []int64{DefaultDistArg, DefaultDistArg, DefaultDistArg},
			ProcDims: []int64{2, 1, 2},
			Order:    OrderFortran, Elem: Byte,
		},
	}
	for si, base := range specs {
		var total int64 = 1
		for _, s := range base.Sizes {
			total *= s
		}
		seen := make(map[int64]int)
		for rank := 0; rank < base.Size; rank++ {
			spec := base
			spec.Rank = rank
			dt := darray(t, spec)
			for _, e := range selectedElems(t, dt, 1) {
				seen[e]++
			}
		}
		if int64(len(seen)) != total {
			t.Fatalf("spec %d: covered %d of %d elements", si, len(seen), total)
		}
		for e, c := range seen {
			if c != 1 {
				t.Fatalf("spec %d: element %d covered %d times", si, e, c)
			}
		}
	}
}

func TestDarrayAsFiletypeIsValid(t *testing.T) {
	dt := darray(t, DarraySpec{
		Size: 4, Rank: 2,
		Sizes:    []int64{16, 16},
		Distribs: []Distribution{DistCyclic, DistBlock},
		DistArgs: []int64{2, DefaultDistArg},
		ProcDims: []int64{2, 2},
		Order:    OrderC,
		Elem:     Double,
	})
	if err := ValidateFiletype(Double, dt); err != nil {
		t.Fatalf("darray rejected as filetype: %v", err)
	}
	// And it round-trips the compact encoding.
	got, err := Decode(Encode(dt))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != dt.Size() || got.Extent() != dt.Extent() {
		t.Fatal("darray encode/decode mismatch")
	}
}

func TestDarrayErrors(t *testing.T) {
	ok := DarraySpec{
		Size: 2, Rank: 0,
		Sizes:    []int64{8},
		Distribs: []Distribution{DistBlock},
		DistArgs: []int64{DefaultDistArg},
		ProcDims: []int64{2},
		Order:    OrderC,
		Elem:     Double,
	}
	bad := func(mut func(*DarraySpec)) DarraySpec {
		s := ok
		s.Sizes = append([]int64(nil), s.Sizes...)
		s.Distribs = append([]Distribution(nil), s.Distribs...)
		s.DistArgs = append([]int64(nil), s.DistArgs...)
		s.ProcDims = append([]int64(nil), s.ProcDims...)
		mut(&s)
		return s
	}
	cases := []DarraySpec{
		bad(func(s *DarraySpec) { s.Sizes = nil; s.Distribs = nil; s.DistArgs = nil; s.ProcDims = nil }),
		bad(func(s *DarraySpec) { s.Elem = nil }),
		bad(func(s *DarraySpec) { s.Rank = 5 }),
		bad(func(s *DarraySpec) { s.Sizes[0] = 0 }),
		bad(func(s *DarraySpec) { s.ProcDims[0] = 3 }),           // grid volume mismatch
		bad(func(s *DarraySpec) { s.DistArgs[0] = 2 }),           // block arg too small (2*2 < 8)
		bad(func(s *DarraySpec) { s.Distribs[0] = DistNone }),    // undistributed but grid 2
		bad(func(s *DarraySpec) { s.Distribs = s.Distribs[:0] }), // length mismatch
	}
	for i, s := range cases {
		if _, err := Darray(s); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
	// Block distribution with an oversized explicit argument leaves
	// trailing ranks empty — legal, size 0.
	s := ok
	s.Size, s.ProcDims = 4, []int64{4}
	s.DistArgs = []int64{4}
	s.Rank = 3
	dt, err := Darray(s)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Size() != 0 {
		t.Fatalf("trailing empty rank has size %d", dt.Size())
	}
}
