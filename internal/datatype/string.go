package datatype

import (
	"fmt"
	"strings"
)

// String returns a single-line structural description of t.
func (t *Type) String() string {
	var b strings.Builder
	t.describe(&b)
	return b.String()
}

func (t *Type) describe(b *strings.Builder) {
	switch t.kind {
	case KindNamed:
		if t.name != "" {
			b.WriteString(t.name)
		} else {
			fmt.Fprintf(b, "named(%d)", t.size)
		}
	case KindContiguous:
		fmt.Fprintf(b, "contig(%d, ", t.count)
		t.child.describe(b)
		b.WriteByte(')')
	case KindVector:
		fmt.Fprintf(b, "hvector(count=%d, blocklen=%d, stride=%dB, ", t.count, t.blocklen, t.stride)
		t.child.describe(b)
		b.WriteByte(')')
	case KindIndexed:
		fmt.Fprintf(b, "hindexed(%d blocks, ", len(t.blocklens))
		t.child.describe(b)
		b.WriteByte(')')
	case KindStruct:
		b.WriteString("struct{")
		for i, c := range t.children {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%d@%d:", t.blocklens[i], t.displs[i])
			c.describe(b)
		}
		b.WriteByte('}')
	case KindResized:
		fmt.Fprintf(b, "resized(lb=%d, extent=%d, ", t.lb, t.Extent())
		t.child.describe(b)
		b.WriteByte(')')
	}
}

// Summary returns a multi-line report of the derived properties of t,
// used by cmd/typeinspect.
func (t *Type) Summary() string {
	return fmt.Sprintf(
		"type:    %s\nsize:    %d B\nextent:  %d B (lb=%d, ub=%d)\ntrue:    [%d, %d)\nblocks:  %d\ndepth:   %d\ndense:   %v (tiled-contiguous: %v)\nencoded: %d B",
		t.String(), t.size, t.Extent(), t.lb, t.ub, t.trueLB, t.trueUB,
		t.blocks, t.depth, t.dense, t.tileable, EncodedSize(t))
}
