package datatype

import (
	"math/rand"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the compact-encoding decoder: it
// must either return a valid type or an error — never panic and never
// return a type whose invariants are broken.  The listless engine
// decodes fileviews received from other ranks, so robustness here is a
// security property of fileview caching.
func FuzzDecode(f *testing.F) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 16; i++ {
		f.Add(Encode(RandomFiletype(r, 3)))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		dt, err := Decode(data)
		if err != nil {
			return
		}
		if dt == nil {
			t.Fatal("nil type without error")
		}
		// Basic invariants must hold on whatever decoded.
		if dt.Size() < 0 {
			t.Fatalf("negative size %d", dt.Size())
		}
		if dt.Blocks() <= 1<<16 { // keep the harness fast on huge legal types
			var total int64
			dt.Walk(func(off, ln int64) {
				if ln <= 0 {
					t.Fatalf("non-positive block length %d", ln)
				}
				total += ln
			})
			if total != dt.Size() {
				t.Fatalf("walk total %d != size %d", total, dt.Size())
			}
		}
		// Round trip must be stable.
		if _, err := Decode(Encode(dt)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzSubarray checks the subarray constructor against arbitrary
// geometry: invalid inputs must error, valid ones must produce types
// whose size matches the selected volume.
func FuzzSubarray(f *testing.F) {
	f.Add(int64(4), int64(2), int64(1), int64(6), int64(3), int64(2), true)
	f.Fuzz(func(t *testing.T, s0, ss0, st0, s1, ss1, st1 int64, fortran bool) {
		order := OrderC
		if fortran {
			order = OrderFortran
		}
		// Bound the volume so the fuzzer cannot allocate absurd walks.
		for _, v := range []int64{s0, s1} {
			if v > 1<<12 {
				return
			}
		}
		dt, err := Subarray([]int64{s0, s1}, []int64{ss0, ss1}, []int64{st0, st1}, order, Double)
		if err != nil {
			return
		}
		if want := ss0 * ss1 * 8; dt.Size() != want {
			t.Fatalf("size %d, want %d", dt.Size(), want)
		}
		if dt.Extent() != s0*s1*8 {
			t.Fatalf("extent %d, want %d", dt.Extent(), s0*s1*8)
		}
	})
}
