package datatype

import (
	"testing"
)

func BenchmarkConstructVector(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Vector(1<<16, 1, 2, Double); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructSubarray3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Subarray(
			[]int64{128, 128, 128}, []int64{32, 32, 32}, []int64{16, 16, 16},
			OrderFortran, Double)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	sub, err := Subarray(
		[]int64{128, 128, 128}, []int64{32, 32, 32}, []int64{16, 16, 16},
		OrderFortran, Double)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Encode(sub)
		}
	})
	enc := Encode(sub)
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWalk(b *testing.B) {
	dt, err := Vector(1<<16, 1, 2, Double)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		dt.Walk(func(off, ln int64) { n += ln })
		if n != dt.Size() {
			b.Fatal("bad walk")
		}
	}
}

func BenchmarkDarrayConstruct(b *testing.B) {
	spec := DarraySpec{
		Size: 16, Rank: 5,
		Sizes:    []int64{256, 256},
		Distribs: []Distribution{DistCyclic, DistBlock},
		DistArgs: []int64{4, DefaultDistArg},
		ProcDims: []int64{4, 4},
		Order:    OrderC,
		Elem:     Double,
	}
	for i := 0; i < b.N; i++ {
		if _, err := Darray(spec); err != nil {
			b.Fatal(err)
		}
	}
}
