package datatype

import (
	"errors"
	"fmt"
)

// Distribution selects the per-dimension distribution of a Darray
// (distributed array) type, mirroring MPI_Type_create_darray.
type Distribution uint8

// The darray distributions.
const (
	// DistNone leaves the dimension undistributed (the whole extent on
	// every process along that dimension).
	DistNone Distribution = iota
	// DistBlock gives each process one contiguous block
	// (MPI_DISTRIBUTE_BLOCK).
	DistBlock
	// DistCyclic deals elements round-robin in chunks of the given
	// distribution argument (MPI_DISTRIBUTE_CYCLIC).
	DistCyclic
)

func (d Distribution) String() string {
	switch d {
	case DistNone:
		return "none"
	case DistBlock:
		return "block"
	case DistCyclic:
		return "cyclic"
	}
	return fmt.Sprintf("Distribution(%d)", uint8(d))
}

// DefaultDistArg requests the default distribution argument
// (MPI_DISTRIBUTE_DFLT_DARG): ⌈size/procs⌉ for block, 1 for cyclic.
const DefaultDistArg int64 = -1

// DarraySpec describes a distributed array in the style of
// MPI_Type_create_darray: an ndims-dimensional array of Elem element
// types, distributed over a process grid, from which the calling
// process's rank selects its portion.
type DarraySpec struct {
	Size  int // total number of processes
	Rank  int // calling process
	Sizes []int64
	// Distribs, DistArgs and ProcDims have one entry per dimension.
	Distribs []Distribution
	DistArgs []int64 // block/cyclic argument per dimension (DefaultDistArg ok)
	ProcDims []int64 // process-grid extent per dimension (1 for DistNone)
	Order    Order
	Elem     *Type
}

// Darray builds the datatype selecting rank's portion of the distributed
// array, with the whole array as extent (so it tiles correctly as a
// filetype), like MPI_Type_create_darray.
//
// Block distribution gives process c of the dimension's grid the range
// [c·⌈n/p⌉, min((c+1)·⌈n/p⌉, n)) (the MPI definition; trailing processes
// may be empty when n is much smaller than p·arg).  Cyclic distribution
// deals chunks of the argument size round-robin.
func Darray(spec DarraySpec) (*Type, error) {
	n := len(spec.Sizes)
	if n == 0 {
		return nil, errors.New("datatype: darray needs at least one dimension")
	}
	if len(spec.Distribs) != n || len(spec.DistArgs) != n || len(spec.ProcDims) != n {
		return nil, errors.New("datatype: darray spec slices must have one entry per dimension")
	}
	if spec.Elem == nil {
		return nil, errNilChild
	}
	if spec.Size <= 0 || spec.Rank < 0 || spec.Rank >= spec.Size {
		return nil, fmt.Errorf("datatype: darray rank %d out of range [0,%d)", spec.Rank, spec.Size)
	}
	var gridTotal int64 = 1
	for d := 0; d < n; d++ {
		if spec.Sizes[d] <= 0 {
			return nil, fmt.Errorf("datatype: darray dimension %d has size %d", d, spec.Sizes[d])
		}
		pd := spec.ProcDims[d]
		if pd <= 0 {
			return nil, fmt.Errorf("datatype: darray process grid dim %d = %d", d, pd)
		}
		if spec.Distribs[d] == DistNone && pd != 1 {
			return nil, fmt.Errorf("datatype: darray dim %d undistributed but grid dim %d != 1", d, pd)
		}
		gridTotal *= pd
	}
	if gridTotal != int64(spec.Size) {
		return nil, fmt.Errorf("datatype: darray process grid volume %d != size %d", gridTotal, spec.Size)
	}

	// Decompose the rank into per-dimension grid coordinates.  Like MPI,
	// ranks vary fastest in the last dimension for C order and in the
	// first for Fortran order.
	coords := make([]int64, n)
	r := int64(spec.Rank)
	if spec.Order == OrderC {
		for d := n - 1; d >= 0; d-- {
			coords[d] = r % spec.ProcDims[d]
			r /= spec.ProcDims[d]
		}
	} else {
		for d := 0; d < n; d++ {
			coords[d] = r % spec.ProcDims[d]
			r /= spec.ProcDims[d]
		}
	}

	// Build per-dimension index descriptors, then compose innermost-out.
	dims := make([]dimSel, n)
	for d := 0; d < n; d++ {
		sel, err := dimSelect(spec.Sizes[d], spec.Distribs[d], spec.DistArgs[d], spec.ProcDims[d], coords[d])
		if err != nil {
			return nil, fmt.Errorf("datatype: darray dim %d: %w", d, err)
		}
		dims[d] = sel
	}

	// Normalize to C order (last dimension fastest).
	sizes := spec.Sizes
	if spec.Order == OrderFortran {
		sizes = reverse64(sizes)
		rev := make([]dimSel, n)
		for i := range dims {
			rev[n-1-i] = dims[i]
		}
		dims = rev
	} else {
		sizes = append([]int64(nil), sizes...)
	}

	// Compose: start from the element type and wrap one dimension at a
	// time, innermost (fastest-varying) first.  After each dimension the
	// type is resized to span the dimension's full slot, so the next
	// (outer) dimension can index whole slots with plain block runs.
	cur := spec.Elem
	slot := spec.Elem.Extent() // extent of one index step at this level
	for d := n - 1; d >= 0; d-- {
		sel := dims[d]
		blocklens := make([]int64, len(sel.runs))
		displs := make([]int64, len(sel.runs))
		for i, run := range sel.runs {
			blocklens[i] = run.n
			displs[i] = run.start * slot
		}
		var err error
		cur, err = Hindexed(blocklens, displs, cur)
		if err != nil {
			return nil, err
		}
		slot *= sizes[d]
		cur, err = Resized(cur, 0, slot)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// dimSel is the set of index runs a process owns along one dimension.
type dimSel struct {
	runs []idxRun
}

type idxRun struct {
	start, n int64
}

func dimSelect(size int64, dist Distribution, arg, procs, coord int64) (dimSel, error) {
	switch dist {
	case DistNone:
		return dimSel{runs: []idxRun{{0, size}}}, nil
	case DistBlock:
		if arg == DefaultDistArg {
			arg = (size + procs - 1) / procs
		}
		if arg <= 0 {
			return dimSel{}, fmt.Errorf("block argument %d", arg)
		}
		if arg*procs < size {
			return dimSel{}, fmt.Errorf("block argument %d too small for size %d over %d procs", arg, size, procs)
		}
		start := coord * arg
		if start >= size {
			return dimSel{}, nil // empty portion
		}
		n := arg
		if start+n > size {
			n = size - start
		}
		return dimSel{runs: []idxRun{{start, n}}}, nil
	case DistCyclic:
		if arg == DefaultDistArg {
			arg = 1
		}
		if arg <= 0 {
			return dimSel{}, fmt.Errorf("cyclic argument %d", arg)
		}
		var runs []idxRun
		for start := coord * arg; start < size; start += procs * arg {
			n := arg
			if start+n > size {
				n = size - start
			}
			runs = append(runs, idxRun{start, n})
		}
		return dimSel{runs: runs}, nil
	}
	return dimSel{}, fmt.Errorf("unknown distribution %v", dist)
}
