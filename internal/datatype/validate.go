package datatype

import (
	"errors"
	"fmt"
)

// Filetype/etype legality, following MPI-IO (MPI-2 §9 / the paper §3.2.3):
// an etype and a filetype must have non-negative, monotonically
// non-decreasing displacements in their type maps, and the filetype must
// be built from whole etypes.  These restrictions are what make the
// mergeview contiguity check of the listless engine sound: each byte of
// the file can be written at most once through each fileview.

// ErrNotEtypeMultiple reports a filetype whose data is not a whole number
// of etypes.
var ErrNotEtypeMultiple = errors.New("datatype: filetype size is not a multiple of etype size")

// ValidateEtype checks that t is usable as an elementary type.
func ValidateEtype(t *Type) error {
	if t == nil {
		return errNilChild
	}
	if t.size <= 0 {
		return fmt.Errorf("datatype: etype %s has size %d; must be positive", t, t.size)
	}
	return validateMonotonic(t, "etype")
}

// ValidateFiletype checks that ftype is usable as a filetype over etype:
// monotone non-decreasing non-negative displacements, and a data size
// that is a whole multiple of the etype size.
func ValidateFiletype(etype, ftype *Type) error {
	if err := ValidateEtype(etype); err != nil {
		return err
	}
	if ftype == nil {
		return errNilChild
	}
	if ftype.size%etype.size != 0 {
		return fmt.Errorf("%w: filetype size %d, etype size %d", ErrNotEtypeMultiple, ftype.size, etype.size)
	}
	if ftype.Extent() < ftype.trueUB {
		return fmt.Errorf("datatype: filetype extent %d smaller than data span end %d: instances would overlap",
			ftype.Extent(), ftype.trueUB)
	}
	return validateMonotonic(ftype, "filetype")
}

func validateMonotonic(t *Type, what string) error {
	var err error
	prevEnd := int64(-1)
	t.Walk(func(off, length int64) {
		if err != nil {
			return
		}
		if off < 0 {
			err = fmt.Errorf("datatype: %s has negative displacement %d", what, off)
			return
		}
		if off < prevEnd {
			err = fmt.Errorf("datatype: %s type map not monotonically non-decreasing at offset %d", what, off)
			return
		}
		prevEnd = off + length
	})
	return err
}
