// Package noncontig implements the paper's synthetic benchmark (§4.1):
// a highly configurable write-then-read workload over the Figure-4
// vector-like fileview, measuring per-process bandwidth for the four
// memory/file contiguity combinations, independently or collectively,
// under either datatype engine.
//
// The fileview of process p out of P is
//
//	struct{ LB@0, hvector(blockcount × blocklen, stride P·blocklen)@p·blocklen, UB@extent }
//
// with extent = blockcount·P·blocklen, so the accesses of all processes
// interleave without overlapping and together cover the file densely.
package noncontig

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Pattern selects the memory/file contiguity combination of Figure 1.
type Pattern int

// The four access patterns.
const (
	CC   Pattern = iota // contiguous memory, contiguous file
	NcC                 // non-contiguous memory, contiguous file
	CNc                 // contiguous memory, non-contiguous file
	NcNc                // non-contiguous memory and file
)

func (p Pattern) String() string {
	switch p {
	case CC:
		return "c-c"
	case NcC:
		return "nc-c"
	case CNc:
		return "c-nc"
	case NcNc:
		return "nc-nc"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern parses the paper's pattern names (c-c, nc-c, c-nc, nc-nc).
func ParsePattern(s string) (Pattern, error) {
	for _, p := range []Pattern{CC, NcC, CNc, NcNc} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("noncontig: unknown pattern %q", s)
}

// Config parameterizes one benchmark run.
type Config struct {
	P          int     // number of processes
	Blockcount int64   // N_block: blocks per process
	Blocklen   int64   // S_block: bytes per block
	Pattern    Pattern // memory/file contiguity combination
	Collective bool    // collective vs independent access
	Engine     core.Engine
	Reps       int  // write+read repetitions (default 1)
	Verify     bool // read-back verification on the first repetition
	// Tiles scales the file size (the paper's file-size parameter):
	// each operation accesses Tiles filetype instances (default 1).
	Tiles int64

	// Options tune the MPI-IO layer; Engine overrides Options.Engine.
	Options core.Options
	// Backend supplies the storage backend (default: fresh Mem).
	Backend storage.Backend
	// StallTimeout, when positive, arms the MPI stall watchdog: a run
	// whose ranks all block without progress for this long aborts with
	// a per-rank diagnostic instead of hanging (useful under fault
	// injection).
	StallTimeout time.Duration
	// Trace, when non-nil, records per-rank spans of every collective
	// phase and MPI wait into the collector for Chrome-trace export and
	// the imbalance summary.
	Trace *trace.Collector
	// Metrics, when non-nil, registers the run's live counters (core
	// collective counters, MPI world tallies) for the metrics plane.
	Metrics *obs.Registry
	// OnStall, when set, fires with the watchdog's diagnostic before a
	// stalled world aborts — the flight recorder's dump hook.
	OnStall func(diagnostic string)
}

func (c Config) tiles() int64 {
	if c.Tiles > 0 {
		return c.Tiles
	}
	return 1
}

// DataPerProc reports the bytes each process moves per operation.
func (c Config) DataPerProc() int64 { return c.tiles() * c.Blockcount * c.Blocklen }

// FileSize reports the total file size of the dense interleaving.
func (c Config) FileSize() int64 { return int64(c.P) * c.DataPerProc() }

// Result carries the measured bandwidths and the rank-0 engine stats.
type Result struct {
	Config    Config
	WriteTime time.Duration // max across ranks, total over reps
	ReadTime  time.Duration
	WriteBpp  float64 // MB/s per process (1 MB = 1e6 bytes, as in the paper)
	ReadBpp   float64
	Stats     core.Stats // rank 0 file stats
	Comm      mpi.Stats  // world communication totals
	Verified  bool
}

// Filetype builds the Figure-4 fileview type for rank p of P.
func Filetype(p, P int, blockcount, blocklen int64) (*datatype.Type, error) {
	vec, err := datatype.Hvector(blockcount, blocklen, int64(P)*blocklen, datatype.Byte)
	if err != nil {
		return nil, err
	}
	disp := int64(p) * blocklen
	extent := blockcount * int64(P) * blocklen
	return datatype.Struct(
		[]int64{1, 1, 1},
		[]int64{0, disp, extent},
		[]*datatype.Type{datatype.LBMarker, vec, datatype.UBMarker},
	)
}

// Memtype builds the non-contiguous memory datatype: the same block
// geometry with one-block gaps (stride 2·blocklen).
func Memtype(blockcount, blocklen int64) (*datatype.Type, error) {
	return datatype.Hvector(blockcount, blocklen, 2*blocklen, datatype.Byte)
}

// rankResult is what one rank's benchmark body produces.  The elapsed
// times are already Allreduce-maxed, so every rank carries the global
// numbers; Stats is each rank's own engine snapshot.
type rankResult struct {
	writeNs, readNs int64
	stats           core.Stats
	verifyFailed    bool
}

func (c Config) validate() (Config, error) {
	if c.P <= 0 || c.Blockcount <= 0 || c.Blocklen <= 0 {
		return c, fmt.Errorf("noncontig: invalid config %+v", c)
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	return c, nil
}

// runRankBody is the per-rank benchmark: pre-size (rank 0), install the
// view, run the timed write/read repetitions, verify, reduce the
// maxima.  It runs identically under every process model — goroutine
// ranks on a shared backend, or one OS process per rank each holding
// its own handle on a shared file.
func runRankBody(cfg Config, p *mpi.Proc, be storage.Backend, sh *core.Shared, opts core.Options) rankResult {
	// Pre-size the file so backend growth is not charged to the first
	// write measured.  Rank 0 truncates; the barrier publishes the size.
	if p.Rank() == 0 && be.Size() < cfg.FileSize() {
		if err := be.Truncate(cfg.FileSize()); err != nil {
			panic(err)
		}
	}
	p.Barrier()

	f, err := core.Open(p, sh, opts)
	if err != nil {
		panic(err)
	}
	defer f.Close()

	d := cfg.DataPerProc()
	fileNC := cfg.Pattern == CNc || cfg.Pattern == NcNc
	memNC := cfg.Pattern == NcC || cfg.Pattern == NcNc

	// Install the fileview.
	var viewOff int64 // access offset in etypes (bytes; etype stays Byte)
	if fileNC {
		ft, err := Filetype(p.Rank(), p.Size(), cfg.Blockcount, cfg.Blocklen)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
	} else {
		// Contiguous file: each process owns its own region.
		viewOff = int64(p.Rank()) * d
	}

	// Build the memory buffer.
	var memt *datatype.Type
	var count int64
	var buf []byte
	if memNC {
		mt, err := Memtype(cfg.Blockcount, cfg.Blocklen)
		if err != nil {
			panic(err)
		}
		memt, count = mt, cfg.tiles()
		buf = make([]byte, count*mt.Extent())
	} else {
		memt, count = datatype.Byte, d
		buf = make([]byte, d)
	}
	fillPattern(buf, p.Rank())

	readBuf := make([]byte, len(buf))

	write := func() {
		var err error
		if cfg.Collective {
			_, err = f.WriteAtAll(viewOff, count, memt, buf)
		} else {
			_, err = f.WriteAt(viewOff, count, memt, buf)
		}
		if err != nil {
			panic(err)
		}
	}
	read := func() {
		var err error
		if cfg.Collective {
			_, err = f.ReadAtAll(viewOff, count, memt, readBuf)
		} else {
			_, err = f.ReadAt(viewOff, count, memt, readBuf)
		}
		if err != nil {
			panic(err)
		}
	}

	var res rankResult
	var wNs, rNs int64
	for rep := 0; rep < cfg.Reps; rep++ {
		p.Barrier()
		t0 := time.Now()
		write()
		p.Barrier()
		wNs += time.Since(t0).Nanoseconds()

		t1 := time.Now()
		read()
		p.Barrier()
		rNs += time.Since(t1).Nanoseconds()

		if rep == 0 && cfg.Verify {
			if !verifyTyped(buf, readBuf, memt, count) {
				res.verifyFailed = true
			}
		}
	}
	// Reduce the maximum elapsed times onto every rank.
	res.writeNs = p.AllreduceInt64(wNs, mpi.OpMax)
	res.readNs = p.AllreduceInt64(rNs, mpi.OpMax)
	res.stats = f.Stats.Snapshot()
	return res
}

// assemble turns one rank's result plus the world stats into a Result.
func (c Config) assemble(rr rankResult, comm mpi.Stats) (Result, error) {
	if rr.verifyFailed {
		return Result{}, fmt.Errorf("noncontig: read-back verification failed (%+v)", c)
	}
	res := Result{Config: c, Verified: true}
	res.WriteTime = time.Duration(rr.writeNs)
	res.ReadTime = time.Duration(rr.readNs)
	bytesMoved := float64(c.DataPerProc() * int64(c.Reps))
	if rr.writeNs > 0 {
		res.WriteBpp = bytesMoved / (float64(rr.writeNs) / 1e9) / 1e6
	}
	if rr.readNs > 0 {
		res.ReadBpp = bytesMoved / (float64(rr.readNs) / 1e9) / 1e6
	}
	res.Stats = rr.stats
	res.Comm = comm
	return res, nil
}

// Run executes the benchmark with in-process goroutine ranks and
// returns the measured result.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	return runOver(cfg, transport.NewLoopback(cfg.P))
}

// RunOver is Run with the ranks exchanging over the given transport
// endpoints (still one process: the backend is shared directly).  With
// loopback endpoints it is Run; with transport.NewLocalTCPWorld the
// exchange phases cross real sockets — the transport benchmark's seam.
func RunOver(cfg Config, eps []transport.Transport) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	if cfg.P != len(eps) {
		return Result{}, fmt.Errorf("noncontig: config P=%d but %d endpoints", cfg.P, len(eps))
	}
	return runOver(cfg, eps)
}

func runOver(cfg Config, eps []transport.Transport) (Result, error) {
	be := cfg.Backend
	if be == nil {
		be = storage.NewMem()
	}
	sh := core.NewShared(be)
	opts := cfg.Options
	opts.Engine = cfg.Engine
	opts.Trace = cfg.Trace
	opts.Metrics = cfg.Metrics

	results := make([]rankResult, cfg.P)
	comm, err := mpi.RunOver(eps, mpi.RunOptions{
		StallTimeout: cfg.StallTimeout, Trace: cfg.Trace,
		Metrics: cfg.Metrics, OnStall: cfg.OnStall,
	}, func(p *mpi.Proc) {
		results[p.Rank()] = runRankBody(cfg, p, be, sh, opts)
	})
	if err != nil {
		return Result{}, err
	}
	for r := range results {
		if results[r].verifyFailed {
			results[0].verifyFailed = true
		}
	}
	return cfg.assemble(results[0], comm)
}

// RunRank executes one rank of the benchmark as its own OS process: ep
// is this process's endpoint of a multi-process fabric and cfg.Backend
// this process's own handle on the shared file (storage.OpenFileShared).
// Collective access is required — independent data sieving would
// read-modify-write the shared file under a per-process lock table,
// which cannot exclude other processes.  Every rank returns the same
// reduced timings; Stats are the local rank's.
func RunRank(cfg Config, ep transport.Transport) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	if cfg.P != ep.Size() {
		return Result{}, fmt.Errorf("noncontig: config P=%d but world size %d", cfg.P, ep.Size())
	}
	if cfg.Backend == nil {
		return Result{}, fmt.Errorf("noncontig: RunRank needs an explicit Backend (each process opens the shared file itself)")
	}
	if !cfg.Collective {
		return Result{}, fmt.Errorf("noncontig: RunRank requires collective access (independent sieving cannot lock across processes)")
	}
	sh := core.NewShared(cfg.Backend)
	opts := cfg.Options
	opts.Engine = cfg.Engine
	opts.Trace = cfg.Trace
	opts.Metrics = cfg.Metrics

	var rr rankResult
	comm, err := mpi.RunRank(ep, mpi.RunOptions{
		StallTimeout: cfg.StallTimeout, Trace: cfg.Trace,
		Metrics: cfg.Metrics, OnStall: cfg.OnStall,
	}, func(p *mpi.Proc) {
		rr = runRankBody(cfg, p, cfg.Backend, sh, opts)
	})
	if err != nil {
		return Result{}, err
	}
	return cfg.assemble(rr, comm)
}

// fillPattern writes a rank-dependent deterministic pattern.
func fillPattern(b []byte, rank int) {
	for i := range b {
		b[i] = byte((rank*131 + i*7 + 13) % 251)
	}
}

// verifyTyped compares only the typed (data-bearing) positions of two
// memtype-described buffers.
func verifyTyped(want, got []byte, memt *datatype.Type, count int64) bool {
	if memt.Kind() == datatype.KindNamed {
		return bytes.Equal(want, got)
	}
	ok := true
	ext := memt.Extent()
	for k := int64(0); k < count; k++ {
		memt.Walk(func(off, ln int64) {
			o := k*ext + off
			if !bytes.Equal(want[o:o+ln], got[o:o+ln]) {
				ok = false
			}
		})
	}
	return ok
}
