// Package noncontig implements the paper's synthetic benchmark (§4.1):
// a highly configurable write-then-read workload over the Figure-4
// vector-like fileview, measuring per-process bandwidth for the four
// memory/file contiguity combinations, independently or collectively,
// under either datatype engine.
//
// The fileview of process p out of P is
//
//	struct{ LB@0, hvector(blockcount × blocklen, stride P·blocklen)@p·blocklen, UB@extent }
//
// with extent = blockcount·P·blocklen, so the accesses of all processes
// interleave without overlapping and together cover the file densely.
package noncontig

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Pattern selects the memory/file contiguity combination of Figure 1.
type Pattern int

// The four access patterns.
const (
	CC   Pattern = iota // contiguous memory, contiguous file
	NcC                 // non-contiguous memory, contiguous file
	CNc                 // contiguous memory, non-contiguous file
	NcNc                // non-contiguous memory and file
)

func (p Pattern) String() string {
	switch p {
	case CC:
		return "c-c"
	case NcC:
		return "nc-c"
	case CNc:
		return "c-nc"
	case NcNc:
		return "nc-nc"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern parses the paper's pattern names (c-c, nc-c, c-nc, nc-nc).
func ParsePattern(s string) (Pattern, error) {
	for _, p := range []Pattern{CC, NcC, CNc, NcNc} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("noncontig: unknown pattern %q", s)
}

// Config parameterizes one benchmark run.
type Config struct {
	P          int     // number of processes
	Blockcount int64   // N_block: blocks per process
	Blocklen   int64   // S_block: bytes per block
	Pattern    Pattern // memory/file contiguity combination
	Collective bool    // collective vs independent access
	Engine     core.Engine
	Reps       int  // write+read repetitions (default 1)
	Verify     bool // read-back verification on the first repetition
	// Tiles scales the file size (the paper's file-size parameter):
	// each operation accesses Tiles filetype instances (default 1).
	Tiles int64

	// Options tune the MPI-IO layer; Engine overrides Options.Engine.
	Options core.Options
	// Backend supplies the storage backend (default: fresh Mem).
	Backend storage.Backend
	// StallTimeout, when positive, arms the MPI stall watchdog: a run
	// whose ranks all block without progress for this long aborts with
	// a per-rank diagnostic instead of hanging (useful under fault
	// injection).
	StallTimeout time.Duration
	// Trace, when non-nil, records per-rank spans of every collective
	// phase and MPI wait into the collector for Chrome-trace export and
	// the imbalance summary.
	Trace *trace.Collector
}

func (c Config) tiles() int64 {
	if c.Tiles > 0 {
		return c.Tiles
	}
	return 1
}

// DataPerProc reports the bytes each process moves per operation.
func (c Config) DataPerProc() int64 { return c.tiles() * c.Blockcount * c.Blocklen }

// FileSize reports the total file size of the dense interleaving.
func (c Config) FileSize() int64 { return int64(c.P) * c.DataPerProc() }

// Result carries the measured bandwidths and the rank-0 engine stats.
type Result struct {
	Config    Config
	WriteTime time.Duration // max across ranks, total over reps
	ReadTime  time.Duration
	WriteBpp  float64 // MB/s per process (1 MB = 1e6 bytes, as in the paper)
	ReadBpp   float64
	Stats     core.Stats // rank 0 file stats
	Comm      mpi.Stats  // world communication totals
	Verified  bool
}

// Filetype builds the Figure-4 fileview type for rank p of P.
func Filetype(p, P int, blockcount, blocklen int64) (*datatype.Type, error) {
	vec, err := datatype.Hvector(blockcount, blocklen, int64(P)*blocklen, datatype.Byte)
	if err != nil {
		return nil, err
	}
	disp := int64(p) * blocklen
	extent := blockcount * int64(P) * blocklen
	return datatype.Struct(
		[]int64{1, 1, 1},
		[]int64{0, disp, extent},
		[]*datatype.Type{datatype.LBMarker, vec, datatype.UBMarker},
	)
}

// Memtype builds the non-contiguous memory datatype: the same block
// geometry with one-block gaps (stride 2·blocklen).
func Memtype(blockcount, blocklen int64) (*datatype.Type, error) {
	return datatype.Hvector(blockcount, blocklen, 2*blocklen, datatype.Byte)
}

// Run executes the benchmark and returns the measured result.
func Run(cfg Config) (Result, error) {
	if cfg.P <= 0 || cfg.Blockcount <= 0 || cfg.Blocklen <= 0 {
		return Result{}, fmt.Errorf("noncontig: invalid config %+v", cfg)
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 1
	}
	be := cfg.Backend
	if be == nil {
		be = storage.NewMem()
	}
	// Pre-size the file so backend growth is not charged to the first
	// write measured.
	if be.Size() < cfg.FileSize() {
		if err := be.Truncate(cfg.FileSize()); err != nil {
			return Result{}, err
		}
	}
	sh := core.NewShared(be)
	opts := cfg.Options
	opts.Engine = cfg.Engine
	opts.Trace = cfg.Trace

	res := Result{Config: cfg, Verified: true}
	var writeNs, readNs int64
	var rank0Stats core.Stats
	verifyFailed := false

	comm, err := mpi.RunWithOptions(cfg.P, mpi.RunOptions{StallTimeout: cfg.StallTimeout, Trace: cfg.Trace}, func(p *mpi.Proc) {
		f, err := core.Open(p, sh, opts)
		if err != nil {
			panic(err)
		}
		defer f.Close()

		d := cfg.DataPerProc()
		fileNC := cfg.Pattern == CNc || cfg.Pattern == NcNc
		memNC := cfg.Pattern == NcC || cfg.Pattern == NcNc

		// Install the fileview.
		var viewOff int64 // access offset in etypes (bytes; etype stays Byte)
		if fileNC {
			ft, err := Filetype(p.Rank(), p.Size(), cfg.Blockcount, cfg.Blocklen)
			if err != nil {
				panic(err)
			}
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
		} else {
			// Contiguous file: each process owns its own region.
			viewOff = int64(p.Rank()) * d
		}

		// Build the memory buffer.
		var memt *datatype.Type
		var count int64
		var buf []byte
		if memNC {
			mt, err := Memtype(cfg.Blockcount, cfg.Blocklen)
			if err != nil {
				panic(err)
			}
			memt, count = mt, cfg.tiles()
			buf = make([]byte, count*mt.Extent())
		} else {
			memt, count = datatype.Byte, d
			buf = make([]byte, d)
		}
		fillPattern(buf, p.Rank())

		readBuf := make([]byte, len(buf))

		write := func() {
			var err error
			if cfg.Collective {
				_, err = f.WriteAtAll(viewOff, count, memt, buf)
			} else {
				_, err = f.WriteAt(viewOff, count, memt, buf)
			}
			if err != nil {
				panic(err)
			}
		}
		read := func() {
			var err error
			if cfg.Collective {
				_, err = f.ReadAtAll(viewOff, count, memt, readBuf)
			} else {
				_, err = f.ReadAt(viewOff, count, memt, readBuf)
			}
			if err != nil {
				panic(err)
			}
		}

		var wNs, rNs int64
		for rep := 0; rep < cfg.Reps; rep++ {
			p.Barrier()
			t0 := time.Now()
			write()
			p.Barrier()
			wNs += time.Since(t0).Nanoseconds()

			t1 := time.Now()
			read()
			p.Barrier()
			rNs += time.Since(t1).Nanoseconds()

			if rep == 0 && cfg.Verify {
				if !verifyTyped(buf, readBuf, memt, count) {
					verifyFailed = true
				}
			}
		}
		// Reduce the maximum elapsed times.
		wMax := p.AllreduceInt64(wNs, mpi.OpMax)
		rMax := p.AllreduceInt64(rNs, mpi.OpMax)
		if p.Rank() == 0 {
			writeNs, readNs = wMax, rMax
			rank0Stats = f.Stats.Snapshot()
		}
	})
	if err != nil {
		return Result{}, err
	}
	if verifyFailed {
		return Result{}, fmt.Errorf("noncontig: read-back verification failed (%+v)", cfg)
	}

	res.WriteTime = time.Duration(writeNs)
	res.ReadTime = time.Duration(readNs)
	bytesMoved := float64(cfg.DataPerProc() * int64(cfg.Reps))
	if writeNs > 0 {
		res.WriteBpp = bytesMoved / (float64(writeNs) / 1e9) / 1e6
	}
	if readNs > 0 {
		res.ReadBpp = bytesMoved / (float64(readNs) / 1e9) / 1e6
	}
	res.Stats = rank0Stats
	res.Comm = comm
	return res, nil
}

// fillPattern writes a rank-dependent deterministic pattern.
func fillPattern(b []byte, rank int) {
	for i := range b {
		b[i] = byte((rank*131 + i*7 + 13) % 251)
	}
}

// verifyTyped compares only the typed (data-bearing) positions of two
// memtype-described buffers.
func verifyTyped(want, got []byte, memt *datatype.Type, count int64) bool {
	if memt.Kind() == datatype.KindNamed {
		return bytes.Equal(want, got)
	}
	ok := true
	ext := memt.Extent()
	for k := int64(0); k < count; k++ {
		memt.Walk(func(off, ln int64) {
			o := k*ext + off
			if !bytes.Equal(want[o:o+ln], got[o:o+ln]) {
				ok = false
			}
		})
	}
	return ok
}
