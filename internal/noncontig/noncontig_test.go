package noncontig

import (
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func TestParsePattern(t *testing.T) {
	for _, p := range []Pattern{CC, NcC, CNc, NcNc} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePattern(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePattern("bogus"); err == nil {
		t.Error("bogus pattern accepted")
	}
}

func TestFiletypeGeometry(t *testing.T) {
	ft, err := Filetype(1, 4, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Size() != 80 {
		t.Errorf("size = %d, want 80", ft.Size())
	}
	if ft.Extent() != 10*4*8 {
		t.Errorf("extent = %d, want %d", ft.Extent(), 10*4*8)
	}
	if ft.LB() != 0 {
		t.Errorf("lb = %d, want 0", ft.LB())
	}
	first := int64(-1)
	ft.Walk(func(off, ln int64) {
		if first < 0 {
			first = off
		}
	})
	if first != 8 {
		t.Errorf("first block at %d, want 8 (p*blocklen)", first)
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := Config{P: 4, Blockcount: 16, Blocklen: 8}
	if cfg.DataPerProc() != 128 {
		t.Errorf("DataPerProc = %d", cfg.DataPerProc())
	}
	if cfg.FileSize() != 512 {
		t.Errorf("FileSize = %d", cfg.FileSize())
	}
}

func TestRunAllPatternsBothEnginesBothModes(t *testing.T) {
	for _, pat := range []Pattern{CC, NcC, CNc, NcNc} {
		for _, coll := range []bool{false, true} {
			for _, eng := range []core.Engine{core.Listless, core.ListBased} {
				cfg := Config{
					P: 2, Blockcount: 32, Blocklen: 8,
					Pattern: pat, Collective: coll, Engine: eng,
					Verify: true,
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%v/%v/coll=%v: %v", pat, eng, coll, err)
				}
				if !res.Verified {
					t.Fatalf("%v/%v/coll=%v: not verified", pat, eng, coll)
				}
				if res.WriteBpp <= 0 || res.ReadBpp <= 0 {
					t.Fatalf("%v/%v/coll=%v: zero bandwidth %+v", pat, eng, coll, res)
				}
			}
		}
	}
}

func TestRunProducesIdenticalFilesAcrossEngines(t *testing.T) {
	for _, pat := range []Pattern{CNc, NcNc} {
		var files [2][]byte
		for i, eng := range []core.Engine{core.Listless, core.ListBased} {
			be := storage.NewMem()
			cfg := Config{
				P: 4, Blockcount: 16, Blocklen: 8,
				Pattern: pat, Collective: true, Engine: eng,
				Backend: be, Verify: true,
			}
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
			files[i] = be.Bytes()
		}
		if string(files[0]) != string(files[1]) {
			t.Fatalf("%v: engines produced different files", pat)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{P: 0, Blockcount: 1, Blocklen: 1}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := Run(Config{P: 1, Blockcount: 0, Blocklen: 1}); err == nil {
		t.Error("Blockcount=0 accepted")
	}
}

func TestListStatsOnlyForListBased(t *testing.T) {
	base := Config{P: 2, Blockcount: 64, Blocklen: 8, Pattern: NcNc, Collective: true}

	lb := base
	lb.Engine = core.ListBased
	rb, err := Run(lb)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Stats.ListTuples == 0 || rb.Stats.ListBytesSent == 0 {
		t.Errorf("list-based run shows no list work: %+v", rb.Stats)
	}

	ll := base
	ll.Engine = core.Listless
	rl, err := Run(ll)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Stats.ListTuples != 0 {
		t.Errorf("listless run built ol-lists: %+v", rl.Stats)
	}
	if rl.Comm.Bytes >= rb.Comm.Bytes {
		t.Errorf("listless moved more bytes (%d) than list-based (%d)", rl.Comm.Bytes, rb.Comm.Bytes)
	}
}

func TestRepsAccumulate(t *testing.T) {
	cfg := Config{
		P: 2, Blockcount: 16, Blocklen: 8,
		Pattern: CNc, Engine: core.Listless, Reps: 3, Verify: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteTime <= 0 || res.ReadTime <= 0 {
		t.Fatalf("times not accumulated: %+v", res)
	}
}

func TestTilesScaleFileSize(t *testing.T) {
	be := storage.NewMem()
	cfg := Config{
		P: 2, Blockcount: 8, Blocklen: 16, Tiles: 3,
		Pattern: NcNc, Collective: true, Engine: core.Listless,
		Backend: be, Verify: true,
	}
	if cfg.DataPerProc() != 3*8*16 {
		t.Fatalf("DataPerProc = %d", cfg.DataPerProc())
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("tiles run not verified")
	}
	if got, want := int64(len(be.Bytes())), cfg.FileSize(); got != want {
		t.Fatalf("file size %d, want %d", got, want)
	}
}

func TestTilesCrossEngine(t *testing.T) {
	var files [2][]byte
	for i, eng := range []core.Engine{core.Listless, core.ListBased} {
		be := storage.NewMem()
		cfg := Config{
			P: 3, Blockcount: 8, Blocklen: 8, Tiles: 4,
			Pattern: NcNc, Collective: true, Engine: eng,
			Backend: be, Verify: true,
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		files[i] = be.Bytes()
	}
	if string(files[0]) != string(files[1]) {
		t.Fatal("tiles: engines diverge")
	}
}
