//go:build !unix

package storage

import "os"

// flockFile is a no-op where flock(2) is unavailable; opens succeed
// without cross-process exclusion.
func flockFile(f *os.File, shared bool) error { return nil }
