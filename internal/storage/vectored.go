package storage

import "fmt"

// Vectored (scatter/gather) access.  A non-contiguous access that has
// resolved to a set of (offset, buffer) pieces can be issued as one
// batched call instead of one backend call per piece — on unix files
// this maps to preadv(2)/pwritev(2), on Mem to a single lock
// acquisition, and everywhere else to a plain loop.  The helpers
// ReadAtv/WriteAtv pick the best available path for any Backend, so
// callers never branch on capability.

// Segment is one contiguous piece of a vectored access.
type Segment struct {
	Off int64
	Buf []byte
}

// Vectored is the optional scatter/gather extension of Backend.
// ReadAtv follows ReadFull semantics per segment: bytes past the end of
// the store read as zeros, and only real errors are returned.  WriteAtv
// writes every segment, extending the store as needed.  Segments must
// be pre-sorted by offset if the caller wants adjacent ones batched,
// but correctness does not require any ordering.
type Vectored interface {
	ReadAtv(segs []Segment) error
	WriteAtv(segs []Segment) error
}

// ReadAtv reads every segment from b, zero-filling past EOF, using the
// backend's native vectored path when it has one.
func ReadAtv(b Backend, segs []Segment) error {
	if v, ok := b.(Vectored); ok {
		return v.ReadAtv(segs)
	}
	for _, s := range segs {
		if err := ReadFull(b, s.Buf, s.Off); err != nil {
			return err
		}
	}
	return nil
}

// WriteAtv writes every segment to b, using the backend's native
// vectored path when it has one.
func WriteAtv(b Backend, segs []Segment) error {
	if v, ok := b.(Vectored); ok {
		return v.WriteAtv(segs)
	}
	for _, s := range segs {
		if _, err := b.WriteAt(s.Buf, s.Off); err != nil {
			return err
		}
	}
	return nil
}

// segsLen sums the byte count of a segment batch.
func segsLen(segs []Segment) int64 {
	var n int64
	for _, s := range segs {
		n += int64(len(s.Buf))
	}
	return n
}

// segsSpan reports the file range [lo, hi) a batch touches (0,0 when
// empty).
func segsSpan(segs []Segment) (lo, hi int64) {
	for i, s := range segs {
		end := s.Off + int64(len(s.Buf))
		if i == 0 || s.Off < lo {
			lo = s.Off
		}
		if end > hi {
			hi = end
		}
	}
	return lo, hi
}

// ReadAtv implements Vectored natively for Mem: the whole batch runs
// under one read lock.
func (m *Mem) ReadAtv(segs []Segment) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	size := int64(len(m.data))
	for _, s := range segs {
		if s.Off < 0 {
			return fmt.Errorf("storage: negative offset %d", s.Off)
		}
		var n int
		if s.Off < size {
			n = copy(s.Buf, m.data[s.Off:])
		}
		for i := n; i < len(s.Buf); i++ {
			s.Buf[i] = 0
		}
	}
	return nil
}

// WriteAtv implements Vectored natively for Mem: one lock, one grow to
// the batch's maximum extent, then plain copies.
func (m *Mem) WriteAtv(segs []Segment) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range segs {
		if s.Off < 0 {
			return fmt.Errorf("storage: negative offset %d", s.Off)
		}
		end := s.Off + int64(len(s.Buf))
		if end > int64(len(m.data)) {
			if end > int64(cap(m.data)) {
				grown := make([]byte, end, grow(cap(m.data), end))
				copy(grown, m.data)
				m.data = grown
			} else {
				m.data = m.data[:end]
			}
		}
		copy(m.data[s.Off:end], s.Buf)
	}
	return nil
}
