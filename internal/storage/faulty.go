package storage

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error produced by a Faulty backend when a fault
// fires.
var ErrInjected = errors.New("storage: injected fault")

// Faulty wraps a Backend and fails operations on demand, for testing
// error propagation through the sieving and two-phase I/O paths.
type Faulty struct {
	Backend
	// FailReadAfter / FailWriteAfter make the n-th subsequent read or
	// write (1-based) and everything after it fail; 0 disables.
	failReadAfter  atomic.Int64
	failWriteAfter atomic.Int64
	reads, writes  atomic.Int64
}

// NewFaulty wraps b with fault injection disabled.
func NewFaulty(b Backend) *Faulty {
	return &Faulty{Backend: b}
}

// FailReads makes the n-th next read (1-based) and all later reads fail.
func (f *Faulty) FailReads(n int64) {
	f.reads.Store(0)
	f.failReadAfter.Store(n)
}

// FailWrites makes the n-th next write (1-based) and all later writes
// fail.
func (f *Faulty) FailWrites(n int64) {
	f.writes.Store(0)
	f.failWriteAfter.Store(n)
}

// Heal disables fault injection.
func (f *Faulty) Heal() {
	f.failReadAfter.Store(0)
	f.failWriteAfter.Store(0)
}

// ReadAt implements io.ReaderAt with fault injection.
func (f *Faulty) ReadAt(p []byte, off int64) (int, error) {
	if n := f.failReadAfter.Load(); n > 0 && f.reads.Add(1) >= n {
		return 0, ErrInjected
	}
	return f.Backend.ReadAt(p, off)
}

// WriteAt implements io.WriterAt with fault injection.
func (f *Faulty) WriteAt(p []byte, off int64) (int, error) {
	if n := f.failWriteAfter.Load(); n > 0 && f.writes.Add(1) >= n {
		return 0, ErrInjected
	}
	return f.Backend.WriteAt(p, off)
}
