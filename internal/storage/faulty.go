package storage

import (
	"fmt"
	"sync"
)

// ErrInjected is the error produced by a Faulty backend when a fault
// fires.  It is classified permanent: a Faulty fault repeats until Heal,
// so retrying cannot help.
var ErrInjected = fmt.Errorf("storage: injected fault: %w", ErrPermanent)

// faultArm is one direction's trigger state.  Count threshold and
// counter live under one mutex so arming, tripping, and re-arming are
// atomic with respect to each other — concurrent chaos tests re-arm
// while operations are in flight.
type faultArm struct {
	mu     sync.Mutex
	after  int64 // count trigger: the after-th next op (1-based) and later fail; 0 disarmed
	count  int64
	ranged bool // range trigger: ops overlapping [lo, hi) fail
	lo, hi int64
}

func (a *faultArm) armCount(n int64) {
	a.mu.Lock()
	a.count, a.after = 0, n
	a.mu.Unlock()
}

func (a *faultArm) armRange(lo, hi int64) {
	a.mu.Lock()
	a.ranged, a.lo, a.hi = true, lo, hi
	a.mu.Unlock()
}

func (a *faultArm) disarm() {
	a.mu.Lock()
	a.after, a.count, a.ranged = 0, 0, false
	a.mu.Unlock()
}

// trip reports whether an operation on [off, off+n) fires the fault.
func (a *faultArm) trip(off, n int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ranged && off < a.hi && off+n > a.lo {
		return true
	}
	if a.after > 0 {
		a.count++
		return a.count >= a.after
	}
	return false
}

// Faulty wraps a Backend and fails operations on demand, for testing
// error propagation through the sieving and two-phase I/O paths: by
// operation count (the n-th next read/write and all later ones) or by
// file range (any access overlapping a byte range — which is how tests
// target one IOP's file domain in a collective).  For probabilistic,
// seeded injection see Chaos.
type Faulty struct {
	Backend
	reads, writes faultArm
}

// NewFaulty wraps b with fault injection disabled.
func NewFaulty(b Backend) *Faulty {
	return &Faulty{Backend: b}
}

// FailReads makes the n-th next read (1-based) and all later reads fail.
func (f *Faulty) FailReads(n int64) { f.reads.armCount(n) }

// FailWrites makes the n-th next write (1-based) and all later writes
// fail.
func (f *Faulty) FailWrites(n int64) { f.writes.armCount(n) }

// FailReadRange makes every read overlapping [lo, hi) fail.
func (f *Faulty) FailReadRange(lo, hi int64) { f.reads.armRange(lo, hi) }

// FailWriteRange makes every write overlapping [lo, hi) fail.
func (f *Faulty) FailWriteRange(lo, hi int64) { f.writes.armRange(lo, hi) }

// Heal disables fault injection.
func (f *Faulty) Heal() {
	f.reads.disarm()
	f.writes.disarm()
}

// ReadAt implements io.ReaderAt with fault injection.
func (f *Faulty) ReadAt(p []byte, off int64) (int, error) {
	if f.reads.trip(off, int64(len(p))) {
		return 0, ErrInjected
	}
	return f.Backend.ReadAt(p, off)
}

// WriteAt implements io.WriterAt with fault injection.
func (f *Faulty) WriteAt(p []byte, off int64) (int, error) {
	if f.writes.trip(off, int64(len(p))) {
		return 0, ErrInjected
	}
	return f.Backend.WriteAt(p, off)
}
