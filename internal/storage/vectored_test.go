package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// vectoredBackends builds the backends whose vectored paths the matrix
// exercises, paired with a way to read the final contents back.
func vectoredBackends(t *testing.T) map[string]Backend {
	t.Helper()
	f, err := OpenFile(filepath.Join(t.TempDir(), "v.dat"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return map[string]Backend{
		"mem":          NewMem(),
		"file":         f,
		"instrumented": NewInstrumented(NewMem()),
		"throttled":    NewThrottled(NewMem(), 1<<30, 1<<30, 0),
		"resilient":    NewResilient(NewMem(), ResilientConfig{}),
		"faulty":       NewFaulty(NewMem()),
		"traced":       NewTraced(NewMem(), nil),
	}
}

// TestVectoredMatrix writes and reads a scatter/gather pattern through
// every backend and checks byte equivalence with the loop fallback.
func TestVectoredMatrix(t *testing.T) {
	mkSegs := func(bufs ...[]byte) []Segment {
		// Layout: 10-byte gap, seg, gap 3, two adjacent segs, gap 7, seg.
		segs := make([]Segment, len(bufs))
		cur := int64(10)
		for i, b := range bufs {
			switch i {
			case 1:
				cur += 3
			case 2: // adjacent to 1
			case 3:
				cur += 7
			}
			segs[i] = Segment{Off: cur, Buf: b}
			cur += int64(len(b))
		}
		return segs
	}
	data := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 50),
		bytes.Repeat([]byte{3}, 75),
		bytes.Repeat([]byte{4}, 200),
	}

	// Oracle: the loop fallback over a plain Mem.
	oracle := NewMem()
	if err := func() error {
		for _, s := range mkSegs(data[0], data[1], data[2], data[3]) {
			if _, err := oracle.WriteAt(s.Buf, s.Off); err != nil {
				return err
			}
		}
		return nil
	}(); err != nil {
		t.Fatal(err)
	}
	want := oracle.Bytes()

	for name, b := range vectoredBackends(t) {
		t.Run(name, func(t *testing.T) {
			if err := WriteAtv(b, mkSegs(data[0], data[1], data[2], data[3])); err != nil {
				t.Fatalf("WriteAtv: %v", err)
			}
			got := make([]byte, len(want))
			if err := ReadFull(b, got, 0); err != nil {
				t.Fatalf("ReadFull: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("contents differ from loop oracle")
			}
			// Read the same pattern back through the vectored path.
			rb := make([][]byte, len(data))
			for i, d := range data {
				rb[i] = make([]byte, len(d))
			}
			if err := ReadAtv(b, mkSegs(rb[0], rb[1], rb[2], rb[3])); err != nil {
				t.Fatalf("ReadAtv: %v", err)
			}
			for i := range data {
				if !bytes.Equal(rb[i], data[i]) {
					t.Fatalf("segment %d read back wrong", i)
				}
			}
		})
	}
}

// TestVectoredReadZeroFill checks the ReadFull contract: segments (and
// suffixes) past EOF read as zeros, across segment boundaries.
func TestVectoredReadZeroFill(t *testing.T) {
	f, err := OpenFile(filepath.Join(t.TempDir(), "z.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for name, b := range map[string]Backend{"mem": NewMem(), "file": f} {
		t.Run(name, func(t *testing.T) {
			if _, err := b.WriteAt(bytes.Repeat([]byte{9}, 20), 0); err != nil {
				t.Fatal(err)
			}
			// Segments: fully in-range, straddling EOF, fully past EOF.
			segs := []Segment{
				{Off: 0, Buf: bytes.Repeat([]byte{0xFF}, 10)},
				{Off: 10, Buf: bytes.Repeat([]byte{0xFF}, 20)}, // bytes 10..20 real, 20..30 zero
				{Off: 100, Buf: bytes.Repeat([]byte{0xFF}, 5)},
			}
			if err := ReadAtv(b, segs); err != nil {
				t.Fatalf("ReadAtv: %v", err)
			}
			for i := 0; i < 10; i++ {
				if segs[0].Buf[i] != 9 {
					t.Fatalf("seg0[%d] = %d", i, segs[0].Buf[i])
				}
			}
			for i := 0; i < 20; i++ {
				want := byte(0)
				if i < 10 {
					want = 9
				}
				if segs[1].Buf[i] != want {
					t.Fatalf("seg1[%d] = %d, want %d", i, segs[1].Buf[i], want)
				}
			}
			for i := 0; i < 5; i++ {
				if segs[2].Buf[i] != 0 {
					t.Fatalf("seg2[%d] = %d, want 0", i, segs[2].Buf[i])
				}
			}
		})
	}
}

// TestVectoredEmptyAndZeroLenSegs: empty batches and zero-length
// segments are no-ops everywhere.
func TestVectoredEmptyAndZeroLenSegs(t *testing.T) {
	f, err := OpenFile(filepath.Join(t.TempDir(), "e.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, b := range []Backend{NewMem(), f} {
		if err := WriteAtv(b, nil); err != nil {
			t.Fatal(err)
		}
		if err := ReadAtv(b, nil); err != nil {
			t.Fatal(err)
		}
		segs := []Segment{{Off: 5, Buf: nil}, {Off: 9, Buf: []byte{42}}}
		if err := WriteAtv(b, segs); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 1)
		if err := ReadFull(b, got, 9); err != nil || got[0] != 42 {
			t.Fatalf("zero-len segment batch: got %v err %v", got, err)
		}
	}
}

// TestVectoredInstrumentedCountsOneOp: a batch of many segments is one
// counted operation — the syscall metric the alloc benchmark reports.
func TestVectoredInstrumentedCountsOneOp(t *testing.T) {
	in := NewInstrumented(NewMem())
	var segs []Segment
	for i := 0; i < 16; i++ {
		segs = append(segs, Segment{Off: int64(i * 100), Buf: []byte{byte(i), byte(i)}})
	}
	if err := WriteAtv(in, segs); err != nil {
		t.Fatal(err)
	}
	if err := ReadAtv(in, segs); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("vectored batches counted as %d writes, %d reads; want 1, 1", st.Writes, st.Reads)
	}
	if st.BytesWritten != 32 || st.BytesRead != 32 {
		t.Fatalf("bytes: %d written, %d read; want 32, 32", st.BytesWritten, st.BytesRead)
	}
}

// TestVectoredFaultyRange: a batch overlapping an armed range fails.
func TestVectoredFaultyRange(t *testing.T) {
	fb := NewFaulty(NewMem())
	fb.FailWriteRange(150, 160)
	err := WriteAtv(fb, []Segment{
		{Off: 0, Buf: make([]byte, 10)},
		{Off: 155, Buf: make([]byte, 10)},
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	fb.Heal()
	if err := WriteAtv(fb, []Segment{{Off: 155, Buf: make([]byte, 10)}}); err != nil {
		t.Fatal(err)
	}
}

// TestVectoredChaosResilient: every transient injection on the vectored
// path is repaired by the Resilient wrapper, and the final contents
// match the fault-free oracle.
func TestVectoredChaosResilient(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mem := NewMem()
		chaos := NewChaos(seed, mem, TransientOnly())
		chaos.sleep = func(time.Duration) {}
		res := NewResilient(chaos, ResilientConfig{Seed: seed})
		res.sleep = func(time.Duration) {}

		var segs []Segment
		for i := 0; i < 32; i++ {
			buf := bytes.Repeat([]byte{byte(i + 1)}, 33)
			segs = append(segs, Segment{Off: int64(i * 40), Buf: buf})
		}
		if err := WriteAtv(res, segs); err != nil {
			t.Fatalf("seed %d: WriteAtv: %v", seed, err)
		}
		back := make([]Segment, len(segs))
		for i, s := range segs {
			back[i] = Segment{Off: s.Off, Buf: make([]byte, len(s.Buf))}
		}
		if err := ReadAtv(res, back); err != nil {
			t.Fatalf("seed %d: ReadAtv: %v", seed, err)
		}
		for i := range segs {
			if !bytes.Equal(back[i].Buf, segs[i].Buf) {
				t.Fatalf("seed %d: segment %d corrupted", seed, i)
			}
		}
	}
}

// TestVectoredFileAdjacentBatching: adjacent segments write correctly
// through the grouped preadv/pwritev path, including spans larger than
// one syscall's iovec budget.
func TestVectoredFileAdjacentBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adj.dat")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// 2000 adjacent 3-byte segments: exceeds IOV_MAX in one contiguous
	// run, so the unix path must split it into multiple syscalls.
	var segs []Segment
	var want []byte
	for i := 0; i < 2000; i++ {
		b := []byte{byte(i), byte(i >> 8), byte(i >> 16)}
		segs = append(segs, Segment{Off: int64(i * 3), Buf: b})
		want = append(want, b...)
	}
	if err := WriteAtv(f, segs); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("file contents differ (len %d vs %d)", len(got), len(want))
	}
	// Read back through the same grouped path.
	rb := make([]Segment, len(segs))
	for i, s := range segs {
		rb[i] = Segment{Off: s.Off, Buf: make([]byte, len(s.Buf))}
	}
	if err := ReadAtv(f, rb); err != nil {
		t.Fatal(err)
	}
	for i := range segs {
		if !bytes.Equal(rb[i].Buf, segs[i].Buf) {
			t.Fatalf("segment %d read back wrong", i)
		}
	}
}
