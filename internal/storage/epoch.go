package storage

import (
	"errors"

	"repro/internal/trace"
)

// Epoch-based commit.  A backend spread across several failure domains —
// the networked I/O-server tier, where each stripe lives in its own
// process — cannot make a multi-stripe collective write atomic with
// plain WriteAt: a server crash mid-collective leaves some stripes new
// and some old.  An EpochBackend fixes the contract: writes issued
// between EpochBegin and EpochCommit are *staged* under the epoch id
// (journaled server-side, invisible to reads), and only EpochCommit
// makes them durable, everywhere, atomically with respect to crashes —
// a server that dies and restarts discards every uncommitted epoch
// during journal recovery.
//
// The intended driver is core's collective write path: begin an epoch,
// run the two-phase schedule (whose window write-backs stage), hold the
// existing collective error vote, then seal on every rank and let rank 0
// broadcast the commit.  Reads always see the last committed state, so
// the collective pre-reads (which never overlap the windows written in
// the same collective) stay correct.

// ErrEpochRetry reports that a commit or seal raced a server restart:
// the staged state the caller sealed is gone (recovery discarded it) and
// the epoch must be re-staged and re-sealed before commit can succeed.
// It is deliberately NOT transient — blindly reissuing the commit would
// commit a partial epoch; only the caller can rerun the seal round.
var ErrEpochRetry = errors.New("storage: epoch state lost, re-seal required")

// IsEpochRetry reports whether err asks for a re-seal + re-commit round.
func IsEpochRetry(err error) bool { return errors.Is(err, ErrEpochRetry) }

// EpochBackend is the optional crash-consistent commit extension of
// Backend.
type EpochBackend interface {
	// SupportsEpochs reports whether epoch calls can succeed; wrappers
	// resolve the capability of their inner backend dynamically.
	SupportsEpochs() bool
	// EpochBegin enters staging mode: subsequent writes (WriteAt,
	// WriteAtv, ViewWrite) are staged under id instead of applied.
	// Reads keep returning the last committed state.  Begin is local
	// bookkeeping and idempotent for the active id, so every rank of a
	// world sharing one backend may call it.
	EpochBegin(id uint64)
	// EpochSeal verifies that everything staged under id through this
	// backend actually reached the servers (a server that silently
	// bounced mid-epoch fails the seal, forcing a reconnect that
	// re-stages).  Every participant must seal before anyone commits.
	EpochSeal(id uint64) error
	// EpochCommit atomically applies epoch id on every stripe and ends
	// staging mode.  Exactly one participant commits.  ErrEpochRetry
	// means a server restarted after the seal: re-seal and re-commit.
	EpochCommit(id uint64) error
	// EpochAbort discards epoch id's staged state and ends staging mode.
	EpochAbort(id uint64) error
	// EpochEnd ends staging mode locally without touching staged state —
	// the non-committing participants' counterpart of EpochCommit.
	EpochEnd(id uint64)
}

// AsEpochBackend reports b's usable epoch extension, if any.
func AsEpochBackend(b Backend) (EpochBackend, bool) {
	eb, ok := b.(EpochBackend)
	if !ok || !eb.SupportsEpochs() {
		return nil, false
	}
	return eb, true
}

// Epoch passthrough for the wrapper backends on the remote path,
// mirroring the ViewBackend passthrough: Resilient retries transient
// seal/commit failures (both are idempotent against the servers; a
// reconnect-and-reissue replays the client's stage log first, which is
// exactly the healing the seal exists to trigger), Traced spans them,
// Throttled charges per-operation latency, Chaos and Faulty delegate
// (their injection lives on the data ops the epoch stages).

// SupportsEpochs implements EpochBackend for Resilient.
func (r *Resilient) SupportsEpochs() bool {
	_, ok := AsEpochBackend(r.Backend)
	return ok
}

// EpochBegin implements EpochBackend for Resilient.
func (r *Resilient) EpochBegin(id uint64) {
	if eb, ok := AsEpochBackend(r.Backend); ok {
		eb.EpochBegin(id)
	}
}

// EpochSeal implements EpochBackend for Resilient: one retry unit.
func (r *Resilient) EpochSeal(id uint64) error {
	eb, ok := AsEpochBackend(r.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return r.do(int64(id), func() error { return eb.EpochSeal(id) })
}

// EpochCommit implements EpochBackend for Resilient.  Transient commit
// failures are retried (commit is idempotent); ErrEpochRetry is not
// transient and passes straight through to the protocol driver.
func (r *Resilient) EpochCommit(id uint64) error {
	eb, ok := AsEpochBackend(r.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return r.do(int64(id), func() error { return eb.EpochCommit(id) })
}

// EpochAbort implements EpochBackend for Resilient.
func (r *Resilient) EpochAbort(id uint64) error {
	eb, ok := AsEpochBackend(r.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return r.do(int64(id), func() error { return eb.EpochAbort(id) })
}

// EpochEnd implements EpochBackend for Resilient.
func (r *Resilient) EpochEnd(id uint64) {
	if eb, ok := AsEpochBackend(r.Backend); ok {
		eb.EpochEnd(id)
	}
}

// ErrNoEpochs is returned by wrapper backends whose inner backend does
// not implement EpochBackend when an epoch method is called anyway.
var ErrNoEpochs = errors.New("storage: backend does not support epochs")

// SupportsEpochs implements EpochBackend for Traced.
func (t *Traced) SupportsEpochs() bool {
	_, ok := AsEpochBackend(t.Backend)
	return ok
}

// EpochBegin implements EpochBackend for Traced.
func (t *Traced) EpochBegin(id uint64) {
	if eb, ok := AsEpochBackend(t.Backend); ok {
		eb.EpochBegin(id)
	}
}

// EpochSeal implements EpochBackend for Traced: one span per seal.
func (t *Traced) EpochSeal(id uint64) error {
	eb, ok := AsEpochBackend(t.Backend)
	if !ok {
		return ErrNoEpochs
	}
	sp := t.tr.Begin(trace.PhaseEpochSeal, int64(id), 0)
	err := eb.EpochSeal(id)
	sp.End()
	return err
}

// EpochCommit implements EpochBackend for Traced.
func (t *Traced) EpochCommit(id uint64) error {
	eb, ok := AsEpochBackend(t.Backend)
	if !ok {
		return ErrNoEpochs
	}
	sp := t.tr.Begin(trace.PhaseEpochCommit, int64(id), 0)
	err := eb.EpochCommit(id)
	sp.End()
	return err
}

// EpochAbort implements EpochBackend for Traced.
func (t *Traced) EpochAbort(id uint64) error {
	eb, ok := AsEpochBackend(t.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return eb.EpochAbort(id)
}

// EpochEnd implements EpochBackend for Traced.
func (t *Traced) EpochEnd(id uint64) {
	if eb, ok := AsEpochBackend(t.Backend); ok {
		eb.EpochEnd(id)
	}
}

// SupportsEpochs implements EpochBackend for Throttled.
func (t *Throttled) SupportsEpochs() bool {
	_, ok := AsEpochBackend(t.Backend)
	return ok
}

// EpochBegin implements EpochBackend for Throttled.
func (t *Throttled) EpochBegin(id uint64) {
	if eb, ok := AsEpochBackend(t.Backend); ok {
		eb.EpochBegin(id)
	}
}

// EpochSeal implements EpochBackend for Throttled: control traffic,
// charged only the per-operation latency.
func (t *Throttled) EpochSeal(id uint64) error {
	eb, ok := AsEpochBackend(t.Backend)
	if !ok {
		return ErrNoEpochs
	}
	t.charge(0, 0)
	return eb.EpochSeal(id)
}

// EpochCommit implements EpochBackend for Throttled.
func (t *Throttled) EpochCommit(id uint64) error {
	eb, ok := AsEpochBackend(t.Backend)
	if !ok {
		return ErrNoEpochs
	}
	t.charge(0, 0)
	return eb.EpochCommit(id)
}

// EpochAbort implements EpochBackend for Throttled.
func (t *Throttled) EpochAbort(id uint64) error {
	eb, ok := AsEpochBackend(t.Backend)
	if !ok {
		return ErrNoEpochs
	}
	t.charge(0, 0)
	return eb.EpochAbort(id)
}

// EpochEnd implements EpochBackend for Throttled.
func (t *Throttled) EpochEnd(id uint64) {
	if eb, ok := AsEpochBackend(t.Backend); ok {
		eb.EpochEnd(id)
	}
}

// SupportsEpochs implements EpochBackend for Chaos.
func (c *Chaos) SupportsEpochs() bool {
	_, ok := AsEpochBackend(c.Backend)
	return ok
}

// EpochBegin implements EpochBackend for Chaos.
func (c *Chaos) EpochBegin(id uint64) {
	if eb, ok := AsEpochBackend(c.Backend); ok {
		eb.EpochBegin(id)
	}
}

// EpochSeal implements EpochBackend for Chaos: delegation — injection
// lives on the staged data operations, not the commit control ops.
func (c *Chaos) EpochSeal(id uint64) error {
	eb, ok := AsEpochBackend(c.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return eb.EpochSeal(id)
}

// EpochCommit implements EpochBackend for Chaos.
func (c *Chaos) EpochCommit(id uint64) error {
	eb, ok := AsEpochBackend(c.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return eb.EpochCommit(id)
}

// EpochAbort implements EpochBackend for Chaos.
func (c *Chaos) EpochAbort(id uint64) error {
	eb, ok := AsEpochBackend(c.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return eb.EpochAbort(id)
}

// EpochEnd implements EpochBackend for Chaos.
func (c *Chaos) EpochEnd(id uint64) {
	if eb, ok := AsEpochBackend(c.Backend); ok {
		eb.EpochEnd(id)
	}
}

// SupportsEpochs implements EpochBackend for Faulty.
func (f *Faulty) SupportsEpochs() bool {
	_, ok := AsEpochBackend(f.Backend)
	return ok
}

// EpochBegin implements EpochBackend for Faulty.
func (f *Faulty) EpochBegin(id uint64) {
	if eb, ok := AsEpochBackend(f.Backend); ok {
		eb.EpochBegin(id)
	}
}

// EpochSeal implements EpochBackend for Faulty.
func (f *Faulty) EpochSeal(id uint64) error {
	eb, ok := AsEpochBackend(f.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return eb.EpochSeal(id)
}

// EpochCommit implements EpochBackend for Faulty.
func (f *Faulty) EpochCommit(id uint64) error {
	eb, ok := AsEpochBackend(f.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return eb.EpochCommit(id)
}

// EpochAbort implements EpochBackend for Faulty.
func (f *Faulty) EpochAbort(id uint64) error {
	eb, ok := AsEpochBackend(f.Backend)
	if !ok {
		return ErrNoEpochs
	}
	return eb.EpochAbort(id)
}

// EpochEnd implements EpochBackend for Faulty.
func (f *Faulty) EpochEnd(id uint64) {
	if eb, ok := AsEpochBackend(f.Backend); ok {
		eb.EpochEnd(id)
	}
}
