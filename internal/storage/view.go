package storage

import (
	"errors"

	"repro/internal/datatype"
	"repro/internal/trace"
)

// Registered fileviews.  A backend that understands datatypes — the
// networked I/O-server tier — can accept a fileview (a tiled filetype at
// a displacement) once and then serve accesses addressed in *data*
// bytes of that pattern, evaluating the noncontiguous layout on its own
// side of the wire.  That turns an access touching n scattered blocks
// from an n-entry offset list into a constant-size (handle, offset,
// count) request — the wire-level analogue of the paper's listless
// engine replacing ol-lists with the compact datatype representation.

// ViewHandle names one registered fileview on a ViewBackend.
type ViewHandle uint64

// ErrNoViews is returned by wrapper backends whose inner backend does
// not implement ViewBackend when a view method is called anyway.
var ErrNoViews = errors.New("storage: backend does not support registered views")

// ViewBackend is the optional registered-view extension of Backend.
//
// Data byte x of a view (disp, ftype) lives at absolute file offset
// disp + b, where b is the buffer offset of data byte x in the
// indefinite tiling of ftype.  ViewRead and ViewWrite follow the
// Vectored cost contract: ViewRead zero-fills data bytes past the
// stored size, ViewWrite extends the store as needed.
type ViewBackend interface {
	// SupportsViews reports whether view calls can succeed.  Wrapper
	// backends satisfy ViewBackend statically whenever their inner
	// backend might; this probe resolves the capability dynamically.
	SupportsViews() bool
	// RegisterView registers the tiled filetype at displacement disp
	// and returns a handle for view-addressed access.  Handles are
	// valid until the backend is closed.
	RegisterView(disp int64, ftype *datatype.Type) (ViewHandle, error)
	// ViewRead reads data bytes [d0, d0+len(p)) of the view into p.
	ViewRead(h ViewHandle, p []byte, d0 int64) error
	// ViewWrite writes p as data bytes [d0, d0+len(p)) of the view.
	ViewWrite(h ViewHandle, p []byte, d0 int64) error
}

// AsViewBackend reports b's usable view extension, if any.
func AsViewBackend(b Backend) (ViewBackend, bool) {
	vb, ok := b.(ViewBackend)
	if !ok || !vb.SupportsViews() {
		return nil, false
	}
	return vb, true
}

// View passthrough for the wrapper backends on the remote path:
// Resilient retries transient view failures (a reconnect-and-reissue
// repairs a dropped server connection because view operations, like all
// Backend operations, are idempotent), Traced spans them, Throttled
// charges them like any other transfer of the same size.

// SupportsViews implements ViewBackend for Resilient.
func (r *Resilient) SupportsViews() bool {
	_, ok := AsViewBackend(r.Backend)
	return ok
}

// RegisterView implements ViewBackend for Resilient: one retry unit.
func (r *Resilient) RegisterView(disp int64, ftype *datatype.Type) (ViewHandle, error) {
	vb, ok := AsViewBackend(r.Backend)
	if !ok {
		return 0, ErrNoViews
	}
	var h ViewHandle
	err := r.do(disp, func() error {
		var e error
		h, e = vb.RegisterView(disp, ftype)
		return e
	})
	return h, err
}

// ViewRead implements ViewBackend for Resilient: the whole transfer is
// the retry unit.
func (r *Resilient) ViewRead(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(r.Backend)
	if !ok {
		return ErrNoViews
	}
	return r.do(d0, func() error { return vb.ViewRead(h, p, d0) })
}

// ViewWrite implements ViewBackend for Resilient.
func (r *Resilient) ViewWrite(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(r.Backend)
	if !ok {
		return ErrNoViews
	}
	return r.do(d0, func() error { return vb.ViewWrite(h, p, d0) })
}

// SupportsViews implements ViewBackend for Traced.
func (t *Traced) SupportsViews() bool {
	_, ok := AsViewBackend(t.Backend)
	return ok
}

// RegisterView implements ViewBackend for Traced.
func (t *Traced) RegisterView(disp int64, ftype *datatype.Type) (ViewHandle, error) {
	vb, ok := AsViewBackend(t.Backend)
	if !ok {
		return 0, ErrNoViews
	}
	return vb.RegisterView(disp, ftype)
}

// ViewRead implements ViewBackend for Traced: one span per transfer.
func (t *Traced) ViewRead(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(t.Backend)
	if !ok {
		return ErrNoViews
	}
	sp := t.tr.Begin(trace.PhaseStorageViewRead, d0, int64(len(p)))
	err := vb.ViewRead(h, p, d0)
	sp.End()
	return err
}

// ViewWrite implements ViewBackend for Traced.
func (t *Traced) ViewWrite(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(t.Backend)
	if !ok {
		return ErrNoViews
	}
	sp := t.tr.Begin(trace.PhaseStorageViewWrite, d0, int64(len(p)))
	err := vb.ViewWrite(h, p, d0)
	sp.End()
	return err
}

// SupportsViews implements ViewBackend for Throttled.
func (t *Throttled) SupportsViews() bool {
	_, ok := AsViewBackend(t.Backend)
	return ok
}

// RegisterView implements ViewBackend for Throttled: registration is
// metadata, charged only the per-operation latency.
func (t *Throttled) RegisterView(disp int64, ftype *datatype.Type) (ViewHandle, error) {
	vb, ok := AsViewBackend(t.Backend)
	if !ok {
		return 0, ErrNoViews
	}
	t.charge(0, 0)
	return vb.RegisterView(disp, ftype)
}

// ViewRead implements ViewBackend for Throttled: one latency charge
// plus the transferred bytes over the read bandwidth.
func (t *Throttled) ViewRead(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(t.Backend)
	if !ok {
		return ErrNoViews
	}
	t.charge(len(p), t.ReadBW)
	return vb.ViewRead(h, p, d0)
}

// ViewWrite implements ViewBackend for Throttled.
func (t *Throttled) ViewWrite(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(t.Backend)
	if !ok {
		return ErrNoViews
	}
	t.charge(len(p), t.WriteBW)
	return vb.ViewWrite(h, p, d0)
}
