package storage

import "fmt"

// Region presents a fixed window [off, off+size) of a larger backend as
// a Backend of its own.  The session service uses it to hand several
// concurrent sessions disjoint slices of one shared store (one striped
// I/O-server tier serving many open files): each session addresses its
// region from zero, and the region translates to the global offsets.
//
// A region never shrinks the shared store — Truncate grows the inner
// backend when the region's logical end moves past it and is otherwise
// a no-op, since shrinking would destroy the neighbouring regions'
// bytes.  Reads and writes past the region's end are refused rather
// than silently clipped, so a misconfigured session fails loudly
// instead of corrupting its neighbour.
type Region struct {
	b    Backend
	off  int64
	size int64
}

// NewRegion wraps bytes [off, off+size) of b.
func NewRegion(b Backend, off, size int64) (*Region, error) {
	if off < 0 || size <= 0 {
		return nil, fmt.Errorf("storage: invalid region [%d, %d+%d)", off, off, size)
	}
	return &Region{b: b, off: off, size: size}, nil
}

// check validates that [off, off+n) stays inside the region.
func (r *Region) check(off int64, n int) error {
	if off < 0 {
		return fmt.Errorf("storage: negative offset %d", off)
	}
	if off+int64(n) > r.size {
		return fmt.Errorf("storage: access [%d, %d) exceeds region size %d: %w",
			off, off+int64(n), r.size, ErrPermanent)
	}
	return nil
}

// ReadAt implements io.ReaderAt within the region.  EOF semantics follow
// the region's logical size: the region's bytes past the inner store's
// end read as a short read, like any Backend.
func (r *Region) ReadAt(p []byte, off int64) (int, error) {
	if err := r.check(off, len(p)); err != nil {
		return 0, err
	}
	return r.b.ReadAt(p, r.off+off)
}

// WriteAt implements io.WriterAt within the region.
func (r *Region) WriteAt(p []byte, off int64) (int, error) {
	if err := r.check(off, len(p)); err != nil {
		return 0, err
	}
	return r.b.WriteAt(p, r.off+off)
}

// ReadAtv implements Vectored with per-segment translation.
func (r *Region) ReadAtv(segs []Segment) error {
	shifted, err := r.shift(segs)
	if err != nil {
		return err
	}
	return ReadAtv(r.b, shifted)
}

// WriteAtv implements Vectored with per-segment translation.
func (r *Region) WriteAtv(segs []Segment) error {
	shifted, err := r.shift(segs)
	if err != nil {
		return err
	}
	return WriteAtv(r.b, shifted)
}

func (r *Region) shift(segs []Segment) ([]Segment, error) {
	shifted := make([]Segment, len(segs))
	for i, s := range segs {
		if err := r.check(s.Off, len(s.Buf)); err != nil {
			return nil, err
		}
		shifted[i] = Segment{Off: r.off + s.Off, Buf: s.Buf}
	}
	return shifted, nil
}

// Size implements Backend: how much of the region the inner store
// currently covers, clamped to [0, size].
func (r *Region) Size() int64 {
	n := r.b.Size() - r.off
	if n < 0 {
		return 0
	}
	if n > r.size {
		return r.size
	}
	return n
}

// Truncate implements Backend, grow-only: extending the region's logical
// length grows the shared store to cover it; shrink requests are no-ops
// (the store is shared — reclaiming would zero a neighbour's future
// growth path, and the region's own reads already clamp to size).
func (r *Region) Truncate(n int64) error {
	if n < 0 {
		return fmt.Errorf("storage: negative truncate %d", n)
	}
	if n > r.size {
		return fmt.Errorf("storage: truncate %d exceeds region size %d: %w", n, r.size, ErrPermanent)
	}
	if r.off+n > r.b.Size() {
		return r.b.Truncate(r.off + n)
	}
	return nil
}

// Sync implements Backend.
func (r *Region) Sync() error { return r.b.Sync() }
