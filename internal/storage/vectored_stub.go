//go:build !linux

package storage

// Portable vectored path for File: without preadv/pwritev, fall back to
// one backend call per segment, preserving the helpers' semantics
// (ReadFull zero-fill on reads).

// ReadAtv implements Vectored for File.
func (fb *File) ReadAtv(segs []Segment) error {
	if err := fb.takeSizeErr(); err != nil {
		return err
	}
	for _, s := range segs {
		if err := ReadFull(fb, s.Buf, s.Off); err != nil {
			return err
		}
	}
	return nil
}

// WriteAtv implements Vectored for File.
func (fb *File) WriteAtv(segs []Segment) error {
	for _, s := range segs {
		if _, err := fb.WriteAt(s.Buf, s.Off); err != nil {
			return err
		}
	}
	return nil
}
