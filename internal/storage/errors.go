package storage

import "errors"

// Error taxonomy for fault-tolerant storage.  Real parallel file systems
// fail in two distinguishable ways: transiently (a dropped server
// connection, a timeout, a torn write — retrying the operation may
// succeed) and permanently (corrupt media, an invalid argument — retrying
// cannot help).  Fault-injecting and real backends signal the class by
// wrapping one of the two sentinels below; the Resilient wrapper retries
// only transient failures.

// ErrTransient classifies an error as retryable: the same operation may
// succeed if reissued.
var ErrTransient = errors.New("storage: transient error")

// ErrPermanent classifies an error as non-retryable.
var ErrPermanent = errors.New("storage: permanent error")

// IsTransient reports whether err is classified transient.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsPermanent reports whether err is a failure that retrying cannot fix.
// Unclassified errors count as permanent: retrying an unknown failure
// risks amplifying damage.  (io.EOF is "permanent" under this rule, but
// callers treat EOF as a short read, not a failure, before classifying.)
func IsPermanent(err error) bool { return err != nil && !IsTransient(err) }
