package storage

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestMemTruncateShrinkRegrowZeroes is the regression test for the
// stale-data bug: shrinking kept the old bytes in the backing array's
// spare capacity, and a later WriteAt regrow within that capacity
// resurfaced them instead of zeros.
func TestMemTruncateShrinkRegrowZeroes(t *testing.T) {
	m := NewMem()
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xFF}, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate(16); err != nil {
		t.Fatal(err)
	}
	// Regrow within the retained capacity without touching [16, 63).
	if _, err := m.WriteAt([]byte{0xAA}, 63); err != nil {
		t.Fatal(err)
	}
	got := m.Bytes()
	if len(got) != 64 {
		t.Fatalf("size %d after regrow, want 64", len(got))
	}
	for i := 16; i < 63; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x after truncate+regrow, want 0 (stale pre-truncate data)", i, got[i])
		}
	}
	if got[63] != 0xAA {
		t.Errorf("written byte lost: %#x", got[63])
	}
}

// TestMemTruncateGrowZeroes: growing within capacity must also expose
// zeros (the in-capacity grow path shares the invariant).
func TestMemTruncateGrowZeroes(t *testing.T) {
	m := NewMem()
	if _, err := m.WriteAt(bytes.Repeat([]byte{0xFF}, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate(32); err != nil {
		t.Fatal(err)
	}
	got := m.Bytes()
	for i := 8; i < 32; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d = %#x after shrink+grow truncates, want 0", i, got[i])
		}
	}
}

// TestFileSizeDeferredError: Size cannot return an error, so a Stat
// failure must not masquerade as an empty file — it is cached and
// surfaced by the next ReadAt or Sync, once.
func TestFileSizeDeferredError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if got := fb.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
	// Close the descriptor out from under it: Stat now fails.
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fb.Size(); got != 0 {
		t.Fatalf("failed Size = %d, want 0", got)
	}
	_, rerr := fb.ReadAt(make([]byte, 4), 0)
	if rerr == nil || !errors.Is(rerr, os.ErrClosed) {
		t.Fatalf("ReadAt after failed Size = %v, want the deferred Stat error", rerr)
	}
	if want := "deferred Size failure"; !bytes.Contains([]byte(rerr.Error()), []byte(want)) {
		t.Errorf("error %q does not mention %q", rerr, want)
	}
	// The deferred error is surfaced once; the next call reports its
	// own (here: closed-file) failure rather than replaying the old one.
	_, rerr2 := fb.ReadAt(make([]byte, 4), 0)
	if rerr2 == nil {
		t.Fatal("second ReadAt on closed file succeeded")
	}
	if bytes.Contains([]byte(rerr2.Error()), []byte("deferred")) {
		t.Errorf("deferred error replayed twice: %v", rerr2)
	}

	// Sync also surfaces it.
	fb2, err := OpenFile(filepath.Join(t.TempDir(), "g"))
	if err != nil {
		t.Fatal(err)
	}
	if err := fb2.Close(); err != nil {
		t.Fatal(err)
	}
	fb2.Size()
	if err := fb2.Sync(); err == nil || !errors.Is(err, os.ErrClosed) {
		t.Fatalf("Sync after failed Size = %v, want the deferred Stat error", err)
	}
}

// TestFaultyRangeTargeting: range-armed faults hit exactly the
// overlapping operations.
func TestFaultyRangeTargeting(t *testing.T) {
	fb := NewFaulty(NewMem())
	if _, err := fb.WriteAt(make([]byte, 256), 0); err != nil {
		t.Fatal(err)
	}
	fb.FailReadRange(64, 128)
	if _, err := fb.ReadAt(make([]byte, 32), 0); err != nil {
		t.Errorf("read outside the armed range failed: %v", err)
	}
	if _, err := fb.ReadAt(make([]byte, 32), 128); err != nil {
		t.Errorf("read at the exclusive end failed: %v", err)
	}
	if _, err := fb.ReadAt(make([]byte, 32), 48); !errors.Is(err, ErrInjected) {
		t.Errorf("overlapping read err = %v, want injected", err)
	}
	if _, err := fb.ReadAt(make([]byte, 1), 127); !errors.Is(err, ErrInjected) {
		t.Errorf("last-byte read err = %v, want injected", err)
	}
	if _, err := fb.WriteAt(make([]byte, 32), 64); err != nil {
		t.Errorf("write hit a read-armed fault: %v", err)
	}
	fb.Heal()
	if _, err := fb.ReadAt(make([]byte, 32), 64); err != nil {
		t.Errorf("read after Heal failed: %v", err)
	}
}

// TestFaultyArmRace is the regression test for the arm/reset race: the
// count threshold and counter were two unsynchronized atomics, so
// re-arming concurrently with in-flight operations could observe a new
// threshold against a stale count.  Under -race this test also proves
// the data paths are clean.
func TestFaultyArmRace(t *testing.T) {
	fb := NewFaulty(NewMem())
	if _, err := fb.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := fb.ReadAt(buf, 0); err != nil && !errors.Is(err, ErrInjected) && err != io.EOF {
					t.Errorf("unexpected read error: %v", err)
					return
				}
				if _, err := fb.WriteAt(buf, 0); err != nil && !errors.Is(err, ErrInjected) {
					t.Errorf("unexpected write error: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		fb.FailReads(int64(i%7 + 1))
		fb.FailWrites(int64(i%5 + 1))
		fb.FailReadRange(int64(i%32), int64(i%32+16))
		fb.Heal()
	}
	close(stop)
	wg.Wait()

	fb.Heal()
	if _, err := fb.ReadAt(make([]byte, 8), 0); err != nil {
		t.Errorf("read after the storm failed: %v", err)
	}
}
