package storage

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestStripeGeomEach is the table-driven contract of the shared stripe
// mapping: the exact per-stripe pieces of a global range, covering
// zero-length ranges, exact stripe-boundary alignment, and segments
// spanning several stripes and rows.
func TestStripeGeomEach(t *testing.T) {
	type piece struct {
		stripe   int
		localOff int64
		lo, hi   int64
	}
	cases := []struct {
		name  string
		geom  StripeGeom
		off   int64
		n     int64
		wants []piece
	}{
		{
			name: "zero-length",
			geom: StripeGeom{Unit: 4, Count: 2},
			off:  7, n: 0,
			wants: nil,
		},
		{
			name: "within-one-unit",
			geom: StripeGeom{Unit: 8, Count: 3},
			off:  2, n: 4,
			wants: []piece{{0, 2, 0, 4}},
		},
		{
			name: "exact-unit",
			geom: StripeGeom{Unit: 4, Count: 2},
			off:  4, n: 4,
			wants: []piece{{1, 0, 0, 4}},
		},
		{
			name: "ends-on-boundary",
			geom: StripeGeom{Unit: 4, Count: 2},
			off:  2, n: 2,
			wants: []piece{{0, 2, 0, 2}},
		},
		{
			name: "starts-on-boundary-spans-two",
			geom: StripeGeom{Unit: 4, Count: 2},
			off:  4, n: 6,
			wants: []piece{{1, 0, 0, 4}, {0, 4, 4, 6}},
		},
		{
			name: "spans-row-wrap",
			geom: StripeGeom{Unit: 4, Count: 2},
			off:  6, n: 8,
			// units 1 (stripe1), 2 (stripe0 row1), 3 (stripe1 row1)
			wants: []piece{{1, 2, 0, 2}, {0, 4, 2, 6}, {1, 4, 6, 8}},
		},
		{
			name: "multi-stripe-multi-row",
			geom: StripeGeom{Unit: 2, Count: 3},
			off:  1, n: 9,
			// global bytes 1..9: units 0..4
			wants: []piece{{0, 1, 0, 1}, {1, 0, 1, 3}, {2, 0, 3, 5}, {0, 2, 5, 7}, {1, 2, 7, 9}},
		},
		{
			name: "single-stripe-degenerate",
			geom: StripeGeom{Unit: 4, Count: 1},
			off:  3, n: 6,
			wants: []piece{{0, 3, 0, 1}, {0, 4, 1, 5}, {0, 8, 5, 6}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []piece
			err := tc.geom.Each(tc.off, tc.n, func(stripe int, localOff, lo, hi int64) error {
				got = append(got, piece{stripe, localOff, lo, hi})
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.wants) {
				t.Fatalf("pieces = %+v, want %+v", got, tc.wants)
			}
			for i := range got {
				if got[i] != tc.wants[i] {
					t.Fatalf("piece %d = %+v, want %+v", i, got[i], tc.wants[i])
				}
			}
		})
	}
}

// TestStripeGeomLocalGlobalLen checks LocalLen against a brute-force
// byte count and GlobalLen as its inverse.
func TestStripeGeomLocalGlobalLen(t *testing.T) {
	for _, g := range []StripeGeom{{Unit: 1, Count: 1}, {Unit: 4, Count: 2}, {Unit: 3, Count: 3}, {Unit: 8, Count: 5}} {
		for n := int64(0); n <= 4*g.Unit*int64(g.Count)+3; n++ {
			counts := make([]int64, g.Count)
			for b := int64(0); b < n; b++ {
				s, local := g.Locate(b)
				if counts[s] != local {
					t.Fatalf("geom %+v: byte %d lands at local %d on stripe %d, want dense %d",
						g, b, local, s, counts[s])
				}
				counts[s]++
			}
			for i := 0; i < g.Count; i++ {
				if got := g.LocalLen(n, i); got != counts[i] {
					t.Fatalf("geom %+v: LocalLen(%d, %d) = %d, want %d", g, n, i, got, counts[i])
				}
				// GlobalLen inverts: the smallest global length holding
				// stripe i's counts[i] bytes is at most n and reproduces
				// the same local length.
				if counts[i] > 0 {
					gl := g.GlobalLen(counts[i], i)
					if gl > n {
						t.Fatalf("geom %+v: GlobalLen(%d, %d) = %d > n=%d", g, counts[i], i, gl, n)
					}
					if back := g.LocalLen(gl, i); back != counts[i] {
						t.Fatalf("geom %+v: LocalLen(GlobalLen(%d,%d)=%d, %d) = %d", g, counts[i], i, gl, i, back)
					}
				}
			}
		}
	}
}

// TestStripedVectored checks the per-stripe regrouped vectored path
// against the scalar path: identical bytes, and at most one backend
// batch per member.
func TestStripedVectored(t *testing.T) {
	s, _ := newStriped(t, 4, 3)
	ref := NewMem()
	data := make([]byte, 96)
	rand.New(rand.NewSource(1)).Read(data)
	// Segments of varied shapes: zero-length, boundary-exact, spanning.
	offs := []int64{0, 3, 4, 11, 12, 40}
	lens := []int64{0, 5, 4, 1, 20, 17}
	var segs, refSegs []Segment
	pos := int64(0)
	for i := range offs {
		segs = append(segs, Segment{Off: offs[i], Buf: data[pos : pos+lens[i]]})
		refSegs = append(refSegs, Segment{Off: offs[i], Buf: data[pos : pos+lens[i]]})
		pos += lens[i]
	}
	if err := s.WriteAtv(segs); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteAtv(refSegs); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{s.Size(), ref.Size()} {
		if n != 57 {
			t.Fatalf("size = %d, want 57", n)
		}
	}
	got := make([]byte, 60)
	want := make([]byte, 60)
	rsegs := []Segment{{Off: 1, Buf: got[:30]}, {Off: 31, Buf: got[30:]}}
	wsegs := []Segment{{Off: 1, Buf: want[:30]}, {Off: 31, Buf: want[30:]}}
	if err := s.ReadAtv(rsegs); err != nil {
		t.Fatal(err)
	}
	if err := ref.ReadAtv(wsegs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("vectored striped read differs from flat reference")
	}
	if _, err := SplitSegs(s.Geom(), []Segment{{Off: -1, Buf: make([]byte, 4)}}); err == nil {
		t.Fatal("negative offset accepted")
	}
}
