package storage

import "sync"

// LockTable serializes overlapping byte-range accesses.  Data sieving
// writes are read-modify-write cycles on a window of the file; the
// window must be locked so concurrent independent writers do not clobber
// each other's bytes through stale sieve buffers (paper §2.2).
type LockTable struct {
	mu   sync.Mutex
	cond *sync.Cond
	held []span
}

type span struct{ lo, hi int64 }

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	lt := &LockTable{}
	lt.cond = sync.NewCond(&lt.mu)
	return lt
}

// Lock blocks until the byte range [lo, hi) can be held exclusively and
// returns the function that releases it.
func (lt *LockTable) Lock(lo, hi int64) (unlock func()) {
	lt.mu.Lock()
	for lt.overlaps(lo, hi) {
		lt.cond.Wait()
	}
	lt.held = append(lt.held, span{lo, hi})
	lt.mu.Unlock()
	return func() {
		lt.mu.Lock()
		for i, s := range lt.held {
			if s.lo == lo && s.hi == hi {
				lt.held = append(lt.held[:i], lt.held[i+1:]...)
				break
			}
		}
		lt.mu.Unlock()
		lt.cond.Broadcast()
	}
}

func (lt *LockTable) overlaps(lo, hi int64) bool {
	for _, s := range lt.held {
		if lo < s.hi && s.lo < hi {
			return true
		}
	}
	return false
}
