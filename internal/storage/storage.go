// Package storage provides the file-system substrate under the MPI-IO
// layer: byte-addressed backends with POSIX-like contiguous ReadAt/
// WriteAt semantics, a bandwidth/latency throttle for modelling slower
// file systems, a range-lock table for atomic read-modify-write during
// data sieving, and access instrumentation.
//
// The default in-memory backend stands in for the NEC SX's very fast
// local file system (see DESIGN.md): contiguous access is far faster
// than per-element software overhead, which is the regime in which the
// paper's listless-I/O gains are largest.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Backend is a byte-addressed store with contiguous access, the only
// interface the file system offers to the MPI-IO layer (POSIX-style:
// no scatter/gather, no non-contiguous primitives).
type Backend interface {
	io.ReaderAt
	io.WriterAt
	// Size reports the current length of the store.
	Size() int64
	// Truncate sets the length of the store.
	Truncate(n int64) error
	// Sync flushes buffered state.
	Sync() error
}

// Mem is a growable in-memory Backend.  It is safe for concurrent use.
// Reads past the end return io.EOF after the available bytes, like
// os.File.
//
// Mem is strictly single-process: it lives in this process's heap, so
// ranks running as separate OS processes (the network transport's -net
// mode) cannot share one — they must share a *File, whose advisory lock
// enforces deliberate multi-process access.
type Mem struct {
	mu   sync.RWMutex
	data []byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{} }

// ReadAt implements io.ReaderAt.
func (m *Mem) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt, growing the store as needed.
func (m *Mem) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(m.data)) {
		if end > int64(cap(m.data)) {
			grown := make([]byte, end, grow(cap(m.data), end))
			copy(grown, m.data)
			m.data = grown
		} else {
			m.data = m.data[:end]
		}
	}
	copy(m.data[off:end], p)
	return len(p), nil
}

func grow(c int, need int64) int64 {
	n := int64(c) * 2
	if n < need {
		n = need
	}
	return n
}

// Size implements Backend.
func (m *Mem) Size() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.data))
}

// Truncate implements Backend.
func (m *Mem) Truncate(n int64) error {
	if n < 0 {
		return fmt.Errorf("storage: negative truncate %d", n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= int64(len(m.data)) {
		// Zero the reclaimed region: the backing array keeps its
		// capacity, and a later regrow within that capacity (WriteAt's
		// m.data[:end] path) must expose zeros, not the pre-truncate
		// bytes.  This maintains the invariant data[len:cap] == 0.
		tail := m.data[n:]
		for i := range tail {
			tail[i] = 0
		}
		m.data = m.data[:n]
		return nil
	}
	if n > int64(cap(m.data)) {
		grown := make([]byte, n)
		copy(grown, m.data)
		m.data = grown
		return nil
	}
	tail := m.data[len(m.data):n]
	for i := range tail {
		tail[i] = 0
	}
	m.data = m.data[:n]
	return nil
}

// Sync implements Backend (a no-op for memory).
func (m *Mem) Sync() error { return nil }

// Bytes returns a copy of the store's contents, for tests.
func (m *Mem) Bytes() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out
}

// File is a Backend backed by an *os.File.
type File struct {
	f *os.File

	mu      sync.Mutex
	sizeErr error // deferred Stat failure from Size (which cannot return one)
}

// OpenFile creates or opens path for exclusive read/write access: an
// advisory lock (flock) is taken so a second process opening the same
// path — e.g. two single-process runs racing, or a multi-process rank
// that should have used OpenFileShared — fails fast with ErrLocked
// instead of silently interleaving writes.
func OpenFile(path string) (*File, error) {
	return openLocked(path, false)
}

// OpenFileShared creates or opens path for read/write access under a
// shared advisory lock — the open the network transport's rank
// processes use when they deliberately operate on one file (collective
// I/O partitions it into disjoint domains).  A shared open fails with
// ErrLocked while an exclusive holder exists, and vice versa.
func OpenFileShared(path string) (*File, error) {
	return openLocked(path, true)
}

func openLocked(path string, shared bool) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockFile(f, shared); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (fb *File) ReadAt(p []byte, off int64) (int, error) {
	if err := fb.takeSizeErr(); err != nil {
		return 0, err
	}
	return fb.f.ReadAt(p, off)
}

// WriteAt implements io.WriterAt.
func (fb *File) WriteAt(p []byte, off int64) (int, error) { return fb.f.WriteAt(p, off) }

// Size implements Backend.  The Backend interface gives Size no error
// return; a Stat failure must not masquerade as an empty file (data
// sieving would treat 0 as EOF and skip its pre-read), so the error is
// cached and surfaced from the next ReadAt or Sync.
func (fb *File) Size() int64 {
	fi, err := fb.f.Stat()
	if err != nil {
		fb.mu.Lock()
		if fb.sizeErr == nil {
			fb.sizeErr = fmt.Errorf("storage: deferred Size failure: %w", err)
		}
		fb.mu.Unlock()
		return 0
	}
	return fi.Size()
}

// takeSizeErr returns and clears the deferred Size failure, if any.
func (fb *File) takeSizeErr() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	err := fb.sizeErr
	fb.sizeErr = nil
	return err
}

// Truncate implements Backend.
func (fb *File) Truncate(n int64) error { return fb.f.Truncate(n) }

// Sync implements Backend.
func (fb *File) Sync() error {
	if err := fb.takeSizeErr(); err != nil {
		return err
	}
	return fb.f.Sync()
}

// Close closes the underlying file.
func (fb *File) Close() error { return fb.f.Close() }

// ErrShortRead is returned by ReadFull when zero-filling was required but
// disabled.
var ErrShortRead = errors.New("storage: short read")

// ErrLocked is wrapped by OpenFile / OpenFileShared when another
// process holds a conflicting advisory lock on the path.
var ErrLocked = errors.New("storage: file locked by another process")

// ReadFull reads len(p) bytes at off, zero-filling anything past the end
// of the store — the read semantics data sieving needs when its file
// window extends past EOF.  Errors other than EOF are propagated.
func ReadFull(b Backend, p []byte, off int64) error {
	n, err := b.ReadAt(p, off)
	if err != nil && err != io.EOF {
		return err
	}
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	return nil
}
