package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/datatype"
)

// memView is a minimal ViewBackend for exercising the fault wrappers:
// data offsets map straight to file offsets (a contiguous "view").
type memView struct {
	*Mem
	regs int
}

func (m *memView) SupportsViews() bool { return true }

func (m *memView) RegisterView(disp int64, ftype *datatype.Type) (ViewHandle, error) {
	m.regs++
	return ViewHandle(m.regs), nil
}

func (m *memView) ViewRead(h ViewHandle, p []byte, d0 int64) error {
	return ReadFull(m.Mem, p, d0)
}

func (m *memView) ViewWrite(h ViewHandle, p []byte, d0 int64) error {
	_, err := m.Mem.WriteAt(p, d0)
	return err
}

func TestChaosViewOpInjection(t *testing.T) {
	inner := &memView{Mem: NewMem()}
	seed := []byte("0123456789abcdef")
	if _, err := inner.WriteAt(seed, 0); err != nil {
		t.Fatal(err)
	}

	// Certain injection: every view op fails with the configured class.
	c := NewChaos(1, inner, ChaosConfig{TransientRead: 1, PermanentWrite: 1})
	vb, ok := AsViewBackend(c)
	if !ok {
		t.Fatal("Chaos over a view backend must expose views")
	}
	h, err := vb.RegisterView(0, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := vb.ViewRead(h, buf, 0); !IsTransient(err) {
		t.Fatalf("ViewRead under TransientRead=1: got %v, want transient", err)
	}
	if err := vb.ViewWrite(h, buf, 0); !IsPermanent(err) {
		t.Fatalf("ViewWrite under PermanentWrite=1: got %v, want permanent", err)
	}
	if st := c.Stats(); st.Transients != 1 || st.Permanents != 1 {
		t.Fatalf("stats = %+v, want 1 transient + 1 permanent", st)
	}

	// No injection: ops pass through byte-exact.
	quiet := NewChaos(1, inner, ChaosConfig{})
	qb, _ := AsViewBackend(quiet)
	if err := qb.ViewRead(h, buf, 4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, seed[4:12]) {
		t.Fatalf("passthrough ViewRead got %q, want %q", buf, seed[4:12])
	}

	// A Resilient wrapper rides out probabilistic transient view faults.
	flaky := NewChaos(7, inner, ChaosConfig{TransientRead: 0.5, TransientWrite: 0.5})
	res := NewResilient(flaky, ResilientConfig{MaxRetries: 64})
	rb, ok := AsViewBackend(res)
	if !ok {
		t.Fatal("Resilient over Chaos over views must expose views")
	}
	for i := 0; i < 10; i++ {
		if err := rb.ViewWrite(h, []byte{byte(i)}, int64(i)); err != nil {
			t.Fatalf("resilient ViewWrite %d: %v", i, err)
		}
		got := make([]byte, 1)
		if err := rb.ViewRead(h, got, int64(i)); err != nil {
			t.Fatalf("resilient ViewRead %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("resilient view round-trip %d: got %d", i, got[0])
		}
	}
}

func TestFaultyViewOpInjection(t *testing.T) {
	inner := &memView{Mem: NewMem()}
	f := NewFaulty(inner)
	vb, ok := AsViewBackend(f)
	if !ok {
		t.Fatal("Faulty over a view backend must expose views")
	}
	h, err := vb.RegisterView(0, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("abcd")
	if err := vb.ViewWrite(h, buf, 0); err != nil {
		t.Fatal(err)
	}

	// Range arms fire on view-data offsets.
	f.FailWriteRange(8, 16)
	if err := vb.ViewWrite(h, buf, 8); !errors.Is(err, ErrInjected) {
		t.Fatalf("ViewWrite in failed range: got %v, want ErrInjected", err)
	}
	if err := vb.ViewWrite(h, buf, 16); err != nil {
		t.Fatalf("ViewWrite outside failed range: %v", err)
	}
	f.FailReads(1)
	if err := vb.ViewRead(h, buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("ViewRead with read arm: got %v, want ErrInjected", err)
	}
	f.Heal()
	if err := vb.ViewRead(h, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("abcd")) {
		t.Fatalf("healed ViewRead got %q", buf)
	}

	// A Faulty over a view-less backend must not claim views.
	if _, ok := AsViewBackend(NewFaulty(NewMem())); ok {
		t.Fatal("Faulty over plain Mem must not expose views")
	}
	if _, ok := AsViewBackend(NewChaos(1, NewMem(), ChaosConfig{})); ok {
		t.Fatal("Chaos over plain Mem must not expose views")
	}
}
