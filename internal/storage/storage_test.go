package storage

import (
	"bytes"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestMemReadWrite(t *testing.T) {
	m := NewMem()
	if n, err := m.WriteAt([]byte("hello"), 3); n != 5 || err != nil {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if m.Size() != 8 {
		t.Fatalf("size = %d, want 8", m.Size())
	}
	buf := make([]byte, 8)
	if n, err := m.ReadAt(buf, 0); n != 8 || err != nil {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, []byte("\x00\x00\x00hello")) {
		t.Fatalf("data = %q", buf)
	}
}

func TestMemReadPastEnd(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := m.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("ReadAt = %d, %v; want 2, EOF", n, err)
	}
	if n, err := m.ReadAt(buf, 100); n != 0 || err != io.EOF {
		t.Fatalf("far ReadAt = %d, %v", n, err)
	}
	if _, err := m.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset must fail")
	}
	if _, err := m.WriteAt(buf, -1); err == nil {
		t.Fatal("negative write offset must fail")
	}
}

func TestMemTruncate(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte("abcdef"), 0)
	if err := m.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Fatalf("size = %d", m.Size())
	}
	// Growing truncate zero-fills, including previously truncated bytes.
	if err := m.Truncate(6); err != nil {
		t.Fatal(err)
	}
	got := m.Bytes()
	if !bytes.Equal(got, []byte("abc\x00\x00\x00")) {
		t.Fatalf("after regrow = %q", got)
	}
	if err := m.Truncate(-1); err == nil {
		t.Fatal("negative truncate must fail")
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestMemConcurrentDisjointWrites(t *testing.T) {
	m := NewMem()
	m.Truncate(64 * 100)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			block := bytes.Repeat([]byte{byte(i)}, 64)
			m.WriteAt(block, int64(i)*64)
		}(i)
	}
	wg.Wait()
	data := m.Bytes()
	for i := 0; i < 100; i++ {
		for j := 0; j < 64; j++ {
			if data[i*64+j] != byte(i) {
				t.Fatalf("block %d corrupted at %d", i, j)
			}
		}
	}
}

func TestFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "backend.dat")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("data"), 10); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 14 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 10); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read %q", buf)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 5 {
		t.Fatalf("size after truncate = %d", f.Size())
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFullZeroFills(t *testing.T) {
	m := NewMem()
	m.WriteAt([]byte{1, 2, 3}, 0)
	buf := []byte{9, 9, 9, 9, 9, 9}
	if err := ReadFull(m, buf, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{2, 3, 0, 0, 0, 0}) {
		t.Fatalf("buf = %v", buf)
	}
}

func TestThrottledBandwidth(t *testing.T) {
	m := NewMem()
	m.Truncate(1 << 20)
	// 10 MB/s read: 1 MiB should take ~100 ms.
	th := NewThrottled(m, 10_000_000, 0, 0)
	buf := make([]byte, 1<<20)
	start := time.Now()
	th.ReadAt(buf, 0)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("1 MiB at 10 MB/s took %v; throttle not applied", d)
	}
	// Writes unlimited: fast.
	start = time.Now()
	th.WriteAt(buf, 0)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("unlimited write took %v", d)
	}
}

func TestThrottledLatencyAccumulates(t *testing.T) {
	m := NewMem()
	m.Truncate(4096)
	th := NewThrottled(m, 0, 0, 100*time.Microsecond)
	start := time.Now()
	buf := make([]byte, 8)
	for i := 0; i < 100; i++ {
		th.ReadAt(buf, 0)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("100 ops at 100us latency took %v; latency not charged", d)
	}
}

func TestInstrumented(t *testing.T) {
	m := NewMem()
	in := NewInstrumented(m)
	in.WriteAt(make([]byte, 100), 0)
	in.ReadAt(make([]byte, 40), 0)
	in.ReadAt(make([]byte, 60), 40)
	s := in.Stats()
	if s.Writes != 1 || s.BytesWritten != 100 || s.Reads != 2 || s.BytesRead != 100 {
		t.Fatalf("stats = %+v", s)
	}
	in.Reset()
	if s := in.Stats(); s != (AccessStats{}) {
		t.Fatalf("after reset = %+v", s)
	}
}

func TestLockTableExcludesOverlaps(t *testing.T) {
	lt := NewLockTable()
	unlock := lt.Lock(0, 100)
	acquired := make(chan struct{})
	go func() {
		u := lt.Lock(50, 150) // overlaps; must wait
		close(acquired)
		u()
	}()
	select {
	case <-acquired:
		t.Fatal("overlapping lock acquired while held")
	case <-time.After(20 * time.Millisecond):
	}
	unlock()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("lock never released to waiter")
	}
}

func TestLockTableAllowsDisjoint(t *testing.T) {
	lt := NewLockTable()
	u1 := lt.Lock(0, 10)
	done := make(chan struct{})
	go func() {
		u2 := lt.Lock(10, 20) // disjoint; must not block
		u2()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint lock blocked")
	}
	u1()
}

func TestLockTableStress(t *testing.T) {
	lt := NewLockTable()
	m := NewMem()
	m.Truncate(1000)
	var wg sync.WaitGroup
	// Concurrent RMW increments on overlapping ranges; with correct
	// locking every byte ends at its exact increment count.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				lo := int64((j * 13) % 900)
				hi := lo + 100
				unlock := lt.Lock(lo, hi)
				buf := make([]byte, hi-lo)
				ReadFull(m, buf, lo)
				for k := range buf {
					buf[k]++
				}
				m.WriteAt(buf, lo)
				unlock()
			}
		}()
	}
	wg.Wait()
	var want [1000]int
	for j := 0; j < 50; j++ {
		lo := (j * 13) % 900
		for k := lo; k < lo+100; k++ {
			want[k] += 8
		}
	}
	data := m.Bytes()
	for i, w := range want {
		if int(data[i]) != w {
			t.Fatalf("byte %d = %d, want %d (lost update)", i, data[i], w)
		}
	}
}
