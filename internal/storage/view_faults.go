package storage

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/trace"
)

// Fault injection on registered-view operations.  The direct sparse
// path of the remote tier moves most of its bytes through ViewRead /
// ViewWrite rather than ReadAt / WriteAt, so the chaos harness must
// inject there too or the dominant traffic class escapes testing.
// View transfers are all-or-nothing on the wire (no partial-result
// contract like short reads or torn writes), so only spikes and
// transient/permanent failures apply; registration is control traffic
// and passes through untouched.

// SupportsViews implements ViewBackend for Chaos.
func (c *Chaos) SupportsViews() bool {
	_, ok := AsViewBackend(c.Backend)
	return ok
}

// RegisterView implements ViewBackend for Chaos: delegation.
func (c *Chaos) RegisterView(disp int64, ftype *datatype.Type) (ViewHandle, error) {
	vb, ok := AsViewBackend(c.Backend)
	if !ok {
		return 0, ErrNoViews
	}
	return vb.RegisterView(disp, ftype)
}

// ViewRead implements ViewBackend for Chaos with fault injection; the
// offset reported on faults is the view-data offset d0.
func (c *Chaos) ViewRead(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(c.Backend)
	if !ok {
		return ErrNoViews
	}
	c.maybeSpike(d0)
	if c.hit(c.cfg.PermanentRead) {
		c.permanents.Add(1)
		c.instant(trace.PhaseChaosViewOp, d0, len(p), "view read fault (permanent)")
		return fmt.Errorf("storage: chaos view read fault at data offset %d: %w", d0, ErrPermanent)
	}
	if c.hit(c.cfg.TransientRead) {
		c.transients.Add(1)
		c.instant(trace.PhaseChaosViewOp, d0, len(p), "view read fault (transient)")
		return fmt.Errorf("storage: chaos view read fault at data offset %d: %w", d0, ErrTransient)
	}
	return vb.ViewRead(h, p, d0)
}

// ViewWrite implements ViewBackend for Chaos with fault injection.
func (c *Chaos) ViewWrite(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(c.Backend)
	if !ok {
		return ErrNoViews
	}
	c.maybeSpike(d0)
	if c.hit(c.cfg.PermanentWrite) {
		c.permanents.Add(1)
		c.instant(trace.PhaseChaosViewOp, d0, len(p), "view write fault (permanent)")
		return fmt.Errorf("storage: chaos view write fault at data offset %d: %w", d0, ErrPermanent)
	}
	if c.hit(c.cfg.TransientWrite) {
		c.transients.Add(1)
		c.instant(trace.PhaseChaosViewOp, d0, len(p), "view write fault (transient)")
		return fmt.Errorf("storage: chaos view write fault at data offset %d: %w", d0, ErrTransient)
	}
	return vb.ViewWrite(h, p, d0)
}

// SupportsViews implements ViewBackend for Faulty.
func (f *Faulty) SupportsViews() bool {
	_, ok := AsViewBackend(f.Backend)
	return ok
}

// RegisterView implements ViewBackend for Faulty: delegation.
func (f *Faulty) RegisterView(disp int64, ftype *datatype.Type) (ViewHandle, error) {
	vb, ok := AsViewBackend(f.Backend)
	if !ok {
		return 0, ErrNoViews
	}
	return vb.RegisterView(disp, ftype)
}

// ViewRead implements ViewBackend for Faulty.  The read arm trips on
// view-data offsets: FailReadRange targets data bytes of the view, not
// absolute file offsets (a view access has no single file offset).
func (f *Faulty) ViewRead(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(f.Backend)
	if !ok {
		return ErrNoViews
	}
	if f.reads.trip(d0, int64(len(p))) {
		return ErrInjected
	}
	return vb.ViewRead(h, p, d0)
}

// ViewWrite implements ViewBackend for Faulty, tripping like ViewRead.
func (f *Faulty) ViewWrite(h ViewHandle, p []byte, d0 int64) error {
	vb, ok := AsViewBackend(f.Backend)
	if !ok {
		return ErrNoViews
	}
	if f.writes.trip(d0, int64(len(p))) {
		return ErrInjected
	}
	return vb.ViewWrite(h, p, d0)
}
