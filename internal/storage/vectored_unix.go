//go:build linux

package storage

import (
	"syscall"
	"unsafe"
)

// File's native vectored path: preadv(2)/pwritev(2).  Segments that are
// adjacent in the file (next.Off == prev end) share one syscall — the
// kernel walks the iovec array at a single file position — and each
// discontiguity starts a new batch.  The raw syscalls are used directly
// (offset split into the lo/hi registers the kernel expects) so no
// dependency outside the standard library is needed.

// iovMax bounds iovecs per syscall (IOV_MAX is 1024 on Linux).
const iovMax = 1024

// ReadAtv implements Vectored for File with ReadFull semantics:
// segments (or suffixes of them) past EOF read as zeros.
func (fb *File) ReadAtv(segs []Segment) error {
	if err := fb.takeSizeErr(); err != nil {
		return err
	}
	return fb.eachContigBatch(segs, func(off int64, iovs []syscall.Iovec, bufs []Segment) error {
		want := iovsLen(iovs)
		var got int64
		for got < want {
			n, err := preadv(fb.f.Fd(), advanceIovs(iovs, got), off+got)
			if err != nil {
				return &fileOpError{op: "preadv", err: err}
			}
			if n == 0 {
				break // EOF: zero-fill the rest
			}
			got += n
		}
		zeroTail(bufs, got)
		return nil
	})
}

// WriteAtv implements Vectored for File.
func (fb *File) WriteAtv(segs []Segment) error {
	return fb.eachContigBatch(segs, func(off int64, iovs []syscall.Iovec, _ []Segment) error {
		want := iovsLen(iovs)
		var done int64
		for done < want {
			n, err := pwritev(fb.f.Fd(), advanceIovs(iovs, done), off+done)
			if err != nil {
				return &fileOpError{op: "pwritev", err: err}
			}
			if n == 0 {
				return &fileOpError{op: "pwritev", err: syscall.EIO}
			}
			done += n
		}
		return nil
	})
}

// eachContigBatch groups file-contiguous runs of segments (capped at
// iovMax iovecs) and invokes op once per run with the run's start
// offset, its iovec array, and the segments it covers.  Zero-length
// segments are skipped.  The iovec scratch is stack-allocated for small
// batches.
func (fb *File) eachContigBatch(segs []Segment, op func(off int64, iovs []syscall.Iovec, bufs []Segment) error) error {
	var iovs []syscall.Iovec
	i := 0
	for i < len(segs) {
		if len(segs[i].Buf) == 0 {
			i++
			continue
		}
		start := i
		off := segs[i].Off
		end := off + int64(len(segs[i].Buf))
		iovs = append(iovs[:0], iovecOf(segs[i].Buf))
		i++
		for i < len(segs) && len(iovs) < iovMax && segs[i].Off == end && len(segs[i].Buf) > 0 {
			iovs = append(iovs, iovecOf(segs[i].Buf))
			end += int64(len(segs[i].Buf))
			i++
		}
		if err := op(off, iovs, segs[start:i]); err != nil {
			return err
		}
	}
	return nil
}

func iovecOf(b []byte) syscall.Iovec {
	iv := syscall.Iovec{Base: &b[0]}
	iv.SetLen(len(b))
	return iv
}

func iovsLen(iovs []syscall.Iovec) int64 {
	var n int64
	for _, iv := range iovs {
		n += int64(iv.Len)
	}
	return n
}

// advanceIovs returns the iovec suffix starting skip bytes in,
// rebasing a partially consumed first entry.  The returned slice may
// alias a modified copy of the boundary entry, so it is rebuilt per
// call into a fresh backing only when a partial entry exists.
func advanceIovs(iovs []syscall.Iovec, skip int64) []syscall.Iovec {
	if skip == 0 {
		return iovs
	}
	for i := range iovs {
		l := int64(iovs[i].Len)
		if skip < l {
			out := make([]syscall.Iovec, len(iovs)-i)
			copy(out, iovs[i:])
			out[0].Base = (*byte)(unsafe.Add(unsafe.Pointer(out[0].Base), skip))
			out[0].SetLen(int(l - skip))
			return out
		}
		skip -= l
	}
	return nil
}

// zeroTail zeroes everything past the first got bytes of the batch —
// the ReadFull past-EOF contract, applied across segment boundaries.
func zeroTail(bufs []Segment, got int64) {
	for _, s := range bufs {
		b := s.Buf
		if got >= int64(len(b)) {
			got -= int64(len(b))
			continue
		}
		tail := b[got:]
		for i := range tail {
			tail[i] = 0
		}
		got = 0
	}
}

// fileOpError wraps a raw vectored-syscall failure.
type fileOpError struct {
	op  string
	err error
}

func (e *fileOpError) Error() string { return "storage: " + e.op + ": " + e.err.Error() }
func (e *fileOpError) Unwrap() error { return e.err }

func preadv(fd uintptr, iovs []syscall.Iovec, off int64) (int64, error) {
	if len(iovs) == 0 {
		return 0, nil
	}
	for {
		n, _, errno := syscall.Syscall6(syscall.SYS_PREADV, fd,
			uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)),
			uintptr(off), uintptr(uint64(off)>>32), 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, errno
		}
		return int64(n), nil
	}
}

func pwritev(fd uintptr, iovs []syscall.Iovec, off int64) (int64, error) {
	if len(iovs) == 0 {
		return 0, nil
	}
	for {
		n, _, errno := syscall.Syscall6(syscall.SYS_PWRITEV, fd,
			uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)),
			uintptr(off), uintptr(uint64(off)>>32), 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return 0, errno
		}
		return int64(n), nil
	}
}
