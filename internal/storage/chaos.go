package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ChaosConfig sets the per-operation injection probabilities of a Chaos
// backend.  All probabilities are independent and evaluated in the order
// latency spike → permanent → transient → short read / torn write; a
// probability ≤ 0 disables that fault class.
type ChaosConfig struct {
	// TransientRead / TransientWrite inject a recoverable failure: the
	// operation does nothing and returns an error wrapping ErrTransient.
	TransientRead, TransientWrite float64
	// PermanentRead / PermanentWrite inject a non-recoverable failure
	// wrapping ErrPermanent.
	PermanentRead, PermanentWrite float64
	// ShortRead delivers only a prefix of the requested bytes, with a
	// transient error reporting the truncation.
	ShortRead float64
	// TornWrite persists only a prefix of the buffer, with a transient
	// error — the classic partially-applied write of a crashed server.
	TornWrite float64
	// LatencySpike stalls the operation for a random duration up to
	// MaxLatency (default 1ms) before it proceeds.
	LatencySpike float64
	MaxLatency   time.Duration
}

// TransientOnly returns a configuration injecting only recoverable
// faults — transient errors, short reads, torn writes, latency spikes —
// so that a Resilient wrapper rides out every injection.
func TransientOnly() ChaosConfig {
	return ChaosConfig{
		TransientRead:  0.08,
		TransientWrite: 0.08,
		ShortRead:      0.04,
		TornWrite:      0.04,
		LatencySpike:   0.02,
		MaxLatency:     200 * time.Microsecond,
	}
}

// ChaosStats counts the faults a Chaos backend injected.
type ChaosStats struct {
	Transients, Permanents int64
	ShortReads, TornWrites int64
	LatencySpikes          int64
}

// Total is the number of error-producing injections (spikes excluded).
func (s ChaosStats) Total() int64 {
	return s.Transients + s.Permanents + s.ShortReads + s.TornWrites
}

// Chaos wraps a Backend with seeded probabilistic fault injection,
// generalizing the count-based Faulty: every failure sequence is fully
// reproducible from the seed, which is what lets the chaos harness and
// CI replay an exact fault schedule.  Safe for concurrent use; the
// draw order (and therefore the schedule) depends on operation
// interleaving, so reproducibility is per-(seed, interleaving).
type Chaos struct {
	Backend
	cfg ChaosConfig
	tr  *trace.Tracer // optional fault-instant recording (see SetTracer)

	mu  sync.Mutex
	rng *rand.Rand

	sleep func(time.Duration) // test seam

	transients, permanents atomic.Int64
	shortReads, tornWrites atomic.Int64
	latencySpikes          atomic.Int64
}

// NewChaos wraps b with fault injection drawn from a PRNG seeded with
// seed.
func NewChaos(seed int64, b Backend, cfg ChaosConfig) *Chaos {
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = time.Millisecond
	}
	return &Chaos{
		Backend: b,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		sleep:   time.Sleep,
	}
}

// Stats returns a snapshot of the injection counters.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Transients:    c.transients.Load(),
		Permanents:    c.permanents.Load(),
		ShortReads:    c.shortReads.Load(),
		TornWrites:    c.tornWrites.Load(),
		LatencySpikes: c.latencySpikes.Load(),
	}
}

// hit draws one Bernoulli trial with probability p.
func (c *Chaos) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	v := c.rng.Float64()
	c.mu.Unlock()
	return v < p
}

// cut draws a strict prefix length in [1, n).
func (c *Chaos) cut(n int) int {
	c.mu.Lock()
	v := 1 + c.rng.Intn(n-1)
	c.mu.Unlock()
	return v
}

func (c *Chaos) maybeSpike(off int64) {
	if !c.hit(c.cfg.LatencySpike) {
		return
	}
	c.latencySpikes.Add(1)
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(c.cfg.MaxLatency)))
	c.mu.Unlock()
	c.instant(trace.PhaseChaosSpike, off, 0, "stalled %v", d)
	c.sleep(d)
}

// ReadAt implements io.ReaderAt with fault injection.
func (c *Chaos) ReadAt(p []byte, off int64) (int, error) {
	c.maybeSpike(off)
	if c.hit(c.cfg.PermanentRead) {
		c.permanents.Add(1)
		c.instant(trace.PhaseChaosPermanent, off, len(p), "read fault")
		return 0, fmt.Errorf("storage: chaos read fault at offset %d: %w", off, ErrPermanent)
	}
	if c.hit(c.cfg.TransientRead) {
		c.transients.Add(1)
		c.instant(trace.PhaseChaosTransient, off, len(p), "read fault")
		return 0, fmt.Errorf("storage: chaos read fault at offset %d: %w", off, ErrTransient)
	}
	if len(p) > 1 && c.hit(c.cfg.ShortRead) {
		c.shortReads.Add(1)
		n, err := c.Backend.ReadAt(p[:c.cut(len(p))], off)
		if err != nil {
			return n, err
		}
		c.instant(trace.PhaseChaosShortRead, off, n, "%d of %d bytes", n, len(p))
		return n, fmt.Errorf("storage: chaos short read (%d of %d bytes) at offset %d: %w",
			n, len(p), off, ErrTransient)
	}
	return c.Backend.ReadAt(p, off)
}

// WriteAt implements io.WriterAt with fault injection.
func (c *Chaos) WriteAt(p []byte, off int64) (int, error) {
	c.maybeSpike(off)
	if c.hit(c.cfg.PermanentWrite) {
		c.permanents.Add(1)
		c.instant(trace.PhaseChaosPermanent, off, len(p), "write fault")
		return 0, fmt.Errorf("storage: chaos write fault at offset %d: %w", off, ErrPermanent)
	}
	if c.hit(c.cfg.TransientWrite) {
		c.transients.Add(1)
		c.instant(trace.PhaseChaosTransient, off, len(p), "write fault")
		return 0, fmt.Errorf("storage: chaos write fault at offset %d: %w", off, ErrTransient)
	}
	if len(p) > 1 && c.hit(c.cfg.TornWrite) {
		c.tornWrites.Add(1)
		n, err := c.Backend.WriteAt(p[:c.cut(len(p))], off)
		if err != nil {
			return n, err
		}
		c.instant(trace.PhaseChaosTornWrite, off, n, "%d of %d bytes", n, len(p))
		return n, fmt.Errorf("storage: chaos torn write (%d of %d bytes) at offset %d: %w",
			n, len(p), off, ErrTransient)
	}
	return c.Backend.WriteAt(p, off)
}
