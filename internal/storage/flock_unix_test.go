//go:build unix

package storage

import (
	"errors"
	"path/filepath"
	"testing"
)

// flock conflicts apply between open file descriptions, so a second
// open in the same process exercises the same kernel check a second
// rank process would hit.

func TestOpenFileExclusive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer fb.Close()

	if _, err := OpenFile(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second exclusive open: err = %v, want ErrLocked", err)
	}
	if _, err := OpenFileShared(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("shared open against exclusive holder: err = %v, want ErrLocked", err)
	}
}

func TestOpenFileSharedCoexists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	a, err := OpenFileShared(path)
	if err != nil {
		t.Fatalf("first shared open: %v", err)
	}
	defer a.Close()
	b, err := OpenFileShared(path)
	if err != nil {
		t.Fatalf("second shared open: %v", err)
	}
	defer b.Close()

	if _, err := OpenFile(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("exclusive open against shared holders: err = %v, want ErrLocked", err)
	}
}

func TestCloseReleasesLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if err := fb.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	fb2.Close()
}
