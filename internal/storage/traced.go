package storage

import (
	"fmt"

	"repro/internal/trace"
)

// Traced wraps a Backend so every operation records a span on a
// tracer — normally the collector's shared storage-backend track, which
// is where cross-rank contention on the common file becomes visible.
// The Window field of each span carries the file offset of the
// operation.  A nil tracer makes the wrapper transparent.
type Traced struct {
	Backend
	tr *trace.Tracer
}

// NewTraced wraps b; spans are recorded on tr.
func NewTraced(b Backend, tr *trace.Tracer) *Traced {
	return &Traced{Backend: b, tr: tr}
}

// ReadAt implements io.ReaderAt with span recording.
func (t *Traced) ReadAt(p []byte, off int64) (int, error) {
	sp := t.tr.Begin(trace.PhaseStorageRead, off, int64(len(p)))
	n, err := t.Backend.ReadAt(p, off)
	sp.EndBytes(int64(n))
	return n, err
}

// WriteAt implements io.WriterAt with span recording.
func (t *Traced) WriteAt(p []byte, off int64) (int, error) {
	sp := t.tr.Begin(trace.PhaseStorageWrite, off, int64(len(p)))
	n, err := t.Backend.WriteAt(p, off)
	sp.EndBytes(int64(n))
	return n, err
}

// Truncate implements Backend with span recording.
func (t *Traced) Truncate(n int64) error {
	sp := t.tr.Begin(trace.PhaseStorageTruncate, n, 0)
	defer sp.End()
	return t.Backend.Truncate(n)
}

// Sync implements Backend with span recording.
func (t *Traced) Sync() error {
	sp := t.tr.Begin(trace.PhaseStorageSync, trace.NoWindow, 0)
	defer sp.End()
	return t.Backend.Sync()
}

// SetTracer arms a Chaos backend to emit an instant event for every
// injected fault, tagging the trace timeline with the exact offset and
// fault class.  Must be called before the backend is shared across
// goroutines.
func (c *Chaos) SetTracer(tr *trace.Tracer) { c.tr = tr }

// instant records a fault injection on the trace, skipping the detail
// formatting entirely when tracing is off.
func (c *Chaos) instant(ph trace.Phase, off int64, n int, format string, args ...any) {
	if !c.tr.Enabled() {
		return
	}
	c.tr.Instant(ph, off, int64(n), fmt.Sprintf(format, args...))
}

// SetTracer arms a Resilient backend to emit an instant event for every
// retry and every abandoned operation.  Must be called before the
// backend is shared across goroutines.
func (r *Resilient) SetTracer(tr *trace.Tracer) { r.tr = tr }
