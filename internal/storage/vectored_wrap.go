package storage

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Vectored passthrough for the wrapper backends.  Each wrapper treats
// one ReadAtv/WriteAtv batch as one operation — one retry unit, one
// fault draw, one latency charge, one counted access, one span — which
// is exactly the cost model the vectored path exists to change: n
// contiguous runs cost one operation, not n.

// ReadAtv implements Vectored for Resilient: the whole batch is the
// retry unit (Backend batches are idempotent, so a reissue repairs any
// partial delivery).
func (r *Resilient) ReadAtv(segs []Segment) error {
	lo, _ := segsSpan(segs)
	return r.do(lo, func() error { return ReadAtv(r.Backend, segs) })
}

// WriteAtv implements Vectored for Resilient.
func (r *Resilient) WriteAtv(segs []Segment) error {
	lo, _ := segsSpan(segs)
	return r.do(lo, func() error { return WriteAtv(r.Backend, segs) })
}

// ReadAtv implements Vectored for Traced: one span covering the batch.
func (t *Traced) ReadAtv(segs []Segment) error {
	lo, _ := segsSpan(segs)
	sp := t.tr.Begin(trace.PhaseStorageRead, lo, segsLen(segs))
	err := ReadAtv(t.Backend, segs)
	sp.EndBytes(segsLen(segs))
	return err
}

// WriteAtv implements Vectored for Traced.
func (t *Traced) WriteAtv(segs []Segment) error {
	lo, _ := segsSpan(segs)
	sp := t.tr.Begin(trace.PhaseStorageWrite, lo, segsLen(segs))
	err := WriteAtv(t.Backend, segs)
	sp.EndBytes(segsLen(segs))
	return err
}

// ReadAtv implements Vectored for Throttled: the batch pays one Latency
// plus its total bytes over the bandwidth — the cost model under which
// batching n runs into one call is the win.
func (t *Throttled) ReadAtv(segs []Segment) error {
	t.charge(int(segsLen(segs)), t.ReadBW)
	return ReadAtv(t.Backend, segs)
}

// WriteAtv implements Vectored for Throttled.
func (t *Throttled) WriteAtv(segs []Segment) error {
	t.charge(int(segsLen(segs)), t.WriteBW)
	return WriteAtv(t.Backend, segs)
}

// ReadAtv implements Vectored for Instrumented: the batch counts as one
// read — Reads/Writes approximate syscalls, and a preadv is one.
func (in *Instrumented) ReadAtv(segs []Segment) error {
	t0 := time.Now()
	err := ReadAtv(in.Backend, segs)
	in.readNs.Add(time.Since(t0).Nanoseconds())
	in.reads.Add(1)
	if err == nil {
		in.bytesRead.Add(segsLen(segs))
	}
	return err
}

// WriteAtv implements Vectored for Instrumented.
func (in *Instrumented) WriteAtv(segs []Segment) error {
	t0 := time.Now()
	err := WriteAtv(in.Backend, segs)
	in.writeNs.Add(time.Since(t0).Nanoseconds())
	in.writes.Add(1)
	if err == nil {
		in.bytesWritten.Add(segsLen(segs))
	}
	return err
}

// ReadAtv implements Vectored for Faulty: the batch trips a read fault
// when its file span overlaps an armed range, or as one counted
// operation.
func (f *Faulty) ReadAtv(segs []Segment) error {
	lo, hi := segsSpan(segs)
	if f.reads.trip(lo, hi-lo) {
		return ErrInjected
	}
	return ReadAtv(f.Backend, segs)
}

// WriteAtv implements Vectored for Faulty.
func (f *Faulty) WriteAtv(segs []Segment) error {
	lo, hi := segsSpan(segs)
	if f.writes.trip(lo, hi-lo) {
		return ErrInjected
	}
	return WriteAtv(f.Backend, segs)
}

// ReadAtv implements Vectored for Chaos: one fault draw per batch, in
// the same class order as ReadAt.  A short read delivers a strict
// prefix of the batch and reports a transient error.
func (c *Chaos) ReadAtv(segs []Segment) error {
	lo, _ := segsSpan(segs)
	total := segsLen(segs)
	c.maybeSpike(lo)
	if c.hit(c.cfg.PermanentRead) {
		c.permanents.Add(1)
		c.instant(trace.PhaseChaosPermanent, lo, int(total), "vectored read fault")
		return fmt.Errorf("storage: chaos read fault at offset %d: %w", lo, ErrPermanent)
	}
	if c.hit(c.cfg.TransientRead) {
		c.transients.Add(1)
		c.instant(trace.PhaseChaosTransient, lo, int(total), "vectored read fault")
		return fmt.Errorf("storage: chaos read fault at offset %d: %w", lo, ErrTransient)
	}
	if total > 1 && c.hit(c.cfg.ShortRead) {
		c.shortReads.Add(1)
		n := int64(c.cut(int(total)))
		if err := ReadAtv(c.Backend, clipSegs(segs, n)); err != nil {
			return err
		}
		c.instant(trace.PhaseChaosShortRead, lo, int(n), "%d of %d bytes", n, total)
		return fmt.Errorf("storage: chaos short read (%d of %d bytes) at offset %d: %w",
			n, total, lo, ErrTransient)
	}
	return ReadAtv(c.Backend, segs)
}

// WriteAtv implements Vectored for Chaos.  A torn write persists a
// strict prefix of the batch and reports a transient error.
func (c *Chaos) WriteAtv(segs []Segment) error {
	lo, _ := segsSpan(segs)
	total := segsLen(segs)
	c.maybeSpike(lo)
	if c.hit(c.cfg.PermanentWrite) {
		c.permanents.Add(1)
		c.instant(trace.PhaseChaosPermanent, lo, int(total), "vectored write fault")
		return fmt.Errorf("storage: chaos write fault at offset %d: %w", lo, ErrPermanent)
	}
	if c.hit(c.cfg.TransientWrite) {
		c.transients.Add(1)
		c.instant(trace.PhaseChaosTransient, lo, int(total), "vectored write fault")
		return fmt.Errorf("storage: chaos write fault at offset %d: %w", lo, ErrTransient)
	}
	if total > 1 && c.hit(c.cfg.TornWrite) {
		c.tornWrites.Add(1)
		n := int64(c.cut(int(total)))
		if err := WriteAtv(c.Backend, clipSegs(segs, n)); err != nil {
			return err
		}
		c.instant(trace.PhaseChaosTornWrite, lo, int(n), "%d of %d bytes", n, total)
		return fmt.Errorf("storage: chaos torn write (%d of %d bytes) at offset %d: %w",
			n, total, lo, ErrTransient)
	}
	return WriteAtv(c.Backend, segs)
}

// clipSegs returns a batch covering exactly the first n bytes of segs
// (n < total), splitting the boundary segment.
func clipSegs(segs []Segment, n int64) []Segment {
	out := make([]Segment, 0, len(segs))
	for _, s := range segs {
		l := int64(len(s.Buf))
		if n <= 0 {
			break
		}
		if l > n {
			out = append(out, Segment{Off: s.Off, Buf: s.Buf[:n]})
			break
		}
		out = append(out, s)
		n -= l
	}
	return out
}
