package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ResilientConfig tunes the retry policy of a Resilient backend.  The
// zero value selects defaults suitable for the in-process backends.
type ResilientConfig struct {
	// MaxRetries is the number of reissues after the first attempt
	// (default 8).
	MaxRetries int
	// BaseBackoff is the delay before the first retry (default 50µs);
	// each subsequent retry doubles it up to MaxBackoff (default 5ms).
	// Half of every delay is uniformly jittered to decorrelate the
	// retries of concurrent window I/O.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OpDeadline bounds the total time budget of one operation including
	// its retries; 0 means unbounded.  An operation gives up early when
	// the next backoff would overrun the deadline.
	OpDeadline time.Duration
	// Seed seeds the jitter source, making retry schedules reproducible
	// (default 1).
	Seed int64
}

func (c *ResilientConfig) fill() {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Microsecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Resilient wraps a Backend with bounded retry of transient failures:
// exponential backoff with jitter between attempts, an optional per-op
// deadline, and immediate pass-through of permanent errors.  Reads and
// writes are reissued whole, which is sound because Backend operations
// are idempotent (positioned reads, positioned full-buffer writes), so a
// short read or torn write that was reported as a transient error is
// simply repaired by the successful reissue.  Safe for concurrent use
// when the wrapped backend is.
type Resilient struct {
	Backend
	cfg ResilientConfig
	tr  *trace.Tracer // optional retry-instant recording (see SetTracer)

	mu  sync.Mutex
	rng *rand.Rand

	sleep func(time.Duration) // test seam

	retries   atomic.Int64
	exhausted atomic.Int64
}

// NewResilient wraps b with the given retry policy.
func NewResilient(b Backend, cfg ResilientConfig) *Resilient {
	cfg.fill()
	return &Resilient{
		Backend: b,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		sleep:   time.Sleep,
	}
}

// RetryStats reports the retries performed and the operations abandoned
// (retry budget or deadline exhausted) since creation.
func (r *Resilient) RetryStats() (retries, exhausted int64) {
	return r.retries.Load(), r.exhausted.Load()
}

func (r *Resilient) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)))
	r.mu.Unlock()
	return j
}

// instant records a retry event on the trace, skipping the detail
// formatting entirely when tracing is off.
func (r *Resilient) instant(ph trace.Phase, off int64, format string, args ...any) {
	if !r.tr.Enabled() {
		return
	}
	r.tr.Instant(ph, off, 0, fmt.Sprintf(format, args...))
}

// do runs op, retrying transient failures per the policy.  off is the
// file offset of the operation (trace.NoWindow for whole-file ops),
// used only to annotate retry instants.
func (r *Resilient) do(off int64, op func() error) error {
	var deadline time.Time
	if r.cfg.OpDeadline > 0 {
		deadline = time.Now().Add(r.cfg.OpDeadline)
	}
	backoff := r.cfg.BaseBackoff
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= r.cfg.MaxRetries {
			r.exhausted.Add(1)
			r.instant(trace.PhaseRetryExhausted, off, "giving up after %d attempts: %v", attempt+1, err)
			return fmt.Errorf("storage: giving up after %d attempts: %w", attempt+1, err)
		}
		delay := backoff/2 + r.jitter(backoff/2)
		if backoff < r.cfg.MaxBackoff {
			backoff *= 2
			if backoff > r.cfg.MaxBackoff {
				backoff = r.cfg.MaxBackoff
			}
		}
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			r.exhausted.Add(1)
			r.instant(trace.PhaseRetryExhausted, off, "deadline %v exceeded after %d attempts: %v",
				r.cfg.OpDeadline, attempt+1, err)
			return fmt.Errorf("storage: deadline %v exceeded after %d attempts: %w",
				r.cfg.OpDeadline, attempt+1, err)
		}
		r.retries.Add(1)
		r.instant(trace.PhaseRetry, off, "attempt %d after %v: %v", attempt+1, delay, err)
		r.sleep(delay)
	}
}

// ReadAt implements io.ReaderAt with transient-failure retry.
func (r *Resilient) ReadAt(p []byte, off int64) (n int, err error) {
	err = r.do(off, func() error {
		var e error
		n, e = r.Backend.ReadAt(p, off)
		return e
	})
	return n, err
}

// WriteAt implements io.WriterAt with transient-failure retry.
func (r *Resilient) WriteAt(p []byte, off int64) (n int, err error) {
	err = r.do(off, func() error {
		var e error
		n, e = r.Backend.WriteAt(p, off)
		return e
	})
	return n, err
}

// Truncate implements Backend with transient-failure retry.
func (r *Resilient) Truncate(size int64) error {
	return r.do(size, func() error { return r.Backend.Truncate(size) })
}

// Sync implements Backend with transient-failure retry.
func (r *Resilient) Sync() error {
	return r.do(trace.NoWindow, func() error { return r.Backend.Sync() })
}
