package storage

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzChaosBackend drives a Resilient-wrapped Chaos backend with
// arbitrary seeds, offsets, and payloads, checking the invariant that
// makes retrying sound: any operation that reports success left the
// base store exactly as a fault-free operation would have (torn writes
// and short reads may only ever surface as errors, never as silent
// corruption).
func FuzzChaosBackend(f *testing.F) {
	f.Add(int64(1), uint16(0), []byte("hello"))
	f.Add(int64(42), uint16(512), bytes.Repeat([]byte{0xEE}, 300))
	f.Add(int64(-7), uint16(65535), []byte{0})
	f.Fuzz(func(t *testing.T, seed int64, off16 uint16, data []byte) {
		if len(data) == 0 {
			return
		}
		off := int64(off16) % 4096
		base := NewMem()
		c := NewChaos(seed, base, ChaosConfig{
			TransientRead:  0.3,
			TransientWrite: 0.3,
			ShortRead:      0.2,
			TornWrite:      0.2,
			LatencySpike:   0.1,
		})
		c.sleep = func(time.Duration) {}
		r := NewResilient(c, ResilientConfig{MaxRetries: 64, Seed: seed})
		r.sleep = func(time.Duration) {}

		n, err := r.WriteAt(data, off)
		if err == nil {
			if n != len(data) {
				t.Fatalf("successful write reported %d of %d bytes", n, len(data))
			}
			got := base.Bytes()
			if int64(len(got)) < off+int64(len(data)) {
				t.Fatalf("base size %d after successful write ending at %d", len(got), off+int64(len(data)))
			}
			if !bytes.Equal(got[off:off+int64(len(data))], data) {
				t.Fatal("successful write did not persist its exact payload")
			}
		}

		p := make([]byte, len(data))
		n, err = r.ReadAt(p, off)
		if err == nil || err == io.EOF {
			want := base.Bytes()
			for i := 0; i < n; i++ {
				if p[i] != want[off+int64(i)] {
					t.Fatalf("successful read byte %d = %#x, base has %#x", i, p[i], want[off+int64(i)])
				}
			}
		} else if !IsTransient(err) && !IsPermanent(err) {
			t.Fatalf("read error %v has no classification", err)
		}
	})
}
