package storage

import "fmt"

// StripeGeom is the round-robin (RAID-0) striping layout shared by the
// in-process Striped backend and the networked I/O-server tier: global
// byte g lives on stripe (g/Unit) mod Count, at local offset
// (g/Unit)/Count*Unit + g%Unit within that stripe's backing store.
// Keeping the mapping in one place guarantees that a client-side
// splitter and a server-side evaluator agree on which bytes belong to
// which stripe — the invariant every remote scatter/gather depends on.
type StripeGeom struct {
	Unit  int64 // stripe unit in bytes
	Count int   // number of stripes
}

// Validate reports whether the geometry is usable.
func (g StripeGeom) Validate() error {
	if g.Unit <= 0 {
		return fmt.Errorf("storage: stripe unit %d", g.Unit)
	}
	if g.Count <= 0 {
		return fmt.Errorf("storage: stripe count %d", g.Count)
	}
	return nil
}

// Locate maps a global offset to (stripe index, local offset within
// that stripe's backing store).
func (g StripeGeom) Locate(off int64) (int, int64) {
	unitIdx := off / g.Unit
	within := off - unitIdx*g.Unit
	stripe := int(unitIdx % int64(g.Count))
	row := unitIdx / int64(g.Count)
	return stripe, row*g.Unit + within
}

// Each splits the global range [off, off+n) into per-stripe contiguous
// pieces, in ascending global order, and calls fn for each with the
// owning stripe index, the piece's local offset, and the piece's
// sub-range [lo, hi) relative to off.  It stops at the first error.  A
// zero-length range invokes fn zero times.
func (g StripeGeom) Each(off, n int64, fn func(stripe int, localOff, lo, hi int64) error) error {
	for pos := off; pos < off+n; {
		stripe, local := g.Locate(pos)
		end := (pos/g.Unit + 1) * g.Unit
		if end > off+n {
			end = off + n
		}
		if err := fn(stripe, local, pos-off, end-off); err != nil {
			return err
		}
		pos = end
	}
	return nil
}

// LocalLen reports how many bytes of the global prefix [0, n) land on
// stripe i — stripe i's local length when the global length is n.
func (g StripeGeom) LocalLen(n int64, i int) int64 {
	if n <= 0 {
		return 0
	}
	last := n - 1
	row := last / (g.Unit * int64(g.Count))
	rem := last - row*g.Unit*int64(g.Count) // offset within the last row
	local := row * g.Unit
	stripeStart := int64(i) * g.Unit
	switch {
	case rem >= stripeStart+g.Unit:
		local += g.Unit
	case rem >= stripeStart:
		local += rem - stripeStart + 1
	}
	return local
}

// SplitSegs regroups a global segment batch into one local batch per
// stripe of g, splitting segments at stripe-unit boundaries.  The
// returned slice is indexed by stripe; stripes the batch never touches
// hold nil.  Both the in-process Striped backend and the networked
// I/O-server client use this to turn one global vectored access into
// per-member vectored accesses.
func SplitSegs(g StripeGeom, segs []Segment) ([][]Segment, error) {
	bySrv := make([][]Segment, g.Count)
	for _, seg := range segs {
		if seg.Off < 0 {
			return nil, fmt.Errorf("storage: negative offset %d", seg.Off)
		}
		err := g.Each(seg.Off, int64(len(seg.Buf)), func(stripe int, localOff, lo, hi int64) error {
			bySrv[stripe] = append(bySrv[stripe], Segment{Off: localOff, Buf: seg.Buf[lo:hi]})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return bySrv, nil
}

// GlobalLen reports the smallest global length whose prefix [0, n)
// contains all localLen bytes of stripe i — the inverse of LocalLen,
// used to derive a striped store's logical size from its members'.
func (g StripeGeom) GlobalLen(localLen int64, i int) int64 {
	if localLen <= 0 {
		return 0
	}
	last := localLen - 1
	row := last / g.Unit
	within := last - row*g.Unit
	return row*g.Unit*int64(g.Count) + int64(i)*g.Unit + within + 1
}
