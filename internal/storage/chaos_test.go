package storage

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"
)

// chaosTrace runs a fixed op sequence against a fresh seeded Chaos over
// a pre-filled Mem and records each outcome, for determinism checks.
func chaosTrace(seed int64) ([]string, ChaosStats) {
	base := NewMem()
	if _, err := base.WriteAt(bytes.Repeat([]byte{0xAB}, 4096), 0); err != nil {
		panic(err)
	}
	c := NewChaos(seed, base, ChaosConfig{
		TransientRead:  0.2,
		TransientWrite: 0.2,
		PermanentRead:  0.05,
		PermanentWrite: 0.05,
		ShortRead:      0.1,
		TornWrite:      0.1,
	})
	c.sleep = func(time.Duration) {}
	var trace []string
	buf := make([]byte, 64)
	for i := 0; i < 200; i++ {
		var n int
		var err error
		if i%2 == 0 {
			n, err = c.ReadAt(buf, int64(i%32)*64)
		} else {
			n, err = c.WriteAt(buf, int64(i%32)*64)
		}
		trace = append(trace, fmt.Sprintf("%d:%v", n, err))
	}
	return trace, c.Stats()
}

// TestChaosDeterministic: the fault schedule is a pure function of the
// seed for a fixed operation sequence.
func TestChaosDeterministic(t *testing.T) {
	t1, s1 := chaosTrace(99)
	t2, s2 := chaosTrace(99)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same seed diverged at op %d: %q vs %q", i, t1[i], t2[i])
		}
	}
	if s1.Total() == 0 {
		t.Error("200 ops at these probabilities injected nothing; schedule is not exercising faults")
	}
	t3, _ := chaosTrace(100)
	same := 0
	for i := range t1 {
		if t1[i] == t3[i] {
			same++
		}
	}
	if same == len(t1) {
		t.Error("different seeds produced identical traces")
	}
}

// TestChaosClassification: injected errors carry the right transient/
// permanent class for the Resilient policy to act on.
func TestChaosClassification(t *testing.T) {
	base := NewMem()
	if _, err := base.WriteAt(make([]byte, 128), 0); err != nil {
		t.Fatal(err)
	}
	perm := NewChaos(1, base, ChaosConfig{PermanentRead: 1, PermanentWrite: 1})
	if _, err := perm.ReadAt(make([]byte, 8), 0); !IsPermanent(err) || IsTransient(err) {
		t.Errorf("permanent read fault classified wrong: %v", err)
	}
	if _, err := perm.WriteAt(make([]byte, 8), 0); !IsPermanent(err) {
		t.Errorf("permanent write fault classified wrong: %v", err)
	}
	trans := NewChaos(1, base, ChaosConfig{TransientRead: 1, TransientWrite: 1})
	if _, err := trans.ReadAt(make([]byte, 8), 0); !IsTransient(err) {
		t.Errorf("transient read fault classified wrong: %v", err)
	}
	if _, err := trans.WriteAt(make([]byte, 8), 0); !IsTransient(err) {
		t.Errorf("transient write fault classified wrong: %v", err)
	}
}

// TestChaosShortRead: a short read returns a true prefix of the data
// with a transient error naming the truncation.
func TestChaosShortRead(t *testing.T) {
	base := NewMem()
	want := []byte("abcdefghijklmnop")
	if _, err := base.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	c := NewChaos(5, base, ChaosConfig{ShortRead: 1})
	p := make([]byte, len(want))
	n, err := c.ReadAt(p, 0)
	if !IsTransient(err) {
		t.Fatalf("short read err = %v, want transient", err)
	}
	if n <= 0 || n >= len(want) {
		t.Fatalf("short read n = %d, want a strict prefix of %d", n, len(want))
	}
	if !bytes.Equal(p[:n], want[:n]) {
		t.Errorf("prefix %q does not match data %q", p[:n], want[:n])
	}
}

// TestChaosTornWrite: a torn write persists a strict prefix only.
func TestChaosTornWrite(t *testing.T) {
	base := NewMem()
	c := NewChaos(5, base, ChaosConfig{TornWrite: 1})
	p := []byte("abcdefghijklmnop")
	n, err := c.WriteAt(p, 0)
	if !IsTransient(err) {
		t.Fatalf("torn write err = %v, want transient", err)
	}
	if n <= 0 || n >= len(p) {
		t.Fatalf("torn write n = %d, want a strict prefix of %d", n, len(p))
	}
	got := base.Bytes()
	if !bytes.Equal(got, p[:n]) {
		t.Errorf("persisted %q, want exactly the %d-byte prefix %q", got, n, p[:n])
	}
}

// TestChaosLatencySpike: spikes delay but do not fail.
func TestChaosLatencySpike(t *testing.T) {
	base := NewMem()
	c := NewChaos(5, base, ChaosConfig{LatencySpike: 1, MaxLatency: time.Millisecond})
	var slept time.Duration
	c.sleep = func(d time.Duration) { slept += d }
	if _, err := c.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("spiked write failed: %v", err)
	}
	if c.Stats().LatencySpikes == 0 {
		t.Error("no spike recorded at probability 1")
	}
	if slept <= 0 || slept > time.Millisecond {
		t.Errorf("spike slept %v, want within (0, MaxLatency]", slept)
	}
}

// TestChaosTransientOnlyResilient is the single-threaded version of the
// survivability guarantee: under TransientOnly chaos, a Resilient
// wrapper makes every operation succeed and the end state match a
// fault-free mirror exactly.
func TestChaosTransientOnlyResilient(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		base := NewMem()
		mirror := NewMem()
		c := NewChaos(seed, base, TransientOnly())
		c.sleep = func(time.Duration) {}
		r := NewResilient(c, ResilientConfig{Seed: seed + 1})
		r.sleep = func(time.Duration) {}

		for i := 0; i < 300; i++ {
			off := int64((i * 37) % 2048)
			data := bytes.Repeat([]byte{byte(i)}, 1+(i%64))
			if i%3 == 0 {
				n, err := r.WriteAt(data, off)
				if err != nil || n != len(data) {
					t.Fatalf("seed %d op %d: resilient write = %d, %v", seed, i, n, err)
				}
				if _, err := mirror.WriteAt(data, off); err != nil {
					t.Fatal(err)
				}
			} else {
				got := make([]byte, len(data))
				wantBuf := make([]byte, len(data))
				_, err := r.ReadAt(got, off)
				if err != nil && err != io.EOF {
					t.Fatalf("seed %d op %d: resilient read: %v", seed, i, err)
				}
				if err := ReadFull(mirror, wantBuf, off); err != nil {
					t.Fatal(err)
				}
				// Compare only the delivered prefix on EOF-short reads.
				if err == io.EOF {
					continue
				}
				if !bytes.Equal(got, wantBuf) {
					t.Fatalf("seed %d op %d: read diverged from mirror", seed, i)
				}
			}
		}
		if !bytes.Equal(base.Bytes(), mirror.Bytes()) {
			t.Errorf("seed %d: final contents diverged from fault-free mirror", seed)
		}
		if c.Stats().Permanents != 0 {
			t.Errorf("seed %d: TransientOnly injected %d permanent faults", seed, c.Stats().Permanents)
		}
		if _, exhausted := r.RetryStats(); exhausted != 0 {
			t.Errorf("seed %d: %d ops exhausted their retry budget", seed, exhausted)
		}
	}
}
