package storage

import (
	"sync/atomic"
	"time"
)

// Throttled wraps a Backend with a bandwidth/latency cost model, used to
// study how the listless-I/O advantage depends on the speed of the file
// system relative to memory and interconnect (paper §4.2, "file-system
// and memory performance").  Every operation pays Latency plus
// size/bandwidth of busy time, accumulated across operations so that
// sub-resolution costs are not lost.
type Throttled struct {
	Backend
	ReadBW  int64         // bytes per second; 0 = unlimited
	WriteBW int64         // bytes per second; 0 = unlimited
	Latency time.Duration // per-operation seek/issue cost

	debt atomic.Int64 // accumulated nanoseconds not yet slept
}

// NewThrottled wraps b with the given read/write bandwidths (bytes/s) and
// per-operation latency.
func NewThrottled(b Backend, readBW, writeBW int64, latency time.Duration) *Throttled {
	return &Throttled{Backend: b, ReadBW: readBW, WriteBW: writeBW, Latency: latency}
}

func (t *Throttled) charge(n int, bw int64) {
	ns := int64(t.Latency)
	if bw > 0 {
		ns += int64(n) * int64(time.Second) / bw
	}
	// Accumulate and sleep only when the debt is large enough for the
	// sleeper to be meaningful; this keeps many small operations honest
	// without millions of timer calls.
	d := t.debt.Add(ns)
	const quantum = int64(200 * time.Microsecond)
	if d >= quantum {
		if t.debt.CompareAndSwap(d, 0) {
			time.Sleep(time.Duration(d))
		}
	}
}

// ReadAt implements io.ReaderAt with read-bandwidth charging.
func (t *Throttled) ReadAt(p []byte, off int64) (int, error) {
	t.charge(len(p), t.ReadBW)
	return t.Backend.ReadAt(p, off)
}

// WriteAt implements io.WriterAt with write-bandwidth charging.
func (t *Throttled) WriteAt(p []byte, off int64) (int, error) {
	t.charge(len(p), t.WriteBW)
	return t.Backend.WriteAt(p, off)
}

// AccessStats counts backend operations, bytes, and busy time.  The
// nanosecond totals sum over operations, so with concurrent accesses
// (the pipelined collective window loop) they can exceed wall time.
type AccessStats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	ReadNs, WriteNs         int64
}

// Instrumented wraps a Backend with operation counting and timing.
type Instrumented struct {
	Backend
	reads, writes           atomic.Int64
	bytesRead, bytesWritten atomic.Int64
	readNs, writeNs         atomic.Int64
}

// NewInstrumented wraps b with access counters.
func NewInstrumented(b Backend) *Instrumented {
	return &Instrumented{Backend: b}
}

// ReadAt implements io.ReaderAt.
func (in *Instrumented) ReadAt(p []byte, off int64) (int, error) {
	t0 := time.Now()
	n, err := in.Backend.ReadAt(p, off)
	in.readNs.Add(time.Since(t0).Nanoseconds())
	in.reads.Add(1)
	in.bytesRead.Add(int64(n))
	return n, err
}

// WriteAt implements io.WriterAt.
func (in *Instrumented) WriteAt(p []byte, off int64) (int, error) {
	t0 := time.Now()
	n, err := in.Backend.WriteAt(p, off)
	in.writeNs.Add(time.Since(t0).Nanoseconds())
	in.writes.Add(1)
	in.bytesWritten.Add(int64(n))
	return n, err
}

// Stats returns a snapshot of the access counters.
func (in *Instrumented) Stats() AccessStats {
	return AccessStats{
		Reads:        in.reads.Load(),
		Writes:       in.writes.Load(),
		BytesRead:    in.bytesRead.Load(),
		BytesWritten: in.bytesWritten.Load(),
		ReadNs:       in.readNs.Load(),
		WriteNs:      in.writeNs.Load(),
	}
}

// Reset zeroes the access counters.
func (in *Instrumented) Reset() {
	in.reads.Store(0)
	in.writes.Store(0)
	in.bytesRead.Store(0)
	in.bytesWritten.Store(0)
	in.readNs.Store(0)
	in.writeNs.Store(0)
}
