package storage

import (
	"fmt"
	"io"
)

// Striped distributes a byte range round-robin over several backends in
// fixed-size stripe units (RAID-0 style) — a model of the striped
// storage systems the paper's §4.2 points to for scaling accumulated
// bandwidth with the number of processes.  Combined with Throttled
// members it lets experiments study how the listless advantage shifts
// when the file system itself scales.
type Striped struct {
	stripes []Backend
	unit    int64
}

// NewStriped stripes over the given backends with the given unit size.
func NewStriped(unit int64, stripes ...Backend) (*Striped, error) {
	if unit <= 0 {
		return nil, fmt.Errorf("storage: stripe unit %d", unit)
	}
	if len(stripes) == 0 {
		return nil, fmt.Errorf("storage: no stripe backends")
	}
	return &Striped{stripes: stripes, unit: unit}, nil
}

// locate maps a global offset to (stripe index, offset within that
// stripe's backing store).
func (s *Striped) locate(off int64) (int, int64) {
	unitIdx := off / s.unit
	within := off - unitIdx*s.unit
	stripe := int(unitIdx % int64(len(s.stripes)))
	row := unitIdx / int64(len(s.stripes))
	return stripe, row*s.unit + within
}

// each splits [off, off+n) into per-stripe contiguous pieces and calls
// fn for each, stopping at the first error.
func (s *Striped) each(off, n int64, fn func(b Backend, localOff int64, lo, hi int64) error) error {
	for pos := off; pos < off+n; {
		stripe, local := s.locate(pos)
		end := (pos/s.unit + 1) * s.unit
		if end > off+n {
			end = off + n
		}
		if err := fn(s.stripes[stripe], local, pos-off, end-off); err != nil {
			return err
		}
		pos = end
	}
	return nil
}

// ReadAt implements io.ReaderAt.  Missing bytes in any stripe read as
// zeros; a Striped store never reports EOF mid-range (its Size is the
// authoritative bound, as for the other backends zero-fill handling is
// done by ReadFull).
func (s *Striped) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	size := s.Size()
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if off+n > size {
		n = size - off
		short = true
	}
	err := s.each(off, n, func(b Backend, localOff, lo, hi int64) error {
		return ReadFull(b, p[lo:hi], localOff)
	})
	if err != nil {
		return 0, err
	}
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// WriteAt implements io.WriterAt.
func (s *Striped) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	err := s.each(off, int64(len(p)), func(b Backend, localOff, lo, hi int64) error {
		_, werr := b.WriteAt(p[lo:hi], localOff)
		return werr
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// Size reports the logical size: the maximum global offset any stripe's
// content reaches.
func (s *Striped) Size() int64 {
	var max int64
	k := int64(len(s.stripes))
	for i, b := range s.stripes {
		bs := b.Size()
		if bs == 0 {
			continue
		}
		// The last byte of stripe i at local offset bs-1 lives at global
		// offset: row*unit*k + i*unit + within.
		last := bs - 1
		row := last / s.unit
		within := last - row*s.unit
		global := row*s.unit*k + int64(i)*s.unit + within + 1
		if global > max {
			max = global
		}
	}
	return max
}

// Truncate implements Backend by sizing every stripe to cover n bytes.
func (s *Striped) Truncate(n int64) error {
	if n < 0 {
		return fmt.Errorf("storage: negative truncate %d", n)
	}
	k := int64(len(s.stripes))
	for i, b := range s.stripes {
		// Bytes of stripe i within [0, n): count whole rows plus the
		// partial row.
		var local int64
		if n > 0 {
			last := n - 1
			row := last / (s.unit * k)
			rem := last - row*s.unit*k // offset within the last row
			local = row * s.unit
			stripeStart := int64(i) * s.unit
			switch {
			case rem >= stripeStart+s.unit:
				local += s.unit
			case rem >= stripeStart:
				local += rem - stripeStart + 1
			}
		}
		if err := b.Truncate(local); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes every stripe.
func (s *Striped) Sync() error {
	for _, b := range s.stripes {
		if err := b.Sync(); err != nil {
			return err
		}
	}
	return nil
}
