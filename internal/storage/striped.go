package storage

import (
	"fmt"
	"io"
)

// Striped distributes a byte range round-robin over several backends in
// fixed-size stripe units (RAID-0 style) — a model of the striped
// storage systems the paper's §4.2 points to for scaling accumulated
// bandwidth with the number of processes.  Combined with Throttled
// members it lets experiments study how the listless advantage shifts
// when the file system itself scales.  The offset mapping lives in
// StripeGeom, shared with the networked I/O-server tier (a Striped over
// remote stripe clients is that tier's in-process prototype).
type Striped struct {
	stripes []Backend
	geom    StripeGeom
}

// NewStriped stripes over the given backends with the given unit size.
func NewStriped(unit int64, stripes ...Backend) (*Striped, error) {
	g := StripeGeom{Unit: unit, Count: len(stripes)}
	if err := g.Validate(); err != nil {
		if len(stripes) == 0 {
			return nil, fmt.Errorf("storage: no stripe backends")
		}
		return nil, err
	}
	return &Striped{stripes: stripes, geom: g}, nil
}

// Geom reports the striping layout.
func (s *Striped) Geom() StripeGeom { return s.geom }

// each splits [off, off+n) into per-stripe contiguous pieces and calls
// fn for each, stopping at the first error.
func (s *Striped) each(off, n int64, fn func(b Backend, localOff int64, lo, hi int64) error) error {
	return s.geom.Each(off, n, func(stripe int, localOff, lo, hi int64) error {
		return fn(s.stripes[stripe], localOff, lo, hi)
	})
}

// ReadAt implements io.ReaderAt.  Missing bytes in any stripe read as
// zeros; a Striped store never reports EOF mid-range (its Size is the
// authoritative bound, as for the other backends zero-fill handling is
// done by ReadFull).
func (s *Striped) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	size := s.Size()
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if off+n > size {
		n = size - off
		short = true
	}
	err := s.each(off, n, func(b Backend, localOff, lo, hi int64) error {
		return ReadFull(b, p[lo:hi], localOff)
	})
	if err != nil {
		return 0, err
	}
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// WriteAt implements io.WriterAt.
func (s *Striped) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	err := s.each(off, int64(len(p)), func(b Backend, localOff, lo, hi int64) error {
		_, werr := b.WriteAt(p[lo:hi], localOff)
		return werr
	})
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

// ReadAtv implements Vectored: the batch is regrouped per stripe and
// issued as one vectored call per member backend — n noncontiguous runs
// cost at most Count backend batches, not n accesses.  Per the Vectored
// contract each piece zero-fills past its stripe's EOF.
func (s *Striped) ReadAtv(segs []Segment) error {
	bySrv, err := SplitSegs(s.geom, segs)
	if err != nil {
		return err
	}
	for i, sub := range bySrv {
		if len(sub) == 0 {
			continue
		}
		if err := ReadAtv(s.stripes[i], sub); err != nil {
			return err
		}
	}
	return nil
}

// WriteAtv implements Vectored, regrouped per stripe like ReadAtv.
func (s *Striped) WriteAtv(segs []Segment) error {
	bySrv, err := SplitSegs(s.geom, segs)
	if err != nil {
		return err
	}
	for i, sub := range bySrv {
		if len(sub) == 0 {
			continue
		}
		if err := WriteAtv(s.stripes[i], sub); err != nil {
			return err
		}
	}
	return nil
}

// Size reports the logical size: the maximum global offset any stripe's
// content reaches.
func (s *Striped) Size() int64 {
	var max int64
	for i, b := range s.stripes {
		if global := s.geom.GlobalLen(b.Size(), i); global > max {
			max = global
		}
	}
	return max
}

// Truncate implements Backend by sizing every stripe to cover n bytes.
func (s *Striped) Truncate(n int64) error {
	if n < 0 {
		return fmt.Errorf("storage: negative truncate %d", n)
	}
	for i, b := range s.stripes {
		if err := b.Truncate(s.geom.LocalLen(n, i)); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes every stripe.
func (s *Striped) Sync() error {
	for _, b := range s.stripes {
		if err := b.Sync(); err != nil {
			return err
		}
	}
	return nil
}
