package storage

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// flaky is a Backend whose reads fail with a configured error a set
// number of times before succeeding, for driving the retry policy.
type flaky struct {
	*Mem
	failLeft int
	err      error
	attempts int
}

func (f *flaky) ReadAt(p []byte, off int64) (int, error) {
	f.attempts++
	if f.failLeft > 0 {
		f.failLeft--
		return 0, f.err
	}
	return f.Mem.ReadAt(p, off)
}

func (f *flaky) WriteAt(p []byte, off int64) (int, error) {
	f.attempts++
	if f.failLeft > 0 {
		f.failLeft--
		return 0, f.err
	}
	return f.Mem.WriteAt(p, off)
}

// noSleep replaces the backoff sleep so retry tests run instantly.
func noSleep(r *Resilient) { r.sleep = func(time.Duration) {} }

func TestResilientRetriesTransient(t *testing.T) {
	base := NewMem()
	if _, err := base.WriteAt([]byte("payload!"), 0); err != nil {
		t.Fatal(err)
	}
	fl := &flaky{Mem: base, failLeft: 3, err: fmt.Errorf("blip: %w", ErrTransient)}
	r := NewResilient(fl, ResilientConfig{})
	noSleep(r)

	got := make([]byte, 8)
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatalf("read failed despite retry budget: %v", err)
	}
	if string(got) != "payload!" {
		t.Errorf("read %q after retries", got)
	}
	if fl.attempts != 4 {
		t.Errorf("%d attempts, want 4 (1 + 3 retries)", fl.attempts)
	}
	retries, exhausted := r.RetryStats()
	if retries != 3 || exhausted != 0 {
		t.Errorf("RetryStats = (%d, %d), want (3, 0)", retries, exhausted)
	}
}

func TestResilientPermanentPassthrough(t *testing.T) {
	cause := fmt.Errorf("disk gone: %w", ErrPermanent)
	fl := &flaky{Mem: NewMem(), failLeft: 100, err: cause}
	r := NewResilient(fl, ResilientConfig{})
	noSleep(r)

	_, err := r.ReadAt(make([]byte, 4), 0)
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the permanent cause unchanged", err)
	}
	if fl.attempts != 1 {
		t.Errorf("%d attempts on a permanent error, want 1", fl.attempts)
	}
	retries, _ := r.RetryStats()
	if retries != 0 {
		t.Errorf("retried a permanent error %d times", retries)
	}
}

func TestResilientExhaustion(t *testing.T) {
	fl := &flaky{Mem: NewMem(), failLeft: 1 << 30, err: fmt.Errorf("flap: %w", ErrTransient)}
	r := NewResilient(fl, ResilientConfig{MaxRetries: 5})
	noSleep(r)

	_, err := r.WriteAt([]byte("x"), 0)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want to keep the transient classification", err)
	}
	if fl.attempts != 6 {
		t.Errorf("%d attempts, want 6 (1 + MaxRetries)", fl.attempts)
	}
	retries, exhausted := r.RetryStats()
	if retries != 5 || exhausted != 1 {
		t.Errorf("RetryStats = (%d, %d), want (5, 1)", retries, exhausted)
	}
}

func TestResilientDeadline(t *testing.T) {
	fl := &flaky{Mem: NewMem(), failLeft: 1 << 30, err: fmt.Errorf("flap: %w", ErrTransient)}
	// The first backoff (≥ BaseBackoff/2 = 5ms) already overruns the
	// 1ms budget, so the op gives up after a single attempt without
	// sleeping at all.
	r := NewResilient(fl, ResilientConfig{
		BaseBackoff: 10 * time.Millisecond,
		OpDeadline:  time.Millisecond,
	})
	var slept time.Duration
	r.sleep = func(d time.Duration) { slept += d }

	_, err := r.ReadAt(make([]byte, 1), 0)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want transient-classified deadline error", err)
	}
	if fl.attempts != 1 {
		t.Errorf("%d attempts, want 1 before the deadline check", fl.attempts)
	}
	if slept != 0 {
		t.Errorf("slept %v despite the deadline being unpayable", slept)
	}
	if _, exhausted := func() (int64, int64) { return r.RetryStats() }(); exhausted != 1 {
		t.Errorf("exhausted = %d, want 1", exhausted)
	}
}

// TestResilientDeterministicSchedule: equal seeds must produce equal
// retry delay schedules — that is what makes a chaos run replayable.
func TestResilientDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		base := NewMem()
		if _, err := base.WriteAt([]byte{1}, 0); err != nil {
			t.Fatal(err)
		}
		fl := &flaky{Mem: base, failLeft: 6, err: fmt.Errorf("flap: %w", ErrTransient)}
		r := NewResilient(fl, ResilientConfig{Seed: seed})
		var delays []time.Duration
		r.sleep = func(d time.Duration) { delays = append(delays, d) }
		if _, err := r.ReadAt(make([]byte, 1), 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return delays
	}
	a, b := schedule(42), schedule(42)
	if len(a) != 6 || len(a) != len(b) {
		t.Fatalf("schedules %v / %v, want 6 delays each", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Delays grow with the exponential envelope: each is within
	// [backoff/2, backoff], and the envelope doubles.
	base := ResilientConfig{}
	base.fill()
	backoff := base.BaseBackoff
	for i, d := range a {
		if d < backoff/2 || d > backoff {
			t.Errorf("retry %d delay %v outside [%v, %v]", i, d, backoff/2, backoff)
		}
		if backoff < base.MaxBackoff {
			backoff *= 2
			if backoff > base.MaxBackoff {
				backoff = base.MaxBackoff
			}
		}
	}
}

// TestResilientRepairsChaosShortRead: a short read reported transient
// must be repaired by the reissue (positioned reads are idempotent).
func TestResilientRepairsChaosShortRead(t *testing.T) {
	base := NewMem()
	want := []byte("0123456789abcdef")
	if _, err := base.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	// ShortRead probability 1 would never terminate; find a seed whose
	// first draw injects and later draw passes using probability 0.5.
	ch := NewChaos(3, base, ChaosConfig{ShortRead: 0.5})
	r := NewResilient(ch, ResilientConfig{MaxRetries: 64})
	noSleep(r)
	got := make([]byte, len(want))
	n, err := r.ReadAt(got, 0)
	if err != nil || n != len(want) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if string(got) != string(want) {
		t.Errorf("read %q, want %q", got, want)
	}
}
