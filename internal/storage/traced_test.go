package storage

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestTracedBackendSpans: every Backend operation through a Traced
// wrapper records a span with the file offset and the bytes actually
// moved.
func TestTracedBackendSpans(t *testing.T) {
	c := trace.NewCollector(64)
	b := NewTraced(NewMem(), c.Storage())

	if _, err := b.WriteAt([]byte("hello"), 100); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 5)
	if _, err := b.ReadAt(p, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.Truncate(50); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}

	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	want := []struct {
		ph     trace.Phase
		window int64
		bytes  int64
	}{
		{trace.PhaseStorageWrite, 100, 5},
		{trace.PhaseStorageRead, 100, 5},
		{trace.PhaseStorageTruncate, 50, 0},
		{trace.PhaseStorageSync, trace.NoWindow, 0},
	}
	for i, w := range want {
		ev := evs[i]
		if ev.Phase != w.ph || ev.Window != w.window || ev.Bytes != w.bytes ||
			ev.Rank != trace.RankStorage || ev.Kind != trace.KindSpan {
			t.Errorf("event %d = %+v, want phase=%s window=%d bytes=%d", i, ev, w.ph, w.window, w.bytes)
		}
	}
}

// TestTracedNilTracerTransparent: a Traced wrapper over a nil tracer
// must behave exactly like the bare backend.
func TestTracedNilTracerTransparent(t *testing.T) {
	b := NewTraced(NewMem(), nil)
	if _, err := b.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 1)
	if _, err := b.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if p[0] != 'x' {
		t.Fatalf("read %q", p)
	}
}

// TestChaosEmitsFaultInstants: with probability-1 transient faults,
// every injection must land on the trace as an instant naming the fault
// class and offset.
func TestChaosEmitsFaultInstants(t *testing.T) {
	c := trace.NewCollector(64)
	ch := NewChaos(1, NewMem(), ChaosConfig{TransientRead: 1, TransientWrite: 1})
	ch.SetTracer(c.Storage())

	if _, err := ch.WriteAt([]byte("x"), 64); err == nil {
		t.Fatal("expected injected write fault")
	}
	if _, err := ch.ReadAt(make([]byte, 1), 128); err == nil {
		t.Fatal("expected injected read fault")
	}

	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Phase != trace.PhaseChaosTransient || evs[0].Window != 64 ||
		evs[0].Kind != trace.KindInstant || evs[0].Detail != "write fault" {
		t.Errorf("write fault instant = %+v", evs[0])
	}
	if evs[1].Phase != trace.PhaseChaosTransient || evs[1].Window != 128 ||
		evs[1].Detail != "read fault" {
		t.Errorf("read fault instant = %+v", evs[1])
	}
}

// TestResilientEmitsRetryInstants: a backend that fails transiently a
// fixed number of times must leave one retry instant per reissue, and
// an exhausted instant when the budget runs out.
func TestResilientEmitsRetryInstants(t *testing.T) {
	c := trace.NewCollector(64)
	base := NewMem()
	if _, err := base.WriteAt([]byte("z"), 32); err != nil {
		t.Fatal(err)
	}
	fl := &flaky{Mem: base, failLeft: 2, err: fmt.Errorf("blip: %w", ErrTransient)}
	r := NewResilient(fl, ResilientConfig{MaxRetries: 8, BaseBackoff: time.Microsecond})
	noSleep(r)
	r.SetTracer(c.Storage())

	if _, err := r.ReadAt(make([]byte, 1), 32); err != nil {
		t.Fatal(err)
	}

	var retries int
	for _, ev := range c.Events() {
		if ev.Phase == trace.PhaseRetry {
			retries++
			if ev.Window != 32 {
				t.Errorf("retry instant window = %d, want 32", ev.Window)
			}
			if ev.Detail == "" {
				t.Error("retry instant has no detail")
			}
		}
	}
	if retries != 2 {
		t.Fatalf("retry instants = %d, want 2", retries)
	}

	// Exhaust the budget: more failures than retries allowed.
	c2 := trace.NewCollector(64)
	fl2 := &flaky{Mem: NewMem(), failLeft: 1 << 30, err: fmt.Errorf("flap: %w", ErrTransient)}
	r2 := NewResilient(fl2, ResilientConfig{MaxRetries: 2, BaseBackoff: time.Microsecond})
	noSleep(r2)
	r2.SetTracer(c2.Storage())
	if _, err := r2.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("expected exhausted retries to fail")
	}
	var exhausted bool
	for _, ev := range c2.Events() {
		if ev.Phase == trace.PhaseRetryExhausted {
			exhausted = true
		}
	}
	if !exhausted {
		t.Fatal("no retry-exhausted instant recorded")
	}
}
