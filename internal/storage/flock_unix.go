//go:build unix

package storage

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// flockFile takes a non-blocking advisory lock on f: exclusive for
// single-owner opens, shared for deliberate multi-process access.  A
// conflicting holder yields ErrLocked immediately — the caller races a
// live owner and must not touch the file.  The lock lives on the open
// file description, so Close releases it.
func flockFile(f *os.File, shared bool) error {
	how := syscall.LOCK_EX
	if shared {
		how = syscall.LOCK_SH
	}
	err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return fmt.Errorf("%w: %s", ErrLocked, f.Name())
	}
	return fmt.Errorf("storage: flock %s: %w", f.Name(), err)
}
