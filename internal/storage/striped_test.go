package storage

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func newStriped(t *testing.T, unit int64, n int) (*Striped, []*Mem) {
	t.Helper()
	mems := make([]*Mem, n)
	backs := make([]Backend, n)
	for i := range mems {
		mems[i] = NewMem()
		backs[i] = mems[i]
	}
	s, err := NewStriped(unit, backs...)
	if err != nil {
		t.Fatal(err)
	}
	return s, mems
}

func TestStripedValidation(t *testing.T) {
	if _, err := NewStriped(0, NewMem()); err == nil {
		t.Error("zero unit accepted")
	}
	if _, err := NewStriped(64); err == nil {
		t.Error("no backends accepted")
	}
}

func TestStripedPlacement(t *testing.T) {
	s, mems := newStriped(t, 4, 2)
	// Write 12 bytes: units 0,2 -> stripe 0; unit 1 -> stripe 1.
	data := []byte("abcdEFGHijkl")
	if _, err := s.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if got := string(mems[0].Bytes()); got != "abcdijkl" {
		t.Fatalf("stripe 0 = %q", got)
	}
	if got := string(mems[1].Bytes()); got != "EFGH" {
		t.Fatalf("stripe 1 = %q", got)
	}
	if s.Size() != 12 {
		t.Fatalf("size = %d", s.Size())
	}
	back := make([]byte, 12)
	if _, err := s.ReadAt(back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatalf("read back %q", back)
	}
}

func TestStripedUnalignedAccess(t *testing.T) {
	s, _ := newStriped(t, 8, 3)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i + 1)
	}
	if _, err := s.WriteAt(data, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if _, err := s.ReadAt(got, 5); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("unaligned round trip failed")
	}
}

func TestStripedReadPastEnd(t *testing.T) {
	s, _ := newStriped(t, 8, 2)
	s.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := s.ReadAt(buf, 1)
	if n != 2 || err != io.EOF {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if n, err := s.ReadAt(buf, 50); n != 0 || err != io.EOF {
		t.Fatalf("far read = %d, %v", n, err)
	}
	if _, err := s.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestStripedTruncateAndSize(t *testing.T) {
	s, mems := newStriped(t, 4, 2)
	if err := s.Truncate(10); err != nil {
		t.Fatal(err)
	}
	// 10 bytes: stripe0 units 0,2 -> 4+2=6; stripe1 unit 1 -> 4.
	if mems[0].Size() != 6 || mems[1].Size() != 4 {
		t.Fatalf("stripe sizes = %d,%d", mems[0].Size(), mems[1].Size())
	}
	if s.Size() != 10 {
		t.Fatalf("size = %d", s.Size())
	}
	if err := s.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Fatalf("size after truncate 0 = %d", s.Size())
	}
	if err := s.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStripedMatchesMem(t *testing.T) {
	// Property: a striped store behaves byte-identically to a plain Mem
	// under any sequence of writes and reads.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		unit := int64(1 + r.Intn(16))
		s, _ := newStriped(t, unit, 1+r.Intn(4))
		ref := NewMem()
		for op := 0; op < 24; op++ {
			off := r.Int63n(256)
			n := 1 + r.Intn(64)
			if r.Intn(2) == 0 {
				data := make([]byte, n)
				r.Read(data)
				s.WriteAt(data, off)
				ref.WriteAt(data, off)
			} else {
				a := make([]byte, n)
				b := make([]byte, n)
				ReadFull(s, a, off)
				ReadFull(ref, b, off)
				if !bytes.Equal(a, b) {
					t.Logf("seed %d: read mismatch at %d+%d", seed, off, n)
					return false
				}
			}
			if s.Size() != ref.Size() {
				t.Logf("seed %d: size %d vs %d", seed, s.Size(), ref.Size())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
