package storage

import (
	"time"

	"repro/internal/obs"
)

// Metered wraps a Backend with obs instrumentation: per-op latency
// histograms, byte counters, and — for vectored calls — the batch-size
// distribution that shows how well scatter/gather coalescing is
// working.  A nil registry produces nil handles, so the wrapper costs
// two clock reads per op when metrics are off and is never guarded by
// a flag.  Safe for concurrent use when the wrapped backend is.
type Metered struct {
	Backend

	readNs  *obs.Hist
	writeNs *obs.Hist
	syncNs  *obs.Hist
	batch   *obs.Hist

	reads, writes   *obs.Counter
	readB, writeB   *obs.Counter
	vReads, vWrites *obs.Counter
}

// NewMetered wraps b, registering its metrics under storage_*.
func NewMetered(b Backend, r *obs.Registry) *Metered {
	return &Metered{
		Backend: b,
		readNs:  r.Hist("storage_read_ns", "Storage read latency in nanoseconds."),
		writeNs: r.Hist("storage_write_ns", "Storage write latency in nanoseconds."),
		syncNs:  r.Hist("storage_sync_ns", "Storage sync latency in nanoseconds."),
		batch:   r.Hist("storage_vectored_batch_segs", "Segments per vectored storage call."),
		reads:   r.Counter("storage_reads_total", "Storage read calls (vectored batches count once)."),
		writes:  r.Counter("storage_writes_total", "Storage write calls (vectored batches count once)."),
		readB:   r.Counter("storage_read_bytes_total", "Bytes read from storage."),
		writeB:  r.Counter("storage_written_bytes_total", "Bytes written to storage."),
		vReads:  r.Counter("storage_vectored_reads_total", "Vectored read batches issued."),
		vWrites: r.Counter("storage_vectored_writes_total", "Vectored write batches issued."),
	}
}

// ReadAt implements io.ReaderAt with latency and byte accounting.
func (m *Metered) ReadAt(p []byte, off int64) (int, error) {
	t0 := time.Now()
	n, err := m.Backend.ReadAt(p, off)
	m.readNs.ObserveSince(t0)
	m.reads.Inc()
	m.readB.Add(int64(n))
	return n, err
}

// WriteAt implements io.WriterAt with latency and byte accounting.
func (m *Metered) WriteAt(p []byte, off int64) (int, error) {
	t0 := time.Now()
	n, err := m.Backend.WriteAt(p, off)
	m.writeNs.ObserveSince(t0)
	m.writes.Inc()
	m.writeB.Add(int64(n))
	return n, err
}

// Sync implements Backend with latency accounting.
func (m *Metered) Sync() error {
	t0 := time.Now()
	err := m.Backend.Sync()
	m.syncNs.ObserveSince(t0)
	return err
}

// ReadAtv implements Vectored, recording the batch size distribution.
func (m *Metered) ReadAtv(segs []Segment) error {
	t0 := time.Now()
	err := ReadAtv(m.Backend, segs)
	m.readNs.ObserveSince(t0)
	m.reads.Inc()
	m.vReads.Inc()
	m.batch.Observe(int64(len(segs)))
	m.readB.Add(segsLen(segs))
	return err
}

// WriteAtv implements Vectored, recording the batch size distribution.
func (m *Metered) WriteAtv(segs []Segment) error {
	t0 := time.Now()
	err := WriteAtv(m.Backend, segs)
	m.writeNs.ObserveSince(t0)
	m.writes.Inc()
	m.vWrites.Inc()
	m.batch.Observe(int64(len(segs)))
	m.writeB.Add(segsLen(segs))
	return err
}

// RegisterMetrics exposes the Resilient wrapper's retry tallies on a
// registry as gauge functions reading the existing atomics — zero
// change to the retry hot path.
func (r *Resilient) RegisterMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.GaugeFunc("storage_retries_total", "Transient-failure retries issued by the Resilient wrapper.",
		func() int64 { return r.retries.Load() })
	reg.GaugeFunc("storage_retries_exhausted_total", "Operations abandoned after exhausting the retry budget.",
		func() int64 { return r.exhausted.Load() })
}
