package obs

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestNilRegistryIsNoOp: the nil-receiver convention — a nil registry
// hands out nil handles and every handle method no-ops.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.GaugeFunc("y", "", func() int64 { return 7 })
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Hist("z", "")
	h.Observe(9)
	if h.Data().Count != 0 {
		t.Fatal("nil hist observed")
	}
	if n := len(r.Snapshot("p").Metrics); n != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", n)
	}
}

// TestRegistryIdentity: registering the same name+labels twice returns
// the same handle; different labels are distinct series.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops", "help", Label{"op", "read"})
	b := r.Counter("ops", "help", Label{"op", "read"})
	c := r.Counter("ops", "help", Label{"op", "write"})
	if a != b {
		t.Fatal("same identity returned distinct handles")
	}
	if a == c {
		t.Fatal("distinct labels returned the same handle")
	}
	a.Add(2)
	c.Add(3)
	s := r.Snapshot("p")
	if len(s.Metrics) != 2 || s.Metrics[0].Value != 2 || s.Metrics[1].Value != 3 {
		t.Fatalf("snapshot = %+v", s.Metrics)
	}
}

// TestHistMergeProperty: the cross-process merge property — for random
// observation streams a and b, merge(hist(a), hist(b)) has bucket
// counts (and count/sum/min/max) equal to observing a then b
// sequentially into one histogram.  This is what makes launcher-side
// aggregation exact rather than approximate.
func TestHistMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		var ha, hb, hseq trace.Histogram
		na, nb := rng.Intn(50), rng.Intn(50)
		obs := func(h *trace.Histogram, n int) []int64 {
			vals := make([]int64, n)
			for i := range vals {
				// Mix magnitudes so many distinct buckets are hit,
				// including 0 and negative (clamped) values.
				v := rng.Int63n(1 << uint(rng.Intn(40)))
				if rng.Intn(10) == 0 {
					v = -v
				}
				vals[i] = v
				h.Add(v)
			}
			return vals
		}
		va, vb := obs(&ha, na), obs(&hb, nb)
		for _, v := range va {
			hseq.Add(v)
		}
		for _, v := range vb {
			hseq.Add(v)
		}
		merged := ha.Data()
		merged.Merge(hb.Data())
		if !reflect.DeepEqual(merged, hseq.Data()) {
			t.Fatalf("round %d: merge(a,b) = %+v, sequential = %+v", round, merged, hseq.Data())
		}
	}
}

// TestSnapshotRoundTrip: encode/decode is lossless for all three kinds,
// labels included.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", Label{"op", "read"}).Add(41)
	r.Gauge("depth", "queue depth").Set(-7)
	h := r.Hist("lat_ns", "latency")
	for _, v := range []int64{1, 3, 3, 900, 1 << 40} {
		h.Observe(v)
	}
	s := r.Snapshot("rank3")
	got, err := DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip:\n  in  %+v\n  out %+v", s, got)
	}
	if _, err := DecodeSnapshot([]byte("garbage....")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeSnapshot(s.Encode()[:10]); err == nil {
		t.Fatal("truncated snapshot decoded")
	}
}

// TestSnapshotMerge: counters/gauges sum and histograms bucket-add
// across processes; identity is name+labels.
func TestSnapshotMerge(t *testing.T) {
	mk := func(proc string, c int64, hv []int64) *Snapshot {
		r := NewRegistry()
		r.Counter("ops", "").Add(c)
		h := r.Hist("lat", "")
		for _, v := range hv {
			h.Observe(v)
		}
		return r.Snapshot(proc)
	}
	m := Merge(mk("rank0", 5, []int64{10, 20}), nil, mk("srv0", 7, []int64{30}))
	if m.Proc != "rank0+srv0" || m.Procs != 2 {
		t.Fatalf("merged proc = %q procs = %d", m.Proc, m.Procs)
	}
	if m.Metrics[0].Value != 12 {
		t.Fatalf("merged counter = %d", m.Metrics[0].Value)
	}
	if d := m.Metrics[1].Hist; d.Count != 3 || d.Sum != 60 || d.Min != 10 || d.Max != 30 {
		t.Fatalf("merged hist = %+v", d)
	}
	if !strings.Contains(m.Table(), "ops") {
		t.Fatalf("table missing metric:\n%s", m.Table())
	}
}

// TestRecorderDump: the flight recorder writes a dump containing the
// reason, the metrics, and the ring's recent spans — including a span
// still in flight at dump time.
func TestRecorderDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.txt")
	reg := NewRegistry()
	reg.Counter("crashes_total", "observed crashes").Add(3)
	rec := NewRecorder(path, "srv1", reg, nil)
	tr := rec.Collector().Tracer(0)
	sp := tr.Begin(trace.PhaseCollWrite, 0, 128)
	sp.End()
	tr.Begin(trace.PhaseStorageRead, 4096, 64) // left in flight
	if err := rec.Dump("test-fault"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"srv1", "test-fault", "crashes_total", string(trace.PhaseCollWrite), string(trace.PhaseStorageRead)} {
		if !strings.Contains(string(b), want) {
			t.Errorf("dump missing %q:\n%s", want, b)
		}
	}
	// A disabled recorder (empty path) is nil and fully no-op.
	var off *Recorder = NewRecorder("", "x", nil, nil)
	off.Start(0)
	off.Stop()
	if err := off.Dump("x"); err != nil {
		t.Fatal(err)
	}
}
