package obs

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Serve exposes the registry over HTTP on an already-bound listener:
// GET /metrics is the Prometheus text exposition, GET /metrics.bin the
// binary snapshot the launcher scrapes and merges.  The listener is
// either a standalone bind (-metrics-addr) or one inherited from the
// launcher by file descriptor (-metrics-fd), so every process of a
// multi-process run is scrapable mid-collective.  Returns the server
// for shutdown; a nil listener or registry returns nil.
func Serve(ln net.Listener, r *Registry, proc string) *http.Server {
	if ln == nil || r == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w)
	})
	mux.HandleFunc("/metrics.bin", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(r.Snapshot(proc).Encode())
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv
}

// Push delivers a final snapshot to the launcher's collector endpoint.
// Periodic scraping covers long-lived and crashed processes (last-good
// snapshots survive a SIGKILL), but a process that exits cleanly
// between two scrape ticks would vanish from the merged run report;
// pushing on the way out closes that window.  Best effort: a nil
// registry, empty address, or unreachable collector is not an error
// worth failing a finished run over.
func Push(addr, proc string, r *Registry) {
	if r == nil || addr == "" {
		return
	}
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Post(fmt.Sprintf("http://%s/push", addr), "application/octet-stream",
		bytes.NewReader(r.Snapshot(proc).Encode()))
	if err == nil {
		resp.Body.Close()
	}
}
