package obs

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// Prometheus text exposition (version 0.0.4): one HELP/TYPE pair per
// metric name, label values escaped, histograms as cumulative _bucket
// series over the registry's power-of-two bounds plus _sum and _count.

func promKind(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...}; extra labels are appended after the
// metric's constant labels (used for the histogram "le" bound).
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var parts []string
	for _, l := range all {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, l.Key, escapeLabel(l.Value)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm writes the registry in Prometheus text exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	var err error
	seen := make(map[string]bool)
	r.each(func(m Metric) {
		if err != nil {
			return
		}
		if !seen[m.Name] {
			seen[m.Name] = true
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				m.Name, escapeHelp(m.Help), m.Name, promKind(m.Kind))
			if err != nil {
				return
			}
		}
		if m.Kind != KindHist {
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.Name, labelString(m.Labels), m.Value)
			return
		}
		// Cumulative buckets; empty buckets are omitted (the format
		// allows sparse buckets, and 65 mostly-zero lines per series
		// would drown the exposition), then +Inf.
		var cum int64
		for i, c := range m.Hist.Counts {
			if c == 0 {
				continue
			}
			cum += c
			_, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.Name, labelString(m.Labels, Label{"le", fmt.Sprint(trace.BucketHi(i))}), cum)
			if err != nil {
				return
			}
		}
		_, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.Name, labelString(m.Labels, Label{"le", "+Inf"}), m.Hist.Count)
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
			m.Name, labelString(m.Labels), m.Hist.Sum,
			m.Name, labelString(m.Labels), m.Hist.Count)
	})
	return err
}
