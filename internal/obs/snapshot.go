package obs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// Metric is one metric's state at snapshot time.
type Metric struct {
	Kind   Kind
	Name   string
	Help   string
	Labels []Label
	Value  int64          // counters and gauges
	Hist   trace.HistData // histograms
}

// Key is the metric's merge identity: name plus constant labels.
func (m Metric) Key() string { return metricKey(m.Name, m.Labels) }

// Snapshot is one process's metrics at a point in time — the payload of
// the /metrics.bin endpoint and the op=metrics wire response, and the
// unit the launcher merges into the unified run report.
type Snapshot struct {
	Proc    string // producing process, e.g. "rank0", "srv1"
	Procs   int    // processes merged into this snapshot (0 or 1 = one)
	Metrics []Metric
}

// Snapshot captures the registry's current state.  A nil registry
// yields an empty snapshot, so wire handlers need no special case.
func (r *Registry) Snapshot(proc string) *Snapshot {
	s := &Snapshot{Proc: proc, Procs: 1}
	r.each(func(m Metric) { s.Metrics = append(s.Metrics, m) })
	return s
}

// Binary snapshot format, all integers varint:
//
//	magic "obs1"
//	proc string, procs
//	metric count, then per metric:
//	  kind byte, name, help, label count, {key, value}...
//	  counter/gauge: value
//	  hist: count, sum, min, max, nonzero-bucket count, {index, count}...
const snapMagic = "obs1"

func putV(b []byte, v int64) []byte  { return binary.AppendVarint(b, v) }
func putS(b []byte, s string) []byte { return append(putV(b, int64(len(s))), s...) }

// Encode renders the snapshot in its binary wire form.
func (s *Snapshot) Encode() []byte {
	b := []byte(snapMagic)
	b = putS(b, s.Proc)
	b = putV(b, int64(s.Procs))
	b = putV(b, int64(len(s.Metrics)))
	for _, m := range s.Metrics {
		b = append(b, byte(m.Kind))
		b = putS(b, m.Name)
		b = putS(b, m.Help)
		b = putV(b, int64(len(m.Labels)))
		for _, l := range m.Labels {
			b = putS(b, l.Key)
			b = putS(b, l.Value)
		}
		if m.Kind == KindHist {
			b = putV(b, m.Hist.Count)
			b = putV(b, m.Hist.Sum)
			b = putV(b, m.Hist.Min)
			b = putV(b, m.Hist.Max)
			nz := 0
			for _, c := range m.Hist.Counts {
				if c != 0 {
					nz++
				}
			}
			b = putV(b, int64(nz))
			for i, c := range m.Hist.Counts {
				if c != 0 {
					b = putV(b, int64(i))
					b = putV(b, c)
				}
			}
		} else {
			b = putV(b, m.Value)
		}
	}
	return b
}

type snapDecoder struct {
	b   []byte
	err error
}

func (d *snapDecoder) v() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("obs: truncated snapshot")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *snapDecoder) s() string {
	n := d.v()
	if d.err != nil {
		return ""
	}
	if n < 0 || int64(len(d.b)) < n {
		d.err = fmt.Errorf("obs: bad string length %d", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// DecodeSnapshot parses a binary snapshot.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("obs: bad snapshot magic")
	}
	d := &snapDecoder{b: b[len(snapMagic):]}
	s := &Snapshot{Proc: d.s(), Procs: int(d.v())}
	n := d.v()
	if d.err != nil {
		return nil, d.err
	}
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("obs: bad metric count %d", n)
	}
	for i := int64(0); i < n; i++ {
		if len(d.b) == 0 {
			return nil, fmt.Errorf("obs: truncated snapshot")
		}
		m := Metric{Kind: Kind(d.b[0])}
		d.b = d.b[1:]
		m.Name = d.s()
		m.Help = d.s()
		nl := d.v()
		if d.err != nil {
			return nil, d.err
		}
		if nl < 0 || nl > 64 {
			return nil, fmt.Errorf("obs: bad label count %d", nl)
		}
		for j := int64(0); j < nl; j++ {
			m.Labels = append(m.Labels, Label{Key: d.s(), Value: d.s()})
		}
		if m.Kind == KindHist {
			m.Hist.Count = d.v()
			m.Hist.Sum = d.v()
			m.Hist.Min = d.v()
			m.Hist.Max = d.v()
			nz := d.v()
			if d.err != nil {
				return nil, d.err
			}
			if nz < 0 || nz > int64(len(m.Hist.Counts)) {
				return nil, fmt.Errorf("obs: bad bucket count %d", nz)
			}
			for j := int64(0); j < nz; j++ {
				idx, c := d.v(), d.v()
				if d.err != nil {
					return nil, d.err
				}
				if idx < 0 || idx >= int64(len(m.Hist.Counts)) {
					return nil, fmt.Errorf("obs: bad bucket index %d", idx)
				}
				m.Hist.Counts[idx] = c
			}
		} else {
			m.Value = d.v()
		}
		if d.err != nil {
			return nil, d.err
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s, nil
}

// Merge folds any number of per-process snapshots into one: counters
// and gauges sum (a merged gauge is a cluster total, e.g. total bytes
// in flight), histograms merge by bucket addition.  Metric identity is
// name + constant labels; order follows first appearance.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	idx := make(map[string]int)
	var procs []string
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.Proc != "" {
			procs = append(procs, s.Proc)
		}
		n := s.Procs
		if n <= 0 {
			n = 1
		}
		out.Procs += n
		for _, m := range s.Metrics {
			key := m.Key()
			i, ok := idx[key]
			if !ok {
				idx[key] = len(out.Metrics)
				out.Metrics = append(out.Metrics, m)
				continue
			}
			switch m.Kind {
			case KindHist:
				out.Metrics[i].Hist.Merge(m.Hist)
			default:
				out.Metrics[i].Value += m.Value
			}
		}
	}
	sort.Strings(procs)
	out.Proc = strings.Join(procs, "+")
	return out
}

// Table renders the snapshot as an aligned text table — the unified run
// report the launcher prints on exit.
func (s *Snapshot) Table() string {
	var b strings.Builder
	proc := s.Proc
	if proc == "" {
		proc = "(none)"
	}
	fmt.Fprintf(&b, "metrics: %d process(es): %s\n", max(s.Procs, 1), proc)
	for _, m := range s.Metrics {
		name := m.Name
		if len(m.Labels) > 0 {
			var ls []string
			for _, l := range m.Labels {
				ls = append(ls, l.Key+"="+l.Value)
			}
			name += "{" + strings.Join(ls, ",") + "}"
		}
		switch m.Kind {
		case KindHist:
			d := m.Hist
			fmt.Fprintf(&b, "  %-44s count=%-8d mean=%-10v p50=%-10v p99=%-10v max=%v\n",
				name, d.Count,
				time.Duration(d.Mean()).Round(time.Microsecond),
				time.Duration(d.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(d.Quantile(0.99)).Round(time.Microsecond),
				time.Duration(d.Max).Round(time.Microsecond))
		default:
			fmt.Fprintf(&b, "  %-44s %d\n", name, m.Value)
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
