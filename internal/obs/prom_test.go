package obs

import (
	"strings"
	"testing"
)

// TestPromGolden pins the Prometheus text exposition: metric names,
// HELP/TYPE lines, label escaping (backslash, quote, newline),
// cumulative histogram buckets over the power-of-two bounds, and one
// HELP/TYPE pair per name even with multiple label sets.
func TestPromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("wire_bytes_total", "Bytes sent on the wire.", Label{"dir", "tx"}).Add(1024)
	r.Counter("wire_bytes_total", "Bytes sent on the wire.", Label{"dir", "rx"}).Add(2048)
	r.GaugeFunc("queue_depth", "Current queue depth.", func() int64 { return 3 })
	r.Gauge("weird", "Label escaping.", Label{"path", `C:\tmp` + "\n" + `"x"`}).Set(1)
	h := r.Hist("op_ns", "Operation latency.\nMulti-line help.")
	for _, v := range []int64{0, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}

	const want = `# HELP wire_bytes_total Bytes sent on the wire.
# TYPE wire_bytes_total counter
wire_bytes_total{dir="tx"} 1024
wire_bytes_total{dir="rx"} 2048
# HELP queue_depth Current queue depth.
# TYPE queue_depth gauge
queue_depth 3
# HELP weird Label escaping.
# TYPE weird gauge
weird{path="C:\\tmp\n\"x\""} 1
# HELP op_ns Operation latency.\nMulti-line help.
# TYPE op_ns histogram
op_ns_bucket{le="0"} 1
op_ns_bucket{le="1"} 2
op_ns_bucket{le="3"} 4
op_ns_bucket{le="7"} 5
op_ns_bucket{le="127"} 6
op_ns_bucket{le="+Inf"} 6
op_ns_sum 111
op_ns_count 6
`
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}
