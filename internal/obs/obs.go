// Package obs is the cluster-wide metrics plane: a typed, low-overhead
// metrics registry shared by every layer of the stack (core, mpi,
// transport, storage, ioserver) and exposed three ways — a
// Prometheus-text HTTP endpoint per process (http.go), a binary
// snapshot form that crosses the wire and merges across processes
// (snapshot.go), and an always-on flight recorder that preserves a
// crashing process's last spans (recorder.go).
//
// The registry follows the repo's nil-receiver convention: a nil
// *Registry hands out nil handles, and every handle method no-ops on a
// nil receiver, so instrumentation sites are never guarded by a flag.
// A live Counter costs one atomic add on the hot path and never
// allocates, which is what keeps the steady-state collective window at
// zero allocations with metrics on (see bench.Obs and the
// allocation-regression suite).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Kind tags a metric's type in snapshots and the exposition.
type Kind byte

// The three metric kinds.
const (
	KindCounter Kind = 'c'
	KindGauge   Kind = 'g'
	KindHist    Kind = 'h'
)

// Label is one constant key/value pair attached to a metric at
// registration time (e.g. {op="read"}).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing metric.  One atomic add per
// Inc/Add; nil-safe.
type Counter struct {
	name   string
	help   string
	labels []Label
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric.  A gauge registered with
// GaugeFunc reads its value through the callback instead, which exposes
// an existing atomic counter with zero hot-path cost.
type Gauge struct {
	name   string
	help   string
	labels []Label
	v      atomic.Int64
	fn     func() int64
}

// Set replaces the value (no-op for GaugeFunc gauges and on nil).
func (g *Gauge) Set(v int64) {
	if g != nil && g.fn == nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by n (no-op for GaugeFunc gauges and on nil).
func (g *Gauge) Add(n int64) {
	if g != nil && g.fn == nil {
		g.v.Add(n)
	}
}

// Value reports the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// Hist is a log-bucketed histogram metric — the same fixed power-of-two
// buckets as trace.Histogram, so per-process histograms merge across
// the cluster by plain bucket addition.
type Hist struct {
	name   string
	help   string
	labels []Label
	h      trace.Histogram
}

// Observe records one value.
func (h *Hist) Observe(v int64) {
	if h != nil {
		h.h.Add(v)
	}
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Hist) ObserveSince(t0 time.Time) {
	if h != nil {
		h.h.Add(int64(time.Since(t0)))
	}
}

// Data returns the histogram's raw buckets (zero value on nil).
func (h *Hist) Data() trace.HistData {
	if h == nil {
		return trace.HistData{}
	}
	return h.h.Data()
}

// Registry holds a process's metrics in registration order.  All
// methods are safe for concurrent use; a nil *Registry hands out nil
// (no-op) handles.
type Registry struct {
	mu       sync.Mutex
	order    []entry
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
}

type entry struct {
	kind Kind
	key  string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// metricKey is the identity of a metric: name plus its sorted constant
// labels.  Registering the same identity twice returns the same handle.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	k := name
	for _, l := range labels {
		k += "\x00" + l.Key + "\x01" + l.Value
	}
	return k
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, help: help, labels: labels}
	r.counters[key] = c
	r.order = append(r.order, entry{KindCounter, key})
	return c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, help: help, labels: labels}
	r.gauges[key] = g
	r.order = append(r.order, entry{KindGauge, key})
	return g
}

// GaugeFunc registers a gauge whose value is read through fn at
// exposition time — the way existing atomic counters (wire bytes,
// retries, server op tallies) join the registry without any change to
// their hot paths.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) *Gauge {
	g := r.Gauge(name, help, labels...)
	if g != nil {
		g.fn = fn
	}
	return g
}

// Hist registers (or retrieves) a histogram.
func (r *Registry) Hist(name, help string, labels ...Label) *Hist {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	h := &Hist{name: name, help: help, labels: labels}
	r.hists[key] = h
	r.order = append(r.order, entry{KindHist, key})
	return h
}

// each visits every metric in registration order with its current
// value, under a consistent view of the registration list.
func (r *Registry) each(fn func(m Metric)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	order := append([]entry(nil), r.order...)
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()
	for _, e := range order {
		switch e.kind {
		case KindCounter:
			c := counters[e.key]
			fn(Metric{Kind: KindCounter, Name: c.name, Help: c.help, Labels: c.labels, Value: c.Value()})
		case KindGauge:
			g := gauges[e.key]
			fn(Metric{Kind: KindGauge, Name: g.name, Help: g.help, Labels: g.labels, Value: g.Value()})
		case KindHist:
			h := hists[e.key]
			fn(Metric{Kind: KindHist, Name: h.name, Help: h.help, Labels: h.labels, Hist: h.h.Data()})
		}
	}
}
