package obs

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/trace"
)

// Recorder is the flight recorder: a fixed-size ring of the process's
// recent spans and instants (a small trace.Collector that is on even
// when -trace is off) plus the metrics registry, dumped to disk as a
// readable post-mortem.  Dumps are written atomically (tmp + rename)
// and triggered by SIGQUIT, collective faults, watchdog stalls, server
// shutdown — and, so that a SIGKILLed process still leaves its dying
// breath behind, by a periodic persist loop that keeps the on-disk dump
// no older than the persist interval.  All methods are nil-safe.
type Recorder struct {
	path string
	proc string
	reg  *Registry
	col  *trace.Collector

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// RecorderBufSize is the per-rank ring size of the recorder's own
// collector: small enough to be always-on, large enough to hold the
// last few windows of activity.
const RecorderBufSize = 512

// NewRecorder creates a flight recorder dumping to path.  col is the
// span ring to dump — pass the run's trace collector when tracing is
// on, or nil to let the recorder create its own small always-on ring
// (retrieve it with Collector and wire it into the run).  An empty path
// returns nil: recording disabled.
func NewRecorder(path, proc string, reg *Registry, col *trace.Collector) *Recorder {
	if path == "" {
		return nil
	}
	if col == nil {
		col = trace.NewCollector(RecorderBufSize)
	}
	return &Recorder{path: path, proc: proc, reg: reg, col: col}
}

// Collector returns the span ring feeding the recorder (nil on nil),
// for wiring into core/mpi/noncontig Trace options.
func (r *Recorder) Collector() *trace.Collector {
	if r == nil {
		return nil
	}
	return r.col
}

// Dump writes the post-mortem file: reason, metrics table, and the most
// recent spans per rank including in-flight ones.
func (r *Recorder) Dump(reason string) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %s\nreason: %s\ntime: %s\n\n",
		r.proc, reason, time.Now().Format(time.RFC3339Nano))
	b.WriteString(r.reg.Snapshot(r.proc).Table())
	b.WriteString("\nrecent events (most recent last, * = in flight):\n")
	b.WriteString(r.col.Forensics(32))
	r.mu.Lock()
	defer r.mu.Unlock()
	tmp := r.path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, r.path)
}

// Start launches the periodic persist loop and the SIGQUIT dump
// handler.  interval <= 0 selects the default 250ms.
func (r *Recorder) Start(interval time.Duration) {
	if r == nil {
		return
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	r.mu.Unlock()

	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Dump("periodic")
			case <-quit:
				r.Dump("SIGQUIT")
			case <-r.stop:
				signal.Stop(quit)
				return
			}
		}
	}()
}

// Stop ends the persist loop, leaving the last dump in place.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	started := r.started
	if started {
		r.started = false
		close(r.stop)
	}
	r.mu.Unlock()
	if started {
		<-r.done
	}
}
