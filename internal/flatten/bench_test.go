package flatten

import (
	"fmt"
	"testing"

	"repro/internal/datatype"
)

// Micro-benchmarks quantifying the list-based overheads of §2.4: list
// construction, storage-driven copies, positioning and merging.

func benchVector(b *testing.B, nblock int64) *datatype.Type {
	b.Helper()
	dt, err := datatype.Hvector(nblock, 8, 16, datatype.Byte)
	if err != nil {
		b.Fatal(err)
	}
	return dt
}

func BenchmarkFlatten(b *testing.B) {
	for _, nblock := range []int64{256, 16384, 1 << 20} {
		dt := benchVector(b, nblock)
		b.Run(fmt.Sprintf("Nblock=%d", nblock), func(b *testing.B) {
			b.ReportMetric(float64(nblock*TupleBytes), "list-bytes")
			for i := 0; i < b.N; i++ {
				if l := Flatten(dt); len(l) != int(nblock) {
					b.Fatal("bad list")
				}
			}
		})
	}
}

func BenchmarkPackList(b *testing.B) {
	dt := benchVector(b, 1<<17)
	l := Flatten(dt)
	src := make([]byte, dt.Extent())
	dst := make([]byte, dt.Size())
	b.SetBytes(dt.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackList(dst, src, l, dt.Extent(), 1, 0, dt.Size())
	}
}

func BenchmarkDataToFileLinear(b *testing.B) {
	// The O(N_block/2) positioning cost: locate the middle of the view.
	for _, nblock := range []int64{256, 16384, 1 << 17} {
		dt := benchVector(b, nblock)
		v := NewView(0, dt)
		mid := dt.Size() / 2
		b.Run(fmt.Sprintf("Nblock=%d", nblock), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v.DataToFile(mid)
			}
		})
	}
}

func BenchmarkRangeList(b *testing.B) {
	// Building a per-IOP access list: O(S_access/S_extent · N_block).
	dt := benchVector(b, 4096)
	v := NewView(0, dt)
	span := 4 * dt.Extent()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l := v.RangeList(0, span); len(l) == 0 {
			b.Fatal("empty range list")
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	// The collective write optimization's list merge.
	const parts, per = 8, 4096
	lists := make([]List, parts)
	for p := range lists {
		l := make(List, per)
		for i := range l {
			l[i] = Segment{Off: int64(i*parts+p) * 8, Len: 8}
		}
		lists[p] = l
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := Merge(lists...)
		if !m.Covers(0, parts*per*8) {
			b.Fatal("merge lost coverage")
		}
	}
}
