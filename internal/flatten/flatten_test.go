package flatten

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
)

func vec(t *testing.T, count, blocklen, stride int64) *datatype.Type {
	t.Helper()
	dt, err := datatype.Vector(count, blocklen, stride, datatype.Double)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestFlattenVector(t *testing.T) {
	l := Flatten(vec(t, 3, 2, 4))
	want := List{{0, 16}, {32, 16}, {64, 16}}
	if len(l) != len(want) {
		t.Fatalf("list = %v, want %v", l, want)
	}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("list[%d] = %v, want %v", i, l[i], want[i])
		}
	}
	if l.Bytes() != 48 {
		t.Fatalf("bytes = %d, want 48", l.Bytes())
	}
	if l.Footprint() != 48 {
		t.Fatalf("footprint = %d, want 48", l.Footprint())
	}
}

func TestFlattenCoalesces(t *testing.T) {
	// stride == blocklen is contiguous: one tuple after coalescing.
	l := Flatten(vec(t, 8, 4, 4))
	if len(l) != 1 || l[0] != (Segment{0, 256}) {
		t.Fatalf("list = %v, want one 256-byte segment", l)
	}
}

func TestListBasedMemoryBlowup(t *testing.T) {
	// The paper's extreme example: for blocklens < 16 bytes the list
	// costs more memory than the data it describes.
	l := Flatten(vec(t, 1000, 1, 2)) // 8-byte blocks
	if l.Footprint() <= l.Bytes() {
		t.Fatalf("expected footprint %d > data %d for 8-byte blocks", l.Footprint(), l.Bytes())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	dt := vec(t, 4, 1, 3)
	l := Flatten(dt)
	ext := dt.Extent()
	count := int64(3)
	src := make([]byte, count*ext)
	for i := range src {
		src[i] = byte(i)
	}
	packed := make([]byte, dt.Size()*count)
	if n := PackList(packed, src, l, ext, count, 0, int64(len(packed))); n != int64(len(packed)) {
		t.Fatalf("packed %d bytes, want %d", n, len(packed))
	}
	dst := make([]byte, len(src))
	if n := UnpackList(dst, packed, l, ext, count, 0, int64(len(packed))); n != int64(len(packed)) {
		t.Fatalf("unpacked %d bytes, want %d", n, len(packed))
	}
	// Only typed positions must match; holes stay zero.
	var checked int64
	for k := int64(0); k < count; k++ {
		for _, seg := range l {
			off := k*ext + seg.Off
			if !bytes.Equal(dst[off:off+seg.Len], src[off:off+seg.Len]) {
				t.Fatalf("data mismatch at instance %d seg %v", k, seg)
			}
			checked += seg.Len
		}
	}
	if checked != int64(len(packed)) {
		t.Fatalf("checked %d bytes, want %d", checked, len(packed))
	}
}

func TestPackWithSkipAndLimit(t *testing.T) {
	dt := vec(t, 4, 1, 2) // blocks at 0,16,32,48, 8 bytes each; size 32
	l := Flatten(dt)
	ext := dt.Extent()
	src := make([]byte, 2*ext)
	for i := range src {
		src[i] = byte(i)
	}
	// Reference: full pack then slice.
	full := make([]byte, 64)
	PackList(full, src, l, ext, 2, 0, 64)
	for skip := int64(0); skip <= 64; skip += 5 {
		for limit := int64(0); limit <= 64-skip; limit += 7 {
			got := make([]byte, limit)
			n := PackList(got, src, l, ext, 2, skip, limit)
			if n != limit {
				t.Fatalf("skip=%d limit=%d: copied %d", skip, limit, n)
			}
			if !bytes.Equal(got[:n], full[skip:skip+n]) {
				t.Fatalf("skip=%d limit=%d: wrong bytes", skip, limit)
			}
		}
	}
	// Skip beyond data.
	if n := PackList(make([]byte, 8), src, l, ext, 2, 100, 8); n != 0 {
		t.Fatalf("pack past end copied %d", n)
	}
}

func TestViewDataToFile(t *testing.T) {
	dt := vec(t, 2, 1, 2) // segs {0,8},{16,8}; bytes 16; extent 24
	v := NewView(100, dt)
	cases := []struct{ d, want int64 }{
		{0, 100}, {7, 107}, {8, 116}, {15, 123},
		{16, 124}, {31, 147}, {32, 148},
	}
	for _, c := range cases {
		if got := v.DataToFile(c.d); got != c.want {
			t.Errorf("DataToFile(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestViewEachInData(t *testing.T) {
	dt := vec(t, 2, 1, 2)
	v := NewView(0, dt)
	var offs, lens []int64
	v.EachInData(4, 28, func(fileOff, dataOff, n int64) {
		offs = append(offs, fileOff)
		lens = append(lens, n)
	})
	// data [4,28): seg0 tail (4..8)->file 4..8, seg1 (8..16)->16..24,
	// inst1 seg0 (16..24)->24..32, inst1 seg1 (24..28)->40..44.
	wantOffs := []int64{4, 16, 24, 40}
	wantLens := []int64{4, 8, 8, 4}
	if len(offs) != len(wantOffs) {
		t.Fatalf("segments = %v/%v", offs, lens)
	}
	for i := range wantOffs {
		if offs[i] != wantOffs[i] || lens[i] != wantLens[i] {
			t.Fatalf("seg %d = (%d,%d), want (%d,%d)", i, offs[i], lens[i], wantOffs[i], wantLens[i])
		}
	}
}

func TestViewEachInRange(t *testing.T) {
	dt := vec(t, 2, 1, 2)
	v := NewView(10, dt)
	// File layout: data at [10,18),[26,34) per inst0; [34,42),[50,58) inst1...
	var got []Segment
	var dataOffs []int64
	v.EachInRange(12, 52, func(fileOff, dataOff, n int64) {
		got = append(got, Segment{fileOff, n})
		dataOffs = append(dataOffs, dataOff)
	})
	want := []Segment{{12, 6}, {26, 8}, {34, 8}, {50, 2}}
	wantData := []int64{2, 8, 16, 24}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] || dataOffs[i] != wantData[i] {
			t.Fatalf("range seg %d = %v@%d, want %v@%d", i, got[i], dataOffs[i], want[i], wantData[i])
		}
	}
}

func TestRangeListAndCovers(t *testing.T) {
	dt := vec(t, 2, 1, 2)
	v := NewView(0, dt)
	l := v.RangeList(0, 48)
	// Data at [0,8),[16,24),[24,32),[40,48): middle two coalesce.
	want := List{{0, 8}, {16, 16}, {40, 8}}
	if len(l) != len(want) {
		t.Fatalf("range list = %v", l)
	}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("range list = %v, want %v", l, want)
		}
	}
	if l.Covers(0, 48) {
		t.Fatal("gappy list must not cover [0,48)")
	}
	if !l.Covers(16, 32) {
		t.Fatal("coalesced middle must cover [16,32)")
	}
}

func TestMerge(t *testing.T) {
	a := List{{0, 8}, {16, 8}}
	b := List{{8, 8}, {24, 8}}
	m := Merge(a, b)
	if len(m) != 1 || m[0] != (Segment{0, 32}) {
		t.Fatalf("merge = %v, want single [0,32)", m)
	}
	if !m.Covers(0, 32) {
		t.Fatal("merged list must cover [0,32)")
	}
	if m.Covers(0, 33) {
		t.Fatal("must not cover beyond end")
	}
	// Overlapping segments.
	m2 := Merge(List{{0, 10}}, List{{5, 10}}, List{{20, 5}})
	if len(m2) != 2 || m2[0] != (Segment{0, 15}) || m2[1] != (Segment{20, 5}) {
		t.Fatalf("merge = %v", m2)
	}
	if Merge() != nil {
		t.Fatal("empty merge must be nil")
	}
}

func TestCoversEmptyRange(t *testing.T) {
	var l List
	if !l.Covers(5, 5) {
		t.Fatal("empty range is always covered")
	}
	if l.Covers(0, 1) {
		t.Fatal("empty list covers nothing")
	}
}

// Property: PackList/UnpackList round-trip on random types, skips and
// limits, and EachInData is consistent with DataToFile.
func TestQuickPackUnpackRandomTypes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := datatype.RandomFiletype(r, 3)
		l := Flatten(dt)
		ext := dt.Extent()
		count := int64(1 + r.Intn(3))
		buf := make([]byte, count*ext+dt.TrueUB()) // room for data
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		total := dt.Size() * count
		full := make([]byte, total)
		if n := PackList(full, buf, l, ext, count, 0, total); n != total {
			return false
		}
		skip := r.Int63n(total + 1)
		limit := r.Int63n(total - skip + 1)
		part := make([]byte, limit)
		if n := PackList(part, buf, l, ext, count, skip, limit); n != limit {
			return false
		}
		if !bytes.Equal(part, full[skip:skip+limit]) {
			return false
		}
		// Unpack into a fresh buffer and compare typed bytes.
		out := make([]byte, len(buf))
		if n := UnpackList(out, full, l, ext, count, 0, total); n != total {
			return false
		}
		ok := true
		for k := int64(0); k < count; k++ {
			for _, seg := range l {
				off := k*ext + seg.Off
				if !bytes.Equal(out[off:off+seg.Len], buf[off:off+seg.Len]) {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEachInRangeMatchesEachInData(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := datatype.RandomFiletype(r, 3)
		v := NewView(r.Int63n(64), dt)
		count := int64(1 + r.Intn(3))
		// Collect all segments via EachInData over everything.
		type trip struct{ f, d, n int64 }
		var a []trip
		v.EachInData(0, v.Bytes*count, func(fileOff, dataOff, n int64) {
			// Coalesce for comparison.
			if k := len(a); k > 0 && a[k-1].f+a[k-1].n == fileOff && a[k-1].d+a[k-1].n == dataOff {
				a[k-1].n += n
				return
			}
			a = append(a, trip{fileOff, dataOff, n})
		})
		var b []trip
		v.EachInRange(v.Disp, v.Disp+count*v.Extent, func(fileOff, dataOff, n int64) {
			if k := len(b); k > 0 && b[k-1].f+b[k-1].n == fileOff && b[k-1].d+b[k-1].n == dataOff {
				b[k-1].n += n
				return
			}
			b = append(b, trip{fileOff, dataOff, n})
		})
		if len(a) != len(b) {
			t.Logf("type %s: %d vs %d segments", dt, len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("type %s: seg %d %v vs %v", dt, i, a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
