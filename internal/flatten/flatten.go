// Package flatten implements the ROMIO-style explicit ("list-based")
// representation of derived datatypes: ol-lists of ⟨offset,length⟩ tuples,
// and the operations the list-based I/O engine performs on them — linear
// positioning, per-tuple copying and list merging.
//
// This package is the *baseline* of the reproduction.  Its costs — O(N)
// construction and memory, O(N) traversal per positioning, per-tuple copy
// loops — are deliberate: they are the overheads quantified in §2.4 of the
// paper and eliminated by the listless engine (internal/fotf + the
// listless paths of internal/core).
package flatten

import (
	"sort"

	"repro/internal/datatype"
)

// Segment is one contiguous block of an ol-list: Len bytes at byte offset
// Off relative to the buffer/instance origin.
type Segment struct {
	Off, Len int64
}

// List is an ol-list: the explicit flattened form of one datatype
// instance, in type-map order, with adjacent blocks coalesced.
type List []Segment

// TupleBytes is the memory footprint of one ol-list tuple
// (offset + length, 8 bytes each), the paper's measure for the memory
// blow-up of explicit flattening.
const TupleBytes = 16

// Flatten explicitly flattens one instance of t into an ol-list,
// coalescing adjacent blocks.  Cost and memory are O(t.Blocks()).
func Flatten(t *datatype.Type) List {
	l := make(List, 0, minCap(t.Blocks()))
	t.Walk(func(off, length int64) {
		if n := len(l); n > 0 && l[n-1].Off+l[n-1].Len == off {
			l[n-1].Len += length
			return
		}
		l = append(l, Segment{Off: off, Len: length})
	})
	return l
}

func minCap(blocks int64) int64 {
	if blocks > 1<<20 {
		return 1 << 20
	}
	return blocks
}

// Bytes reports the total data length described by the list.
func (l List) Bytes() int64 {
	var s int64
	for _, seg := range l {
		s += seg.Len
	}
	return s
}

// Footprint reports the list's memory consumption in bytes
// (len(l) * TupleBytes).
func (l List) Footprint() int64 { return int64(len(l)) * TupleBytes }

// locate returns the index of the segment containing data offset d (bytes
// of *data*, not of extent) and the cumulative data bytes before that
// segment.  It traverses linearly from the start of the list — the
// ROMIO-style positioning cost of O(N/2) on average that listless I/O
// removes.  d must be in [0, l.Bytes()].
func (l List) locate(d int64) (idx int, cum int64) {
	for idx = 0; idx < len(l); idx++ {
		if cum+l[idx].Len > d {
			return idx, cum
		}
		cum += l[idx].Len
	}
	return len(l), cum
}

// PackList copies limit bytes of the typed data of src — described by
// count instances of list l with the given extent — into dst, skipping
// the first skip data bytes.  Copies are performed per tuple, reading
// each ⟨offset,length⟩ before the copy, as in list-based I/O.  It returns
// the number of bytes copied: min(limit, len(dst), remaining data).
func PackList(dst, src []byte, l List, extent, count, skip, limit int64) int64 {
	return transfer(dst, src, l, extent, count, skip, limit, true)
}

// UnpackList is the inverse of PackList: it copies from the contiguous
// src into the typed dst.
func UnpackList(dst, src []byte, l List, extent, count, skip, limit int64) int64 {
	return transfer(src, dst, l, extent, count, skip, limit, false)
}

// transfer moves bytes between a contiguous buffer c and a typed buffer
// b.  pack=true copies b→c, pack=false copies c→b.
func transfer(c, b []byte, l List, extent, count, skip, limit int64, pack bool) int64 {
	per := l.Bytes()
	if per == 0 || count == 0 {
		return 0
	}
	total := per * count
	if skip >= total {
		return 0
	}
	if limit > total-skip {
		limit = total - skip
	}
	if limit > int64(len(c)) {
		limit = int64(len(c))
	}
	if limit <= 0 {
		return 0
	}
	inst := skip / per
	rem := skip % per
	idx, cum := l.locate(rem) // linear traversal, list-based cost
	within := rem - cum

	var copied int64
	for copied < limit && inst < count {
		base := inst * extent
		for ; idx < len(l) && copied < limit; idx++ {
			seg := l[idx]
			off := base + seg.Off + within
			n := seg.Len - within
			within = 0
			if n > limit-copied {
				n = limit - copied
			}
			if pack {
				copy(c[copied:copied+n], b[off:off+n])
			} else {
				copy(b[off:off+n], c[copied:copied+n])
			}
			copied += n
		}
		idx = 0
		inst++
	}
	return copied
}

// View is a fileview in flattened form: the explicit representation the
// list-based engine stores per open file (disp + ol-list of the filetype).
type View struct {
	Disp   int64 // absolute byte displacement of the view in the file
	Extent int64 // filetype extent
	Bytes  int64 // data bytes per filetype instance
	Segs   List  // one flattened filetype instance
}

// NewView flattens ft and returns the list-based view representation.
func NewView(disp int64, ft *datatype.Type) *View {
	segs := Flatten(ft)
	return &View{
		Disp:   disp,
		Extent: ft.Extent(),
		Bytes:  segs.Bytes(),
		Segs:   segs,
	}
}

// DataToFile maps a data-stream offset (bytes of visible data from the
// start of the view) to an absolute file offset, traversing the ol-list
// linearly.
func (v *View) DataToFile(d int64) int64 {
	if v.Bytes == 0 {
		return v.Disp
	}
	inst := d / v.Bytes
	rem := d % v.Bytes
	idx, cum := v.Segs.locate(rem)
	if idx == len(v.Segs) { // d at the end of an instance
		return v.Disp + (inst+1)*v.Extent + v.Segs[0].Off
	}
	return v.Disp + inst*v.Extent + v.Segs[idx].Off + (rem - cum)
}

// EachInData emits the absolute file segments backing the data-stream
// range [d0, d1), in order, as (fileOff, dataOff, n) triples.  Positioning
// within the first instance is by linear traversal.
func (v *View) EachInData(d0, d1 int64, emit func(fileOff, dataOff, n int64)) {
	if d1 <= d0 || v.Bytes == 0 {
		return
	}
	inst := d0 / v.Bytes
	rem := d0 % v.Bytes
	idx, cum := v.Segs.locate(rem)
	within := rem - cum
	d := d0
	for d < d1 {
		base := v.Disp + inst*v.Extent
		for ; idx < len(v.Segs) && d < d1; idx++ {
			seg := v.Segs[idx]
			n := seg.Len - within
			off := base + seg.Off + within
			within = 0
			if n > d1-d {
				n = d1 - d
			}
			emit(off, d, n)
			d += n
		}
		idx = 0
		inst++
	}
}

// EachInRange emits the (fileOff, dataOff, n) triples of the view's data
// that fall in the absolute file range [lo, hi).  For every overlapping
// filetype instance the whole ol-list is scanned — the
// O(S_access/S_extent · N_block) cost of building per-IOP access lists in
// collective list-based I/O (paper §2.3).
func (v *View) EachInRange(lo, hi int64, emit func(fileOff, dataOff, n int64)) {
	if hi <= lo || v.Bytes == 0 {
		return
	}
	if v.contiguous() {
		// A contiguous view maps the range one-to-one (ROMIO likewise
		// special-cases contiguous filetypes instead of tiling them).
		if lo < v.Disp {
			lo = v.Disp
		}
		if hi > lo {
			emit(lo, lo-v.Disp, hi-lo)
		}
		return
	}
	rel0 := lo - v.Disp
	k0 := rel0 / v.Extent
	if rel0 < 0 {
		k0 = 0
	}
	for k := k0; ; k++ {
		base := v.Disp + k*v.Extent
		if base >= hi {
			return
		}
		var cum int64
		for _, seg := range v.Segs { // full linear scan per instance
			a := base + seg.Off
			b := a + seg.Len
			clipA, clipB := a, b
			if clipA < lo {
				clipA = lo
			}
			if clipB > hi {
				clipB = hi
			}
			if clipA < clipB {
				dataOff := k*v.Bytes + cum + (clipA - a)
				emit(clipA, dataOff, clipB-clipA)
			}
			cum += seg.Len
		}
	}
}

// RangeList materializes EachInRange as an absolute ol-list — the list an
// access process sends to an I/O process per collective access in
// list-based I/O.  Its footprint is what gets transmitted.
func (v *View) RangeList(lo, hi int64) List {
	var l List
	v.EachInRange(lo, hi, func(fileOff, _, n int64) {
		if k := len(l); k > 0 && l[k-1].Off+l[k-1].Len == fileOff {
			l[k-1].Len += n
			return
		}
		l = append(l, Segment{Off: fileOff, Len: n})
	})
	return l
}

// Merge merges absolute segment lists into one sorted, coalesced list.
// The list-based collective write optimization merges the ol-lists of all
// processes to detect fully contiguous combined accesses; the cost scales
// with the total number of tuples (paper §2.3).
func Merge(lists ...List) List {
	var n int
	for _, l := range lists {
		n += len(l)
	}
	if n == 0 {
		return nil
	}
	all := make(List, 0, n)
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
	out := all[:1]
	for _, seg := range all[1:] {
		last := &out[len(out)-1]
		if seg.Off <= last.Off+last.Len {
			if end := seg.Off + seg.Len; end > last.Off+last.Len {
				last.Len = end - last.Off
			}
			continue
		}
		out = append(out, seg)
	}
	return out
}

// Covers reports whether the merged (sorted, coalesced) list fully covers
// the byte range [lo, hi).
func (l List) Covers(lo, hi int64) bool {
	if hi <= lo {
		return true
	}
	for _, seg := range l {
		if seg.Off <= lo && lo < seg.Off+seg.Len {
			if seg.Off+seg.Len >= hi {
				return true
			}
			lo = seg.Off + seg.Len
		}
	}
	return false
}

// Cursor walks a view's data stream sequentially.  Creating one via
// SeekData pays the linear ol-list positioning cost once; advancing is
// per-tuple, which is the copy-loop cost profile of list-based I/O.
type Cursor struct {
	v      *View
	inst   int64 // filetype instance
	idx    int   // segment index within the instance
	within int64 // bytes consumed of the current segment
	d      int64 // data offset
}

// SeekData positions a new cursor at data offset d by linear traversal
// of the ol-list (the ROMIO-style O(N_block) positioning of §2.2).
func (v *View) SeekData(d int64) *Cursor {
	inst := d / v.Bytes
	rem := d % v.Bytes
	idx, cum := v.Segs.locate(rem)
	return &Cursor{v: v, inst: inst, idx: idx, within: rem - cum, d: d}
}

// Each advances the cursor by n data bytes, emitting one
// (fileOff, dataOff, length) triple per ol-list tuple touched.
func (c *Cursor) Each(n int64, emit func(fileOff, dataOff, ln int64)) {
	v := c.v
	if v.contiguous() {
		if n > 0 {
			emit(v.Disp+c.d, c.d, n)
			c.d += n
		}
		return
	}
	for n > 0 {
		if c.idx == len(v.Segs) {
			c.idx = 0
			c.within = 0
			c.inst++
		}
		seg := v.Segs[c.idx]
		avail := seg.Len - c.within
		ln := avail
		if ln > n {
			ln = n
		}
		fileOff := v.Disp + c.inst*v.Extent + seg.Off + c.within
		emit(fileOff, c.d, ln)
		c.d += ln
		c.within += ln
		n -= ln
		if c.within == seg.Len {
			c.idx++
			c.within = 0
		}
	}
}

// DataOffset reports the cursor's current data offset.
func (c *Cursor) DataOffset() int64 { return c.d }

// CountUpTo reports how many data bytes lie between the cursor's current
// position and the absolute file offset fileHi, without advancing the
// cursor.  The scan is per-tuple.
func (c *Cursor) CountUpTo(fileHi int64) int64 {
	v := c.v
	if v.contiguous() {
		n := fileHi - v.Disp - c.d
		if n < 0 {
			n = 0
		}
		return n
	}
	cc := *c
	var n int64
	for {
		if cc.idx == len(v.Segs) {
			cc.idx = 0
			cc.within = 0
			cc.inst++
		}
		seg := v.Segs[cc.idx]
		start := v.Disp + cc.inst*v.Extent + seg.Off + cc.within
		if start >= fileHi {
			return n
		}
		avail := seg.Len - cc.within
		take := avail
		if rest := fileHi - start; take > rest {
			take = rest
		}
		n += take
		if take < avail {
			return n
		}
		cc.idx++
		cc.within = 0
	}
}

// contiguous reports whether the view is a dense byte-for-byte mapping
// (single segment covering the whole extent).
func (v *View) contiguous() bool {
	return len(v.Segs) == 1 && v.Segs[0].Off == 0 && v.Segs[0].Len == v.Extent
}
