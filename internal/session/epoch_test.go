package session

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/storage"
)

// epochMem is a storage.EpochBackend over Mem that records the order of
// every mutating call — the oracle for the cache's seal-ordering
// contract — and hides staged writes from reads until the commit, like
// the real server tier does.
type epochMem struct {
	mem *storage.Mem

	mu     sync.Mutex
	epoch  uint64
	staged []storage.Segment
	log    []string
}

func newEpochMem() *epochMem { return &epochMem{mem: storage.NewMem()} }

func (e *epochMem) events() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.log...)
}

func (e *epochMem) ReadAt(p []byte, off int64) (int, error) { return e.mem.ReadAt(p, off) }
func (e *epochMem) Size() int64                             { return e.mem.Size() }
func (e *epochMem) Truncate(n int64) error                  { return e.mem.Truncate(n) }
func (e *epochMem) Sync() error                             { return e.mem.Sync() }

func (e *epochMem) WriteAt(p []byte, off int64) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.epoch != 0 {
		e.log = append(e.log, "stage")
		e.staged = append(e.staged, storage.Segment{Off: off, Buf: append([]byte(nil), p...)})
		return len(p), nil
	}
	e.log = append(e.log, "write")
	return e.mem.WriteAt(p, off)
}

func (e *epochMem) SupportsEpochs() bool { return true }

func (e *epochMem) EpochBegin(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch = id
	e.staged = nil
	e.log = append(e.log, "begin")
}

func (e *epochMem) EpochSeal(id uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log = append(e.log, "seal")
	return nil
}

func (e *epochMem) EpochCommit(id uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log = append(e.log, "commit")
	if err := storage.WriteAtv(e.mem, e.staged); err != nil {
		return err
	}
	e.epoch, e.staged = 0, nil
	return nil
}

func (e *epochMem) EpochAbort(id uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log = append(e.log, "abort")
	e.epoch, e.staged = 0, nil
	return nil
}

func (e *epochMem) EpochEnd(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log = append(e.log, "end")
	e.epoch, e.staged = 0, nil
}

// TestCacheEpochSealFlushOrdering is the satellite regression: every
// dirty byte written under an epoch must be staged before the seal, and
// nothing may stage between seal and commit.
func TestCacheEpochSealFlushOrdering(t *testing.T) {
	be := newEpochMem()
	c := NewCache(be, CacheOptions{ReadAhead: -1, Checked: true})
	if !c.SupportsEpochs() {
		t.Fatal("cache lost the epoch capability of its inner backend")
	}

	c.EpochBegin(7)
	want := bytes.Repeat([]byte{0x5C}, 4096)
	for i := 0; i < 4; i++ {
		if _, err := c.WriteAt(want[i*1024:(i+1)*1024], int64(i*1024)); err != nil {
			t.Fatal(err)
		}
	}
	// Absorbed, not staged yet: reads must still see the overlay.
	got := make([]byte, 4096)
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read-your-writes broken under an epoch")
	}
	if err := c.EpochSeal(7); err != nil {
		t.Fatal(err)
	}
	// Staged but uncommitted: the overlay must still serve the bytes
	// even though the inner backend hides them.
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("retained overlay lost between seal and commit")
	}
	if err := c.EpochCommit(7); err != nil {
		t.Fatal(err)
	}

	// Order contract: all staging strictly before the seal, nothing
	// between seal and commit.
	ev := be.events()
	seq := strings.Join(ev, " ")
	sealAt, commitAt := -1, -1
	for i, e := range ev {
		switch e {
		case "seal":
			sealAt = i
		case "commit":
			commitAt = i
		case "stage":
			if sealAt >= 0 {
				t.Fatalf("write staged after the seal: %s", seq)
			}
		case "write":
			t.Fatalf("write bypassed staging during an epoch: %s", seq)
		}
	}
	if sealAt < 0 || commitAt != len(ev)-1 {
		t.Fatalf("unexpected event sequence: %s", seq)
	}
	// And the committed bytes are the written ones.
	if _, err := be.mem.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("committed bytes differ")
	}
}

// TestCheckedCachePanicsOnWriteAfterSeal pins the checked-mode
// assertion: a write landing between seal and commit is a reorder
// across the sealed epoch and must panic immediately.
func TestCheckedCachePanicsOnWriteAfterSeal(t *testing.T) {
	be := newEpochMem()
	c := NewCache(be, CacheOptions{ReadAhead: -1, Checked: true})
	c.EpochBegin(3)
	if _, err := c.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.EpochSeal(3); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("write between seal and commit did not panic in checked mode")
		}
	}()
	c.WriteAt([]byte{4}, 0)
}

// TestCheckedCachePanicsOnDirtyAtCommit pins the commit-side assertion
// directly (white box: no public path can produce the state in checked
// mode, which is the point of the defense).
func TestCheckedCachePanicsOnDirtyAtCommit(t *testing.T) {
	be := newEpochMem()
	c := NewCache(be, CacheOptions{ReadAhead: -1, Checked: true})
	c.EpochBegin(9)
	if err := c.EpochSeal(9); err != nil {
		t.Fatal(err)
	}
	// Smuggle a dirty extent in behind the seal, as a buggy flush path
	// would.
	c.mu.Lock()
	c.ext = append(c.ext, extent{off: 0, data: []byte{1}, dirty: true})
	c.dirtyBytes = 1
	c.mu.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("dirty extent surviving a sealed epoch did not panic at commit")
		}
	}()
	c.EpochCommit(9)
}

// TestCacheEpochAbortDiscards: an aborted collective's absorbed writes
// vanish with it.
func TestCacheEpochAbortDiscards(t *testing.T) {
	be := newEpochMem()
	if _, err := be.mem.WriteAt(bytes.Repeat([]byte{0x11}, 64), 0); err != nil {
		t.Fatal(err)
	}
	c := NewCache(be, CacheOptions{ReadAhead: -1, Checked: true})
	c.EpochBegin(5)
	if _, err := c.WriteAt(bytes.Repeat([]byte{0x22}, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.EpochAbort(5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0x11}, 64)) {
		t.Fatal("aborted epoch's writes survived in the cache")
	}
}
