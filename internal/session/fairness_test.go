package session

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/datatype"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// Satellite: fairness under admission control.  Three heavy checkpoint
// sessions keep the single-slot pool saturated with slow collectives
// (throttled backends); a small analytics session keeps submitting tiny
// collectives.  Weighted-fair ordering must keep the small session's
// p99 queue wait bounded by roughly one heavy service time — it jumps
// the queued heavies because its virtual clock lags theirs — instead of
// growing with the heavy backlog.
func TestFairnessSmallJobsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based fairness test")
	}
	defer testutil.LeakCheck(t)()

	const (
		nHeavy     = 3
		heavyBytes = 256 << 10
		lightBytes = 1 << 10
		lightJobs  = 25
	)
	// One heavy collective costs ~latency + bytes/bw ≈ 2ms + 8ms.
	heavySvc := 2*time.Millisecond + time.Duration(heavyBytes)*time.Second/time.Duration(32<<20)

	sv := NewService(Options{Workers: 1, MaxQueue: 16})
	defer sv.Close()

	heavies := make([]*Session, nHeavy)
	for i := range heavies {
		be := storage.NewThrottled(storage.NewMem(), 0, 32<<20, 2*time.Millisecond)
		s, err := sv.Open(fmt.Sprintf("heavy%d", i), be, SessionOptions{
			Ranks:        1,
			StallTimeout: testStall,
		})
		if err != nil {
			t.Fatal(err)
		}
		heavies[i] = s
	}
	light, err := sv.Open("light", storage.NewMem(), SessionOptions{
		Ranks:        1,
		StallTimeout: testStall,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	heavyBuf := make([]byte, heavyBytes)
	for _, s := range heavies {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.WriteAtAll(0, heavyBytes, datatype.Byte, func(int) []byte { return heavyBuf }); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}

	// Let the heavies saturate the pool before the small jobs arrive.
	time.Sleep(5 * heavySvc)
	lightBuf := make([]byte, lightBytes)
	for i := 0; i < lightJobs; i++ {
		if err := light.WriteAtAll(0, lightBytes, datatype.Byte, func(int) []byte { return lightBuf }); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	st := light.Stats()
	if st.QueueWait.Count < lightJobs {
		t.Fatalf("light session recorded %d queue waits, want >= %d", st.QueueWait.Count, lightJobs)
	}
	p99 := time.Duration(st.QueueWait.Quantile(0.99))
	// The fair bound: one in-service heavy job must finish (the gate is
	// non-preemptive), then the light job outranks every queued heavy.
	// The bound is many multiples of one heavy service time to absorb
	// scheduler noise on CI machines — what it must NOT absorb is
	// waiting behind the whole heavy backlog over the run.
	if limit := 20 * heavySvc; p99 > limit {
		t.Fatalf("small-session p99 queue wait %v exceeds fair bound %v (heavy service %v)", p99, limit, heavySvc)
	}
	// Sanity: the pool really was contended — the heavies kept working
	// the whole time.
	for i, s := range heavies {
		if hs := s.Stats(); hs.Jobs < 5 {
			t.Fatalf("heavy session %d ran only %d jobs; pool never saturated", i, hs.Jobs)
		}
	}
	t.Logf("light p99 wait %v over %d jobs (heavy service ~%v)", p99, st.QueueWait.Count, heavySvc)
}
