package session

import (
	"errors"
	"sync"
	"time"
)

// Admission control and weighted-fair ordering for the shared worker
// pool.  Every collective of every session asks the scheduler for one
// of Workers slots before it starts moving data (via core's admission
// gate); at most MaxQueue jobs may wait beyond that, and further
// arrivals are rejected outright — the service sheds load instead of
// building an unbounded backlog.
//
// Ordering is start-time fair queueing over a virtual clock: a job's
// virtual start is max(pool vtime, its session's last virtual finish),
// its virtual finish adds cost/weight, and the free slot goes to the
// waiter with the earliest virtual finish.  A session that keeps the
// pool busy with huge transfers accumulates virtual time and yields to
// a small session whose clock lags — one huge checkpoint cannot starve
// small analytics reads, which is the property the fairness test
// pins down.  FIFO mode (the ablation) admits in arrival order.

// ErrBusy is the admission-control rejection: the worker pool is
// saturated and the wait queue is at its depth cap.  Collectives
// surface it as core.ErrRejected on every rank of the session's world.
var ErrBusy = errors.New("session: worker pool saturated and queue full")

// waiter is one queued job.
type waiter struct {
	s       *Session
	vstart  float64
	vfinish float64
	seq     int64
	ready   chan struct{}
}

type scheduler struct {
	workers  int
	maxQueue int
	fifo     bool

	mu       sync.Mutex
	running  int
	queue    []*waiter
	vnow     float64
	arrivals int64
}

func newScheduler(workers, maxQueue int, fifo bool) *scheduler {
	if workers <= 0 {
		workers = 4
	}
	if maxQueue <= 0 {
		maxQueue = 64
	}
	return &scheduler{workers: workers, maxQueue: maxQueue, fifo: fifo}
}

// chargeLocked advances the virtual clocks for one admission of cost
// units by session s and returns the job's (vstart, vfinish).
func (sc *scheduler) chargeLocked(s *Session, cost int64) (float64, float64) {
	start := sc.vnow
	if s.vdone > start {
		start = s.vdone
	}
	fin := start + float64(cost)/float64(s.weight)
	s.vdone = fin
	return start, fin
}

// acquire blocks until a pool slot is free (fair order) or fails with
// ErrBusy when the queue is at its cap.  The returned release func must
// be called exactly once.
func (sc *scheduler) acquire(s *Session, cost int64) (func(), error) {
	if cost <= 0 {
		cost = 1
	}
	sc.mu.Lock()
	if sc.running < sc.workers && len(sc.queue) == 0 {
		sc.running++
		start, _ := sc.chargeLocked(s, cost)
		sc.vnow = start
		sv := s.sv
		sv.mRunning.Set(int64(sc.running))
		sc.mu.Unlock()
		sv.mAdmitted.Inc()
		s.observeQueueWait(0)
		return func() { sc.release(s.sv) }, nil
	}
	if len(sc.queue) >= sc.maxQueue {
		sc.mu.Unlock()
		s.noteRejected()
		return nil, ErrBusy
	}
	w := &waiter{s: s, seq: sc.arrivals, ready: make(chan struct{})}
	sc.arrivals++
	w.vstart, w.vfinish = sc.chargeLocked(s, cost)
	sc.queue = append(sc.queue, w)
	s.sv.mQueued.Set(int64(len(sc.queue)))
	sc.mu.Unlock()

	t0 := time.Now()
	<-w.ready
	s.observeQueueWait(time.Since(t0))
	return func() { sc.release(s.sv) }, nil
}

// release frees one slot, handing it to the fairest waiter if any.
func (sc *scheduler) release(sv *Service) {
	sc.mu.Lock()
	if len(sc.queue) > 0 {
		i := sc.pickLocked()
		w := sc.queue[i]
		sc.queue = append(sc.queue[:i], sc.queue[i+1:]...)
		if w.vstart > sc.vnow {
			sc.vnow = w.vstart
		}
		sv.mQueued.Set(int64(len(sc.queue)))
		sc.mu.Unlock()
		sv.mAdmitted.Inc()
		close(w.ready)
		return
	}
	sc.running--
	sv.mRunning.Set(int64(sc.running))
	sc.mu.Unlock()
}

// pickLocked selects the next waiter: earliest virtual finish (ties by
// arrival), or strict arrival order in FIFO mode.
func (sc *scheduler) pickLocked() int {
	if sc.fifo {
		return 0
	}
	best := 0
	for i := 1; i < len(sc.queue); i++ {
		w, b := sc.queue[i], sc.queue[best]
		if w.vfinish < b.vfinish || (w.vfinish == b.vfinish && w.seq < b.seq) {
			best = i
		}
	}
	return best
}

// sessionGate adapts the shared scheduler to core's per-file admission
// gate: one Acquire per collective, decided by rank 0, cost scaled by
// the aggregate transfer estimate.
type sessionGate struct{ s *Session }

func (g sessionGate) Acquire(write bool, bytes int64) (func(), error) {
	return g.s.sv.sched.acquire(g.s, bytes)
}
