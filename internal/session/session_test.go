package session

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/noncontig"
	"repro/internal/storage"
	"repro/internal/testutil"
)

const testStall = 30 * time.Second

// pattern fills a rank-distinct deterministic payload.
func pattern(rank int, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((rank*131 + i*7 + 13) % 251)
	}
	return b
}

// sessionWorkload runs the standard Figure-4 interleaved workload on a
// session: set the view, collectively write every rank's pattern, read
// it back collectively, and verify.
func sessionWorkload(s *Session, ranks int, blockcount, blocklen int64) error {
	d := blockcount * blocklen
	if err := s.Run(func(p *mpi.Proc, f *core.File) error {
		ft, err := noncontig.Filetype(p.Rank(), ranks, blockcount, blocklen)
		if err != nil {
			return err
		}
		return f.SetView(0, datatype.Byte, ft)
	}); err != nil {
		return err
	}
	if c := s.Cache(); c != nil {
		c.Invalidate()
	}
	if err := s.WriteAtAll(0, d, datatype.Byte, func(rank int) []byte {
		return pattern(rank, d)
	}); err != nil {
		return err
	}
	bufs := make([][]byte, ranks)
	for r := range bufs {
		bufs[r] = make([]byte, d)
	}
	if err := s.ReadAtAll(0, d, datatype.Byte, func(rank int) []byte {
		return bufs[rank]
	}); err != nil {
		return err
	}
	for r := range bufs {
		if !bytes.Equal(bufs[r], pattern(r, d)) {
			return fmt.Errorf("rank %d: collective read-back mismatch", r)
		}
	}
	return nil
}

// oracleBytes runs the same workload through a bare core world over a
// flat Mem backend and returns the resulting file image.
func oracleBytes(t *testing.T, ranks int, blockcount, blocklen int64) []byte {
	t.Helper()
	be := storage.NewMem()
	sh := core.NewShared(be)
	d := blockcount * blocklen
	_, err := mpi.Run(ranks, func(p *mpi.Proc) {
		f, err := core.Open(p, sh, core.Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ft, err := noncontig.Filetype(p.Rank(), ranks, blockcount, blocklen)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		if _, err := f.WriteAtAll(0, d, datatype.Byte, pattern(p.Rank(), d)); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return flatten(t, be)
}

func flatten(t *testing.T, b storage.Backend) []byte {
	t.Helper()
	buf := make([]byte, b.Size())
	if len(buf) == 0 {
		return buf
	}
	if err := storage.ReadAtv(b, []storage.Segment{{Off: 0, Buf: buf}}); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestSessionSingleCachedWriteRead(t *testing.T) {
	defer testutil.LeakCheck(t)()
	const ranks, blockcount, blocklen = 2, 16, 8

	sv := NewService(Options{Workers: 2})
	be := storage.NewMem()
	s, err := sv.Open("s0", be, SessionOptions{
		Ranks:        ranks,
		Cache:        &CacheOptions{},
		StallTimeout: testStall,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sessionWorkload(s, ranks, blockcount, blocklen); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Jobs == 0 {
		t.Fatalf("no jobs recorded: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := flatten(t, be), oracleBytes(t, ranks, blockcount, blocklen); !bytes.Equal(got, want) {
		t.Fatal("cached session file image differs from the flat oracle")
	}
}

// TestSessionAdmissionRejects pins the admission-control path end to
// end: with the pool slot held and a zero-depth queue, a collective
// must return core.ErrRejected on every rank, leaving the session
// usable for a retry once the slot frees.
func TestSessionAdmissionRejects(t *testing.T) {
	defer testutil.LeakCheck(t)()
	sv := NewService(Options{Workers: 1, MaxQueue: 1})
	s, err := sv.Open("small", storage.NewMem(), SessionOptions{
		Ranks:        2,
		StallTimeout: testStall,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	// Saturate: hold the only slot and fill the queue directly.
	release, err := sv.sched.acquire(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	qrel := make(chan func(), 1)
	go func() {
		rel, err := sv.sched.acquire(s, 1)
		if err != nil {
			panic(err)
		}
		qrel <- rel
	}()
	for {
		sv.sched.mu.Lock()
		n := len(sv.sched.queue)
		sv.sched.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	err = sessionWorkload(s, 2, 4, 8)
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("saturated pool returned %v, want core.ErrRejected", err)
	}
	if st := s.Stats(); st.Rejected == 0 {
		t.Fatalf("rejection not counted: %+v", st)
	}

	release()
	(<-qrel)()
	if err := sessionWorkload(s, 2, 4, 8); err != nil {
		t.Fatalf("retry after release failed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceCloseClosesSessions(t *testing.T) {
	defer testutil.LeakCheck(t)()
	sv := NewService(Options{})
	for i := 0; i < 3; i++ {
		if _, err := sv.Open(fmt.Sprintf("s%d", i), storage.NewMem(), SessionOptions{StallTimeout: testStall}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Open("late", storage.NewMem(), SessionOptions{}); err == nil {
		t.Fatal("open after service close succeeded")
	}
}

func TestSessionDuplicateName(t *testing.T) {
	defer testutil.LeakCheck(t)()
	sv := NewService(Options{})
	defer sv.Close()
	if _, err := sv.Open("dup", storage.NewMem(), SessionOptions{StallTimeout: testStall}); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Open("dup", storage.NewMem(), SessionOptions{StallTimeout: testStall}); err == nil {
		t.Fatal("duplicate session name accepted")
	}
}
