// Package session is the I/O session service: a front end that accepts
// many concurrent open-file sessions and multiplexes their collectives
// onto shared resources — a bounded worker pool with admission control
// and weighted-fair ordering (sched.go), per-session worlds driving the
// core two-phase engine (session.go), and a client-side cache that
// absorbs collective writes (write-behind) and prefetches regular read
// patterns (read-ahead) below the core window loop (this file).
//
// The shape follows the ViPIOS server design (PAPERS.md): a persistent
// service owns file sessions, schedules requests onto a shared pool
// sized independently of any one job's world, and hides latency with
// caching.
package session

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/trace"
)

// CacheOptions configures a session's write-behind/read-ahead cache.
type CacheOptions struct {
	// MaxDirty is the write-behind pressure watermark: once the dirty
	// extent bytes exceed it, the absorbing write flushes synchronously.
	// Default 8 MiB.
	MaxDirty int64
	// ReadAhead is how many strided blocks one prefetch fetches ahead of
	// a detected stream.  0 means the default (8); negative disables
	// read-ahead entirely.
	ReadAhead int
	// Checked arms the epoch-ordering assertions (the pool.NewChecked
	// analogue): the cache panics if a write lands between an epoch seal
	// and its commit, or if a dirty extent survives to the commit — both
	// would mean write-behind reordered data across a sealed epoch.
	Checked bool
	// Metrics registers the cache's counters under the given Session
	// label; nil disables.
	Metrics *obs.Registry
	// Session is the metric label value naming the owning session.
	Session string
	// Tracer records flush/prefetch spans and hit/invalidate instants;
	// nil disables.
	Tracer *trace.Tracer
}

// CacheStats is a snapshot of a cache's activity counters.
type CacheStats struct {
	Hits            int64 // gap reads served from prefetched blocks
	Misses          int64 // gap reads that went to the inner backend
	OverlayBytes    int64 // read bytes served from write-behind extents
	AbsorbedBytes   int64 // write bytes absorbed into dirty extents
	Prefetches      int64 // prefetch batches issued
	PrefetchedBytes int64
	Flushes         int64 // write-behind flush batches
	FlushedBytes    int64
	Invalidations   int64 // read-ahead drops (overlapping write, view change, truncate)
}

// extent is one contiguous cached byte range.  Dirty extents are
// write-behind data not yet flushed to the inner backend; clean extents
// are flushed data retained during an active epoch, when the staged
// bytes are invisible to inner reads but must stay visible to the
// session (read-your-writes).
type extent struct {
	off   int64
	data  []byte
	dirty bool
}

func (e extent) end() int64 { return e.off + int64(len(e.data)) }

// Cache is a storage.Backend wrapper providing per-session write-behind
// and strided read-ahead.  It implements storage.Vectored and, when the
// inner backend does, storage.EpochBackend — flushing all dirty extents
// before the seal tally so the PR 7 crash-consistency protocol sees
// exactly the bytes the collective wrote.
//
// One mutex serializes all access: the cache is private to a session,
// so the lock orders that session's IOP ranks against each other while
// leaving cross-session parallelism (separate caches) untouched.
type Cache struct {
	inner storage.Backend
	eb    storage.EpochBackend // nil when inner has no epoch support
	tr    *trace.Tracer

	maxDirty int64
	checked  bool

	mu         sync.Mutex
	ext        []extent // sorted by off, non-overlapping
	dirtyBytes int64
	innerSize  int64  // size of inner as last observed/extended by us
	epoch      uint64 // active epoch id, 0 when none
	sealed     uint64 // sealed-but-uncommitted epoch id, 0 when none
	ra         *readAhead
	stats      CacheStats

	mHits, mMisses, mFlushes, mFlushedB, mAbsorbedB, mPrefetchedB, mInval *obs.Counter
	mDirty                                                                *obs.Gauge
}

// NewCache wraps inner in a session cache.
func NewCache(inner storage.Backend, o CacheOptions) *Cache {
	c := &Cache{
		inner:     inner,
		tr:        o.Tracer,
		maxDirty:  o.MaxDirty,
		checked:   o.Checked,
		innerSize: inner.Size(),
	}
	if c.maxDirty <= 0 {
		c.maxDirty = 8 << 20
	}
	if o.ReadAhead >= 0 {
		depth := o.ReadAhead
		if depth == 0 {
			depth = 8
		}
		c.ra = &readAhead{depth: depth}
	}
	if eb, ok := storage.AsEpochBackend(inner); ok {
		c.eb = eb
	}
	if r := o.Metrics; r != nil {
		lb := obs.Label{Key: "session", Value: o.Session}
		c.mHits = r.Counter("session_cache_hits_total", "read-ahead block hits", lb)
		c.mMisses = r.Counter("session_cache_misses_total", "gap reads sent to the inner backend", lb)
		c.mFlushes = r.Counter("session_cache_flushes_total", "write-behind flush batches", lb)
		c.mFlushedB = r.Counter("session_cache_flushed_bytes_total", "bytes flushed to the inner backend", lb)
		c.mAbsorbedB = r.Counter("session_cache_absorbed_bytes_total", "write bytes absorbed into dirty extents", lb)
		c.mPrefetchedB = r.Counter("session_cache_prefetched_bytes_total", "bytes prefetched by read-ahead", lb)
		c.mInval = r.Counter("session_cache_invalidations_total", "read-ahead invalidations", lb)
		c.mDirty = r.Gauge("session_cache_dirty_bytes", "current write-behind dirty bytes", lb)
	}
	return c
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) logicalSizeLocked() int64 {
	n := c.innerSize
	if len(c.ext) > 0 {
		if e := c.ext[len(c.ext)-1].end(); e > n {
			n = e
		}
	}
	return n
}

// Size reports the session-visible size: the inner size extended by any
// unflushed write-behind extents.
func (c *Cache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logicalSizeLocked()
}

// WriteAt absorbs the write into the dirty extent list (write-behind)
// and flushes synchronously once the pressure watermark is exceeded.
func (c *Cache) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, fmt.Errorf("session: negative write offset %d", off)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.checked && c.sealed != 0 {
		panic(fmt.Sprintf("session: write at %d between epoch %d seal and commit (write-behind reorder across seal)", off, c.sealed))
	}
	c.insertLocked(off, append([]byte(nil), p...), true)
	c.stats.AbsorbedBytes += int64(len(p))
	c.mAbsorbedB.Add(int64(len(p)))
	c.mDirty.Set(c.dirtyBytes)
	if c.dirtyBytes > c.maxDirty {
		if err := c.flushLocked(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// ReadAt serves overlapping cached extents (read-your-writes), fills the
// gaps from read-ahead blocks or the inner backend, and returns io.EOF
// past the logical size, matching storage.Mem semantics.
func (c *Cache) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("session: negative read offset %d", off)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.logicalSizeLocked()
	if off >= size {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	avail := int64(len(p))
	if off+avail > size {
		avail = size - off
	}
	if err := c.serveLocked(p[:avail], off); err != nil {
		return 0, err
	}
	if avail < int64(len(p)) {
		return int(avail), io.EOF
	}
	return int(avail), nil
}

// ReadAtv follows the Vectored contract: ReadFull semantics per segment.
func (c *Cache) ReadAtv(segs []storage.Segment) error {
	for _, s := range segs {
		if err := storage.ReadFull(c, s.Buf, s.Off); err != nil {
			return err
		}
	}
	return nil
}

// WriteAtv absorbs every segment.
func (c *Cache) WriteAtv(segs []storage.Segment) error {
	for _, s := range segs {
		if _, err := c.WriteAt(s.Buf, s.Off); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the write-behind extents and syncs the inner backend.
func (c *Cache) Sync() error {
	c.mu.Lock()
	err := c.flushLocked()
	if err == nil && c.epoch == 0 {
		c.dropCleanLocked()
	}
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.inner.Sync()
}

// Truncate flushes, drops all cached state, and truncates the inner
// backend — sessions use it only to pre-size files before a run.
func (c *Cache) Truncate(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	c.ext = nil
	c.dirtyBytes = 0
	c.mDirty.Set(0)
	c.invalidateLocked("truncate")
	if err := c.inner.Truncate(n); err != nil {
		return err
	}
	c.innerSize = n
	return nil
}

// Invalidate drops the read-ahead state (blocks and detected streams).
// The session calls it on every fileview change: the old access pattern
// no longer predicts anything.  Write-behind extents are untouched —
// they are data, not prediction.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateLocked("view change")
}

func (c *Cache) invalidateLocked(why string) {
	if c.ra == nil {
		return
	}
	if c.ra.reset() {
		c.stats.Invalidations++
		c.mInval.Inc()
		if c.tr.Enabled() {
			c.tr.Instant(trace.PhaseCacheInvalidate, 0, 0, why)
		}
	}
}

// ---- epoch protocol (storage.EpochBackend) ----
//
// The cache's ordering contract with the PR 7 commit protocol: every
// dirty byte written under an epoch is flushed (staged) before the seal
// verifies the tally, and nothing new is flushed between seal and
// commit.  Flushed extents are kept as clean overlays while the epoch
// is active — the staged bytes are invisible to inner reads until the
// commit — and dropped when the epoch ends.

// SupportsEpochs resolves the inner backend's capability dynamically.
func (c *Cache) SupportsEpochs() bool { return c.eb != nil && c.eb.SupportsEpochs() }

// EpochBegin enters staging mode on the inner backend.
func (c *Cache) EpochBegin(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eb == nil {
		return
	}
	c.eb.EpochBegin(id)
	c.epoch = id
	c.sealed = 0
}

// EpochSeal flushes all dirty extents into the epoch's staged state and
// seals it on the inner backend.
func (c *Cache) EpochSeal(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eb == nil {
		return storage.ErrNoEpochs
	}
	if err := c.flushLocked(); err != nil {
		return err
	}
	if err := c.eb.EpochSeal(id); err != nil {
		return err
	}
	c.sealed = id
	return nil
}

// EpochCommit applies the epoch on the inner backend.  In checked mode
// it panics if any dirty extent survived the seal — the reorder the
// write-behind path must never produce.
func (c *Cache) EpochCommit(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eb == nil {
		return storage.ErrNoEpochs
	}
	if c.checked && c.dirtyBytes != 0 {
		panic(fmt.Sprintf("session: %d dirty bytes survived sealed epoch %d at commit (write-behind reorder across seal)", c.dirtyBytes, id))
	}
	if err := c.eb.EpochCommit(id); err != nil {
		return err
	}
	c.epochDoneLocked(false)
	return nil
}

// EpochAbort discards the staged state and every unflushed dirty extent
// of the abandoned collective.
func (c *Cache) EpochAbort(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eb == nil {
		return storage.ErrNoEpochs
	}
	err := c.eb.EpochAbort(id)
	c.epochDoneLocked(true)
	return err
}

// EpochEnd ends staging mode locally (non-committing participant).
func (c *Cache) EpochEnd(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eb == nil {
		return
	}
	c.eb.EpochEnd(id)
	c.epochDoneLocked(false)
}

func (c *Cache) epochDoneLocked(abort bool) {
	c.epoch = 0
	c.sealed = 0
	if abort {
		// The collective failed: its unflushed writes are abandoned with
		// it, and its flushed-but-staged overlays no longer match any
		// inner state.
		c.ext = nil
		c.dirtyBytes = 0
		c.mDirty.Set(0)
		return
	}
	// Committed (or ended after a peer's commit): the retained clean
	// overlays now equal the inner bytes — drop them to bound memory.
	c.dropCleanLocked()
}

// ---- extent bookkeeping ----

// insertLocked installs [off, off+len(data)) as a new extent, splitting
// and overwriting whatever it overlaps, then coalesces adjacent extents
// of equal dirtiness.  data must be owned by the cache.
func (c *Cache) insertLocked(off int64, data []byte, dirty bool) {
	end := off + int64(len(data))
	if c.ra != nil && dirty {
		// Read-your-writes vs read-ahead: a prefetched block overlapping
		// the new write is stale the moment the write is absorbed.
		if c.ra.dropOverlap(off, end) {
			c.stats.Invalidations++
			c.mInval.Inc()
			if c.tr.Enabled() {
				c.tr.Instant(trace.PhaseCacheInvalidate, 0, end-off, "overlapping write")
			}
		}
	}
	i := sort.Search(len(c.ext), func(k int) bool { return c.ext[k].end() > off })
	j := i
	for j < len(c.ext) && c.ext[j].off < end {
		j++
	}
	var repl []extent
	if i < j {
		if first := c.ext[i]; first.off < off {
			repl = append(repl, extent{first.off, append([]byte(nil), first.data[:off-first.off]...), first.dirty})
		}
	}
	repl = append(repl, extent{off, data, dirty})
	if i < j {
		if last := c.ext[j-1]; last.end() > end {
			repl = append(repl, extent{end, append([]byte(nil), last.data[end-last.off:]...), last.dirty})
		}
	}
	for _, e := range c.ext[i:j] {
		if e.dirty {
			c.dirtyBytes -= int64(len(e.data))
		}
	}
	for _, e := range repl {
		if e.dirty {
			c.dirtyBytes += int64(len(e.data))
		}
	}
	c.ext = append(c.ext[:i:i], append(repl, c.ext[j:]...)...)
	c.coalesceLocked()
}

// coalesceLocked merges adjacent extents of equal dirtiness so flushes
// see the largest possible contiguous segments.
func (c *Cache) coalesceLocked() {
	out := c.ext[:0]
	for _, e := range c.ext {
		if n := len(out); n > 0 {
			p := &out[n-1]
			if p.dirty == e.dirty && p.end() == e.off {
				p.data = append(p.data, e.data...)
				continue
			}
		}
		out = append(out, e)
	}
	c.ext = out
}

// flushLocked writes every dirty extent to the inner backend in one
// vectored batch.  During an active epoch the flushed extents are kept
// as clean overlays (the staged bytes are invisible to inner reads);
// otherwise they are dropped.
func (c *Cache) flushLocked() error {
	if c.dirtyBytes == 0 {
		return nil
	}
	if c.checked && c.sealed != 0 {
		panic(fmt.Sprintf("session: flush of %d dirty bytes between epoch %d seal and commit (write-behind reorder across seal)", c.dirtyBytes, c.sealed))
	}
	var segs []storage.Segment
	var hi int64
	for _, e := range c.ext {
		if e.dirty {
			segs = append(segs, storage.Segment{Off: e.off, Buf: e.data})
			if e.end() > hi {
				hi = e.end()
			}
		}
	}
	sp := c.tr.BeginIO(trace.PhaseCacheFlush, 0, c.dirtyBytes)
	err := storage.WriteAtv(c.inner, segs)
	sp.End()
	if err != nil {
		return err
	}
	c.stats.Flushes++
	c.stats.FlushedBytes += c.dirtyBytes
	c.mFlushes.Inc()
	c.mFlushedB.Add(c.dirtyBytes)
	if c.epoch != 0 {
		for i := range c.ext {
			c.ext[i].dirty = false
		}
		c.coalesceLocked()
	} else {
		out := c.ext[:0]
		for _, e := range c.ext {
			if !e.dirty {
				out = append(out, e)
			}
		}
		c.ext = out
	}
	c.dirtyBytes = 0
	c.mDirty.Set(0)
	if hi > c.innerSize {
		// The flush extends the inner store (a staged flush only once
		// the commit applies it, but the retained overlays cover the
		// range until then).
		c.innerSize = hi
	}
	return nil
}

func (c *Cache) dropCleanLocked() {
	out := c.ext[:0]
	for _, e := range c.ext {
		if e.dirty {
			out = append(out, e)
		}
	}
	c.ext = out
}

// serveLocked fills p (entirely within the logical size) from cached
// extents, read-ahead blocks, and the inner backend.
func (c *Cache) serveLocked(p []byte, off int64) error {
	end := off + int64(len(p))
	cur := off
	i := sort.Search(len(c.ext), func(k int) bool { return c.ext[k].end() > off })
	for cur < end {
		if i < len(c.ext) && c.ext[i].off < end {
			e := c.ext[i]
			if e.off > cur {
				if err := c.readGapLocked(p[cur-off:e.off-off], cur); err != nil {
					return err
				}
				cur = e.off
			}
			lo := cur - e.off
			hi := e.end()
			if hi > end {
				hi = end
			}
			n := copy(p[cur-off:], e.data[lo:hi-e.off])
			c.stats.OverlayBytes += int64(n)
			cur += int64(n)
			i++
		} else {
			if err := c.readGapLocked(p[cur-off:], cur); err != nil {
				return err
			}
			cur = end
		}
	}
	return nil
}

// readGapLocked reads one uncached range: from a prefetched block when
// read-ahead has it, else from the inner backend (zero-filling past the
// inner end — the bytes are within the logical size, so they are holes,
// not EOF).  Either way the access feeds the stream detector.
func (c *Cache) readGapLocked(dst []byte, off int64) error {
	if c.ra != nil && c.ra.serve(dst, off) {
		c.stats.Hits++
		c.mHits.Inc()
		if c.tr.Enabled() {
			c.tr.Instant(trace.PhaseCacheHit, 0, int64(len(dst)), "")
		}
		c.maybePrefetchLocked(off, int64(len(dst)))
		return nil
	}
	c.stats.Misses++
	c.mMisses.Inc()
	if err := storage.ReadFull(c.inner, dst, off); err != nil {
		return err
	}
	c.maybePrefetchLocked(off, int64(len(dst)))
	return nil
}

// maybePrefetchLocked feeds the access to the stream detector and, once
// a stride is established, fetches the next blocks of the stream in one
// vectored read.  Prefetch is best-effort: a failing inner read only
// means the demand read will pay for (and surface) the error later.
func (c *Cache) maybePrefetchLocked(off, n int64) {
	if c.ra == nil {
		return
	}
	stride, ok := c.ra.observe(off, n)
	if !ok || stride <= 0 {
		return
	}
	var segs []storage.Segment
	var blocks []rablock
	var total int64
	for k := 1; k <= c.ra.depth; k++ {
		bo := off + stride*int64(k)
		if bo >= c.innerSize {
			break
		}
		if c.ra.covered(bo) {
			continue
		}
		bn := n
		if bo+bn > c.innerSize {
			bn = c.innerSize - bo
		}
		buf := make([]byte, bn)
		segs = append(segs, storage.Segment{Off: bo, Buf: buf})
		blocks = append(blocks, rablock{off: bo, data: buf})
		total += bn
	}
	if len(segs) == 0 {
		return
	}
	sp := c.tr.BeginIO(trace.PhaseCachePrefetch, 0, total)
	err := storage.ReadAtv(c.inner, segs)
	sp.End()
	if err != nil {
		return
	}
	c.ra.add(blocks)
	c.stats.Prefetches++
	c.stats.PrefetchedBytes += total
	c.mPrefetchedB.Add(total)
}

// ---- read-ahead: stream detection and block store ----

const raStreams = 4

// stream is one detected (or forming) strided read sequence.
type stream struct {
	lastOff int64
	length  int64
	stride  int64 // 0 while forming
	hits    int
	used    bool
}

// rablock is one prefetched block.
type rablock struct {
	off  int64
	data []byte
}

func (b rablock) end() int64 { return b.off + int64(len(b.data)) }

// readAhead detects up to raStreams concurrent strided read streams —
// several IOP ranks of one session each walk their own file-domain
// windows, so a single-stream detector would see noise — and stores the
// prefetched blocks until they are consumed.
type readAhead struct {
	depth   int
	streams [raStreams]stream
	clock   int
	blocks  []rablock
}

// observe feeds one gap access to the detector.  It returns a positive
// stride once the owning stream has confirmed it twice in a row.
func (r *readAhead) observe(off, n int64) (int64, bool) {
	for i := range r.streams {
		s := &r.streams[i]
		if !s.used {
			continue
		}
		if s.stride != 0 && off == s.lastOff+s.stride && n == s.length {
			s.lastOff = off
			s.hits++
			return s.stride, s.hits >= 2
		}
		if s.stride == 0 && n == s.length && off > s.lastOff {
			s.stride = off - s.lastOff
			s.lastOff = off
			s.hits = 1
			return 0, false
		}
	}
	r.streams[r.clock%raStreams] = stream{lastOff: off, length: n, used: true}
	r.clock++
	return 0, false
}

// serve copies a fully-contained prefetched range into dst and drops
// blocks whose tail has been consumed.
func (r *readAhead) serve(dst []byte, off int64) bool {
	end := off + int64(len(dst))
	for i, b := range r.blocks {
		if b.off <= off && end <= b.end() {
			copy(dst, b.data[off-b.off:end-b.off])
			if end == b.end() {
				r.blocks = append(r.blocks[:i], r.blocks[i+1:]...)
			}
			return true
		}
	}
	return false
}

// add stores freshly prefetched blocks.
func (r *readAhead) add(blocks []rablock) {
	r.blocks = append(r.blocks, blocks...)
}

// covered reports whether a block starting at off is already stored.
func (r *readAhead) covered(off int64) bool {
	for _, b := range r.blocks {
		if b.off <= off && off < b.end() {
			return true
		}
	}
	return false
}

// dropOverlap removes blocks overlapping [lo, hi); it reports whether
// any were dropped.
func (r *readAhead) dropOverlap(lo, hi int64) bool {
	out := r.blocks[:0]
	dropped := false
	for _, b := range r.blocks {
		if b.off < hi && lo < b.end() {
			dropped = true
			continue
		}
		out = append(out, b)
	}
	r.blocks = out
	return dropped
}

// reset drops all blocks and streams; it reports whether anything was
// held.
func (r *readAhead) reset() bool {
	had := len(r.blocks) > 0 || r.clock > 0
	r.blocks = nil
	r.streams = [raStreams]stream{}
	r.clock = 0
	return had
}
