package session

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/ioserver"
	"repro/internal/storage"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// Satellite: the concurrent-session correctness matrix.  N sessions ×
// {write-behind on, off} × {loopback worlds over Mem, TCP worlds over
// Mem, loopback worlds over disjoint regions of one 3-server striped
// tier} — every session's final file image must be byte-identical to
// the flat per-file oracle, with no goroutine or fd leaks, plus a
// chaos variant with seeded storage.Chaos under the cache.

// tier starts n in-process I/O servers over Mem stripes.
func tier(t *testing.T, unit int64, n int, opts ioserver.ClientOptions) (*ioserver.Striped, func()) {
	t.Helper()
	geom := storage.StripeGeom{Unit: unit, Count: n}
	addrs := make([]string, n)
	servers := make([]*ioserver.Server, n)
	for i := 0; i < n; i++ {
		srv, err := ioserver.New(ioserver.Config{Backend: storage.NewMem(), Geom: geom, Index: i})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		servers[i] = srv
		go srv.Serve(ln)
	}
	agg, err := ioserver.NewStriped(unit, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return agg, func() {
		agg.Close()
		for _, srv := range servers {
			srv.Close()
		}
	}
}

func TestConcurrentSessionMatrix(t *testing.T) {
	const (
		nSessions  = 3
		ranks      = 2
		blockcount = 16
		blocklen   = 8
	)
	fileSize := int64(ranks * blockcount * blocklen)
	oracle := oracleBytes(t, ranks, blockcount, blocklen)

	type fixture struct {
		// backend returns session i's backend; flat reads back its
		// final file image after all sessions closed.
		backend func(i int) storage.Backend
		flat    func(i int) []byte
		world   func(i int) []transport.Transport
		cleanup func()
	}

	fabrics := []struct {
		name  string
		setup func(t *testing.T) fixture
	}{
		{"loopback-mem", func(t *testing.T) fixture {
			bes := make([]storage.Backend, nSessions)
			for i := range bes {
				bes[i] = storage.NewMem()
			}
			return fixture{
				backend: func(i int) storage.Backend { return bes[i] },
				flat:    func(i int) []byte { return flatten(t, bes[i]) },
				world:   func(int) []transport.Transport { return nil },
				cleanup: func() {},
			}
		}},
		{"tcp-mem", func(t *testing.T) fixture {
			bes := make([]storage.Backend, nSessions)
			for i := range bes {
				bes[i] = storage.NewMem()
			}
			return fixture{
				backend: func(i int) storage.Backend { return bes[i] },
				flat:    func(i int) []byte { return flatten(t, bes[i]) },
				world: func(int) []transport.Transport {
					eps, err := transport.NewLocalTCPWorld(ranks, transport.TCPConfig{Deadline: testStall})
					if err != nil {
						t.Fatal(err)
					}
					return eps
				},
				cleanup: func() {},
			}
		}},
		{"striped3-regions", func(t *testing.T) fixture {
			// One shared 3-server tier with a per-server connection
			// pool; each session owns a disjoint region.  (Regions carry
			// no epoch capability, so concurrent sessions never race the
			// tier's one-epoch-in-flight commit protocol.)
			agg, stop := tier(t, 64, 3, ioserver.ClientOptions{Conns: 2})
			if err := agg.Truncate(fileSize * nSessions); err != nil {
				t.Fatal(err)
			}
			return fixture{
				backend: func(i int) storage.Backend {
					reg, err := storage.NewRegion(agg, int64(i)*fileSize, fileSize)
					if err != nil {
						t.Fatal(err)
					}
					return reg
				},
				flat: func(i int) []byte {
					buf := make([]byte, fileSize)
					if err := storage.ReadAtv(agg, []storage.Segment{{Off: int64(i) * fileSize, Buf: buf}}); err != nil {
						t.Fatal(err)
					}
					return buf
				},
				world:   func(int) []transport.Transport { return nil },
				cleanup: stop,
			}
		}},
	}

	for _, fab := range fabrics {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("%s/cache=%v", fab.name, cached)
			t.Run(name, func(t *testing.T) {
				check := testutil.LeakCheck(t)
				fdBefore := testutil.FDCount(t)

				fx := fab.setup(t)
				sv := NewService(Options{Workers: 4})
				var wg sync.WaitGroup
				errs := make([]error, nSessions)
				for i := 0; i < nSessions; i++ {
					so := SessionOptions{
						Ranks:        ranks,
						World:        fx.world(i),
						StallTimeout: testStall,
					}
					if cached {
						so.Cache = &CacheOptions{Checked: true}
					}
					s, err := sv.Open(fmt.Sprintf("s%d", i), fx.backend(i), so)
					if err != nil {
						t.Fatal(err)
					}
					wg.Add(1)
					go func(i int, s *Session) {
						defer wg.Done()
						if err := sessionWorkload(s, ranks, blockcount, blocklen); err != nil {
							errs[i] = err
							return
						}
						errs[i] = s.Close()
					}(i, s)
				}
				wg.Wait()
				for i, err := range errs {
					if err != nil {
						t.Fatalf("session %d: %v", i, err)
					}
				}
				if err := sv.Close(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < nSessions; i++ {
					if !bytes.Equal(fx.flat(i), oracle) {
						t.Fatalf("session %d: file image differs from flat oracle", i)
					}
				}
				fx.cleanup()

				check()
				if fdAfter := testutil.FDCount(t); fdAfter > fdBefore {
					t.Fatalf("fd leak: %d before, %d after", fdBefore, fdAfter)
				}
			})
		}
	}
}

// TestConcurrentSessionsChaos reruns the cached loopback configuration
// with seeded transient storage chaos under each session's cache
// (cache → resilient retry → chaos → mem): the write-behind and
// read-ahead paths must stay byte-identical under injected faults.
func TestConcurrentSessionsChaos(t *testing.T) {
	const (
		nSessions  = 3
		ranks      = 2
		blockcount = 16
		blocklen   = 8
	)
	defer testutil.LeakCheck(t)()
	oracle := oracleBytes(t, ranks, blockcount, blocklen)

	sv := NewService(Options{Workers: 4})
	mems := make([]*storage.Mem, nSessions)
	var wg sync.WaitGroup
	errs := make([]error, nSessions)
	for i := 0; i < nSessions; i++ {
		mems[i] = storage.NewMem()
		chaotic := storage.NewChaos(int64(1000+i), mems[i], storage.TransientOnly())
		be := storage.NewResilient(chaotic, storage.ResilientConfig{Seed: int64(i + 1)})
		s, err := sv.Open(fmt.Sprintf("c%d", i), be, SessionOptions{
			Ranks:        ranks,
			Cache:        &CacheOptions{Checked: true},
			StallTimeout: testStall,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			if err := sessionWorkload(s, ranks, blockcount, blocklen); err != nil {
				errs[i] = err
				return
			}
			errs[i] = s.Close()
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nSessions; i++ {
		if got := flatten(t, mems[i]); !bytes.Equal(got, oracle) {
			t.Fatalf("chaos session %d: file image differs from flat oracle", i)
		}
	}
}
