package session

import (
	"bytes"
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

// countBackend counts scalar operations reaching the inner backend.  It
// deliberately does not implement storage.Vectored, so the vectored
// helpers fall back to one counted call per segment.
type countBackend struct {
	storage.Backend
	reads, writes atomic.Int64
}

func (b *countBackend) ReadAt(p []byte, off int64) (int, error) {
	b.reads.Add(1)
	return b.Backend.ReadAt(p, off)
}

func (b *countBackend) WriteAt(p []byte, off int64) (int, error) {
	b.writes.Add(1)
	return b.Backend.WriteAt(p, off)
}

func TestCacheWriteBehindAbsorbsAndCoalesces(t *testing.T) {
	inner := &countBackend{Backend: storage.NewMem()}
	c := NewCache(inner, CacheOptions{ReadAhead: -1})

	// Sixteen adjacent 64-byte writes, out of order pairs: all absorbed,
	// nothing reaches the inner backend.
	want := make([]byte, 16*64)
	for i := range want {
		want[i] = byte(i % 251)
	}
	for _, i := range []int{1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14} {
		if _, err := c.WriteAt(want[i*64:(i+1)*64], int64(i*64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.writes.Load(); got != 0 {
		t.Fatalf("write-behind leaked %d writes before flush", got)
	}
	if c.Size() != int64(len(want)) {
		t.Fatalf("logical size %d, want %d", c.Size(), len(want))
	}

	// The flush coalesces all sixteen into one inner write.
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := inner.writes.Load(); got != 1 {
		t.Fatalf("flush issued %d inner writes, want 1 (coalesced)", got)
	}
	got := make([]byte, len(want))
	if _, err := inner.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("flushed bytes differ from written bytes")
	}
	st := c.Stats()
	if st.AbsorbedBytes != int64(len(want)) || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheReadYourWrites(t *testing.T) {
	inner := storage.NewMem()
	if _, err := inner.WriteAt(bytes.Repeat([]byte{0xAA}, 256), 0); err != nil {
		t.Fatal(err)
	}
	c := NewCache(inner, CacheOptions{ReadAhead: -1})

	// Overwrite the middle, unflushed; a read spanning cached and
	// uncached ranges must mix the overlay with the inner bytes.
	if _, err := c.WriteAt(bytes.Repeat([]byte{0xBB}, 64), 96); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0xAA)
		if i >= 96 && i < 160 {
			want = 0xBB
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
	if st := c.Stats(); st.OverlayBytes != 64 {
		t.Fatalf("overlay bytes %d, want 64", st.OverlayBytes)
	}
}

func TestCachePressureFlush(t *testing.T) {
	inner := &countBackend{Backend: storage.NewMem()}
	c := NewCache(inner, CacheOptions{MaxDirty: 128, ReadAhead: -1})
	for i := 0; i < 4; i++ {
		if _, err := c.WriteAt(make([]byte, 64), int64(i*64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.writes.Load(); got == 0 {
		t.Fatal("pressure watermark never flushed")
	}
	if st := c.Stats(); st.Flushes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEOFSemantics(t *testing.T) {
	// The cache must be indistinguishable from Mem at the edges.
	mem := storage.NewMem()
	c := NewCache(storage.NewMem(), CacheOptions{ReadAhead: -1})
	for _, b := range []storage.Backend{mem, c} {
		if _, err := b.WriteAt([]byte{1, 2, 3, 4}, 0); err != nil {
			t.Fatal(err)
		}
	}
	probe := func(b storage.Backend, off int64, n int) (int, error) {
		return b.ReadAt(make([]byte, n), off)
	}
	for _, tc := range []struct {
		off int64
		n   int
	}{{0, 4}, {0, 8}, {2, 4}, {4, 1}, {6, 2}, {0, 0}} {
		wn, werr := probe(mem, tc.off, tc.n)
		gn, gerr := probe(c, tc.off, tc.n)
		if wn != gn || (werr == nil) != (gerr == nil) {
			t.Fatalf("ReadAt(off=%d,n=%d): cache (%d,%v) vs mem (%d,%v)", tc.off, tc.n, gn, gerr, wn, werr)
		}
	}
}

func TestCacheReadAheadStride(t *testing.T) {
	inner := &countBackend{Backend: storage.NewMem()}
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 13 % 251)
	}
	if _, err := inner.Backend.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	c := NewCache(inner, CacheOptions{ReadAhead: 8})

	// A strided stream: 128-byte blocks every 1 KiB.  After the stride
	// is confirmed, most blocks must come from prefetched batches.
	const blocks = 32
	for i := 0; i < blocks; i++ {
		off := int64(i * 1024)
		got := make([]byte, 128)
		if _, err := c.ReadAt(got, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[off:off+128]) {
			t.Fatalf("block %d differs", i)
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Prefetches == 0 {
		t.Fatalf("no read-ahead activity: %+v", st)
	}
	// Demand misses: the first few accesses before the stride was
	// confirmed, plus nothing else; the inner read count is the misses
	// plus one vectored-fallback read per prefetched block.
	if st.Hits < blocks/2 {
		t.Fatalf("only %d/%d reads hit the read-ahead: %+v", st.Hits, blocks, st)
	}
}

func TestCacheReadAheadInvalidation(t *testing.T) {
	inner := storage.NewMem()
	if _, err := inner.WriteAt(make([]byte, 32<<10), 0); err != nil {
		t.Fatal(err)
	}
	c := NewCache(inner, CacheOptions{ReadAhead: 4})
	buf := make([]byte, 128)
	for i := 0; i < 8; i++ {
		if _, err := c.ReadAt(buf, int64(i*1024)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Prefetches == 0 {
		t.Fatal("stream never detected")
	}
	// An overlapping write must invalidate the prefetched blocks: the
	// next read of that range sees the new bytes.
	pat := bytes.Repeat([]byte{0xEE}, 128)
	if _, err := c.WriteAt(pat, 8*1024); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if _, err := c.ReadAt(got, 8*1024); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("read-after-write returned stale prefetched bytes")
	}
	// A view change drops everything.
	c.Invalidate()
	if got := c.Stats().Invalidations; got == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestCacheTruncate(t *testing.T) {
	c := NewCache(storage.NewMem(), CacheOptions{ReadAhead: -1})
	if _, err := c.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate(128); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 128 {
		t.Fatalf("size after truncate = %d, want 128", c.Size())
	}
	if _, err := c.ReadAt(make([]byte, 1), 128); err != io.EOF {
		t.Fatalf("read past truncation: %v, want EOF", err)
	}
}

func TestCacheVectored(t *testing.T) {
	c := NewCache(storage.NewMem(), CacheOptions{ReadAhead: -1})
	segs := []storage.Segment{
		{Off: 0, Buf: []byte{1, 2}},
		{Off: 10, Buf: []byte{3, 4}},
	}
	if err := c.WriteAtv(segs); err != nil {
		t.Fatal(err)
	}
	got := []storage.Segment{
		{Off: 0, Buf: make([]byte, 2)},
		{Off: 8, Buf: make([]byte, 4)}, // spans a hole and cached bytes
	}
	if err := c.ReadAtv(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0].Buf, []byte{1, 2}) || !bytes.Equal(got[1].Buf, []byte{0, 0, 3, 4}) {
		t.Fatalf("vectored read = %v / %v", got[0].Buf, got[1].Buf)
	}
}
