package session

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Options configures the shared resources of a Service.
type Options struct {
	// Workers bounds the jobs in flight across all sessions (the shared
	// IOP/worker pool size).  Default 4.
	Workers int
	// MaxQueue bounds the jobs waiting for a slot; arrivals beyond it
	// are rejected with core.ErrRejected.  Default 64.
	MaxQueue int
	// FIFO disables weighted-fair ordering (ablation: admit strictly in
	// arrival order).
	FIFO bool
	// Metrics, when non-nil, exposes the pool gauges and the
	// per-session queue-wait/cache counters on the scrape plane.
	Metrics *obs.Registry
}

// Service is the I/O session front end: it owns the shared worker pool
// and the open sessions.  Open returns a Session over one file backend;
// every collective submitted to any session is admitted onto the shared
// pool by the scheduler.
type Service struct {
	opts  Options
	sched *scheduler

	mAdmitted, mRejected *obs.Counter
	mRunning, mQueued    *obs.Gauge

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool
}

// NewService starts a service with no open sessions.
func NewService(o Options) *Service {
	sv := &Service{
		opts:     o,
		sched:    newScheduler(o.Workers, o.MaxQueue, o.FIFO),
		sessions: make(map[string]*Session),
	}
	if r := o.Metrics; r != nil {
		sv.mAdmitted = r.Counter("session_jobs_admitted_total", "collective jobs admitted onto the shared pool")
		sv.mRejected = r.Counter("session_jobs_rejected_total", "collective jobs rejected by admission control")
		sv.mRunning = r.Gauge("session_pool_running", "jobs holding a pool slot")
		sv.mQueued = r.Gauge("session_pool_queued", "jobs waiting for a pool slot")
	}
	return sv
}

// Close closes every session still open and shuts the service down.
// The first close error wins.
func (sv *Service) Close() error {
	sv.mu.Lock()
	sv.closed = true
	open := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		open = append(open, s)
	}
	sv.mu.Unlock()
	var first error
	for _, s := range open {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SessionOptions configures one session.
type SessionOptions struct {
	// Ranks is the session's world size (APs == IOPs, as everywhere in
	// this repo).  Default 1.
	Ranks int
	// Weight is the session's fair share; a weight-2 session accumulates
	// virtual time half as fast as a weight-1 one.  Default 1.
	Weight int
	// Cache, when non-nil, mounts a write-behind/read-ahead cache
	// between the session's core engine and the backend.
	Cache *CacheOptions
	// Core seeds the session's core options (engine, buffer sizes,
	// ablations).  The service fills in the admission gate and trace.
	Core core.Options
	// World, when non-nil, supplies the session's transport endpoints
	// (len must equal Ranks) — the TCP matrix configs use it.  Default
	// in-process loopback.
	World []transport.Transport
	// Trace, when non-nil, is the session's private collector (worlds
	// must not share tracers across sessions).
	Trace *trace.Collector
	// StallTimeout arms the world's stall watchdog.
	StallTimeout time.Duration
}

// JobFunc is the body of one submitted job, run on every rank of the
// session's world with that rank's file handle.  Collective accesses on
// f go through the shared pool's admission gate.
type JobFunc func(p *mpi.Proc, f *core.File) error

// Job is a submitted job; Wait blocks until every rank finished it.
type Job struct {
	s       *Session
	fn      JobFunc
	errs    []error
	pending atomic.Int32
	done    chan struct{}
}

// Wait returns the first rank's error, or the world's error if the
// world died before the job completed.
func (j *Job) Wait() error {
	select {
	case <-j.done:
		for _, err := range j.errs {
			if err != nil {
				return err
			}
		}
		return nil
	case <-j.s.worldDone:
		return j.s.worldErr()
	}
}

// Session is one open file session: a persistent world of Ranks procs
// holding core file handles over the session's (possibly cached)
// backend, consuming submitted jobs in order.
type Session struct {
	name  string
	sv    *Service
	ranks int

	mount storage.Backend
	cache *Cache // nil when uncached
	sh    *core.Shared

	weight int
	vdone  float64 // virtual finish time; owned by the scheduler's mutex

	mQueueWait *obs.Hist

	jobs      []chan *Job
	ready     chan struct{}
	worldDone chan struct{}
	wErr      error     // world error; written before worldDone closes
	comm      mpi.Stats // world comm totals; valid after worldDone
	closeErr  error     // rank-0 file close error

	statsMu  sync.Mutex
	qw       trace.Histogram
	jobsDone int64
	rejected int64

	mu     sync.Mutex
	closed bool
}

// Open creates a session named name over backend be and starts its
// world.  It returns once every rank holds an open file handle.
func (sv *Service) Open(name string, be storage.Backend, o SessionOptions) (*Session, error) {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	if o.Weight <= 0 {
		o.Weight = 1
	}
	if o.World != nil && len(o.World) != o.Ranks {
		return nil, fmt.Errorf("session: world has %d endpoints for %d ranks", len(o.World), o.Ranks)
	}

	s := &Session{
		name:      name,
		sv:        sv,
		ranks:     o.Ranks,
		weight:    o.Weight,
		mount:     be,
		jobs:      make([]chan *Job, o.Ranks),
		ready:     make(chan struct{}),
		worldDone: make(chan struct{}),
	}
	if o.Cache != nil {
		co := *o.Cache
		co.Metrics = sv.opts.Metrics
		co.Session = name
		// The cache traces under rank index Ranks: ranks 0..Ranks-1 own
		// their tracers single-threadedly, and the cache's mutex
		// serializes its own spans.
		co.Tracer = o.Trace.Tracer(o.Ranks)
		s.cache = NewCache(be, co)
		s.mount = s.cache
	}
	s.sh = core.NewShared(s.mount)
	if r := sv.opts.Metrics; r != nil {
		s.mQueueWait = r.Hist("session_queue_wait_ns", "collective admission queue wait", obs.Label{Key: "session", Value: name})
	}
	for r := range s.jobs {
		s.jobs[r] = make(chan *Job, 32)
	}

	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil, fmt.Errorf("session: service closed")
	}
	if _, dup := sv.sessions[name]; dup {
		sv.mu.Unlock()
		return nil, fmt.Errorf("session: %q already open", name)
	}
	sv.sessions[name] = s
	sv.mu.Unlock()

	copts := o.Core
	copts.Gate = sessionGate{s: s}
	copts.Trace = o.Trace

	eps := o.World
	if eps == nil {
		eps = transport.NewLoopback(o.Ranks)
	}
	go func() {
		comm, err := mpi.RunOver(eps, mpi.RunOptions{
			StallTimeout: o.StallTimeout,
			Trace:        o.Trace,
		}, func(p *mpi.Proc) {
			s.rankMain(p, copts)
		})
		s.comm, s.wErr = comm, err
		close(s.worldDone)
	}()

	select {
	case <-s.ready:
		return s, nil
	case <-s.worldDone:
		sv.drop(name)
		return nil, s.worldErr()
	}
}

func (sv *Service) drop(name string) {
	sv.mu.Lock()
	delete(sv.sessions, name)
	sv.mu.Unlock()
}

func (s *Session) worldErr() error {
	if s.wErr != nil {
		return s.wErr
	}
	return fmt.Errorf("session %q: world exited", s.name)
}

// rankMain is one rank's life: open the file handle, consume jobs until
// the session closes, close the handle (rank 0's close syncs, which
// flushes the cache).
func (s *Session) rankMain(p *mpi.Proc, copts core.Options) {
	f, err := core.Open(p, s.sh, copts)
	if err != nil {
		panic(fmt.Sprintf("session %q rank %d: open: %v", s.name, p.Rank(), err))
	}
	if p.Rank() == 0 {
		close(s.ready)
	}
	for jb := range s.jobs[p.Rank()] {
		jb.errs[p.Rank()] = jb.fn(p, f)
		if jb.pending.Add(-1) == 0 {
			close(jb.done)
		}
	}
	if err := f.Close(); err != nil && p.Rank() == 0 {
		s.closeErr = err
	}
}

// Submit enqueues a job on every rank of the session's world and
// returns immediately; Wait blocks for completion.  Jobs run in
// submission order.
func (s *Session) Submit(fn JobFunc) (*Job, error) {
	jb := &Job{s: s, fn: fn, errs: make([]error, s.ranks), done: make(chan struct{})}
	jb.pending.Store(int32(s.ranks))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session %q: closed", s.name)
	}
	for r := range s.jobs {
		select {
		case s.jobs[r] <- jb:
		case <-s.worldDone:
			return nil, s.worldErr()
		}
	}
	s.statsMu.Lock()
	s.jobsDone++
	s.statsMu.Unlock()
	return jb, nil
}

// Run submits fn and waits for it.
func (s *Session) Run(fn JobFunc) error {
	jb, err := s.Submit(fn)
	if err != nil {
		return err
	}
	return jb.Wait()
}

// SetView installs a fileview on every rank's handle and invalidates
// the cache's read-ahead state (the old pattern predicts nothing).
func (s *Session) SetView(disp int64, etype, filetype *datatype.Type) error {
	err := s.Run(func(p *mpi.Proc, f *core.File) error {
		return f.SetView(disp, etype, filetype)
	})
	if s.cache != nil {
		s.cache.Invalidate()
	}
	return err
}

// WriteAtAll runs one collective write; buf supplies each rank's data.
func (s *Session) WriteAtAll(off, count int64, memtype *datatype.Type, buf func(rank int) []byte) error {
	return s.Run(func(p *mpi.Proc, f *core.File) error {
		_, err := f.WriteAtAll(off, count, memtype, buf(p.Rank()))
		return err
	})
}

// ReadAtAll runs one collective read into each rank's buffer.
func (s *Session) ReadAtAll(off, count int64, memtype *datatype.Type, buf func(rank int) []byte) error {
	return s.Run(func(p *mpi.Proc, f *core.File) error {
		_, err := f.ReadAtAll(off, count, memtype, buf(p.Rank()))
		return err
	})
}

// Sync flushes the session's cache and syncs the backend.
func (s *Session) Sync() error {
	return s.Run(func(p *mpi.Proc, f *core.File) error {
		p.Barrier()
		var err error
		if p.Rank() == 0 {
			err = s.mount.Sync()
		}
		p.Barrier()
		return err
	})
}

// Truncate pre-sizes the session's file.
func (s *Session) Truncate(n int64) error {
	return s.Run(func(p *mpi.Proc, f *core.File) error {
		p.Barrier()
		var err error
		if p.Rank() == 0 {
			err = s.mount.Truncate(n)
		}
		p.Barrier()
		return err
	})
}

// Close drains the session's world, flushes the cache (via the rank-0
// file close sync), and detaches the session from the service.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.worldDone
		return s.wErr
	}
	s.closed = true
	for r := range s.jobs {
		close(s.jobs[r])
	}
	s.mu.Unlock()
	<-s.worldDone
	s.sv.drop(s.name)
	if s.wErr != nil {
		return s.wErr
	}
	return s.closeErr
}

// observeQueueWait records one admission wait (called by the scheduler
// from this session's rank-0 goroutine).
func (s *Session) observeQueueWait(d time.Duration) {
	s.statsMu.Lock()
	s.qw.Add(d.Nanoseconds())
	s.statsMu.Unlock()
	s.mQueueWait.Observe(d.Nanoseconds())
}

func (s *Session) noteRejected() {
	s.statsMu.Lock()
	s.rejected++
	s.statsMu.Unlock()
	s.sv.mRejected.Inc()
}

// SessionStats is a point-in-time snapshot of one session's activity.
type SessionStats struct {
	Jobs      int64          // jobs submitted
	Rejected  int64          // collectives bounced by admission control
	QueueWait trace.HistData // admission wait distribution (ns) — the aging histogram
	Cache     CacheStats     // zero when uncached
	Comm      mpi.Stats      // world comm totals; valid after Close
}

// Stats snapshots the session.
func (s *Session) Stats() SessionStats {
	s.statsMu.Lock()
	st := SessionStats{
		Jobs:      s.jobsDone,
		Rejected:  s.rejected,
		QueueWait: s.qw.Data(),
	}
	s.statsMu.Unlock()
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	select {
	case <-s.worldDone:
		st.Comm = s.comm
	default:
	}
	return st
}

// Cache returns the session's cache, nil when uncached.
func (s *Session) Cache() *Cache { return s.cache }
