package fotf

// Cursor is the resumable execution state of one call site over a
// shared, immutable Program.  Collective window loops and sieve loops
// ask for ascending, usually abutting (d0, d1) windows; the cursor
// remembers where the previous window ended (instance and group index)
// so the next CopyRange resumes in O(1) instead of re-searching.  A
// window that does not continue the previous one just repositions with
// a binary search — the cursor is a hint, never a correctness
// requirement.
//
// The zero Cursor is invalid until Reset; Reset with a nil program
// leaves Program() == nil, which callers use to fall back to the
// recursive walk.
type Cursor struct {
	p  *Program
	d  int64 // data offset the previous window ended at
	k  int64 // instance containing d
	gi int   // group index hint within instance k
}

// Reset points the cursor at program p (which may be nil) and rewinds
// it to data offset 0.
func (c *Cursor) Reset(p *Program) {
	c.p = p
	c.d, c.k, c.gi = 0, 0, 0
}

// Program returns the program the cursor executes, nil when unset.
func (c *Cursor) Program() *Program { return c.p }

// CopyRange executes the program over [d0, d1) with Program.CopyRange
// semantics, resuming from the previous window when d0 continues it.
func (c *Cursor) CopyRange(cb, b []byte, d0, d1, bias int64, pack bool) {
	c.p.copyRange(cb, b, d0, d1, bias, pack, c)
}
