// Compiled copy programs: the one-time-compile / many-execute
// counterpart to the recursive Runs walk.
//
// Runs already enumerates a datatype's contiguous runs as groups of
// evenly spaced runs, but it pays tree recursion, per-node division
// chains, and one closure dispatch per group on every window it is
// asked for.  A Program does that work once: Compile materializes the
// run structure of one (datatype, extent) instance into a flat array of
// {base, blocklen, stride, count} groups — coalescing runs that the
// tree shape hides from the walk (abutting runs merge, arithmetic
// progressions of equal-length runs merge across block and member
// boundaries) — and selects a width-specialized copy kernel per group
// at compile time.  Execution over a data window [d0, d1) is then a
// prefix-sum search plus tight batch loops with no tree in sight, and a
// Cursor resumes sequential windows in O(1).
//
// Programs are semantically equivalent to the walk: byte-identical
// pack/unpack for every window, including windows that split groups or
// elements (a split never sends a partial element through a width
// kernel — partial head/tail runs always take the byte path).  The
// differential layer (program_test.go, FuzzProgramVsWalk) pins this.
package fotf

import "repro/internal/datatype"

// Compile limits.  maxProgramBlocks bounds the walk done at compile
// time (Blocks is the ol-list length, an upper bound on emitted
// groups); maxProgramGroups bounds the memory a compiled program may
// hold.  Types beyond either limit decline compilation — Compile
// returns nil and callers fall back to the walk — so a hostile tree can
// neither over-allocate nor stall the compiler.
const (
	maxProgramBlocks = 1 << 22
	maxProgramGroups = 1 << 16
)

// progGroup is one compiled group: count runs of blocklen bytes, run i
// at buffer offset base + i*stride relative to the instance origin.
// Groups cover the instance's data bytes gaplessly in type-map order,
// so the data offset of a group is the prefix sum of the group bytes
// before it (Program.cum).
type progGroup struct {
	base     int64
	blocklen int64
	stride   int64
	count    int64
	kern     uint8 // copy kernel, selected at compile time
}

// Program is the compiled run program of one datatype: the flat-array
// form of everything Runs can emit for a single instance, tiled at the
// type's extent exactly like the walk tiles it.
type Program struct {
	t      *datatype.Type
	size   int64 // data bytes per instance
	ext    int64 // tiling extent
	groups []progGroup
	cum    []int64 // cum[i] = data offset of group i; cum[len(groups)] = size
	bad    bool    // compile overflowed maxProgramGroups
}

// Compile builds the run program of t, or returns nil when t holds no
// data or is too large to compile profitably (the caller then uses the
// recursive walk).  The returned Program is immutable and safe for
// concurrent use; per-call-site state lives in Cursor.
func Compile(t *datatype.Type) *Program {
	if t == nil || t.Size() <= 0 || t.Blocks() > maxProgramBlocks {
		return nil
	}
	p := &Program{t: t, size: t.Size(), ext: t.Extent()}
	Runs(t, 0, p.size, p.add)
	if p.bad {
		return nil
	}
	p.cum = make([]int64, len(p.groups)+1)
	for i := range p.groups {
		g := &p.groups[i]
		g.kern = kernelFor(g.blocklen)
		p.cum[i+1] = p.cum[i] + g.blocklen*g.count
	}
	if p.cum[len(p.groups)] != p.size {
		// Defensive: the walk's emissions must tile the data range
		// exactly; anything else would corrupt window positioning.
		return nil
	}
	return p
}

// add is the compile-time emit hook: it normalizes one walked group and
// coalesces it with the program tail.  Data offsets are implied by
// emission order (Runs covers [0, size) gaplessly in data order), so
// only buffer geometry needs checking.
func (p *Program) add(bufOff, _ /* dataOff */, runLen, stride, n int64) {
	if p.bad {
		return
	}
	// Runs that abut in the buffer are one contiguous run: data always
	// abuts within a group, so stride == runLen collapses the group.
	if n == 1 || stride == runLen {
		runLen, stride, n = runLen*n, 0, 1
	}
	if len(p.groups) > 0 {
		g := &p.groups[len(p.groups)-1]
		switch {
		case g.count == 1 && n == 1 && g.base+g.blocklen == bufOff:
			// Two single runs that abut (e.g. across a block or struct
			// member boundary the tree keeps apart): one longer run.
			g.blocklen += runLen
			return
		case n == 1 && g.blocklen == runLen && g.count == 1 && bufOff > g.base+g.blocklen:
			// Two equal-length runs start an arithmetic progression.
			g.stride = bufOff - g.base
			g.count = 2
			return
		case n == 1 && g.blocklen == runLen && g.count > 1 && bufOff == g.base+g.count*g.stride:
			// A single run continues the tail group's progression.
			g.count++
			return
		case n > 1 && g.blocklen == runLen && g.count == 1 && bufOff == g.base+stride:
			// The tail single run is the head of this incoming group.
			g.stride = stride
			g.count = 1 + n
			return
		case n > 1 && g.blocklen == runLen && g.count > 1 && g.stride == stride && bufOff == g.base+g.count*g.stride:
			// Two groups with identical geometry, phase-aligned: merge.
			g.count += n
			return
		}
	}
	if len(p.groups) >= maxProgramGroups {
		p.bad = true
		return
	}
	p.groups = append(p.groups, progGroup{base: bufOff, blocklen: runLen, stride: stride, count: n})
}

// Size reports the data bytes of one instance.
func (p *Program) Size() int64 { return p.size }

// Extent reports the tiling extent.
func (p *Program) Extent() int64 { return p.ext }

// Groups reports the number of compiled run groups — after coalescing,
// at most (and often far below) the type's Blocks().
func (p *Program) Groups() int {
	if p == nil {
		return 0
	}
	return len(p.groups)
}

// findGroup returns the index of the group containing instance-local
// data offset d (0 <= d < size): the largest i with cum[i] <= d.
func (p *Program) findGroup(d int64) int {
	lo, hi := 0, len(p.groups)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if p.cum[mid] <= d {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// CopyRange moves the data bytes [d0, d1) of the tiled type between the
// typed buffer b and the contiguous buffer c, with exactly the
// semantics of the package-level CopyRange: run at buffer offset o
// lands at b[o-bias], data byte d lands at c[d-d0], pack=true copies
// b→c.  Positioning costs one binary search; the copy itself is the
// compiled group array driven through the width kernels.
func (p *Program) CopyRange(c, b []byte, d0, d1, bias int64, pack bool) {
	p.copyRange(c, b, d0, d1, bias, pack, nil)
}

func (p *Program) copyRange(c, b []byte, d0, d1, bias int64, pack bool, cur *Cursor) {
	if d1 <= d0 {
		return
	}
	size := p.size
	k0 := d0 / size
	k1 := (d1 - 1) / size
	lo0 := d0 - k0*size
	var gi int
	if cur != nil && cur.d == d0 && cur.k == k0 {
		// Resume: the saved index is at most one group past the one
		// containing lo0 (the previous window may have ended exactly on
		// its boundary), and never more than one behind.
		gi = cur.gi
		for gi > 0 && p.cum[gi] > lo0 {
			gi--
		}
		for p.cum[gi+1] <= lo0 {
			gi++
		}
	} else {
		gi = p.findGroup(lo0)
	}
	for k := k0; k <= k1; k++ {
		lo, hi := int64(0), size
		if k == k0 {
			lo = lo0
		}
		if k == k1 {
			hi = d1 - k*size
		}
		org := k*p.ext - bias
		coff := k*size - d0 // c index of this instance's data byte 0
		for ; gi < len(p.groups) && p.cum[gi] < hi; gi++ {
			g := &p.groups[gi]
			glo := lo - p.cum[gi]
			if glo < 0 {
				glo = 0
			}
			ghi := hi - p.cum[gi]
			if gb := g.blocklen * g.count; ghi > gb {
				ghi = gb
			}
			execGroup(c[coff+p.cum[gi]+glo:], b, org+g.base, g, glo, ghi, pack)
		}
		if k < k1 {
			gi = 0
		}
	}
	if cur != nil {
		cur.d = d1
		cur.k = d1 / size
		if cur.k != k1 {
			cur.gi = 0
		} else if gi < len(p.groups) {
			cur.gi = gi
		} else {
			cur.gi = len(p.groups) - 1
		}
	}
}

// execGroup copies the group-local data range [glo, ghi) of g, whose
// run 0 starts at b[gbase], with cg[0] holding data byte glo.  Runs
// split by the window boundary go through the byte path; only whole
// runs reach the width kernel — a split mid-element must never execute
// as a (full-width) element.
func execGroup(cg, b []byte, gbase int64, g *progGroup, glo, ghi int64, pack bool) {
	bl := g.blocklen
	i0 := glo / bl
	i1 := (ghi - 1) / bl
	if i0 == i1 {
		o := gbase + i0*g.stride + (glo - i0*bl)
		n := ghi - glo
		if pack {
			copy(cg[:n], b[o:o+n])
		} else {
			copy(b[o:o+n], cg[:n])
		}
		return
	}
	var cpos int64
	if r := glo - i0*bl; r != 0 {
		o := gbase + i0*g.stride + r
		n := bl - r
		if pack {
			copy(cg[:n], b[o:o+n])
		} else {
			copy(b[o:o+n], cg[:n])
		}
		cpos = n
		i0++
	}
	iN := i1
	tail := ghi - i1*bl
	if tail != bl {
		iN = i1 - 1
	} else {
		tail = 0
	}
	if iN >= i0 {
		n := iN - i0 + 1
		kernExec(g.kern, cg[cpos:], b, gbase+i0*g.stride, bl, g.stride, n, pack)
		cpos += n * bl
	}
	if tail != 0 {
		o := gbase + i1*g.stride
		if pack {
			copy(cg[cpos:cpos+tail], b[o:o+tail])
		} else {
			copy(b[o:o+tail], cg[cpos:cpos+tail])
		}
	}
}

// Runs enumerates the compiled runs backing [d0, d1) with the same
// contract as the package-level Runs (absolute instance-0 buffer
// addressing, groups of evenly spaced runs).  Window-split runs are
// emitted as single (n=1) partial runs, full runs keep their group.
func (p *Program) Runs(d0, d1 int64, emit EmitFunc) {
	if d1 <= d0 {
		return
	}
	size := p.size
	k0 := d0 / size
	k1 := (d1 - 1) / size
	for k := k0; k <= k1; k++ {
		lo, hi := int64(0), size
		if k == k0 {
			lo = d0 - k*size
		}
		if k == k1 {
			hi = d1 - k*size
		}
		org := k * p.ext
		gd := k * size
		gi := p.findGroup(lo)
		for ; gi < len(p.groups) && p.cum[gi] < hi; gi++ {
			g := &p.groups[gi]
			glo := lo - p.cum[gi]
			if glo < 0 {
				glo = 0
			}
			ghi := hi - p.cum[gi]
			if gb := g.blocklen * g.count; ghi > gb {
				ghi = gb
			}
			emitGroup(org+g.base, gd+p.cum[gi], g, glo, ghi, emit)
		}
	}
}

// emitGroup is the enumeration twin of execGroup.
func emitGroup(gbase, gdata int64, g *progGroup, glo, ghi int64, emit EmitFunc) {
	bl := g.blocklen
	i0 := glo / bl
	i1 := (ghi - 1) / bl
	if i0 == i1 {
		off := glo - i0*bl
		emit(gbase+i0*g.stride+off, gdata+glo, ghi-glo, 0, 1)
		return
	}
	if r := glo - i0*bl; r != 0 {
		emit(gbase+i0*g.stride+r, gdata+glo, bl-r, 0, 1)
		i0++
	}
	iN := i1
	tail := ghi - i1*bl
	if tail != bl {
		iN = i1 - 1
	} else {
		tail = 0
	}
	if iN >= i0 {
		emit(gbase+i0*g.stride, gdata+i0*bl, bl, g.stride, iN-i0+1)
	}
	if tail != 0 {
		emit(gbase+i1*g.stride, gdata+i1*bl, tail, 0, 1)
	}
}

// PackCount packs through the compiled program with PackCount's exact
// skip/limit semantics: limit = min(len(dst), count*size - skip).
func (p *Program) PackCount(dst, src []byte, count, skip int64) int64 {
	limit := count*p.size - skip
	if limit > int64(len(dst)) {
		limit = int64(len(dst))
	}
	if limit <= 0 {
		return 0
	}
	p.CopyRange(dst[:limit], src, skip, skip+limit, 0, true)
	return limit
}

// UnpackCount is the inverse of PackCount.
func (p *Program) UnpackCount(dst, src []byte, count, skip int64) int64 {
	limit := count*p.size - skip
	if limit > int64(len(src)) {
		limit = int64(len(src))
	}
	if limit <= 0 {
		return 0
	}
	p.CopyRange(src[:limit], dst, skip, skip+limit, 0, false)
	return limit
}

// Pack packs through the compiled program with Pack's exact semantics:
// limit = min(len(dst), data available when tiling over len(src)).
func (p *Program) Pack(dst, src []byte, skip int64) int64 {
	limit := avail(p.t, int64(len(src)), skip)
	if limit > int64(len(dst)) {
		limit = int64(len(dst))
	}
	if limit <= 0 {
		return 0
	}
	p.CopyRange(dst[:limit], src, skip, skip+limit, 0, true)
	return limit
}

// Unpack is the inverse of Pack.
func (p *Program) Unpack(dst, src []byte, skip int64) int64 {
	limit := avail(p.t, int64(len(dst)), skip)
	if limit > int64(len(src)) {
		limit = int64(len(src))
	}
	if limit <= 0 {
		return 0
	}
	p.CopyRange(src[:limit], dst, skip, skip+limit, 0, false)
	return limit
}
