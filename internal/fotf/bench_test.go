package fotf

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datatype"
	"repro/internal/flatten"
)

// Micro-benchmarks for the flattening-on-the-fly primitives, paired with
// their list-based counterparts where one exists.

func benchType(b *testing.B, blocklen int64) *datatype.Type {
	b.Helper()
	count := int64(1<<20) / blocklen
	dt, err := datatype.Hvector(count, blocklen, 2*blocklen, datatype.Byte)
	if err != nil {
		b.Fatal(err)
	}
	return dt
}

func BenchmarkPack(b *testing.B) {
	for _, blocklen := range []int64{8, 64, 4096} {
		dt := benchType(b, blocklen)
		src := make([]byte, dt.Extent())
		dst := make([]byte, dt.Size())
		b.Run(fmt.Sprintf("Sblock=%d", blocklen), func(b *testing.B) {
			b.SetBytes(dt.Size())
			for i := 0; i < b.N; i++ {
				PackCount(dst, src, 1, dt, 0)
			}
		})
	}
}

func BenchmarkUnpack(b *testing.B) {
	for _, blocklen := range []int64{8, 64, 4096} {
		dt := benchType(b, blocklen)
		src := make([]byte, dt.Size())
		dst := make([]byte, dt.Extent())
		b.Run(fmt.Sprintf("Sblock=%d", blocklen), func(b *testing.B) {
			b.SetBytes(dt.Size())
			for i := 0; i < b.N; i++ {
				UnpackCount(dst, src, 1, dt, 0)
			}
		})
	}
}

func BenchmarkPackWithSkip(b *testing.B) {
	// Skip cost must be independent of the skip magnitude.
	dt := benchType(b, 8)
	src := make([]byte, dt.Extent())
	dst := make([]byte, 4096)
	for _, skip := range []int64{0, dt.Size() / 2, dt.Size() - 8192} {
		b.Run(fmt.Sprintf("skip=%d", skip), func(b *testing.B) {
			b.SetBytes(4096)
			for i := 0; i < b.N; i++ {
				PackCount(dst, src, 1, dt, skip)
			}
		})
	}
}

func BenchmarkStartPos(b *testing.B) {
	dt := benchType(b, 8)
	offs := make([]int64, 1024)
	r := rand.New(rand.NewSource(7))
	for i := range offs {
		offs[i] = r.Int63n(dt.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StartPos(dt, offs[i%len(offs)])
	}
}

func BenchmarkBufToData(b *testing.B) {
	dt := benchType(b, 8)
	offs := make([]int64, 1024)
	r := rand.New(rand.NewSource(9))
	for i := range offs {
		offs[i] = r.Int63n(dt.Extent())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BufToData(dt, offs[i%len(offs)])
	}
}

func BenchmarkTypeSizeExtentPair(b *testing.B) {
	dt := benchType(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext := TypeExtent(dt, int64(i%4096), 8192)
		TypeSize(dt, int64(i%4096), ext)
	}
}

// BenchmarkPackProgram pairs the recursive walk against the compiled
// copy program on the windowed pack pattern of the collective hot path,
// over a shape whose blocks the walk cannot collapse (two-run blocks at
// a seamless pitch) — benchstat compares the program/walk sub-benchmarks
// in CI.
func BenchmarkPackProgram(b *testing.B) {
	twoRun, err := datatype.Vector(2, 1, 2, datatype.Double)
	if err != nil {
		b.Fatal(err)
	}
	dt, err := datatype.Hvector((1<<20)/twoRun.Size(), 1, 32, twoRun)
	if err != nil {
		b.Fatal(err)
	}
	prog := Compile(dt)
	if prog == nil {
		b.Fatal("Compile declined")
	}
	total := dt.Size()
	src := make([]byte, dt.TrueUB())
	dst := make([]byte, total)
	const win = 64 << 10
	b.Run("walk", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			for d0 := int64(0); d0 < total; d0 += win {
				d1 := min(d0+win, total)
				CopyRange(dst[d0:d1], src, dt, d0, d1, 0, true)
			}
		}
	})
	b.Run("program", func(b *testing.B) {
		b.SetBytes(total)
		var cur Cursor
		for i := 0; i < b.N; i++ {
			cur.Reset(prog)
			for d0 := int64(0); d0 < total; d0 += win {
				d1 := min(d0+win, total)
				cur.CopyRange(dst[d0:d1], src, d0, d1, 0, true)
			}
		}
	})
}

// BenchmarkDeepTree checks that navigation stays fast on deep trees.
func BenchmarkDeepTree(b *testing.B) {
	dt := datatype.Double
	var err error
	for d := 0; d < 8; d++ {
		if dt, err = datatype.Vector(4, 2, 3, dt); err != nil {
			b.Fatal(err)
		}
	}
	size := dt.Size()
	b.Run("StartPos", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			StartPos(dt, int64(i)%size)
		}
	})
	b.Run("list-based-reference", func(b *testing.B) {
		v := flatten.NewView(0, dt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.DataToFile(int64(i) % size)
		}
	})
}
