package fotf_test

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/fotf"
)

// Pack gathers a strided buffer into contiguous form without ever
// materializing an ol-list; the skip argument positions in O(depth).
func ExamplePack() {
	dt, _ := datatype.Vector(4, 1, 2, datatype.Byte) // every 2nd byte
	src := []byte{'a', '.', 'b', '.', 'c', '.', 'd'}
	dst := make([]byte, 4)
	n := fotf.Pack(dst, src, dt, 0)
	fmt.Printf("%d bytes: %s\n", n, dst[:n])

	// Skipping two data bytes starts mid-type without traversal.
	n = fotf.Pack(dst, src, dt, 2)
	fmt.Printf("%d bytes: %s\n", n, dst[:n])
	// Output:
	// 4 bytes: abcd
	// 2 bytes: cd
}

// TypeExtent and TypeSize convert between data sizes and buffer extents
// at arbitrary starting points — the paper's MPIR_Type_ff_extent and
// MPIR_Type_ff_size, used for all fileview positioning.
func ExampleTypeExtent() {
	dt, _ := datatype.Vector(8, 1, 3, datatype.Double) // 8B every 24B
	ext := fotf.TypeExtent(dt, 0, 16)                  // extent of the first 16 data bytes
	fmt.Println("extent of 16 data bytes:", ext)
	fmt.Println("data within that extent:", fotf.TypeSize(dt, 0, ext))
	// Output:
	// extent of 16 data bytes: 32
	// data within that extent: 16
}
