package fotf

import "encoding/binary"

// Copy kernels.  Each compiled group carries the kernel matching its
// run width, chosen once at compile time: fixed-width loads/stores for
// the element sizes that dominate scientific datatypes (8/16/32/64-bit,
// plus a 128-bit pair for small structs) and a generic memmove loop for
// everything else.  Kernels only ever see whole runs — execGroup routes
// window-split partial runs through plain byte copies — so a width
// kernel never reads or writes a single byte outside its group.
const (
	kernMove = uint8(iota) // generic: one memmove per run
	kern8                  // 1-byte runs
	kern16                 // 2-byte runs
	kern32                 // 4-byte runs
	kern64                 // 8-byte runs
	kern128                // 16-byte runs
)

// kernelFor selects the copy kernel for runs of blocklen bytes.
func kernelFor(blocklen int64) uint8 {
	switch blocklen {
	case 1:
		return kern8
	case 2:
		return kern16
	case 4:
		return kern32
	case 8:
		return kern64
	case 16:
		return kern128
	}
	return kernMove
}

// kernExec moves n whole runs of bl bytes between the contiguous buffer
// c (run i at c[i*bl]) and the typed buffer b (run i at b[off+i*stride])
// through the compile-selected kernel.  pack=true copies b→c.
func kernExec(kern uint8, c, b []byte, off, bl, stride, n int64, pack bool) {
	switch kern {
	case kern8:
		if pack {
			for i := int64(0); i < n; i++ {
				c[i] = b[off+i*stride]
			}
		} else {
			for i := int64(0); i < n; i++ {
				b[off+i*stride] = c[i]
			}
		}
	case kern16:
		if pack {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint16(c[i*2:], binary.LittleEndian.Uint16(b[off+i*stride:]))
			}
		} else {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint16(b[off+i*stride:], binary.LittleEndian.Uint16(c[i*2:]))
			}
		}
	case kern32:
		if pack {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint32(c[i*4:], binary.LittleEndian.Uint32(b[off+i*stride:]))
			}
		} else {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint32(b[off+i*stride:], binary.LittleEndian.Uint32(c[i*4:]))
			}
		}
	case kern64:
		if pack {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint64(c[i*8:], binary.LittleEndian.Uint64(b[off+i*stride:]))
			}
		} else {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint64(b[off+i*stride:], binary.LittleEndian.Uint64(c[i*8:]))
			}
		}
	case kern128:
		if pack {
			for i := int64(0); i < n; i++ {
				s := b[off+i*stride:]
				binary.LittleEndian.PutUint64(c[i*16:], binary.LittleEndian.Uint64(s))
				binary.LittleEndian.PutUint64(c[i*16+8:], binary.LittleEndian.Uint64(s[8:]))
			}
		} else {
			for i := int64(0); i < n; i++ {
				d := b[off+i*stride:]
				binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(c[i*16:]))
				binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(c[i*16+8:]))
			}
		}
	default:
		if pack {
			for i := int64(0); i < n; i++ {
				copy(c[i*bl:(i+1)*bl], b[off+i*stride:])
			}
		} else {
			for i := int64(0); i < n; i++ {
				copy(b[off+i*stride:off+i*stride+bl], c[i*bl:])
			}
		}
	}
}
