package fotf

import "repro/internal/datatype"

// Datatype navigation (the paper's MPIR_Type_ff_size and
// MPIR_Type_ff_extent, §3.2.1).  Both directions cost O(tree depth ·
// log node-blocks) and are independent of the expanded block count and of
// the magnitude of the offsets — the property that lets the listless
// engine position anywhere in a fileview without traversing ol-lists.

// StartPos returns the buffer offset of data byte d of the indefinitely
// tiled type t.  d must be >= 0.
func StartPos(t *datatype.Type, d int64) int64 {
	return pos(t, d, false)
}

// EndPos returns the buffer offset just past data byte d-1, i.e. the end
// of the first d data bytes.  d must be > 0; EndPos(t, 0) is defined as
// StartPos(t, 0).
func EndPos(t *datatype.Type, d int64) int64 {
	if d == 0 {
		return StartPos(t, 0)
	}
	return pos(t, d, true)
}

// pos computes, for the indefinitely tiled t, the buffer offset of data
// byte d (end=false) or the offset just past data byte d-1 (end=true).
func pos(t *datatype.Type, d int64, end bool) int64 {
	size := t.Size()
	if size == 0 {
		return 0
	}
	k := d / size
	rem := d - k*size
	if end && rem == 0 {
		k--
		rem = size
	}
	return k*t.Extent() + pos1(t, rem, end)
}

// pos1 is pos within a single instance: 0 <= d <= size, and if end then
// d > 0.
func pos1(t *datatype.Type, d int64, end bool) int64 {
	switch t.Kind() {
	case datatype.KindNamed:
		return d

	case datatype.KindResized:
		return pos1(t.Child(), d, end)

	case datatype.KindContiguous:
		return posTiled(t.Child(), t.Child().Extent(), d, end)

	case datatype.KindVector:
		child := t.Child()
		per := t.Blocklen() * child.Size()
		k := d / per
		rem := d - k*per
		if (end && rem == 0) || k == t.Count() {
			k--
			rem = per
		}
		return k*t.StrideBytes() + posTiled(child, child.Extent(), rem, end)

	case datatype.KindIndexed:
		ni := info(t)
		i := locateBlock(ni, d, end)
		child := t.Child()
		return t.Displs()[i] + posTiled(child, child.Extent(), d-ni.cumSize[i], end)

	case datatype.KindStruct:
		ni := info(t)
		i := locateBlock(ni, d, end)
		c := t.Children()[i]
		return t.Displs()[i] + posTiled(c, c.Extent(), d-ni.cumSize[i], end)
	}
	return 0
}

// locateBlock finds the block index for data offset d.  With end=true,
// an offset on a block boundary belongs to the preceding block.
func locateBlock(ni *nodeInfo, d int64, end bool) int {
	if end {
		return ni.findBlock(d - 1)
	}
	return ni.findBlock(d)
}

// posTiled computes pos within count-unbounded tiling of child at the
// given tile stride; 0 <= d <= available data, and callers guarantee the
// block index stays within the node.
func posTiled(child *datatype.Type, tile, d int64, end bool) int64 {
	per := child.Size()
	k := d / per
	rem := d - k*per
	if end && rem == 0 {
		k--
		rem = per
	}
	return k*tile + pos1(child, rem, end)
}

// BufToData returns the number of data bytes of the indefinitely tiled t
// located at buffer offsets strictly below off.  t must have a monotone
// type map (guaranteed for validated filetypes); results are undefined
// otherwise.
func BufToData(t *datatype.Type, off int64) int64 {
	size := t.Size()
	if size == 0 {
		return 0
	}
	ext := t.Extent()
	// Instances i with i*ext + trueUB <= off contribute fully.
	full := floorDiv(off-t.TrueUB(), ext) + 1
	if full < 0 {
		full = 0
	}
	// Instances with i*ext + trueLB < off may contribute partially.
	last := floorDiv(off-t.TrueLB()-1, ext)
	d := full * size
	for i := full; i <= last; i++ {
		d += bufToData1(t, off-i*ext)
	}
	return d
}

// bufToData1 counts the data bytes of one instance of t at offsets
// strictly below off (off relative to the instance origin).
func bufToData1(t *datatype.Type, off int64) int64 {
	if off <= t.TrueLB() {
		return 0
	}
	if off >= t.TrueUB() {
		return t.Size()
	}
	switch t.Kind() {
	case datatype.KindNamed:
		return clamp(off, 0, t.Size())

	case datatype.KindResized:
		return bufToData1(t.Child(), off)

	case datatype.KindContiguous:
		return bufToDataTiled(t.Child(), t.Count(), t.Child().Extent(), off)

	case datatype.KindVector:
		child := t.Child()
		stride := t.StrideBytes()
		per := t.Blocklen() * child.Size()
		blockTrueLB := child.TrueLB()
		blockTrueUB := (t.Blocklen()-1)*child.Extent() + child.TrueUB()
		if stride <= 0 {
			// Degenerate stride: fall back to a bounded scan only when
			// count is small; monotone filetypes never hit this.
			var d int64
			for k := int64(0); k < t.Count(); k++ {
				d += bufToDataBlock(t, off-k*stride)
			}
			return d
		}
		full := floorDiv(off-blockTrueUB, stride) + 1
		full = clamp(full, 0, t.Count())
		last := floorDiv(off-blockTrueLB-1, stride)
		last = clamp(last, -1, t.Count()-1)
		d := full * per
		for k := full; k <= last; k++ {
			d += bufToDataBlock(t, off-k*stride)
		}
		return d

	case datatype.KindIndexed:
		child := t.Child()
		bl := t.Blocklens()
		displs := t.Displs()
		var d int64
		for i := range bl { // node-local, tree-sized loop
			if bl[i] == 0 {
				continue
			}
			d += bufToDataTiled(child, bl[i], child.Extent(), off-displs[i])
		}
		return d

	case datatype.KindStruct:
		bl := t.Blocklens()
		displs := t.Displs()
		var d int64
		for i, c := range t.Children() {
			if bl[i] == 0 || c.Size() == 0 {
				continue
			}
			d += bufToDataTiled(c, bl[i], c.Extent(), off-displs[i])
		}
		return d
	}
	return 0
}

// bufToDataBlock counts data bytes below off within one vector block of t
// (off relative to the block origin).
func bufToDataBlock(t *datatype.Type, off int64) int64 {
	child := t.Child()
	return bufToDataTiled(child, t.Blocklen(), child.Extent(), off)
}

// bufToDataTiled counts data bytes below off within count instances of
// child tiled at stride tile (off relative to the first instance origin).
func bufToDataTiled(child *datatype.Type, count, tile, off int64) int64 {
	per := child.Size()
	if per == 0 || count == 0 {
		return 0
	}
	if tile <= 0 {
		var d int64
		for k := int64(0); k < count; k++ {
			d += bufToData1(child, off-k*tile)
		}
		return d
	}
	full := floorDiv(off-child.TrueUB(), tile) + 1
	full = clamp(full, 0, count)
	last := floorDiv(off-child.TrueLB()-1, tile)
	last = clamp(last, -1, count-1)
	d := full * per
	for k := full; k <= last; k++ {
		d += bufToData1(child, off-k*tile)
	}
	return d
}

// TypeExtent returns the extent of the virtual typed buffer occupied when
// size data bytes are unpacked according to t after first skipping skip
// data bytes — the paper's MPIR_Type_ff_extent.
func TypeExtent(t *datatype.Type, skip, size int64) int64 {
	if size <= 0 {
		return 0
	}
	return EndPos(t, skip+size) - StartPos(t, skip)
}

// TypeSize returns the number of data bytes contained in a virtual typed
// buffer of the given extent that starts at data byte skip — the paper's
// MPIR_Type_ff_size.  t must have a monotone type map.
func TypeSize(t *datatype.Type, skip, extent int64) int64 {
	if extent <= 0 {
		return 0
	}
	a := StartPos(t, skip)
	return BufToData(t, a+extent) - skip
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
