package fotf

import (
	"math/rand"
	"testing"

	"repro/internal/datatype"
)

// FuzzProgramVsWalk is the differential fuzzer of the compiled-program
// layer: a fuzzed seed drives the random tree generator (which emits
// zero-length blocks, LB/UB adjustments via Resized, holes, and deep
// struct nesting), and the fuzzed window words pick a hostile (d0, d1)
// for an extra targeted window check on top of the full battery.  The
// program must pack/unpack byte-identically to the recursive walk, and
// must neither panic nor write a byte the walk would not.
func FuzzProgramVsWalk(f *testing.F) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 12; i++ {
		f.Add(r.Int63(), uint16(r.Intn(1<<16)), uint16(r.Intn(1<<16)))
	}
	f.Add(int64(0), uint16(0), uint16(0))
	f.Add(int64(-1), uint16(1<<15), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, w0, w1 uint16) {
		r := rand.New(rand.NewSource(seed))
		depth := 2 + int(uint16(seed)%3)
		dt := datatype.RandomFiletype(r, depth)
		if err := checkProgramVsWalk(dt, r); err != nil {
			t.Fatalf("type %v: %v", dt, err)
		}
		p := Compile(dt)
		if p == nil {
			return
		}
		// Targeted window from the fuzzed words, spanning instances.
		total := 3 * p.Size()
		d0 := int64(w0) % total
		d1 := d0 + 1 + int64(w1)%(total-d0)
		span := walkSpan(dt, total)
		src := make([]byte, span)
		r.Read(src)
		want := make([]byte, d1-d0)
		got := make([]byte, d1-d0)
		CopyRange(want, src, dt, d0, d1, 0, true)
		p.CopyRange(got, src, d0, d1, 0, true)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("type %v window [%d,%d): byte %d differs: walk %#x, program %#x",
					dt, d0, d1, d0+int64(i), want[i], got[i])
			}
		}
	})
}
