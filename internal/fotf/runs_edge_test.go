package fotf

import (
	"testing"

	"repro/internal/datatype"
	"repro/internal/flatten"
)

// Boundary audit of the run enumerators (satellite of the program
// layer): for windows straddling block and element boundaries at
// non-unit element widths, both the recursive walk and the compiled
// program must (a) map every data byte to the ol-list oracle's buffer
// offset, and (b) never emit a window-split partial run inside an n>1
// group — partial runs must come out as single (n==1) runs, because
// n>1 groups feed the width-specialized kernels which copy whole runs
// only.  Every (d0, d1) pair over two tiled instances is exercised.

// flatOffsets expands the flattened ol-list into the buffer offset of
// every data byte in [0, total), the independent oracle.
func flatOffsets(dt *datatype.Type, total int64) []int64 {
	l := flatten.Flatten(dt)
	out := make([]int64, total)
	d := int64(0)
	for k := int64(0); d < total; k++ {
		base := k * dt.Extent()
		for _, seg := range l {
			for j := int64(0); j < seg.Len && d < total; j++ {
				out[d] = base + seg.Off + j
				d++
			}
		}
	}
	return out
}

func TestRunsWindowStraddle(t *testing.T) {
	contig := func(count int64, child *datatype.Type) *datatype.Type {
		t.Helper()
		out, err := datatype.Contiguous(count, child)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	indexed := func(blocklens, displs []int64, child *datatype.Type) *datatype.Type {
		t.Helper()
		out, err := datatype.Indexed(blocklens, displs, child)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name string
		dt   *datatype.Type
		w    int64 // element width n>1 runs must respect; 0 = containment only
	}{
		{"int16-vector", vec(t, 3, 2, 5, datatype.Int16), 2},
		{"int32-vector", vec(t, 3, 2, 5, datatype.Int32), 4},
		{"double-vector", vec(t, 4, 2, 3, datatype.Double), 8},
		{"pair-vector", vec(t, 3, 1, 2, contig(2, datatype.Double)), 16},
		{"nested-vector", vec(t, 2, 2, 3, vec(t, 2, 1, 2, datatype.Int32)), 4},
		{"irregular-indexed", indexed([]int64{2, 1, 3}, []int64{0, 3, 5}, datatype.Int32), 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			size := c.dt.Size()
			total := 2 * size // straddle the tiling boundary too
			oracle := flatOffsets(c.dt, total)
			p := Compile(c.dt)
			if p == nil {
				t.Fatal("Compile declined")
			}
			enums := []struct {
				name string
				run  func(d0, d1 int64, emit EmitFunc)
			}{
				{"walk", func(d0, d1 int64, emit EmitFunc) { Runs(c.dt, d0, d1, emit) }},
				{"program", p.Runs},
			}
			for _, e := range enums {
				for d0 := int64(0); d0 < total; d0++ {
					for d1 := d0 + 1; d1 <= total; d1++ {
						m, err := coverage(d0, d1, func(emit EmitFunc) {
							e.run(d0, d1, func(bufOff, dataOff, runLen, stride, n int64) {
								if n > 1 {
									if dataOff < d0 || dataOff+n*runLen > d1 {
										t.Fatalf("%s [%d,%d): n=%d group [%d,%d) leaks outside the window",
											e.name, d0, d1, n, dataOff, dataOff+n*runLen)
									}
									if c.w != 0 && (runLen%c.w != 0 || dataOff%c.w != 0) {
										t.Fatalf("%s [%d,%d): n=%d group at data %d with runLen %d splits a %d-byte element",
											e.name, d0, d1, n, dataOff, runLen, c.w)
									}
								}
								emit(bufOff, dataOff, runLen, stride, n)
							})
						})
						if err != nil {
							t.Fatalf("%s [%d,%d): %v", e.name, d0, d1, err)
						}
						for i, off := range m {
							if off != oracle[d0+int64(i)] {
								t.Fatalf("%s [%d,%d): data byte %d at buf %d, oracle %d",
									e.name, d0, d1, d0+int64(i), off, oracle[d0+int64(i)])
							}
						}
					}
				}
			}
		})
	}
}
