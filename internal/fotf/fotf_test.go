package fotf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
	"repro/internal/flatten"
)

func vec(t *testing.T, count, blocklen, stride int64, child *datatype.Type) *datatype.Type {
	t.Helper()
	dt, err := datatype.Vector(count, blocklen, stride, child)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

// refStartPos computes StartPos from the flattened list (oracle).
func refStartPos(dt *datatype.Type, d int64) int64 {
	l := flatten.Flatten(dt)
	size := l.Bytes()
	k := d / size
	rem := d - k*size
	base := k * dt.Extent()
	for _, seg := range l {
		if rem < seg.Len {
			return base + seg.Off + rem
		}
		rem -= seg.Len
	}
	// d on an instance boundary: start of next instance's first segment.
	return base + dt.Extent() + l[0].Off
}

// refEndPos computes EndPos from the flattened list (oracle).
func refEndPos(dt *datatype.Type, d int64) int64 {
	return refStartPos(dt, d-1) + 1
}

// refBufToData counts data bytes below buffer offset off (oracle).
func refBufToData(dt *datatype.Type, off int64) int64 {
	l := flatten.Flatten(dt)
	var d int64
	for k := int64(0); ; k++ {
		base := k * dt.Extent()
		if base+dt.TrueLB() >= off {
			return d
		}
		for _, seg := range l {
			a, b := base+seg.Off, base+seg.Off+seg.Len
			if b <= off {
				d += seg.Len
			} else if a < off {
				d += off - a
			}
		}
	}
}

func TestStartEndPosVector(t *testing.T) {
	dt := vec(t, 3, 2, 4, datatype.Double) // runs 16B at 0,32,64; ext 80
	cases := []struct{ d, start int64 }{
		{0, 0}, {15, 15}, {16, 32}, {31, 47}, {32, 64}, {47, 79},
		{48, 80}, {96, 160}, // next instances (extent 80)
	}
	for _, c := range cases {
		if got := StartPos(dt, c.d); got != c.start {
			t.Errorf("StartPos(%d) = %d, want %d", c.d, got, c.start)
		}
	}
	if got := EndPos(dt, 16); got != 16 {
		t.Errorf("EndPos(16) = %d, want 16", got)
	}
	if got := EndPos(dt, 48); got != 80 {
		t.Errorf("EndPos(48) = %d, want 80", got)
	}
	if got := EndPos(dt, 0); got != StartPos(dt, 0) {
		t.Errorf("EndPos(0) = %d, want StartPos(0)", got)
	}
}

func TestBufToDataVector(t *testing.T) {
	dt := vec(t, 3, 2, 4, datatype.Double)
	cases := []struct{ off, d int64 }{
		{0, 0}, {8, 8}, {16, 16}, {24, 16}, {32, 16}, {40, 24},
		{48, 32}, {64, 32}, {80, 48}, {81, 49}, {112, 64},
	}
	for _, c := range cases {
		if got := BufToData(dt, c.off); got != c.d {
			t.Errorf("BufToData(%d) = %d, want %d", c.off, got, c.d)
		}
	}
}

func TestTypeExtentTypeSizeInverse(t *testing.T) {
	dt := vec(t, 4, 1, 3, datatype.Double) // 8B runs every 24B
	for skip := int64(0); skip < 64; skip += 3 {
		for size := int64(1); size <= 64; size += 7 {
			ext := TypeExtent(dt, skip, size)
			if got := TypeSize(dt, skip, ext); got != size {
				t.Fatalf("TypeSize(skip=%d, TypeExtent=%d) = %d, want %d", skip, ext, got, size)
			}
		}
	}
	if TypeExtent(dt, 5, 0) != 0 {
		t.Error("TypeExtent of size 0 must be 0")
	}
	if TypeSize(dt, 5, 0) != 0 {
		t.Error("TypeSize of extent 0 must be 0")
	}
}

func TestQuickNavigationAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := datatype.RandomFiletype(r, 3)
		total := 3 * dt.Size()
		for trial := 0; trial < 20; trial++ {
			d := r.Int63n(total)
			if got, want := StartPos(dt, d), refStartPos(dt, d); got != want {
				t.Logf("%s: StartPos(%d) = %d, want %d", dt, d, got, want)
				return false
			}
			if d > 0 {
				if got, want := EndPos(dt, d), refEndPos(dt, d); got != want {
					t.Logf("%s: EndPos(%d) = %d, want %d", dt, d, got, want)
					return false
				}
			}
			off := r.Int63n(3*dt.Extent() + 1)
			if got, want := BufToData(dt, off), refBufToData(dt, off); got != want {
				t.Logf("%s: BufToData(%d) = %d, want %d", dt, off, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseIdentities(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := datatype.RandomFiletype(r, 3)
		total := 3 * dt.Size()
		for trial := 0; trial < 20; trial++ {
			skip := r.Int63n(total)
			size := 1 + r.Int63n(total-skip)
			ext := TypeExtent(dt, skip, size)
			if ext <= 0 {
				t.Logf("%s: TypeExtent(%d,%d) = %d", dt, skip, size, ext)
				return false
			}
			if got := TypeSize(dt, skip, ext); got != size {
				t.Logf("%s: inverse broken: skip=%d size=%d ext=%d got=%d", dt, skip, size, ext, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRunsCoverExactRange(t *testing.T) {
	dt := vec(t, 5, 3, 7, datatype.Int32)
	var prevData int64 = 24
	var total int64
	Runs(dt, 24, 150, func(bufOff, dataOff, runLen, stride, n int64) {
		if dataOff != prevData {
			t.Fatalf("non-consecutive data: got %d, want %d", dataOff, prevData)
		}
		if runLen <= 0 || n <= 0 {
			t.Fatalf("bad group (%d,%d)", runLen, n)
		}
		prevData += runLen * n
		total += runLen * n
	})
	if total != 150-24 {
		t.Fatalf("covered %d bytes, want %d", total, 150-24)
	}
}

func TestRunsGroupsRegularVectors(t *testing.T) {
	// A large vector of small blocks must be emitted as few groups, not
	// one emit per block.
	dt := vec(t, 10000, 1, 2, datatype.Double)
	groups := 0
	Runs(dt, 0, dt.Size(), func(bufOff, dataOff, runLen, stride, n int64) {
		groups++
	})
	if groups > 3 {
		t.Fatalf("vector emitted %d groups; grouping is broken", groups)
	}
}

func packOracle(dt *datatype.Type, src []byte, count, skip, limit int64) []byte {
	l := flatten.Flatten(dt)
	out := make([]byte, limit)
	n := flatten.PackList(out, src, l, dt.Extent(), count, skip, limit)
	return out[:n]
}

func TestPackAgainstOracle(t *testing.T) {
	dt := vec(t, 6, 2, 5, datatype.Int32)
	count := int64(3)
	src := make([]byte, count*dt.Extent()+64)
	for i := range src {
		src[i] = byte(i * 7)
	}
	total := count * dt.Size()
	for skip := int64(0); skip < total; skip += 11 {
		limit := total - skip
		want := packOracle(dt, src, count, skip, limit)
		got := make([]byte, limit)
		n := PackCount(got, src, count, dt, skip)
		if n != int64(len(want)) {
			t.Fatalf("skip=%d: packed %d, want %d", skip, n, len(want))
		}
		if !bytes.Equal(got[:n], want) {
			t.Fatalf("skip=%d: pack mismatch", skip)
		}
	}
}

func TestUnpackAgainstOracle(t *testing.T) {
	dt := vec(t, 6, 2, 5, datatype.Int32)
	count := int64(2)
	total := count * dt.Size()
	packed := make([]byte, total)
	for i := range packed {
		packed[i] = byte(i + 1)
	}
	for skip := int64(0); skip < total; skip += 13 {
		want := make([]byte, count*dt.Extent())
		flatten.UnpackList(want, packed[:total-skip], flatten.Flatten(dt), dt.Extent(), count, skip, total-skip)
		got := make([]byte, len(want))
		n := UnpackCount(got, packed[:total-skip], count, dt, skip)
		if n != total-skip {
			t.Fatalf("skip=%d: unpacked %d, want %d", skip, n, total-skip)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("skip=%d: unpack mismatch", skip)
		}
	}
}

func TestQuickPackUnpackAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := datatype.RandomFiletype(r, 3)
		count := int64(1 + r.Intn(3))
		src := make([]byte, count*dt.Extent()+dt.TrueUB())
		for i := range src {
			src[i] = byte(r.Intn(256))
		}
		total := count * dt.Size()
		skip := r.Int63n(total)
		limit := 1 + r.Int63n(total-skip)
		want := packOracle(dt, src, count, skip, limit)
		got := make([]byte, limit)
		if n := PackCount(got, src, count, dt, skip); n != int64(len(want)) {
			t.Logf("%s: packed %d want %d", dt, n, len(want))
			return false
		}
		if !bytes.Equal(got, want) {
			t.Logf("%s: pack mismatch skip=%d limit=%d", dt, skip, limit)
			return false
		}
		// Unpack round trip of the packed fragment into a zero buffer,
		// then re-pack and compare.
		dst := make([]byte, len(src))
		if n := UnpackCount(dst, got, count, dt, skip); n != limit {
			t.Logf("%s: unpacked %d want %d", dt, n, limit)
			return false
		}
		again := make([]byte, limit)
		PackCount(again, dst, count, dt, skip)
		if !bytes.Equal(again, got) {
			t.Logf("%s: unpack/re-pack mismatch", dt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackBufferLimits(t *testing.T) {
	dt := vec(t, 4, 1, 2, datatype.Double) // size 32, extent 56
	// Typed buffer holding 2 whole instances plus a partial third
	// (one more 8-byte run at offset 112).
	src := make([]byte, 2*56+8)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 1024)
	n := Pack(dst, src, dt, 0)
	if n != 2*32+8 {
		t.Fatalf("packed %d, want %d", n, 2*32+8)
	}
	// Limited destination.
	small := make([]byte, 10)
	if n := Pack(small, src, dt, 0); n != 10 {
		t.Fatalf("limited pack = %d, want 10", n)
	}
	// Skip beyond available data.
	if n := Pack(dst, src, dt, 100); n != 0 {
		t.Fatalf("skip-past-end pack = %d, want 0", n)
	}
}

func TestUnpackBufferLimits(t *testing.T) {
	dt := vec(t, 4, 1, 2, datatype.Double)
	packed := make([]byte, 1024)
	for i := range packed {
		packed[i] = byte(i + 3)
	}
	dst := make([]byte, 56+24) // one whole instance + 2 runs of the next
	n := Unpack(dst, packed, dt, 0)
	if n != 32+16 {
		t.Fatalf("unpacked %d, want %d", n, 32+16)
	}
}

func TestCopyGroupWidths(t *testing.T) {
	// Exercise the 4/8/16-byte fast paths and the generic path.
	for _, elem := range []*datatype.Type{datatype.Int32, datatype.Double, datatype.Complex128, datatype.Int16} {
		dt := vec(t, 100, 1, 3, elem)
		src := make([]byte, dt.Extent()+elem.Size())
		for i := range src {
			src[i] = byte(i * 13)
		}
		want := packOracle(dt, src, 1, 0, dt.Size())
		got := make([]byte, dt.Size())
		PackCount(got, src, 1, dt, 0)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: width-specialized pack mismatch", elem.Name())
		}
		back := make([]byte, len(src))
		UnpackCount(back, got, 1, dt, 0)
		again := make([]byte, dt.Size())
		PackCount(again, back, 1, dt, 0)
		if !bytes.Equal(again, want) {
			t.Fatalf("%s: width-specialized unpack mismatch", elem.Name())
		}
	}
}

func TestCopyRangeWithBias(t *testing.T) {
	dt := vec(t, 8, 1, 2, datatype.Double) // runs at 0,16,...,112
	// Window of the typed buffer starting at absolute offset 32
	// (bias 32), holding runs at 32,48,64,80 (data bytes 16..48).
	window := make([]byte, 64)
	for i := range window {
		window[i] = byte(i + 100)
	}
	out := make([]byte, 32)
	CopyRange(out, window, dt, 16, 48, 32, true)
	// Expected: bytes at window offsets 0..8, 16..24, 32..40, 48..56.
	for r := 0; r < 4; r++ {
		for j := 0; j < 8; j++ {
			want := byte(r*16 + j + 100)
			if out[r*8+j] != want {
				t.Fatalf("run %d byte %d = %d, want %d", r, j, out[r*8+j], want)
			}
		}
	}
	// Inverse direction.
	w2 := make([]byte, 64)
	CopyRange(out, w2, dt, 16, 48, 32, false)
	for r := 0; r < 4; r++ {
		if !bytes.Equal(w2[r*16:r*16+8], window[r*16:r*16+8]) {
			t.Fatalf("unpack run %d mismatch", r)
		}
	}
}

func TestPositioningIsDepthBoundNotBlockBound(t *testing.T) {
	// Sanity check of the central claim: positioning cost must not grow
	// with the block count.  We can't measure time robustly in a unit
	// test, but we can check a 2^20-block vector navigates instantly
	// (this test times out if positioning is linear and repeated).
	dt := vec(t, 1<<20, 1, 2, datatype.Double)
	total := dt.Size()
	for i := 0; i < 200000; i++ {
		d := (int64(i) * 7919) % total
		if StartPos(dt, d) < 0 {
			t.Fatal("negative position")
		}
	}
}
