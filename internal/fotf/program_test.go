package fotf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
)

// The differential layer: a compiled Program must be byte-identical to
// the recursive walk on every entry point — full packs, skip/limit
// clamps, windowed CopyRange with and without a resuming cursor, biased
// (virtual-file-buffer) addressing, and run enumeration.  Sentinel
// bytes around and inside the buffers catch stray writes, so the tests
// also pin that programs never touch a byte the walk would not.

// walkSpan returns one past the highest buffer offset the walk touches
// for data [0, d1) of the tiled type.
func walkSpan(dt *datatype.Type, d1 int64) int64 {
	var hi int64
	Runs(dt, 0, d1, func(bufOff, _, runLen, stride, n int64) {
		if end := bufOff + (n-1)*stride + runLen; end > hi {
			hi = end
		}
	})
	return hi
}

// coverage expands a run enumeration into a per-data-byte buffer-offset
// map over [d0, d1), failing on gaps, overlaps, or out-of-range data
// offsets — the strongest equivalence oracle for Runs-shaped output.
func coverage(d0, d1 int64, enum func(EmitFunc)) ([]int64, error) {
	m := make([]int64, d1-d0)
	for i := range m {
		m[i] = -1
	}
	var bad error
	enum(func(bufOff, dataOff, runLen, stride, n int64) {
		if bad != nil {
			return
		}
		if runLen <= 0 || n <= 0 {
			bad = fmt.Errorf("empty emission: runLen=%d n=%d", runLen, n)
			return
		}
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < runLen; j++ {
				d := dataOff + i*runLen + j
				if d < d0 || d >= d1 {
					bad = fmt.Errorf("data offset %d outside [%d,%d)", d, d0, d1)
					return
				}
				if m[d-d0] != -1 {
					bad = fmt.Errorf("data offset %d emitted twice", d)
					return
				}
				m[d-d0] = bufOff + i*stride + j
			}
		}
	})
	if bad != nil {
		return nil, bad
	}
	for i, off := range m {
		if off == -1 {
			return nil, fmt.Errorf("data offset %d never emitted", d0+int64(i))
		}
	}
	return m, nil
}

// checkProgramVsWalk runs the full differential battery on one type
// with one randomness stream.  It returns nil when program and walk
// agree byte-for-byte everywhere.
func checkProgramVsWalk(dt *datatype.Type, r *rand.Rand) error {
	p := Compile(dt)
	if p == nil {
		// Declining is only legal for the documented guards.
		if dt.Size() <= 0 || dt.Blocks() > maxProgramBlocks {
			return nil
		}
		// A coalescing overflow is possible in principle but cannot
		// happen for the bounded trees this battery generates.
		return fmt.Errorf("Compile declined a compilable type (size %d, blocks %d)", dt.Size(), dt.Blocks())
	}
	if p.Size() != dt.Size() || p.Extent() != dt.Extent() {
		return fmt.Errorf("program size/ext %d/%d != type %d/%d", p.Size(), p.Extent(), dt.Size(), dt.Extent())
	}
	if g, b := int64(p.Groups()), dt.Blocks(); g > b {
		return fmt.Errorf("compile expanded the type: %d groups from %d blocks", g, b)
	}

	count := int64(1 + r.Intn(3))
	total := count * p.Size()
	span := walkSpan(dt, total)
	src := make([]byte, span)
	r.Read(src)

	// Run enumeration must cover exactly the same (data, buffer) byte
	// pairs as the walk, for an arbitrary window.
	d0 := r.Int63n(total)
	d1 := d0 + 1 + r.Int63n(total-d0)
	mw, err := coverage(d0, d1, func(emit EmitFunc) { Runs(dt, d0, d1, emit) })
	if err != nil {
		return fmt.Errorf("walk enumeration [%d,%d): %v", d0, d1, err)
	}
	mp, err := coverage(d0, d1, func(emit EmitFunc) { p.Runs(d0, d1, emit) })
	if err != nil {
		return fmt.Errorf("program enumeration [%d,%d): %v", d0, d1, err)
	}
	for i := range mw {
		if mw[i] != mp[i] {
			return fmt.Errorf("enumeration [%d,%d): data byte %d maps to buf %d (walk) vs %d (program)",
				d0, d1, d0+int64(i), mw[i], mp[i])
		}
	}

	// PackCount parity under random skip and a clamping dst.
	skip := r.Int63n(total)
	dlen := r.Int63n(total + 4)
	dstW := bytes.Repeat([]byte{0xAA}, int(total)+8)
	dstP := bytes.Repeat([]byte{0xAA}, int(total)+8)
	if dlen > int64(len(dstW)) {
		dlen = int64(len(dstW))
	}
	nW := PackCount(dstW[:dlen], src, count, dt, skip)
	nP := p.PackCount(dstP[:dlen], src, count, skip)
	if nW != nP || !bytes.Equal(dstW, dstP) {
		return fmt.Errorf("PackCount(skip=%d, dlen=%d): n %d vs %d, bytes equal=%v", skip, dlen, nW, nP, bytes.Equal(dstW, dstP))
	}

	// Pack parity (avail-based limit over a truncated typed buffer).
	srcCut := src[:r.Int63n(span+1)]
	for i := range dstW {
		dstW[i], dstP[i] = 0xBB, 0xBB
	}
	nW = Pack(dstW[:dlen], srcCut, dt, skip)
	nP = p.Pack(dstP[:dlen], srcCut, skip)
	if nW != nP || !bytes.Equal(dstW, dstP) {
		return fmt.Errorf("Pack(skip=%d, dlen=%d, srclen=%d): n %d vs %d", skip, dlen, len(srcCut), nW, nP)
	}

	// UnpackCount parity with sentinel typed buffers: untouched holes
	// must stay untouched on both sides.
	cd := make([]byte, total+8)
	r.Read(cd)
	bW := bytes.Repeat([]byte{0xCC}, int(span)+8)
	bP := bytes.Repeat([]byte{0xCC}, int(span)+8)
	nW = UnpackCount(bW, cd[:dlen], count, dt, skip)
	nP = p.UnpackCount(bP, cd[:dlen], count, skip)
	if nW != nP || !bytes.Equal(bW, bP) {
		return fmt.Errorf("UnpackCount(skip=%d, srclen=%d): n %d vs %d, bytes equal=%v", skip, dlen, nW, nP, bytes.Equal(bW, bP))
	}

	// Windowed pack through a resuming cursor, with a random negative
	// bias (the virtual-file-buffer shift, exercised with padding).
	pad := r.Int63n(8)
	bias := -pad
	bsrc := make([]byte, span+pad)
	r.Read(bsrc)
	cW := bytes.Repeat([]byte{0xDD}, int(total))
	cP := bytes.Repeat([]byte{0xDD}, int(total))
	var cur Cursor
	cur.Reset(p)
	for d := int64(0); d < total; {
		w := 1 + r.Int63n(1+total/4)
		if d+w > total {
			w = total - d
		}
		CopyRange(cW[d:d+w], bsrc, dt, d, d+w, bias, true)
		cur.CopyRange(cP[d:d+w], bsrc, d, d+w, bias, true)
		d += w
	}
	if !bytes.Equal(cW, cP) {
		return fmt.Errorf("cursor-windowed pack differs (pad=%d)", pad)
	}

	// Out-of-sequence windows: the cursor hint must not poison a window
	// that does not continue the previous one.
	for trial := 0; trial < 4; trial++ {
		a := r.Int63n(total)
		b := a + 1 + r.Int63n(total-a)
		for i := int64(0); i < b-a; i++ {
			cW[a+i], cP[a+i] = 0xEE, 0xEE
		}
		CopyRange(cW[a:b], bsrc, dt, a, b, bias, true)
		cur.CopyRange(cP[a:b], bsrc, a, b, bias, true)
		if !bytes.Equal(cW[a:b], cP[a:b]) {
			return fmt.Errorf("out-of-sequence window [%d,%d) differs", a, b)
		}
	}

	// Windowed unpack with whole-buffer sentinels: ascending windows
	// writing into the typed buffer must leave holes untouched.
	for i := range bW {
		bW[i], bP[i] = 0x11, 0x11
	}
	cur.Reset(p)
	for d := int64(0); d < total; {
		w := 1 + r.Int63n(1+total/3)
		if d+w > total {
			w = total - d
		}
		CopyRange(cd[d:d+w], bW[:span], dt, d, d+w, 0, false)
		cur.CopyRange(cd[d:d+w], bP[:span], d, d+w, 0, false)
		d += w
	}
	if !bytes.Equal(bW, bP) {
		return fmt.Errorf("cursor-windowed unpack differs")
	}
	return nil
}

func TestQuickProgramVsWalk(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := datatype.RandomFiletype(r, 3)
		if err := checkProgramVsWalk(dt, r); err != nil {
			t.Logf("seed %d, type %v: %v", seed, dt, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestProgramCoalescing pins the compile-time merges: shapes whose tree
// structure hides contiguity or a uniform stride must collapse to the
// minimal group form.
func TestProgramCoalescing(t *testing.T) {
	resized := func(dt *datatype.Type, lb, ext int64) *datatype.Type {
		t.Helper()
		out, err := datatype.Resized(dt, lb, ext)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	contig := func(count int64, child *datatype.Type) *datatype.Type {
		t.Helper()
		out, err := datatype.Contiguous(count, child)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	strct := func(blocklens, displs []int64, children []*datatype.Type) *datatype.Type {
		t.Helper()
		out, err := datatype.Struct(blocklens, displs, children)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name   string
		dt     *datatype.Type
		groups int
	}{
		// A strided vector is already one group for the walk.
		{"vector", vec(t, 8, 1, 2, datatype.Double), 1},
		// A contiguous sequence of padded elements: the walk recurses
		// per block (the child is not dense), the program merges the 64
		// equal, evenly spaced runs into one arithmetic progression.
		{"padded-contig", contig(64, resized(datatype.Double, 0, 16)), 1},
		// Struct members that abut in the buffer merge into one run.
		{"abutting-struct", strct([]int64{1, 1}, []int64{0, 8}, []*datatype.Type{datatype.Double, datatype.Double}), 1},
		// Struct members at a uniform pitch merge into one progression.
		{"pitched-struct", strct([]int64{1, 1, 1}, []int64{0, 16, 32},
			[]*datatype.Type{datatype.Double, datatype.Double, datatype.Double}), 1},
		// Two vectors back to back with the same geometry, phase-aligned.
		{"aligned-vectors", strct([]int64{1, 1}, []int64{0, 64},
			[]*datatype.Type{vec(t, 4, 8, 16, datatype.Byte), vec(t, 4, 8, 16, datatype.Byte)}), 1},
		// Different widths cannot merge.
		{"mixed-struct", strct([]int64{1, 1}, []int64{0, 16},
			[]*datatype.Type{datatype.Int32, datatype.Double}), 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := Compile(c.dt)
			if p == nil {
				t.Fatalf("Compile declined %v", c.dt)
			}
			if p.Groups() != c.groups {
				t.Errorf("Groups() = %d, want %d", p.Groups(), c.groups)
			}
			if err := checkProgramVsWalk(c.dt, rand.New(rand.NewSource(7))); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestProgramDeclines pins the compile guards: nil and dataless types
// decline, and a decline is represented as a nil *Program whose
// Groups() is safely callable.
func TestProgramDeclines(t *testing.T) {
	if Compile(nil) != nil {
		t.Error("Compile(nil) must return nil")
	}
	empty := vec(t, 3, 0, 2, datatype.Double) // zero-length blocks: size 0
	if empty.Size() != 0 {
		t.Fatalf("setup: size %d, want 0", empty.Size())
	}
	if Compile(empty) != nil {
		t.Error("Compile of a dataless type must return nil")
	}
	var p *Program
	if p.Groups() != 0 {
		t.Error("nil Program Groups() must be 0")
	}
}

// TestProgramHostileShapes pins that compilation of adversarial trees
// is bounded: a huge-extent type compiles to its true group count
// without extent-proportional work, and a tree whose run structure
// cannot be coalesced below the group cap declines instead of
// allocating without bound.
func TestProgramHostileShapes(t *testing.T) {
	huge, err := datatype.Resized(datatype.Double, 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	p := Compile(huge)
	if p == nil || p.Groups() != 1 {
		t.Fatalf("huge-extent type: program %v, groups %d", p, p.Groups())
	}
	dst := make([]byte, 8)
	src := make([]byte, 8)
	if n := p.PackCount(dst, src, 1, 0); n != 8 {
		t.Errorf("huge-extent pack moved %d bytes, want 8", n)
	}

	// A holey fractal: each level doubles the run count and no two runs
	// are evenly spaced across levels, so coalescing cannot compress it
	// below the cap.  Compile must decline, not grow without bound.
	frac := datatype.Byte
	for i := 0; i < 18; i++ {
		frac = vec(t, 2, 1, 3, frac)
	}
	if frac.Blocks() <= maxProgramGroups {
		t.Fatalf("setup: fractal has only %d blocks", frac.Blocks())
	}
	if got := Compile(frac); got != nil {
		t.Errorf("fractal beyond the group cap compiled to %d groups; want decline", got.Groups())
	}
}

// TestProgramCursorBoundaries drives windows that end exactly on group,
// instance, and element boundaries through one cursor — the resume
// hints' hard cases.
func TestProgramCursorBoundaries(t *testing.T) {
	dt := vec(t, 3, 2, 5, datatype.Int32) // runs of 8B at 0,20,40; size 24
	p := Compile(dt)
	if p == nil {
		t.Fatal("Compile declined")
	}
	total := 4 * p.Size() // four instances
	span := walkSpan(dt, total)
	src := make([]byte, span)
	rand.New(rand.NewSource(3)).Read(src)
	for _, widths := range [][]int64{
		{8, 8, 8},          // group boundaries
		{24, 24, 24, 24},   // instance boundaries
		{4, 4, 4, 4},       // element boundaries
		{1, 7, 16, 24, 48}, // mixed, instance-crossing
		{3, 5, 2, 6, 13, 19, 1, 47},
	} {
		want := make([]byte, total)
		got := make([]byte, total)
		var cur Cursor
		cur.Reset(p)
		d := int64(0)
		for i := 0; d < total; i++ {
			w := widths[i%len(widths)]
			if d+w > total {
				w = total - d
			}
			CopyRange(want[d:d+w], src, dt, d, d+w, 0, true)
			cur.CopyRange(got[d:d+w], src, d, d+w, 0, true)
			d += w
		}
		if !bytes.Equal(want, got) {
			t.Errorf("widths %v: cursor-windowed pack differs", widths)
		}
	}
}
