// Package fotf implements flattening-on-the-fly, the datatype-handling
// technique at the core of listless I/O (Träff et al., "Flattening on the
// fly", EuroPVM/MPI 1999; Worringen et al., SC'03 §3.1).
//
// Instead of materializing a datatype as an explicit ol-list of
// ⟨offset,length⟩ tuples, fotf operates directly on the datatype tree:
//
//   - Pack / Unpack move data between a typed buffer and a contiguous
//     buffer in time proportional to the bytes moved plus the depth of
//     the tree, regardless of the number of blocks in the type and of
//     the number of bytes skipped;
//   - TypeExtent / TypeSize (the paper's MPIR_Type_ff_extent and
//     MPIR_Type_ff_size) convert between data sizes and buffer extents
//     at arbitrary starting points in O(depth), replacing the O(N_block)
//     linear ol-list traversal of list-based positioning;
//   - Runs enumerates the contiguous runs backing a data range as
//     *groups* of evenly spaced runs, so that callers copy with tight
//     batch loops — the scalar analogue of the vector gather/scatter
//     operations the SX implementation exploits.
//
// Data offsets ("data bytes", the paper's skipbytes) count the bytes of
// actual data in type-map order.  Buffer offsets are byte positions
// relative to the origin of instance 0 of the type.  All functions treat
// the type as tiling indefinitely at its extent, which is how MPI-IO
// fileviews use filetypes.
package fotf

import (
	"sync"

	"repro/internal/datatype"
)

// nodeInfo caches per-node prefix sums for indexed and struct nodes so
// that block lookup inside a node is O(log blocks-of-node) instead of
// linear.  The tables are proportional to the *tree* (the node's own
// block count), never to the expanded number of leaf blocks.
type nodeInfo struct {
	cumSize []int64 // cumSize[i] = data bytes in blocks [0,i)
}

var nodeCache sync.Map // *datatype.Type -> *nodeInfo

func info(t *datatype.Type) *nodeInfo {
	if v, ok := nodeCache.Load(t); ok {
		return v.(*nodeInfo)
	}
	var ni nodeInfo
	switch t.Kind() {
	case datatype.KindIndexed:
		bl := t.Blocklens()
		cs := t.Child().Size()
		ni.cumSize = make([]int64, len(bl)+1)
		for i, b := range bl {
			ni.cumSize[i+1] = ni.cumSize[i] + b*cs
		}
	case datatype.KindStruct:
		bl := t.Blocklens()
		ch := t.Children()
		ni.cumSize = make([]int64, len(bl)+1)
		for i, b := range bl {
			ni.cumSize[i+1] = ni.cumSize[i] + b*ch[i].Size()
		}
	}
	v, _ := nodeCache.LoadOrStore(t, &ni)
	return v.(*nodeInfo)
}

// findBlock returns the index i of the block containing data offset d,
// i.e. the smallest i with cum[i+1] > d, skipping empty blocks.  The
// caller guarantees 0 <= d < cum[len-1].
func (ni *nodeInfo) findBlock(d int64) int {
	lo, hi := 0, len(ni.cumSize)-2
	for lo < hi {
		mid := (lo + hi) / 2
		if ni.cumSize[mid+1] <= d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// EmitFunc receives one group of n evenly spaced runs: run i (0 <= i < n)
// is runLen bytes at buffer offset bufOff + i*stride and corresponds to
// data bytes [dataOff + i*runLen, dataOff + (i+1)*runLen).
type EmitFunc func(bufOff, dataOff, runLen, stride, n int64)

// Runs enumerates the contiguous runs of the typed data of t (tiling
// indefinitely) restricted to the data range [d0, d1), in type-map order,
// as groups of evenly spaced runs.  Positioning to d0 costs O(Depth);
// the number of emitted groups is proportional to the runs actually
// touched, with regular (vector-like) regions collapsed into single
// groups.
func Runs(t *datatype.Type, d0, d1 int64, emit EmitFunc) {
	size := t.Size()
	if d1 <= d0 || size == 0 {
		return
	}
	if t.ContiguousTiled() {
		// Contiguous tiling maps data offsets one-to-one to buffer
		// offsets (shifted by TrueLB): one run, regardless of range.
		emit(t.TrueLB()+d0, d0, d1-d0, 0, 1)
		return
	}
	ext := t.Extent()
	k0 := d0 / size
	k1 := (d1 - 1) / size
	for k := k0; k <= k1; k++ {
		lo, hi := int64(0), size
		if k == k0 {
			lo = d0 - k*size
		}
		if k == k1 {
			hi = d1 - k*size
		}
		runs(t, k*ext, k*size, lo, hi, emit)
	}
}

// runs emits the runs of data range [lo, hi) of a single instance of t
// whose origin is at buffer offset base; gd is the global data offset of
// local data offset 0.
func runs(t *datatype.Type, base, gd, lo, hi int64, emit EmitFunc) {
	if hi <= lo {
		return
	}
	switch t.Kind() {
	case datatype.KindNamed:
		emit(base+lo, gd+lo, hi-lo, 0, 1)

	case datatype.KindResized:
		runs(t.Child(), base, gd, lo, hi, emit)

	case datatype.KindContiguous:
		child := t.Child()
		runsTiled(child, t.Count(), child.Extent(), base, gd, lo, hi, emit)

	case datatype.KindVector:
		child := t.Child()
		per := t.Blocklen() * child.Size() // data bytes per block
		k0 := lo / per
		k1 := (hi - 1) / per
		// A block is one dense run when its children tile contiguously,
		// or when there is a single dense child.
		blockDense := child.ContiguousTiled() || (t.Blocklen() == 1 && child.Dense())
		if k0 == k1 {
			blockRuns(t, base+k0*t.StrideBytes(), gd+k0*per, lo-k0*per, hi-k0*per, emit)
			return
		}
		// Head partial block.
		if lo != k0*per {
			blockRuns(t, base+k0*t.StrideBytes(), gd+k0*per, lo-k0*per, per, emit)
			k0++
		}
		// Tail partial block.
		tail := hi != (k1+1)*per
		kEnd := k1
		if tail {
			kEnd = k1 - 1
		}
		// Middle full blocks: one group when dense.
		if kEnd >= k0 {
			n := kEnd - k0 + 1
			if blockDense {
				emit(base+k0*t.StrideBytes()+child.TrueLB(), gd+k0*per, per, t.StrideBytes(), n)
			} else {
				for k := k0; k <= kEnd; k++ {
					blockRuns(t, base+k*t.StrideBytes(), gd+k*per, 0, per, emit)
				}
			}
		}
		if tail {
			blockRuns(t, base+k1*t.StrideBytes(), gd+k1*per, 0, hi-k1*per, emit)
		}

	case datatype.KindIndexed:
		child := t.Child()
		ni := info(t)
		bl := t.Blocklens()
		displs := t.Displs()
		i := ni.findBlock(lo)
		for ; i < len(bl) && ni.cumSize[i] < hi; i++ {
			if bl[i] == 0 {
				continue
			}
			blo, bhi := int64(0), bl[i]*child.Size()
			if d := lo - ni.cumSize[i]; d > blo {
				blo = d
			}
			if d := hi - ni.cumSize[i]; d < bhi {
				bhi = d
			}
			runsTiled(child, bl[i], child.Extent(), base+displs[i], gd+ni.cumSize[i], blo, bhi, emit)
		}

	case datatype.KindStruct:
		ni := info(t)
		bl := t.Blocklens()
		displs := t.Displs()
		children := t.Children()
		i := ni.findBlock(lo)
		for ; i < len(bl) && ni.cumSize[i] < hi; i++ {
			c := children[i]
			if bl[i] == 0 || c.Size() == 0 {
				continue
			}
			blo, bhi := int64(0), bl[i]*c.Size()
			if d := lo - ni.cumSize[i]; d > blo {
				blo = d
			}
			if d := hi - ni.cumSize[i]; d < bhi {
				bhi = d
			}
			runsTiled(c, bl[i], c.Extent(), base+displs[i], gd+ni.cumSize[i], blo, bhi, emit)
		}
	}
}

// blockRuns emits the runs of data range [lo, hi) of one vector block of
// t (blocklen children tiling at child extent) whose block origin is at
// buffer offset base.
func blockRuns(t *datatype.Type, base, gd, lo, hi int64, emit EmitFunc) {
	child := t.Child()
	runsTiled(child, t.Blocklen(), child.Extent(), base, gd, lo, hi, emit)
}

// runsTiled emits the runs of data range [lo, hi) of count instances of
// child tiling at stride tile from buffer offset base.
func runsTiled(child *datatype.Type, count, tile, base, gd, lo, hi int64, emit EmitFunc) {
	if hi <= lo {
		return
	}
	per := child.Size()
	if per == 0 {
		return
	}
	if child.ContiguousTiled() {
		// The whole region is a single run (child extent == size)
		// starting at the first child's TrueLB.
		emit(base+child.TrueLB()+lo, gd+lo, hi-lo, 0, 1)
		return
	}
	k0 := lo / per
	k1 := (hi - 1) / per
	if k0 == k1 {
		runs(child, base+k0*tile, gd+k0*per, lo-k0*per, hi-k0*per, emit)
		return
	}
	if lo != k0*per {
		runs(child, base+k0*tile, gd+k0*per, lo-k0*per, per, emit)
		k0++
	}
	tail := hi != (k1+1)*per
	kEnd := k1
	if tail {
		kEnd = k1 - 1
	}
	if kEnd >= k0 {
		n := kEnd - k0 + 1
		if child.Dense() {
			emit(base+k0*tile+child.TrueLB(), gd+k0*per, per, tile, n)
		} else {
			for k := k0; k <= kEnd; k++ {
				runs(child, base+k*tile, gd+k*per, 0, per, emit)
			}
		}
	}
	if tail {
		runs(child, base+k1*tile, gd+k1*per, 0, hi-k1*per, emit)
	}
}
