package fotf

import (
	"encoding/binary"

	"repro/internal/datatype"
)

// Pack packs data from the typed buffer src into the contiguous buffer
// dst, skipping the first skip data bytes of the (indefinitely tiled)
// type t — the paper's MPIR_ff_pack.  src is addressed from the origin of
// instance 0; t must not place data at negative offsets.  It returns the
// number of bytes packed: min(len(dst), available data if t is tiled over
// len(src)).
//
// The copy itself runs in batch loops over groups of evenly spaced runs
// (see Runs); the time is proportional to the bytes copied plus the tree
// depth, independent of skip and of the block count of t.
func Pack(dst, src []byte, t *datatype.Type, skip int64) int64 {
	limit := avail(t, int64(len(src)), skip)
	if limit > int64(len(dst)) {
		limit = int64(len(dst))
	}
	if limit <= 0 {
		return 0
	}
	Runs(t, skip, skip+limit, func(bufOff, dataOff, runLen, stride, n int64) {
		copyGroup(dst[dataOff-skip:], src, bufOff, runLen, stride, n, true)
	})
	return limit
}

// Unpack unpacks data from the contiguous buffer src into the typed
// buffer dst, skipping the first skip data bytes of t — the paper's
// MPIR_ff_unpack.  It returns the number of bytes unpacked:
// min(len(src), available data if t is tiled over len(dst)).
func Unpack(dst, src []byte, t *datatype.Type, skip int64) int64 {
	limit := avail(t, int64(len(dst)), skip)
	if limit > int64(len(src)) {
		limit = int64(len(src))
	}
	if limit <= 0 {
		return 0
	}
	Runs(t, skip, skip+limit, func(bufOff, dataOff, runLen, stride, n int64) {
		copyGroup(src[dataOff-skip:], dst, bufOff, runLen, stride, n, false)
	})
	return limit
}

// PackCount packs exactly the data of count instances (the message-style
// entry point, where the typed buffer is known to hold count whole
// instances).
func PackCount(dst, src []byte, count int64, t *datatype.Type, skip int64) int64 {
	limit := count*t.Size() - skip
	if limit > int64(len(dst)) {
		limit = int64(len(dst))
	}
	if limit <= 0 {
		return 0
	}
	Runs(t, skip, skip+limit, func(bufOff, dataOff, runLen, stride, n int64) {
		copyGroup(dst[dataOff-skip:], src, bufOff, runLen, stride, n, true)
	})
	return limit
}

// UnpackCount unpacks into exactly count instances.
func UnpackCount(dst, src []byte, count int64, t *datatype.Type, skip int64) int64 {
	limit := count*t.Size() - skip
	if limit > int64(len(src)) {
		limit = int64(len(src))
	}
	if limit <= 0 {
		return 0
	}
	Runs(t, skip, skip+limit, func(bufOff, dataOff, runLen, stride, n int64) {
		copyGroup(src[dataOff-skip:], dst, bufOff, runLen, stride, n, false)
	})
	return limit
}

// avail returns the number of data bytes past skip of t tiled over a
// typed buffer of buflen bytes: whole instances that fit plus a final
// partial instance truncated at the buffer end.
func avail(t *datatype.Type, buflen, skip int64) int64 {
	size, ext := t.Size(), t.Extent()
	if size == 0 {
		return 0
	}
	var total int64
	if ext <= 0 {
		total = size
	} else {
		k := buflen / ext // whole instances
		total = k * size
		if rest := buflen - k*ext; rest > 0 {
			total += bufToData1(t, rest)
		}
	}
	if skip >= total {
		return 0
	}
	return total - skip
}

// copyGroup moves one group of n evenly spaced runs between the typed
// buffer b (runs of runLen bytes at bufOff + i*stride) and the contiguous
// buffer c (at i*runLen).  pack=true copies b→c.  Width-specialized inner
// loops take the role of the SX gather/scatter operations.
func copyGroup(c, b []byte, bufOff, runLen, stride, n int64, pack bool) {
	if n == 1 || stride == runLen {
		// Single run, or runs that abut: one big copy.
		total := runLen * n
		if pack {
			copy(c[:total], b[bufOff:bufOff+total])
		} else {
			copy(b[bufOff:bufOff+total], c[:total])
		}
		return
	}
	switch runLen {
	case 4:
		if pack {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint32(c[i*4:], binary.LittleEndian.Uint32(b[bufOff+i*stride:]))
			}
		} else {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint32(b[bufOff+i*stride:], binary.LittleEndian.Uint32(c[i*4:]))
			}
		}
	case 8:
		if pack {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint64(c[i*8:], binary.LittleEndian.Uint64(b[bufOff+i*stride:]))
			}
		} else {
			for i := int64(0); i < n; i++ {
				binary.LittleEndian.PutUint64(b[bufOff+i*stride:], binary.LittleEndian.Uint64(c[i*8:]))
			}
		}
	case 16:
		if pack {
			for i := int64(0); i < n; i++ {
				s := b[bufOff+i*stride:]
				binary.LittleEndian.PutUint64(c[i*16:], binary.LittleEndian.Uint64(s))
				binary.LittleEndian.PutUint64(c[i*16+8:], binary.LittleEndian.Uint64(s[8:]))
			}
		} else {
			for i := int64(0); i < n; i++ {
				d := b[bufOff+i*stride:]
				binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(c[i*16:]))
				binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(c[i*16+8:]))
			}
		}
	default:
		if pack {
			for i := int64(0); i < n; i++ {
				copy(c[i*runLen:(i+1)*runLen], b[bufOff+i*stride:])
			}
		} else {
			for i := int64(0); i < n; i++ {
				copy(b[bufOff+i*stride:bufOff+i*stride+runLen], c[i*runLen:])
			}
		}
	}
}

// CopyRange moves the data bytes [d0, d1) of the tiled type t between the
// typed buffer b (addressed from the instance-0 origin, offset by bias
// bytes: run at bufOff lands at b[bufOff-bias]) and the contiguous buffer
// c (data byte d lands at c[d-d0]).  pack=true copies b→c.
//
// The bias parameter implements the paper's "virtual file buffer"
// adjustment (§3.2.2): a window of the file starting at absolute offset
// lo is addressed as a typed buffer whose origin lies bias=lo bytes
// before the window start.
func CopyRange(c, b []byte, t *datatype.Type, d0, d1, bias int64, pack bool) {
	if d1 <= d0 {
		return
	}
	Runs(t, d0, d1, func(bufOff, dataOff, runLen, stride, n int64) {
		copyGroup(c[dataOff-d0:], b, bufOff-bias, runLen, stride, n, pack)
	})
}
