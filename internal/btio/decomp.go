package btio

import (
	"encoding/binary"

	"repro/internal/datatype"
)

// bounds splits n into q chunks as evenly as possible and returns the
// q+1 chunk boundaries.
func bounds(n, q int) []int {
	b := make([]int, q+1)
	base, rem := n/q, n%q
	for c := 0; c <= q; c++ {
		b[c] = c*base + min(c, rem)
	}
	return b
}

// cell is one grid cell owned by a process: global start and size per
// spatial dimension.
type cell struct {
	start [3]int
	size  [3]int
}

// decomp is one process's view of BT's diagonal multipartitioning.
type decomp struct {
	n     int
	q     int
	rank  int
	ghost int
	cells []cell // ordered by z-slab (ascending file offsets)
}

// newDecomp computes the q cells of rank on an N³ grid: for z-slab c the
// process at grid position (pi, pj) owns cell ((pi+c) mod q, (pj+c) mod q)
// — one cell per slab, every slab covered exactly once.
func newDecomp(n, q, rank, ghost int) *decomp {
	b := bounds(n, q)
	pi, pj := rank%q, rank/q
	d := &decomp{n: n, q: q, rank: rank, ghost: ghost}
	for c := 0; c < q; c++ {
		ci, cj := (pi+c)%q, (pj+c)%q
		d.cells = append(d.cells, cell{
			start: [3]int{b[ci], b[cj], b[c]},
			size:  [3]int{b[ci+1] - b[ci], b[cj+1] - b[cj], b[c+1] - b[c]},
		})
	}
	return d
}

// filetype builds the process's fileview: a struct of one subarray per
// cell over the global (5, N, N, N) Fortran-order array, with the whole
// array as extent so that consecutive time steps tile.
func (d *decomp) filetype() (*datatype.Type, error) {
	children := make([]*datatype.Type, len(d.cells))
	blocklens := make([]int64, len(d.cells))
	displs := make([]int64, len(d.cells))
	n64 := int64(d.n)
	for i, c := range d.cells {
		sub, err := datatype.Subarray(
			[]int64{5, n64, n64, n64},
			[]int64{5, int64(c.size[0]), int64(c.size[1]), int64(c.size[2])},
			[]int64{0, int64(c.start[0]), int64(c.start[1]), int64(c.start[2])},
			datatype.OrderFortran,
			datatype.Double,
		)
		if err != nil {
			return nil, err
		}
		children[i] = sub
		blocklens[i] = 1
	}
	st, err := datatype.Struct(blocklens, displs, children)
	if err != nil {
		return nil, err
	}
	return datatype.Resized(st, 0, int64(cellBytes)*n64*n64*n64)
}

// ghosted returns a cell's local (ghosted) array dimensions.
func (d *decomp) ghosted(c cell) [3]int {
	g := d.ghost
	return [3]int{c.size[0] + 2*g, c.size[1] + 2*g, c.size[2] + 2*g}
}

// cellExtent returns the byte size of a cell's local ghosted array.
func (d *decomp) cellExtent(c cell) int64 {
	gd := d.ghosted(c)
	return int64(cellBytes) * int64(gd[0]) * int64(gd[1]) * int64(gd[2])
}

// memtype builds the memory datatype: a struct of one subarray per cell,
// each selecting the interior of the cell's ghosted local array.  The
// local buffer is the concatenation of the ghosted cell arrays.  With
// ghost > 0 the memtype is non-contiguous, as in the real BT code.
func (d *decomp) memtype() (*datatype.Type, error) {
	children := make([]*datatype.Type, len(d.cells))
	blocklens := make([]int64, len(d.cells))
	displs := make([]int64, len(d.cells))
	g := int64(d.ghost)
	var off int64
	for i, c := range d.cells {
		gd := d.ghosted(c)
		sub, err := datatype.Subarray(
			[]int64{5, int64(gd[0]), int64(gd[1]), int64(gd[2])},
			[]int64{5, int64(c.size[0]), int64(c.size[1]), int64(c.size[2])},
			[]int64{0, g, g, g},
			datatype.OrderFortran,
			datatype.Double,
		)
		if err != nil {
			return nil, err
		}
		children[i] = sub
		blocklens[i] = 1
		displs[i] = off
		off += d.cellExtent(c)
	}
	st, err := datatype.Struct(blocklens, displs, children)
	if err != nil {
		return nil, err
	}
	return datatype.Resized(st, 0, off)
}

// index returns the byte offset of component m at local ghosted
// coordinates (x, y, z) within a ghosted cell array.
func cellIndex(gd [3]int, m, x, y, z int) int64 {
	return int64(8) * int64(m+5*(x+gd[0]*(y+gd[1]*z)))
}

// fill initializes the interiors of the local cells with a deterministic
// function of the *global* coordinates, so files written by different
// decompositions/engines are comparable.
func (d *decomp) fill(u []byte, rank int) {
	g := d.ghost
	var base int64
	for _, c := range d.cells {
		gd := d.ghosted(c)
		for z := 0; z < c.size[2]; z++ {
			for y := 0; y < c.size[1]; y++ {
				for x := 0; x < c.size[0]; x++ {
					for m := 0; m < 5; m++ {
						v := seedValue(m, c.start[0]+x, c.start[1]+y, c.start[2]+z, d.n)
						off := base + cellIndex(gd, m, x+g, y+g, z+g)
						binary.LittleEndian.PutUint64(u[off:], math64bits(v))
					}
				}
			}
		}
		base += d.cellExtent(c)
	}
}

// seedValue is the initial solution value at global (m, i, j, k).
func seedValue(m, i, j, k, n int) float64 {
	return float64(m+1) + 0.5*float64(i) + 0.25*float64(j) + 0.125*float64(k) + 1.0/float64(n)
}

func math64bits(v float64) uint64 {
	return uint64frombits(v)
}

// sweep runs one BT-like relaxation sweep: a 7-point stencil smoothing
// of each component over each cell's interior (cell-local; the halo is
// not exchanged — the kernel only provides a representative compute
// load, see DESIGN.md).
func (d *decomp) sweep(u []byte) {
	var base int64
	for _, c := range d.cells {
		gd := d.ghosted(c)
		g := d.ghost
		sx, sy, sz := c.size[0], c.size[1], c.size[2]
		// Strides in doubles for neighbor access.
		dx := int64(5)
		dy := int64(5 * gd[0])
		dz := int64(5 * gd[0] * gd[1])
		buf := u[base : base+d.cellExtent(c)]
		for z := 0; z < sz; z++ {
			for y := 0; y < sy; y++ {
				row := cellIndex(gd, 0, g, y+g, z+g) / 8
				for x := 0; x < sx; x++ {
					for m := 0; m < 5; m++ {
						i := row + int64(5*x) + int64(m)
						cv := loadF(buf, i)
						acc := 2 * cv
						if x > 0 {
							acc += loadF(buf, i-dx)
						}
						if x < sx-1 {
							acc += loadF(buf, i+dx)
						}
						if y > 0 {
							acc += loadF(buf, i-dy)
						}
						if y < sy-1 {
							acc += loadF(buf, i+dy)
						}
						if z > 0 {
							acc += loadF(buf, i-dz)
						}
						if z < sz-1 {
							acc += loadF(buf, i+dz)
						}
						storeF(buf, i, 0.125*acc)
					}
				}
			}
		}
		base += d.cellExtent(c)
	}
}

// equalInterior compares the cell interiors of two local buffers.
func (d *decomp) equalInterior(a, b []byte) bool {
	g := d.ghost
	var base int64
	for _, c := range d.cells {
		gd := d.ghosted(c)
		rowBytes := int64(cellBytes) * int64(c.size[0])
		for z := 0; z < c.size[2]; z++ {
			for y := 0; y < c.size[1]; y++ {
				off := base + cellIndex(gd, 0, g, y+g, z+g)
				if string(a[off:off+rowBytes]) != string(b[off:off+rowBytes]) {
					return false
				}
			}
		}
		base += d.cellExtent(c)
	}
	return true
}

func loadF(b []byte, i int64) float64 {
	return float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
}

func storeF(b []byte, i int64, v float64) {
	binary.LittleEndian.PutUint64(b[i*8:], uint64frombits(v))
}
