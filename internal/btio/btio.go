// Package btio implements the BTIO application-kernel benchmark of the
// paper's §4.2: the I/O pattern of the NAS Parallel Benchmarks BT solver
// with MPI-IO ("full" subarray-datatype mode), plus a representative
// BT-like compute kernel that provides the no-I/O baseline time.
//
// The solution array is u(5, N, N, N) of float64 in Fortran order (the 5
// solution components vary fastest).  BT's diagonal multipartitioning
// assigns each of the P = q² processes q cells, one per z-slab, such
// that every slab's q×q cells are covered exactly once.  Each process
// writes its cells with a single collective call per time step through a
// fileview built from subarray datatypes; successive steps append whole
// array snapshots (D_run = N_step · D_step).
//
// The resulting access pattern per process — N_block ≈ N²/q contiguous
// runs of S_block ≈ 40·N/q bytes — reproduces Table 2 of the paper
// exactly (see analytics.go and the tests).
package btio

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Class is a NAS problem class.
type Class struct {
	Name string
	Grid int // N: the array is 5 × N × N × N doubles
}

// The NAS BT problem classes.
var Classes = []Class{
	{Name: "S", Grid: 12},
	{Name: "W", Grid: 24},
	{Name: "A", Grid: 64},
	{Name: "B", Grid: 102},
	{Name: "C", Grid: 162},
}

// ClassByName looks up a class by its NAS letter.
func ClassByName(name string) (Class, error) {
	for _, c := range Classes {
		if c.Name == name {
			return c, nil
		}
	}
	return Class{}, fmt.Errorf("btio: unknown class %q", name)
}

// DefaultSteps is BTIO's default number of time steps (each followed by
// a collective write of the full array).
const DefaultSteps = 40

// cellBytes is the size of one grid cell: 5 doubles.
const cellBytes = 5 * 8

// Config parameterizes one BTIO run.
type Config struct {
	Class  Class
	P      int // must be a perfect square
	Engine core.Engine
	Steps  int // 0 → DefaultSteps
	// Ghost is the halo width of the local cell arrays; a non-zero value
	// makes the memtype non-contiguous, as in the real BT code.
	Ghost int
	// ComputeIters is the number of stencil sweeps per step (0 disables
	// compute entirely; then TCompute is ~0).
	ComputeIters int
	Verify       bool

	Options core.Options
	Backend storage.Backend
}

func (c Config) steps() int {
	if c.Steps > 0 {
		return c.Steps
	}
	return DefaultSteps
}

// Q returns sqrt(P), the process-grid side.
func (c Config) Q() (int, error) {
	q := int(math.Round(math.Sqrt(float64(c.P))))
	if q*q != c.P || q <= 0 {
		return 0, fmt.Errorf("btio: P=%d is not a positive square", c.P)
	}
	return q, nil
}

// Result carries the measured times of one run.
type Result struct {
	Config   Config
	Steps    int
	TCompute time.Duration // max across ranks: time in the compute kernel
	TIO      time.Duration // max across ranks: time in collective writes
	// Bandwidth is the effective I/O bandwidth D_written/TIO in MB/s.
	Bandwidth float64
	// BytesWritten is the actual volume written (Steps × DStep).
	BytesWritten int64
	Stats        core.Stats
	Verified     bool
}

// Run executes the benchmark: per step, optional compute sweeps on the
// local cells, then one collective write of the whole array; finally an
// optional collective read-back verification of the last snapshot.
func Run(cfg Config) (Result, error) {
	q, err := cfg.Q()
	if err != nil {
		return Result{}, err
	}
	N := cfg.Class.Grid
	if N < q {
		return Result{}, fmt.Errorf("btio: grid %d smaller than process grid side %d", N, q)
	}
	steps := cfg.steps()
	be := cfg.Backend
	if be == nil {
		be = storage.NewMem()
	}
	// Pre-size the file so backend growth (reallocation of a growing
	// in-memory store, block allocation on disk) is not charged to the
	// first engine measured.
	if total := int64(steps) * cfg.DStep(); be.Size() < total {
		if err := be.Truncate(total); err != nil {
			return Result{}, err
		}
	}
	sh := core.NewShared(be)
	opts := cfg.Options
	opts.Engine = cfg.Engine

	arrayBytes := int64(cellBytes) * int64(N) * int64(N) * int64(N)

	var computeNs, ioNs int64
	var rank0Stats core.Stats
	verified := true

	_, err = mpi.Run(cfg.P, func(p *mpi.Proc) {
		dec := newDecomp(N, q, p.Rank(), cfg.Ghost)

		f, err := core.Open(p, sh, opts)
		if err != nil {
			panic(err)
		}
		defer f.Close()

		ft, err := dec.filetype()
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Double, ft); err != nil {
			panic(err)
		}
		memt, err := dec.memtype()
		if err != nil {
			panic(err)
		}

		u := make([]byte, memt.Extent())
		dec.fill(u, p.Rank())

		myEtypes := ft.Size() / 8 // visible doubles per filetype instance

		var cNs, wNs int64
		for s := 0; s < steps; s++ {
			t0 := time.Now()
			for it := 0; it < cfg.ComputeIters; it++ {
				dec.sweep(u)
			}
			cNs += time.Since(t0).Nanoseconds()

			p.Barrier()
			t1 := time.Now()
			if _, err := f.WriteAtAll(int64(s)*myEtypes, 1, memt, u); err != nil {
				panic(err)
			}
			p.Barrier()
			wNs += time.Since(t1).Nanoseconds()
		}

		if cfg.Verify {
			got := make([]byte, len(u))
			if _, err := f.ReadAtAll(int64(steps-1)*myEtypes, 1, memt, got); err != nil {
				panic(err)
			}
			if !dec.equalInterior(u, got) {
				verified = false
			}
		}

		cMax := p.AllreduceInt64(cNs, mpi.OpMax)
		wMax := p.AllreduceInt64(wNs, mpi.OpMax)
		if p.Rank() == 0 {
			computeNs, ioNs = cMax, wMax
			rank0Stats = f.Stats
		}
	})
	if err != nil {
		return Result{}, err
	}
	if cfg.Verify && !verified {
		return Result{}, fmt.Errorf("btio: read-back verification failed (%+v)", cfg)
	}

	res := Result{
		Config:       cfg,
		Steps:        steps,
		TCompute:     time.Duration(computeNs),
		TIO:          time.Duration(ioNs),
		BytesWritten: int64(steps) * arrayBytes,
		Stats:        rank0Stats,
		Verified:     verified,
	}
	if ioNs > 0 {
		res.Bandwidth = float64(res.BytesWritten) / (float64(ioNs) / 1e9) / 1e6
	}
	return res, nil
}

// Filetype builds the fileview datatype of one rank, exposed for
// inspection tools and tests.
func Filetype(class Class, p, rank int) (*datatype.Type, error) {
	cfg := Config{Class: class, P: p}
	q, err := cfg.Q()
	if err != nil {
		return nil, err
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("btio: rank %d out of range [0,%d)", rank, p)
	}
	return newDecomp(class.Grid, q, rank, 0).filetype()
}
