package btio

import "math"

// Analytic characterization of BTIO's data volume and access pattern,
// reproducing Tables 1 and 2 of the paper.

// DStep returns the bytes written per time step: the whole 5×N³ array of
// doubles (Table 1).
func (c Config) DStep() int64 {
	n := int64(c.Class.Grid)
	return int64(cellBytes) * n * n * n
}

// DRun returns the bytes written over the whole run (Table 1,
// D_run = N_step · D_step).
func (c Config) DRun() int64 {
	return int64(c.steps()) * c.DStep()
}

// NBlock returns the per-process number of disjoint contiguous file
// blocks per step, ⌊N²/q⌋ — the N_block column of Table 2.
func (c Config) NBlock() (int64, error) {
	q, err := c.Q()
	if err != nil {
		return 0, err
	}
	n := int64(c.Class.Grid)
	return n * n / int64(q), nil
}

// SBlock returns the (average) contiguous block size in bytes,
// cellBytes·N/q — the S_block column of Table 2.
func (c Config) SBlock() (int64, error) {
	q, err := c.Q()
	if err != nil {
		return 0, err
	}
	return int64(cellBytes) * int64(c.Class.Grid) / int64(q), nil
}

// ExactNBlock returns the exact number of contiguous runs of rank's
// fileview per step under the actual (uneven) cell split.
func (c Config) ExactNBlock(rank int) (int64, error) {
	q, err := c.Q()
	if err != nil {
		return 0, err
	}
	d := newDecomp(c.Class.Grid, q, rank, 0)
	var runs int64
	for _, cl := range d.cells {
		runs += int64(cl.size[1]) * int64(cl.size[2])
	}
	return runs, nil
}

func float64frombits(u uint64) float64 { return math.Float64frombits(u) }
func uint64frombits(v float64) uint64  { return math.Float64bits(v) }
