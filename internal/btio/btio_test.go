package btio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func cfg(class string, p int) Config {
	cl, err := ClassByName(class)
	if err != nil {
		panic(err)
	}
	return Config{Class: cl, P: p}
}

func TestClassLookup(t *testing.T) {
	for _, c := range Classes {
		got, err := ClassByName(c.Name)
		if err != nil || got != c {
			t.Errorf("ClassByName(%q) = %v, %v", c.Name, got, err)
		}
	}
	if _, err := ClassByName("Z"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestQValidation(t *testing.T) {
	if _, err := cfg("S", 3).Q(); err == nil {
		t.Error("non-square P accepted")
	}
	if q, err := cfg("S", 16).Q(); err != nil || q != 4 {
		t.Errorf("Q(16) = %d, %v", q, err)
	}
}

// TestTable1 checks the data-volume characterization against the paper.
func TestTable1(t *testing.T) {
	cases := []struct {
		class string
		dStep int64 // bytes (paper: 42 MByte / 170 MByte)
		dRun  int64 // bytes (paper: 1.7 GByte / 6.8 GByte)
	}{
		{"B", 42448320, 1697932800},
		{"C", 170061120, 6802444800},
	}
	for _, c := range cases {
		cf := cfg(c.class, 4)
		if got := cf.DStep(); got != c.dStep {
			t.Errorf("class %s: DStep = %d, want %d", c.class, got, c.dStep)
		}
		if got := cf.DRun(); got != c.dRun {
			t.Errorf("class %s: DRun = %d, want %d", c.class, got, c.dRun)
		}
		// Sanity versus the paper's rounded MB/GB figures.
		if mb := float64(cf.DStep()) / 1e6; c.class == "B" && (mb < 42 || mb > 43) {
			t.Errorf("class B DStep = %.1f MB, paper says 42", mb)
		}
	}
}

// TestTable2 checks N_block and S_block against the paper's exact values.
func TestTable2(t *testing.T) {
	cases := []struct {
		class            string
		p                int
		nBlock, sBlock64 int64
	}{
		{"B", 4, 5202, 2040},
		{"B", 9, 3468, 1360},
		{"B", 16, 2601, 1020},
		{"B", 25, 2080, 816},
		{"C", 4, 13122, 3240},
		{"C", 9, 8748, 2160},
		{"C", 16, 6561, 1620},
		{"C", 25, 5248, 1296},
	}
	for _, c := range cases {
		cf := cfg(c.class, c.p)
		nb, err := cf.NBlock()
		if err != nil {
			t.Fatal(err)
		}
		sb, err := cf.SBlock()
		if err != nil {
			t.Fatal(err)
		}
		if nb != c.nBlock {
			t.Errorf("class %s P=%d: NBlock = %d, want %d", c.class, c.p, nb, c.nBlock)
		}
		if sb != c.sBlock64 {
			t.Errorf("class %s P=%d: SBlock = %d, want %d", c.class, c.p, sb, c.sBlock64)
		}
	}
}

func TestDecompositionCoversGridExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 4, 9, 16} {
		q := 0
		for q*q != p {
			q++
		}
		const n = 13 // deliberately not divisible by q
		seen := make(map[[3]int]int)
		for r := 0; r < p; r++ {
			d := newDecomp(n, q, r, 0)
			if len(d.cells) != q {
				t.Fatalf("P=%d rank %d: %d cells, want %d", p, r, len(d.cells), q)
			}
			for _, c := range d.cells {
				for z := c.start[2]; z < c.start[2]+c.size[2]; z++ {
					for y := c.start[1]; y < c.start[1]+c.size[1]; y++ {
						for x := c.start[0]; x < c.start[0]+c.size[0]; x++ {
							seen[[3]int{x, y, z}]++
						}
					}
				}
			}
		}
		if len(seen) != n*n*n {
			t.Fatalf("P=%d: covered %d points, want %d", p, len(seen), n*n*n)
		}
		for pt, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("P=%d: point %v covered %d times", p, pt, cnt)
			}
		}
	}
}

func TestFiletypeSizesSumToArray(t *testing.T) {
	const n, p, q = 12, 9, 3
	var total int64
	for r := 0; r < p; r++ {
		d := newDecomp(n, q, r, 0)
		ft, err := d.filetype()
		if err != nil {
			t.Fatal(err)
		}
		total += ft.Size()
		if ft.Extent() != int64(cellBytes)*n*n*n {
			t.Fatalf("rank %d: extent = %d", r, ft.Extent())
		}
	}
	if total != int64(cellBytes)*n*n*n {
		t.Fatalf("filetype sizes sum to %d, want %d", total, cellBytes*n*n*n)
	}
}

func TestExactNBlockMatchesFormulaWhenDivisible(t *testing.T) {
	// Class S (12³) with P=4 (q=2): 12 divisible by 2 → exact == formula.
	cf := cfg("S", 4)
	want, err := cf.NBlock()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		got, err := cf.ExactNBlock(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("rank %d: exact NBlock = %d, want %d", r, got, want)
		}
	}
}

func TestRunClassSBothEnginesIdenticalFiles(t *testing.T) {
	var files [2][]byte
	for i, eng := range []core.Engine{core.Listless, core.ListBased} {
		be := storage.NewMem()
		c := cfg("S", 4)
		c.Engine = eng
		c.Steps = 3
		c.Ghost = 1
		c.ComputeIters = 1
		c.Verify = true
		c.Backend = be
		res, err := Run(c)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if !res.Verified {
			t.Fatalf("%v: verification failed", eng)
		}
		if res.BytesWritten != 3*c.DStep() {
			t.Fatalf("%v: wrote %d bytes, want %d", eng, res.BytesWritten, 3*c.DStep())
		}
		files[i] = be.Bytes()
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("engines produced different BTIO files")
	}
	// File must contain steps snapshots.
	c := cfg("S", 4)
	if int64(len(files[0])) != 3*c.DStep() {
		t.Fatalf("file size %d, want %d", len(files[0]), 3*c.DStep())
	}
}

func TestRunPlacesValuesAtGlobalOffsets(t *testing.T) {
	// Without compute, the file must hold seedValue at each position.
	be := storage.NewMem()
	c := cfg("S", 4)
	c.Steps = 1
	c.Ghost = 2
	c.Verify = true
	c.Backend = be
	if _, err := Run(c); err != nil {
		t.Fatal(err)
	}
	raw := be.Bytes()
	n := c.Class.Grid
	for _, pt := range [][4]int{{0, 0, 0, 0}, {4, 11, 3, 7}, {2, 5, 11, 11}, {1, 3, 0, 6}} {
		m, i, j, k := pt[0], pt[1], pt[2], pt[3]
		off := 8 * (m + 5*(i+n*(j+n*k)))
		got := float64frombits(binary.LittleEndian.Uint64(raw[off:]))
		want := seedValue(m, i, j, k, n)
		if got != want {
			t.Errorf("value at (%d,%d,%d,%d) = %v, want %v", m, i, j, k, got, want)
		}
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	c := cfg("S", 3)
	if _, err := Run(c); err == nil {
		t.Error("non-square P accepted")
	}
	c = cfg("S", 256) // q=16 > grid 12
	if _, err := Run(c); err == nil {
		t.Error("process grid larger than array accepted")
	}
}

func TestSweepIsDeterministicAndBounded(t *testing.T) {
	d := newDecomp(8, 2, 0, 1)
	mt, err := d.memtype()
	if err != nil {
		t.Fatal(err)
	}
	a := make([]byte, mt.Extent())
	b := make([]byte, mt.Extent())
	d.fill(a, 0)
	d.fill(b, 0)
	d.sweep(a)
	d.sweep(b)
	if !bytes.Equal(a, b) {
		t.Fatal("sweep is not deterministic")
	}
	// Values stay finite and change from the seed.
	changed := false
	seed := make([]byte, mt.Extent())
	d.fill(seed, 0)
	if !bytes.Equal(a, seed) {
		changed = true
	}
	if !changed {
		t.Fatal("sweep did not modify the field")
	}
}

func TestGhostZeroMemtypeContiguous(t *testing.T) {
	d := newDecomp(12, 2, 0, 0)
	mt, err := d.memtype()
	if err != nil {
		t.Fatal(err)
	}
	if !mt.Dense() {
		t.Fatal("ghost-0 memtype should be dense")
	}
	d1 := newDecomp(12, 2, 0, 1)
	mt1, err := d1.memtype()
	if err != nil {
		t.Fatal(err)
	}
	if mt1.Dense() {
		t.Fatal("ghosted memtype should be non-contiguous")
	}
}
