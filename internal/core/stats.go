package core

import (
	"fmt"
	"strings"
	"time"
)

// Snapshot returns a copy of the counters, for differencing around a
// phase of interest: take one before, one after, and Sub them.
func (s *Stats) Snapshot() Stats { return *s }

// Sub returns the counter deltas since an earlier snapshot.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		ListTuples:        s.ListTuples - prev.ListTuples,
		ListBytesSent:     s.ListBytesSent - prev.ListBytesSent,
		ViewBytesSent:     s.ViewBytesSent - prev.ViewBytesSent,
		SieveReads:        s.SieveReads - prev.SieveReads,
		SieveWrites:       s.SieveWrites - prev.SieveWrites,
		PreReadsSkipped:   s.PreReadsSkipped - prev.PreReadsSkipped,
		DirectReads:       s.DirectReads - prev.DirectReads,
		DirectWrites:      s.DirectWrites - prev.DirectWrites,
		VectoredReads:     s.VectoredReads - prev.VectoredReads,
		VectoredWrites:    s.VectoredWrites - prev.VectoredWrites,
		ViewRegistrations: s.ViewRegistrations - prev.ViewRegistrations,
		ViewReads:         s.ViewReads - prev.ViewReads,
		ViewWrites:        s.ViewWrites - prev.ViewWrites,
		BytesRead:         s.BytesRead - prev.BytesRead,
		BytesWritten:      s.BytesWritten - prev.BytesWritten,
		ExchangeNs:        s.ExchangeNs - prev.ExchangeNs,
		StorageNs:         s.StorageNs - prev.StorageNs,
		CopyNs:            s.CopyNs - prev.CopyNs,
		WindowsOverlapped: s.WindowsOverlapped - prev.WindowsOverlapped,
		EpochsCommitted:   s.EpochsCommitted - prev.EpochsCommitted,
		EpochRetries:      s.EpochRetries - prev.EpochRetries,
	}
}

// String renders the counters as a stable multi-line phase breakdown,
// one indented line per counter group; zero-valued groups are elided so
// independent runs don't print collective noise and vice versa.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "list tuples=%d  list bytes sent=%d  view bytes sent=%d\n",
		s.ListTuples, s.ListBytesSent, s.ViewBytesSent)
	fmt.Fprintf(&b, "sieve reads=%d writes=%d  pre-reads skipped=%d",
		s.SieveReads, s.SieveWrites, s.PreReadsSkipped)
	if s.DirectReads != 0 || s.DirectWrites != 0 {
		fmt.Fprintf(&b, "  direct reads=%d writes=%d", s.DirectReads, s.DirectWrites)
	}
	if s.ViewRegistrations != 0 {
		fmt.Fprintf(&b, "  view regs=%d reads=%d writes=%d", s.ViewRegistrations, s.ViewReads, s.ViewWrites)
	}
	if s.EpochsCommitted != 0 || s.EpochRetries != 0 {
		fmt.Fprintf(&b, "  epochs committed=%d retries=%d", s.EpochsCommitted, s.EpochRetries)
	}
	if s.ProgramCompiles != 0 || s.ProgramCacheHits != 0 {
		fmt.Fprintf(&b, "  programs compiled=%d cache hits=%d", s.ProgramCompiles, s.ProgramCacheHits)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "bytes read=%d written=%d\n", s.BytesRead, s.BytesWritten)
	if s.ExchangeNs != 0 || s.StorageNs != 0 || s.CopyNs != 0 {
		fmt.Fprintf(&b, "phases: exchange=%v  storage=%v  copy=%v  windows overlapped=%d\n",
			time.Duration(s.ExchangeNs).Round(time.Microsecond),
			time.Duration(s.StorageNs).Round(time.Microsecond),
			time.Duration(s.CopyNs).Round(time.Microsecond),
			s.WindowsOverlapped)
	}
	return b.String()
}
