package core

import (
	"time"

	"repro/internal/trace"
)

// apExchange walks every (IOP, window) pair in the deterministic
// schedule order and, for each one containing this rank's data, packs
// and sends (write) or receives and unpacks (read) that data.  The
// engine's apCursor locates this rank's data range per window; the
// neutral code moves it and accounts the per-phase time.
func (f *File) apExchange(pl *collPlan, d0, d int64, mem *memState, buf []byte, ap apState, write bool) {
	myLo, myHi := pl.los[f.p.Rank()], pl.his[f.p.Rank()]
	for i := 0; i < pl.nIOP; i++ {
		domLo, domHi := pl.domain(i)
		if domHi <= myLo || domLo >= myHi || domLo == domHi {
			continue
		}
		cur := ap.cursor(i)
		for winLo := domLo; winLo < domHi; winLo += int64(f.opts.CollBufSize) {
			winHi := min(winLo+int64(f.opts.CollBufSize), domHi)
			a, b := cur.window(winLo, winHi)
			if b <= a {
				continue
			}
			if write {
				// The chunk's ownership passes to the transport at
				// SendNoCopy and onward to the receiving IOP, which
				// returns it to a pool after merging (the zero-copy
				// AP→IOP path: pack once, no intermediate copies).
				chunk := f.bp.Get(int(b - a))
				csp := f.tr.Begin(trace.PhaseCopy, winLo, b-a)
				t0 := time.Now()
				f.eng.packUser(chunk, buf, mem, a-d0, b-a)
				t1 := time.Now()
				csp.End()
				esp := f.tr.Begin(trace.PhaseExchange, winLo, b-a)
				f.p.SendNoCopy(i, tagCollData, chunk)
				esp.End()
				f.Stats.CopyNs += t1.Sub(t0).Nanoseconds()
				f.Stats.ExchangeNs += time.Since(t1).Nanoseconds()
			} else {
				esp := f.tr.Begin(trace.PhaseExchange, winLo, 0)
				t0 := time.Now()
				chunk, _, _ := f.p.Recv(i, tagCollData)
				t1 := time.Now()
				esp.EndBytes(int64(len(chunk)))
				csp := f.tr.Begin(trace.PhaseCopy, winLo, b-a)
				f.eng.unpackUser(buf, chunk, mem, a-d0, b-a)
				csp.End()
				f.bp.Put(chunk) // this rank owns the received chunk; recycle it
				f.Stats.ExchangeNs += t1.Sub(t0).Nanoseconds()
				f.Stats.CopyNs += time.Since(t1).Nanoseconds()
			}
		}
	}
}
