package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/datatype"
	"repro/internal/flatten"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/testutil"
)

// collScenario runs one partitioned collective write+read on be and
// returns the resulting file bytes, the per-rank read-backs, and the
// summed Stats of all ranks.  off starts the access mid-filetype so
// some windows are only partially covered (exercising the RMW
// pre-read).
func collScenario(t *testing.T, be storage.Backend, eng Engine, pipeline bool, P int, blockcount, blocklen, off int64) ([]byte, [][]byte, Stats) {
	t.Helper()
	sh := NewShared(be)
	opts := Options{
		Engine:              eng,
		CollBufSize:         192, // several windows per IOP domain
		DisableCollPipeline: !pipeline,
	}
	d := blockcount*blocklen - off
	reads := make([][]byte, P)
	stats := make([]Stats, P)
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, opts)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
			panic(err)
		}
		data := pattern(p.Rank(), d)
		if _, err := f.WriteAtAll(off, d, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, d)
		if _, err := f.ReadAtAll(off, d, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("collective round trip mismatch")
		}
		reads[p.Rank()] = got
		stats[p.Rank()] = f.Stats
	})
	if err != nil {
		t.Fatalf("engine %v pipeline %v: %v", eng, pipeline, err)
	}
	file := make([]byte, be.Size())
	if err := storage.ReadFull(be, file, 0); err != nil {
		t.Fatalf("reading back file: %v", err)
	}
	var sum Stats
	for _, s := range stats {
		sum.SieveReads += s.SieveReads
		sum.SieveWrites += s.SieveWrites
		sum.PreReadsSkipped += s.PreReadsSkipped
		sum.WindowsOverlapped += s.WindowsOverlapped
		sum.StorageNs += s.StorageNs
		sum.ExchangeNs += s.ExchangeNs
		sum.CopyNs += s.CopyNs
	}
	return file, reads, sum
}

// TestCollectiveBackendMatrix checks that collective writes and reads
// produce byte-identical files across both engines, both window-loop
// variants, and the Mem, Throttled, Striped, and (quiescent) Faulty
// backends.
func TestCollectiveBackendMatrix(t *testing.T) {
	const (
		P          = 3
		blockcount = 40
		blocklen   = 16
		off        = 96 // start mid-filetype: forces partial windows
	)
	backends := map[string]func() storage.Backend{
		"mem": func() storage.Backend { return storage.NewMem() },
		"throttled": func() storage.Backend {
			return storage.NewThrottled(storage.NewMem(), 1<<30, 1<<30, 2*time.Microsecond)
		},
		"striped": func() storage.Backend {
			s, err := storage.NewStriped(64, storage.NewMem(), storage.NewMem(), storage.NewMem())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"faulty": func() storage.Backend { return storage.NewFaulty(storage.NewMem()) },
	}

	var refFile []byte
	var refReads [][]byte
	for name, mk := range backends {
		for _, eng := range []Engine{Listless, ListBased} {
			for _, pipeline := range []bool{false, true} {
				file, reads, st := collScenario(t, mk(), eng, pipeline, P, blockcount, blocklen, off)
				if refFile == nil {
					refFile, refReads = file, reads
					continue
				}
				if !bytes.Equal(file, refFile) {
					t.Errorf("%s/%v/pipeline=%v: file differs from reference", name, eng, pipeline)
				}
				for r := range reads {
					if !bytes.Equal(reads[r], refReads[r]) {
						t.Errorf("%s/%v/pipeline=%v: rank %d read-back differs", name, eng, pipeline, r)
					}
				}
				if pipeline && st.WindowsOverlapped == 0 {
					t.Errorf("%s/%v: pipelined run overlapped no windows", name, eng)
				}
				if !pipeline && st.WindowsOverlapped != 0 {
					t.Errorf("%s/%v: sequential run reported %d overlapped windows", name, eng, st.WindowsOverlapped)
				}
			}
		}
	}
}

// TestPipelinedFaultPropagates injects a write fault and checks the
// pipelined window loop surfaces it as an agreed error on every rank
// instead of hanging or panicking (the background write-back must hand
// the error to the drain, and error agreement must broadcast it).
func TestPipelinedFaultPropagates(t *testing.T) {
	for _, eng := range []Engine{Listless, ListBased} {
		checkLeaks := testutil.LeakCheck(t)
		fb := storage.NewFaulty(storage.NewMem())
		sh := NewShared(fb)
		const P = 4
		errs := make([]error, P)
		_, err := mpi.RunWithOptions(P, mpi.RunOptions{StallTimeout: watchdogTimeout}, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128})
			if err != nil {
				panic(err)
			}
			if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, 32, 16)); err != nil {
				panic(err)
			}
			if p.Rank() == 0 {
				fb.FailWrites(2)
			}
			p.Barrier()
			d := int64(32 * 16)
			_, errs[p.Rank()] = f.WriteAtAll(0, d, datatype.Byte, pattern(p.Rank(), d))
		})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		// The count trigger fires on whichever IOP issues the second
		// write, so the agreed rank is scheduling-dependent — but all
		// ranks must agree on it.
		first, ok := AsCollectiveError(errs[0])
		if !ok {
			t.Fatalf("engine %v: rank 0 returned %v, want a CollectiveError", eng, errs[0])
		}
		requireAgreement(t, fmt.Sprintf("engine %v", eng), errs, first.Rank, PhaseIOPWindow)
		checkLeaks()
	}
}

// TestDecodeTuplesCorrupt exercises the hardened access-list decoder.
func TestDecodeTuplesCorrupt(t *testing.T) {
	good := make([]byte, 2*flatten.TupleBytes)
	putInt64(good[0:], 10)
	putInt64(good[8:], 4)
	putInt64(good[16:], 30)
	putInt64(good[24:], 2)
	l, err := decodeTuples(good)
	if err != nil {
		t.Fatalf("valid payload: %v", err)
	}
	want := flatten.List{{Off: 10, Len: 4}, {Off: 30, Len: 2}}
	if len(l) != 2 || l[0] != want[0] || l[1] != want[1] {
		t.Fatalf("decoded %v, want %v", l, want)
	}

	if _, err := decodeTuples(good[:flatten.TupleBytes+3]); !errors.Is(err, ErrCorruptAccessList) {
		t.Errorf("truncated payload: got %v, want ErrCorruptAccessList", err)
	}

	neg := make([]byte, flatten.TupleBytes)
	putInt64(neg[0:], 5)
	putInt64(neg[8:], -1)
	if _, err := decodeTuples(neg); !errors.Is(err, ErrCorruptAccessList) {
		t.Errorf("negative length: got %v, want ErrCorruptAccessList", err)
	}

	if l, err := decodeTuples(nil); err != nil || len(l) != 0 {
		t.Errorf("empty payload: got %v, %v", l, err)
	}
}
