package core

import (
	"repro/internal/datatype"
	"repro/internal/flatten"
	"repro/internal/fotf"
	"repro/internal/storage"
)

// Collective I/O: the two-phase method (paper §2.3, §3.2.3).  The
// aggregate file range of all ranks is partitioned into per-IOP file
// domains; IOPs access the file in windows of CollBufSize and exchange
// data with the APs.
//
// In the list-based engine every AP builds, per access and per IOP, the
// ol-list of its file blocks inside that IOP's domain and transmits it
// (16 bytes per tuple); the IOP walks the received lists per window,
// slicing window sub-lists (ROMIO's transient indexed datatypes) and
// copying per tuple.
//
// In the listless engine nothing but file data moves: IOPs navigate the
// fileviews cached at SetView with O(depth) flattening-on-the-fly calls,
// and collective writes skip the window pre-read when the merged
// fileviews cover it (the mergeview optimization).

// WriteAtAll collectively writes count instances of memtype from buf to
// the view at offset off (in etypes).  All ranks must call it.
func (f *File) WriteAtAll(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(off, count, memtype, buf)
	if err != nil {
		return 0, err
	}
	if err := f.transferCollective(off*f.v.esize, d, memtype, count, buf, true); err != nil {
		return 0, err
	}
	f.Stats.BytesWritten += d
	return d, nil
}

// ReadAtAll collectively reads count instances of memtype from the view
// at offset off (in etypes) into buf.  All ranks must call it.
func (f *File) ReadAtAll(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(off, count, memtype, buf)
	if err != nil {
		return 0, err
	}
	if err := f.transferCollective(off*f.v.esize, d, memtype, count, buf, false); err != nil {
		return 0, err
	}
	f.Stats.BytesRead += d
	return d, nil
}

// WriteAll writes collectively at the individual file pointer.
func (f *File) WriteAll(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	n, err := f.WriteAtAll(f.ptr, count, memtype, buf)
	f.ptr += n / f.v.esize
	return n, err
}

// ReadAll reads collectively at the individual file pointer.
func (f *File) ReadAll(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	n, err := f.ReadAtAll(f.ptr, count, memtype, buf)
	f.ptr += n / f.v.esize
	return n, err
}

// collPlan is the deterministic schedule of one collective access, which
// every rank computes identically from the allgathered access ranges.
type collPlan struct {
	nIOP     int
	gLo, gHi int64
	domSize  int64
	d0s      []int64 // per-rank access start, in view-data bytes
	ds       []int64 // per-rank data sizes
	los      []int64 // per-rank absolute first byte
	his      []int64 // per-rank absolute end
}

// domain returns IOP i's file domain, clamped to the global range.
func (pl *collPlan) domain(i int) (lo, hi int64) {
	lo = pl.gLo + int64(i)*pl.domSize
	hi = lo + pl.domSize
	if hi > pl.gHi {
		hi = pl.gHi
	}
	if lo > hi {
		lo = hi
	}
	return
}

func (f *File) makePlan(d0, d int64) (*collPlan, bool) {
	var lo, hi int64
	if d > 0 {
		lo = f.dataToFileStart(d0)
		hi = f.dataToFileEnd(d0 + d)
	}
	all := f.p.AllgatherInt64s([]int64{d0, d, lo, hi})
	pl := &collPlan{
		nIOP: f.opts.IONodes,
		d0s:  make([]int64, f.p.Size()),
		ds:   make([]int64, f.p.Size()),
		los:  make([]int64, f.p.Size()),
		his:  make([]int64, f.p.Size()),
	}
	if pl.nIOP == 0 {
		pl.nIOP = f.p.Size()
	}
	gLo, gHi := int64(-1), int64(-1)
	for r, v := range all {
		pl.d0s[r], pl.ds[r], pl.los[r], pl.his[r] = v[0], v[1], v[2], v[3]
		if v[1] == 0 {
			continue
		}
		if gLo < 0 || v[2] < gLo {
			gLo = v[2]
		}
		if v[3] > gHi {
			gHi = v[3]
		}
	}
	if gLo < 0 {
		return nil, false // nothing to do anywhere
	}
	pl.gLo, pl.gHi = gLo, gHi
	pl.domSize = (gHi - gLo + int64(pl.nIOP) - 1) / int64(pl.nIOP)
	if pl.domSize == 0 {
		pl.domSize = 1
	}
	return pl, true
}

// apTriple is one entry of an AP's access list for an IOP domain: an
// absolute file segment plus the view-data offset of its first byte.
// Only ⟨fileOff,len⟩ is transmitted (16 bytes per tuple).
type apTriple struct {
	fileOff, dataOff, len int64
}

// buildAPTriples builds the AP-side access list for one domain, clipped
// to the access's data range — the O(S_domain/S_extent · N_block) cost of
// §2.3.
func (f *File) buildAPTriples(domLo, domHi, d0, d int64) []apTriple {
	var out []apTriple
	f.v.flat.EachInRange(domLo, domHi, func(fileOff, dataOff, n int64) {
		a, b := dataOff, dataOff+n
		if a < d0 {
			fileOff += d0 - a
			a = d0
		}
		if b > d0+d {
			b = d0 + d
		}
		if a >= b {
			return
		}
		out = append(out, apTriple{fileOff: fileOff, dataOff: a, len: b - a})
	})
	f.Stats.ListTuples += int64(len(out))
	return out
}

func encodeTuples(ts []apTriple) []byte {
	buf := make([]byte, 16*len(ts))
	for i, t := range ts {
		putInt64(buf[i*16:], t.fileOff)
		putInt64(buf[i*16+8:], t.len)
	}
	return buf
}

func decodeTuples(buf []byte) flatten.List {
	l := make(flatten.List, len(buf)/16)
	for i := range l {
		l[i] = flatten.Segment{Off: getInt64(buf[i*16:]), Len: getInt64(buf[i*16+8:])}
	}
	return l
}

// tripleCursor walks an AP's domain triples sequentially across window
// boundaries, handling tuples that span a boundary.
type tripleCursor struct {
	ts     []apTriple
	i      int
	within int64
}

// window returns the data range [a, b) of the triples up to absolute
// file offset winHi, advancing the cursor.  a == b means no data.
func (c *tripleCursor) window(winHi int64) (a, b int64) {
	a = -1
	for c.i < len(c.ts) {
		t := c.ts[c.i]
		start := t.fileOff + c.within
		if start >= winHi {
			break
		}
		take := t.len - c.within
		if rest := winHi - start; take > rest {
			take = rest
		}
		if a < 0 {
			a = t.dataOff + c.within
		}
		b = t.dataOff + c.within + take
		c.within += take
		if c.within == t.len {
			c.i++
			c.within = 0
		} else {
			break
		}
	}
	if a < 0 {
		return 0, 0
	}
	return a, b
}

// listCursor walks a received ol-list sequentially, slicing per-window
// sub-lists (ROMIO's transient per-block indexed datatypes).
type listCursor struct {
	l      flatten.List
	i      int
	within int64
}

func (c *listCursor) sliceUpTo(winHi int64) flatten.List {
	var out flatten.List
	for c.i < len(c.l) {
		seg := c.l[c.i]
		start := seg.Off + c.within
		if start >= winHi {
			break
		}
		take := seg.Len - c.within
		if rest := winHi - start; take > rest {
			take = rest
		}
		out = append(out, flatten.Segment{Off: start, Len: take})
		c.within += take
		if c.within == seg.Len {
			c.i++
			c.within = 0
		} else {
			break
		}
	}
	return out
}

// transferCollective runs one two-phase collective access.
func (f *File) transferCollective(d0, d int64, memtype *datatype.Type, count int64, buf []byte, write bool) error {
	mem := f.newMemState(memtype, count)

	pl, any := f.makePlan(d0, d)
	if !any {
		f.p.Barrier()
		return nil
	}

	// Listless without fileview caching: exchange the encoded views on
	// every access (ablation; still no ol-lists).
	if f.opts.Engine == Listless && f.opts.DisableViewCache {
		f.exchangeViews()
	}

	// ---- AP phase 1: build and send access lists (list-based only). ----
	var myTriples [][]apTriple
	if f.opts.Engine == ListBased {
		myTriples = make([][]apTriple, pl.nIOP)
		for i := 0; i < pl.nIOP; i++ {
			domLo, domHi := pl.domain(i)
			if d > 0 && domLo < domHi {
				myTriples[i] = f.buildAPTriples(domLo, domHi, d0, d)
			}
			payload := encodeTuples(myTriples[i])
			f.Stats.ListBytesSent += int64(len(payload))
			f.p.SendNoCopy(i, tagCollList, payload)
		}
	}

	// ---- AP phase 2 (write): pack and send data; buffered sends. ----
	if write && d > 0 {
		f.apExchange(pl, d0, d, mem, buf, myTriples, true)
	}

	// ---- IOP phase: process the file domain window by window. ----
	var err error
	if f.p.Rank() < pl.nIOP {
		err = f.iopProcess(pl, write)
	}

	// ---- AP phase 2 (read): receive and unpack data. ----
	if !write && d > 0 && err == nil {
		f.apExchange(pl, d0, d, mem, buf, myTriples, false)
	}

	f.p.Barrier()
	return err
}

// apExchange walks every (IOP, window) pair in the deterministic
// schedule order and, for each one containing this rank's data, packs
// and sends (write) or receives and unpacks (read) that data.
func (f *File) apExchange(pl *collPlan, d0, d int64, mem *memState, buf []byte, myTriples [][]apTriple, write bool) {
	myLo, myHi := pl.los[f.p.Rank()], pl.his[f.p.Rank()]
	for i := 0; i < pl.nIOP; i++ {
		domLo, domHi := pl.domain(i)
		if domHi <= myLo || domLo >= myHi || domLo == domHi {
			continue
		}
		var tc tripleCursor
		if f.opts.Engine == ListBased {
			tc.ts = myTriples[i]
		}
		for winLo := domLo; winLo < domHi; winLo += int64(f.opts.CollBufSize) {
			winHi := minI64(winLo+int64(f.opts.CollBufSize), domHi)
			var a, b int64
			if f.opts.Engine == ListBased {
				a, b = tc.window(winHi)
			} else {
				a = f.dataAtSelf(winLo, d0, d)
				b = f.dataAtSelf(winHi, d0, d)
			}
			if b <= a {
				continue
			}
			if write {
				chunk := make([]byte, b-a)
				f.packUser(chunk, buf, mem, a-d0, b-a)
				f.p.SendNoCopy(i, tagCollData, chunk)
			} else {
				chunk, _, _ := f.p.Recv(i, tagCollData)
				f.unpackUser(buf, chunk, mem, a-d0, b-a)
			}
		}
	}
}

// dataAtSelf maps an absolute file offset to this rank's access data
// offset, clipped to [d0, d0+d) — O(depth) listless navigation.
func (f *File) dataAtSelf(x, d0, d int64) int64 {
	da := fotf.BufToData(f.v.ftype, x-f.v.disp)
	if da < d0 {
		return d0
	}
	if da > d0+d {
		return d0 + d
	}
	return da
}

// dataAtRemote is dataAtSelf for rank r's cached fileview.
func (f *File) dataAtRemote(pl *collPlan, r int, x int64) int64 {
	rv := f.remote[r]
	da := fotf.BufToData(rv.ftype, x-rv.disp)
	lo, hi := pl.d0s[r], pl.d0s[r]+pl.ds[r]
	if da < lo {
		return lo
	}
	if da > hi {
		return hi
	}
	return da
}

// iopProcess runs this rank's IOP role: receive access lists
// (list-based), then process the domain window by window.
func (f *File) iopProcess(pl *collPlan, write bool) error {
	P := f.p.Size()
	me := f.p.Rank()
	domLo, domHi := pl.domain(me)

	// Receive one access list from every AP (list-based engine); this
	// many-to-many exchange happens on every collective access.
	var cursors []listCursor
	if f.opts.Engine == ListBased {
		cursors = make([]listCursor, P)
		for n := 0; n < P; n++ {
			payload, src, _ := f.p.Recv(-1, tagCollList)
			cursors[src].l = decodeTuples(payload)
		}
	}
	if domLo >= domHi {
		return nil
	}

	win := make([]byte, minI64(int64(f.opts.CollBufSize), domHi-domLo))
	apA := make([]int64, P) // per-AP data range start in this window
	apB := make([]int64, P)
	subs := make([]flatten.List, P) // per-AP window sub-lists (list-based)

	for winLo := domLo; winLo < domHi; winLo += int64(len(win)) {
		winHi := minI64(winLo+int64(len(win)), domHi)
		w := win[:winHi-winLo]

		var total int64
		for r := 0; r < P; r++ {
			apA[r], apB[r] = 0, 0
			if f.opts.Engine == ListBased {
				subs[r] = cursors[r].sliceUpTo(winHi)
				f.Stats.ListTuples += int64(len(subs[r]))
				var n int64
				for _, seg := range subs[r] {
					n += seg.Len
				}
				apB[r] = n // data count; apA stays 0
				total += n
			} else {
				if pl.ds[r] == 0 {
					continue
				}
				a := f.dataAtRemote(pl, r, winLo)
				b := f.dataAtRemote(pl, r, winHi)
				apA[r], apB[r] = a, b
				total += b - a
			}
		}
		if total == 0 {
			continue
		}

		if write {
			if err := f.iopWriteWindow(w, winLo, winHi, total, subs, apA, apB); err != nil {
				return err
			}
		} else {
			if err := f.iopReadWindow(w, winLo, winHi, subs, apA, apB); err != nil {
				return err
			}
		}
	}
	return nil
}

// iopWriteWindow processes one window of a collective write: coverage
// check, optional pre-read, per-AP unpack, write-back.
func (f *File) iopWriteWindow(w []byte, winLo, winHi, total int64, subs []flatten.List, apA, apB []int64) error {
	covered := false
	if !f.opts.DisableMergeCheck {
		if f.opts.Engine == ListBased {
			// Merge the per-AP window sub-lists (the list-merging cost
			// of the ROMIO write optimization, §2.3).
			nonEmpty := make([]flatten.List, 0, len(subs))
			for _, l := range subs {
				if len(l) > 0 {
					nonEmpty = append(nonEmpty, l)
				}
			}
			covered = flatten.Merge(nonEmpty...).Covers(winLo, winHi)
		} else {
			// The per-AP sum is exact because each byte is written at
			// most once through the combined fileviews.
			covered = total == winHi-winLo
			if covered && f.merged != nil {
				// The paper's check: one navigation call on the
				// mergeview (§3.2.3).  It confirms coverage in the
				// full-participation case; the exact sum above guards
				// accesses where some ranks write nothing.
				disp := f.remote[0].disp
				got := fotf.BufToData(f.merged, winHi-disp) - fotf.BufToData(f.merged, winLo-disp)
				covered = got == winHi-winLo
			}
		}
	}
	if covered {
		f.Stats.PreReadsSkipped++
	} else {
		if err := storage.ReadFull(f.sh.b, w, winLo); err != nil {
			return err
		}
	}

	for r := 0; r < len(apA); r++ {
		if apB[r] <= apA[r] {
			continue
		}
		chunk, _, _ := f.p.Recv(r, tagCollData)
		if f.opts.Engine == ListBased {
			var pos int64
			for _, seg := range subs[r] {
				copy(w[seg.Off-winLo:seg.Off-winLo+seg.Len], chunk[pos:pos+seg.Len])
				pos += seg.Len
			}
		} else {
			rv := f.remote[r]
			fotf.CopyRange(chunk, w, rv.ftype, apA[r], apB[r], winLo-rv.disp, false)
		}
	}
	if _, err := f.sh.b.WriteAt(w, winLo); err != nil {
		return err
	}
	f.Stats.SieveWrites++
	return nil
}

// iopReadWindow processes one window of a collective read: read the
// window, pack and send each AP's portion.
func (f *File) iopReadWindow(w []byte, winLo, winHi int64, subs []flatten.List, apA, apB []int64) error {
	if err := storage.ReadFull(f.sh.b, w, winLo); err != nil {
		return err
	}
	f.Stats.SieveReads++
	for r := 0; r < len(apA); r++ {
		if apB[r] <= apA[r] {
			continue
		}
		if f.opts.Engine == ListBased {
			var n int64
			for _, seg := range subs[r] {
				n += seg.Len
			}
			chunk := make([]byte, n)
			var pos int64
			for _, seg := range subs[r] {
				copy(chunk[pos:pos+seg.Len], w[seg.Off-winLo:seg.Off-winLo+seg.Len])
				pos += seg.Len
			}
			f.p.SendNoCopy(r, tagCollData, chunk)
		} else {
			rv := f.remote[r]
			chunk := make([]byte, apB[r]-apA[r])
			fotf.CopyRange(chunk, w, rv.ftype, apA[r], apB[r], winLo-rv.disp, true)
			f.p.SendNoCopy(r, tagCollData, chunk)
		}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
