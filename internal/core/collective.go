package core

import (
	"repro/internal/datatype"
	"repro/internal/trace"
)

// Collective I/O: the two-phase method (paper §2.3, §3.2.3).  The
// aggregate file range of all ranks is partitioned into per-IOP file
// domains; IOPs access the file in windows of CollBufSize and exchange
// data with the APs.
//
// The schedule here is engine-neutral: how each rank describes its
// accesses to the IOPs (ol-list exchange vs. cached-fileview
// navigation), and how window data is located and copied, live behind
// the accessEngine interface.  The schedule itself is split across
// three files: collective_plan.go (the deterministic plan every rank
// computes), collective_exchange.go (the AP side), and
// collective_window.go (the IOP window loop, sequential and pipelined).

// WriteAtAll collectively writes count instances of memtype from buf to
// the view at offset off (in etypes).  All ranks must call it.
func (f *File) WriteAtAll(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(off, count, memtype, buf)
	if err != nil {
		return 0, err
	}
	if err := f.transferCollective(off*f.v.esize, d, memtype, count, buf, true); err != nil {
		return 0, err
	}
	f.Stats.BytesWritten += d
	f.om.collWrites.Inc()
	f.om.writeBytes.Add(d)
	return d, nil
}

// ReadAtAll collectively reads count instances of memtype from the view
// at offset off (in etypes) into buf.  All ranks must call it.
func (f *File) ReadAtAll(off int64, count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	d, err := f.checkAccess(off, count, memtype, buf)
	if err != nil {
		return 0, err
	}
	if err := f.transferCollective(off*f.v.esize, d, memtype, count, buf, false); err != nil {
		return 0, err
	}
	f.Stats.BytesRead += d
	f.om.collReads.Inc()
	f.om.readBytes.Add(d)
	return d, nil
}

// WriteAll writes collectively at the individual file pointer.
func (f *File) WriteAll(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	n, err := f.WriteAtAll(f.ptr, count, memtype, buf)
	f.ptr += n / f.v.esize
	return n, err
}

// ReadAll reads collectively at the individual file pointer.
func (f *File) ReadAll(count int64, memtype *datatype.Type, buf []byte) (int64, error) {
	n, err := f.ReadAtAll(f.ptr, count, memtype, buf)
	f.ptr += n / f.v.esize
	return n, err
}

// transferCollective runs one two-phase collective access.
func (f *File) transferCollective(d0, d int64, memtype *datatype.Type, count int64, buf []byte, write bool) error {
	top := trace.PhaseCollRead
	if write {
		top = trace.PhaseCollWrite
	}
	sp := f.tr.Begin(top, d0, d)
	defer sp.End()

	mem := f.eng.newMemState(memtype, count)

	psp := f.tr.Begin(trace.PhaseCollPlan, d0, 0)
	pl, any := f.makePlan(d0, d)
	psp.End()
	if !any {
		f.p.Barrier()
		return nil
	}

	// ---- Admission: with a gate configured, the collective is a
	// schedulable job.  Rank 0 acquires a shared-pool slot (possibly
	// queueing) and broadcasts the decision; on rejection all ranks
	// return ErrRejected before any epoch staging or exchange traffic
	// starts.  The slot is held until this collective — trailing
	// barrier included — is done. ----
	if f.opts.Gate != nil {
		release, err := f.gateAcquire(d, write)
		if err != nil {
			return err
		}
		defer release()
	}

	// Crash-consistent write: when the backend supports epochs, the IOP
	// write-backs below stage under this id instead of applying, and
	// epochFinish commits them after the error vote.  The plan (hence
	// `any`) is deterministic across ranks, so every rank agrees on
	// whether an epoch exists and on its id.
	var epochID uint64
	if write && f.epochBE != nil {
		epochID = f.epochBegin()
	}

	// ---- AP phase 1: engine-specific access description (the
	// list-based engine builds and sends per-IOP ol-lists). ----
	asp := f.tr.Begin(trace.PhaseAPSetup, d0, 0)
	ap := f.eng.apSetup(pl, d0, d)
	asp.End()

	// ---- AP phase 2 (write): pack and send data; buffered sends. ----
	if write && d > 0 {
		f.apExchange(pl, d0, d, mem, buf, ap, true)
	}

	// ---- IOP phase: process the file domain window by window. ----
	var fault *CollectiveError
	if f.p.Rank() < pl.nIOP {
		fault = f.iopProcess(pl, write)
	}

	// ---- Error agreement: every rank votes its IOP-phase outcome and,
	// on any failure, drains in-flight traffic and returns the same
	// rank-attributed error.  This must precede the read-side exchange:
	// an AP must not block receiving from an IOP that failed. ----
	if err := f.agreeCollective(fault); err != nil {
		if epochID != 0 {
			f.epochAbandon(epochID)
		}
		if f.tr.Enabled() {
			f.tr.Instant(trace.PhaseFault, d0, 0, err.Error())
		}
		f.p.Barrier() // keep the next collective's sends behind the drain
		return err
	}

	// ---- Epoch commit: seal the staged write-backs everywhere, vote,
	// and let rank 0 broadcast the commit.  Collective, like the error
	// agreement above. ----
	if epochID != 0 {
		if err := f.epochFinish(epochID); err != nil {
			if f.tr.Enabled() {
				f.tr.Instant(trace.PhaseFault, d0, 0, err.Error())
			}
			f.p.Barrier()
			return err
		}
	}

	// ---- AP phase 2 (read): receive and unpack data. ----
	if !write && d > 0 {
		f.apExchange(pl, d0, d, mem, buf, ap, false)
	}

	f.p.Barrier()
	return nil
}
