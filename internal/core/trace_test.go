package core

import (
	"bytes"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/trace"
)

// TestTracedPipelinedCollective runs a 4-rank pipelined collective
// write+read with tracing on and checks the recorded timeline has the
// shape the Chrome exporter and the summary rely on: a top-level span
// per access, per-window spans, exchange and copy spans, and the
// pipeline's background pre-reads and write-backs on the I/O track.
// The background recording also makes this a -race test of the tracer
// under the real concurrent workload.
func TestTracedPipelinedCollective(t *testing.T) {
	for _, eng := range []Engine{Listless, ListBased} {
		const P = 4
		col := trace.NewCollector(trace.DefaultBufSize)
		sh := NewShared(storage.NewMem())
		opts := Options{Engine: eng, CollBufSize: 192, Trace: col}
		const blockcount, blocklen = 40, 16
		d := int64(blockcount * blocklen)
		_, err := mpi.RunWithOptions(P, mpi.RunOptions{Trace: col}, func(p *mpi.Proc) {
			f, err := Open(p, sh, opts)
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, blockcount, blocklen)); err != nil {
				panic(err)
			}
			data := pattern(p.Rank(), d)
			if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
				panic(err)
			}
			got := make([]byte, d)
			if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, data) {
				panic("round trip mismatch")
			}
		})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}

		ranks := map[int]bool{}
		perPhase := map[trace.Phase]int{}
		ioTrack := map[trace.Phase]int{}
		for _, ev := range col.Events() {
			ranks[ev.Rank] = true
			perPhase[ev.Phase]++
			if ev.Track == trace.TrackIO {
				ioTrack[ev.Phase]++
			}
		}
		for r := 0; r < P; r++ {
			if !ranks[r] {
				t.Errorf("engine %v: no events recorded for rank %d", eng, r)
			}
		}
		for _, ph := range []trace.Phase{
			trace.PhaseCollWrite, trace.PhaseCollRead, trace.PhaseCollPlan,
			trace.PhaseAPSetup, trace.PhaseIOPSetup, trace.PhaseWindow,
			trace.PhasePipelineWait, trace.PhaseExchange, trace.PhaseCopy,
			trace.PhasePreRead, trace.PhaseWriteBack,
			trace.PhaseMPIRecv, trace.PhaseMPISend, trace.PhaseMPIBarrier,
		} {
			if perPhase[ph] == 0 {
				t.Errorf("engine %v: no %s events recorded", eng, ph)
			}
		}
		// The pipelined loop does its storage I/O on background
		// goroutines; those spans must land on the I/O track so they
		// don't break main-track span nesting.
		if ioTrack[trace.PhasePreRead] == 0 || ioTrack[trace.PhaseWriteBack] == 0 {
			t.Errorf("engine %v: background I/O spans not on TrackIO: %v", eng, ioTrack)
		}
		if s := col.Summary(); s == "" {
			t.Errorf("engine %v: empty summary", eng)
		}
		var buf bytes.Buffer
		if err := col.WriteChrome(&buf); err != nil {
			t.Errorf("engine %v: chrome export: %v", eng, err)
		}
	}
}

// TestTracedCollectiveFaultInstant: an agreed collective failure must
// leave a coll.fault instant on every rank's timeline.
func TestTracedCollectiveFaultInstant(t *testing.T) {
	col := trace.NewCollector(trace.DefaultBufSize)
	fb := storage.NewFaulty(storage.NewMem())
	sh := NewShared(fb)
	const P = 4
	errs := make([]error, P)
	_, err := mpi.RunWithOptions(P, mpi.RunOptions{StallTimeout: watchdogTimeout, Trace: col}, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{CollBufSize: 128, Trace: col})
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Byte, noncontigTypeP(p.Rank(), P, 32, 16)); err != nil {
			panic(err)
		}
		if p.Rank() == 0 {
			fb.FailWrites(2)
		}
		p.Barrier()
		d := int64(32 * 16)
		_, errs[p.Rank()] = f.WriteAtAll(0, d, datatype.Byte, pattern(p.Rank(), d))
	})
	if err != nil {
		t.Fatal(err)
	}
	faults := map[int]bool{}
	for _, ev := range col.Events() {
		if ev.Phase == trace.PhaseFault {
			faults[ev.Rank] = true
			if ev.Detail == "" {
				t.Error("fault instant has no detail")
			}
		}
	}
	for r := 0; r < P; r++ {
		if errs[r] == nil {
			t.Fatalf("rank %d saw no error", r)
		}
		if !faults[r] {
			t.Errorf("rank %d recorded no coll.fault instant", r)
		}
	}
}
