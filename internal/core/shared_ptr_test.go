package core

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

func TestWriteSharedDisjointRegions(t *testing.T) {
	const P = 6
	const per = 128
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		data := bytes.Repeat([]byte{byte('A' + p.Rank())}, per)
		for i := 0; i < 3; i++ {
			if _, err := f.WriteShared(per, datatype.Byte, data); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sh.SharedOffset() != 3*P*per {
		t.Fatalf("shared pointer = %d, want %d", sh.SharedOffset(), 3*P*per)
	}
	// Every per-sized slot must be wholly one rank's letter, and each
	// rank must own exactly 3 slots.
	raw := be.Bytes()
	if len(raw) != 3*P*per {
		t.Fatalf("file size %d", len(raw))
	}
	counts := map[byte]int{}
	for s := 0; s < 3*P; s++ {
		slot := raw[s*per : (s+1)*per]
		for _, b := range slot {
			if b != slot[0] {
				t.Fatalf("slot %d mixes data", s)
			}
		}
		counts[slot[0]]++
	}
	for r := 0; r < P; r++ {
		if counts[byte('A'+r)] != 3 {
			t.Fatalf("rank %d owns %d slots", r, counts[byte('A'+r)])
		}
	}
}

func TestReadSharedConsumesInOrder(t *testing.T) {
	const P = 4
	be := storage.NewMem()
	sh := NewShared(be)
	// Pre-fill 4 records of 8 bytes: 0,1,2,3.
	for i := 0; i < P; i++ {
		be.WriteAt(bytes.Repeat([]byte{byte(i)}, 8), int64(i)*8)
	}
	got := make([]byte, P)
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		buf := make([]byte, 8)
		if _, err := f.ReadShared(8, datatype.Byte, buf); err != nil {
			panic(err)
		}
		for _, b := range buf {
			if b != buf[0] {
				panic("record mixes data")
			}
		}
		got[p.Rank()] = buf[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each record consumed exactly once.
	sorted := append([]byte(nil), got...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, b := range sorted {
		if b != byte(i) {
			t.Fatalf("records consumed %v", got)
		}
	}
}

func TestWriteOrderedRankOrder(t *testing.T) {
	const P = 5
	for _, eng := range []Engine{Listless, ListBased} {
		be := storage.NewMem()
		sh := NewShared(be)
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			// Variable sizes per rank: rank r writes (r+1)*8 bytes.
			n := int64(p.Rank()+1) * 8
			data := bytes.Repeat([]byte{byte('a' + p.Rank())}, int(n))
			for round := 0; round < 2; round++ {
				if _, err := f.WriteOrdered(n, datatype.Byte, data); err != nil {
					panic(err)
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		raw := be.Bytes()
		var want []byte
		for round := 0; round < 2; round++ {
			for r := 0; r < P; r++ {
				want = append(want, bytes.Repeat([]byte{byte('a' + r)}, (r+1)*8)...)
			}
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("%v: ordered write layout wrong:\n got %q\nwant %q", eng, raw, want)
		}
	}
}

func TestReadOrderedRoundTrip(t *testing.T) {
	const P = 3
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		n := int64(16)
		data := bytes.Repeat([]byte{byte('x' + p.Rank())}, int(n))
		if _, err := f.WriteOrdered(n, datatype.Byte, data); err != nil {
			panic(err)
		}
		f.SeekShared(0)
		got := make([]byte, n)
		if _, err := f.ReadOrdered(n, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("ordered read did not return this rank's segment")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sh.SharedOffset() != 3*16 {
		t.Fatalf("pointer = %d", sh.SharedOffset())
	}
}

func TestOrderedWithIdleRanks(t *testing.T) {
	const P = 4
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		var n int64
		var data []byte
		if p.Rank()%2 == 1 {
			n = 8
			data = bytes.Repeat([]byte{byte(p.Rank())}, 8)
		}
		if _, err := f.WriteOrdered(n, datatype.Byte, data); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	raw := be.Bytes()
	want := append(bytes.Repeat([]byte{1}, 8), bytes.Repeat([]byte{3}, 8)...)
	if !bytes.Equal(raw, want) {
		t.Fatalf("layout %v, want %v", raw, want)
	}
}

func TestSeekSharedAndSizePreallocate(t *testing.T) {
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(2, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := f.Preallocate(1024); err != nil {
			panic(err)
		}
		if f.Size() != 1024 {
			panic("preallocate did not grow the file")
		}
		f.SeekShared(100)
		if p.Rank() == 0 {
			if _, err := f.WriteShared(4, datatype.Byte, []byte("abcd")); err != nil {
				panic(err)
			}
		}
		p.Barrier()
		if p.Rank() == 1 {
			got := make([]byte, 4)
			if err := storage.ReadFull(sh.Backend(), got, 100); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, []byte("abcd")) {
				panic("seek-shared write landed wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedPointerEtypeUnits(t *testing.T) {
	// With a double etype, the shared pointer advances in doubles.
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := f.SetView(0, datatype.Double, datatype.Double); err != nil {
			panic(err)
		}
		if _, err := f.WriteShared(16, datatype.Byte, make([]byte, 16)); err != nil {
			panic(err)
		}
		if sh.SharedOffset() != 2 { // two doubles
			panic("shared pointer not in etype units")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
