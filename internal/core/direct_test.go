package core

import (
	"bytes"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Tests for the sieving-vs-direct-access decision (Options.SieveDensity,
// the paper's §5 outlook item).

// sparseType selects 8 bytes out of every 1024: density 1/128.
func sparseType(t *testing.T) *datatype.Type {
	t.Helper()
	dt, err := datatype.Hvector(16, 8, 1024, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestDirectPathTriggersOnSparseAccess(t *testing.T) {
	for _, eng := range []Engine{Listless, ListBased} {
		be := storage.NewInstrumented(storage.NewMem())
		sh := NewShared(be)
		_, err := mpi.Run(1, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng, SieveDensity: 0.5})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			if err := f.SetView(0, datatype.Byte, sparseType(t)); err != nil {
				panic(err)
			}
			data := pattern(1, 128)
			if _, err := f.WriteAt(0, 128, datatype.Byte, data); err != nil {
				panic(err)
			}
			if f.Stats.DirectWrites == 0 || f.Stats.SieveWrites != 0 {
				panic("sparse write did not take the direct path")
			}
			got := make([]byte, 128)
			if _, err := f.ReadAt(0, 128, datatype.Byte, got); err != nil {
				panic(err)
			}
			if f.Stats.DirectReads == 0 || f.Stats.SieveReads != 0 {
				panic("sparse read did not take the direct path")
			}
			if !bytes.Equal(got, data) {
				panic("direct path round trip mismatch")
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		// No read-modify-write: the direct write path must not read.
		st := be.Stats()
		if st.BytesRead > 256 { // read phase reads only the 16×8 blocks
			t.Errorf("%v: direct access read %d bytes; RMW not avoided", eng, st.BytesRead)
		}
	}
}

func TestDirectVsSievingIdenticalFiles(t *testing.T) {
	// The heuristic must not change file contents: compare density
	// thresholds that force each path, across engines, with a
	// non-contiguous memtype.
	memt, err := datatype.Hvector(16, 8, 24, datatype.Byte)
	if err != nil {
		t.Fatal(err)
	}
	var files [4][]byte
	i := 0
	for _, density := range []float64{0, 0.9} {
		for _, eng := range []Engine{Listless, ListBased} {
			be := storage.NewMem()
			sh := NewShared(be)
			_, err := mpi.Run(2, func(p *mpi.Proc) {
				f, err := Open(p, sh, Options{Engine: eng, SieveDensity: density, PackBufSize: 32})
				if err != nil {
					panic(err)
				}
				defer f.Close()
				ft := noncontigTypeP(p.Rank(), 2, 16, 8)
				if err := f.SetView(0, datatype.Byte, ft); err != nil {
					panic(err)
				}
				buf := pattern(p.Rank(), memt.Extent())
				if _, err := f.WriteAt(0, 1, memt, buf); err != nil {
					panic(err)
				}
				got := make([]byte, len(buf))
				if _, err := f.ReadAt(0, 1, memt, got); err != nil {
					panic(err)
				}
				for b := int64(0); b < 16; b++ {
					o := b * 24
					if !bytes.Equal(got[o:o+8], buf[o:o+8]) {
						panic("direct/sieve round trip mismatch")
					}
				}
			})
			if err != nil {
				t.Fatalf("density=%v %v: %v", density, eng, err)
			}
			files[i] = be.Bytes()
			i++
		}
	}
	for k := 1; k < 4; k++ {
		if !bytes.Equal(files[0], files[k]) {
			t.Fatalf("variant %d produced a different file", k)
		}
	}
}

func TestDenseAccessStillSieves(t *testing.T) {
	// Density above the threshold keeps the sieving path.
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: Listless, SieveDensity: 0.25})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		// Half-dense view: 8 of every 16 bytes.
		ft, err := datatype.Hvector(32, 8, 16, datatype.Byte)
		if err != nil {
			panic(err)
		}
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		if _, err := f.WriteAt(0, 256, datatype.Byte, pattern(0, 256)); err != nil {
			panic(err)
		}
		if f.Stats.SieveWrites == 0 || f.Stats.DirectWrites != 0 {
			panic("dense access took the direct path")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
