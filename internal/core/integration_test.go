package core

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Integration tests across storage backends and option combinations.

func TestFileBackendEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coll.dat")
	fb, err := storage.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	sh := NewShared(fb)
	const P = 4
	_, err = mpi.Run(P, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: Listless, CollBufSize: 4096})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ft := noncontigTypeP(p.Rank(), P, 64, 32)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		d := int64(64 * 32)
		data := pattern(p.Rank(), d)
		if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, d)
		if _, err := f.ReadAtAll(0, d, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("file backend round trip failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(P * 64 * 32); fb.Size() != want {
		t.Fatalf("file size %d, want %d", fb.Size(), want)
	}
}

func TestThrottledBackendEndToEnd(t *testing.T) {
	// With a slow file system the engines converge (the paper's
	// "file-system performance is the limiting factor" regime); mostly
	// this checks the throttle composes with the full stack.
	th := storage.NewThrottled(storage.NewMem(), 0, 50_000_000, 0) // 50 MB/s writes
	sh := NewShared(th)
	start := time.Now()
	_, err := mpi.Run(2, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: Listless})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		data := pattern(p.Rank(), 1<<20)
		if _, err := f.WriteAt(int64(p.Rank())<<20, 1<<20, datatype.Byte, data); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 MiB at 50 MB/s ≈ 42 ms minimum.
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("throttled write finished in %v; throttle ignored", d)
	}
}

func TestFlattenCacheReusedAcrossSetView(t *testing.T) {
	// ROMIO stores the ol-list on the datatype: re-installing a view
	// with the same filetype must not re-flatten.
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: ListBased})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ft := noncontigTypeP(0, 2, 1000, 8)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		after1 := f.Stats.ListTuples
		if after1 == 0 {
			panic("first SetView built no list")
		}
		for i := 0; i < 3; i++ {
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
		}
		if f.Stats.ListTuples != after1 {
			panic("repeated SetView with the same filetype re-flattened")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetViewSwitchingTypes(t *testing.T) {
	// Writing through one view and reading through another must observe
	// the same file bytes.
	a, b := runBoth(t, 2, Options{}, func(f *File) {
		rank := f.Proc().Rank()
		P := f.Proc().Size()
		ft := noncontigTypeP(rank, P, 32, 8)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		d := int64(32 * 8)
		data := pattern(rank, d)
		if _, err := f.WriteAtAll(0, d, datatype.Byte, data); err != nil {
			panic(err)
		}
		// Re-read through the plain byte view: rank 0 checks the
		// interleaving directly.
		if err := f.SetView(0, datatype.Byte, datatype.Byte); err != nil {
			panic(err)
		}
		if rank == 0 {
			whole := make([]byte, int64(P)*d)
			if _, err := f.ReadAt(0, int64(len(whole)), datatype.Byte, whole); err != nil {
				panic(err)
			}
			for r := 0; r < P; r++ {
				want := pattern(r, d)
				for blk := 0; blk < 32; blk++ {
					off := blk*P*8 + r*8
					if !bytes.Equal(whole[off:off+8], want[blk*8:blk*8+8]) {
						panic("byte-view read disagrees with typed write")
					}
				}
			}
		}
		f.Proc().Barrier()
	})
	requireEqualFiles(t, a, b)
}

func TestBigBlocksWithTinyBuffers(t *testing.T) {
	// Buffer-limit handling (§3.2.2): file buffer smaller than a single
	// contiguous block, pack buffer smaller than the file buffer.
	a, b := runBoth(t, 2, Options{SieveBufSize: 48, PackBufSize: 16, CollBufSize: 64}, func(f *File) {
		rank := f.Proc().Rank()
		P := f.Proc().Size()
		ft := noncontigTypeP(rank, P, 4, 128) // 128-byte blocks vs 48-byte windows
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		mt, err := datatype.Hvector(4, 128, 160, datatype.Byte)
		if err != nil {
			panic(err)
		}
		buf := pattern(rank, mt.Extent())
		if _, err := f.WriteAt(0, 1, mt, buf); err != nil {
			panic(err)
		}
		got := make([]byte, len(buf))
		if _, err := f.ReadAt(0, 1, mt, got); err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			o := i * 160
			if !bytes.Equal(got[o:o+128], buf[o:o+128]) {
				panic("tiny-buffer round trip mismatch")
			}
		}
		// And collectively.
		if _, err := f.WriteAtAll(0, 1, mt, buf); err != nil {
			panic(err)
		}
	})
	requireEqualFiles(t, a, b)
}

func TestManySmallIndependentAccesses(t *testing.T) {
	// Stress the positioning paths: many accesses at scattered etype
	// offsets within the view.
	a, b := runBoth(t, 1, Options{SieveBufSize: 128}, func(f *File) {
		ft := noncontigTypeP(0, 3, 64, 8) // every 3rd 8-byte block
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		full := pattern(5, 64*8)
		if _, err := f.WriteAt(0, 64*8, datatype.Byte, full); err != nil {
			panic(err)
		}
		for i := 0; i < 50; i++ {
			off := int64((i * 37) % 500)
			n := int64(1 + (i*13)%12)
			got := make([]byte, n)
			if _, err := f.ReadAt(off, n, datatype.Byte, got); err != nil {
				panic(err)
			}
			if !bytes.Equal(got, full[off:off+n]) {
				panic("scattered read mismatch")
			}
		}
	})
	requireEqualFiles(t, a, b)
}

func TestTwoGroupsTwoFilesViaSplit(t *testing.T) {
	// Communicator splitting: each half of the world opens its own file
	// and runs an independent collective write concurrently.
	const P = 4
	backends := [2]*storage.Mem{storage.NewMem(), storage.NewMem()}
	shared := [2]*Shared{NewShared(backends[0]), NewShared(backends[1])}
	_, err := mpi.Run(P, func(p *mpi.Proc) {
		color := p.Rank() / 2
		sub := p.Split(color, 0)
		f, err := Open(sub, shared[color], Options{Engine: Listless})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ft := noncontigTypeP(sub.Rank(), sub.Size(), 16, 8)
		if err := f.SetView(0, datatype.Byte, ft); err != nil {
			panic(err)
		}
		data := pattern(p.Rank(), 128)
		if _, err := f.WriteAtAll(0, 128, datatype.Byte, data); err != nil {
			panic(err)
		}
		got := make([]byte, 128)
		if _, err := f.ReadAtAll(0, 128, datatype.Byte, got); err != nil {
			panic(err)
		}
		if !bytes.Equal(got, data) {
			panic("split-group round trip failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		raw := backends[g].Bytes()
		if len(raw) != 256 {
			t.Fatalf("group %d file size %d", g, len(raw))
		}
		for r := 0; r < 2; r++ {
			want := pattern(g*2+r, 128)
			for blk := 0; blk < 16; blk++ {
				off := blk*16 + r*8
				if !bytes.Equal(raw[off:off+8], want[blk*8:blk*8+8]) {
					t.Fatalf("group %d rank %d block %d wrong", g, r, blk)
				}
			}
		}
	}
}
