package core

import (
	"errors"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// Fault-injection tests: backend errors must surface as errors from the
// I/O calls (never panics, never silent truncation) through every path —
// contiguous, staged, sieving, and two-phase collective.

func faultyWorld(t *testing.T, eng Engine, scenario func(f *File, fb *storage.Faulty) error) error {
	t.Helper()
	fb := storage.NewFaulty(storage.NewMem())
	sh := NewShared(fb)
	var opErr error
	_, err := mpi.Run(1, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{Engine: eng, SieveBufSize: 64, PackBufSize: 32})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		opErr = scenario(f, fb)
	})
	if err != nil {
		t.Fatalf("world error (should have been an I/O error): %v", err)
	}
	return opErr
}

func TestFaultContiguousWrite(t *testing.T) {
	for _, eng := range []Engine{Listless, ListBased} {
		err := faultyWorld(t, eng, func(f *File, fb *storage.Faulty) error {
			fb.FailWrites(1)
			_, err := f.WriteAt(0, 64, datatype.Byte, make([]byte, 64))
			return err
		})
		if !errors.Is(err, storage.ErrInjected) {
			t.Errorf("%v: err = %v, want injected", eng, err)
		}
	}
}

func TestFaultSievingWrite(t *testing.T) {
	ft, err := datatype.Vector(16, 1, 2, datatype.Double)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{Listless, ListBased} {
		// Fail the write-back of a sieve window.
		werr := faultyWorld(t, eng, func(f *File, fb *storage.Faulty) error {
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				return err
			}
			fb.FailWrites(1)
			_, err := f.WriteAt(0, 64, datatype.Byte, make([]byte, 64))
			return err
		})
		if !errors.Is(werr, storage.ErrInjected) {
			t.Errorf("%v: sieve write err = %v", eng, werr)
		}
		// Fail the read of a later sieve window (RMW pre-read).
		rerr := faultyWorld(t, eng, func(f *File, fb *storage.Faulty) error {
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				return err
			}
			fb.FailReads(2)
			_, err := f.ReadAt(0, 128, datatype.Byte, make([]byte, 128))
			return err
		})
		if !errors.Is(rerr, storage.ErrInjected) {
			t.Errorf("%v: sieve read err = %v", eng, rerr)
		}
	}
}

func TestFaultCollectiveWrite(t *testing.T) {
	const P = 4
	for _, eng := range []Engine{Listless, ListBased} {
		fb := storage.NewFaulty(storage.NewMem())
		sh := NewShared(fb)
		errs := make([]error, P)
		_, err := mpi.Run(P, func(p *mpi.Proc) {
			f, err := Open(p, sh, Options{Engine: eng, CollBufSize: 128})
			if err != nil {
				panic(err)
			}
			defer f.Close()
			ft := noncontigTypeP(p.Rank(), P, 16, 8)
			if err := f.SetView(0, datatype.Byte, ft); err != nil {
				panic(err)
			}
			if p.Rank() == 0 {
				fb.FailWrites(1)
			}
			p.Barrier()
			_, errs[p.Rank()] = f.WriteAtAll(0, 128, datatype.Byte, make([]byte, 128))
		})
		if err != nil {
			t.Fatalf("%v: world error: %v", eng, err)
		}
		// Every write fails from the first on, so the lowest failing
		// rank — and thus the agreed attribution — is rank 0.
		requireAgreement(t, eng.String(), errs, 0, PhaseIOPWindow)
	}
}

func TestFaultHealRecovers(t *testing.T) {
	err := faultyWorld(t, Listless, func(f *File, fb *storage.Faulty) error {
		fb.FailWrites(1)
		if _, err := f.WriteAt(0, 8, datatype.Byte, make([]byte, 8)); err == nil {
			t.Error("expected injected failure")
		}
		fb.Heal()
		_, err := f.WriteAt(0, 8, datatype.Byte, make([]byte, 8))
		return err
	})
	if err != nil {
		t.Fatalf("post-heal write failed: %v", err)
	}
}
