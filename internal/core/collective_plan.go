package core

// collPlan is the deterministic schedule of one collective access, which
// every rank computes identically from the allgathered access ranges.
type collPlan struct {
	nIOP     int
	gLo, gHi int64
	domSize  int64
	d0s      []int64 // per-rank access start, in view-data bytes
	ds       []int64 // per-rank data sizes
	los      []int64 // per-rank absolute first byte
	his      []int64 // per-rank absolute end
}

// domain returns IOP i's file domain, clamped to the global range.
func (pl *collPlan) domain(i int) (lo, hi int64) {
	lo = pl.gLo + int64(i)*pl.domSize
	hi = lo + pl.domSize
	if hi > pl.gHi {
		hi = pl.gHi
	}
	if lo > hi {
		lo = hi
	}
	return
}

// makePlan allgathers every rank's access range and partitions the
// aggregate file range into per-IOP domains.  The bool result is false
// when no rank accesses any data.
func (f *File) makePlan(d0, d int64) (*collPlan, bool) {
	var lo, hi int64
	if d > 0 {
		lo = f.eng.dataToFileStart(d0)
		hi = f.eng.dataToFileEnd(d0 + d)
	}
	all := f.p.AllgatherInt64s([]int64{d0, d, lo, hi})
	pl := &collPlan{
		nIOP: f.opts.IONodes,
		d0s:  make([]int64, f.p.Size()),
		ds:   make([]int64, f.p.Size()),
		los:  make([]int64, f.p.Size()),
		his:  make([]int64, f.p.Size()),
	}
	if pl.nIOP == 0 {
		pl.nIOP = f.p.Size()
	}
	gLo, gHi := int64(-1), int64(-1)
	for r, v := range all {
		pl.d0s[r], pl.ds[r], pl.los[r], pl.his[r] = v[0], v[1], v[2], v[3]
		if v[1] == 0 {
			continue
		}
		if gLo < 0 || v[2] < gLo {
			gLo = v[2]
		}
		if v[3] > gHi {
			gHi = v[3]
		}
	}
	if gLo < 0 {
		return nil, false // nothing to do anywhere
	}
	pl.gLo, pl.gHi = gLo, gHi
	pl.domSize = (gHi - gLo + int64(pl.nIOP) - 1) / int64(pl.nIOP)
	if pl.domSize == 0 {
		pl.domSize = 1
	}
	return pl, true
}
