package core

import (
	"bytes"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

func TestAtomicModeSerializesOverlappingWrites(t *testing.T) {
	// Two ranks write the same non-contiguous region concurrently with a
	// tiny sieve buffer.  In atomic mode each access holds its whole
	// range, so the final file must be entirely one rank's data — never
	// a window-granular interleaving.
	for _, eng := range []Engine{Listless, ListBased} {
		for trial := 0; trial < 5; trial++ {
			be := storage.NewMem()
			sh := NewShared(be)
			_, err := mpi.Run(2, func(p *mpi.Proc) {
				f, err := Open(p, sh, Options{Engine: eng, SieveBufSize: 32})
				if err != nil {
					panic(err)
				}
				defer f.Close()
				// Both ranks use rank 0's view: same scattered region.
				ft := noncontigTypeP(0, 2, 32, 8)
				if err := f.SetView(0, datatype.Byte, ft); err != nil {
					panic(err)
				}
				f.SetAtomicity(true)
				if !f.Atomicity() {
					panic("atomicity not set")
				}
				data := bytes.Repeat([]byte{byte('A' + p.Rank())}, 256)
				if _, err := f.WriteAt(0, 256, datatype.Byte, data); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			// Collect the typed bytes and require them uniform.
			raw := be.Bytes()
			var got []byte
			for blk := 0; blk < 32; blk++ {
				got = append(got, raw[blk*16:blk*16+8]...)
			}
			for _, b := range got {
				if b != got[0] {
					t.Fatalf("%v trial %d: atomic write interleaved: %q", eng, trial, got)
				}
			}
		}
	}
}

func TestAtomicModeOffByDefaultAndToggles(t *testing.T) {
	be := storage.NewMem()
	sh := NewShared(be)
	_, err := mpi.Run(2, func(p *mpi.Proc) {
		f, err := Open(p, sh, Options{})
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if f.Atomicity() {
			panic("atomic mode on by default")
		}
		f.SetAtomicity(true)
		f.SetAtomicity(false)
		if f.Atomicity() {
			panic("atomic mode did not toggle off")
		}
		// I/O still works after toggling.
		if _, err := f.WriteAt(0, 8, datatype.Byte, make([]byte, 8)); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
