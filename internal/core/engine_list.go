package core

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/flatten"
)

// listEngine is the ROMIO-style baseline (paper §2).  Filetypes and
// memtypes are explicitly flattened into ol-lists of ⟨offset,length⟩
// tuples; positioning traverses the lists linearly; copies are performed
// per tuple; every collective access makes each AP build and transmit an
// ol-list of its accesses for each IOP whose file domain it touches.
type listEngine struct {
	f     *File
	cache map[*datatype.Type]flatten.List // explicit-flatten cache
	flat  *flatten.View                   // list-based view representation
}

func newListEngine(f *File) *listEngine {
	return &listEngine{f: f, cache: make(map[*datatype.Type]flatten.List)}
}

func (e *listEngine) setView() error {
	f := e.f
	// Explicit flattening, cached for reuse with the same datatype
	// (ROMIO stores the ol-list on the datatype).
	l, ok := e.cache[f.v.ftype]
	if !ok {
		l = flatten.Flatten(f.v.ftype)
		e.cache[f.v.ftype] = l
		f.Stats.ListTuples += int64(len(l))
	}
	e.flat = &flatten.View{
		Disp:   f.v.disp,
		Extent: f.v.ftype.Extent(),
		Bytes:  l.Bytes(),
		Segs:   l,
	}
	// List-based SetView is still collective per MPI; synchronize.
	f.p.Barrier()
	return nil
}

func (e *listEngine) dataToFileStart(d int64) int64 {
	return e.flat.DataToFile(d)
}

func (e *listEngine) dataToFileEnd(d int64) int64 {
	return e.flat.DataToFile(d-1) + 1
}

func (e *listEngine) dataInRange(lo, hi int64) int64 {
	if hi <= lo {
		return 0
	}
	var n int64
	e.flat.EachInRange(lo, hi, func(_, _, ln int64) { n += ln })
	return n
}

func (e *listEngine) newMemState(memtype *datatype.Type, count int64) *memState {
	ms := &memState{t: memtype, count: count}
	// The memory side is local to the process, so even the list-based
	// engine may use a compiled memtype program — the file side keeps
	// its ol-list character.  The ablation (DisableProgram) restores
	// the pure ROMIO flatten below.
	if p := e.f.lookupProgram(nil, memtype); p != nil {
		ms.setProgram(p)
		return ms
	}
	if memtype.ContiguousTiled() {
		total := count * memtype.Size()
		ms.list = flatten.List{{Off: memtype.TrueLB(), Len: total}}
		ms.ext = count * memtype.Extent()
		ms.count = 1
	} else {
		ms.list = flatten.Flatten(memtype)
		ms.ext = memtype.Extent()
		e.f.Stats.ListTuples += int64(len(ms.list))
	}
	return ms
}

func (e *listEngine) packUser(dst, buf []byte, mem *memState, skip, n int64) {
	if mem.packProg(dst, buf, skip, n, true) {
		return
	}
	flatten.PackList(dst[:n], buf, mem.list, mem.ext, mem.count, skip, n)
}

func (e *listEngine) unpackUser(buf, src []byte, mem *memState, skip, n int64) {
	if mem.packProg(src, buf, skip, n, false) {
		return
	}
	flatten.UnpackList(buf, src[:n], mem.list, mem.ext, mem.count, skip, n)
}

// listViewCursor wraps the ol-list cursor; initial positioning is the
// linear O(N_block) traversal of §2.2, advancing is per-tuple.
type listViewCursor struct {
	c *flatten.Cursor
}

func (e *listEngine) seekData(d0 int64) viewCursor {
	return &listViewCursor{c: e.flat.SeekData(d0)}
}

func (vc *listViewCursor) countUpTo(fileHi int64) int64 {
	return vc.c.CountUpTo(fileHi)
}

func (vc *listViewCursor) copyWindow(cb, w []byte, c, winLo int64, write bool) {
	start := vc.c.DataOffset()
	vc.c.Each(c, func(fileOff, dataOff, ln int64) {
		if write {
			copy(w[fileOff-winLo:fileOff-winLo+ln], cb[dataOff-start:])
		} else {
			copy(cb[dataOff-start:dataOff-start+ln], w[fileOff-winLo:])
		}
	})
}

func (vc *listViewCursor) eachRun(c int64, emit func(fileOff, dataOff, ln int64)) {
	vc.c.Each(c, emit)
}

// ---- Collective access: the ol-list exchange of §2.3. ----

// apTriple is one entry of an AP's access list for an IOP domain: an
// absolute file segment plus the view-data offset of its first byte.
// Only ⟨fileOff,len⟩ is transmitted (16 bytes per tuple).
type apTriple struct {
	fileOff, dataOff, len int64
}

// buildAPTriples builds the AP-side access list for one domain, clipped
// to the access's data range — the O(S_domain/S_extent · N_block) cost of
// §2.3.
func (e *listEngine) buildAPTriples(domLo, domHi, d0, d int64) []apTriple {
	var out []apTriple
	e.flat.EachInRange(domLo, domHi, func(fileOff, dataOff, n int64) {
		a, b := dataOff, dataOff+n
		if a < d0 {
			fileOff += d0 - a
			a = d0
		}
		if b > d0+d {
			b = d0 + d
		}
		if a >= b {
			return
		}
		out = append(out, apTriple{fileOff: fileOff, dataOff: a, len: b - a})
	})
	e.f.Stats.ListTuples += int64(len(out))
	return out
}

func encodeTuples(ts []apTriple) []byte {
	buf := make([]byte, flatten.TupleBytes*len(ts))
	for i, t := range ts {
		putInt64(buf[i*flatten.TupleBytes:], t.fileOff)
		putInt64(buf[i*flatten.TupleBytes+8:], t.len)
	}
	return buf
}

// decodeTuples decodes a received access-list payload.  The payload
// crosses the (simulated) wire, so it is validated rather than trusted:
// a truncated or odd-length payload, or a tuple with a negative length,
// yields an error wrapping ErrCorruptAccessList.
func decodeTuples(buf []byte) (flatten.List, error) {
	if len(buf)%flatten.TupleBytes != 0 {
		return nil, fmt.Errorf("core: access-list payload of %d bytes is not a whole number of %d-byte tuples: %w",
			len(buf), flatten.TupleBytes, ErrCorruptAccessList)
	}
	l := make(flatten.List, len(buf)/flatten.TupleBytes)
	for i := range l {
		seg := flatten.Segment{
			Off: getInt64(buf[i*flatten.TupleBytes:]),
			Len: getInt64(buf[i*flatten.TupleBytes+8:]),
		}
		if seg.Off < 0 || seg.Len < 0 {
			return nil, fmt.Errorf("core: access-list tuple %d has negative offset or length ⟨%d,%d⟩: %w",
				i, seg.Off, seg.Len, ErrCorruptAccessList)
		}
		l[i] = seg
	}
	return l, nil
}

// tripleCursor walks an AP's domain triples sequentially across window
// boundaries, handling tuples that span a boundary.
type tripleCursor struct {
	ts     []apTriple
	i      int
	within int64
}

// window returns the data range [a, b) of the triples up to absolute
// file offset winHi, advancing the cursor.  a == b means no data.
func (c *tripleCursor) window(_, winHi int64) (a, b int64) {
	a = -1
	for c.i < len(c.ts) {
		t := c.ts[c.i]
		start := t.fileOff + c.within
		if start >= winHi {
			break
		}
		take := t.len - c.within
		if rest := winHi - start; take > rest {
			take = rest
		}
		if a < 0 {
			a = t.dataOff + c.within
		}
		b = t.dataOff + c.within + take
		c.within += take
		if c.within == t.len {
			c.i++
			c.within = 0
		} else {
			break
		}
	}
	if a < 0 {
		return 0, 0
	}
	return a, b
}

// listAPState carries the per-IOP access lists an AP built (and sent)
// for one collective access.
type listAPState struct {
	triples [][]apTriple
}

func (s *listAPState) cursor(i int) apCursor {
	return &tripleCursor{ts: s.triples[i]}
}

// apSetup builds and sends this rank's access list for every IOP domain;
// this many-to-many ol-list exchange happens on every collective access.
func (e *listEngine) apSetup(pl *collPlan, d0, d int64) apState {
	f := e.f
	st := &listAPState{triples: make([][]apTriple, pl.nIOP)}
	for i := 0; i < pl.nIOP; i++ {
		domLo, domHi := pl.domain(i)
		if d > 0 && domLo < domHi {
			st.triples[i] = e.buildAPTriples(domLo, domHi, d0, d)
		}
		payload := encodeTuples(st.triples[i])
		f.Stats.ListBytesSent += int64(len(payload))
		f.p.SendNoCopy(i, tagCollList, payload)
	}
	return st
}

// listCursor walks a received ol-list sequentially, slicing per-window
// sub-lists (ROMIO's transient per-block indexed datatypes).
type listCursor struct {
	l      flatten.List
	i      int
	within int64
}

func (c *listCursor) sliceUpTo(winHi int64) flatten.List {
	var out flatten.List
	for c.i < len(c.l) {
		seg := c.l[c.i]
		start := seg.Off + c.within
		if start >= winHi {
			break
		}
		take := seg.Len - c.within
		if rest := winHi - start; take > rest {
			take = rest
		}
		out = append(out, flatten.Segment{Off: start, Len: take})
		c.within += take
		if c.within == seg.Len {
			c.i++
			c.within = 0
		} else {
			break
		}
	}
	return out
}

// listIOPState holds the per-AP list cursors of one IOP.
type listIOPState struct {
	f       *File
	cursors []listCursor
}

// iopSetup receives one access list from every AP.
func (e *listEngine) iopSetup(pl *collPlan) (iopState, error) {
	f := e.f
	P := f.p.Size()
	st := &listIOPState{f: f, cursors: make([]listCursor, P)}
	var firstErr error
	for n := 0; n < P; n++ {
		payload, src, _ := f.p.Recv(-1, tagCollList)
		l, err := decodeTuples(payload)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: rank %d: %w", src, err)
		}
		st.cursors[src].l = l
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return st, nil
}

// listIOPWindow is one window's per-AP sub-lists (ROMIO's transient
// indexed datatypes), with per-tuple copying.
type listIOPWindow struct {
	winLo, winHi int64
	subs         []flatten.List
	lens         []int64
	tot          int64
}

func (s *listIOPState) window(winLo, winHi int64) iopWindow {
	P := len(s.cursors)
	w := &listIOPWindow{
		winLo: winLo, winHi: winHi,
		subs: make([]flatten.List, P),
		lens: make([]int64, P),
	}
	for r := 0; r < P; r++ {
		w.subs[r] = s.cursors[r].sliceUpTo(winHi)
		s.f.Stats.ListTuples += int64(len(w.subs[r]))
		var n int64
		for _, seg := range w.subs[r] {
			n += seg.Len
		}
		w.lens[r] = n
		w.tot += n
	}
	return w
}

func (w *listIOPWindow) total() int64         { return w.tot }
func (w *listIOPWindow) chunkLen(r int) int64 { return w.lens[r] }

// release is a no-op: the list engine's windows alias list slices whose
// lifetime is the collective; per-window allocation is inherent to the
// list representation (part of what the listless engine eliminates).
func (w *listIOPWindow) release() {}

// covered merges the per-AP window sub-lists (the list-merging cost of
// the ROMIO write optimization, §2.3).
func (w *listIOPWindow) covered() bool {
	nonEmpty := make([]flatten.List, 0, len(w.subs))
	for _, l := range w.subs {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
		}
	}
	return flatten.Merge(nonEmpty...).Covers(w.winLo, w.winHi)
}

func (w *listIOPWindow) copyIn(buf []byte, r int, chunk []byte) {
	var pos int64
	for _, seg := range w.subs[r] {
		copy(buf[seg.Off-w.winLo:seg.Off-w.winLo+seg.Len], chunk[pos:pos+seg.Len])
		pos += seg.Len
	}
}

func (w *listIOPWindow) copyOut(buf []byte, r int, chunk []byte) {
	var pos int64
	for _, seg := range w.subs[r] {
		copy(chunk[pos:pos+seg.Len], buf[seg.Off-w.winLo:seg.Off-w.winLo+seg.Len])
		pos += seg.Len
	}
}
