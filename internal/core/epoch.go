package core

import (
	"repro/internal/mpi"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Crash-consistent collective writes.  When the backend supports the
// epoch commit protocol (storage.EpochBackend — the networked I/O-server
// tier), every collective write runs inside an epoch: the window
// write-backs stage instead of apply, and after the existing collective
// error vote passes, the ranks run the commit protocol below.  A server
// that crashes mid-collective therefore leaves every stripe at the last
// committed collective — no torn multi-stripe state — and a server that
// bounces and heals mid-collective costs a retried round, not a failed
// or corrupt write.
//
// The commit protocol per epoch, all collective:
//
//  1. every rank seals the epoch on every server (verifying its staged
//     writes survived, re-staging over a reconnect if not);
//  2. the seal outcomes are voted (AllreduceInt64 OpMin, like the error
//     vote); a failed seal within the attempt budget re-runs step 1 —
//     Resilient's reconnect has replayed the stage log by then;
//  3. rank 0 commits (carrying the incarnation it sealed against, so a
//     commit racing a restart is refused with ErrEpochRetry rather than
//     committing a partial epoch) and broadcasts the outcome byte;
//  4. on retry outcomes everyone loops; on failure everyone aborts and
//     returns the same rank-attributed CollectiveError.
//
// Scope: the protocol covers *server* crashes.  A rank that dies mid
// fan-out of step 3 is outside the failure model (the world dies with
// it); servers whose epochs were committed before the death keep them,
// uncommitted ones are discarded at restart.

// maxEpochAttempts bounds the seal/commit retry rounds per epoch.  Each
// failed round already rode a Resilient retry budget to its end, so
// attempts beyond a few mean the tier is genuinely down.
const maxEpochAttempts = 4

// Commit-outcome bytes broadcast by rank 0 in step 3.
const (
	epochOutcomeOK    = 0
	epochOutcomeRetry = 1
	epochOutcomeFail  = 2
)

// epochBegin allocates the collective's epoch id and enters staging
// mode.  Ids are lockstep across ranks (same per-handle sequence) and
// never reused within a world (the Shared high-water mark carries the
// sequence across sequentially opened handles).
func (f *File) epochBegin() uint64 {
	f.epochSeq++
	id := f.epochBase + f.epochSeq
	f.sh.noteEpoch(id)
	f.epochBE.EpochBegin(id)
	return id
}

// epochAbandon discards the epoch after a failed collective: rank 0
// tells the servers (best effort), everyone else just leaves staging
// mode.  All ranks of a failed collective take this path, so the staged
// state cannot be committed later by accident.
func (f *File) epochAbandon(id uint64) {
	f.om.epochAborts.Inc()
	if f.p.Rank() == 0 {
		f.epochBE.EpochAbort(id)
	} else {
		f.epochBE.EpochEnd(id)
	}
}

// epochFinish runs the commit protocol (steps 1-4 above) after a
// successful error vote.  It is fully collective: every rank takes the
// same branch every round, so no rank can strand another.
func (f *File) epochFinish(id uint64) error {
	for attempt := 1; ; attempt++ {
		// Step 1: seal everywhere.  A seal failure here has already
		// exhausted the backend's transient-retry budget.
		ssp := f.tr.Begin(trace.PhaseEpochSeal, int64(id), 0)
		sealErr := f.epochBE.EpochSeal(id)
		ssp.End()

		// Step 2: vote the seal outcomes.
		vote := noFailure
		if sealErr != nil {
			vote = int64(f.p.Rank())
		}
		failRank := f.p.AllreduceInt64(vote, mpi.OpMin)
		if failRank != noFailure {
			if attempt < maxEpochAttempts {
				// Typically a server still restarting: re-seal, which
				// reconnects and replays the stage log.
				f.Stats.EpochRetries++
				f.om.epochRetries.Inc()
				f.tr.Instant(trace.PhaseEpochRetry, int64(id), 0, "re-seal")
				continue
			}
			var local *CollectiveError
			if sealErr != nil {
				local = &CollectiveError{Rank: f.p.Rank(), Phase: PhaseEpochSeal, Err: sealErr}
			}
			var payload []byte
			if int64(f.p.Rank()) == failRank {
				payload = encodeCollFault(local)
			}
			payload = f.p.Bcast(int(failRank), payload)
			f.epochAbandon(id)
			if int64(f.p.Rank()) == failRank {
				return local
			}
			phase, cause := decodeCollFault(payload)
			return &CollectiveError{Rank: int(failRank), Phase: phase, Err: cause}
		}

		// Step 3: rank 0 commits and broadcasts the outcome.
		var outcome byte
		var commitErr error
		if f.p.Rank() == 0 {
			csp := f.tr.Begin(trace.PhaseEpochCommit, int64(id), 0)
			commitErr = f.epochBE.EpochCommit(id)
			csp.End()
			switch {
			case commitErr == nil:
				outcome = epochOutcomeOK
			case storage.IsEpochRetry(commitErr) && attempt < maxEpochAttempts:
				// A server restarted between seal and commit; its staged
				// state is gone.  Re-seal (replaying) and re-commit.
				outcome = epochOutcomeRetry
			default:
				outcome = epochOutcomeFail
			}
		}
		var payload []byte
		if f.p.Rank() == 0 {
			payload = []byte{outcome}
			if outcome == epochOutcomeFail {
				payload = append(payload,
					encodeCollFault(&CollectiveError{Rank: 0, Phase: PhaseEpochCommit, Err: commitErr})...)
			}
		}
		payload = f.p.Bcast(0, payload)
		if len(payload) == 0 {
			payload = []byte{epochOutcomeFail}
		}

		// Step 4: act on the agreed outcome.
		switch payload[0] {
		case epochOutcomeOK:
			f.epochBE.EpochEnd(id)
			f.Stats.EpochsCommitted++
			f.om.epochsCommitted.Inc()
			return nil
		case epochOutcomeRetry:
			f.Stats.EpochRetries++
			f.om.epochRetries.Inc()
			f.tr.Instant(trace.PhaseEpochRetry, int64(id), 0, "re-commit")
			continue
		default:
			f.epochAbandon(id)
			if f.p.Rank() == 0 {
				return &CollectiveError{Rank: 0, Phase: PhaseEpochCommit, Err: commitErr}
			}
			phase, cause := decodeCollFault(payload[1:])
			return &CollectiveError{Rank: 0, Phase: phase, Err: cause}
		}
	}
}
