package core

import (
	"time"

	"repro/internal/storage"
	"repro/internal/trace"
)

// The IOP window loop.  Each IOP walks its file domain in CollBufSize
// windows; for every window it (write) optionally pre-reads the window,
// receives and merges each AP's chunk, and writes the window back, or
// (read) reads the window and sends each AP its portion.
//
// Two variants share the engine-provided iopWindow state:
//
//   - iopSequential: one window at a time, every phase in order — the
//     classic two-phase loop, kept as the DisableCollPipeline ablation
//     baseline.
//
//   - iopPipelined (the default): a double-buffered pipeline over two
//     window buffers.  Window k+1's pre-read and window k-1's
//     write-back run in the background while window k's AP exchange and
//     copying proceed on the main goroutine, overlapping storage time
//     with communication time.  Safe because windows are disjoint file
//     ranges, backends accept concurrent access, and all MPI traffic
//     stays on the main goroutine (preserving per-pair message order).
//
// All Stats fields are updated on the main goroutine only; background
// I/O durations travel back through the slot/ready tokens.

// iopProcess runs this rank's IOP role: engine setup (the list-based
// engine receives one access list from every AP — this must happen even
// for an empty domain, to drain the AP phase-1 messages), then the
// window loop over the domain.  Failures come back phase-attributed for
// the error-agreement vote.
func (f *File) iopProcess(pl *collPlan, write bool) *CollectiveError {
	ssp := f.tr.Begin(trace.PhaseIOPSetup, trace.NoWindow, 0)
	iop, err := f.eng.iopSetup(pl)
	ssp.End()
	if err != nil {
		return &CollectiveError{Rank: f.p.Rank(), Phase: PhaseIOPSetup, Err: err}
	}
	domLo, domHi := pl.domain(f.p.Rank())
	if domLo >= domHi {
		return nil
	}
	winSize := min(int64(f.opts.CollBufSize), domHi-domLo)
	if f.opts.DisableCollPipeline {
		err = f.iopSequential(iop, domLo, domHi, winSize, write)
	} else {
		err = f.iopPipelined(iop, domLo, domHi, winSize, write)
	}
	if err != nil {
		return &CollectiveError{Rank: f.p.Rank(), Phase: PhaseIOPWindow, Err: err}
	}
	return nil
}

// iopExchangeWrite receives every AP's chunk for one window and merges
// it into the window buffer w, accounting exchange and copy time.
// winLo annotates the trace spans with the window's file offset.
func (f *File) iopExchangeWrite(iw iopWindow, w []byte, winLo int64) {
	for r := 0; r < f.p.Size(); r++ {
		if iw.chunkLen(r) == 0 {
			continue
		}
		esp := f.tr.Begin(trace.PhaseExchange, winLo, 0)
		t0 := time.Now()
		chunk, _, _ := f.p.Recv(r, tagCollData)
		t1 := time.Now()
		esp.EndBytes(int64(len(chunk)))
		csp := f.tr.Begin(trace.PhaseCopy, winLo, int64(len(chunk)))
		iw.copyIn(w, r, chunk)
		csp.End()
		f.Stats.ExchangeNs += t1.Sub(t0).Nanoseconds()
		f.Stats.CopyNs += time.Since(t1).Nanoseconds()
	}
}

// iopExchangeRead extracts every AP's portion of the window buffer w
// and sends it, accounting copy and exchange time.
func (f *File) iopExchangeRead(iw iopWindow, w []byte, winLo int64) {
	for r := 0; r < f.p.Size(); r++ {
		n := iw.chunkLen(r)
		if n == 0 {
			continue
		}
		csp := f.tr.Begin(trace.PhaseCopy, winLo, n)
		t0 := time.Now()
		chunk := make([]byte, n)
		iw.copyOut(w, r, chunk)
		t1 := time.Now()
		csp.End()
		esp := f.tr.Begin(trace.PhaseExchange, winLo, n)
		f.p.SendNoCopy(r, tagCollData, chunk)
		esp.End()
		f.Stats.CopyNs += t1.Sub(t0).Nanoseconds()
		f.Stats.ExchangeNs += time.Since(t1).Nanoseconds()
	}
}

// iopSequential is the strictly ordered window loop.
func (f *File) iopSequential(iop iopState, domLo, domHi, winSize int64, write bool) error {
	win := make([]byte, winSize)
	for winLo := domLo; winLo < domHi; winLo += winSize {
		winHi := min(winLo+winSize, domHi)
		w := win[:winHi-winLo]
		iw := iop.window(winLo, winHi)
		if iw.total() == 0 {
			continue
		}
		wsp := f.tr.Begin(trace.PhaseWindow, winLo, iw.total())
		if write {
			covered := !f.opts.DisableMergeCheck && iw.covered()
			if covered {
				f.Stats.PreReadsSkipped++
			} else {
				rsp := f.tr.Begin(trace.PhasePreRead, winLo, int64(len(w)))
				t0 := time.Now()
				err := storage.ReadFull(f.sh.b, w, winLo)
				rsp.End()
				f.Stats.StorageNs += time.Since(t0).Nanoseconds()
				if err != nil {
					wsp.End()
					return err
				}
			}
			f.iopExchangeWrite(iw, w, winLo)
			bsp := f.tr.Begin(trace.PhaseWriteBack, winLo, int64(len(w)))
			t0 := time.Now()
			_, err := f.sh.b.WriteAt(w, winLo)
			bsp.End()
			f.Stats.StorageNs += time.Since(t0).Nanoseconds()
			if err != nil {
				wsp.End()
				return err
			}
			f.Stats.SieveWrites++
		} else {
			rsp := f.tr.Begin(trace.PhasePreRead, winLo, int64(len(w)))
			t0 := time.Now()
			err := storage.ReadFull(f.sh.b, w, winLo)
			rsp.End()
			f.Stats.StorageNs += time.Since(t0).Nanoseconds()
			if err != nil {
				wsp.End()
				return err
			}
			f.Stats.SieveReads++
			f.iopExchangeRead(iw, w, winLo)
		}
		wsp.End()
	}
	return nil
}

// ioToken carries the result of one background storage access through
// the pipeline's channels: its error and its duration.
type ioToken struct {
	err error
	ns  int64
}

// pipeSlot is one of the two window buffers.  avail holds exactly one
// token; taking it grants use of buf, returning it (after the slot's
// write-back completes) releases it to the window after next.
type pipeSlot struct {
	buf   []byte
	avail chan ioToken
}

// pipeWindow is one in-flight window of the pipeline.
type pipeWindow struct {
	winLo, winHi int64
	iw           iopWindow
	slot         *pipeSlot
	covered      bool         // write: pre-read skipped
	ready        chan ioToken // pre-read (or slot hand-over) completion
}

// iopPipelined is the double-buffered window loop.  The prep goroutine
// of window k+1 first waits for its slot's token — released by window
// k-1's write-back — so at most two windows are ever in flight, then
// pre-reads the window (unless this is a fully covered write) and
// signals ready.  The main goroutine does all exchange and copying and
// hands write-backs to the background.
func (f *File) iopPipelined(iop iopState, domLo, domHi, winSize int64, write bool) error {
	var slots [2]*pipeSlot
	for i := range slots {
		slots[i] = &pipeSlot{buf: make([]byte, winSize), avail: make(chan ioToken, 1)}
		slots[i].avail <- ioToken{}
	}
	nextSlot := 0
	nextLo := domLo

	// mk prepares the next non-empty window, or returns nil when the
	// domain is exhausted.  Empty windows are skipped without consuming
	// a slot.  iop.window calls stay on the main goroutine, in order.
	mk := func() *pipeWindow {
		for nextLo < domHi {
			winLo := nextLo
			winHi := min(winLo+winSize, domHi)
			nextLo = winHi
			iw := iop.window(winLo, winHi)
			if iw.total() == 0 {
				continue
			}
			pw := &pipeWindow{
				winLo: winLo, winHi: winHi, iw: iw,
				slot:  slots[nextSlot],
				ready: make(chan ioToken, 1),
			}
			nextSlot = 1 - nextSlot
			if write && !f.opts.DisableMergeCheck {
				pw.covered = iw.covered()
			}
			go func() {
				t := <-pw.slot.avail // wait out the slot's prior write-back
				if t.err == nil && (!write || !pw.covered) {
					rsp := f.tr.BeginIO(trace.PhasePreRead, pw.winLo, pw.winHi-pw.winLo)
					t0 := time.Now()
					err := storage.ReadFull(f.sh.b, pw.slot.buf[:pw.winHi-pw.winLo], pw.winLo)
					rsp.End()
					t = ioToken{err: err, ns: t.ns + time.Since(t0).Nanoseconds()}
				}
				pw.ready <- t
			}()
			return pw
		}
		return nil
	}

	cur := mk()
	for cur != nil {
		// Start window k+1's pre-read before touching window k: this is
		// the overlap.
		nxt := mk()
		if nxt != nil {
			f.Stats.WindowsOverlapped++
		}

		psp := f.tr.Begin(trace.PhasePipelineWait, cur.winLo, 0)
		t := <-cur.ready
		psp.End()
		f.Stats.StorageNs += t.ns
		if t.err != nil {
			// Unwind quiescently: no background I/O may outlive this
			// return, or it would race the next collective on the file.
			// nxt's prep consumed its slot token, so waiting for ready
			// also waits out that slot's prior write-back; with no nxt,
			// the other slot's token must be reclaimed directly.
			if nxt != nil {
				t2 := <-nxt.ready
				f.Stats.StorageNs += t2.ns
			} else {
				for _, s := range slots {
					if s != cur.slot {
						t2 := <-s.avail
						f.Stats.StorageNs += t2.ns
					}
				}
			}
			return t.err
		}

		w := cur.slot.buf[:cur.winHi-cur.winLo]
		wsp := f.tr.Begin(trace.PhaseWindow, cur.winLo, cur.iw.total())
		if write {
			if cur.covered {
				f.Stats.PreReadsSkipped++
			}
			f.iopExchangeWrite(cur.iw, w, cur.winLo)
			f.Stats.SieveWrites++
			slot, lo := cur.slot, cur.winLo
			go func() {
				bsp := f.tr.BeginIO(trace.PhaseWriteBack, lo, int64(len(w)))
				t0 := time.Now()
				_, err := f.sh.b.WriteAt(w, lo)
				bsp.End()
				slot.avail <- ioToken{err: err, ns: time.Since(t0).Nanoseconds()}
			}()
		} else {
			f.Stats.SieveReads++
			f.iopExchangeRead(cur.iw, w, cur.winLo)
			cur.slot.avail <- ioToken{}
		}
		wsp.End()
		cur = nxt
	}

	// Drain both slots: collect the outstanding write-back results.
	var firstErr error
	for _, s := range slots {
		t := <-s.avail
		f.Stats.StorageNs += t.ns
		if t.err != nil && firstErr == nil {
			firstErr = t.err
		}
	}
	return firstErr
}
